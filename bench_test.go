// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and attaches the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set (at reduced trace scale; see
// cmd/experiments -format json for measured-vs-paper values at full scale).
package valleymap_test

import (
	"math"
	"testing"

	"valleymap"
)

func tinyOpt() valleymap.ExperimentOptions {
	return valleymap.ExperimentOptions{Scale: valleymap.ScaleTiny}
}

// BenchmarkFigure02ToyBIM reproduces the Figure 2 worked example: the
// 6-bit BIM that rebalances TB-CM0's requests across all four channels.
func BenchmarkFigure02ToyBIM(b *testing.B) {
	rows := []uint64{
		1<<5 | 1<<4 | 1<<3 | 1<<0,
		1<<5 | 1<<3 | 1<<1,
		1 << 2, 1 << 3, 1 << 4, 1 << 5,
	}
	m := valleymap.NewBIM(6, rows)
	var spread int
	for i := 0; i < b.N; i++ {
		var chans [4]int
		for k := uint64(0); k < 8; k++ {
			chans[m.Apply(k<<3)&3]++
		}
		spread = 0
		for _, c := range chans {
			if c > 0 {
				spread++
			}
		}
	}
	b.ReportMetric(float64(spread), "channels-used")
}

// BenchmarkFigure03WindowEntropy reproduces the window-entropy example
// (H* = 3/7 at w=2, 1.0 at w=4).
func BenchmarkFigure03WindowEntropy(b *testing.B) {
	var w2, w4 float64
	for i := 0; i < b.N; i++ {
		w2, w4 = valleymap.Figure3()
	}
	b.ReportMetric(w2, "Hstar-w2")
	b.ReportMetric(w4, "Hstar-w4")
}

// BenchmarkFigure04LayoutDecode exercises the Hynix address map decode.
func BenchmarkFigure04LayoutDecode(b *testing.B) {
	l := valleymap.HynixGDDR5()
	var sink int
	for i := 0; i < b.N; i++ {
		a := uint64(i*2654435761) & ((1 << 30) - 1)
		sink += l.ChannelOf(a) + l.BankOf(a) + l.RowOf(a) + l.ColumnOf(a)
	}
	_ = sink
}

// BenchmarkFigure05EntropyProfiles computes the 18 entropy distributions.
func BenchmarkFigure05EntropyProfiles(b *testing.B) {
	b.ReportAllocs()
	var valleys int
	for i := 0; i < b.N; i++ {
		profs := valleymap.Figure5(tinyOpt())
		valleys = 0
		for _, p := range profs {
			if p.ChannelBankValley([]int{8, 9}, []int{10, 11, 12, 13}, 0.35, 0.6) {
				valleys++
			}
		}
	}
	b.ReportMetric(float64(valleys), "valley-workloads")
}

// BenchmarkFigure06BIMApply measures the BIM matrix-vector product at the
// heart of every mapping scheme.
func BenchmarkFigure06BIMApply(b *testing.B) {
	m := valleymap.NewMapper(valleymap.PAE, valleymap.HynixGDDR5(), 1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= m.Map(uint64(i) & ((1 << 30) - 1))
	}
	_ = sink
}

// BenchmarkFigure07GateCost evaluates the XOR-tree hardware cost of every
// scheme (Figure 7's single-cycle claim).
func BenchmarkFigure07GateCost(b *testing.B) {
	l := valleymap.HynixGDDR5()
	var maxDepth int
	for i := 0; i < b.N; i++ {
		maxDepth = 0
		for _, s := range valleymap.Schemes() {
			_, d := valleymap.NewMapper(s, l, 1).GateCost()
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	b.ReportMetric(float64(maxDepth), "max-xor-depth")
}

// BenchmarkFigure08PMConstruction builds the permutation-based mapping.
func BenchmarkFigure08PMConstruction(b *testing.B) {
	l := valleymap.HynixGDDR5()
	for i := 0; i < b.N; i++ {
		_ = valleymap.NewMapper(valleymap.PM, l, 1)
	}
}

// BenchmarkFigure09BroadConstruction generates the Broad-strategy BIMs
// (PAE/FAE/ALL) including invertibility rejection sampling.
func BenchmarkFigure09BroadConstruction(b *testing.B) {
	l := valleymap.HynixGDDR5()
	for i := 0; i < b.N; i++ {
		_ = valleymap.NewMapper(valleymap.PAE, l, int64(i+1))
		_ = valleymap.NewMapper(valleymap.FAE, l, int64(i+1))
		_ = valleymap.NewMapper(valleymap.ALL, l, int64(i+1))
	}
}

// BenchmarkFigure10MTRemapping computes MT's post-mapping entropy for all
// six schemes and reports how well PAE fills the valley.
func BenchmarkFigure10MTRemapping(b *testing.B) {
	b.ReportAllocs()
	var paeMin float64
	for i := 0; i < b.N; i++ {
		profs := valleymap.Figure10(tinyOpt())
		paeMin = profs[valleymap.PAE].Min([]int{8, 9, 10, 11, 12, 13})
	}
	b.ReportMetric(paeMin, "PAE-min-chbank-entropy")
}

// BenchmarkTable1Configs constructs every simulated system of Table I.
func BenchmarkTable1Configs(b *testing.B) {
	var sms int
	for i := 0; i < b.N; i++ {
		sms = 0
		for _, cfg := range []valleymap.SimConfig{
			valleymap.BaselineConfig(),
			valleymap.ConventionalConfig(24),
			valleymap.ConventionalConfig(48),
			valleymap.Stacked3DConfig(),
		} {
			sms += cfg.SMs
		}
	}
	b.ReportMetric(float64(sms), "total-SMs")
}

// BenchmarkTable2Characteristics measures APKI/MPKI for all 16 benchmarks
// under BASE.
func BenchmarkTable2Characteristics(b *testing.B) {
	b.ReportAllocs()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(valleymap.Table2(tinyOpt()))
	}
	b.ReportMetric(float64(rows), "benchmarks")
}

// valleySuite runs the ten valley benchmarks under all six schemes once
// per iteration and returns the last suite for metric extraction.
func valleySuite(b *testing.B) valleymap.SuiteResult {
	b.Helper()
	b.ReportAllocs()
	var suite valleymap.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = valleymap.ValleySuite(tinyOpt())
	}
	return suite
}

// BenchmarkFigure11PerfVsPower reports mean normalized execution time and
// DRAM power per scheme.
func BenchmarkFigure11PerfVsPower(b *testing.B) {
	suite := valleySuite(b)
	b.ReportMetric(suite.NormalizedExecTime(valleymap.PAE), "PAE-norm-time")
	b.ReportMetric(suite.NormalizedDRAMPower(valleymap.PAE), "PAE-norm-power")
	b.ReportMetric(suite.NormalizedDRAMPower(valleymap.FAE), "FAE-norm-power")
}

// BenchmarkFigure12Speedup reports mean speedups over BASE.
func BenchmarkFigure12Speedup(b *testing.B) {
	suite := valleySuite(b)
	for _, s := range []valleymap.Scheme{valleymap.PM, valleymap.PAE, valleymap.FAE, valleymap.ALL} {
		var sum float64
		series := suite.SpeedupSeries(s)
		for _, v := range series {
			sum += v
		}
		b.ReportMetric(sum/float64(len(series)), string(s)+"-mean-speedup")
	}
}

// BenchmarkFigure13NoCAndLLC reports NoC latency and LLC miss-rate
// deltas between BASE and PAE.
func BenchmarkFigure13NoCAndLLC(b *testing.B) {
	suite := valleySuite(b)
	var baseLat, paeLat, baseMiss, paeMiss float64
	n := float64(len(suite.Workloads))
	for _, wl := range suite.Workloads {
		baseLat += suite.Results[wl][valleymap.BASE].NoCAvgLatencyCycles / n
		paeLat += suite.Results[wl][valleymap.PAE].NoCAvgLatencyCycles / n
		baseMiss += suite.Results[wl][valleymap.BASE].LLC.MissRate() / n
		paeMiss += suite.Results[wl][valleymap.PAE].LLC.MissRate() / n
	}
	b.ReportMetric(baseLat, "BASE-noc-cycles")
	b.ReportMetric(paeLat, "PAE-noc-cycles")
	b.ReportMetric(baseMiss, "BASE-llc-missrate")
	b.ReportMetric(paeMiss, "PAE-llc-missrate")
}

// BenchmarkFigure14Parallelism reports LLC/channel/bank-level parallelism
// under BASE vs PAE.
func BenchmarkFigure14Parallelism(b *testing.B) {
	suite := valleySuite(b)
	var metrics [6]float64
	n := float64(len(suite.Workloads))
	for _, wl := range suite.Workloads {
		base := suite.Results[wl][valleymap.BASE]
		pae := suite.Results[wl][valleymap.PAE]
		metrics[0] += base.LLCParallelism / n
		metrics[1] += pae.LLCParallelism / n
		metrics[2] += base.ChannelParallelism / n
		metrics[3] += pae.ChannelParallelism / n
		metrics[4] += base.BankParallelism / n
		metrics[5] += pae.BankParallelism / n
	}
	names := []string{"BASE-llc", "PAE-llc", "BASE-chan", "PAE-chan", "BASE-bank", "PAE-bank"}
	for i, name := range names {
		b.ReportMetric(metrics[i], name+"-par")
	}
}

// BenchmarkFigure15RowBufferHitRate reports mean row-buffer hit rates.
func BenchmarkFigure15RowBufferHitRate(b *testing.B) {
	suite := valleySuite(b)
	n := float64(len(suite.Workloads))
	for _, s := range []valleymap.Scheme{valleymap.BASE, valleymap.PAE, valleymap.FAE} {
		var hr float64
		for _, wl := range suite.Workloads {
			hr += suite.Results[wl][s].DRAM.RowBufferHitRate() / n
		}
		b.ReportMetric(hr, string(s)+"-rowbuf-hit")
	}
}

// BenchmarkFigure16PowerBreakdown reports the activate component that
// separates PAE from FAE/ALL.
func BenchmarkFigure16PowerBreakdown(b *testing.B) {
	suite := valleySuite(b)
	n := float64(len(suite.Workloads))
	for _, s := range []valleymap.Scheme{valleymap.BASE, valleymap.PAE, valleymap.FAE, valleymap.ALL} {
		var act, total float64
		for _, wl := range suite.Workloads {
			p := suite.Results[wl][s].DRAMPower
			act += p.Activate / n
			total += p.Total() / n
		}
		b.ReportMetric(act, string(s)+"-activate-W")
		b.ReportMetric(total, string(s)+"-total-W")
	}
}

// BenchmarkFigure17PerfPerWatt reports normalized performance per watt.
func BenchmarkFigure17PerfPerWatt(b *testing.B) {
	suite := valleySuite(b)
	for _, s := range []valleymap.Scheme{valleymap.PM, valleymap.PAE, valleymap.FAE, valleymap.ALL} {
		series := suite.NormalizedPerfPerWatt(s)
		h := 0.0
		for _, v := range series {
			h += 1 / v
		}
		b.ReportMetric(float64(len(series))/h, string(s)+"-ppw")
	}
}

// BenchmarkFigure18Sensitivity runs the SM-count + 3D-stacked study.
func BenchmarkFigure18Sensitivity(b *testing.B) {
	b.ReportAllocs()
	var pts []struct {
		name string
		pae  float64
	}
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, pt := range valleymap.Figure18(tinyOpt()) {
			pts = append(pts, struct {
				name string
				pae  float64
			}{pt.Config, pt.Speedups[valleymap.PAE]})
		}
	}
	for _, pt := range pts {
		b.ReportMetric(pt.pae, "PAE-"+pt.name)
	}
}

// BenchmarkFigure19BIMSensitivity runs three random BIMs per scheme.
func BenchmarkFigure19BIMSensitivity(b *testing.B) {
	b.ReportAllocs()
	var res map[valleymap.Scheme][3]float64
	for i := 0; i < b.N; i++ {
		res = valleymap.Figure19(tinyOpt())
	}
	for _, s := range []valleymap.Scheme{valleymap.PAE, valleymap.FAE, valleymap.ALL} {
		trio := res[s]
		spread := math.Abs(trio[0]-trio[1]) + math.Abs(trio[1]-trio[2])
		b.ReportMetric(trio[0], string(s)+"-BIM1-speedup")
		b.ReportMetric(spread, string(s)+"-seed-spread")
	}
}

// BenchmarkFigure20NonValley reports the non-valley benchmark speedups
// (expected ≈ 1.0).
func BenchmarkFigure20NonValley(b *testing.B) {
	b.ReportAllocs()
	var suite valleymap.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = valleymap.NonValleySuite(tinyOpt())
	}
	b.ReportMetric(suite.HMeanSpeedup(valleymap.PAE), "PAE-hmean-speedup")
	b.ReportMetric(suite.HMeanSpeedup(valleymap.FAE), "FAE-hmean-speedup")
}

// ---------------------------------------------------------------------
// Streaming-pipeline benchmarks (the PR-2 refactor): materialized
// build+copy+profile vs one-pass generate→coalesce→profile.
// ---------------------------------------------------------------------

// BenchmarkProfilePipeline compares the two profiling pipelines end to
// end on MT at small scale. "materialized" is the pre-streaming path
// (Build the trace, CoalesceApp copies it, AppProfile walks it);
// "streaming" folds the generator's batches online at O(window × bits)
// memory; "streaming-parallel" adds the per-TB worker fan-out. The
// ns/request metric divides by the coalesced request count.
func BenchmarkProfilePipeline(b *testing.B) {
	spec, _ := valleymap.WorkloadByAbbr("MT")
	perRequest := func(b *testing.B, prof valleymap.Profile) {
		b.Helper()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(prof.Requests), "ns/request")
	}

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		var prof valleymap.Profile
		for i := 0; i < b.N; i++ {
			app := spec.Build(valleymap.ScaleSmall)
			prof = valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{})
		}
		perRequest(b, prof)
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		var prof valleymap.Profile
		for i := 0; i < b.N; i++ {
			var err error
			prof, err = valleymap.AnalyzeSource(spec.Source(valleymap.ScaleSmall),
				valleymap.AnalysisOptions{Workers: -1})
			if err != nil {
				b.Fatal(err)
			}
		}
		perRequest(b, prof)
	})
	b.Run("streaming-parallel", func(b *testing.B) {
		b.ReportAllocs()
		var prof valleymap.Profile
		for i := 0; i < b.N; i++ {
			var err error
			prof, err = valleymap.AnalyzeSource(spec.Source(valleymap.ScaleSmall),
				valleymap.AnalysisOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		perRequest(b, prof)
	})
}
