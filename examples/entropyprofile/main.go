// Entropyprofile shows how to analyze *your own* application trace with
// the window-based entropy metric, detect an entropy valley, and verify
// that a mapping scheme removes it — the workflow an architect would use
// before committing a BIM to silicon.
//
// The example builds a hand-written trace for a column-major 5-point
// stencil (the kind of kernel the paper's Section II warns about), not
// one of the packaged benchmarks. A second part profiles the same
// stencil as a *streaming* source at whatever size you ask for —
// including traces far larger than RAM — at constant memory. A third
// part packs that stream into the VTRC binary container (without ever
// materializing it) and re-profiles it through the mmap zero-copy
// path: the on-disk file can exceed RAM, the heap stays flat, and the
// canonical content hash proves the packed trace is the same trace.
//
//	go run ./examples/entropyprofile               # quick default
//	go run ./examples/entropyprofile 2000000000    # 2G requests (a 32 GB trace), flat memory
package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"valleymap"
)

// buildStencilTrace emits a kernel whose TBs sweep a 2048-column matrix
// column by column: thread t touches row t (stride 8 KB) and its north /
// south neighbors, one column per TB.
func buildStencilTrace() *valleymap.App {
	const rowBytes = 8192
	app := &valleymap.App{
		Name: "custom column stencil", Abbr: "STEN", Valley: true, InsnPerAccess: 35,
	}
	k := valleymap.Kernel{Name: "stencil", WarpsPerTB: 2, ComputeGapCycles: 250}
	for tb := 0; tb < 48; tb++ {
		var reqs []valleymap.Request
		threads := 64 - tb%7 // ragged boundary TBs
		for t := 0; t < threads; t++ {
			base := uint64(1<<26) + uint64(tb)*4 + uint64(t)*rowBytes
			for _, off := range []uint64{0, rowBytes, 2 * rowBytes} {
				reqs = append(reqs, valleymap.Request{
					Addr: base + off, Kind: valleymap.Read, Warp: int32(t / 32),
				})
			}
			reqs = append(reqs, valleymap.Request{
				Addr: base + 1<<27, Kind: valleymap.Write, Warp: int32(t / 32),
			})
		}
		k.TBs = append(k.TBs, valleymap.TB{ID: tb, Requests: reqs})
	}
	app.Kernels = []valleymap.Kernel{k}
	return app
}

func spark(p valleymap.Profile) string {
	var sb strings.Builder
	for b := 29; b >= 6; b-- {
		sb.WriteByte("_.:-=+*#%@"[int(p.PerBit[b]*9.999)])
	}
	return sb.String()
}

func main() {
	app := buildStencilTrace()
	if err := app.Validate(30); err != nil {
		panic(err)
	}
	chBank := []int{8, 9, 10, 11, 12, 13}
	layout := valleymap.HynixGDDR5()

	fmt.Printf("trace: %s, %d requests\n\n", app.Name, app.Requests())
	fmt.Println("entropy per bit (29 left ... 6 right), low=_ high=@")

	prof := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{})
	fmt.Printf("  %-6s %s  min(ch+bank)=%.2f valley=%v\n",
		"BASE", spark(prof), prof.Min(chBank), prof.HasValley(chBank, 0.35, 0.6))

	// Try every scheme and report which ones fill the valley.
	best := valleymap.Scheme("")
	bestMin := -1.0
	for _, s := range valleymap.Schemes()[1:] {
		m := valleymap.NewMapper(s, layout, 1)
		p := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{Transform: m.Map})
		fmt.Printf("  %-6s %s  min(ch+bank)=%.2f\n", s, spark(p), p.Min(chBank))
		if p.Min(chBank) > bestMin {
			bestMin = p.Min(chBank)
			best = s
		}
	}

	fmt.Printf("\nbest channel/bank entropy: %s (min %.2f)\n", best, bestMin)

	// Confirm with the simulator that the entropy win is a performance win.
	cfg := valleymap.BaselineConfig()
	base := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, layout, 1), cfg)
	pae := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, layout, 1), cfg)
	fmt.Printf("simulated: BASE %v, PAE %v -> %.2fx speedup, DRAM power %.1f -> %.1f W\n",
		base.ExecTime, pae.ExecTime, float64(base.ExecTime)/float64(pae.ExecTime),
		base.DRAMPower.Total(), pae.DRAMPower.Total())

	streamHuge()
}

// ---------------------------------------------------------------------
// Part 2: streaming a larger-than-RAM trace at constant memory
// ---------------------------------------------------------------------

// hugeStencil is a custom TraceSource: the same column stencil, scaled
// to an arbitrary TB count. Requests are regenerated per pass into one
// reused buffer, so the trace never exists in memory — only the current
// TB does.
type hugeStencil struct{ tbs int }

func (h hugeStencil) Info() valleymap.TraceSourceInfo {
	return valleymap.TraceSourceInfo{Name: "synthetic giant stencil", Abbr: "GIANT", Valley: true, InsnPerAccess: 35}
}

func (h hugeStencil) Stream() valleymap.TraceStream { return &hugeStream{tbs: h.tbs} }

type hugeStream struct {
	tbs, tb int
	started bool
	hdr     valleymap.TraceKernelInfo
	batch   valleymap.TraceBatch
	reqs    []valleymap.Request
}

func (s *hugeStream) Next() (*valleymap.TraceBatch, error) {
	if !s.started {
		s.started = true
		s.hdr = valleymap.TraceKernelInfo{Name: "stencil", WarpsPerTB: 2, ComputeGapCycles: 250}
		s.batch = valleymap.TraceBatch{Kernel: &s.hdr, TBID: -1}
		return &s.batch, nil
	}
	if s.tb >= s.tbs {
		return nil, io.EOF
	}
	const rowBytes = 8192
	s.reqs = s.reqs[:0]
	threads := 64 - s.tb%7
	for t := 0; t < threads; t++ {
		base := (uint64(1<<26) + uint64(s.tb)*4 + uint64(t)*rowBytes) & (1<<30 - 1)
		for _, off := range []uint64{0, rowBytes, 2 * rowBytes} {
			s.reqs = append(s.reqs, valleymap.Request{
				Addr: (base + off) & (1<<30 - 1), Kind: valleymap.Read, Warp: int32(t / 32),
			})
		}
		s.reqs = append(s.reqs, valleymap.Request{
			Addr: (base + 1<<27) & (1<<30 - 1), Kind: valleymap.Write, Warp: int32(t / 32),
		})
	}
	s.batch = valleymap.TraceBatch{TBID: s.tb, TBStart: true, Requests: s.reqs}
	s.tb++
	return &s.batch, nil
}

// streamHuge profiles a synthetic trace of any size through the
// streaming pipeline and reports how flat the heap stayed. The default
// is sized for a quick run; pass a request count on the command line to
// stream a trace that could never fit in RAM (memory use is unchanged —
// O(window × bits) accumulator state plus one TB).
func streamHuge() {
	requests := 4 << 20
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			requests = n
		}
	}
	const reqsPerTB = 244 // ≈ mean of the ragged 61..64-thread TBs × 4 accesses
	src := hugeStencil{tbs: requests / reqsPerTB}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	prof, err := valleymap.AnalyzeSource(src, valleymap.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	runtime.ReadMemStats(&m1)

	grew := 0.0
	if m1.HeapAlloc > m0.HeapAlloc {
		grew = float64(m1.HeapAlloc-m0.HeapAlloc) / (1 << 20)
	}
	materialized := float64(prof.Requests) * 16 / (1 << 30)
	fmt.Printf("\nstreamed %d coalesced requests (~%.1f GB if materialized per-thread) at constant memory:\n",
		prof.Requests, materialized*4) // ~4 per-thread accesses per transaction here
	fmt.Printf("  heap grew %.2f MB during the pass; valley intact: %v\n",
		grew, prof.HasValley([]int{8, 9, 10, 11, 12, 13}, 0.35, 0.6))
	fmt.Printf("  %-6s %s\n", "GIANT", spark(prof))

	packAndMmap(src)
}

// ---------------------------------------------------------------------
// Part 3: pack the stream into the binary container, profile via mmap
// ---------------------------------------------------------------------

// packAndMmap is the capture-once / profile-forever flow: the generator
// stream is encoded straight to a VTRC file (O(one TB) memory — the
// trace is never materialized), then the file is mapped and profiled
// zero-copy. Because the file is a mapping, not heap, this works
// unchanged when the packed trace is larger than RAM: the kernel pages
// records in and out as the single sequential pass touches them.
func packAndMmap(src valleymap.TraceSource) {
	f, err := os.CreateTemp("", "stencil-*.vtrc")
	if err != nil {
		panic(err)
	}
	path := f.Name()
	defer os.Remove(path)
	if err := valleymap.WriteTraceBinaryStream(f, src.Stream()); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}

	ms, err := valleymap.OpenTraceMmap(path)
	if err != nil {
		panic(err)
	}
	defer ms.Close()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	prof, err := valleymap.AnalyzeSource(ms, valleymap.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	runtime.ReadMemStats(&m1)
	grew := 0.0
	if m1.HeapAlloc > m0.HeapAlloc {
		grew = float64(m1.HeapAlloc-m0.HeapAlloc) / (1 << 20)
	}

	fmt.Printf("\npacked the stream into VTRC (%.1f MB on disk, %d records) and re-profiled via mmap:\n",
		float64(ms.Bytes())/(1<<20), ms.Requests())
	fmt.Printf("  heap grew %.2f MB during the mmap pass; valley intact: %v\n",
		grew, prof.HasValley([]int{8, 9, 10, 11, 12, 13}, 0.35, 0.6))
	fmt.Printf("  canonical hash %s (= the identity valleyd caches by, CSV or binary)\n", ms.SHA256())
}
