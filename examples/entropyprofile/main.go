// Entropyprofile shows how to analyze *your own* application trace with
// the window-based entropy metric, detect an entropy valley, and verify
// that a mapping scheme removes it — the workflow an architect would use
// before committing a BIM to silicon.
//
// The example builds a hand-written trace for a column-major 5-point
// stencil (the kind of kernel the paper's Section II warns about), not
// one of the packaged benchmarks.
package main

import (
	"fmt"
	"strings"

	"valleymap"
)

// buildStencilTrace emits a kernel whose TBs sweep a 2048-column matrix
// column by column: thread t touches row t (stride 8 KB) and its north /
// south neighbors, one column per TB.
func buildStencilTrace() *valleymap.App {
	const rowBytes = 8192
	app := &valleymap.App{
		Name: "custom column stencil", Abbr: "STEN", Valley: true, InsnPerAccess: 35,
	}
	k := valleymap.Kernel{Name: "stencil", WarpsPerTB: 2, ComputeGapCycles: 250}
	for tb := 0; tb < 48; tb++ {
		var reqs []valleymap.Request
		threads := 64 - tb%7 // ragged boundary TBs
		for t := 0; t < threads; t++ {
			base := uint64(1<<26) + uint64(tb)*4 + uint64(t)*rowBytes
			for _, off := range []uint64{0, rowBytes, 2 * rowBytes} {
				reqs = append(reqs, valleymap.Request{
					Addr: base + off, Kind: valleymap.Read, Warp: int32(t / 32),
				})
			}
			reqs = append(reqs, valleymap.Request{
				Addr: base + 1<<27, Kind: valleymap.Write, Warp: int32(t / 32),
			})
		}
		k.TBs = append(k.TBs, valleymap.TB{ID: tb, Requests: reqs})
	}
	app.Kernels = []valleymap.Kernel{k}
	return app
}

func spark(p valleymap.Profile) string {
	var sb strings.Builder
	for b := 29; b >= 6; b-- {
		sb.WriteByte("_.:-=+*#%@"[int(p.PerBit[b]*9.999)])
	}
	return sb.String()
}

func main() {
	app := buildStencilTrace()
	if err := app.Validate(30); err != nil {
		panic(err)
	}
	chBank := []int{8, 9, 10, 11, 12, 13}
	layout := valleymap.HynixGDDR5()

	fmt.Printf("trace: %s, %d requests\n\n", app.Name, app.Requests())
	fmt.Println("entropy per bit (29 left ... 6 right), low=_ high=@")

	prof := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{})
	fmt.Printf("  %-6s %s  min(ch+bank)=%.2f valley=%v\n",
		"BASE", spark(prof), prof.Min(chBank), prof.HasValley(chBank, 0.35, 0.6))

	// Try every scheme and report which ones fill the valley.
	best := valleymap.Scheme("")
	bestMin := -1.0
	for _, s := range valleymap.Schemes()[1:] {
		m := valleymap.NewMapper(s, layout, 1)
		p := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{Transform: m.Map})
		fmt.Printf("  %-6s %s  min(ch+bank)=%.2f\n", s, spark(p), p.Min(chBank))
		if p.Min(chBank) > bestMin {
			bestMin = p.Min(chBank)
			best = s
		}
	}

	fmt.Printf("\nbest channel/bank entropy: %s (min %.2f)\n", best, bestMin)

	// Confirm with the simulator that the entropy win is a performance win.
	cfg := valleymap.BaselineConfig()
	base := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, layout, 1), cfg)
	pae := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, layout, 1), cfg)
	fmt.Printf("simulated: BASE %v, PAE %v -> %.2fx speedup, DRAM power %.1f -> %.1f W\n",
		base.ExecTime, pae.ExecTime, float64(base.ExecTime)/float64(pae.ExecTime),
		base.DRAMPower.Total(), pae.DRAMPower.Total())
}
