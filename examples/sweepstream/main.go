// Sweepstream is a streaming sweep client for valleyd: it submits a
// workload × scheme simulation sweep with POST /v1/simulate?stream=1
// and prints each cell the moment the server finishes it, instead of
// polling /v1/jobs/{id} until the whole sweep is done.
//
// By default it starts an embedded valleyd on a loopback port and runs
// the sweep twice — the second pass is served entirely from the
// simulation-result cache — so it works standalone:
//
//	go run ./examples/sweepstream
//
// Point it at a running daemon with -addr:
//
//	valleyd -addr :8080 &
//	go run ./examples/sweepstream -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"

	"valleymap"
)

func main() {
	addr := flag.String("addr", "", "valleyd base URL (empty = run an embedded service)")
	workloads := flag.String("workloads", "MT,LU,SC,SP", "comma-separated Table II abbreviations")
	schemes := flag.String("schemes", "BASE,PM,PAE,FAE", "comma-separated mapping schemes")
	scale := flag.String("scale", "tiny", "trace scale: tiny, small, full")
	flag.Parse()

	base := *addr
	embedded := base == ""
	if embedded {
		svc := valleymap.NewService(valleymap.ServiceConfig{})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, svc.Handler()) //nolint:errcheck // dies with the process
		base = "http://" + ln.Addr().String()
		fmt.Printf("embedded valleyd on %s\n\n", base)
	}

	body, err := json.Marshal(valleymap.ServiceSimulateRequest{
		Workloads: strings.Split(*workloads, ","),
		Schemes:   strings.Split(*schemes, ","),
		Scale:     *scale,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := streamSweep(base, body); err != nil {
		log.Fatal(err)
	}
	if embedded {
		fmt.Println("\nsame sweep again — every cell now comes from the simulation-result cache:")
		if err := streamSweep(base, body); err != nil {
			log.Fatal(err)
		}
	}
}

// streamSweep runs one streaming sweep, rendering NDJSON events as they
// arrive.
func streamSweep(base string, body []byte) error {
	resp, err := http.Post(base+"/v1/simulate?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("simulate: %s: %s", resp.Status, msg)
	}

	dec := json.NewDecoder(resp.Body)
	for {
		var ev valleymap.ServiceJobEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("decoding event stream: %w", err)
		}
		switch ev.Type {
		case valleymap.ServiceEventStart:
			fmt.Printf("%s: %d cells\n", ev.JobID, ev.Total)
		case valleymap.ServiceEventCell:
			c := ev.Cell
			cached := ""
			if c.Cached {
				cached = "  (cached)"
			}
			fmt.Printf("  [%2d/%2d] %-4s x %-4s  exec %8.3f ms  wall %8.2f ms%s\n",
				ev.Done, ev.Total, c.Workload, c.Scheme,
				float64(c.ExecTimePS)/1e9, c.Seconds*1e3, cached)
		case valleymap.ServiceEventDone:
			fmt.Printf("done in %.2f s\n", ev.Result.Seconds)
			printHMeans(os.Stdout, ev.Result.HMeanSpeedup)
		case valleymap.ServiceEventFailed:
			return fmt.Errorf("sweep failed: %s", ev.Error)
		}
	}
}

func printHMeans(w io.Writer, hm map[string]float64) {
	if len(hm) == 0 {
		return
	}
	schemes := make([]string, 0, len(hm))
	for sc := range hm {
		schemes = append(schemes, sc)
	}
	sort.Strings(schemes)
	fmt.Fprint(w, "harmonic-mean speedup vs BASE:")
	for _, sc := range schemes {
		fmt.Fprintf(w, "  %s %.3fx", sc, hm[sc])
	}
	fmt.Fprintln(w)
}
