// Designspace explores the mapping design space the way Section IV-B
// does: it hand-builds BIMs of the three strategy families (Remap, PM,
// Broad), checks their hardware cost, and races them against the packaged
// schemes on a slice of the valley suite.
//
// The point of the exercise is the paper's central claim: only mappings
// that gather entropy from *broad* bit ranges are robust across
// applications whose valleys sit in different places.
package main

import (
	"fmt"
	"math/rand"

	"valleymap"
)

// customBroad builds a Broad-strategy BIM by hand: every channel/bank bit
// becomes the XOR of its own bit, two row bits and one more channel/bank
// bit — a cheap compromise between PM (2 inputs) and PAE (many inputs).
func customBroad(rng *rand.Rand) valleymap.BIM {
	m := valleymap.IdentityBIM(30)
	rowBits := []int{18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29}
	targets := []int{8, 9, 10, 11, 12, 13}
	for {
		cand := m
		for _, tb := range targets {
			mask := uint64(1) << uint(tb)
			mask |= 1 << uint(rowBits[rng.Intn(len(rowBits))])
			mask |= 1 << uint(rowBits[rng.Intn(len(rowBits))])
			mask |= 1 << uint(targets[rng.Intn(len(targets))])
			cand = cand.SetRow(tb, mask)
		}
		if cand.Invertible() {
			return cand
		}
	}
}

func main() {
	layout := valleymap.HynixGDDR5()
	cfg := valleymap.BaselineConfig()
	rng := rand.New(rand.NewSource(7))

	custom := customBroad(rng)
	gates, depth := custom.GateCost()
	fmt.Printf("custom Broad BIM: %d XOR gates, depth %d, invertible=%v\n\n",
		gates, depth, custom.Invertible())

	// Candidate mappers: the packaged schemes plus the custom BIM
	// (wrapped as a transform at trace level for analysis, and compared
	// in simulation via the closest packaged family, PAE).
	benchmarks := []string{"MT", "LU", "SC", "SP"}
	chBank := []int{8, 9, 10, 11, 12, 13}

	fmt.Printf("%-6s", "bench")
	schemes := []valleymap.Scheme{valleymap.BASE, valleymap.PM, valleymap.RMP, valleymap.PAE}
	for _, s := range schemes {
		fmt.Printf(" %10s", s)
	}
	fmt.Printf(" %10s\n", "CUSTOM")

	for _, abbr := range benchmarks {
		spec, _ := valleymap.WorkloadByAbbr(abbr)
		app := spec.Build(valleymap.ScaleTiny)
		fmt.Printf("%-6s", abbr)
		for _, s := range schemes {
			m := valleymap.NewMapper(s, layout, 1)
			p := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{Transform: m.Map})
			fmt.Printf(" %10.2f", p.Min(chBank))
		}
		p := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{Transform: custom.Apply})
		fmt.Printf(" %10.2f\n", p.Min(chBank))
	}
	fmt.Println("\n(minimum channel/bank-bit entropy after mapping; higher is better)")

	// Simulated speedups for the same benchmarks: the robustness story.
	fmt.Printf("\n%-6s", "bench")
	for _, s := range schemes[1:] {
		fmt.Printf(" %10s", s)
	}
	fmt.Println()
	for _, abbr := range benchmarks {
		spec, _ := valleymap.WorkloadByAbbr(abbr)
		app := spec.Build(valleymap.ScaleTiny)
		base := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, layout, 1), cfg)
		fmt.Printf("%-6s", abbr)
		for _, s := range schemes[1:] {
			r := valleymap.Simulate(app, valleymap.NewMapper(s, layout, 1), cfg)
			fmt.Printf(" %9.2fx", float64(base.ExecTime)/float64(r.ExecTime))
		}
		fmt.Println()
	}
	fmt.Println("\nPM helps only when the valley overlaps its fixed row-bit XORs;")
	fmt.Println("PAE's wide random XORs are robust across all four benchmarks.")
}
