// Quickstart reproduces the paper's Figure 2 worked example and then runs
// the real pipeline once.
//
// Figure 2: an 8×8 grid of threads reads a row-major array. With
// column-major thread-block allocation (TB-CM0), all eight requests of a
// TB land on DRAM channel 0 — the two channel-select bits never vary.
// Permutation-based mapping (PM) still clusters requests on two channels;
// a Broad-strategy BIM restores perfect balance. We then demonstrate the
// same effect on the full simulator with the MT benchmark.
package main

import (
	"fmt"

	"valleymap"
)

func channelHistogram(m valleymap.BIM, addrs []uint64) [4]int {
	var h [4]int
	for _, a := range addrs {
		h[m.Apply(a)&3]++ // channel = the two least significant index bits
	}
	return h
}

func main() {
	// --- Figure 2: the toy 6-bit example -------------------------------
	// TB-RM2 (row-major) owns indices 16..23; TB-CM0 (column-major) owns
	// indices 0, 8, 16, ..., 56. Addresses are the 6-bit element indices.
	var tbRM2, tbCM0 []uint64
	for i := 0; i < 8; i++ {
		tbRM2 = append(tbRM2, uint64(16+i))
		tbCM0 = append(tbCM0, uint64(8*i))
	}

	identity := valleymap.IdentityBIM(6)

	// PM XORs each channel bit with one fixed neighboring bit (bits 2 and
	// 3 here). TB-CM0's entropy lives in bits 3..5, so PM catches only
	// bit 3 and the requests still cluster on channels 0 and 2.
	pm := identity.
		SetRow(0, 1<<0|1<<2).
		SetRow(1, 1<<1|1<<3)

	// The paper's Broad BIM (Figure 2c, bottom-right matrix).
	broad := valleymap.NewBIM(6, []uint64{
		1<<5 | 1<<4 | 1<<3 | 1<<0,
		1<<5 | 1<<3 | 1<<1,
		1 << 2, 1 << 3, 1 << 4, 1 << 5,
	})

	fmt.Println("Figure 2e — DRAM channel distribution (requests per channel)")
	fmt.Printf("  %-22s ch0 ch1 ch2 ch3\n", "")
	show := func(name string, m valleymap.BIM, addrs []uint64) {
		h := channelHistogram(m, addrs)
		fmt.Printf("  %-22s %3d %3d %3d %3d\n", name, h[0], h[1], h[2], h[3])
	}
	show("TB-RM2 (BASE)", identity, tbRM2)
	show("TB-CM0 (BASE)", identity, tbCM0)
	show("TB-CM0 (PM)", pm, tbCM0)
	show("TB-CM0 (Broad BIM)", broad, tbCM0)

	// The example address from the paper: 111000 -> 111001.
	fmt.Printf("\n  BIM maps 111000 -> %06b (paper: 111001)\n\n", broad.Apply(0b111000))

	// --- The same story on the full system -----------------------------
	spec, _ := valleymap.WorkloadByAbbr("MT")
	app := spec.Build(valleymap.ScaleTiny)
	layout := valleymap.HynixGDDR5()
	cfg := valleymap.BaselineConfig()

	fmt.Println("Matrix Transpose (MT) on the simulated 12-SM GPU:")
	base := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, layout, 1), cfg)
	pae := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, layout, 1), cfg)
	fmt.Printf("  BASE: %8v, channel-level parallelism %.2f\n", base.ExecTime, base.ChannelParallelism)
	fmt.Printf("  PAE:  %8v, channel-level parallelism %.2f\n", pae.ExecTime, pae.ChannelParallelism)
	fmt.Printf("  PAE speedup: %.2fx\n", float64(base.ExecTime)/float64(pae.ExecTime))
}
