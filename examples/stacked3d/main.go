// Stacked3d reproduces the Section VI-D sensitivity study in miniature:
// address mapping matters even more on 3D-stacked memory, where 2 channel
// + 4 vault + 4 bank bits must all be randomized to exploit the much
// larger number of parallel units.
package main

import (
	"fmt"

	"valleymap"
)

func main() {
	l3d := valleymap.Stacked3D()
	fmt.Printf("3D-stacked layout: %s\n", l3d)
	fmt.Printf("  %d stacks x %d vault-banks per stack\n\n",
		l3d.Channels(), l3d.BanksPerChannel())

	// The 3D PAE BIM randomizes 10 bits (2 channel + 4 vault + 4 bank),
	// as the paper specifies.
	pae3d := valleymap.NewMapper(valleymap.PAE, l3d, 1)
	gates, depth := pae3d.GateCost()
	fmt.Printf("3D PAE mapper: %d XOR gates, depth %d\n\n", gates, depth)

	benchmarks := []string{"MT", "SC", "SP", "BFS"}
	fmt.Printf("%-6s %16s %16s %14s\n", "bench", "conv-12sm PAE", "3d-64sm PAE", "3d bank-par")
	for _, abbr := range benchmarks {
		spec, _ := valleymap.WorkloadByAbbr(abbr)
		app := spec.Build(valleymap.ScaleTiny)

		conv := valleymap.BaselineConfig()
		convBase := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, conv.Layout, 1), conv)
		convPAE := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, conv.Layout, 1), conv)

		s3d := valleymap.Stacked3DConfig()
		s3dBase := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, s3d.Layout, 1), s3d)
		s3dPAE := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, s3d.Layout, 1), s3d)

		fmt.Printf("%-6s %15.2fx %15.2fx %14.2f\n", abbr,
			float64(convBase.ExecTime)/float64(convPAE.ExecTime),
			float64(s3dBase.ExecTime)/float64(s3dPAE.ExecTime),
			s3dPAE.BankParallelism)
	}
	fmt.Println("\nSpeedups are PAE over BASE on each system (Figure 18, rightmost group).")
}
