# Two-stage build: compile a static valleyd in the Go image, ship only
# the binary on a minimal runtime. The same image serves every cluster
# role — the role is picked at run time with -mode (see
# docker-compose.yml for a 1-coordinator + 2-worker arrangement).
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/valleyd ./cmd/valleyd

FROM alpine:3.19
RUN adduser -D -u 10001 valley && mkdir -p /spill && chown valley:valley /spill
COPY --from=build /out/valleyd /usr/local/bin/valleyd
USER valley
# /spill is the simulation-cache spill tier: mount a volume here and
# pass -spill-dir /spill so a restarted worker keeps its warm cells.
VOLUME /spill
EXPOSE 8080
ENTRYPOINT ["valleyd"]
CMD ["-addr", ":8080"]
