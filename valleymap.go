package valleymap

import (
	"io"
	"log/slog"
	"runtime"

	"valleymap/internal/bim"
	"valleymap/internal/entropy"
	"valleymap/internal/experiments"
	"valleymap/internal/gpusim"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/obs"
	"valleymap/internal/power"
	"valleymap/internal/service"
	"valleymap/internal/sim"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// ---------------------------------------------------------------------
// Address layouts (Figure 4 and the 3D-stacked variant)
// ---------------------------------------------------------------------

// Layout describes how a physical address decomposes into DRAM
// coordinates.
type Layout = layout.Layout

// Field identifies one DRAM coordinate (Row, Bank, Channel, ...).
type Field = layout.Field

// DRAM coordinate fields.
const (
	FieldBlock   = layout.Block
	FieldColumn  = layout.Column
	FieldChannel = layout.Channel
	FieldBank    = layout.Bank
	FieldRow     = layout.Row
	FieldVault   = layout.Vault
)

// HynixGDDR5 returns the baseline 30-bit Hynix GDDR5 address map
// (Figure 4).
func HynixGDDR5() Layout { return layout.HynixGDDR5() }

// Stacked3D returns the HMC-style stack/vault/bank address map of the
// Section VI-D sensitivity study.
func Stacked3D() Layout { return layout.Stacked3D() }

// ---------------------------------------------------------------------
// BIMs and mapping schemes (Section IV)
// ---------------------------------------------------------------------

// BIM is a Binary Invertible Matrix over GF(2) — the paper's unified
// representation of AND/XOR address mappings.
type BIM = bim.Matrix

// IdentityBIM returns the n×n identity matrix.
func IdentityBIM(n int) BIM { return bim.Identity(n) }

// NewBIM builds a matrix from explicit rows (row i = input mask of output
// bit i).
func NewBIM(n int, rows []uint64) BIM { return bim.New(n, rows) }

// Scheme names an address mapping strategy.
type Scheme = mapping.Scheme

// The six schemes of the evaluation.
const (
	BASE = mapping.BASE
	PM   = mapping.PM
	RMP  = mapping.RMP
	PAE  = mapping.PAE
	FAE  = mapping.FAE
	ALL  = mapping.ALL
)

// Schemes returns all six schemes in the paper's order.
func Schemes() []Scheme { return mapping.Schemes() }

// Mapper applies one scheme's BIM to physical addresses.
type Mapper = mapping.Mapper

// NewMapper constructs a mapper; seed selects the random BIM instance for
// PAE/FAE/ALL (seeds 1..3 are the paper's BIM-1..BIM-3).
func NewMapper(s Scheme, l Layout, seed int64) Mapper {
	return mapping.MustNew(s, l, mapping.Options{Seed: seed})
}

// NewRMPMapper builds the Remap scheme from a measured suite-average
// entropy profile (nil uses the paper's default bit choice).
func NewRMPMapper(l Layout, avgEntropy []float64) Mapper {
	return mapping.NewRMP(l, avgEntropy)
}

// ---------------------------------------------------------------------
// Traces and workloads (Table II)
// ---------------------------------------------------------------------

// Trace types.
type (
	App     = trace.App
	Kernel  = trace.Kernel
	TB      = trace.TB
	Request = trace.Request
	Kind    = trace.Kind
)

// Request kinds.
const (
	Read  = trace.Read
	Write = trace.Write
)

// Coalesce merges per-thread requests into line-granular transactions,
// as the GPU's coalescing unit does.
func Coalesce(app *App, lineBytes int) *App { return trace.CoalesceApp(app, lineBytes) }

// ---------------------------------------------------------------------
// Streaming traces (the one-pass profiling pipeline)
// ---------------------------------------------------------------------

// Streaming trace types: a TraceStream yields chunked request batches
// with explicit kernel/TB boundaries; a TraceSource restarts streams
// over the same trace. See internal/trace's stream conventions.
type (
	TraceBatch      = trace.Batch
	TraceStream     = trace.Stream
	TraceSource     = trace.Source
	TraceSourceInfo = trace.SourceInfo
	TraceKernelInfo = trace.KernelInfo
	// CSVTraceStream is a single-shot streaming CSV decoder folding the
	// canonical record-stream SHA-256 as it decodes.
	CSVTraceStream = trace.CSVStream
	// BinaryTraceStream is the single-shot streaming decoder of the VTRC
	// binary container (same canonical hash, ~no parse cost).
	BinaryTraceStream = trace.BinaryStream
	// MmapTraceSource serves a VTRC file as zero-copy batches over a
	// read-only memory mapping; restartable and fully validated at open.
	MmapTraceSource = trace.MmapSource
)

// NewAppSource adapts a materialized trace into a restartable streaming
// source (batches alias the App's memory; do not mutate them).
func NewAppSource(app *App) TraceSource { return trace.AppSource(app) }

// CollectTrace drains a streaming source into a materialized trace.
func CollectTrace(src TraceSource) (*App, error) { return trace.Collect(src) }

// CoalesceTraceStream coalesces a request stream on the fly, keeping
// only the current warp window in memory (streaming Coalesce).
func CoalesceTraceStream(st TraceStream, lineBytes int) TraceStream {
	return trace.CoalesceStream(st, lineBytes)
}

// StreamTraceCSV starts a streaming decode of a CSV trace: the
// streaming ReadTraceCSV. The returned stream is single-shot and
// exposes the content hash once fully drained.
func StreamTraceCSV(r io.Reader) *CSVTraceStream { return trace.NewCSVStream(r) }

// StreamTraceBinary starts a streaming decode of a VTRC binary trace.
// Like StreamTraceCSV the stream is single-shot and exposes the
// canonical content hash — identical to the CSV encoding's — once
// drained and checksum-verified.
func StreamTraceBinary(r io.Reader) *BinaryTraceStream { return trace.NewBinaryStream(r) }

// OpenTraceMmap maps an on-disk VTRC binary trace and serves it as a
// restartable zero-copy source (validated end to end at open; a
// read-everything fallback keeps non-mmap platforms working).
func OpenTraceMmap(path string) (*MmapTraceSource, error) { return trace.OpenMmap(path) }

// OpenTraceFile opens an on-disk trace in either container format,
// sniffing the VTRC magic: binary files are mmapped, CSV files stream.
// Call the returned release func when done with the trace.
func OpenTraceFile(path string) (TraceSource, func() error, error) { return trace.OpenFile(path) }

// TraceCanonicalHash drains one pass of a source and returns the
// canonical record-stream digest — the format-independent identity the
// service's content-addressed caches key on.
func TraceCanonicalHash(src TraceSource) (string, error) { return trace.CanonicalHash(src) }

// WorkloadSpec describes one benchmark of the study.
type WorkloadSpec = workload.Spec

// Scale selects trace size.
type Scale = workload.Scale

// Trace scales.
const (
	ScaleTiny  = workload.Tiny
	ScaleSmall = workload.Small
	ScaleFull  = workload.Full
)

// Workloads returns the 16 benchmarks of Table II.
func Workloads() []WorkloadSpec { return workload.Catalog() }

// AllWorkloads returns the benchmarks plus the two standalone kernels of
// Figure 5.
func AllWorkloads() []WorkloadSpec { return workload.All() }

// ValleyWorkloads returns the ten entropy-valley benchmarks.
func ValleyWorkloads() []WorkloadSpec { return workload.ValleySet() }

// NonValleyWorkloads returns the six non-valley benchmarks.
func NonValleyWorkloads() []WorkloadSpec { return workload.NonValleySet() }

// WorkloadByAbbr finds a workload by Table II abbreviation.
func WorkloadByAbbr(abbr string) (WorkloadSpec, bool) { return workload.ByAbbr(abbr) }

// ---------------------------------------------------------------------
// Window-based entropy analysis (Section III)
// ---------------------------------------------------------------------

// Profile is a per-bit entropy distribution.
type Profile = entropy.Profile

// AnalysisOptions parameterizes AnalyzeApp.
type AnalysisOptions struct {
	// Window is the number of concurrently executing TBs w (0 = 12, the
	// baseline SM count, per the paper's heuristic).
	Window int
	// Bits is the physical address width (0 = 30).
	Bits int
	// LineBytes is the coalescing granularity (0 = 128). Set negative
	// to analyze raw per-thread requests without coalescing.
	LineBytes int
	// Transform optionally maps addresses before profiling (e.g. a
	// Mapper's Map method, to obtain Figure 10-style post-mapping
	// profiles). When the streaming analyzers fan out (Workers > 1),
	// Transform is called from that many goroutines concurrently and
	// must be safe for concurrent use (Mapper.Map is).
	Transform func(uint64) uint64
	// Workers controls the per-TB fan-out of the streaming analyzers
	// (AnalyzeSource, AnalyzeStream): 0 uses GOMAXPROCS — unless a
	// Transform is set, in which case 0 stays single-threaded so
	// stateful transforms are safe by default (set Workers explicitly
	// to fan a concurrency-safe Transform out). Negative always forces
	// single-threaded folding. AnalyzeApp ignores it.
	Workers int
}

// AnalyzeApp computes the window-based entropy distribution of an
// application trace (Equations 1–2, aggregated per kernel and weighted by
// request counts). It is the materialized reference path; AnalyzeSource
// and AnalyzeStream produce bit-identical profiles one batch at a time.
func AnalyzeApp(app *App, opt AnalysisOptions) Profile {
	opt = opt.withDefaults()
	a := app
	if opt.LineBytes > 0 {
		a = trace.CoalesceApp(app, opt.LineBytes)
	}
	var f entropy.Transform
	if opt.Transform != nil {
		f = opt.Transform
	}
	return entropy.AppProfile(a, opt.Window, opt.Bits, f)
}

func (opt AnalysisOptions) withDefaults() AnalysisOptions {
	if opt.Window == 0 {
		opt.Window = 12
	}
	if opt.Bits == 0 {
		opt.Bits = 30
	}
	if opt.LineBytes == 0 {
		opt.LineBytes = 128
	}
	return opt
}

// AnalyzeSource profiles a streaming trace source end to end —
// generate/decode → coalesce → online windowed profile — without ever
// materializing the trace: memory is O(window × bits) plus one batch,
// however long the trace runs. The result is bit-identical to
// AnalyzeApp over the collected trace.
func AnalyzeSource(src TraceSource, opt AnalysisOptions) (Profile, error) {
	return AnalyzeStream(src.Stream(), opt)
}

// AnalyzeStream is AnalyzeSource for an already-started stream (e.g. a
// CSVTraceStream over a network body or an on-disk trace).
func AnalyzeStream(st TraceStream, opt AnalysisOptions) (Profile, error) {
	opt = opt.withDefaults()
	if opt.LineBytes > 0 {
		st = trace.CoalesceStream(st, opt.LineBytes)
	}
	workers := opt.Workers
	if workers == 0 && opt.Transform == nil {
		workers = runtime.GOMAXPROCS(0)
	}
	return entropy.ProfileStream(st, entropy.StreamOptions{
		Window:    opt.Window,
		Bits:      opt.Bits,
		Transform: opt.Transform,
		Workers:   workers,
	})
}

// ---------------------------------------------------------------------
// Simulation (Table I systems)
// ---------------------------------------------------------------------

// Time is a simulation timestamp in picoseconds.
type Time = sim.Time

// SimConfig describes a simulated GPU system.
type SimConfig = gpusim.Config

// SimResult carries all measured metrics of one run.
type SimResult = gpusim.Result

// PowerBreakdown is DRAM power by component (Figure 16).
type PowerBreakdown = power.Breakdown

// BaselineConfig returns the paper's 12-SM GDDR5 system.
func BaselineConfig() SimConfig { return gpusim.Baseline() }

// ConventionalConfig returns a GDDR5 system with the given SM count
// (12/24/48 in Figure 18).
func ConventionalConfig(sms int) SimConfig { return gpusim.Conventional(sms) }

// Stacked3DConfig returns the 64-SM 3D-stacked system of Figure 18.
func Stacked3DConfig() SimConfig { return gpusim.Stacked3D() }

// Simulate runs one application trace under one mapping scheme.
func Simulate(app *App, m Mapper, cfg SimConfig) SimResult {
	return gpusim.Run(app, m, cfg)
}

// SimRunner owns reusable simulation state (event-engine slab, request
// pools, program buffers). Callers running many simulations back to
// back should reuse one SimRunner per goroutine: results are
// bit-identical to fresh runs, at a fraction of the allocations.
type SimRunner = gpusim.Runner

// NewSimRunner returns an empty SimRunner.
func NewSimRunner() *SimRunner { return gpusim.NewRunner() }

// ---------------------------------------------------------------------
// Experiments (Section VI)
// ---------------------------------------------------------------------

// ExperimentOptions controls experiment scale and BIM seeds.
type ExperimentOptions = experiments.Options

// SuiteResult holds workload × scheme simulation results with the derived
// series of Figures 11–17 and 20.
type SuiteResult = experiments.SuiteResult

// Experiment runners (see README.md for the experiment index).
func Figure3() (w2, w4 float64)                                { return experiments.Figure3() }
func Figure5(o ExperimentOptions) map[string]Profile           { return experiments.Figure5(o) }
func Figure10(o ExperimentOptions) map[Scheme]Profile          { return experiments.Figure10(o) }
func ValleySuite(o ExperimentOptions) SuiteResult              { return experiments.ValleySuite(o) }
func NonValleySuite(o ExperimentOptions) SuiteResult           { return experiments.NonValleySuite(o) }
func Figure18(o ExperimentOptions) []experiments.Figure18Point { return experiments.Figure18(o) }
func Figure19(o ExperimentOptions) map[Scheme][3]float64       { return experiments.Figure19(o) }
func Table2(o ExperimentOptions) []experiments.Table2Row       { return experiments.Table2(o) }

// Ablations: the input-breadth sweep behind the Broad-strategy argument
// and the window-size sensitivity of the entropy metric.
func AblationInputBreadth(o ExperimentOptions) []experiments.BreadthPoint {
	return experiments.AblationInputBreadth(o)
}
func AblationWindowSize(o ExperimentOptions, windows []int) []experiments.WindowPoint {
	return experiments.AblationWindowSize(o, windows)
}

// NewCustomMapper wraps a user-built BIM as a mapping scheme.
func NewCustomMapper(name Scheme, l Layout, m BIM) (Mapper, error) {
	return mapping.NewCustom(name, l, m)
}

// NewBroadCustomMapper generates a Broad-strategy mapper drawing from an
// arbitrary input-bit mask (the breadth-ablation knob).
func NewBroadCustomMapper(name Scheme, l Layout, inMask uint64, seed int64) Mapper {
	return mapping.NewBroadCustom(name, l, inMask, seed)
}

// RunSuite simulates a workload set under a scheme set on one system.
func RunSuite(specs []WorkloadSpec, schemes []Scheme, cfg SimConfig, o ExperimentOptions) SuiteResult {
	return experiments.RunSuite(specs, schemes, cfg, o)
}

// Renderers produce the text form of each experiment.
func RenderFigure3(w io.Writer)                       { experiments.RenderFigure3(w) }
func RenderFigure5(w io.Writer, o ExperimentOptions)  { experiments.RenderFigure5(w, o) }
func RenderFigure10(w io.Writer, o ExperimentOptions) { experiments.RenderFigure10(w, o) }
func RenderTable2(w io.Writer, o ExperimentOptions)   { experiments.RenderTable2(w, o) }
func RenderSuiteFigures(w io.Writer, s SuiteResult)   { experiments.RenderSuiteFigures(w, s) }
func RenderFigure18(w io.Writer, o ExperimentOptions) { experiments.RenderFigure18(w, o) }
func RenderFigure19(w io.Writer, o ExperimentOptions) { experiments.RenderFigure19(w, o) }
func RenderFigure20(w io.Writer, s SuiteResult)       { experiments.RenderFigure20(w, s) }

// RenderAblationBreadth prints the BIM input-breadth ablation.
func RenderAblationBreadth(w io.Writer, o ExperimentOptions) {
	experiments.RenderAblationBreadth(w, o)
}

// RenderAblationWindow prints the entropy window-size ablation.
func RenderAblationWindow(w io.Writer, o ExperimentOptions) {
	experiments.RenderAblationWindow(w, o)
}

// WriteTraceCSV streams an application trace in the package's CSV trace
// format (see internal/trace: K records for kernels, R records for
// requests), so traces can be inspected or exchanged with other tools.
func WriteTraceCSV(w io.Writer, app *App) error { return trace.WriteCSV(w, app) }

// ReadTraceCSV parses a trace in the package's CSV format — the path for
// analyzing *real* GPU traces dumped by an instrumented simulator.
func ReadTraceCSV(r io.Reader) (*App, error) { return trace.ReadCSV(r) }

// WriteTraceBinary streams an application trace in the VTRC binary
// container (fixed-width records, checksummed; see internal/trace's
// doc.go for the layout and stability contract). Binary traces decode
// roughly an order of magnitude cheaper than CSV and can be profiled
// zero-copy via OpenTraceMmap.
func WriteTraceBinary(w io.Writer, app *App) error { return trace.WriteBinary(w, app) }

// WriteTraceBinaryStream converts a trace stream to the VTRC binary
// container without materializing it (memory stays O(largest TB)) —
// the CSV→binary half of cmd/tracepack.
func WriteTraceBinaryStream(w io.Writer, st TraceStream) error {
	return trace.WriteBinaryStream(w, st)
}

// ReadTraceBinary parses a VTRC binary trace into a materialized App.
func ReadTraceBinary(r io.Reader) (*App, error) { return trace.ReadBinary(r) }

// ---------------------------------------------------------------------
// Service (cmd/valleyd and embedders)
// ---------------------------------------------------------------------

// Service is the valleyd engine: a concurrent entropy-profiling and
// mapping-advisor service with a content-addressed LRU profile cache
// and a bounded worker pool for simulation sweeps. Serve its Handler
// over net/http, or call Profile/Advise/Simulate directly in-process.
type Service = service.Service

// ServiceConfig sizes a Service (workers, queue depth, cache entries).
type ServiceConfig = service.Config

// Service request/response types.
type (
	ServiceProfileRequest  = service.ProfileRequest
	ServiceProfileResult   = service.ProfileResult
	ServiceAdviseRequest   = service.AdviseRequest
	ServiceAdviseResult    = service.AdviseResult
	ServiceSimulateRequest = service.SimulateRequest
	ServiceSimulateResult  = service.SimulateResult
	ServiceJob             = service.Job
	ServiceCellResult      = service.CellResult
)

// Streaming sweep events: each running job publishes start / cell /
// terminal records on a per-job bus, exposed over HTTP as NDJSON
// (POST /v1/simulate?stream=1, GET /v1/jobs/{id}/events) and in-process
// via Service.JobEvents. Events arrive in seq order with no duplicates,
// and every cell event precedes the single terminal event (done, failed,
// canceled or deadline_exceeded).
type (
	ServiceJobEvent        = service.JobEvent
	ServiceJobSubscription = service.JobSubscription
)

// Job event types, in stream order.
const (
	ServiceEventStart            = service.EventStart
	ServiceEventCell             = service.EventCell
	ServiceEventDone             = service.EventDone
	ServiceEventFailed           = service.EventFailed
	ServiceEventCanceled         = service.EventCanceled
	ServiceEventDeadlineExceeded = service.EventDeadlineExceeded
)

// ServiceJobTrace is the span tree of one sweep job: accept → enqueue →
// per-cell queue wait → trace build → engine run → cache put, served
// over HTTP as GET /v1/jobs/{id}/trace and in-process via
// Service.JobTrace.
type ServiceJobTrace = service.JobTrace

// NewService starts a service engine (its worker pool runs until Close).
// With ServiceConfig.SimCacheSnapshot set, the simulation-result cache
// persists across restarts (loaded on construction, saved periodically
// and on Close).
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewLogger builds a structured slog logger writing to w. format is
// "text" or "json"; level is debug|info|warn|error. Pass the result as
// ServiceConfig.Logger so the daemon's request logs, worker-panic
// reports and sweep lifecycle lines share one sink.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	return obs.NewLogger(w, format, level)
}
