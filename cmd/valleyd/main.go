// Command valleyd is the valleymap daemon: a long-running HTTP service
// that profiles address-bit entropy, recommends BIM address mappings and
// runs scheme × workload simulation sweeps over a bounded worker pool,
// with a content-addressed LRU cache in front of the profiler.
//
// Usage:
//
//	valleyd [-addr :8080] [-workers N] [-queue 256] [-cache 512] [-sim-cache 256]
//	        [-max-trace-bytes N] [-trace-dir DIR] [-spill-dir DIR] [-spill-max-bytes N]
//	        [-snapshot PATH] [-default-deadline 0] [-log-level info] [-log-format text]
//	        [-debug-addr :6060] [-mode single|coordinator|worker] [-peers URL,URL,...]
//	        [-peer-stall 60s]
//
// Endpoints:
//
//	POST /v1/profile          {"workload":"MT","scale":"tiny"}  or a text/csv trace body
//	POST /v1/advise           {"workload":"MT"}                 recommended PAE/FAE/ALL BIM
//	POST /v1/simulate         {"set":"valley","scale":"tiny"}   returns 202 + job id
//	POST /v1/simulate?stream=1                                  streams NDJSON cell events live
//	GET  /v1/jobs/{id}                                          poll the sweep
//	DELETE /v1/jobs/{id}                                        cancel a running sweep
//	GET  /v1/jobs/{id}/events                                   stream job events (?from=seq resumes)
//	GET  /v1/jobs/{id}/trace                                    span tree of the sweep (accept → enqueue → cells)
//	GET  /healthz
//	GET  /metrics
//
// Trace uploads stream through the profiling pipeline at O(window × bits)
// memory per request, so the body cap (413 limit) defaults to 256 MiB —
// it bounds bandwidth, not memory — and can be raised further with
// -max-trace-bytes. Bodies may be CSV (text/csv, the default) or the
// VTRC binary container (Content-Type: application/x-valley-trace, see
// cmd/tracepack); both formats hash to the same canonical identity, so
// they share cache entries. With -trace-dir, requests can instead name
// local files ({"trace_file":"x.vtrc"}); binary files are then profiled
// zero-copy via mmap with no HTTP body at all.
//
// With -spill-dir, the simulation-result cache is two-tier: cells
// evicted from memory spill to checksummed per-entry files (written
// asynchronously, bounded by -spill-max-bytes) and are promoted back on
// demand, so a restarted daemon answers repeat sweeps from cache (cells
// report "cached": true) instead of re-simulating, and warm capacity is
// bounded by disk, not RAM. -snapshot names a legacy VSIMCSH1 file from
// older daemons; it is loaded at startup and migrated into the spill
// directory once.
//
// Deadlines: sweep requests may carry ?deadline_ms= or an X-Deadline-Ms
// header; -default-deadline bounds sweeps that carry neither (0 keeps
// them unbounded). Sweeps that overrun are canceled mid-cell and report
// a deadline_exceeded terminal event; sweeps that the admission gate
// predicts cannot finish in time are shed up front with 429 +
// Retry-After.
//
// Cluster mode: -mode=coordinator -peers=http://w1:8080,http://w2:8080
// shards each sweep's cells across the named worker daemons by
// rendezvous hashing over their simulation-cache keys, so a repeated
// cell always lands on the worker whose cache (including its -spill-dir
// tier) is already warm and comes back "cached": true. Workers are
// plain valleyd daemons — -mode=worker is an alias for single-node mode
// that documents the role; every daemon serves POST /v1/cells. The
// coordinator steals cells from slow or dead workers (bounded by
// -peer-stall), retries them on the next-ranked peer, and degrades to
// local execution when no peer is reachable; X-Trace-Id and
// X-Deadline-Ms propagate on every coordinator→worker hop. See the
// valleyd_cluster_* metric families for dispatch, steal and peer-health
// accounting.
//
// Observability: every request gets a trace_id (client-supplied
// X-Trace-Id or generated) carried by its logs, its job's span tree and
// every NDJSON event. -log-level and -log-format select the slog
// threshold and text|json encoding; -v remains a shorthand for
// -log-level debug. -debug-addr starts a second listener exposing
// net/http/pprof under /debug/pprof/ — opt-in and separate from the
// service address so profiling is never exposed on the public port.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"valleymap"
	"valleymap/internal/cluster"
	"valleymap/internal/fault"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "worker-pool queue depth (0 = 256)")
	cacheEntries := flag.Int("cache", 0, "profile-cache entries (0 = 512)")
	simCacheEntries := flag.Int("sim-cache", 0, "simulation-result cache entries (0 = 256)")
	maxTraceBytes := flag.Int64("max-trace-bytes", 0, "uploaded trace body cap in bytes (0 = 256 MiB; uploads stream, so this bounds bandwidth, not memory)")
	traceDir := flag.String("trace-dir", "", "directory of local trace files; enables {\"trace_file\":\"name\"} profile requests that mmap VTRC binaries zero-copy instead of uploading the body (empty = disabled)")
	spillDir := flag.String("spill-dir", "", "simulation-cache spill directory (empty = memory-only); evicted cells spill to checksummed per-entry files and are promoted back on demand, so the cache survives restarts and grows past RAM")
	spillMaxBytes := flag.Int64("spill-max-bytes", 0, "byte budget for the spill directory, enforced by evicting the lowest cost-per-byte entries (0 = 1 GiB; negative = unbounded)")
	snapshot := flag.String("snapshot", "", "legacy VSIMCSH1 simulation-cache snapshot file; loaded on startup and, with -spill-dir, migrated into the spill directory once (never written)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline applied to sweep requests that carry no ?deadline_ms or X-Deadline-Ms budget (0 = unbounded)")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log encoding: text or json")
	debugAddr := flag.String("debug-addr", "", "optional second listen address serving net/http/pprof under /debug/pprof/ (empty = disabled)")
	mode := flag.String("mode", "single", "single, coordinator (shard sweeps across -peers) or worker (single-node daemon serving a coordinator)")
	peers := flag.String("peers", "", "comma-separated worker base URLs for -mode=coordinator (e.g. http://worker1:8080,http://worker2:8080)")
	peerStall := flag.Duration("peer-stall", 0, "silence budget per worker batch before its cells are stolen (0 = 60s; coordinator only)")
	verbose := flag.Bool("v", false, "debug logging (alias for -log-level debug)")
	flag.Parse()

	if *verbose {
		*logLevel = "debug"
	}
	logger, err := valleymap.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		slog.Error("bad logging flags", "error", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// Chaos (-tags faultinject) builds announce themselves: injection
	// hooks are live machinery that must never reach production, and
	// the logged marker doubles as the string CI greps binaries for.
	if fault.Enabled {
		slog.Warn("fault-injection build: chaos hooks are compiled in", "marker", fault.Marker)
	}

	var clu *cluster.Client
	switch *mode {
	case "single", "worker":
		// A worker is a single-node daemon by another name: the role
		// flag exists so deployments read honestly, and every daemon
		// serves /v1/cells regardless.
		if *peers != "" {
			slog.Error("-peers requires -mode=coordinator", "mode", *mode)
			os.Exit(2)
		}
	case "coordinator":
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				list = append(list, p)
			}
		}
		if len(list) == 0 {
			slog.Error("-mode=coordinator requires -peers with at least one worker URL")
			os.Exit(2)
		}
		clu = cluster.New(cluster.Options{Peers: list, StallTimeout: *peerStall, Logger: logger})
		slog.Info("coordinator mode", "peers", list)
	default:
		slog.Error("bad -mode (want single, coordinator or worker)", "mode", *mode)
		os.Exit(2)
	}

	svc := valleymap.NewService(valleymap.ServiceConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheEntries,
		SimCacheEntries:  *simCacheEntries,
		MaxTraceBytes:    *maxTraceBytes,
		TraceDir:         *traceDir,
		SpillDir:         *spillDir,
		SpillMaxBytes:    *spillMaxBytes,
		SimCacheSnapshot: *snapshot,
		DefaultDeadline:  *defaultDeadline,
		Logger:           logger,
		Cluster:          clu,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(), // logs each request at debug level via slog
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		slog.Info("valleyd listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	// The pprof listener is its own server on its own mux: the default
	// ServeMux (which net/http/pprof registers on by import) is never
	// exposed, and a failed debug listener is fatal the same way the
	// service listener is — silently losing profiling is worse than
	// failing fast at startup.
	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Addr: *debugAddr, Handler: dbg, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			slog.Info("pprof listening", "addr", *debugAddr)
			errc <- dsrv.ListenAndServe()
		}()
		defer dsrv.Close()
	}

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			slog.Error("server failed", "error", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		slog.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			slog.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
	}
	slog.Info("bye")
}
