// Command bimgen generates, prints and verifies the Binary Invertible
// Matrices behind each mapping scheme.
//
// Usage:
//
//	bimgen -scheme PAE [-seed 1] [-layout hynix|3d] [-verify 100000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"valleymap"
)

func main() {
	scheme := flag.String("scheme", "PAE", "mapping scheme: BASE, PM, RMP, PAE, FAE, ALL")
	seed := flag.Int64("seed", 1, "BIM seed for PAE/FAE/ALL")
	layoutName := flag.String("layout", "hynix", "address layout: hynix or 3d")
	verify := flag.Int("verify", 100000, "random addresses to round-trip through the inverse")
	flag.Parse()

	l := valleymap.HynixGDDR5()
	if strings.ToLower(*layoutName) == "3d" {
		l = valleymap.Stacked3D()
	}
	m := valleymap.NewMapper(valleymap.Scheme(strings.ToUpper(*scheme)), l, *seed)
	mat := m.Matrix()

	fmt.Printf("%v\n", m)
	fmt.Printf("layout: %s\n\n", l)
	fmt.Println(mat)

	gates, depth := mat.GateCost()
	fmt.Printf("\nhardware: %d two-input XOR gates, critical path %d levels\n", gates, depth)
	fmt.Printf("invertible: %v (rank %d/%d)\n", mat.Invertible(), mat.Rank(), mat.N())

	if *verify > 0 {
		inv, err := mat.Inverse()
		if err != nil {
			fmt.Fprintf(os.Stderr, "inverse: %v\n", err)
			os.Exit(1)
		}
		rng := rand.New(rand.NewSource(99))
		mask := l.Capacity() - 1
		for i := 0; i < *verify; i++ {
			a := rng.Uint64() & mask
			if inv.Apply(mat.Apply(a)) != a {
				fmt.Fprintf(os.Stderr, "round-trip FAILED at %#x\n", a)
				os.Exit(1)
			}
		}
		fmt.Printf("round-trip verified on %d random addresses\n", *verify)
	}
}
