// Command entropymap prints the window-based entropy distribution of a
// benchmark, optionally after an address mapping scheme — the per-
// workload view behind Figures 5 and 10.
//
// Traces are profiled through the streaming pipeline (generate/decode →
// coalesce → online windowed profile), so -trace handles files far
// larger than memory at O(window × bits) footprint. Both trace
// containers are accepted (sniffed by magic): CSV streams through the
// tokenizing decoder, VTRC binary (see cmd/tracepack) is mmapped and
// profiled zero-copy.
//
// Usage:
//
//	entropymap -bench MT [-scheme PAE] [-window 12] [-scale small] [-seed 1]
//	entropymap -trace dump.csv [-scheme PAE] [-window 12]
//	entropymap -trace dump.vtrc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"valleymap"
)

func bar(v float64) string {
	n := int(v*40 + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", 40-n)
}

func main() {
	bench := flag.String("bench", "MT", "benchmark abbreviation (Table II)")
	traceFile := flag.String("trace", "", "analyze a trace file (CSV or VTRC binary, sniffed) instead of a packaged benchmark")
	scheme := flag.String("scheme", "", "optional mapping scheme applied before analysis")
	window := flag.Int("window", 12, "window size w (TBs executing concurrently)")
	scale := flag.String("scale", "small", "trace scale: tiny, small, full")
	seed := flag.Int64("seed", 1, "BIM seed")
	flag.Parse()

	// Both inputs stream: the generator emits TB by TB, file decoders
	// yield batches as the file is read (binary files are mmapped and
	// served zero-copy). Nothing materializes the trace.
	var src valleymap.TraceSource
	if *traceFile != "" {
		s, release, err := valleymap.OpenTraceFile(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer release() //nolint:errcheck // read-only handle
		src = s
	} else {
		spec, ok := valleymap.WorkloadByAbbr(strings.ToUpper(*bench))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		var sc valleymap.Scale
		switch strings.ToLower(*scale) {
		case "tiny":
			sc = valleymap.ScaleTiny
		case "full":
			sc = valleymap.ScaleFull
		default:
			sc = valleymap.ScaleSmall
		}
		src = spec.Source(sc)
	}
	opt := valleymap.AnalysisOptions{Window: *window}
	title := "physical addresses (BASE)"
	if *scheme != "" {
		m := valleymap.NewMapper(valleymap.Scheme(strings.ToUpper(*scheme)), valleymap.HynixGDDR5(), *seed)
		opt.Transform = m.Map
		title = fmt.Sprintf("after %s mapping", strings.ToUpper(*scheme))
	}
	prof, err := valleymap.AnalyzeSource(src, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	info := src.Info()
	l := valleymap.HynixGDDR5()
	fmt.Printf("%s (%s): window-based entropy of %s, w=%d, %d requests\n",
		info.Name, info.Abbr, title, *window, prof.Requests)
	fmt.Printf("layout: %s\n\n", l)
	for b := 29; b >= 6; b-- {
		field := ""
		switch {
		case b >= 18:
			field = "row"
		case b >= 14:
			field = "col"
		case b >= 10:
			field = "BANK"
		case b >= 8:
			field = "CHAN"
		default:
			field = "col"
		}
		fmt.Printf("bit %2d %-4s %.3f %s\n", b, field, prof.PerBit[b], bar(prof.PerBit[b]))
	}
	chBank := []int{8, 9, 10, 11, 12, 13}
	fmt.Printf("\nchannel+bank entropy: mean %.3f, min %.3f",
		prof.Mean(chBank), prof.Min(chBank))
	if prof.HasValley(chBank, 0.35, 0.6) {
		fmt.Printf("  -> ENTROPY VALLEY")
	}
	fmt.Println()
}
