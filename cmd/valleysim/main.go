// Command valleysim runs one benchmark under one address mapping scheme
// on a chosen system configuration and prints every measured metric.
//
// Usage:
//
//	valleysim -bench MT -scheme PAE [-scale small] [-sms 12] [-mem conv|3d]
//	          [-seed 1] [-compare]
//
// With -compare, the run is repeated for all six schemes and speedups
// over BASE are reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"valleymap"
)

func main() {
	bench := flag.String("bench", "MT", "benchmark abbreviation (Table II), e.g. MT, LU, BFS")
	scheme := flag.String("scheme", "PAE", "mapping scheme: BASE, PM, RMP, PAE, FAE, ALL")
	scale := flag.String("scale", "small", "trace scale: tiny, small, full")
	sms := flag.Int("sms", 12, "number of SMs (conventional memory)")
	mem := flag.String("mem", "conv", "memory organization: conv (GDDR5) or 3d (stacked)")
	seed := flag.Int64("seed", 1, "BIM seed for PAE/FAE/ALL")
	compare := flag.Bool("compare", false, "run all six schemes and compare")
	asJSON := flag.Bool("json", false, "emit the result as JSON (single-scheme mode)")
	flag.Parse()

	spec, ok := valleymap.WorkloadByAbbr(strings.ToUpper(*bench))
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; known:", *bench)
		for _, s := range valleymap.AllWorkloads() {
			fmt.Fprintf(os.Stderr, " %s", s.Abbr)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	var sc valleymap.Scale
	switch strings.ToLower(*scale) {
	case "tiny":
		sc = valleymap.ScaleTiny
	case "small":
		sc = valleymap.ScaleSmall
	case "full":
		sc = valleymap.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	cfg := valleymap.ConventionalConfig(*sms)
	if strings.ToLower(*mem) == "3d" {
		cfg = valleymap.Stacked3DConfig()
	}

	app := spec.Build(sc)
	if !*asJSON {
		fmt.Printf("%s (%s), %d kernels, %d requests, %s scale, system %s\n\n",
			spec.Name, spec.Abbr, len(app.Kernels), app.Requests(), sc, cfg.Name)
	}

	if *compare {
		var baseTime valleymap.Time
		fmt.Printf("%-5s %12s %9s %9s %9s %8s %8s %8s\n",
			"Map", "ExecTime", "Speedup", "RowHit", "DRAM(W)", "ChanPar", "BankPar", "NoC(cy)")
		for _, s := range valleymap.Schemes() {
			m := valleymap.NewMapper(s, cfg.Layout, *seed)
			r := valleymap.Simulate(app, m, cfg)
			if s == valleymap.BASE {
				baseTime = r.ExecTime
			}
			fmt.Printf("%-5s %12v %8.2fx %9.2f %9.2f %8.2f %8.2f %8.1f\n",
				s, r.ExecTime, float64(baseTime)/float64(r.ExecTime),
				r.DRAM.RowBufferHitRate(), r.DRAMPower.Total(),
				r.ChannelParallelism, r.BankParallelism, r.NoCAvgLatencyCycles)
		}
		return
	}

	m := valleymap.NewMapper(valleymap.Scheme(strings.ToUpper(*scheme)), cfg.Layout, *seed)
	r := valleymap.Simulate(app, m, cfg)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("mapper:            %v\n", m)
	fmt.Printf("execution time:    %v\n", r.ExecTime)
	fmt.Printf("instructions:      %d (%.2f GIPS)\n", r.Instructions, r.IPS()/1e9)
	fmt.Printf("transactions:      %d (from %d thread accesses)\n", r.Transactions, r.Requests)
	fmt.Printf("L1:                %d accesses, %.1f%% miss\n", r.L1.Accesses, 100*r.L1.MissRate())
	fmt.Printf("LLC:               %d accesses, %.1f%% miss (APKI %.2f, MPKI %.2f)\n",
		r.LLC.Accesses, 100*r.LLC.MissRate(), r.APKI, r.MPKI)
	fmt.Printf("NoC latency:       %.1f cycles/packet\n", r.NoCAvgLatencyCycles)
	fmt.Printf("parallelism:       LLC %.2f, channel %.2f, bank %.2f\n",
		r.LLCParallelism, r.ChannelParallelism, r.BankParallelism)
	fmt.Printf("DRAM:              %d reads, %d writes, %d activations, %.1f%% row-buffer hits\n",
		r.DRAM.Reads, r.DRAM.Writes, r.DRAM.Activations, 100*r.DRAM.RowBufferHitRate())
	fmt.Printf("DRAM power:        %.2f W (bg %.2f, act %.2f, rd %.2f, wr %.2f)\n",
		r.DRAMPower.Total(), r.DRAMPower.Background, r.DRAMPower.Activate,
		r.DRAMPower.Read, r.DRAMPower.Write)
	fmt.Printf("system power:      %.2f W (GPU %.2f W)\n", r.SystemW, r.GPUPowerW)
	fmt.Printf("perf/W:            %.3g insns/s/W\n", r.PerfPerW)
}
