// Command tracepack converts traces between the CSV container and the
// VTRC binary container (see internal/trace: doc.go documents the
// binary layout and its stability contract). Binary traces decode
// roughly an order of magnitude cheaper than CSV and can be profiled
// zero-copy via mmap (valleyd -trace-dir, entropymap -trace), so the
// usual flow is: dump or generate CSV once, pack it, profile the packed
// file forever after.
//
// Usage:
//
//	tracepack -in dump.csv -out dump.vtrc            CSV → binary
//	tracepack -in dump.vtrc -out dump.csv            binary → CSV
//	tracepack -workload MT -scale small -out mt.vtrc pack a built-in workload
//	tracepack -in dump.vtrc                          verify + print identity only
//
// The output format follows the -out extension: .csv writes CSV,
// anything else writes VTRC binary. -verify re-decodes the written file
// and checks that its canonical record-stream hash matches the input's
// — the same identity valleyd keys its profile cache on, so a verified
// conversion is guaranteed to hit the cache entries its CSV original
// populated. Conversion streams: memory stays O(largest TB) for binary
// output (CSV output materializes the trace).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"valleymap"
)

func main() {
	in := flag.String("in", "", "input trace file, CSV or VTRC binary (sniffed by magic)")
	workloadAbbr := flag.String("workload", "", "pack a built-in benchmark (Table II abbreviation) instead of reading -in")
	scale := flag.String("scale", "small", "built-in trace scale: tiny, small, full (with -workload)")
	out := flag.String("out", "", "output file; .csv extension writes CSV, anything else VTRC binary (empty = verify/identify the input only)")
	verify := flag.Bool("verify", false, "re-decode the written output and require its canonical hash to match the input's")
	flag.Parse()

	if err := run(*in, *workloadAbbr, *scale, *out, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "tracepack:", err)
		os.Exit(1)
	}
}

func run(in, workloadAbbr, scale, out string, verify bool) error {
	src, inputHash, release, err := openInput(in, workloadAbbr, scale)
	if err != nil {
		return err
	}
	defer release() //nolint:errcheck // read-only handle

	if out == "" {
		// Identify mode: drain once (validating the whole file — for
		// binary input the checksum was already verified at open) and
		// report the canonical identity.
		sum, err := inputHash()
		if err != nil {
			return err
		}
		fmt.Printf("%s  %s\n", sum, inputName(in, workloadAbbr))
		return nil
	}

	if err := convert(src, out); err != nil {
		os.Remove(out)
		return err
	}
	sum, err := inputHash()
	if err != nil {
		return fmt.Errorf("hashing input: %w", err)
	}
	if verify {
		outSum, err := hashFile(out)
		if err != nil {
			return fmt.Errorf("verifying %s: %w", out, err)
		}
		if outSum != sum {
			return fmt.Errorf("verify failed: output hash %s != input hash %s", outSum, sum)
		}
		fmt.Fprintf(os.Stderr, "verified: canonical hash %s\n", sum)
	}
	fmt.Printf("%s  %s\n", sum, out)
	return nil
}

// openInput returns the trace source plus a function producing the
// input's canonical hash. For single-shot file streams the hash is read
// off the decoder after the conversion drained it; restartable sources
// (workload generators, mmap) can be hashed independently.
func openInput(in, workloadAbbr, scale string) (valleymap.TraceSource, func() (string, error), func() error, error) {
	switch {
	case in != "" && workloadAbbr != "":
		return nil, nil, nil, fmt.Errorf("give either -in or -workload, not both")
	case workloadAbbr != "":
		spec, ok := valleymap.WorkloadByAbbr(strings.ToUpper(workloadAbbr))
		if !ok {
			return nil, nil, nil, fmt.Errorf("unknown workload %q", workloadAbbr)
		}
		var sc valleymap.Scale
		switch strings.ToLower(scale) {
		case "tiny":
			sc = valleymap.ScaleTiny
		case "small":
			sc = valleymap.ScaleSmall
		case "full":
			sc = valleymap.ScaleFull
		default:
			return nil, nil, nil, fmt.Errorf("unknown scale %q (want tiny, small or full)", scale)
		}
		src := spec.Source(sc)
		hash := func() (string, error) { return valleymap.TraceCanonicalHash(src) }
		return src, hash, func() error { return nil }, nil
	case in != "":
		src, release, err := valleymap.OpenTraceFile(in)
		if err != nil {
			return nil, nil, nil, err
		}
		hash := func() (string, error) {
			switch s := src.(type) {
			case *valleymap.MmapTraceSource:
				return s.SHA256(), nil
			case *valleymap.CSVTraceStream:
				// Single-shot: drain whatever remains (identify mode; a
				// prior conversion leaves a sticky EOF that makes this a
				// no-op), then read the fold.
				for {
					if _, err := s.Next(); err != nil {
						if err == io.EOF {
							return s.SHA256(), nil
						}
						return "", err
					}
				}
			default:
				return valleymap.TraceCanonicalHash(src)
			}
		}
		return src, hash, release, nil
	default:
		return nil, nil, nil, fmt.Errorf("give -in FILE or -workload ABBR (and -out FILE to convert)")
	}
}

func inputName(in, workloadAbbr string) string {
	if in != "" {
		return in
	}
	return "workload " + strings.ToUpper(workloadAbbr)
}

// convert writes src to out in the format selected by the extension.
func convert(src valleymap.TraceSource, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(strings.ToLower(out), ".csv") {
		// CSV output materializes (WriteTraceCSV walks an App); fine for
		// the inspect/export direction.
		app, err := valleymap.CollectTrace(src)
		if err != nil {
			f.Close()
			return fmt.Errorf("decoding input: %w", err)
		}
		if err := valleymap.WriteTraceCSV(f, app); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := valleymap.WriteTraceBinaryStream(f, src.Stream()); err != nil {
		f.Close()
		return fmt.Errorf("encoding %s: %w", out, err)
	}
	return f.Close()
}

// hashFile decodes a trace file from scratch and returns its canonical
// record-stream hash.
func hashFile(path string) (string, error) {
	src, release, err := valleymap.OpenTraceFile(path)
	if err != nil {
		return "", err
	}
	defer release() //nolint:errcheck // read-only handle
	if ms, ok := src.(*valleymap.MmapTraceSource); ok {
		return ms.SHA256(), nil
	}
	return valleymap.TraceCanonicalHash(src)
}
