// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig3|fig5|fig10|table2|suite|fig18|fig19|fig20|ablation]
//	            [-scale tiny|small|full] [-seed N]
//
// "suite" renders Figures 11–17 from one valley-benchmark sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"valleymap"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig3, fig5, fig10, table2, suite, fig18, fig19, fig20, ablation")
	scale := flag.String("scale", "small", "trace scale: tiny, small, full")
	seed := flag.Int64("seed", 1, "BIM seed (1..3 are the paper's BIM-1..BIM-3)")
	flag.Parse()

	opt := valleymap.ExperimentOptions{Seed: *seed}
	switch strings.ToLower(*scale) {
	case "tiny":
		opt.Scale = valleymap.ScaleTiny
	case "small":
		opt.Scale = valleymap.ScaleSmall
	case "full":
		opt.Scale = valleymap.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	out := os.Stdout
	run := map[string]func(){
		"fig3":   func() { valleymap.RenderFigure3(out) },
		"fig5":   func() { valleymap.RenderFigure5(out, opt) },
		"fig10":  func() { valleymap.RenderFigure10(out, opt) },
		"table2": func() { valleymap.RenderTable2(out, opt) },
		"suite": func() {
			fmt.Fprintf(out, "Running the valley suite (10 benchmarks x 6 schemes, %s scale)...\n\n", *scale)
			suite := valleymap.ValleySuite(opt)
			valleymap.RenderSuiteFigures(out, suite)
		},
		"fig18": func() { valleymap.RenderFigure18(out, opt) },
		"fig19": func() { valleymap.RenderFigure19(out, opt) },
		"fig20": func() {
			suite := valleymap.NonValleySuite(opt)
			valleymap.RenderFigure20(out, suite)
		},
		"ablation": func() {
			valleymap.RenderAblationBreadth(out, opt)
			fmt.Fprintln(out)
			valleymap.RenderAblationWindow(out, opt)
		},
	}

	order := []string{"fig3", "fig5", "fig10", "table2", "suite", "fig18", "fig19", "fig20", "ablation"}
	name := strings.ToLower(*exp)
	if name == "all" {
		for _, n := range order {
			run[n]()
			fmt.Fprintln(out)
		}
		return
	}
	f, ok := run[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of all %s)\n", *exp, strings.Join(order, " "))
		os.Exit(2)
	}
	f()
}
