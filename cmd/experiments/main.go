// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-exp all|fig3|fig5|fig10|table2|suite|fig18|fig19|fig20|ablation]
//	            [-scale tiny|small|full] [-seed N] [-format text|json]
//	experiments -trace FILE [-window 12] [-format text|json]
//
// "suite" renders Figures 11–17 from one valley-benchmark sweep. With
// -format json, each experiment emits a machine-readable envelope
// ({"experiment","options","data"}) instead of rendered text — one JSON
// value for a single experiment, a JSON array for -exp all — so services
// and scripts can consume sweep results directly.
//
// -trace sidesteps the packaged benchmarks entirely and profiles a local
// trace file with the Figure-5 per-bit analysis. Both containers are
// accepted (sniffed by magic): CSV streams through the tokenizing
// decoder; VTRC binary (see cmd/tracepack) is mmapped and profiled
// zero-copy, so full-scale captures profile at flat memory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"valleymap"
	"valleymap/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig3, fig5, fig10, table2, suite, fig18, fig19, fig20, ablation")
	scale := flag.String("scale", "small", "trace scale: tiny, small, full")
	seed := flag.Int64("seed", 1, "BIM seed (1..3 are the paper's BIM-1..BIM-3)")
	format := flag.String("format", "text", "output format: text, json")
	traceFile := flag.String("trace", "", "profile a local trace file (CSV or VTRC binary, sniffed) instead of running packaged experiments")
	window := flag.Int("window", 12, "window size w for -trace profiling")
	flag.Parse()

	if *traceFile != "" {
		if err := profileTrace(*traceFile, *window, strings.ToLower(*format)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	opt := valleymap.ExperimentOptions{Seed: *seed}
	switch strings.ToLower(*scale) {
	case "tiny":
		opt.Scale = valleymap.ScaleTiny
	case "small":
		opt.Scale = valleymap.ScaleSmall
	case "full":
		opt.Scale = valleymap.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	name := strings.ToLower(*exp)
	names := []string{name}
	if name == "all" {
		names = experimentOrder
	}

	switch strings.ToLower(*format) {
	case "text":
		renderText(names, opt, *scale)
	case "json":
		renderJSON(names, opt)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
}

// profileTrace runs the Figure-5 per-bit entropy analysis over a local
// trace file. Binary files take the mmap path inside OpenTraceFile, so
// the profile runs zero-copy at flat memory regardless of trace size.
func profileTrace(path string, window int, format string) error {
	src, release, err := valleymap.OpenTraceFile(path)
	if err != nil {
		return err
	}
	defer release() //nolint:errcheck // read-only handle
	prof, err := valleymap.AnalyzeSource(src, valleymap.AnalysisOptions{Window: window})
	if err != nil {
		return err
	}
	info := src.Info()
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"experiment": "trace",
			"options":    map[string]any{"trace": path, "window": window},
			"data": map[string]any{
				"name":     info.Name,
				"abbr":     info.Abbr,
				"requests": prof.Requests,
				"per_bit":  prof.PerBit,
			},
		})
	case "text":
		fmt.Printf("%s (%s): per-bit window entropy, w=%d, %d requests\n",
			info.Name, info.Abbr, window, prof.Requests)
		for b := 29; b >= 6; b-- {
			fmt.Printf("bit %2d  %.3f\n", b, prof.PerBit[b])
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want text or json)", format)
	}
}

// experimentOrder is the "all" sequence, taken from the experiments
// package so this file, the JSON switch, and the run map cannot drift;
// renderText and JSONPayload each validate individual names, so an
// unknown -exp value errors cleanly in either format.
var experimentOrder = experiments.Names()

func unknownExperiment(name string) {
	fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of all %s)\n", name, strings.Join(experimentOrder, " "))
	os.Exit(2)
}

func renderText(names []string, opt valleymap.ExperimentOptions, scale string) {
	out := os.Stdout
	run := map[string]func(){
		"fig3":   func() { valleymap.RenderFigure3(out) },
		"fig5":   func() { valleymap.RenderFigure5(out, opt) },
		"fig10":  func() { valleymap.RenderFigure10(out, opt) },
		"table2": func() { valleymap.RenderTable2(out, opt) },
		"suite": func() {
			fmt.Fprintf(out, "Running the valley suite (10 benchmarks x 6 schemes, %s scale)...\n\n", scale)
			suite := valleymap.ValleySuite(opt)
			valleymap.RenderSuiteFigures(out, suite)
		},
		"fig18": func() { valleymap.RenderFigure18(out, opt) },
		"fig19": func() { valleymap.RenderFigure19(out, opt) },
		"fig20": func() {
			suite := valleymap.NonValleySuite(opt)
			valleymap.RenderFigure20(out, suite)
		},
		"ablation": func() {
			valleymap.RenderAblationBreadth(out, opt)
			fmt.Fprintln(out)
			valleymap.RenderAblationWindow(out, opt)
		},
	}
	for _, n := range names {
		f, ok := run[n]
		if !ok {
			unknownExperiment(n)
		}
		f()
		if len(names) > 1 {
			fmt.Fprintln(out)
		}
	}
}

func renderJSON(names []string, opt valleymap.ExperimentOptions) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	envs := make([]experiments.Envelope, 0, len(names))
	for _, n := range names {
		env, err := experiments.JSONPayload(n, opt)
		if err != nil {
			unknownExperiment(n)
		}
		envs = append(envs, env)
	}
	var payload any = envs
	if len(envs) == 1 {
		payload = envs[0]
	}
	if err := enc.Encode(payload); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
