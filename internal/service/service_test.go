package service

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"valleymap/internal/cache"
	"valleymap/internal/experiments"
)

// singleShardProfileCache pins per-shard LRU ordering for the tests
// below: with one shard a Sharded cache is behaviorally identical to
// the bare LRU (the internal/cache parity suite proves it), so
// eviction-order assertions stay deterministic regardless of how keys
// hash across the default shard count.
func singleShardProfileCache(capacity int) *profileCache {
	return cache.NewSharded(cache.ShardedOptions[*ProfileResult]{Capacity: capacity, Shards: 1})
}

func TestProfileCacheLRUEviction(t *testing.T) {
	c := singleShardProfileCache(2)
	mk := func(key string) *ProfileResult { return &ProfileResult{CacheKey: key} }
	for _, k := range []string{"a", "b", "c"} {
		k := k
		if _, hit, err := c.GetOrCompute(k, func() (*ProfileResult, error) { return mk(k), nil }); err != nil || hit {
			t.Fatalf("first compute of %q: hit=%v err=%v", k, hit, err)
		}
	}
	// "a" was evicted by "c"; "b" and "c" are resident.
	if c.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.Len())
	}
	if _, hit, _ := c.GetOrCompute("b", func() (*ProfileResult, error) { return mk("b"), nil }); !hit {
		t.Error("b should be resident")
	}
	if _, hit, _ := c.GetOrCompute("a", func() (*ProfileResult, error) { return mk("a"), nil }); hit {
		t.Error("a should have been evicted")
	}
}

func TestProfileCacheTouchRefreshesLRU(t *testing.T) {
	c := singleShardProfileCache(2)
	mk := func(key string) *ProfileResult { return &ProfileResult{CacheKey: key} }
	c.GetOrCompute("a", func() (*ProfileResult, error) { return mk("a"), nil })
	c.GetOrCompute("b", func() (*ProfileResult, error) { return mk("b"), nil })
	c.GetOrCompute("a", func() (*ProfileResult, error) { return mk("a"), nil }) // touch a
	c.GetOrCompute("c", func() (*ProfileResult, error) { return mk("c"), nil }) // evicts b
	if _, hit, _ := c.GetOrCompute("a", func() (*ProfileResult, error) { return mk("a"), nil }); !hit {
		t.Error("a was touched and must survive")
	}
	if _, hit, _ := c.GetOrCompute("b", func() (*ProfileResult, error) { return mk("b"), nil }); hit {
		t.Error("b was least recently used and must be evicted")
	}
}

func TestProfileCacheCoalescesInflight(t *testing.T) {
	c := newProfileCache(8, NewMetrics())
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 20
	var wg sync.WaitGroup
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.GetOrCompute("k", func() (*ProfileResult, error) {
				computes.Add(1)
				<-gate
				return &ProfileResult{CacheKey: "k"}, nil
			})
			if err != nil {
				t.Error(err)
			}
			hits[i] = hit
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want exactly 1", got)
	}
	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if nHits != n-1 {
		t.Errorf("%d hits out of %d, want %d (all but the computing caller)", nHits, n, n-1)
	}
}

func TestProfileCacheSurvivesPanickingCompute(t *testing.T) {
	c := newProfileCache(8, NewMetrics())
	_, _, err := c.GetOrCompute("k", func() (*ProfileResult, error) { panic("boom") })
	if err == nil {
		t.Fatal("panicking compute must surface as an error")
	}
	// The key must not be poisoned: a retry computes fresh, no hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, hit, err := c.GetOrCompute("k", func() (*ProfileResult, error) { return &ProfileResult{}, nil }); hit || err != nil {
			t.Errorf("retry after panic: hit=%v err=%v", hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retry after panicking compute hung — in-flight entry leaked")
	}
}

func TestProfileCacheDoesNotCacheErrors(t *testing.T) {
	c := newProfileCache(8, NewMetrics())
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("k", func() (*ProfileResult, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit, err := c.GetOrCompute("k", func() (*ProfileResult, error) { return &ProfileResult{}, nil }); hit || err != nil {
		t.Fatalf("after error: hit=%v err=%v, want recompute", hit, err)
	}
}

func TestProfileWorkloadAndValley(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	res, hit, err := s.Profile(ProfileRequest{Workload: "MT", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request must miss")
	}
	if len(res.PerBit) != 30 {
		t.Fatalf("per_bit has %d entries, want 30", len(res.PerBit))
	}
	if !res.Valley {
		t.Error("MT must classify as an entropy-valley workload")
	}
	if len(res.ValleyRanges) == 0 {
		t.Error("MT must report at least one valley range")
	}
	for _, r := range res.ValleyRanges {
		// 128 B coalescing zeroes bits 0-6; dead line-offset bits are
		// structural, not a harvestable valley.
		if r.Lo < 7 {
			t.Errorf("valley range %+v includes coalescing-zeroed bits", r)
		}
	}

	res2, hit2, err := s.Profile(ProfileRequest{Workload: "MT", Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Error("identical request must hit the cache")
	}
	if res2.CacheKey != res.CacheKey {
		t.Errorf("cache keys differ: %q vs %q", res.CacheKey, res2.CacheKey)
	}

	// Different options must not collide.
	res3, hit3, err := s.Profile(ProfileRequest{Workload: "MT", Scale: "tiny", Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hit3 {
		t.Error("different window must be a distinct cache entry")
	}
	if res3.CacheKey == res.CacheKey {
		t.Error("window must be part of the cache key")
	}
}

func TestProfileLargeLineBytesDoesNotForceValley(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	// 512 B coalescing structurally zeroes channel bit 8; the valley
	// verdict must come from the surviving channel/bank bits, not from
	// bits the line mask forced to zero.
	res, _, err := s.Profile(ProfileRequest{Workload: "MUM", Scale: "tiny", LineBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Valley {
		t.Error("MUM (uniform random) must not be classified as a valley just because line_bytes=512 zeroes bit 8")
	}
	for _, r := range res.ValleyRanges {
		if r.Lo < 9 {
			t.Errorf("valley range %+v includes bits zeroed by 512 B coalescing", r)
		}
	}
}

func TestProfileSeedIgnoredWithoutScheme(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	r1, _, err := s.Profile(ProfileRequest{Workload: "SP", Scale: "tiny", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, hit, err := s.Profile(ProfileRequest{Workload: "SP", Scale: "tiny", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Errorf("seed without scheme must not fragment the cache (key %q)", r1.CacheKey)
	}
}

func TestJobStoreEvictsFinishedAndBoundsInflight(t *testing.T) {
	js := newJobStore(2)
	a, err := js.create("simulate", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	js.finish(a.ID, nil, nil)
	b, err := js.create("simulate", 1, nil) // in flight: must never be evicted
	if err != nil {
		t.Fatal(err)
	}
	c, err := js.create("simulate", 1, nil) // at cap: evicts finished a
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := js.get(a.ID); ok {
		t.Error("oldest finished job must be evicted past the cap")
	}
	for _, id := range []string{b.ID, c.ID} {
		if _, ok := js.get(id); !ok {
			t.Errorf("job %s must be retained", id)
		}
	}
	// Cap full of in-flight jobs: creation must fail, not grow the store.
	if _, err := js.create("simulate", 1, nil); err == nil {
		t.Error("create with a cap full of in-flight jobs must error")
	}
	js.finish(b.ID, nil, nil)
	if _, err := js.create("simulate", 1, nil); err != nil {
		t.Errorf("create after a job finished must succeed, got %v", err)
	}
}

func TestSimulateRejectsWhenJobCapFull(t *testing.T) {
	s := New(Config{Workers: 1, MaxJobs: 1})
	defer s.Close()
	// Park the only worker so the first job stays in flight.
	gate := make(chan struct{})
	s.pool.submit(func() { <-gate })

	job, err := s.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		close(gate)
		t.Fatal(err)
	}
	_, err = s.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	var ov overloadedError
	if err == nil || !errors.As(err, &ov) {
		t.Errorf("second simulate with MaxJobs=1 must be rejected as overloaded while the first runs, got %v", err)
	}
	close(gate)
	if j := waitJob(t, s, job.ID); j.Status != JobDone {
		t.Errorf("first job ended %s: %s", j.Status, j.Error)
	}
}

func TestSimulateAfterCloseRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	_, err := s.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	var ov overloadedError
	if err == nil || !errors.As(err, &ov) {
		t.Errorf("Simulate after Close: err = %v, want overloaded (no dispatcher may start once Close begins)", err)
	}
	s.Close() // idempotent, and must not deadlock after the rejection
}

func TestPoolSubmitAfterClose(t *testing.T) {
	m := NewMetrics()
	p := newPool(2, 4, m, nil)
	done := make(chan struct{})
	if !p.submit(func() { close(done) }) {
		t.Fatal("submit before close must succeed")
	}
	<-done
	p.close()
	if p.submit(func() {}) {
		t.Error("submit after close must report false, not panic")
	}
}

func TestProfileErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	cases := []struct {
		name string
		req  ProfileRequest
		is   func(error) bool
	}{
		{"empty", ProfileRequest{}, isBadRequest},
		{"unknown workload", ProfileRequest{Workload: "NOPE"}, isNotFound},
		{"bad scale", ProfileRequest{Workload: "MT", Scale: "huge"}, isBadRequest},
		{"bad scheme", ProfileRequest{Workload: "MT", Scheme: "XYZ"}, isBadRequest},
		{"negative window", ProfileRequest{Workload: "MT", Window: -3}, isBadRequest},
		{"non-pow2 line bytes", ProfileRequest{Workload: "MT", LineBytes: 100}, isBadRequest},
		{"bits below channel/bank field", ProfileRequest{Workload: "MT", Bits: 8}, isBadRequest},
		{"huge line bytes", ProfileRequest{Workload: "MT", LineBytes: 1 << 21}, isBadRequest},
		{"both sources", ProfileRequest{Workload: "MT", TraceCSV: "K,k,1,0\nR,0,0,R,100\n"}, isBadRequest},
		{"bad trace", ProfileRequest{TraceCSV: "garbage"}, isBadRequest},
	}
	for _, tc := range cases {
		if _, _, err := s.Profile(tc.req); err == nil || !tc.is(err) {
			t.Errorf("%s: err = %v, want typed client error", tc.name, err)
		}
	}
}

func isBadRequest(err error) bool { var e badRequestError; return errors.As(err, &e) }
func isNotFound(err error) bool   { var e notFoundError; return errors.As(err, &e) }

func TestAdviseRecommendsEntropyGain(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	res, err := s.Advise(AdviseRequest{ProfileRequest: ProfileRequest{Workload: "MT", Scale: "tiny"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Base.Valley {
		t.Fatal("MT base profile must have a valley")
	}
	if res.Recommended.Gain <= 0 {
		t.Errorf("recommended gain = %g, want > 0 (valley must be fillable)", res.Recommended.Gain)
	}
	if got := res.Recommended.Scheme; got != "PAE" && got != "FAE" && got != "ALL" {
		t.Errorf("recommended scheme = %q, want a proposed scheme", got)
	}
	if len(res.Candidates) != 9 { // 3 schemes x 3 seeds
		t.Errorf("evaluated %d candidates, want 9", len(res.Candidates))
	}
	// Candidates are sorted by gain descending.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Gain > res.Candidates[i-1].Gain+1e-12 {
			t.Errorf("candidates not sorted: %g before %g", res.Candidates[i-1].Gain, res.Candidates[i].Gain)
		}
	}
	if res.Recommended.BIM.N() != 30 {
		t.Errorf("recommended BIM is %d-bit, want 30", res.Recommended.BIM.N())
	}
}

func TestAdviseRejectsMappedBase(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	_, err := s.Advise(AdviseRequest{ProfileRequest: ProfileRequest{Workload: "MT", Scheme: "PAE"}})
	if !isBadRequest(err) {
		t.Errorf("err = %v, want bad request", err)
	}
	_, err = s.Advise(AdviseRequest{ProfileRequest: ProfileRequest{Workload: "MT"}, Schemes: []string{"BASE"}})
	if !isBadRequest(err) {
		t.Errorf("BASE candidate: err = %v, want bad request", err)
	}
	_, err = s.Advise(AdviseRequest{ProfileRequest: ProfileRequest{Workload: "MT"}, Seeds: []int64{0}})
	if !isBadRequest(err) {
		t.Errorf("seed 0: err = %v, want bad request (BIM would not match reported gains)", err)
	}
	_, err = s.Advise(AdviseRequest{ProfileRequest: ProfileRequest{Workload: "MT", Seed: 7}})
	if !isBadRequest(err) {
		t.Errorf("embedded seed: err = %v, want bad request (would be silently ignored)", err)
	}
}

func TestAggregateSweep(t *testing.T) {
	cell := func(wl, sc string, ps int64) CellResult {
		return CellResult{Workload: wl, Scheme: sc, ResultJSON: experiments.ResultJSON{ExecTimePS: ps}}
	}
	r := &SimulateResult{
		Cells: []CellResult{
			cell("MT", "BASE", 1000),
			cell("MT", "PAE", 500),
			cell("LU", "BASE", 900),
			cell("LU", "PAE", 600),
		},
	}
	aggregateSweep(r)
	if got := r.Cells[1].Speedup; got != 2.0 {
		t.Errorf("MT PAE speedup = %g, want 2", got)
	}
	hm := r.HMeanSpeedup["PAE"]
	want := 2.0 / (1/2.0 + 1/1.5)
	if diff := hm - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("hmean = %g, want %g", hm, want)
	}
	if r.HMeanSpeedup["BASE"] != 1.0 {
		t.Errorf("BASE hmean = %g, want 1", r.HMeanSpeedup["BASE"])
	}
}

func TestSimulateJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	job, err := s.Simulate(SimulateRequest{
		Workloads: []string{"MT"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Total != 2 {
		t.Fatalf("total cells = %d, want 2", job.Total)
	}
	final := waitJob(t, s, job.ID)
	if final.Status != JobDone {
		t.Fatalf("job status = %s (error %q), want done", final.Status, final.Error)
	}
	if final.Done != 2 {
		t.Errorf("done cells = %d, want 2", final.Done)
	}
	res := final.Result
	if res == nil || len(res.Cells) != 2 {
		t.Fatalf("result = %+v, want 2 cells", res)
	}
	for _, c := range res.Cells {
		if c.ExecTimePS <= 0 {
			t.Errorf("cell %s/%s has non-positive exec time", c.Workload, c.Scheme)
		}
	}
	if res.HMeanSpeedup["PAE"] <= 0 {
		t.Errorf("PAE hmean speedup = %g, want > 0", res.HMeanSpeedup["PAE"])
	}
}

// TestSimulateResultCache pins the simulation-result cache: a repeated
// sweep serves every cell from cache (Cached=true, hit counters move,
// no new simulations) with identical metrics, and both sweeps record
// wall times.
func TestSimulateResultCache(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	req := SimulateRequest{
		Workloads: []string{"SP", "NW"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	}
	sweep := func() *SimulateResult {
		t.Helper()
		job, err := s.Simulate(req)
		if err != nil {
			t.Fatal(err)
		}
		final := waitJob(t, s, job.ID)
		if final.Status != JobDone {
			t.Fatalf("job status = %s (error %q)", final.Status, final.Error)
		}
		return final.Result
	}

	first := sweep()
	if hits, misses := s.Metrics().SimCacheCounts(); hits != 0 || misses != 4 {
		t.Fatalf("after cold sweep hits=%d misses=%d, want 0/4", hits, misses)
	}
	if first.Seconds <= 0 {
		t.Error("cold sweep recorded no duration")
	}
	for _, c := range first.Cells {
		if c.Cached {
			t.Errorf("cold cell %s/%s marked cached", c.Workload, c.Scheme)
		}
		if c.Seconds <= 0 {
			t.Errorf("cold cell %s/%s recorded no wall time", c.Workload, c.Scheme)
		}
	}

	second := sweep()
	if hits, _ := s.Metrics().SimCacheCounts(); hits != 4 {
		t.Fatalf("after warm sweep hits=%d, want 4", hits)
	}
	for i, c := range second.Cells {
		if !c.Cached {
			t.Errorf("warm cell %s/%s not served from cache", c.Workload, c.Scheme)
		}
		if c.ResultJSON != first.Cells[i].ResultJSON {
			t.Errorf("warm cell %s/%s metrics differ from cold run", c.Workload, c.Scheme)
		}
	}
	if second.HMeanSpeedup["PAE"] != first.HMeanSpeedup["PAE"] {
		t.Error("cached sweep changed aggregate speedups")
	}
	if s.Metrics().SweepSeconds() <= 0 {
		t.Error("sweep_seconds metric not accumulated")
	}
	if got := s.Metrics().cellsSimulated.Load(); got != 4 {
		t.Errorf("cells simulated = %d, want 4 (cache hits must not re-simulate)", got)
	}
}

func TestSimulateValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []struct {
		name string
		req  SimulateRequest
		is   func(error) bool
	}{
		{"empty", SimulateRequest{}, isBadRequest},
		{"unknown workload", SimulateRequest{Workloads: []string{"NOPE"}}, isNotFound},
		{"unknown set", SimulateRequest{Set: "everything"}, isBadRequest},
		{"both", SimulateRequest{Workloads: []string{"MT"}, Set: "valley"}, isBadRequest},
		{"bad scheme", SimulateRequest{Workloads: []string{"MT"}, Schemes: []string{"???"}}, isBadRequest},
		{"bad config", SimulateRequest{Workloads: []string{"MT"}, Config: "quantum"}, isBadRequest},
	}
	for _, tc := range cases {
		if _, err := s.Simulate(tc.req); err == nil || !tc.is(err) {
			t.Errorf("%s: err = %v, want typed client error", tc.name, err)
		}
	}
}
