package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"math/bits"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"valleymap/internal/bim"
	"valleymap/internal/cache"
	"valleymap/internal/cluster"
	"valleymap/internal/entropy"
	"valleymap/internal/experiments"
	"valleymap/internal/gpusim"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/obs"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// Valley-classification thresholds, shared with the renderers and the
// JSON export (Figure 5's qualitative low/high split).
const (
	valleyLow  = entropy.DefaultLow
	valleyHigh = entropy.DefaultHigh
)

// minProfileBits is the smallest profile width that covers every
// channel/bank bit of the reference layout — narrower profiles would
// index past PerBit when classifying the valley.
var minProfileBits = func() int {
	l := layout.HynixGDDR5()
	min := 1
	for _, b := range layout.Bits0(l.MaskOf(layout.Channel, layout.Bank)) {
		if b+1 > min {
			min = b + 1
		}
	}
	return min
}()

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the worker-pool task queue (0 = 256).
	QueueDepth int
	// CacheEntries bounds the profile LRU cache (0 = 512).
	CacheEntries int
	// SimCacheEntries bounds the simulation-result LRU cache (0 = 256).
	// Cells are keyed by (workload, scale, scheme, config, seed), so
	// repeated sweeps over the same grid are near-free.
	SimCacheEntries int
	// MaxTraceBytes caps uploaded trace bodies (0 = 256 MiB). The cap
	// protects bandwidth, not memory: uploads stream through the
	// decoder → coalescer → accumulator pipeline at O(window × bits)
	// per request, so it is safe to raise far beyond the old 64 MiB
	// materialized-decoder default.
	MaxTraceBytes int64
	// MaxJobs bounds retained jobs; finished jobs beyond the cap are
	// evicted oldest-first (0 = 1000).
	MaxJobs int
	// TraceDir, when set, enables ProfileRequest.TraceFile: profile
	// requests may name trace files (CSV or VTRC binary, sniffed by
	// magic) inside this directory, so local multi-GB traces take the
	// zero-copy mmap path instead of an HTTP body copy.
	TraceDir string
	// SpillDir, when set, makes the simulation-result cache durable and
	// larger than RAM: entries evicted from memory spill to
	// per-entry checksummed files under this directory (written by an
	// async write-behind goroutine), misses read through and promote
	// back, and Close drains the resident set to disk so a restarted
	// valleyd serves repeat sweeps warm. Damaged entries load as
	// misses, never errors.
	SpillDir string
	// SpillMaxBytes bounds the spill directory; a janitor evicts the
	// lowest cost-per-byte entries to stay under it (0 = 1 GiB;
	// negative = unbounded). Ignored without SpillDir.
	SpillMaxBytes int64
	// SimCacheSnapshot names a legacy VSIMCSH1 snapshot file from
	// before the spill tier existed. With SpillDir set, the file is
	// migrated into the spill directory once at startup (then renamed
	// aside); without SpillDir it is load-only: read at startup, never
	// written. The snapshot writer is retired.
	SimCacheSnapshot string
	// DefaultDeadline, when positive, bounds every sweep that does not
	// carry its own ?deadline_ms / X-Deadline-Ms budget: the job is
	// canceled with a deadline_exceeded terminal event when it overruns.
	// Zero means jobs without an explicit budget run unbounded.
	DefaultDeadline time.Duration
	// Logger receives the service's structured logs (nil =
	// slog.Default()). Request-scoped children carry trace_id, path and
	// tenant; sweep logs carry job_id and trace_id.
	Logger *slog.Logger
	// Cluster, when set, turns this service into a sweep coordinator:
	// cells are sharded across the client's peer workers by rendezvous
	// hashing over their sim-cache keys (repeat cells land on the
	// worker whose cache is warm), straggler cells are stolen from
	// slow or dead peers, and the service degrades to local execution
	// when no peer is reachable. Nil (the default) runs every cell
	// locally.
	Cluster *cluster.Client
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.SimCacheEntries == 0 {
		c.SimCacheEntries = 256
	}
	if c.MaxTraceBytes == 0 {
		c.MaxTraceBytes = 256 << 20
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 1000
	}
	if c.SpillMaxBytes == 0 {
		c.SpillMaxBytes = 1 << 30
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Service is the valleyd engine. Construct with New, serve its Handler,
// Close on shutdown.
type Service struct {
	cfg      Config
	log      *slog.Logger
	metrics  *Metrics
	cache    *profileCache
	simCache *simCache
	jobs     *jobStore
	pool     *pool
	// costs prices sweep cells for admission control and Retry-After
	// hints (EWMA of measured cell seconds; see admission.go).
	costs *costModel
	// profileSem bounds concurrent profile computations (trace builds +
	// entropy analysis run on handler goroutines, not the sweep pool);
	// without it, N distinct-key requests materialize N traces at once.
	profileSem chan struct{}
	// streamSem separately bounds streamed-upload pipelines: they hold
	// only O(window × bits) so they get more slots than profileSem, but
	// they read the client's body mid-compute, so they must not occupy
	// profileSem's scarce slots for a transfer's duration.
	streamSem chan struct{}
	start     time.Time
	// closeOnce makes Close idempotent.
	closeOnce sync.Once
	// sweepWG tracks sweep dispatcher goroutines so Close can wait for
	// every accepted job to reach a terminal state (done or failed)
	// before the resident cache is spilled. closeMu orders Simulate's
	// Add against Close's Wait: Adds only happen while !closed, and
	// closed is flipped under the lock before Wait starts, so the
	// WaitGroup never sees an Add racing a Wait from zero.
	sweepWG sync.WaitGroup
	closeMu sync.Mutex
	closed  bool
}

// New builds a service with its worker pool running. With
// Config.SpillDir set, the simulation-result cache is two-tier: memory
// over the spill directory, which is scanned (and any damaged entries
// discarded) before serving. A legacy Config.SimCacheSnapshot file is
// loaded — and, with a spill dir, migrated — at startup.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	var spill *cache.DiskStore
	if cfg.SpillDir != "" {
		var err error
		spill, err = newSpillStore(cfg.SpillDir, cfg.SpillMaxBytes, m)
		if err != nil {
			// An unusable spill dir costs durability and warm capacity,
			// never availability: run memory-only.
			cfg.Logger.Warn("spill dir unusable, running memory-only", "dir", cfg.SpillDir, "error", err)
		}
	}
	s := &Service{
		cfg:        cfg,
		log:        cfg.Logger,
		metrics:    m,
		cache:      newProfileCache(cfg.CacheEntries, m),
		simCache:   newSimCache(cfg.SimCacheEntries, spill, m),
		jobs:       newJobStore(cfg.MaxJobs),
		pool:       newPool(cfg.Workers, cfg.QueueDepth, m, cfg.Logger),
		costs:      newCostModel(),
		profileSem: make(chan struct{}, cfg.Workers),
		streamSem:  make(chan struct{}, 4*cfg.Workers),
		start:      time.Now(),
	}
	s.jobs.onDrop = m.StreamEventDropped
	if cfg.Cluster != nil {
		// The peer-up gauge samples the cluster client's cooldown
		// table at scrape time, like every other gauge in WriteTo.
		m.peerUp = cfg.Cluster.PeerStates
	}
	if cfg.SimCacheSnapshot != "" {
		s.loadLegacySnapshot(spill != nil)
	}
	return s
}

// Close drains the worker pool (in-flight cells finish; new
// submissions are rejected), waits for every accepted job to reach a
// terminal state and, when a spill directory is configured, spills the
// memory-resident cache and drains the write-behind queue so a
// restarted service starts with the whole working set warm. Close is
// idempotent.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		s.closeMu.Lock()
		s.closed = true
		s.closeMu.Unlock()
		s.pool.close()
		s.sweepWG.Wait()
		s.simCache.SpillAll()
		s.simCache.Close()
	})
}

// Metrics exposes the service's counters (for embedding and tests).
func (s *Service) Metrics() *Metrics { return s.metrics }

// badRequestError marks client errors (HTTP 400); notFoundError marks
// unknown-resource errors (HTTP 404).
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

type notFoundError struct{ msg string }

func (e notFoundError) Error() string { return e.msg }

// overloadedError marks capacity exhaustion (HTTP 503). retryAfter,
// when positive, becomes the response's Retry-After header — derived
// from the current queue depth × mean cell seconds, so clients back
// off proportionally to the actual backlog.
type overloadedError struct {
	msg        string
	retryAfter int
}

func (e overloadedError) Error() string { return e.msg }

func (e overloadedError) retryAfterSeconds() int { return e.retryAfter }

func badRequestf(format string, args ...any) error {
	return badRequestError{fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) error {
	return notFoundError{fmt.Sprintf(format, args...)}
}

// ---------------------------------------------------------------------
// Profiling
// ---------------------------------------------------------------------

// ProfileRequest asks for a per-bit entropy profile. Either Workload
// names a built-in benchmark by Table II abbreviation, or TraceCSV
// carries an inline trace in the library CSV format (large traces are
// better POSTed as a text/csv body, which streams).
type ProfileRequest struct {
	Workload string `json:"workload,omitempty"`
	TraceCSV string `json:"trace_csv,omitempty"`
	// TraceFile names a trace file (CSV or VTRC binary) inside the
	// server's configured trace directory (Config.TraceDir); binary
	// files are profiled zero-copy via mmap. Bare file names only.
	TraceFile string `json:"trace_file,omitempty"`
	// Scale selects built-in trace size: tiny, small (default), full.
	Scale string `json:"scale,omitempty"`
	// Window, Bits, LineBytes mirror AnalysisOptions (0 = 12/30/128).
	// LineBytes must be a power of two; a negative value profiles the
	// raw per-thread requests without coalescing.
	Window    int `json:"window,omitempty"`
	Bits      int `json:"bits,omitempty"`
	LineBytes int `json:"line_bytes,omitempty"`
	// Scheme optionally applies a mapping before profiling (post-mapping
	// profiles, Figure 10); Seed selects the BIM instance.
	Scheme string `json:"scheme,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// BitRange is a contiguous dead-bit run [Lo, Hi].
type BitRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ProfileResult is the structured entropy profile of one trace.
type ProfileResult struct {
	Trace        TraceInfo  `json:"trace"`
	Window       int        `json:"window"`
	Bits         int        `json:"bits"`
	LineBytes    int        `json:"line_bytes"`
	Scheme       string     `json:"scheme,omitempty"`
	Seed         int64      `json:"seed,omitempty"`
	PerBit       []float64  `json:"per_bit"`
	MeanChannel  float64    `json:"mean_channel_entropy"`
	MeanBank     float64    `json:"mean_bank_entropy"`
	MinChanBank  float64    `json:"min_channel_bank_entropy"`
	Valley       bool       `json:"valley"`
	ValleyRanges []BitRange `json:"valley_ranges"`
	CacheKey     string     `json:"cache_key"`
}

// TraceInfo summarizes the profiled trace.
type TraceInfo struct {
	Name     string `json:"name"`
	Abbr     string `json:"abbr"`
	Scale    string `json:"scale,omitempty"`
	SHA256   string `json:"sha256,omitempty"`
	Kernels  int    `json:"kernels"`
	Requests int    `json:"requests"`
}

type profileOptions struct {
	window, bits, lineBytes int
	scheme                  mapping.Scheme
	seed                    int64
}

func (r ProfileRequest) options() (profileOptions, error) {
	o := profileOptions{window: r.Window, bits: r.Bits, lineBytes: r.LineBytes, seed: r.Seed}
	if o.window == 0 {
		o.window = 12
	}
	if o.bits == 0 {
		o.bits = 30
	}
	if o.lineBytes == 0 {
		o.lineBytes = 128
	}
	if o.window < 1 {
		return o, badRequestf("window must be >= 1, got %d", r.Window)
	}
	if o.bits < minProfileBits || o.bits > 64 {
		return o, badRequestf("bits must be in [%d,64], got %d (profiles index the layout's channel/bank bits)", minProfileBits, r.Bits)
	}
	// The coalescer's line mask assumes a power of two; anything else
	// would mangle addresses and silently cache a garbage profile.
	if o.lineBytes > 0 && (o.lineBytes&(o.lineBytes-1) != 0 || o.lineBytes > 1<<20) {
		return o, badRequestf("line_bytes must be a power of two <= 1048576, got %d", r.LineBytes)
	}
	if r.Scheme != "" {
		s, err := mapping.ParseScheme(r.Scheme)
		if err != nil {
			return o, badRequestf("unknown scheme %q (want one of %v)", r.Scheme, mapping.Schemes())
		}
		o.scheme = s
		if o.seed == 0 {
			o.seed = 1
		}
	} else {
		// The seed only feeds the mapper; normalize it away so identical
		// unmapped profiles share one cache entry regardless of seed.
		o.seed = 0
	}
	return o, nil
}

func (o profileOptions) cacheKey(src string) string {
	return fmt.Sprintf("%s|w=%d|b=%d|l=%d|x=%s:%d", src, o.window, o.bits, o.lineBytes, o.scheme, o.seed)
}

func parseScale(s string) (workload.Scale, string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tiny":
		return workload.Tiny, "tiny", nil
	case "", "small":
		return workload.Small, "small", nil
	case "full":
		return workload.Full, "full", nil
	default:
		return 0, "", badRequestf("unknown scale %q (want tiny, small or full)", s)
	}
}

// Profile computes (or retrieves) the entropy profile described by req.
// The second return reports a cache hit.
func (s *Service) Profile(req ProfileRequest) (*ProfileResult, bool, error) {
	opt, err := req.options()
	if err != nil {
		return nil, false, err
	}
	switch {
	case req.Workload != "" && req.TraceCSV != "":
		return nil, false, badRequestf("give either workload or trace_csv, not both")
	case req.TraceFile != "" && (req.Workload != "" || req.TraceCSV != ""):
		return nil, false, badRequestf("trace_file cannot be combined with workload or trace_csv")
	case req.TraceFile != "":
		return s.profileFile(req.TraceFile, opt)
	case req.Workload != "":
		spec, ok := workload.ByAbbr(req.Workload)
		if !ok {
			return nil, false, notFoundf("unknown workload %q (want one of %v)", req.Workload, workload.Abbrs())
		}
		scale, scaleName, err := parseScale(req.Scale)
		if err != nil {
			return nil, false, err
		}
		return s.workloadProfile(spec, scaleName, opt, func() trace.Source { return spec.Source(scale) })
	case req.TraceCSV != "":
		// The embedded trace is already in memory, so — unlike the
		// network streaming path — its content hash is cheap to take up
		// front (one decode pass, no profiling): repeat uploads hit the
		// cache without re-profiling, and because the key hashes the
		// canonical record stream rather than the raw bytes, a binary
		// (VTRC) upload of the same trace hits the same entry.
		sum, err := trace.CanonicalHash(trace.NewCSVStreamUnhashed(strings.NewReader(req.TraceCSV)))
		if err != nil {
			return nil, false, badRequestf("bad trace: %v", err)
		}
		res, hit, err := s.cachedProfile(opt.cacheKey("tr:"+sum), opt, &s.metrics.stageCSV, func() (trace.Source, TraceInfo, error) {
			// Unhashed: the identity was just taken above; a second
			// canonical fold would be pure waste.
			cs := trace.NewCSVStreamUnhashed(strings.NewReader(req.TraceCSV))
			info := cs.Info()
			return cs, TraceInfo{Name: info.Name, Abbr: info.Abbr, SHA256: sum}, nil
		})
		if err != nil && !errors.As(err, new(badRequestError)) {
			return nil, false, badRequestf("bad trace: %v", err)
		}
		return res, hit, err
	default:
		return nil, false, badRequestf("request needs a workload abbreviation or a trace")
	}
}

// ProfileStream profiles a CSV trace read from r in one pass: the body
// streams through decoder → coalescer → accumulator, so per-request
// memory is O(window × bits) plus one decode batch, independent of
// trace length, and the content hash accumulates incrementally as bytes
// are consumed. Decode errors are returned unwrapped so HTTP handlers
// can classify size-limit errors; the cache is keyed by the incremental
// canonical hash, exactly like the materialized upload path, so
// identical uploads still share one stored profile (the second return
// reports a hit).
func (s *Service) ProfileStream(r io.Reader, req ProfileRequest) (*ProfileResult, bool, error) {
	opt, err := req.options()
	if err != nil {
		return nil, false, err
	}
	return s.profileOneShot(trace.NewCSVStream(r), opt, &s.metrics.stageCSV)
}

// ProfileStreamBinary is ProfileStream for VTRC binary bodies. The two
// share cache entries: both key by the canonical record-stream hash, so
// a CSV upload and its binary conversion dedupe to one stored profile.
func (s *Service) ProfileStreamBinary(r io.Reader, req ProfileRequest) (*ProfileResult, bool, error) {
	opt, err := req.options()
	if err != nil {
		return nil, false, err
	}
	return s.profileOneShot(trace.NewBinaryStream(r), opt, &s.metrics.stageBinary)
}

// hashedTraceStream is the single-shot decoder shape the container
// formats share: a Stream that knows the trace's canonical content
// digest once drained.
type hashedTraceStream interface {
	trace.Stream
	SHA256() string
	Info() trace.SourceInfo
}

func (s *Service) profileOneShot(cs hashedTraceStream, opt profileOptions, stages *stageSet) (*ProfileResult, bool, error) {
	// One-shot pipelines take streamSem, not profileSem: they hold only
	// O(window × bits) but may read a client's body mid-compute, so
	// under profileSem a few slow transfers would starve every other
	// profile computation; unbounded, a burst of uploads would
	// oversubscribe the CPU. streamSem (4 × Workers slots) bounds the
	// burst while leaving profileSem's slots to the O(trace) builders.
	s.streamSem <- struct{}{}
	defer func() { <-s.streamSem }()
	prof, kernels, err := s.profilePipeline(cs, opt, stages)
	if err != nil {
		return nil, false, err
	}
	sum := cs.SHA256()
	info := cs.Info()
	key := opt.cacheKey("tr:" + sum)
	res := assembleResult(prof, TraceInfo{Name: info.Name, Abbr: info.Abbr, SHA256: sum, Kernels: kernels}, opt, key)
	// The profile had to be computed before the content hash was known
	// (the hash needs the whole body, the body is consumed exactly
	// once), so on this path a cache "hit" — in the response and in the
	// /metrics hit rate — means the stored entry was reused, not that
	// the compute was skipped: re-uploads dedupe storage, not work.
	// Clients that want compute-free repeats should re-request by
	// workload abbreviation or keep the returned profile.
	return s.cache.GetOrCompute(key, func() (*ProfileResult, error) { return res, nil })
}

// profileFile profiles a trace file from the configured trace
// directory. Binary (VTRC) files take the restartable mmap zero-copy
// path and are keyed by the checksum read at open, so a cached profile
// costs one open + validate and no profiling pass; CSV files fall back
// to the one-shot streaming pipeline. Only bare file names inside
// TraceDir are accepted.
func (s *Service) profileFile(name string, opt profileOptions) (*ProfileResult, bool, error) {
	if s.cfg.TraceDir == "" {
		return nil, false, badRequestf("trace_file requires the service to be configured with a trace directory")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return nil, false, badRequestf("trace_file must be a bare file name inside the trace directory, got %q", name)
	}
	src, release, err := trace.OpenFile(filepath.Join(s.cfg.TraceDir, name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, notFoundf("no trace file %q in the trace directory", name)
		}
		return nil, false, badRequestf("bad trace file %q: %v", name, err)
	}
	defer release() //nolint:errcheck // read-only mapping/handle
	if ms, ok := src.(*trace.MmapSource); ok {
		sum := ms.SHA256()
		return s.cachedProfile(opt.cacheKey("tr:"+sum), opt, &s.metrics.stageBinary, func() (trace.Source, TraceInfo, error) {
			info := ms.Info()
			return ms, TraceInfo{Name: info.Name, Abbr: info.Abbr, SHA256: sum}, nil
		})
	}
	res, hit, err := s.profileOneShot(src.(*trace.CSVStream), opt, &s.metrics.stageCSV)
	if err != nil && !errors.As(err, new(badRequestError)) {
		err = badRequestf("bad trace file %q: %v", name, err)
	}
	return res, hit, err
}

// ProfileTrace profiles an already-decoded trace under its content
// hash, for embedders that hold a materialized *App (Advise reuses it
// to profile one decode under many candidate mappings).
func (s *Service) ProfileTrace(app *trace.App, sha string, req ProfileRequest) (*ProfileResult, bool, error) {
	opt, err := req.options()
	if err != nil {
		return nil, false, err
	}
	return s.profileUpload(app, sha, opt)
}

// workloadProfile is the single owner of the built-in-workload cache-key
// format, shared by Profile and Advise so their entries always collide
// (advise reuses profiles /v1/profile already computed, and vice versa).
func (s *Service) workloadProfile(spec workload.Spec, scaleName string, opt profileOptions, source func() trace.Source) (*ProfileResult, bool, error) {
	key := opt.cacheKey("wl:" + spec.Abbr + ":" + scaleName)
	return s.cachedProfile(key, opt, &s.metrics.stageNative, func() (trace.Source, TraceInfo, error) {
		return source(), TraceInfo{Name: spec.Name, Abbr: spec.Abbr, Scale: scaleName}, nil
	})
}

func (s *Service) profileUpload(app *trace.App, sha string, opt profileOptions) (*ProfileResult, bool, error) {
	key := opt.cacheKey("tr:" + sha)
	return s.cachedProfile(key, opt, &s.metrics.stageNative, func() (trace.Source, TraceInfo, error) {
		return trace.AppSource(app), TraceInfo{Name: app.Name, Abbr: app.Abbr, SHA256: sha}, nil
	})
}

// cachedProfile computes a profile through the streaming pipeline under
// the cache's in-flight coalescing, bounded by the profile semaphore.
func (s *Service) cachedProfile(key string, opt profileOptions, stages *stageSet, build func() (trace.Source, TraceInfo, error)) (*ProfileResult, bool, error) {
	return s.cache.GetOrCompute(key, func() (*ProfileResult, error) {
		s.profileSem <- struct{}{}
		defer func() { <-s.profileSem }()
		src, info, err := build()
		if err != nil {
			return nil, err
		}
		prof, kernels, err := s.profilePipeline(src.Stream(), opt, stages)
		if err != nil {
			return nil, err
		}
		info.Kernels = kernels
		return assembleResult(prof, info, opt, key), nil
	})
}

// kernelCounter counts kernel headers as they flow by, so TraceInfo can
// report the kernel count without materializing the trace. It is the
// single counting point for every service profile path (the decoder and
// accumulator deliberately do not keep their own counts).
type kernelCounter struct {
	s trace.Stream
	n int
}

func (k *kernelCounter) Next() (*trace.Batch, error) {
	b, err := k.s.Next()
	if err == nil && b.Kernel != nil {
		k.n++
	}
	return b, err
}

// profilePipeline drives one pass of the streaming hot path:
// stream → (coalesce) → (map) → online windowed accumulator.
// Each stage is wrapped in a TimedStream (exclusive per-batch wall
// time, nested stages subtracted) feeding the
// valleyd_stream_stage_seconds histogram under the ingest format's
// label set; the accumulator — not a Stream — reports through the fold
// hook instead.
func (s *Service) profilePipeline(st trace.Stream, opt profileOptions, stages *stageSet) (entropy.Profile, int, error) {
	kc := &kernelCounter{s: st}
	decode := trace.NewTimedStream(kc, nil, stages.decode.ObserveDuration)
	var in trace.Stream = decode
	if opt.lineBytes > 0 {
		in = trace.NewTimedStream(trace.CoalesceStream(in, opt.lineBytes), decode, stages.coalesce.ObserveDuration)
	}
	sopt := entropy.StreamOptions{
		Window: opt.window,
		Bits:   opt.bits,
		OnFold: stages.accumulate.ObserveDuration,
	}
	if opt.scheme != "" {
		m, err := mapping.New(opt.scheme, layout.HynixGDDR5(), mapping.Options{Seed: opt.seed})
		if err != nil {
			return entropy.Profile{}, 0, badRequestf("building %s mapper: %v", opt.scheme, err)
		}
		// The coalescer sees physical addresses (coalescing precedes the
		// mapper in hardware); the accumulator applies the BIM a batch
		// at a time.
		sopt.BatchTransform = m.MapBatch
	}
	prof, err := entropy.ProfileStream(in, sopt)
	if err != nil {
		return entropy.Profile{}, 0, err
	}
	return prof, kc.n, nil
}

func assembleResult(prof entropy.Profile, info TraceInfo, opt profileOptions, key string) *ProfileResult {
	info.Requests = prof.Requests
	l := layout.HynixGDDR5()
	// Bits below the block offset — and, when coalescing is on, below
	// the line size — are structurally zero: they carry no entropy by
	// construction, so they are excluded from valley classification,
	// the channel/bank means, and the reported ranges alike (otherwise
	// line_bytes >= 512 would zero channel bit 8 and flag a "valley"
	// for every trace).
	clipTop := len(l.FieldBits(layout.Block))
	if opt.lineBytes > 0 {
		if lineTop := bits.TrailingZeros64(uint64(opt.lineBytes)); lineTop > clipTop {
			clipTop = lineTop
		}
	}
	clip := func(positions []int) []int {
		out := positions[:0:0]
		for _, b := range positions {
			if b >= clipTop {
				out = append(out, b)
			}
		}
		return out
	}
	ch := clip(l.FieldBits(layout.Channel))
	bank := clip(l.FieldBits(layout.Bank))
	res := &ProfileResult{
		Trace:       info,
		Window:      opt.window,
		Bits:        opt.bits,
		LineBytes:   opt.lineBytes,
		Scheme:      string(opt.scheme),
		PerBit:      prof.PerBit,
		MeanChannel: prof.Mean(ch),
		MeanBank:    prof.Mean(bank),
		MinChanBank: prof.Min(append(append([]int(nil), ch...), bank...)),
		Valley:      prof.ChannelBankValley(ch, bank, valleyLow, valleyHigh),
		CacheKey:    key,
	}
	if opt.scheme != "" {
		res.Seed = opt.seed
	}
	res.ValleyRanges = []BitRange{}
	for _, r := range prof.ValleyRanges(valleyLow, valleyHigh) {
		if r.Hi < clipTop {
			continue
		}
		if r.Lo < clipTop {
			r.Lo = clipTop
		}
		res.ValleyRanges = append(res.ValleyRanges, BitRange{Lo: r.Lo, Hi: r.Hi})
	}
	return res
}

// ---------------------------------------------------------------------
// Mapping advice
// ---------------------------------------------------------------------

// AdviseRequest asks for a mapping recommendation. The trace inputs
// mirror ProfileRequest; Schemes/Seeds narrow the candidate set
// (defaults: PAE/FAE/ALL × seeds 1..3, the paper's BIM-1..BIM-3).
type AdviseRequest struct {
	ProfileRequest
	Schemes []string `json:"schemes,omitempty"`
	Seeds   []int64  `json:"seeds,omitempty"`
}

// Candidate is one evaluated scheme × seed pair.
type Candidate struct {
	Scheme      string     `json:"scheme"`
	Seed        int64      `json:"seed"`
	MeanChannel float64    `json:"mean_channel_entropy"`
	MeanBank    float64    `json:"mean_bank_entropy"`
	ChannelGain float64    `json:"channel_entropy_gain"`
	BankGain    float64    `json:"bank_entropy_gain"`
	Gain        float64    `json:"gain"`
	XORGates    int        `json:"xor_gates"`
	Depth       int        `json:"xor_depth"`
	BIM         bim.Matrix `json:"bim"`
}

// AdviseResult recommends a BIM for a trace.
type AdviseResult struct {
	Base        *ProfileResult `json:"base"`
	Recommended Candidate      `json:"recommended"`
	Candidates  []Candidate    `json:"candidates"`
}

// Advise profiles the trace under each candidate mapping and recommends
// the one with the highest channel+bank entropy gain; within 0.01 of
// the best, the cheapest XOR tree wins (hardware-minimal tiebreak).
func (s *Service) Advise(req AdviseRequest) (*AdviseResult, error) {
	if req.Scheme != "" {
		return nil, badRequestf("advise profiles the unmapped trace; leave scheme empty")
	}
	if req.Seed != 0 {
		return nil, badRequestf("advise evaluates candidates per seed; use seeds instead of seed")
	}
	schemes := []mapping.Scheme{mapping.PAE, mapping.FAE, mapping.ALL}
	if len(req.Schemes) > 0 {
		schemes = schemes[:0]
		for _, name := range req.Schemes {
			sc, err := mapping.ParseScheme(name)
			if err != nil {
				return nil, badRequestf("unknown scheme %q (want one of %v)", name, mapping.Schemes())
			}
			if sc == mapping.BASE {
				return nil, badRequestf("BASE is the identity mapping; it cannot be a candidate")
			}
			schemes = append(schemes, sc)
		}
	}
	seeds := []int64{1, 2, 3}
	if len(req.Seeds) > 0 {
		for _, seed := range req.Seeds {
			// Seed 0 would be silently renormalized to 1 when profiling
			// the candidate, so the returned BIM would not match its
			// reported gains.
			if seed <= 0 {
				return nil, badRequestf("seeds must be positive, got %d", seed)
			}
		}
		seeds = req.Seeds
	}

	// Build or decode the trace once and reuse it for the base profile
	// and every candidate, instead of re-constructing it per scheme ×
	// seed pair on a cold cache. Cache keys stay identical to the ones
	// /v1/profile uses, so advise and profile share entries.
	profile := func(r ProfileRequest) (*ProfileResult, bool, error) { return s.Profile(r) }
	switch {
	case req.TraceCSV != "" && req.Workload != "":
		return nil, badRequestf("give either workload or trace_csv, not both")
	case req.TraceFile != "" && (req.TraceCSV != "" || req.Workload != ""):
		return nil, badRequestf("trace_file cannot be combined with workload or trace_csv")
	case req.TraceCSV != "":
		app, sum, err := trace.ReadCSVHashed(strings.NewReader(req.TraceCSV))
		if err != nil {
			return nil, badRequestf("bad trace: %v", err)
		}
		profile = func(r ProfileRequest) (*ProfileResult, bool, error) {
			r.TraceCSV = ""
			return s.ProfileTrace(app, sum, r)
		}
	case req.Workload != "":
		spec, ok := workload.ByAbbr(req.Workload)
		if !ok {
			return nil, notFoundf("unknown workload %q (want one of %v)", req.Workload, workload.Abbrs())
		}
		scale, scaleName, err := parseScale(req.Scale)
		if err != nil {
			return nil, err
		}
		// Materialize the trace once (under the first candidate's
		// semaphore slot) and stream the base + every candidate profile
		// from the in-memory copy, instead of re-running the generator
		// per scheme × seed pair on a cold cache.
		var (
			once sync.Once
			app  *trace.App
		)
		source := func() trace.Source {
			once.Do(func() { app = spec.Build(scale) })
			return trace.AppSource(app)
		}
		profile = func(r ProfileRequest) (*ProfileResult, bool, error) {
			opt, err := r.options()
			if err != nil {
				return nil, false, err
			}
			return s.workloadProfile(spec, scaleName, opt, source)
		}
	}

	base, _, err := profile(req.ProfileRequest)
	if err != nil {
		return nil, err
	}

	l := layout.HynixGDDR5()
	ch, bank := l.FieldBits(layout.Channel), l.FieldBits(layout.Bank)
	var cands []Candidate
	for _, sc := range schemes {
		// Deterministic schemes (PM, RMP) ignore the seed: evaluate once
		// under a fixed seed so repeat calls with different seed lists
		// share one cache entry, and report Seed 0 ("not applicable").
		scSeeds := seeds
		if sc == mapping.PM || sc == mapping.RMP {
			scSeeds = []int64{1}
		}
		for _, seed := range scSeeds {
			creq := req.ProfileRequest
			creq.Scheme = string(sc)
			creq.Seed = seed
			prof, _, err := profile(creq)
			if err != nil {
				return nil, err
			}
			m, err := mapping.New(sc, l, mapping.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			gates, depth := m.GateCost()
			candSeed := seed
			if sc == mapping.PM || sc == mapping.RMP {
				candSeed = 0
			}
			cand := Candidate{
				Scheme:      string(sc),
				Seed:        candSeed,
				MeanChannel: prof.MeanChannel,
				MeanBank:    prof.MeanBank,
				ChannelGain: prof.MeanChannel - base.MeanChannel,
				BankGain:    prof.MeanBank - base.MeanBank,
				XORGates:    gates,
				Depth:       depth,
				BIM:         m.Matrix(),
			}
			nCh, nBank := float64(len(ch)), float64(len(bank))
			cand.Gain = (cand.ChannelGain*nCh + cand.BankGain*nBank) / (nCh + nBank)
			cands = append(cands, cand)
		}
	}
	// Rank by gain; within 0.01 of the top gain, the cheapest XOR tree
	// wins (always measured against cands[0], so near-ties cannot chain
	// the recommendation further than 0.01 below the best).
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Gain > cands[j].Gain })
	best := cands[0]
	for _, c := range cands[1:] {
		if cands[0].Gain-c.Gain <= 0.01 && c.XORGates < best.XORGates {
			best = c
		}
	}
	return &AdviseResult{Base: base, Recommended: best, Candidates: cands}, nil
}

// ---------------------------------------------------------------------
// Simulation sweeps
// ---------------------------------------------------------------------

// SimulateRequest enqueues a workload × scheme sweep. Workloads lists
// Table II abbreviations, or Set names a group (valley, nonvalley,
// all). Config picks the simulated system: baseline (12 SMs), conv-24,
// conv-48, or 3d (64-SM 3D-stacked).
type SimulateRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Set       string   `json:"set,omitempty"`
	Schemes   []string `json:"schemes,omitempty"`
	Scale     string   `json:"scale,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	Config    string   `json:"config,omitempty"`
}

// CellResult is one workload × scheme simulation: the shared metric
// flattening of internal/experiments plus the sweep coordinates.
// Seconds is the cell's wall time inside this sweep. Cached reports
// that the metrics came from the simulation-result cache rather than a
// fresh simulation; a resident entry makes Seconds near zero, but a
// cell that joined another sweep's in-flight computation reports the
// full wait even though Cached is true.
type CellResult struct {
	Workload string  `json:"workload"`
	Scheme   string  `json:"scheme"`
	Speedup  float64 `json:"speedup,omitempty"`
	Seconds  float64 `json:"seconds"`
	Cached   bool    `json:"cached,omitempty"`
	experiments.ResultJSON
}

// SimulateResult aggregates a finished sweep. Speedups and HMeanSpeedup
// are present when BASE is among the schemes; Seconds is the sweep's
// total wall time from dispatch to aggregation.
type SimulateResult struct {
	Config       string             `json:"config"`
	Scale        string             `json:"scale"`
	Seed         int64              `json:"seed"`
	Workloads    []string           `json:"workloads"`
	Schemes      []string           `json:"schemes"`
	Cells        []CellResult       `json:"cells"`
	Seconds      float64            `json:"seconds"`
	HMeanSpeedup map[string]float64 `json:"hmean_speedup,omitempty"`
}

// simCell is what the simulation-result cache stores: the flattened
// metrics of one (workload, scale, scheme, config, seed) cell, plus the
// seconds the original simulation took — the cell's recompute cost,
// which drives cost-weighted eviction in both tiers and survives
// spills. Sweep-relative fields (speedup, per-sweep wall time) are
// recomputed per sweep. Fields are exported for the spill codec (and
// the legacy snapshot decoder).
type simCell struct {
	Res     experiments.ResultJSON `json:"result"`
	Seconds float64                `json:"seconds"`
}

func simCellKey(abbr, scale string, sc mapping.Scheme, cfgName string, seed int64) string {
	return fmt.Sprintf("sim|%s|%s|%s|%s|%d", abbr, scale, sc, cfgName, seed)
}

func parseSimConfig(name string) (gpusim.Config, string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "baseline", "conv-12":
		return gpusim.Baseline(), "baseline", nil
	case "conv-24":
		return gpusim.Conventional(24), "conv-24", nil
	case "conv-48":
		return gpusim.Conventional(48), "conv-48", nil
	case "3d", "stacked3d", "3d-64sm":
		return gpusim.Stacked3D(), "3d", nil
	default:
		return gpusim.Config{}, "", badRequestf("unknown config %q (want baseline, conv-24, conv-48 or 3d)", name)
	}
}

func (s *Service) resolveSweep(req SimulateRequest) ([]workload.Spec, []mapping.Scheme, gpusim.Config, string, workload.Scale, string, error) {
	var specs []workload.Spec
	switch {
	case len(req.Workloads) > 0 && req.Set != "":
		return nil, nil, gpusim.Config{}, "", 0, "", badRequestf("give either workloads or set, not both")
	case len(req.Workloads) > 0:
		for _, abbr := range req.Workloads {
			spec, ok := workload.ByAbbr(abbr)
			if !ok {
				return nil, nil, gpusim.Config{}, "", 0, "", notFoundf("unknown workload %q (want one of %v)", abbr, workload.Abbrs())
			}
			specs = append(specs, spec)
		}
	default:
		switch strings.ToLower(strings.TrimSpace(req.Set)) {
		case "valley":
			specs = workload.ValleySet()
		case "nonvalley", "non-valley":
			specs = workload.NonValleySet()
		case "all":
			specs = workload.Catalog()
		case "":
			return nil, nil, gpusim.Config{}, "", 0, "", badRequestf("request needs workloads or a set (valley, nonvalley, all)")
		default:
			return nil, nil, gpusim.Config{}, "", 0, "", badRequestf("unknown set %q (want valley, nonvalley or all)", req.Set)
		}
	}

	schemes := mapping.Schemes()
	if len(req.Schemes) > 0 {
		schemes = schemes[:0]
		for _, name := range req.Schemes {
			sc, err := mapping.ParseScheme(name)
			if err != nil {
				return nil, nil, gpusim.Config{}, "", 0, "", badRequestf("unknown scheme %q (want one of %v)", name, mapping.Schemes())
			}
			schemes = append(schemes, sc)
		}
	}

	cfg, cfgName, err := parseSimConfig(req.Config)
	if err != nil {
		return nil, nil, gpusim.Config{}, "", 0, "", err
	}
	scale, scaleName, err := parseScale(req.Scale)
	if err != nil {
		return nil, nil, gpusim.Config{}, "", 0, "", err
	}
	return specs, schemes, cfg, cfgName, scale, scaleName, nil
}

// Simulate validates the sweep, enqueues it on the worker pool and
// returns the queued job. Poll Job for progress and results.
func (s *Service) Simulate(req SimulateRequest) (Job, error) {
	return s.SimulateCtx(context.Background(), req)
}

// spanCapFor sizes a sweep's span ring: root + enqueue plus up to six
// spans per cell, floored so tiny sweeps never drop and capped so a
// full-catalog sweep cannot grow the ring past the obs default.
func spanCapFor(totalCells int) int {
	n := 2 + 6*totalCells
	if n < 64 {
		n = 64
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// SimulateCtx is Simulate with request-scoped observability: the job
// adopts the context's trace ID (obs.WithTraceID; one is minted when
// absent) and records a span trace — HTTP accept, enqueue, per-cell
// queue wait, trace build, engine run and cache put — served afterwards
// by GET /v1/jobs/{id}/trace and JobTrace.
func (s *Service) SimulateCtx(ctx context.Context, req SimulateRequest) (Job, error) {
	specs, schemes, cfg, cfgName, scale, scaleName, err := s.resolveSweep(req)
	if err != nil {
		return Job{}, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	// Admission gate: price the sweep (uncached cells behind the current
	// backlog, via the EWMA cost model) against its deadline before
	// accepting it; fully-cached sweeps bypass a saturated pool inline.
	// The deadline instant comes from the request context — the HTTP
	// layer sets it from ?deadline_ms / X-Deadline-Ms or the daemon
	// default — and survives into the job context below even though the
	// request context itself dies with the handler.
	var deadline *time.Time
	if dl, ok := ctx.Deadline(); ok {
		t := dl.UTC()
		deadline = &t
	}
	keys := make([]string, 0, len(specs)*len(schemes))
	for _, sp := range specs {
		for _, sc := range schemes {
			keys = append(keys, simCellKey(sp.Abbr, scaleName, sc, cfgName, seed))
		}
	}
	degraded, err := s.admitSweep(deadline, len(keys), s.countCachedCells(keys), cfgName, scaleName)
	if err != nil {
		return Job{}, err
	}

	// Register the dispatcher before creating the job, under closeMu:
	// once Close has flipped closed, no new sweep can slip past its
	// sweepWG.Wait, so the shutdown snapshot always sees every accepted
	// job in a terminal state.
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return Job{}, overloadedError{msg: "service shutting down"}
	}
	s.sweepWG.Add(1)
	s.closeMu.Unlock()

	traceID := obs.TraceID(ctx)
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	total := len(specs) * len(schemes)
	tr := obs.NewTrace(traceID, spanCapFor(total))
	// The root span starts at the HTTP accept instant when the handler
	// recorded one, so accept-to-enqueue time is visible in the tree.
	root := tr.StartAt(0, "job", obs.AcceptTime(ctx),
		obs.Attr{Key: "kind", Value: "simulate"},
		obs.Attr{Key: "config", Value: cfgName},
		obs.Attr{Key: "scale", Value: scaleName},
	)
	enq := tr.Start(root.ID(), "enqueue")
	job, err := s.jobs.create("simulate", total, tr)
	if err != nil {
		s.sweepWG.Done()
		return Job{}, overloadedError{msg: err.Error(), retryAfter: s.retryAfterHint()}
	}
	enq.Annotate(obs.Attr{Key: "job_id", Value: job.ID})
	enq.End()
	s.metrics.jobsEnqueued.Add(1)

	// The job context outlives the request: values (trace ID, logger)
	// carry over, the request's cancellation does not — a 202 job must
	// survive its handler returning — and the deadline instant is
	// re-applied. The cancel function is armed in the store so DELETE,
	// stream disconnects and Close-side cleanup can fire it with a cause.
	jobCtx, cancelJob := context.WithCancelCause(context.WithoutCancel(ctx))
	release := func() { cancelJob(nil) }
	if deadline != nil {
		var cancelT context.CancelFunc
		jobCtx, cancelT = context.WithDeadline(jobCtx, *deadline)
		release = func() { cancelT(); cancelJob(nil) }
	}
	s.jobs.arm(job.ID, cancelJob, deadline)

	result := &SimulateResult{
		Config: cfgName,
		Scale:  scaleName,
		Seed:   seed,
		Cells:  make([]CellResult, total),
	}
	for _, sp := range specs {
		result.Workloads = append(result.Workloads, sp.Abbr)
	}
	for _, sc := range schemes {
		result.Schemes = append(result.Schemes, string(sc))
	}

	// The dispatcher goroutine owns the job lifecycle: it fans cells out
	// over the pool (blocking on the bounded queue for backpressure),
	// waits, aggregates and finishes the job. The HTTP handler returns
	// the queued job immediately.
	// Snapshot before the dispatcher starts mutating the stored job; if
	// the sweep finishes and is evicted under churn before we re-read,
	// this creation-time copy is still a valid handle for the client.
	created := *job
	go s.runSweep(jobCtx, release, job.ID, specs, schemes, cfg, scale, seed, result, tr, root, degraded)
	if snap, ok := s.jobs.get(job.ID); ok {
		return snap, nil
	}
	return created, nil
}

// CancelJob cancels an in-flight job with the given reason; the job
// terminates with a canceled event once its running cells observe the
// dead context (bounded by the engine's checkpoint interval). It
// reports whether the job is known; canceling an already-terminal job
// is a no-op that still reports true.
func (s *Service) CancelJob(id, reason string) bool {
	if reason == "" {
		reason = "canceled by request"
	}
	return s.jobs.cancel(id, fmt.Errorf("%w: %s", context.Canceled, reason))
}

// runnerPool shares gpusim.Runners (engine slab, request pools, program
// buffers) across sweep cells. Runner reuse is bit-deterministic — see
// internal/sim's determinism contract — so cells drawing warm runners
// produce the same Results as cold ones.
var runnerPool = sync.Pool{New: func() any { return gpusim.NewRunner() }}

// sharedApp materializes one workload trace at most once per sweep and
// shares it across that workload's scheme cells. The *trace.App is
// strictly read-only after Build (gpusim.Runner.Run documents the
// contract), which is what makes sharing across pool workers safe; the
// request-count assertion below backstops it.
type sharedApp struct {
	once sync.Once
	app  *trace.App
	reqs int
}

func (sa *sharedApp) get(sp workload.Spec, scale workload.Scale) *trace.App {
	sa.once.Do(func() {
		sa.app = sp.Build(scale)
		sa.reqs = sa.app.Requests()
	})
	return sa.app
}

// runSweep is the dispatcher goroutine that owns one job's lifecycle:
// it fans cells onto the pool (or runs them inline in degraded mode),
// waits, aggregates and publishes the terminal event. ctx is the job
// context — cancellation or deadline expiry stops fan-out, skips queued
// cells, interrupts running engines at their checkpoint interval and
// terminates the job with a canceled/deadline_exceeded event. release
// frees the job context's resources when the sweep ends.
func (s *Service) runSweep(ctx context.Context, release func(), jobID string, specs []workload.Spec, schemes []mapping.Scheme, cfg gpusim.Config, scale workload.Scale, seed int64, result *SimulateResult, tr *obs.Trace, root obs.SpanRef, degraded bool) {
	defer s.sweepWG.Done()
	defer release()
	defer root.End()
	start := time.Now()
	s.jobs.setRunning(jobID)
	if degraded {
		s.metrics.degradedSweeps.Add(1)
		root.Annotate(obs.Attr{Key: "degraded", Value: "true"})
	}
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// deliver publishes each finished cell on the job's event stream
	// the moment it lands (streaming clients see it before job
	// completion) and files it into its dense grid slot. Cells
	// never collide on a slot — each (wi, si) executes exactly once
	// per sweep, whichever dispatcher ran it — so the writes are safe
	// without a lock.
	deliver := func(wi, si int, done CellResult) {
		result.Cells[wi*len(schemes)+si] = done
		s.jobs.cellDone(jobID, done)
	}
	apps := make([]sharedApp, len(specs))
	// Dispatch: cluster-sharded when a peer set is configured and at
	// least one peer is reachable, local otherwise. Degraded sweeps
	// (fully cached, pool saturated) always run locally — their value
	// is answering from the local cache without queueing.
	handled := false
	if !degraded && s.cfg.Cluster != nil {
		handled = s.dispatchCluster(ctx, jobID, specs, schemes, cfg, scale, seed, result, tr, root, apps, deliver, fail)
	}
	if !handled {
		s.dispatchLocal(ctx, jobID, specs, schemes, cfg, scale, seed, result, tr, root, apps, deliver, fail, degraded)
	}
	elapsed := time.Since(start)
	s.metrics.AddSweepSeconds(elapsed)
	if cause := context.Cause(ctx); cause != nil {
		// Cancellation outranks any cell error it induced: a canceled
		// sweep's cells fail with context errors, but the job's terminal
		// state should say "canceled", not "failed".
		s.metrics.jobsCanceled.Add(1)
		s.jobs.finish(jobID, nil, cause)
		s.log.Info("sweep canceled",
			"job_id", jobID, "trace_id", tr.ID(),
			"done_cells", countDone(result), "duration_ms", elapsed.Milliseconds(),
			"cause", cause)
		return
	}
	if firstErr != nil {
		s.metrics.jobsFailed.Add(1)
		s.jobs.finish(jobID, nil, firstErr)
		s.log.Warn("sweep failed",
			"job_id", jobID, "trace_id", tr.ID(),
			"duration_ms", elapsed.Milliseconds(), "error", firstErr)
		return
	}
	result.Seconds = elapsed.Seconds()
	aggregateSweep(result)
	s.metrics.jobsDone.Add(1)
	s.jobs.finish(jobID, result, nil)
	s.log.Debug("sweep done",
		"job_id", jobID, "trace_id", tr.ID(),
		"cells", len(result.Cells), "duration_ms", elapsed.Milliseconds())
}

// countDone counts the cells that actually landed in a (possibly
// partially executed) sweep: filled slots carry their workload abbr.
func countDone(r *SimulateResult) int {
	n := 0
	for i := range r.Cells {
		if r.Cells[i].Workload != "" {
			n++
		}
	}
	return n
}

// aggregateSweep fills speedups vs BASE and per-scheme harmonic means
// when the sweep includes the BASE scheme.
func aggregateSweep(r *SimulateResult) {
	baseTime := map[string]int64{}
	for _, c := range r.Cells {
		if c.Scheme == string(mapping.BASE) {
			baseTime[c.Workload] = c.ExecTimePS
		}
	}
	if len(baseTime) == 0 {
		return
	}
	perScheme := map[string][]float64{}
	for i := range r.Cells {
		c := &r.Cells[i]
		if b, ok := baseTime[c.Workload]; ok && c.ExecTimePS > 0 {
			c.Speedup = float64(b) / float64(c.ExecTimePS)
			perScheme[c.Scheme] = append(perScheme[c.Scheme], c.Speedup)
		}
	}
	r.HMeanSpeedup = map[string]float64{}
	for sc, xs := range perScheme {
		r.HMeanSpeedup[sc] = experiments.HarmonicMean(xs)
	}
}

// Job returns a snapshot of the named job.
func (s *Service) Job(id string) (Job, bool) { return s.jobs.get(id) }

// JobEvents subscribes to the named job's event stream, replaying
// retained events with Seq >= from (pass 0 for the full history —
// start, every finished cell, then done/failed). It reports false for
// unknown or evicted jobs. Callers must Close the subscription.
func (s *Service) JobEvents(id string, from int) (*JobSubscription, bool) {
	return s.jobs.subscribe(id, from)
}
