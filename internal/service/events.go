package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// JobEvent is one record on a job's event stream, serialized as NDJSON
// by the streaming endpoints. Every job's log is the sequence
//
//	start · cell × Done · (done | failed | canceled | deadline_exceeded)
//
// with Seq dense and ascending from 0 (Done == Total when the terminal
// event is done; canceled, expired and failed jobs may terminate with
// fewer cells). Ordering guarantee: cell events are published before
// the terminal event, and every subscriber observes its events in Seq
// order with no duplicates — a streaming client therefore always sees
// the first finished cell strictly before the job reaches done.
type JobEvent struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // start | cell | done | failed | canceled | deadline_exceeded
	JobID string `json:"job_id"`
	// TraceID is the job's trace identifier, stamped on every event by
	// the bus so a streamed NDJSON record correlates with the span tree
	// on /v1/jobs/{id}/trace and with structured log lines.
	TraceID string `json:"trace_id,omitempty"`
	// Done / Total track progress at publish time (cell and terminal
	// events; the start event reports 0/Total).
	Done  int `json:"done_cells"`
	Total int `json:"total_cells"`
	// Cell is the finished cell (cell events only).
	Cell *CellResult `json:"cell,omitempty"`
	// Result is the aggregated sweep (done events only).
	Result *SimulateResult `json:"result,omitempty"`
	// Error is the failure reason (failed, canceled and
	// deadline_exceeded events).
	Error string `json:"error,omitempty"`
}

// Event types on a job stream.
const (
	EventStart  = "start"
	EventCell   = "cell"
	EventDone   = "done"
	EventFailed = "failed"
	// EventCanceled and EventDeadlineExceeded are the cancellation
	// terminals: the job was abandoned by an explicit cancel (or client
	// disconnect) or ran out of its deadline budget. Like done/failed
	// they close the stream; Done reports how many cells landed before
	// the cancellation took effect.
	EventCanceled         = "canceled"
	EventDeadlineExceeded = "deadline_exceeded"
)

// terminalEvent reports whether t closes a job's event stream.
func terminalEvent(t string) bool {
	switch t {
	case EventDone, EventFailed, EventCanceled, EventDeadlineExceeded:
		return true
	}
	return false
}

// subBuffer bounds each subscriber's live-tail channel. A consumer that
// falls further behind than this has its channel sends dropped (counted
// in valleyd_stream_events_dropped_total) and transparently falls back
// to reading the retained log, so slowness costs accounting, never a
// lost or duplicated event.
const subBuffer = 16

// jobBus is a per-job event fan-out. Publishers append to a retained,
// seq-ordered log and nudge subscribers over bounded channels; each
// subscriber delivers strictly from the log in seq order, so late
// joiners replay the full history and slow consumers lag without
// losing events. The log is bounded by the job itself (Total cells + 2
// control events) and is released when the job store evicts the job.
type jobBus struct {
	mu     sync.Mutex
	log    []JobEvent
	subs   map[*JobSubscription]struct{}
	closed bool
	// traceID is the owning job's trace identifier, stamped on every
	// published event.
	traceID string
	// dropped counts channel sends skipped because a subscriber's
	// buffer was full (the slow-consumer accounting); onDrop, when
	// set, mirrors each drop into the service-wide metric.
	dropped atomic.Int64
	onDrop  func()
}

// JobSubscription is one attachment to a job's event stream. Next
// delivers events in Seq order; Close detaches. next is the seq of the
// next event to deliver, guarded by the bus mutex; ch carries
// best-effort wakeups.
type JobSubscription struct {
	bus  *jobBus
	ch   chan struct{}
	next int
}

func newJobBus() *jobBus {
	return &jobBus{subs: map[*JobSubscription]struct{}{}}
}

// publish appends ev to the log (assigning its Seq) and wakes
// subscribers. Publishing a terminal event (done, failed, canceled or
// deadline_exceeded) closes the bus: subscribers drain the log and then
// see end-of-stream.
func (b *jobBus) publish(ev JobEvent) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	ev.Seq = len(b.log)
	ev.TraceID = b.traceID
	b.log = append(b.log, ev)
	if terminalEvent(ev.Type) {
		b.closed = true
	}
	for s := range b.subs {
		select {
		case s.ch <- struct{}{}:
		default:
			// Buffer full: the subscriber already has wakeups pending
			// and will re-check the log after draining them, so this
			// nudge is redundant — drop it and account for the lag.
			b.dropped.Add(1)
			if b.onDrop != nil {
				b.onDrop()
			}
		}
	}
	b.mu.Unlock()
}

// subscribe registers a subscriber that will observe every event with
// Seq >= from (older events replay from the log). Callers must Close
// the subscription when done.
func (b *jobBus) subscribe(from int) *JobSubscription {
	if from < 0 {
		from = 0
	}
	s := &JobSubscription{bus: b, ch: make(chan struct{}, subBuffer), next: from}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Close detaches the subscription from its bus. Safe to call while a
// Next is blocked (the blocked Next returns when its context expires).
func (s *JobSubscription) Close() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
}

// Next blocks until the subscriber's next event is available and
// returns it. eos reports a cleanly ended stream (terminal event
// already delivered); err is the subscriber's context expiring.
func (s *JobSubscription) Next(ctx context.Context) (ev JobEvent, eos bool, err error) {
	for {
		s.bus.mu.Lock()
		if s.next < len(s.bus.log) {
			ev := s.bus.log[s.next]
			s.next++
			s.bus.mu.Unlock()
			return ev, false, nil
		}
		closed := s.bus.closed
		s.bus.mu.Unlock()
		if closed {
			return JobEvent{}, true, nil
		}
		select {
		case <-ctx.Done():
			return JobEvent{}, false, ctx.Err()
		case <-s.ch:
			// Woken: re-check the log. Spurious or coalesced wakeups
			// just loop; delivery order comes from the log alone.
		}
	}
}
