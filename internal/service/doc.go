// Package service is the engine behind valleyd: it packages the
// library's entropy profiling, mapping advice and full-system simulation
// as a concurrent, cached network service. The building blocks are a
// content-addressed LRU profile cache with in-flight coalescing
// (cache.go, over internal/cache.LRU), a bounded worker pool executing
// simulation sweep jobs (jobs.go), a per-job event bus streaming sweep
// progress (events.go), durable snapshots of the simulation-result
// cache (snapshot.go), and a stdlib net/http JSON API over all of it
// (http.go), with Prometheus-style plain-text metrics (metrics.go).
//
// # Streaming sweeps
//
// A simulation sweep is asynchronous: POST /v1/simulate returns 202
// with a job handle, and clients may poll GET /v1/jobs/{id}. Polling
// only observes whole-sweep completion, so every running job also
// publishes events on a per-job bus:
//
//	start                       the job was accepted (seq 0)
//	cell × total_cells          one per finished workload × scheme cell
//	done | failed               terminal; done carries the aggregate
//
// Two endpoints expose the stream as NDJSON (one JSON event per line,
// flushed as published): POST /v1/simulate?stream=1 submits and streams
// in one request, and GET /v1/jobs/{id}/events attaches to any retained
// job — ?from=seq resumes after a disconnect, replaying retained events
// with Seq >= from before tailing live.
//
// Event-ordering guarantee: events carry a dense, ascending Seq; every
// cell event is published before the terminal event; and a subscriber
// observes its events in Seq order with no duplicates and no gaps. A
// streaming client therefore always sees the first finished cell
// strictly before the job reports done. Fan-out to subscribers uses
// bounded buffers: a consumer that falls behind the live tail costs a
// wakeup drop (counted in valleyd_stream_events_dropped_total) and
// catches up from the retained per-job log, never losing an event.
//
// # Durable simulation cache
//
// Sweep cells are pure functions of (workload, scale, scheme, config,
// seed) and expensive to compute, so the simulation-result cache is
// both cost-aware and durable. Eviction is cost-weighted: each cell
// carries its measured simulation seconds, and among the
// least-recently-used entries the cheapest-per-byte is evicted first,
// so one order-of-magnitude-more-expensive cell outlives a crowd of
// trivial ones. With Config.SimCacheSnapshot set, the cache is written
// to a versioned, checksummed snapshot file periodically and on Close,
// and loaded on New — a restarted valleyd answers repeat sweeps from
// cache (cells report "cached": true). Snapshots that fail validation
// (truncated, corrupt, wrong version) load as a clean empty cache.
//
// # Observability
//
// The service is instrumented end to end via internal/obs. Every
// request carries a trace id (client X-Trace-Id or generated), a
// request-scoped slog.Logger in its context, and a latency observation
// into valleyd_http_request_duration_seconds{path,code} — unknown paths
// collapse into path="other" so the label table stays bounded. Each
// sweep job records a ring-buffered span tree (accept → enqueue →
// per-cell queue wait → trace build → engine run → cache put), served
// by GET /v1/jobs/{id}/trace and correlated with the job's NDJSON
// events through the shared trace_id. Queue wait, per-cell simulation
// seconds and the streaming pipeline's per-stage times feed lock-free
// histograms rendered into /metrics by the obs.Registry hook in
// metrics.go (tracing.go holds the trace endpoint). Panics anywhere in
// a sweep — worker task, cell, or inside the cache's compute closure
// (surfaced as a cache.PanicError) — are recovered, logged with their
// stack, counted in valleyd_worker_panics_total, and fail only the
// affected job.
package service
