// Package service is the engine behind valleyd: it packages the
// library's entropy profiling, mapping advice and full-system simulation
// as a concurrent, cached network service. The building blocks are a
// sharded content-addressed profile cache with in-flight coalescing
// (cache.go, over internal/cache.Sharded), a bounded worker pool
// executing simulation sweep jobs (jobs.go), a per-job event bus
// streaming sweep progress (events.go), a two-tier simulation-result
// cache that spills to disk (cache.go, over internal/cache.Tiered,
// with legacy snapshot migration in snapshot.go), and a stdlib
// net/http JSON API over all of it (http.go), with Prometheus-style
// plain-text metrics (metrics.go).
//
// # Cell-execution core vs dispatch
//
// Sweep execution is split into a transport-agnostic core and
// swappable dispatch layers. The core (dispatch.go) knows how to run
// exactly one cell: resolveCell turns a CellSpec (workload, scheme,
// scale, config, seed — the wire-friendly coordinates) into a bound
// cellExec, and executeCell runs it through the two-tier cache,
// the tracing spans and the panic fences, returning a CellResult. It
// neither knows nor cares who asked. Above it sit two dispatchers
// that only decide where each cell runs: dispatchLocal (dispatch.go)
// fans cells out over the in-process worker pool (and runs them
// inline in degraded mode), while dispatchCluster
// (cluster_dispatch.go) shards them across peer valleyd workers by
// rendezvous hashing over the cells' sim-cache keys, stealing from
// slow or dead peers and falling back to the local pool for anything
// the cluster cannot place. Both deliver finished cells through the
// same callback into the job's dense-seq event log, so every
// downstream contract — event ordering, aggregation, admission
// accounting — is dispatcher-blind. The worker-facing half of the
// wire protocol lives in cluster_http.go: POST /v1/cells accepts a
// batch of CellSpecs and streams one NDJSON update per finished cell,
// executed on the worker's own pool via the same core.
//
// # Cluster mode
//
// A coordinator (Config.Cluster set, built by valleyd
// -mode=coordinator -peers=...) routes each cell to the peer that
// rendezvous-hashing ranks highest for the cell's sim-cache key.
// The key is content-addressed, so a repeated cell always ranks the
// same peer first and lands on a warm cache — including across full
// cluster restarts when workers keep their -spill-dir tiers. The
// coordinator never caches remote results; repeat sweeps reporting
// "cached": true prove the owning worker served them. Peers that
// fail, stall past the batch watchdog, or tear their stream are
// marked down for a cooldown, their undelivered cells re-ranked onto
// the next peer (valleyd_cluster_steals_total) or the local pool
// (valleyd_cluster_local_cells_total); with no reachable peer at all
// the sweep degrades to plain local execution. Dispatch volume per
// peer is valleyd_cluster_cells_dispatched_total{peer} and live peer
// health valleyd_cluster_peer_up{peer}. X-Trace-Id and X-Deadline-Ms
// propagate on every hop, so worker logs correlate with the
// coordinator's and remote cells observe the sweep's budget.
//
// # Streaming sweeps
//
// A simulation sweep is asynchronous: POST /v1/simulate returns 202
// with a job handle, and clients may poll GET /v1/jobs/{id}. Polling
// only observes whole-sweep completion, so every running job also
// publishes events on a per-job bus:
//
//	start                                              the job was accepted (seq 0)
//	cell × done_cells                                  one per finished workload × scheme cell
//	done | failed | canceled | deadline_exceeded       terminal; done carries the aggregate
//
// Two endpoints expose the stream as NDJSON (one JSON event per line,
// flushed as published): POST /v1/simulate?stream=1 submits and streams
// in one request, and GET /v1/jobs/{id}/events attaches to any retained
// job — ?from=seq resumes after a disconnect, replaying retained events
// with Seq >= from before tailing live.
//
// Event-ordering guarantee: events carry a dense, ascending Seq; every
// cell event is published before the terminal event; and a subscriber
// observes its events in Seq order with no duplicates and no gaps. A
// streaming client therefore always sees the first finished cell
// strictly before the job reports done. Fan-out to subscribers uses
// bounded buffers: a consumer that falls behind the live tail costs a
// wakeup drop (counted in valleyd_stream_events_dropped_total) and
// catches up from the retained per-job log, never losing an event.
//
// # Deadlines and cancellation
//
// Sweeps are cancelable end to end. SimulateCtx derives the job's
// budget from its context: the deadline instant (set by the HTTP layer
// from ?deadline_ms / X-Deadline-Ms or Config.DefaultDeadline)
// survives into a job context that deliberately does NOT inherit the
// request's cancellation — a 202 job outlives its submitting handler.
// Three things kill a job early: an explicit cancel (DELETE
// /v1/jobs/{id} or Service.CancelJob), a streamed sweep's only client
// disconnecting, and the deadline expiring. Running cells observe the
// dead context at engine checkpoints (every 100k simulated events) and
// at kernel boundaries, so a canceled sweep frees its worker slots
// within a bounded interval rather than simulating to completion for
// nobody. The terminal event distinguishes the cause — canceled vs
// deadline_exceeded — via context.Cause, and cancellation always
// outranks individual cell errors. Canceled computations are never
// cached; a concurrent job that was coalesced onto a canceled cell's
// in-flight computation retries the cell under its own (live) context.
//
// # Admission control and degraded mode
//
// Accepting a sweep that cannot finish before its deadline wastes
// worker time twice — once computing cells that will be thrown away,
// once delaying everyone queued behind them. The admission gate
// (admission.go) prices each deadline-bearing sweep before acceptance:
// an EWMA cost model tracks measured seconds per cell, keyed by
// (config, scale) with a global fallback, and the sweep's uncached
// cells behind the current queue backlog must fit the deadline budget
// or the request is shed with HTTP 429 and a Retry-After hint
// (valleyd_jobs_shed_total counts these). Capacity rejections (job cap,
// shutdown) are 503s carrying the same Retry-After pricing. Sweeps
// without deadlines and sweeps arriving before any cost data exist are
// always admitted — the gate never sheds blind. Degraded mode keeps
// cached data flowing under overload: a sweep whose cells are all
// resident in the sim cache bypasses a saturated pool entirely and is
// served inline on the dispatcher goroutine
// (valleyd_sweeps_degraded_total).
//
// # Two-tier simulation cache
//
// Sweep cells are pure functions of (workload, scale, scheme, config,
// seed) and expensive to compute, so the simulation-result cache is
// cost-aware, sharded and (optionally) disk-backed. Eviction is
// cost-weighted: each cell carries its measured simulation seconds,
// and among the least-recently-used entries the cheapest-per-byte is
// evicted first, so one order-of-magnitude-more-expensive cell
// outlives a crowd of trivial ones. With Config.SpillDir set, evicted
// cells spill asynchronously to one checksummed file each and promote
// back into memory on demand; Close spills the resident working set,
// so a restarted valleyd answers repeat sweeps from cache (cells
// report "cached": true, valleyd_cache_tier_hits_total{tier="disk"}
// counts the disk serves). Spill damage of any kind — failed writes,
// torn files, corrupt entries — degrades to a recomputed miss, never
// an error or corrupt bytes; see internal/cache's package docs for the
// full two-tier contract. A legacy VSIMCSH1 snapshot file named by
// Config.SimCacheSnapshot is loaded on New and migrated into the spill
// directory once (snapshot.go).
//
// # Fault injection
//
// The failure paths above are exercised by a chaos suite driven
// through internal/fault: build-tagged injection points at the spill
// tier's writes and reads, the mmap opener, the sweep cells and the
// coordinator→worker batch path (dead, slow and torn peers). In normal
// builds every hook is a compiled-out no-op; see internal/fault's
// package documentation for the seam contract and chaos_test.go for
// the suite.
//
// # Observability
//
// The service is instrumented end to end via internal/obs. Every
// request carries a trace id (client X-Trace-Id or generated), a
// request-scoped slog.Logger in its context, and a latency observation
// into valleyd_http_request_duration_seconds{path,code} — unknown paths
// collapse into path="other" so the label table stays bounded. Each
// sweep job records a ring-buffered span tree (accept → enqueue →
// per-cell queue wait → trace build → engine run → cache put), served
// by GET /v1/jobs/{id}/trace and correlated with the job's NDJSON
// events through the shared trace_id. Queue wait, per-cell simulation
// seconds and the streaming pipeline's per-stage times feed lock-free
// histograms rendered into /metrics by the obs.Registry hook in
// metrics.go (tracing.go holds the trace endpoint). Panics anywhere in
// a sweep — worker task, cell, or inside the cache's compute closure
// (surfaced as a cache.PanicError) — are recovered, logged with their
// stack, counted in valleyd_worker_panics_total, and fail only the
// affected job.
package service
