package service

// Cost-aware admission control. The sim cache's measured per-cell
// seconds feed an EWMA cost model keyed by (config, scale); before a
// sweep is accepted, the model prices the sweep's uncached cells plus
// the pool's current backlog against the request's deadline. Sweeps
// that cannot finish in time are shed up front with a 429 and a
// Retry-After hint — cheaper for everyone than accepting work that is
// guaranteed to be canceled half-done — and fully-cached sweeps bypass
// the saturated pool entirely (degraded mode), so cached results stay
// servable under overload.

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// costAlpha is the EWMA smoothing factor for observed cell seconds:
// heavy enough that a config change re-converges within a few sweeps,
// light enough that one outlier cell does not whipsaw admission.
const costAlpha = 0.3

// costModel tracks measured simulation cost per (config, scale) class
// plus a global mean, all as EWMAs of wall seconds per cell.
type costModel struct {
	mu     sync.Mutex
	byKey  map[string]float64
	global float64
	n      int64
}

func newCostModel() *costModel {
	return &costModel{byKey: map[string]float64{}}
}

func costKey(cfgName, scaleName string) string { return cfgName + "|" + scaleName }

// observe folds one freshly simulated cell's wall seconds into the
// model. Cached cells are not observed: their near-zero times measure
// the cache, not the simulator.
func (c *costModel) observe(cfgName, scaleName string, secs float64) {
	if secs <= 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
		return
	}
	key := costKey(cfgName, scaleName)
	c.mu.Lock()
	if prev, ok := c.byKey[key]; ok {
		c.byKey[key] = prev + costAlpha*(secs-prev)
	} else {
		c.byKey[key] = secs
	}
	if c.n == 0 {
		c.global = secs
	} else {
		c.global += costAlpha * (secs - c.global)
	}
	c.n++
	c.mu.Unlock()
}

// estimate prices one cell of the given class in seconds, falling back
// to the global mean. ok is false when the model has no data at all.
func (c *costModel) estimate(cfgName, scaleName string) (secs float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, found := c.byKey[costKey(cfgName, scaleName)]; found {
		return v, true
	}
	if c.n > 0 {
		return c.global, true
	}
	return 0, false
}

// mean returns the global EWMA cell cost; ok is false with no data.
func (c *costModel) mean() (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.global, c.n > 0
}

// tooBusyError marks deadline-infeasible sweeps shed by admission
// control (HTTP 429 + Retry-After).
type tooBusyError struct {
	msg        string
	retryAfter int
}

func (e tooBusyError) Error() string { return e.msg }

func (e tooBusyError) retryAfterSeconds() int { return e.retryAfter }

// retryHinter lets writeError surface a Retry-After header from any
// capacity error that can price the current backlog.
type retryHinter interface{ retryAfterSeconds() int }

// clampRetryAfter keeps hints useful: at least 1s (0 would tell clients
// to hammer), at most 10 min (beyond that the estimate is noise).
func clampRetryAfter(secs float64) int {
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 600 {
		n = 600
	}
	return n
}

// retryAfterHint prices draining the current pool backlog in seconds:
// queued tasks × mean cell seconds / workers. With no cost data yet it
// returns the 1s floor.
func (s *Service) retryAfterHint() int {
	mean, ok := s.costs.mean()
	if !ok {
		return 1
	}
	return clampRetryAfter(float64(s.pool.backlog()) * mean / float64(s.cfg.Workers))
}

// poolSaturated reports that new un-cached work would queue behind a
// meaningful backlog: every worker is busy and the queue is at least
// half full.
func (s *Service) poolSaturated() bool {
	return s.pool.busyWorkers() >= s.cfg.Workers && 2*s.pool.backlog() >= s.pool.capacity()
}

// admitSweep is the admission gate. cachedCells of totalCells are
// already resident in the sim cache. It returns degraded=true when the
// sweep should bypass the saturated pool and run inline off the cache,
// or a tooBusyError when the sweep cannot finish before its deadline.
// Sweeps without a deadline are always admitted — they can wait
// arbitrarily long, and the pool's bounded queue still backpressures
// them.
func (s *Service) admitSweep(deadline *time.Time, totalCells, cachedCells int, cfgName, scaleName string) (degraded bool, err error) {
	uncached := totalCells - cachedCells
	if uncached == 0 && s.poolSaturated() {
		// Fully answerable from the cache: serve it inline rather than
		// queueing no-op tasks behind saturated workers.
		return true, nil
	}
	if deadline == nil || uncached == 0 {
		return false, nil
	}
	est, ok := s.costs.estimate(cfgName, scaleName)
	if !ok {
		// No cost data yet: never shed blind. The deadline still
		// protects the client — the sweep will be canceled mid-flight if
		// it overruns.
		return false, nil
	}
	// FIFO queue model: the sweep's uncached cells drain behind the
	// current backlog across all workers.
	backlogSecs := float64(s.pool.backlog()) * s.meanOr(est) / float64(s.cfg.Workers)
	sweepSecs := float64(uncached) * est / float64(s.cfg.Workers)
	budget := time.Until(*deadline).Seconds()
	if backlogSecs+sweepSecs > budget {
		s.metrics.jobsShed.Add(1)
		return false, tooBusyError{
			msg: fmt.Sprintf("sweep shed: estimated %.1fs of work (%d uncached cells behind %d queued tasks) exceeds the %.1fs deadline budget",
				backlogSecs+sweepSecs, uncached, s.pool.backlog(), budget),
			retryAfter: clampRetryAfter(backlogSecs),
		}
	}
	return false, nil
}

// meanOr returns the global mean cell cost, or fallback without data.
func (s *Service) meanOr(fallback float64) float64 {
	if m, ok := s.costs.mean(); ok {
		return m
	}
	return fallback
}

// countCachedCells counts how many of the sweep's cells are resident in
// either cache tier right now, without touching recency, promotion or
// the disk (Contains), so the admission probe does not distort eviction
// order. Spill-tier entries count as cached: a spilled cell costs one
// file read, not simulation seconds, so a fully-spilled repeat sweep
// prices near zero and must not be shed with a 429 on backlog math
// that assumes it will simulate.
func (s *Service) countCachedCells(keys []string) int {
	n := 0
	for _, k := range keys {
		if s.simCache.Contains(k) {
			n++
		}
	}
	return n
}
