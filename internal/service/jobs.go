package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"valleymap/internal/obs"
)

// JobStatus is the lifecycle state of an async job.
type JobStatus string

// Job lifecycle: queued → running → done | failed | canceled.
const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
	// JobCanceled covers both explicit cancellation (DELETE, client
	// disconnect on a streamed sweep) and an expired deadline; Error and
	// the terminal event type (canceled vs deadline_exceeded) say which.
	JobCanceled JobStatus = "canceled"
)

// terminalStatus reports whether st is a final job state.
func terminalStatus(st JobStatus) bool {
	return st == JobDone || st == JobFailed || st == JobCanceled
}

// Job is one asynchronous simulation sweep. Cells (workload × scheme
// pairs) execute across the shared worker pool; Done tracks progress.
type Job struct {
	ID string `json:"id"`
	// TraceID correlates the job with its span trace
	// (GET /v1/jobs/{id}/trace), its NDJSON events and log lines.
	TraceID  string          `json:"trace_id,omitempty"`
	Kind     string          `json:"kind"`
	Status   JobStatus       `json:"status"`
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Total    int             `json:"total_cells"`
	Done     int             `json:"done_cells"`
	Error    string          `json:"error,omitempty"`
	Result   *SimulateResult `json:"result,omitempty"`
	// Deadline is the instant the job's execution budget expires
	// (?deadline_ms / X-Deadline-Ms / the daemon default); absent for
	// jobs with no deadline.
	Deadline *time.Time `json:"deadline,omitempty"`
}

// jobStore holds jobs by ID, retaining at most maxJobs entries:
// creating a job beyond the cap evicts the oldest *finished* jobs
// (done or failed), and creation fails outright when the cap is filled
// by in-flight jobs — otherwise a request flood would grow job structs
// and dispatcher goroutines without bound, since 202-accepted sweeps
// park their backpressure in the dispatcher, not the HTTP handler.
//
// Every job also owns a jobBus (events.go): the store publishes
// lifecycle events (start / cell / done / failed) as state changes
// land, and subscribers stream them over /v1/jobs/{id}/events. The bus
// — and its retained event log — lives exactly as long as the job
// entry, so eviction frees both.
type jobStore struct {
	mu     sync.RWMutex
	jobs   map[string]*Job
	buses  map[string]*jobBus
	traces map[string]*obs.Trace
	// cancels holds each in-flight job's cancel function (cause-aware);
	// removed when the job reaches a terminal state, so canceling a
	// finished job is a cheap no-op.
	cancels map[string]context.CancelCauseFunc
	order   []string // creation order, for eviction
	maxJobs int
	nextID  atomic.Int64
	// onDrop observes slow-consumer wakeup drops across all buses
	// (may be nil; wired to the stream-drop metric).
	onDrop func()
}

func newJobStore(maxJobs int) *jobStore {
	if maxJobs < 1 {
		maxJobs = 1
	}
	return &jobStore{
		jobs:    map[string]*Job{},
		buses:   map[string]*jobBus{},
		traces:  map[string]*obs.Trace{},
		cancels: map[string]context.CancelCauseFunc{},
		maxJobs: maxJobs,
	}
}

// create registers a new job, evicting the oldest finished jobs past
// the cap. It returns an error when every retained slot holds an
// in-flight job. tr is the job's span recorder (may be nil); it — and
// its retained spans — lives exactly as long as the job entry.
func (s *jobStore) create(kind string, total int, tr *obs.Trace) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.jobs) >= s.maxJobs {
		evicted := false
		for i, id := range s.order {
			if old := s.jobs[id]; old != nil && terminalStatus(old.Status) {
				delete(s.jobs, id)
				delete(s.buses, id)
				delete(s.traces, id)
				delete(s.cancels, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, fmt.Errorf("job limit reached: %d jobs in flight", len(s.jobs))
		}
	}
	j := &Job{
		ID:      fmt.Sprintf("job-%d", s.nextID.Add(1)),
		TraceID: tr.ID(),
		Kind:    kind,
		Status:  JobQueued,
		Created: time.Now().UTC(),
		Total:   total,
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if tr != nil {
		s.traces[j.ID] = tr
	}
	bus := newJobBus()
	bus.onDrop = s.onDrop
	bus.traceID = tr.ID()
	s.buses[j.ID] = bus
	bus.publish(JobEvent{Type: EventStart, JobID: j.ID, Total: total})
	return j, nil
}

// arm registers an in-flight job's cancel function and (optional)
// deadline after creation. The cancel function is dropped when the job
// reaches a terminal state.
func (s *jobStore) arm(id string, cancel context.CancelCauseFunc, deadline *time.Time) {
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		s.cancels[id] = cancel
		j.Deadline = deadline
	}
	s.mu.Unlock()
}

// cancel fires the job's cancel function with the given cause. It
// reports whether the job exists; canceling a job that is already
// terminal (or was never armed) is a true no-op.
func (s *jobStore) cancel(id string, cause error) bool {
	s.mu.RLock()
	_, known := s.jobs[id]
	fn := s.cancels[id]
	s.mu.RUnlock()
	if fn != nil {
		fn(cause)
	}
	return known
}

// trace returns the job's span recorder. The bool reports whether the
// job itself is known; a known job may still carry a nil trace (the
// obs API is nil-safe, so callers need no extra check).
func (s *jobStore) trace(id string) (*obs.Trace, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.jobs[id]; !ok {
		return nil, false
	}
	return s.traces[id], true
}

// subscribe attaches a subscriber to the job's event stream, replaying
// retained events with Seq >= from. It reports false for unknown (or
// evicted) jobs.
func (s *jobStore) subscribe(id string, from int) (*JobSubscription, bool) {
	s.mu.RLock()
	bus, ok := s.buses[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return bus.subscribe(from), true
}

// busFor exposes a job's bus (tests and the dispatcher use it).
func (s *jobStore) busFor(id string) (*jobBus, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buses[id]
	return b, ok
}

// get returns a copy of the job (safe for concurrent marshaling) or
// false when the ID is unknown.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

func (s *jobStore) setRunning(id string) {
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		now := time.Now().UTC()
		j.Status = JobRunning
		j.Started = &now
	}
	s.mu.Unlock()
}

// cellDone advances the job's progress and publishes the finished cell
// on the job's event stream. Publishing happens under the store lock
// (store → bus lock order, consistent everywhere) so done_cells is
// monotonic in Seq order even when pool workers finish concurrently.
func (s *jobStore) cellDone(id string, cell CellResult) {
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		j.Done++
		if bus := s.buses[id]; bus != nil {
			c := cell
			bus.publish(JobEvent{Type: EventCell, JobID: id, Done: j.Done, Total: j.Total, Cell: &c})
		}
	}
	s.mu.Unlock()
}

func (s *jobStore) finish(id string, res *SimulateResult, err error) {
	s.mu.Lock()
	if j := s.jobs[id]; j != nil {
		now := time.Now().UTC()
		j.Finished = &now
		evType := EventDone
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// Deadline expiry and explicit cancellation share the
			// canceled job status; the error text and the terminal event
			// type distinguish them.
			j.Status = JobCanceled
			j.Error = err.Error()
			evType = EventDeadlineExceeded
		case errors.Is(err, context.Canceled):
			j.Status = JobCanceled
			j.Error = err.Error()
			evType = EventCanceled
		case err != nil:
			j.Status = JobFailed
			j.Error = err.Error()
			evType = EventFailed
		default:
			j.Status = JobDone
			j.Result = res
		}
		delete(s.cancels, id)
		// Terminal event: published after every cell event (the
		// dispatcher waits for all cells first), closing the stream.
		if bus := s.buses[id]; bus != nil {
			if err != nil {
				bus.publish(JobEvent{Type: evType, JobID: id, Done: j.Done, Total: j.Total, Error: err.Error()})
			} else {
				bus.publish(JobEvent{Type: EventDone, JobID: id, Done: j.Done, Total: j.Total, Result: res})
			}
		}
	}
	s.mu.Unlock()
}

// pool is a fixed-size worker pool with a bounded task queue. Submit
// blocks when the queue is full, giving natural backpressure: job
// dispatcher goroutines stall rather than the HTTP accept loop.
type pool struct {
	tasks chan func()
	busy  atomic.Int64
	wg    sync.WaitGroup
	// metrics/log back the panic backstop in run.
	metrics *Metrics
	log     *slog.Logger
	// mu orders submits against close: senders hold the read lock for
	// the whole check-then-send, so once close holds the write lock and
	// flips closed, no goroutine can be mid-send on the channel it is
	// about to close.
	mu     sync.RWMutex
	closed bool
	once   sync.Once
}

func newPool(workers, queue int, m *Metrics, log *slog.Logger) *pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	if log == nil {
		log = slog.Default()
	}
	p := &pool{tasks: make(chan func(), queue), metrics: m, log: log}
	m.workers = workers
	m.queueDepth = func() int { return len(p.tasks) }
	m.workersBusy = func() int { return int(p.busy.Load()) }
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				p.busy.Add(1)
				p.run(f)
				p.busy.Add(-1)
			}
		}()
	}
	return p
}

// run executes one task behind a recover backstop: a task that panics
// without its own recovery must not kill the shared worker goroutine,
// which would silently shrink the pool for every later job. The panic
// is logged with its stack and counted in valleyd_worker_panics_total.
func (p *pool) run(f func()) {
	defer func() {
		if r := recover(); r != nil {
			p.metrics.WorkerPanic()
			p.log.Error("worker panic recovered",
				"panic", fmt.Sprint(r),
				"stack", string(debug.Stack()),
			)
		}
	}()
	f()
}

// backlog reports tasks queued but not yet picked up; capacity the
// queue bound; busyWorkers the workers currently executing a task. All
// are point-in-time samples for the admission gate and metrics.
func (p *pool) backlog() int     { return len(p.tasks) }
func (p *pool) capacity() int    { return cap(p.tasks) }
func (p *pool) busyWorkers() int { return int(p.busy.Load()) }

// submit enqueues a task, blocking while the queue is full. It reports
// false when the pool is shutting down. A sender blocked on a full
// queue delays close until a worker frees a slot — workers keep
// draining, so the wait is bounded.
func (p *pool) submit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.tasks <- f
	return true
}

// close stops intake, lets queued tasks drain and waits for workers.
func (p *pool) close() {
	p.once.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		close(p.tasks)
	})
	p.wg.Wait()
}
