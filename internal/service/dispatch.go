package service

// The cell-execution core and the dispatch layer. executeCell is the
// transport-agnostic heart of a sweep: one (workload, scale, scheme,
// config, seed) cell through the two-tier cache, the pooled engine and
// the admission cost model, identical whether the cell was submitted
// by a local sweep, a coordinator's remote batch (cluster_http.go) or
// an embedder (ExecuteCell). Above it sit two dispatchers sharing the
// cellTask shape: dispatchLocal fans cells over the in-process worker
// pool, and dispatchCluster (cluster_dispatch.go) shards them across
// peer valleyd workers by cache-affinity rendezvous hashing.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"valleymap/internal/cache"
	"valleymap/internal/experiments"
	"valleymap/internal/fault"
	"valleymap/internal/gpusim"
	"valleymap/internal/mapping"
	"valleymap/internal/obs"
	"valleymap/internal/workload"
)

// errClosed is the sweep-visible form of a pool refusing work during
// shutdown.
var errClosed = errors.New("service shutting down")

// cellExec is one resolved cell plus the observability context it runs
// under. tr may be nil and span zero (the obs API is nil-safe), which
// is how the worker-side /v1/cells path runs the core without a span
// trace of its own.
type cellExec struct {
	sp        workload.Spec
	sc        mapping.Scheme
	sa        *sharedApp
	scale     workload.Scale
	scaleName string
	cfg       gpusim.Config
	cfgName   string
	seed      int64
	tr        *obs.Trace
	span      obs.SpanRef // the cell span child stages nest under
}

// executeCell runs one sweep cell through the cache-backed execution
// core: chaos seams, shared trace build, mapper, pooled engine run,
// GetOrCompute with in-flight coalescing (retried when a joined
// computation dies with someone else's context error), and the
// hit/miss metrics and admission-cost accounting. The returned
// CellResult is complete except for span annotations, which the caller
// owns. Context errors come back unwrapped; a panic inside the compute
// closure surfaces as a cache.PanicError, already logged and counted.
func (s *Service) executeCell(ctx context.Context, jobID string, ce cellExec) (CellResult, error) {
	cellStart := time.Now()
	// putSpan covers the cache insert after the compute closure
	// returns; it stays the inert zero SpanRef on cache hits.
	var putSpan obs.SpanRef
	compute := func() (*simCell, error) {
		// Chaos seams: a wedged worker stalls here; an induced
		// cell panic exercises the PanicError recovery path.
		fault.Sleep(fault.WorkerDelay)
		if fault.Fail(fault.CellPanic) {
			panic("injected cell panic")
		}
		simStart := time.Now()
		build := ce.tr.Start(ce.span.ID(), "trace_build")
		app := ce.sa.get(ce.sp, ce.scale)
		build.End()
		m := mapping.MustNew(ce.sc, ce.cfg.Layout, mapping.Options{Seed: ce.seed})
		r := runnerPool.Get().(*gpusim.Runner)
		eng := ce.tr.Start(ce.span.ID(), "engine_run")
		var setup, kernels, collect time.Duration
		r.SetStageObserver(func(stage string, d time.Duration) {
			switch stage {
			case gpusim.StageSetup:
				setup = d
			case gpusim.StageKernels:
				kernels = d
			case gpusim.StageCollect:
				collect = d
			}
		})
		// The engine polls ctx between bounded event batches,
		// so an abandoned or expired sweep frees this worker
		// slot mid-cell within the checkpoint interval.
		res, runErr := r.RunCtx(ctx, app, m, ce.cfg)
		r.SetStageObserver(nil)
		eng.Annotate(
			obs.Attr{Key: "setup_us", Value: strconv.FormatInt(setup.Microseconds(), 10)},
			obs.Attr{Key: "kernels_us", Value: strconv.FormatInt(kernels.Microseconds(), 10)},
			obs.Attr{Key: "collect_us", Value: strconv.FormatInt(collect.Microseconds(), 10)},
		)
		eng.End()
		runnerPool.Put(r)
		if runErr != nil {
			return nil, runErr
		}
		// The shared build must come back untouched, or it
		// would poison this workload's remaining cells and
		// every later sweep holding the same pointer.
		if got := ce.sa.app.Requests(); got != ce.sa.reqs {
			return nil, fmt.Errorf("simulating %s under %s mutated the shared trace: %d requests became %d", ce.sp.Abbr, ce.sc, ce.sa.reqs, got)
		}
		putSpan = ce.tr.Start(ce.span.ID(), "cache_put")
		return &simCell{Res: experiments.FlattenResult(res), Seconds: time.Since(simStart).Seconds()}, nil
	}
	key := simCellKey(ce.sp.Abbr, ce.scaleName, ce.sc, ce.cfgName, ce.seed)
	var (
		cell *simCell
		tier cache.Tier
		err  error
	)
	for attempt := 0; ; attempt++ {
		cell, tier, err = s.simCache.GetOrCompute(key, compute)
		// In-flight coalescing wrinkle: joining another sweep's
		// computation means inheriting its context error if that
		// sweep is canceled. While our own job is still alive,
		// retry — canceled computations are never cached, so the
		// retry computes fresh under our live context.
		if err == nil || ctx.Err() != nil || attempt >= 2 ||
			!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			break
		}
	}
	putSpan.End()
	if err != nil {
		// A panic inside the compute closure surfaces as a
		// cache.PanicError (the cache recovers it to keep the
		// in-flight coalescing sane); account for it as a crash
		// with the stack from the panic site. Context errors are the
		// caller's to classify quietly.
		var pe *cache.PanicError
		if errors.As(err, &pe) {
			s.metrics.WorkerPanic()
			s.log.Error("sweep cell panic recovered",
				"job_id", jobID,
				"trace_id", ce.tr.ID(),
				"workload", ce.sp.Abbr,
				"scheme", string(ce.sc),
				"panic", fmt.Sprint(pe.Value),
				"stack", string(pe.Stack),
			)
		}
		return CellResult{}, err
	}
	// A spill-tier hit is a hit: the cell came from the cache,
	// not the simulator, whichever tier held it.
	hit := tier != cache.TierMiss
	done := CellResult{
		Workload:   ce.sp.Abbr,
		Scheme:     string(ce.sc),
		Seconds:    time.Since(cellStart).Seconds(),
		Cached:     hit,
		ResultJSON: cell.Res,
	}
	s.metrics.cellSeconds.Observe(done.Seconds)
	if !hit {
		s.metrics.cellsSimulated.Add(1)
		// Feed the admission cost model with the measured
		// simulation seconds (cache hits measure the cache,
		// not the simulator, and are skipped).
		s.costs.observe(ce.cfgName, ce.scaleName, cell.Seconds)
	}
	return done, nil
}

// CellSpec names one simulation cell in transport form, the public
// mirror of a sweep grid coordinate: workload abbreviation, scheme
// name, scale, config and seed (0 = 1), all in the string vocabularies
// the HTTP API uses.
type CellSpec struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Scale    string `json:"scale,omitempty"`
	Config   string `json:"config,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// ExecuteCell resolves and runs one cell through the execution core on
// the calling goroutine: cache first (either tier), then a fresh
// simulation. It is the single-cell entry point embedders and the
// worker-side batch endpoint build on; sweep-relative aggregation
// (speedups) is the dispatcher's business, not the core's.
func (s *Service) ExecuteCell(ctx context.Context, spec CellSpec) (CellResult, error) {
	ce, err := s.resolveCell(spec, &sharedApp{})
	if err != nil {
		return CellResult{}, err
	}
	return s.executeCell(ctx, "", ce)
}

// resolveCell validates spec against the workload/scheme/config/scale
// vocabularies and binds it to sa's shared trace slot.
func (s *Service) resolveCell(spec CellSpec, sa *sharedApp) (cellExec, error) {
	sp, ok := workload.ByAbbr(spec.Workload)
	if !ok {
		return cellExec{}, notFoundf("unknown workload %q (want one of %v)", spec.Workload, workload.Abbrs())
	}
	sc, err := mapping.ParseScheme(spec.Scheme)
	if err != nil {
		return cellExec{}, badRequestf("unknown scheme %q (want one of %v)", spec.Scheme, mapping.Schemes())
	}
	cfg, cfgName, err := parseSimConfig(spec.Config)
	if err != nil {
		return cellExec{}, err
	}
	scale, scaleName, err := parseScale(spec.Scale)
	if err != nil {
		return cellExec{}, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return cellExec{
		sp: sp, sc: sc, sa: sa,
		scale: scale, scaleName: scaleName,
		cfg: cfg, cfgName: cfgName,
		seed: seed,
	}, nil
}

// cellTask wraps one cell for pool submission: queue-wait accounting,
// the cell span with its queue_wait child, a panic backstop, and the
// deliver/fail routing of the outcome. Both dispatchers build their
// local tasks through it so a cell behaves identically whether it ran
// in a plain sweep or as a cluster fallback.
func (s *Service) cellTask(ctx context.Context, jobID string, wi, si int, ce cellExec, submitAt time.Time, wg *sync.WaitGroup, deliver func(wi, si int, done CellResult), fail func(error)) func() {
	return func() {
		defer wg.Done()
		if ctx.Err() != nil {
			// Canceled while queued: free the worker slot without
			// paying for the cell.
			return
		}
		cellStart := time.Now()
		s.metrics.queueWait.ObserveDuration(cellStart.Sub(submitAt))
		cellSpan := ce.tr.StartAt(ce.span.ID(), "cell", submitAt,
			obs.Attr{Key: "workload", Value: ce.sp.Abbr},
			obs.Attr{Key: "scheme", Value: string(ce.sc)},
		)
		qw := ce.tr.StartAt(cellSpan.ID(), "queue_wait", submitAt)
		qw.EndAt(cellStart)
		defer func() {
			if r := recover(); r != nil {
				s.metrics.WorkerPanic()
				s.log.Error("sweep cell panic recovered",
					"job_id", jobID,
					"trace_id", ce.tr.ID(),
					"workload", ce.sp.Abbr,
					"scheme", string(ce.sc),
					"panic", fmt.Sprint(r),
					"stack", string(debug.Stack()),
				)
				cellSpan.Annotate(obs.Attr{Key: "panic", Value: fmt.Sprint(r)})
				cellSpan.End()
				fail(fmt.Errorf("simulating %s under %s: %v", ce.sp.Abbr, ce.sc, r))
			}
		}()
		exec := ce
		exec.span = cellSpan
		done, err := s.executeCell(ctx, jobID, exec)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Our own cancellation (or an unlucky triple join on
			// other dying sweeps): record it quietly; the dispatcher
			// publishes the terminal event.
			fail(err)
			cellSpan.Annotate(obs.Attr{Key: "canceled", Value: "true"})
			cellSpan.End()
			return
		}
		if err != nil {
			var pe *cache.PanicError
			if errors.As(err, &pe) {
				cellSpan.Annotate(obs.Attr{Key: "panic", Value: fmt.Sprint(pe.Value)})
			}
			fail(err)
			cellSpan.Annotate(obs.Attr{Key: "error", Value: err.Error()})
			cellSpan.End()
			return
		}
		cellSpan.Annotate(obs.Attr{Key: "cached", Value: strconv.FormatBool(done.Cached)})
		cellSpan.End()
		deliver(wi, si, done)
	}
}

// dispatchLocal fans a sweep's cells over the in-process worker pool
// (or inline on the dispatcher goroutine in degraded mode) and blocks
// until every submitted cell has finished. It is the single-node
// execution path and the cluster dispatcher's last-resort fallback.
func (s *Service) dispatchLocal(ctx context.Context, jobID string, specs []workload.Spec, schemes []mapping.Scheme, cfg gpusim.Config, scale workload.Scale, seed int64, result *SimulateResult, tr *obs.Trace, root obs.SpanRef, apps []sharedApp, deliver func(wi, si int, done CellResult), fail func(error), degraded bool) {
	var wg sync.WaitGroup
submit:
	for wi := range specs {
		for si := range schemes {
			if ctx.Err() != nil {
				// Canceled mid-fan-out: stop submitting. Cells already
				// queued or running drain through their own ctx checks.
				break submit
			}
			ce := cellExec{
				sp: specs[wi], sc: schemes[si], sa: &apps[wi],
				scale: scale, scaleName: result.Scale,
				cfg: cfg, cfgName: result.Config,
				seed: seed, tr: tr, span: root,
			}
			wg.Add(1)
			task := s.cellTask(ctx, jobID, wi, si, ce, time.Now(), &wg, deliver, fail)
			if degraded {
				// Degraded mode: the sweep is fully cached and the pool is
				// saturated, so cells run inline on this dispatcher
				// goroutine — cached results stay servable under overload
				// without queueing behind real simulation work.
				task()
				continue
			}
			if !s.pool.submit(task) {
				wg.Done()
				fail(errClosed)
				// The pool only refuses when it is closed; later submits
				// would just fail the same way, so stop fanning out.
				break submit
			}
		}
	}
	wg.Wait()
}
