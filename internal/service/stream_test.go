package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"valleymap/internal/trace"
)

func decodeRec(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

// syntheticCSV generates a valid CSV trace of `total` requests on the
// fly, without ever materializing the body or the trace: the upload-side
// counterpart of the streaming profiler, so tests can push 10×-scale
// traces through the handler while allocating almost nothing themselves.
type syntheticCSV struct {
	total, perTB int
	emitted      int
	header       bool
	line         []byte
	off          int
}

func (g *syntheticCSV) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if g.off >= len(g.line) {
			if !g.next() {
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			g.off = 0
		}
		c := copy(p[n:], g.line[g.off:])
		g.off += c
		n += c
	}
	return n, nil
}

func (g *syntheticCSV) next() bool {
	g.line = g.line[:0]
	if !g.header {
		g.header = true
		g.line = append(g.line, "K,synthetic,4,100\n"...)
		return true
	}
	if g.emitted >= g.total {
		return false
	}
	tb := g.emitted / g.perTB
	i := g.emitted % g.perTB
	g.emitted++
	// Strided pattern with some per-request jitter so every address bit
	// carries structure worth profiling.
	addr := (uint64(tb)*8192 + uint64(i)*4 + uint64(i%7)*256) & (1<<30 - 1)
	g.line = append(g.line, 'R', ',')
	g.line = strconv.AppendInt(g.line, int64(tb), 10)
	g.line = append(g.line, ',')
	g.line = strconv.AppendInt(g.line, int64(i/32), 10)
	g.line = append(g.line, ",R,"...)
	g.line = strconv.AppendUint(g.line, addr, 16)
	g.line = append(g.line, '\n')
	return true
}

func (g *syntheticCSV) size() int64 {
	n, err := io.Copy(io.Discard, &syntheticCSV{total: g.total, perTB: g.perTB})
	if err != nil {
		panic(err)
	}
	return n
}

// uploadSynthetic pushes a synthetic trace through POST /v1/profile and
// returns the bytes allocated during the request.
func uploadSynthetic(t *testing.T, h http.Handler, requests int) (allocated uint64, res *ProfileResult) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/profile?window=12&bits=30", &syntheticCSV{total: requests, perTB: 128})
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	h.ServeHTTP(rec, req)
	runtime.ReadMemStats(&m1)

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var env struct{ ProfileResult }
	decodeRec(t, rec, &env)
	return m1.TotalAlloc - m0.TotalAlloc, &env.ProfileResult
}

// TestStreamingUploadBoundedAllocs is the acceptance check for the
// streaming upload path: total bytes allocated while profiling a trace
// must be (near-)independent of trace length — O(window × bits) state
// plus fixed pipeline buffers — so a 10× larger upload must not allocate
// meaningfully more, where the old materialized path allocated O(trace).
func TestStreamingUploadBoundedAllocs(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	h := svc.Handler()

	const base = 100_000
	// Warm up fixed costs (scanner buffers, mux, first-request paths).
	uploadSynthetic(t, h, 1000)

	alloc1, res1 := uploadSynthetic(t, h, base)
	alloc10, res10 := uploadSynthetic(t, h, 10*base)

	if res1.Trace.Requests == 0 || res10.Trace.Requests <= res1.Trace.Requests {
		t.Fatalf("unexpected request counts: %d then %d", res1.Trace.Requests, res10.Trace.Requests)
	}
	// A materialized decode of the 10× body would need ≥ 16 MB for its
	// request slices alone (1M requests × 16 B); the streaming path must
	// stay flat. Allow 2× + 1 MiB of slack for noise.
	if alloc10 > 2*alloc1+1<<20 {
		t.Errorf("allocations scale with trace size: %d B for %d requests vs %d B for %d requests",
			alloc10, res10.Trace.Requests, alloc1, res1.Trace.Requests)
	}
	t.Logf("allocated %d B for %d requests, %d B for %d requests",
		alloc1, res1.Trace.Requests, alloc10, res10.Trace.Requests)
}

// TestStreamingUploadMatchesMaterialized: the streamed upload result
// (profile, hash, cache key, trace info) must be identical to profiling
// the materialized decode of the same bytes.
func TestStreamingUploadMatchesMaterialized(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	gen := &syntheticCSV{total: 50_000, perTB: 128}
	streamed, hit, err := svc.ProfileStream(&syntheticCSV{total: gen.total, perTB: gen.perTB}, ProfileRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first upload must not hit")
	}

	app, sum, err := trace.ReadCSVHashed(&syntheticCSV{total: gen.total, perTB: gen.perTB})
	if err != nil {
		t.Fatal(err)
	}
	if sum != streamed.Trace.SHA256 {
		t.Fatalf("incremental hash %s != materialized hash %s", streamed.Trace.SHA256, sum)
	}
	mat, hit, err := svc.ProfileTrace(app, sum, ProfileRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("materialized profile of identical bytes must hit the streamed entry")
	}
	if mat.CacheKey != streamed.CacheKey {
		t.Errorf("cache keys differ: %s vs %s", mat.CacheKey, streamed.CacheKey)
	}
	if len(mat.PerBit) != len(streamed.PerBit) {
		t.Fatal("per-bit lengths differ")
	}
	for b := range mat.PerBit {
		if mat.PerBit[b] != streamed.PerBit[b] {
			t.Fatalf("bit %d: streamed %.17g != materialized %.17g", b, streamed.PerBit[b], mat.PerBit[b])
		}
	}
	if mat.Trace.Kernels != streamed.Trace.Kernels || mat.Trace.Requests != streamed.Trace.Requests {
		t.Errorf("trace info differs: %+v vs %+v", streamed.Trace, mat.Trace)
	}
}

// TestStreamingUploadWithScheme drives the batch-transform hook through
// the HTTP surface (post-mapping profile of an uploaded trace).
func TestStreamingUploadWithScheme(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	h := svc.Handler()

	req := httptest.NewRequest("POST", "/v1/profile?scheme=PAE&seed=2&window=12",
		&syntheticCSV{total: 20_000, perTB: 128})
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var env struct{ ProfileResult }
	decodeRec(t, rec, &env)
	if env.Scheme != "PAE" || env.Seed != 2 {
		t.Errorf("scheme/seed = %s/%d", env.Scheme, env.Seed)
	}
	if env.MeanChannel == 0 {
		t.Error("post-mapping profile has zero channel entropy")
	}
}

// TestStreamingUploadRejectsMalformed keeps the 400 path intact through
// the streaming rewrite.
func TestStreamingUploadRejectsMalformed(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	h := svc.Handler()

	req := httptest.NewRequest("POST", "/v1/profile", strings.NewReader("K,k,1,1\nR,0,0,X,zz\n"))
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "bad trace") {
		t.Errorf("error body %q lacks decode context", rec.Body.String())
	}
}

// BenchmarkStreamingProfileUpload measures the full streaming hot path
// (HTTP handler → decoder → coalescer → accumulator) per upload.
// ProfileStream computes before consulting the cache, so every
// iteration does full work even though the body repeats.
func BenchmarkStreamingProfileUpload(b *testing.B) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	h := svc.Handler()
	const requests = 50_000
	body := &syntheticCSV{total: requests, perTB: 128}
	b.SetBytes(body.size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/profile?window=12", &syntheticCSV{total: requests, perTB: 128})
		req.Header.Set("Content-Type", "text/csv")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/requests, "ns/request")
}

// TestJSONEmbeddedTraceCachesByHash: the trace_csv JSON path hashes the
// in-memory string up front, so repeat requests hit the cache without a
// second profiling pass and share entries with raw CSV uploads of the
// same bytes.
func TestJSONEmbeddedTraceCachesByHash(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	var csv strings.Builder
	if _, err := io.Copy(&csv, &syntheticCSV{total: 5000, perTB: 128}); err != nil {
		t.Fatal(err)
	}
	req := ProfileRequest{TraceCSV: csv.String()}
	first, hit, err := svc.Profile(req)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first embedded trace must miss")
	}
	again, hit, err := svc.Profile(req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("repeat embedded trace must hit by content hash")
	}
	if again.CacheKey != first.CacheKey || again.Trace.SHA256 != first.Trace.SHA256 {
		t.Errorf("cache identity drifted: %+v vs %+v", again.Trace, first.Trace)
	}
	// The raw-CSV streaming upload of the same bytes lands on the same
	// entry.
	streamed, hit, err := svc.ProfileStream(strings.NewReader(csv.String()), ProfileRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || streamed.CacheKey != first.CacheKey {
		t.Errorf("CSV upload did not share the embedded trace's entry (hit=%v, key %s vs %s)",
			hit, streamed.CacheKey, first.CacheKey)
	}
}
