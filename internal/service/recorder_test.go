package service

// statusRecorder contract tests: the metrics wrapper must keep
// forwarding the optional ResponseWriter interfaces the handlers rely
// on (Flush for NDJSON streaming, Hijack for connection takeover),
// including when middleware stacks end up wrapping the wrapper.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Compile-time pins: losing either interface from the wrapper type is
// a build failure, not a runtime surprise in a streaming handler.
var (
	_ http.Flusher  = (*statusRecorder)(nil)
	_ http.Hijacker = (*statusRecorder)(nil)
)

// TestStatusRecorderDoubleWrapFlush: a Flush on a recorder wrapping
// another recorder must reach the innermost writer. Middleware stacks
// produce exactly this shape, and a broken hop silently turns live
// NDJSON streams into end-of-request batches.
func TestStatusRecorderDoubleWrapFlush(t *testing.T) {
	base := httptest.NewRecorder()
	inner := &statusRecorder{ResponseWriter: base, code: http.StatusOK}
	outer := &statusRecorder{ResponseWriter: inner, code: http.StatusOK}

	// Through the interface, as net/http handlers see it. The status
	// goes first — a flush commits the headers, exactly like a real
	// connection — and must record on every layer it passes through.
	var w http.ResponseWriter = outer
	w.WriteHeader(http.StatusTeapot)
	if outer.code != http.StatusTeapot || inner.code != http.StatusTeapot {
		t.Errorf("recorded codes outer=%d inner=%d, want both %d", outer.code, inner.code, http.StatusTeapot)
	}
	if base.Code != http.StatusTeapot {
		t.Errorf("underlying writer saw status %d, want %d", base.Code, http.StatusTeapot)
	}

	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusRecorder lost http.Flusher")
	}
	f.Flush()
	if !base.Flushed {
		t.Error("Flush through a double-wrapped recorder never reached the underlying writer")
	}
}

// TestStatusRecorderHijack exercises both halves of the Hijack
// contract: over a real connection the takeover succeeds (double
// wrapped, as a middleware stack would), and over a writer with no
// Hijacker underneath it returns an error instead of panicking.
func TestStatusRecorderHijack(t *testing.T) {
	const raw = "HTTP/1.1 200 OK\r\nContent-Length: 7\r\nConnection: close\r\n\r\nhijack\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{
			ResponseWriter: &statusRecorder{ResponseWriter: w, code: http.StatusOK},
			code:           http.StatusOK,
		}
		conn, bw, err := rec.Hijack()
		if err != nil {
			t.Errorf("hijack over a live connection: %v", err)
			return
		}
		defer conn.Close()
		bw.WriteString(raw) //nolint:errcheck // best-effort raw response
		bw.Flush()          //nolint:errcheck
	}))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hijack\n" {
		t.Errorf("hijacked response body %q, want %q", body, "hijack\n")
	}

	// httptest.ResponseRecorder has no Hijacker: the forwarder must
	// surface that as an error naming the offending writer type.
	rec := &statusRecorder{ResponseWriter: httptest.NewRecorder(), code: http.StatusOK}
	if _, _, err := rec.Hijack(); err == nil {
		t.Error("hijack over a non-hijackable writer returned nil error")
	} else if !strings.Contains(err.Error(), "ResponseRecorder") {
		t.Errorf("hijack error %q does not name the underlying writer type", err)
	}
}
