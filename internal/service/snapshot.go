package service

// Durable simulation-result cache. The sim cache is the expensive state
// of a valleyd: cells take seconds to minutes to compute and are pure
// functions of their key, so they are worth keeping across restarts.
// Snapshots are versioned and checksummed; anything that fails
// validation — truncation, corruption, a wrong version, a stray file —
// loads as a clean empty cache rather than an error, because a cache is
// always allowed to start cold.
//
// File layout (all integers little-endian):
//
//	magic   [8]byte  "VSIMCSH1"  (version is part of the magic)
//	length  uint64   payload byte count
//	payload []byte   JSON {"entries":[{"key":…,"cell":{…}},…]}
//	sum     [32]byte SHA-256 of payload
//
// Entries are ordered least-recently-used first, so loading them in
// order through Add reconstructs both contents and recency.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"valleymap/internal/fault"
)

// snapshotMagic identifies a sim-cache snapshot file; the trailing
// digit is the format version, so a version bump changes the magic and
// old readers/writers simply don't recognize each other's files.
var snapshotMagic = [8]byte{'V', 'S', 'I', 'M', 'C', 'S', 'H', '1'}

// snapshotEntry is one persisted cache cell.
type snapshotEntry struct {
	Key  string  `json:"key"`
	Cell simCell `json:"cell"`
}

type snapshotPayload struct {
	Entries []snapshotEntry `json:"entries"`
}

// encodeSnapshot renders the cache's resident entries in the snapshot
// file format.
func encodeSnapshot(entries []snapshotEntry) ([]byte, error) {
	payload, err := json.Marshal(snapshotPayload{Entries: entries})
	if err != nil {
		return nil, err
	}
	return encodeSnapshotRaw(payload)
}

// encodeSnapshotRaw wraps an already-encoded payload in the framing
// (magic, length, checksum). Split out so tests can frame deliberately
// invalid payloads.
func encodeSnapshotRaw(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	buf.Write(lenBuf[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// decodeSnapshot parses and validates a snapshot file. Every failure
// mode returns an error describing what was wrong; callers treat any
// error as "start cold".
func decodeSnapshot(data []byte) ([]snapshotEntry, error) {
	const headerLen = 8 + 8
	if len(data) < headerLen+sha256.Size {
		return nil, errors.New("snapshot truncated: shorter than header + checksum")
	}
	if !bytes.Equal(data[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("snapshot magic %q is not %q (wrong file or version)", data[:8], snapshotMagic[:])
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerLen-sha256.Size) {
		return nil, fmt.Errorf("snapshot length field %d does not match %d payload bytes on disk", n, len(data)-headerLen-sha256.Size)
	}
	payload := data[headerLen : headerLen+int(n)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[headerLen+int(n):]) {
		return nil, errors.New("snapshot checksum mismatch: payload corrupted")
	}
	var p snapshotPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("snapshot payload: %w", err)
	}
	return p.Entries, nil
}

// encodeCurrentSnapshot renders the live sim cache in the snapshot
// file format, returning the entry count alongside — the single
// renderer behind both the file writer and the test seam.
func (s *Service) encodeCurrentSnapshot() ([]byte, int, error) {
	entries := make([]snapshotEntry, 0)
	for _, e := range s.simCache.Entries() {
		entries = append(entries, snapshotEntry{Key: e.Key, Cell: *e.Val})
	}
	data, err := encodeSnapshot(entries)
	return data, len(entries), err
}

// Snapshot write retry policy: transient filesystem errors (a full
// disk draining, a slow NFS mount) are retried with capped exponential
// backoff before the save is abandoned until the next interval. Every
// failed attempt counts in valleyd_snapshot_write_failures_total.
const (
	snapshotWriteAttempts = 4
	snapshotBackoffBase   = 50 * time.Millisecond
	snapshotBackoffCap    = 2 * time.Second
)

// saveSimCacheSnapshot writes the current sim cache to the configured
// path atomically (temp file + rename), so readers and a crash
// mid-write never observe a half-written snapshot. Failed writes are
// retried with capped exponential backoff; stop (which may be nil)
// aborts the backoff wait early so a shutting-down daemon never stalls
// in a retry sleep.
func (s *Service) saveSimCacheSnapshot(stop <-chan struct{}) {
	data, count, err := s.encodeCurrentSnapshot()
	if err != nil {
		s.log.Warn("sim-cache snapshot encode failed", "error", err)
		return
	}
	path := s.cfg.SimCacheSnapshot
	backoff := snapshotBackoffBase
	for attempt := 1; ; attempt++ {
		err := s.writeSnapshotFile(path, data)
		if err == nil {
			s.metrics.snapshotSaves.Add(1)
			s.metrics.snapshotEntries.Store(int64(count))
			s.log.Debug("sim-cache snapshot saved", "path", path, "entries", count)
			return
		}
		s.metrics.snapshotWriteFailures.Add(1)
		s.log.Warn("sim-cache snapshot write failed", "path", path, "attempt", attempt, "error", err)
		if attempt >= snapshotWriteAttempts {
			s.log.Warn("sim-cache snapshot abandoned until next interval", "path", path, "attempts", attempt)
			return
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > snapshotBackoffCap {
			backoff = snapshotBackoffCap
		}
	}
}

// writeSnapshotFile lands one framed snapshot atomically: temp file in
// the destination directory, then rename. The fault seams model a
// failing filesystem (SnapshotWrite) and a torn write that the rename
// still publishes (SnapshotTorn) — the latter "succeeds" here and is
// caught by the load path's checksum, never by readers.
func (s *Service) writeSnapshotFile(path string, data []byte) error {
	if err := fault.Err(fault.SnapshotWrite); err != nil {
		return err
	}
	out := fault.Torn(fault.SnapshotTorn, data)
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(out)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadSimCacheSnapshot rehydrates the sim cache from the configured
// path. Invalid snapshots (missing, truncated, corrupt, wrong version)
// leave the cache empty — a cold start, never a failed start.
func (s *Service) loadSimCacheSnapshot() {
	path := s.cfg.SimCacheSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.log.Warn("sim-cache snapshot unreadable, starting cold", "path", path, "error", err)
		}
		return
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		s.log.Warn("sim-cache snapshot invalid, starting cold", "path", path, "error", err)
		return
	}
	for i := range entries {
		cell := entries[i].Cell
		s.simCache.Add(entries[i].Key, &cell)
	}
	s.metrics.snapshotLoaded.Store(int64(len(entries)))
	s.log.Info("sim-cache snapshot loaded", "path", path, "entries", len(entries))
}

// snapshotLoop persists the sim cache every SimCacheSnapshotInterval
// until Close.
func (s *Service) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SimCacheSnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			s.saveSimCacheSnapshot(s.snapStop)
		}
	}
}

// writeSnapshotTo is a test seam: it renders the live cache in snapshot
// format without touching the filesystem.
func (s *Service) writeSnapshotTo(w io.Writer) error {
	data, _, err := s.encodeCurrentSnapshot()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
