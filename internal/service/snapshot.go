package service

// Legacy sim-cache snapshot support. Before the spill tier, valleyd
// persisted the whole sim cache as one checksummed VSIMCSH1 file; the
// spill directory replaced it (per-entry files, write-behind,
// byte-budget — see internal/cache). What remains here is the read
// side: a configured legacy file is decoded at startup and, when a
// spill dir is configured, migrated into it once — loaded into the
// memory tier, spilled, and the file renamed aside so the next boot
// does not re-migrate. Without a spill dir the file is load-only:
// never rewritten, never renamed. The writer is retired entirely.
//
// File layout (all integers little-endian):
//
//	magic   [8]byte  "VSIMCSH1"  (version is part of the magic)
//	length  uint64   payload byte count
//	payload []byte   JSON {"entries":[{"key":…,"cell":{…}},…]}
//	sum     [32]byte SHA-256 of payload
//
// Entries are ordered least-recently-used first, so loading them in
// order through Add reconstructs both contents and recency. Anything
// that fails validation — truncation, corruption, a wrong version, a
// stray file — loads as a clean empty cache rather than an error,
// because a cache is always allowed to start cold.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// snapshotMagic identifies a legacy sim-cache snapshot file; the
// trailing digit is the format version, so a version bump changes the
// magic and old readers/writers simply don't recognize each other's
// files.
var snapshotMagic = [8]byte{'V', 'S', 'I', 'M', 'C', 'S', 'H', '1'}

// migratedSuffix is appended to a legacy snapshot file once its
// entries have landed in the spill directory, so restarts do not
// re-migrate (and the original bytes survive for manual recovery).
const migratedSuffix = ".migrated"

// snapshotEntry is one persisted cache cell.
type snapshotEntry struct {
	Key  string  `json:"key"`
	Cell simCell `json:"cell"`
}

type snapshotPayload struct {
	Entries []snapshotEntry `json:"entries"`
}

// encodeSnapshot renders entries in the legacy snapshot file format.
// Only tests build new snapshots now (to exercise the migration path).
func encodeSnapshot(entries []snapshotEntry) ([]byte, error) {
	payload, err := json.Marshal(snapshotPayload{Entries: entries})
	if err != nil {
		return nil, err
	}
	return encodeSnapshotRaw(payload)
}

// encodeSnapshotRaw wraps an already-encoded payload in the framing
// (magic, length, checksum). Split out so tests can frame deliberately
// invalid payloads.
func encodeSnapshotRaw(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	buf.Write(lenBuf[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// decodeSnapshot parses and validates a legacy snapshot file. Every
// failure mode returns an error describing what was wrong; callers
// treat any error as "start cold".
func decodeSnapshot(data []byte) ([]snapshotEntry, error) {
	const headerLen = 8 + 8
	if len(data) < headerLen+sha256.Size {
		return nil, errors.New("snapshot truncated: shorter than header + checksum")
	}
	if !bytes.Equal(data[:8], snapshotMagic[:]) {
		return nil, fmt.Errorf("snapshot magic %q is not %q (wrong file or version)", data[:8], snapshotMagic[:])
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	if n != uint64(len(data)-headerLen-sha256.Size) {
		return nil, fmt.Errorf("snapshot length field %d does not match %d payload bytes on disk", n, len(data)-headerLen-sha256.Size)
	}
	payload := data[headerLen : headerLen+int(n)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[headerLen+int(n):]) {
		return nil, errors.New("snapshot checksum mismatch: payload corrupted")
	}
	var p snapshotPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("snapshot payload: %w", err)
	}
	return p.Entries, nil
}

// loadLegacySnapshot rehydrates the sim cache from a legacy VSIMCSH1
// file. Invalid snapshots (missing, truncated, corrupt, wrong version)
// leave the cache empty — a cold start, never a failed start. With
// migrate set (a spill dir is live), the loaded entries are spilled to
// disk and the legacy file renamed aside so this happens exactly once;
// without it the file is left untouched for a future migrating boot.
func (s *Service) loadLegacySnapshot(migrate bool) {
	path := s.cfg.SimCacheSnapshot
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.log.Warn("legacy sim-cache snapshot unreadable, starting cold", "path", path, "error", err)
		}
		return
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		s.log.Warn("legacy sim-cache snapshot invalid, starting cold", "path", path, "error", err)
		return
	}
	// Adds beyond the memory capacity evict — and with a spill tier,
	// eviction spills — so every snapshot entry survives migration even
	// when the cache has shrunk since the snapshot was written.
	for i := range entries {
		cell := entries[i].Cell
		s.simCache.Add(entries[i].Key, &cell)
	}
	if !migrate {
		s.log.Info("legacy sim-cache snapshot loaded (no spill dir: load-only, file kept)",
			"path", path, "entries", len(entries))
		return
	}
	s.simCache.SpillAll()
	if err := os.Rename(path, path+migratedSuffix); err != nil {
		// Next boot redundantly re-migrates identical content — wasteful
		// but harmless, so a rename failure is not worth failing over.
		s.log.Warn("legacy sim-cache snapshot migrated but could not be renamed aside",
			"path", path, "error", err)
	}
	s.metrics.legacyMigrated.Store(int64(len(entries)))
	s.log.Info("legacy sim-cache snapshot migrated into spill dir",
		"path", path, "entries", len(entries), "renamed", path+migratedSuffix)
}
