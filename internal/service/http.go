package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"valleymap/internal/obs"
)

// Handler returns the valleyd HTTP API:
//
//	POST   /v1/profile          entropy profile (JSON request, or text/csv trace body)
//	POST   /v1/advise           mapping recommendation with predicted entropy gains
//	POST   /v1/simulate         enqueue a workload x scheme sweep job (202);
//	                            ?stream=1 streams NDJSON events instead (200);
//	                            ?deadline_ms= / X-Deadline-Ms bound the job's runtime
//	POST   /v1/cells            execute a coordinator's cell batch, streaming
//	                            NDJSON updates (the worker half of cluster mode)
//	GET    /v1/jobs/{id}        poll a sweep job
//	DELETE /v1/jobs/{id}        cancel an in-flight sweep job
//	GET    /v1/jobs/{id}/events stream the job's events as NDJSON (?from=seq resumes)
//	GET    /v1/jobs/{id}/trace  the job's span tree (accept → enqueue → cells → engine)
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus-style plain text
func (s *Service) Handler() http.Handler {
	routes := []struct {
		method, pattern, label string
		h                      http.HandlerFunc
	}{
		{"POST", "/v1/profile", "/v1/profile", s.handleProfile},
		{"POST", "/v1/advise", "/v1/advise", s.handleAdvise},
		{"POST", "/v1/simulate", "/v1/simulate", s.handleSimulate},
		{"POST", "/v1/cells", "/v1/cells", s.handleCells},
		{"GET", "/v1/jobs/{id}", "/v1/jobs", s.handleJob},
		{"DELETE", "/v1/jobs/{id}", "/v1/jobs", s.handleJobCancel},
		{"GET", "/v1/jobs/{id}/events", "/v1/jobs/events", s.handleJobEvents},
		{"GET", "/v1/jobs/{id}/trace", "/v1/jobs/trace", s.handleJobTrace},
		{"GET", "/healthz", "/healthz", s.handleHealthz},
		{"GET", "/metrics", "/metrics", s.handleMetrics},
	}
	mux := http.NewServeMux()
	// Patterns may carry several methods (GET + DELETE on /v1/jobs/{id}),
	// so the method-less twins are registered once per pattern with the
	// full Allow set — registering one per route would panic on the
	// duplicate pattern.
	type patternInfo struct {
		label   string
		methods []string
	}
	patterns := map[string]*patternInfo{}
	order := []string{}
	for _, rt := range routes {
		mux.HandleFunc(rt.method+" "+rt.pattern, s.instrument(rt.label, rt.h))
		pi, ok := patterns[rt.pattern]
		if !ok {
			pi = &patternInfo{label: rt.label}
			patterns[rt.pattern] = pi
			order = append(order, rt.pattern)
		}
		pi.methods = append(pi.methods, rt.method)
	}
	for _, pattern := range order {
		// The method-less twin catches wrong-method requests on a known
		// path (the method-qualified patterns are more specific, so real
		// traffic never lands here) and keeps them instrumented under
		// the same path label instead of falling to the catch-all.
		pi := patterns[pattern]
		allow := strings.Join(pi.methods, ", ")
		mux.HandleFunc(pattern, s.instrument(pi.label, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed,
				apiError{Error: fmt.Sprintf("method %s not allowed (want %s)", r.Method, allow)})
		}))
	}
	// Catch-all: unmatched paths would otherwise bypass the
	// instrumentation entirely — no request log, no latency sample.
	// They all share the single capped "other" label, so the metric
	// tables stay bounded under path-scanning traffic (the raw URL still
	// appears in the debug request log).
	mux.HandleFunc("/", s.instrument("other", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, notFoundf("no such endpoint %q", r.URL.Path))
	}))
	return mux
}

// statusRecorder captures the response code for metrics.
//
// Wrapping a ResponseWriter hides the underlying writer's optional
// interfaces behind the embedded-interface promotion, so the ones the
// handlers rely on are forwarded explicitly: Flush (NDJSON streaming)
// and Hijack (anything taking over the connection). The rest are
// dropped deliberately — io.ReaderFrom (sendfile) would bypass the
// recorded status code on its fast path, and http.Pusher is HTTP/2
// only, which the plain valleyd listener never negotiates. A handler
// needing one of those must grow an explicit forwarder here, not
// unwrap the recorder.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the NDJSON streaming
// handlers can push each event to the client as it is published.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards connection takeover to the wrapped writer, erroring
// (like net/http itself) when the underlying writer does not support
// it rather than panicking on a type assertion.
func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("underlying ResponseWriter (%T) does not support hijacking", r.ResponseWriter)
	}
	return h.Hijack()
}

// instrument wraps a handler with the request-scoped observability
// layer: a fresh trace ID (or the client's X-Trace-Id), a child logger
// carrying trace_id/path (and tenant, from X-Tenant, when present)
// reachable downstream via obs.Logger(ctx), the per-path request
// counter and the request-latency histogram. path is the bounded label
// value, not the raw URL.
func (s *Service) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		traceID := r.Header.Get("X-Trace-Id")
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		log := s.log.With("trace_id", traceID, "path", path)
		if tenant := r.Header.Get("X-Tenant"); tenant != "" {
			log = log.With("tenant", tenant)
		}
		ctx := obs.WithLogger(r.Context(), log)
		ctx = obs.WithTraceID(ctx, traceID)
		ctx = obs.WithAcceptTime(ctx, start)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		d := time.Since(start)
		s.metrics.ObserveRequest(path, rec.code)
		s.metrics.ObserveRequestLatency(path, rec.code, d)
		log.Debug("request",
			"method", r.Method,
			"url", r.URL.Path,
			"status", rec.code,
			"duration_ms", d.Milliseconds(),
			"remote", r.RemoteAddr,
		)
	}
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var br badRequestError
	var nf notFoundError
	var ov overloadedError
	switch {
	case errors.As(err, &br):
		code = http.StatusBadRequest
	case errors.As(err, &nf):
		code = http.StatusNotFound
	case errors.As(err, new(tooBusyError)):
		code = http.StatusTooManyRequests
	case errors.As(err, &ov):
		code = http.StatusServiceUnavailable
	case errors.As(err, new(overloadedBody)):
		code = http.StatusRequestEntityTooLarge
	}
	// Capacity errors that can price the backlog tell clients when to
	// come back instead of inviting an immediate retry storm.
	var rh retryHinter
	if errors.As(err, &rh) {
		if sec := rh.retryAfterSeconds(); sec > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(sec))
		}
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

func decodeJSON(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return overloadedBody{limit}
		}
		return badRequestf("bad request body: %v", err)
	}
	return nil
}

// overloadedBody is surfaced as 413 by writeError.
type overloadedBody struct{ limit int64 }

func (e overloadedBody) Error() string {
	return fmt.Sprintf("request body exceeds %d byte limit", e.limit)
}

// jsonBodyLimit is the cap for plain JSON control requests; endpoints
// that embed traces (profile, advise) get trace headroom on top.
const jsonBodyLimit = 1 << 20

// maxJSONTraceBytes caps JSON-embedded traces. Unlike text/csv bodies,
// a trace_csv string is fully materialized in memory before profiling,
// so it keeps the old 64 MiB bound even when MaxTraceBytes is raised
// for the streaming upload path; a smaller configured cap still wins.
const maxJSONTraceBytes = 64 << 20

func (s *Service) traceBodyLimit() int64 {
	limit := s.cfg.MaxTraceBytes
	if limit > maxJSONTraceBytes {
		limit = maxJSONTraceBytes
	}
	return limit + jsonBodyLimit
}

// profileEnvelope wraps a ProfileResult with its cache outcome.
type profileEnvelope struct {
	*ProfileResult
	CacheHit bool `json:"cache_hit"`
}

// mediaType extracts the request's media type, lowercased and with
// parameters stripped (media types are case-insensitive, RFC 9110 §8.3).
func mediaType(r *http.Request) string {
	ct := strings.ToLower(r.Header.Get("Content-Type"))
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct)
}

// binaryTraceMediaType negotiates VTRC binary trace bodies; CSV stays
// the default for text bodies.
const binaryTraceMediaType = "application/x-valley-trace"

func (s *Service) handleProfile(w http.ResponseWriter, r *http.Request) {
	var (
		res  *ProfileResult
		hit  bool
		done bool
		err  error
	)
	switch mediaType(r) {
	case "text/csv", "text/plain":
		// Streaming upload: the body flows through decoder → coalescer →
		// accumulator in one pass, hashed incrementally, so memory stays
		// O(window × bits) however long the trace is. Analysis options
		// ride in query parameters.
		res, hit, done = s.streamProfileBody(w, r, s.ProfileStream)
	case binaryTraceMediaType:
		// Same streaming path, VTRC binary decoder; the canonical hash
		// makes it land on the cache entries CSV uploads populate.
		res, hit, done = s.streamProfileBody(w, r, s.ProfileStreamBinary)
	default:
		var req ProfileRequest
		if err = decodeJSON(r, &req, s.traceBodyLimit()); err != nil {
			writeError(w, err)
			return
		}
		res, hit, err = s.Profile(req)
		if err != nil {
			writeError(w, err)
			return
		}
	}
	if done {
		return // streamProfileBody already wrote the error response
	}
	writeJSON(w, http.StatusOK, profileEnvelope{ProfileResult: res, CacheHit: hit})
}

// streamProfileBody runs one streaming trace upload — profile selects
// the container decoder — under the shared MaxTraceBytes accounting,
// identical for CSV and binary bodies. done reports that an error
// response was already written.
func (s *Service) streamProfileBody(w http.ResponseWriter, r *http.Request,
	profile func(io.Reader, ProfileRequest) (*ProfileResult, bool, error)) (res *ProfileResult, hit, done bool) {
	var req ProfileRequest
	if err := profileQueryOptions(r, &req); err != nil {
		writeError(w, err)
		return nil, false, true
	}
	// The decoder may trip on the truncated final record before the
	// reader's limit error surfaces, so classify by bytes consumed.
	// The reader allows one byte past the cap: a decode failure with
	// n > cap means the body was oversize and truncated, while a
	// malformed trace of exactly cap bytes still reports 400.
	cr := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes+1)}
	res, hit, err := profile(cr, req)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) || cr.n > s.cfg.MaxTraceBytes {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("trace exceeds %d byte limit", s.cfg.MaxTraceBytes)})
			return nil, false, true
		}
		if !errors.As(err, new(badRequestError)) {
			err = badRequestf("bad trace: %v", err)
		}
		writeError(w, err)
		return nil, false, true
	}
	// The reader's one-byte allowance is diagnostic only; a body
	// that parsed but exceeds the cap is still oversize.
	if cr.n > s.cfg.MaxTraceBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			apiError{Error: fmt.Sprintf("trace exceeds %d byte limit", s.cfg.MaxTraceBytes)})
		return nil, false, true
	}
	return res, hit, false
}

// countingReader tracks bytes delivered, so size-limit hits can be
// told apart from genuinely malformed traces.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// profileQueryOptions parses ?window=&bits=&line_bytes=&scheme=&seed=
// for CSV-body uploads.
func profileQueryOptions(r *http.Request, req *ProfileRequest) error {
	q := r.URL.Query()
	for name, dst := range map[string]*int{"window": &req.Window, "bits": &req.Bits, "line_bytes": &req.LineBytes} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return badRequestf("bad %s %q", name, v)
			}
			*dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return badRequestf("bad seed %q", v)
		}
		req.Seed = n
	}
	req.Scheme = q.Get("scheme")
	return nil
}

func (s *Service) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if err := decodeJSON(r, &req, s.traceBodyLimit()); err != nil {
		writeError(w, err)
		return
	}
	res, err := s.Advise(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	// Simulate sweeps built-in workloads; it never carries a trace
	// body, so trace media types are rejected explicitly instead of
	// being fed to the JSON decoder's confusing syntax error.
	if ct := mediaType(r); ct == binaryTraceMediaType || ct == "text/csv" {
		writeError(w, badRequestf("/v1/simulate takes a JSON body (trace uploads go to /v1/profile); got Content-Type %q", ct))
		return
	}
	stream := r.URL.Query().Get("stream")
	if stream != "" && stream != "0" && stream != "1" {
		writeError(w, badRequestf("bad stream %q (want 0 or 1)", stream))
		return
	}
	var req SimulateRequest
	if err := decodeJSON(r, &req, jsonBodyLimit); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	budget, err := deadlineBudget(r, s.cfg.DefaultDeadline)
	if err != nil {
		writeError(w, err)
		return
	}
	if budget > 0 {
		// The deadline rides the request context into SimulateCtx, which
		// lifts the instant onto the job's own context — the job outlives
		// this handler; only the deadline carries over, so canceling here
		// merely releases the timer.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	job, err := s.SimulateCtx(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	if stream == "1" {
		// Stream the sweep live: NDJSON events from seq 0, so the
		// client sees start, every cell the moment it finishes, and the
		// terminal done/failed record — no polling. The subscription
		// replays from the retained log, so nothing between Simulate
		// and subscribe can be missed.
		if sub, ok := s.jobs.subscribe(job.ID, 0); ok {
			defer sub.Close()
			streamEvents(w, r, sub)
			// A streamed sweep's client is its only consumer: if the
			// stream ended before the terminal event (disconnect, write
			// failure), the sweep is abandoned — cancel it so its cells
			// free their worker slots instead of burning to completion.
			// For terminal jobs the cancel function is already gone, so
			// this is a no-op on clean completion.
			s.CancelJob(job.ID, "client disconnected from streamed sweep")
			return
		}
		// The job aged out before we could attach (only possible under
		// extreme churn); the 202 handle still lets the client poll.
	}
	writeJSON(w, http.StatusAccepted, job)
}

// deadlineBudget resolves a simulate request's execution budget:
// ?deadline_ms wins, then the X-Deadline-Ms header, then the daemon
// default (0 = unbounded).
func deadlineBudget(r *http.Request, def time.Duration) (time.Duration, error) {
	v := r.URL.Query().Get("deadline_ms")
	src := "deadline_ms"
	if v == "" {
		v = r.Header.Get("X-Deadline-Ms")
		src = "X-Deadline-Ms"
	}
	if v == "" {
		return def, nil
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return 0, badRequestf("bad %s %q (want a positive integer millisecond budget)", src, v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// handleJobCancel cancels an in-flight job (DELETE /v1/jobs/{id}). The
// response is the job's snapshot at cancel time; the terminal canceled
// event lands once running cells observe the dead context, so a
// just-canceled job may still report status running. Canceling a job
// that already reached a terminal state is a no-op 200.
func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, notFoundf("unknown job %q", id))
		return
	}
	s.CancelJob(id, "canceled via DELETE /v1/jobs/"+id)
	job, ok := s.Job(id)
	if !ok {
		writeError(w, notFoundf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Job(id)
	if !ok {
		writeError(w, notFoundf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's events as NDJSON. ?from=seq resumes
// after a disconnect: retained events with Seq >= from replay first,
// then the stream tails live until the terminal event.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, badRequestf("bad from %q (want a non-negative event seq)", v))
			return
		}
		from = n
	}
	sub, ok := s.jobs.subscribe(id, from)
	if !ok {
		writeError(w, notFoundf("unknown job %q", id))
		return
	}
	defer sub.Close()
	streamEvents(w, r, sub)
}

// streamEvents drains a subscription into w as NDJSON, one event per
// line, flushing after each so clients observe cells the moment they
// finish. It returns when the job's terminal event has been written,
// the client disconnects, or a write fails.
func streamEvents(w http.ResponseWriter, r *http.Request, sub *JobSubscription) {
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		ev, eos, err := sub.Next(r.Context())
		if eos || err != nil {
			return
		}
		if err := enc.Encode(ev); err != nil {
			return // client gone; nothing to do
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w) //nolint:errcheck // client gone; nothing to do
}
