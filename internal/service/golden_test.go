package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// secondsRe blanks wall-time fields and traceIDRe blanks the random
// per-job trace identifier — the only nondeterministic bytes in a
// single-worker streaming transcript.
var (
	secondsRe = regexp.MustCompile(`"seconds":[0-9][0-9.eE+-]*`)
	traceIDRe = regexp.MustCompile(`"trace_id":"[0-9a-f]+"`)
)

func normalizeTranscript(b []byte) []byte {
	b = secondsRe.ReplaceAll(b, []byte(`"seconds":0`))
	return traceIDRe.ReplaceAll(b, []byte(`"trace_id":"0"`))
}

// TestGoldenStreamingSweep pins the streaming wire format end to end: a
// fixed-seed 2×2 sweep over httptest with one worker (deterministic
// cell order) must produce, byte for byte, the committed NDJSON
// transcript — event shapes, field names, seq numbering, metric values.
// Run with -update after an intentional format or simulator change.
func TestGoldenStreamingSweep(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/simulate?stream=1", SimulateRequest{
		Workloads: []string{"MT", "SP"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
		Seed:      1,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeTranscript(raw)

	// Before comparing bytes, hold the transcript to the stream
	// contract so a stale golden can't bless a broken stream.
	var evs []JobEvent
	dec := json.NewDecoder(bytes.NewReader(got))
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("transcript is not valid NDJSON: %v", err)
		}
		evs = append(evs, ev)
	}
	checkTranscript(t, evs, 0, 4)

	goldenPath := filepath.Join("testdata", "stream_golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes, %d events)", goldenPath, len(got), len(evs))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w []byte
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if !bytes.Equal(g, w) {
				t.Errorf("transcript line %d differs:\n got: %s\nwant: %s", i+1, g, w)
			}
		}
		t.Fatal("streaming transcript drifted from golden (run with -update if intentional)")
	}
}

// TestGoldenTranscriptIsFresh guards the golden file itself: it must
// decode as a valid event stream for the 2×2 sweep, so nobody can
// hand-edit it into something the contract checker would reject.
func TestGoldenTranscriptIsFresh(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "stream_golden.ndjson"))
	if err != nil {
		t.Skipf("no golden yet: %v", err)
	}
	var evs []JobEvent
	dec := json.NewDecoder(bytes.NewReader(want))
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("golden is not valid NDJSON: %v", err)
		}
		evs = append(evs, ev)
	}
	checkTranscript(t, evs, 0, 4)
	if terminal := evs[len(evs)-1]; terminal.Result == nil || terminal.Result.HMeanSpeedup["PAE"] <= 0 {
		t.Error("golden terminal event lost its aggregate speedups")
	}
}
