package service

// Coordinator-side cluster dispatch: shard a sweep's cells across peer
// valleyd workers by rendezvous hashing over their sim-cache keys, so
// a repeated cell always lands on the worker whose cache (memory or
// spill tier) is already warm. Remote results merge into the job's
// event log through the same deliver path local cells use, preserving
// the dense-seq ordering contract; cells stranded on slow or dead
// peers are stolen — re-ranked onto the next healthy peer, then
// executed locally as the last resort — so one lost worker never loses
// a cell.

import (
	"encoding/json"
	"strconv"
	"sync"
	"time"

	"context"

	"valleymap/internal/cluster"
	"valleymap/internal/gpusim"
	"valleymap/internal/mapping"
	"valleymap/internal/obs"
	"valleymap/internal/workload"
)

// remoteRounds bounds how many remote attempts a cell gets before the
// coordinator executes it locally. Two rounds means: the owner, then
// one steal onto the next-ranked healthy peer.
const remoteRounds = 2

// clusterCellRef tracks one cell through remote dispatch: its grid
// slot, wire form, affinity key and the peers that already failed it.
type clusterCellRef struct {
	wi, si int
	cell   cluster.Cell
	key    string
	tried  map[string]bool
}

// dispatchCluster shards the sweep across the cluster client's healthy
// peers and reports whether it took ownership of the sweep. It returns
// false only when no peer is reachable at entry — the caller then runs
// the whole sweep through dispatchLocal, the single-node path. Once it
// returns true, every cell has been delivered, failed or abandoned to
// cancellation, exactly like dispatchLocal.
func (s *Service) dispatchCluster(ctx context.Context, jobID string, specs []workload.Spec, schemes []mapping.Scheme, cfg gpusim.Config, scale workload.Scale, seed int64, result *SimulateResult, tr *obs.Trace, root obs.SpanRef, apps []sharedApp, deliver func(wi, si int, done CellResult), fail func(error)) bool {
	cl := s.cfg.Cluster
	if len(cl.Healthy()) == 0 {
		// Every peer is in its down cooldown: degrade to plain local
		// execution rather than burning rounds on known-dead peers.
		root.Annotate(obs.Attr{Key: "cluster", Value: "all_peers_down"})
		return false
	}
	root.Annotate(obs.Attr{Key: "cluster", Value: "sharded"})

	pending := make([]*clusterCellRef, 0, len(specs)*len(schemes))
	for wi := range specs {
		for si := range schemes {
			pending = append(pending, &clusterCellRef{
				wi:   wi,
				si:   si,
				cell: cluster.Cell{Workload: specs[wi].Abbr, Scheme: string(schemes[si])},
				key:  simCellKey(specs[wi].Abbr, result.Scale, schemes[si], result.Config, seed),
			})
		}
	}

	for round := 0; round < remoteRounds && len(pending) > 0 && ctx.Err() == nil; round++ {
		healthy := cl.Healthy()
		if len(healthy) == 0 {
			break
		}
		// Group this round's cells by their best untried healthy peer.
		// Rendezvous ranking makes the choice stable across sweeps and
		// coordinators: the same key always prefers the same peer.
		batches := map[string][]*clusterCellRef{}
		var exhausted []*clusterCellRef
		for _, r := range pending {
			var peer string
			for _, p := range cluster.Rank(r.key, healthy) {
				if !r.tried[p] {
					peer = p
					break
				}
			}
			if peer == "" {
				// Every healthy peer already failed this cell.
				exhausted = append(exhausted, r)
				continue
			}
			if len(r.tried) > 0 {
				// Re-dispatch after a failure elsewhere: a steal.
				s.metrics.ClusterSteal()
			}
			batches[peer] = append(batches[peer], r)
		}

		var (
			wg       sync.WaitGroup
			failedMu sync.Mutex
			failed   []*clusterCellRef
		)
		for peer, refs := range batches {
			s.metrics.ClusterDispatched(peer, len(refs))
			wg.Add(1)
			go func(peer string, refs []*clusterCellRef) {
				defer wg.Done()
				left := s.runPeerBatch(ctx, peer, refs, result, seed, tr, root, deliver)
				if len(left) > 0 {
					failedMu.Lock()
					failed = append(failed, left...)
					failedMu.Unlock()
				}
			}(peer, refs)
		}
		wg.Wait()
		pending = append(failed, exhausted...)
	}

	// Last resort: whatever the cluster could not place runs on the
	// local pool through the exact same cell core a single-node sweep
	// uses. Stolen-to-local cells count as both a steal and a local
	// fallback.
	if len(pending) > 0 && ctx.Err() == nil {
		var wg sync.WaitGroup
		for _, r := range pending {
			if ctx.Err() != nil {
				break
			}
			if len(r.tried) > 0 {
				s.metrics.ClusterSteal()
			}
			s.metrics.ClusterLocalCell()
			ce := cellExec{
				sp: specs[r.wi], sc: schemes[r.si], sa: &apps[r.wi],
				scale: scale, scaleName: result.Scale,
				cfg: cfg, cfgName: result.Config,
				seed: seed, tr: tr, span: root,
			}
			wg.Add(1)
			if !s.pool.submit(s.cellTask(ctx, jobID, r.wi, r.si, ce, time.Now(), &wg, deliver, fail)) {
				wg.Done()
				fail(errClosed)
				break
			}
		}
		wg.Wait()
	}
	return true
}

// runPeerBatch executes one peer's share of a round and returns the
// refs the peer did not deliver (to be stolen next round). Delivered
// cells are final: they leave the outstanding set before deliver runs,
// and a ref absent from the returned slice is never re-dispatched, so
// no cell can land in the event log twice.
func (s *Service) runPeerBatch(ctx context.Context, peer string, refs []*clusterCellRef, result *SimulateResult, seed int64, tr *obs.Trace, root obs.SpanRef, deliver func(wi, si int, done CellResult)) []*clusterCellRef {
	span := tr.Start(root.ID(), "peer_batch",
		obs.Attr{Key: "peer", Value: peer},
		obs.Attr{Key: "cells", Value: strconv.Itoa(len(refs))},
	)
	defer span.End()

	// outstanding is confined to this goroutine: ExecuteCells invokes
	// onCell sequentially on the calling goroutine, in stream order.
	outstanding := make(map[cluster.Cell]*clusterCellRef, len(refs))
	b := cluster.Batch{
		Cells:  make([]cluster.Cell, 0, len(refs)),
		Scale:  result.Scale,
		Config: result.Config,
		Seed:   seed,
	}
	for _, r := range refs {
		outstanding[r.cell] = r
		b.Cells = append(b.Cells, r.cell)
	}

	err := s.cfg.Cluster.ExecuteCells(ctx, peer, tr.ID(), b, func(c cluster.Cell, payload json.RawMessage) {
		r, ok := outstanding[c]
		if !ok {
			// Unknown or duplicate coordinates: a confused worker.
			// Ignoring the update is always safe — the cell either
			// already delivered or was never asked for.
			return
		}
		var done CellResult
		if json.Unmarshal(payload, &done) != nil {
			// Undecodable payload: leave the ref outstanding so the
			// cell is stolen and re-executed (cells are deterministic
			// and cache-coalesced, so re-execution is safe; only
			// deliver must happen at most once).
			return
		}
		// The worker's identity fields are authoritative only for the
		// cells we asked it for; pin the coordinates we dispatched.
		done.Workload = c.Workload
		done.Scheme = c.Scheme
		delete(outstanding, c)
		s.metrics.cellSeconds.Observe(done.Seconds)
		if !done.Cached {
			// The peer paid for a real simulation; its measured cost
			// still prices this coordinator's admission gate.
			s.costs.observe(result.Config, result.Scale, done.Seconds)
		}
		deliver(r.wi, r.si, done)
	})
	if err != nil {
		span.Annotate(obs.Attr{Key: "error", Value: err.Error()})
		s.log.Warn("cluster batch failed; outstanding cells will be stolen",
			"peer", peer, "trace_id", tr.ID(),
			"outstanding", len(outstanding), "error", err)
	}
	var left []*clusterCellRef
	for _, r := range outstanding {
		r.tried = mergeTried(r.tried, peer)
		left = append(left, r)
	}
	return left
}

func mergeTried(tried map[string]bool, peer string) map[string]bool {
	if tried == nil {
		tried = map[string]bool{}
	}
	tried[peer] = true
	return tried
}
