package service

// Cancellation and deadline propagation tests: jobs abandoned by their
// clients or overrunning their budgets must reach a terminal state with
// the right terminal event, free their worker slots, and leave the
// event-stream contract (dense ascending seq, cells strictly before the
// single terminal record) intact.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"valleymap/internal/testutil"
)

// slowSweep is a sweep big enough (8 tiny cells) that a 1-worker
// service is still mid-flight when a test cancels it.
var slowSweep = SimulateRequest{
	Workloads: []string{"MT", "LU", "SC", "SP"},
	Schemes:   []string{"BASE", "PAE"},
	Scale:     "tiny",
}

// newServerFor wraps an already-configured service in a test HTTP
// server, with the goroutine-leak check armed around both.
func newServerFor(t *testing.T, svc *Service) string {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts.URL
}

// doMethod issues a bodyless request with the given method and decodes
// nothing; the caller owns the response.
func doMethod(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// checkCanceledTranscript asserts the stream contract for a canceled
// job: dense seq from 0, a start event first, zero or more cells, and
// exactly one terminal event of the given type carrying an error.
func checkCanceledTranscript(t *testing.T, evs []JobEvent, terminal string) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty transcript")
	}
	if evs[0].Type != EventStart {
		t.Errorf("first event %q, want start", evs[0].Type)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d, want dense ascending from 0", i, ev.Seq)
		}
		isLast := i == len(evs)-1
		if terminalEvent(ev.Type) != isLast {
			t.Fatalf("event %d (%s) of %d: terminal events must be exactly the last record", i, ev.Type, len(evs))
		}
		if isLast {
			if ev.Type != terminal {
				t.Fatalf("terminal event %q, want %q (error %q)", ev.Type, terminal, ev.Error)
			}
			if ev.Error == "" {
				t.Error("terminal cancel event carries no error text")
			}
		}
	}
}

// drainJobEvents reads an in-process subscription to end-of-stream.
func drainJobEvents(t *testing.T, s *Service, id string) []JobEvent {
	t.Helper()
	sub, ok := s.JobEvents(id, 0)
	if !ok {
		t.Fatalf("no event subscription for job %s", id)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var evs []JobEvent
	for {
		ev, eos, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("job %s event stream did not terminate: %v", id, err)
		}
		if eos {
			return evs
		}
		evs = append(evs, ev)
	}
}

// TestSweepExpiredDeadlineCanceled pins the deadline path end to end
// in-process: a sweep whose context deadline has already passed is
// still accepted (no cost data yet — admission never sheds blind) but
// terminates as canceled with a deadline_exceeded terminal event.
func TestSweepExpiredDeadlineCanceled(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	s := New(Config{Workers: 1})
	defer s.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	job, err := s.SimulateCtx(ctx, slowSweep)
	if err != nil {
		t.Fatal(err)
	}
	if job.Deadline == nil {
		t.Error("job snapshot does not carry its deadline")
	}

	j := waitJob(t, s, job.ID)
	if j.Status != JobCanceled {
		t.Fatalf("job status = %s, want canceled (error %q)", j.Status, j.Error)
	}
	if !strings.Contains(j.Error, "deadline") {
		t.Errorf("job error %q does not mention the deadline", j.Error)
	}
	checkCanceledTranscript(t, drainJobEvents(t, s, job.ID), EventDeadlineExceeded)
	if got := s.Metrics().JobsCanceled(); got != 1 {
		t.Errorf("JobsCanceled = %d, want 1", got)
	}

	// The canceled sweep must not have poisoned the pool: a fresh
	// unbounded sweep still completes.
	job2, err := s.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitJob(t, s, job2.ID); j2.Status != JobDone {
		t.Errorf("follow-up job ended %s: %s", j2.Status, j2.Error)
	}
}

// TestHTTPDeadlineMsExpiry drives ?deadline_ms through the HTTP layer:
// a 1 ms budget on an 8-cell sweep over one worker expires mid-flight,
// and the job terminates canceled with a deadline_exceeded event.
func TestHTTPDeadlineMsExpiry(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1})
	base := newServerFor(t, svc)

	resp := postJSON(t, base+"/v1/simulate?deadline_ms=1", slowSweep)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Deadline == nil {
		t.Error("202 body does not carry the job deadline")
	}

	j := waitJob(t, svc, job.ID)
	if j.Status != JobCanceled {
		t.Fatalf("job status = %s, want canceled (error %q)", j.Status, j.Error)
	}
	checkCanceledTranscript(t, drainJobEvents(t, svc, job.ID), EventDeadlineExceeded)
}

// TestHTTPBadDeadlineRejected: malformed or non-positive budgets are
// 400s, not silently unbounded sweeps.
func TestHTTPBadDeadlineRejected(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{"?deadline_ms=0", "?deadline_ms=-5", "?deadline_ms=soon"} {
		resp := postJSON(t, ts.URL+"/v1/simulate"+q, slowSweep)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHTTPCancelJob pins DELETE /v1/jobs/{id}: 404 for unknown ids,
// 200 + canceled terminal state for a running sweep, idempotent on
// repeat, and the worker pool stays usable afterwards.
func TestHTTPCancelJob(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1})
	base := newServerFor(t, svc)

	if resp := doMethod(t, "DELETE", base+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp := postJSON(t, base+"/v1/simulate", slowSweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if dresp := doMethod(t, "DELETE", base+"/v1/jobs/"+job.ID); dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job: status %d, want 200", dresp.StatusCode)
	} else {
		dresp.Body.Close()
	}
	j := waitJob(t, svc, job.ID)
	if j.Status != JobCanceled {
		t.Fatalf("job status = %s, want canceled (error %q)", j.Status, j.Error)
	}
	if !strings.Contains(j.Error, "DELETE") {
		t.Errorf("job error %q does not carry the cancel reason", j.Error)
	}
	checkCanceledTranscript(t, drainJobEvents(t, svc, job.ID), EventCanceled)

	// Canceling a terminal job is a no-op 200, not an error.
	if dresp := doMethod(t, "DELETE", base+"/v1/jobs/"+job.ID); dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal job: status %d, want 200", dresp.StatusCode)
	} else {
		dresp.Body.Close()
	}

	// The canceled cells freed their slots: a follow-up sweep finishes.
	job2, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitJob(t, svc, job2.ID); j2.Status != JobDone {
		t.Errorf("follow-up job ended %s: %s", j2.Status, j2.Error)
	}
}

// TestStreamDisconnectAbandonsSweep pins the abandoned-stream path: a
// client that POSTs /v1/simulate?stream=1 and drops the connection is
// the sweep's only consumer, so the handler cancels the job rather than
// burning the remaining cells to completion for nobody.
func TestStreamDisconnectAbandonsSweep(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1})
	base := newServerFor(t, svc)

	resp := postJSON(t, base+"/v1/simulate?stream=1", slowSweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	// Read the start event (it carries the job id), then drop the
	// connection mid-sweep.
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var start JobEvent
	if err := json.Unmarshal(line, &start); err != nil {
		t.Fatalf("first stream record %q: %v", line, err)
	}
	if start.JobID == "" {
		t.Fatal("start event carries no job id")
	}
	resp.Body.Close()

	fin := waitJob(t, svc, start.JobID)
	switch fin.Status {
	case JobCanceled:
		if !strings.Contains(fin.Error, "disconnected") {
			t.Errorf("job error %q does not carry the disconnect reason", fin.Error)
		}
		checkCanceledTranscript(t, drainJobEvents(t, svc, start.JobID), EventCanceled)
	case JobDone:
		// The sweep can legitimately win the race on a fast machine;
		// the contract under test is only that it terminates and frees
		// its slots either way.
		t.Log("sweep completed before the disconnect propagated; cancellation path not exercised")
	default:
		t.Fatalf("abandoned job ended %s: %s", fin.Status, fin.Error)
	}

	job2, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitJob(t, svc, job2.ID); j2.Status != JobDone {
		t.Errorf("follow-up job ended %s: %s", j2.Status, j2.Error)
	}
}
