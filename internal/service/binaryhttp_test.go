package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// sampleTraceBodies renders one workload in both container formats.
func sampleTraceBodies(t *testing.T) (csv, bin []byte) {
	t.Helper()
	spec, _ := workload.ByAbbr("SP")
	app := spec.Build(workload.Tiny)
	var cbuf, bbuf bytes.Buffer
	if err := trace.WriteCSV(&cbuf, app); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(&bbuf, app); err != nil {
		t.Fatal(err)
	}
	return cbuf.Bytes(), bbuf.Bytes()
}

func postTrace(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPProfileFormatCacheParity is the cache-sharing acceptance
// test: a CSV upload and the binary conversion of the same trace hash
// to the same canonical identity, so the second upload — whatever its
// container — hits the cache entry the first one populated, under the
// same cache key.
func TestHTTPProfileFormatCacheParity(t *testing.T) {
	_, ts := newTestServer(t)
	csv, bin := sampleTraceBodies(t)

	resp := postTrace(t, ts.URL+"/v1/profile?window=12", "text/csv", csv)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("csv upload: status = %d: %s", resp.StatusCode, b)
	}
	var first struct {
		ProfileResult
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp, &first)
	if first.CacheHit {
		t.Error("first upload must miss")
	}
	if first.Trace.SHA256 == "" {
		t.Fatal("csv upload reported no content hash")
	}

	resp2 := postTrace(t, ts.URL+"/v1/profile?window=12", binaryTraceMediaType, bin)
	if resp2.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("binary upload: status = %d: %s", resp2.StatusCode, b)
	}
	var second struct {
		ProfileResult
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp2, &second)
	if !second.CacheHit {
		t.Error("binary upload of the same trace must hit the CSV upload's cache entry")
	}
	if second.Trace.SHA256 != first.Trace.SHA256 {
		t.Errorf("content hash differs across containers: %s vs %s", second.Trace.SHA256, first.Trace.SHA256)
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache key differs across containers: %s vs %s", second.CacheKey, first.CacheKey)
	}
}

// TestHTTPProfileBinaryBodyLimit: MaxTraceBytes bounds binary uploads
// exactly like CSV ones — at-limit bodies profile, anything past the
// cap is 413 even when it still decodes cleanly.
func TestHTTPProfileBinaryBodyLimit(t *testing.T) {
	_, bin := sampleTraceBodies(t)
	cases := []struct {
		name  string
		limit int64
		want  int
	}{
		{"at limit", int64(len(bin)), http.StatusOK},
		{"one byte over", int64(len(bin)) - 1, http.StatusRequestEntityTooLarge},
		{"far over", 64, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := New(Config{Workers: 1, MaxTraceBytes: tc.limit})
			ts := httptest.NewServer(svc.Handler())
			t.Cleanup(func() {
				ts.Close()
				svc.Close()
			})
			resp := postTrace(t, ts.URL+"/v1/profile", binaryTraceMediaType, bin)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.want, b)
			}
		})
	}
}

// TestHTTPProfileBinaryBadInputs: damaged binary bodies are 400s, never
// 500s and never partial profiles.
func TestHTTPProfileBinaryBadInputs(t *testing.T) {
	_, ts := newTestServer(t)
	_, bin := sampleTraceBodies(t)
	truncated := bin[:len(bin)-5]
	corrupted := append([]byte(nil), bin...)
	corrupted[len(corrupted)-1] ^= 0xff // checksum no longer matches

	for name, body := range map[string][]byte{
		"garbage":           []byte("not a vtrc file"),
		"empty":             {},
		"truncated":         truncated,
		"bad checksum":      corrupted,
		"csv as binary":     []byte("K,k,1,0\nR,0,0,R,40\n"),
		"version from 2035": {'V', 'T', 'R', 'C', 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	} {
		t.Run(name, func(t *testing.T) {
			resp := postTrace(t, ts.URL+"/v1/profile", binaryTraceMediaType, body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, b)
			}
		})
	}
}

// TestHTTPSimulateRejectsTraceBodies: trace uploads belong to
// /v1/profile; sending one to /v1/simulate is a caller error and must
// say so instead of failing on JSON decode noise.
func TestHTTPSimulateRejectsTraceBodies(t *testing.T) {
	_, ts := newTestServer(t)
	for _, ct := range []string{"text/csv", binaryTraceMediaType} {
		resp := postTrace(t, ts.URL+"/v1/simulate", ct, []byte("K,k,1,0\n"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", ct, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPProfileTraceFile covers -trace-dir ingestion: a request
// naming a local VTRC file profiles it via mmap and lands on the same
// content-addressed cache entry body uploads use.
func TestHTTPProfileTraceFile(t *testing.T) {
	csv, bin := sampleTraceBodies(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sp.vtrc"), bin, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sp.csv"), csv, 0o644); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 2, TraceDir: dir})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	// Populate the cache with a CSV body upload...
	resp := postTrace(t, ts.URL+"/v1/profile", "text/csv", csv)
	var first struct {
		ProfileResult
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp, &first)

	// ...then profile the packed file: must hit that same entry.
	for _, name := range []string{"sp.vtrc", "sp.csv"} {
		resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{TraceFile: name})
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: status = %d: %s", name, resp.StatusCode, b)
		}
		var env struct {
			ProfileResult
			CacheHit bool `json:"cache_hit"`
		}
		decodeBody(t, resp, &env)
		if !env.CacheHit {
			t.Errorf("%s: trace_file profile must hit the upload's cache entry", name)
		}
		if env.CacheKey != first.CacheKey {
			t.Errorf("%s: cache key %s != upload key %s", name, env.CacheKey, first.CacheKey)
		}
	}

	// Failure modes.
	cases := []struct {
		name string
		req  ProfileRequest
		want int
	}{
		{"missing file", ProfileRequest{TraceFile: "nope.vtrc"}, http.StatusNotFound},
		{"path traversal", ProfileRequest{TraceFile: "../sp.vtrc"}, http.StatusBadRequest},
		{"absolute path", ProfileRequest{TraceFile: "/etc/passwd"}, http.StatusBadRequest},
		{"combined with workload", ProfileRequest{TraceFile: "sp.vtrc", Workload: "MT"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/profile", tc.req)
		if resp.StatusCode != tc.want {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status = %d, want %d: %s", tc.name, resp.StatusCode, tc.want, b)
		}
		resp.Body.Close()
	}

	// Without -trace-dir the feature is off entirely.
	_, plain := newTestServer(t)
	resp = postJSON(t, plain.URL+"/v1/profile", ProfileRequest{TraceFile: "sp.vtrc"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unconfigured trace_file: status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPProfileBinaryStreamStageMetrics: binary uploads account their
// pipeline stages under format="binary", CSV under format="csv".
func TestHTTPProfileBinaryStreamStageMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	csv, bin := sampleTraceBodies(t)
	postTrace(t, ts.URL+"/v1/profile", "text/csv", csv).Body.Close()
	postTrace(t, ts.URL+"/v1/profile", binaryTraceMediaType, bin).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`valleyd_stream_stage_seconds_count{stage="decode",format="csv"}`,
		`valleyd_stream_stage_seconds_count{stage="decode",format="binary"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
