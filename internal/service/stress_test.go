package service

import (
	"net/http"
	"sync"
	"testing"
)

// TestStressConcurrentProfiles fires 100 concurrent /v1/profile requests
// for the same workload and asserts the content-addressed cache absorbs
// them: one computation, everything else a hit (>90% hit rate), which is
// the acceptance bar for the valleyd smoke check. Run with -race.
func TestStressConcurrentProfiles(t *testing.T) {
	svc, ts := newTestServer(t)

	const n = 100
	var wg sync.WaitGroup
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "MT", Scale: "tiny"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				resp.Body.Close()
				return
			}
			var env struct {
				CacheHit bool `json:"cache_hit"`
			}
			decodeBody(t, resp, &env)
			hits[i] = env.CacheHit
		}()
	}
	wg.Wait()

	nHits := 0
	for _, h := range hits {
		if h {
			nHits++
		}
	}
	if rate := float64(nHits) / n; rate <= 0.90 {
		t.Errorf("cache hit rate = %.2f (%d/%d), want > 0.90", rate, nHits, n)
	}

	// The server-side metrics must agree.
	h, m := svc.Metrics().CacheCounts()
	if h+m != n {
		t.Errorf("metrics saw %d lookups, want %d", h+m, n)
	}
	if rate := svc.Metrics().CacheHitRate(); rate <= 0.90 {
		t.Errorf("reported hit rate = %.2f, want > 0.90", rate)
	}
}

// TestStressMixedEndpoints hammers profile + advise + simulate + metrics
// concurrently so -race can see cross-endpoint interactions.
func TestStressMixedEndpoints(t *testing.T) {
	svc, ts := newTestServer(t)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "SP", Scale: "tiny"})
			resp.Body.Close()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts.URL+"/v1/advise", AdviseRequest{
			ProfileRequest: ProfileRequest{Workload: "SP", Scale: "tiny"},
			Seeds:          []int64{1},
		})
		resp.Body.Close()
	}()
	var jobID string
	var jobMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
		if err != nil {
			t.Error(err)
			return
		}
		jobMu.Lock()
		jobID = job.ID
		jobMu.Unlock()
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	jobMu.Lock()
	id := jobID
	jobMu.Unlock()
	if id != "" {
		if j := waitJob(t, svc, id); j.Status != JobDone {
			t.Errorf("background job ended %s: %s", j.Status, j.Error)
		}
	}
}
