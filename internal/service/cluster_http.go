package service

// Worker-side cluster endpoint: POST /v1/cells executes a batch of
// sweep cells on this node's pool and streams each finished cell back
// as an NDJSON update. The endpoint is the cell-execution core
// (executeCell) behind a wire protocol — no job, no event log, no
// aggregation; those belong to the coordinator that owns the sweep.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"valleymap/internal/cluster"
	"valleymap/internal/obs"
)

// maxBatchCells bounds one /v1/cells request, mirroring the sweep
// grid's own bound (every workload × every scheme is far below this).
const maxBatchCells = 4096

// cellOutcome is one worker-local cell completion, fed from pool tasks
// to the streaming response loop over a buffered channel.
type cellOutcome struct {
	i    int
	done CellResult
	err  error
}

// handleCells implements the coordinator→worker batch protocol
// documented in internal/cluster: validate and resolve every cell
// before the stream starts (so vocabulary errors are still plain HTTP
// 400/404s), then execute the batch on the worker pool and stream one
// {"type":"cell"} update per completion, in completion order, with a
// terminal {"type":"done"} or {"type":"failed"}. The coordinator's
// X-Deadline-Ms bounds the whole batch.
func (s *Service) handleCells(w http.ResponseWriter, r *http.Request) {
	var b cluster.Batch
	if err := decodeJSON(r, &b, jsonBodyLimit); err != nil {
		writeError(w, err)
		return
	}
	if len(b.Cells) == 0 {
		writeError(w, badRequestf("empty cell batch"))
		return
	}
	if len(b.Cells) > maxBatchCells {
		writeError(w, badRequestf("batch has %d cells (limit %d)", len(b.Cells), maxBatchCells))
		return
	}
	// One shared trace build per workload, exactly like a local sweep's
	// apps slice — a batch naming the same workload under many schemes
	// materializes its trace once.
	apps := map[string]*sharedApp{}
	execs := make([]cellExec, len(b.Cells))
	for i, c := range b.Cells {
		sa, ok := apps[c.Workload]
		if !ok {
			sa = &sharedApp{}
			apps[c.Workload] = sa
		}
		ce, err := s.resolveCell(CellSpec{
			Workload: c.Workload,
			Scheme:   c.Scheme,
			Scale:    b.Scale,
			Config:   b.Config,
			Seed:     b.Seed,
		}, sa)
		if err != nil {
			writeError(w, err)
			return
		}
		execs[i] = ce
	}

	ctx := r.Context()
	budget, err := deadlineBudget(r, 0)
	if err != nil {
		writeError(w, err)
		return
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	log := obs.Logger(ctx)

	// Buffered to the batch size: a task's send never blocks, so an
	// early-exiting response loop (failure, dead coordinator) cannot
	// strand pool workers.
	out := make(chan cellOutcome, len(b.Cells))
	submitted := 0
	for i := range execs {
		i := i
		task := func() {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.WorkerPanic()
					log.Error("cell batch panic recovered",
						"workload", execs[i].sp.Abbr,
						"scheme", string(execs[i].sc),
						"panic", fmt.Sprint(p),
						"stack", string(debug.Stack()),
					)
					out <- cellOutcome{i: i, err: fmt.Errorf("simulating %s under %s: %v", execs[i].sp.Abbr, execs[i].sc, p)}
				}
			}()
			if ctx.Err() != nil {
				out <- cellOutcome{i: i, err: ctx.Err()}
				return
			}
			done, err := s.executeCell(ctx, "", execs[i])
			out <- cellOutcome{i: i, done: done, err: err}
		}
		if !s.pool.submit(task) {
			// Shutting down: cells not yet submitted fail the batch; the
			// coordinator re-homes them.
			out <- cellOutcome{i: i, err: errClosed}
		}
		submitted++
	}

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeUpdate := func(u cluster.Update) bool {
		if err := enc.Encode(u); err != nil {
			return false // coordinator gone; tasks drain via ctx
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	start := time.Now()
	for n := 0; n < submitted; n++ {
		var o cellOutcome
		select {
		case o = <-out:
		case <-ctx.Done():
			writeUpdate(cluster.Update{Type: cluster.UpdateFailed, Error: ctx.Err().Error()})
			return
		}
		if o.err != nil {
			// Any cell failure fails the batch: the coordinator only
			// retries cells it never saw delivered, so ending the
			// stream here is safe and keeps the protocol simple.
			writeUpdate(cluster.Update{Type: cluster.UpdateFailed, Error: o.err.Error()})
			return
		}
		payload, err := json.Marshal(o.done)
		if err != nil {
			writeUpdate(cluster.Update{Type: cluster.UpdateFailed, Error: fmt.Sprintf("encoding cell result: %v", err)})
			return
		}
		ok := writeUpdate(cluster.Update{
			Type:    cluster.UpdateCell,
			Cell:    &b.Cells[o.i],
			Payload: payload,
		})
		if !ok {
			return
		}
	}
	writeUpdate(cluster.Update{Type: cluster.UpdateDone})
	log.Debug("cell batch served",
		"cells", len(b.Cells),
		"duration_ms", time.Since(start).Milliseconds(),
	)
}
