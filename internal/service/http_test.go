package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"valleymap/internal/testutil"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// waitJob polls a job until it leaves the queued/running states.
func waitJob(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %q vanished", id)
		}
		if terminalStatus(j.Status) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %q did not finish in time", id)
	return Job{}
}

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	// Leak check first: t.Cleanup runs LIFO, so the goroutine baseline
	// is re-checked after the server and service below are closed.
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 4})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestHTTPProfileRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "MT", Scale: "tiny"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var env struct {
		ProfileResult
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp, &env)
	if env.CacheHit {
		t.Error("first request must not be a cache hit")
	}
	if env.Trace.Abbr != "MT" || len(env.PerBit) != 30 || !env.Valley {
		t.Errorf("unexpected profile: abbr=%q bits=%d valley=%v", env.Trace.Abbr, len(env.PerBit), env.Valley)
	}

	resp2 := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "MT", Scale: "tiny"})
	var env2 struct {
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp2, &env2)
	if !env2.CacheHit {
		t.Error("repeat request must hit the cache")
	}
}

func TestHTTPProfileCSVUpload(t *testing.T) {
	_, ts := newTestServer(t)

	// Round-trip a built-in workload through the CSV format.
	spec, _ := workload.ByAbbr("SP")
	app := spec.Build(workload.Tiny)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, app); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()

	resp, err := http.Post(ts.URL+"/v1/profile?window=12", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	var env struct {
		ProfileResult
		CacheHit bool `json:"cache_hit"`
	}
	decodeBody(t, resp, &env)
	if env.Trace.SHA256 == "" {
		t.Error("uploaded trace must report its content hash")
	}
	if env.CacheHit {
		t.Error("first upload must miss")
	}

	// Re-uploading identical bytes hits the content-addressed cache.
	resp2, err := http.Post(ts.URL+"/v1/profile?window=12", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	var env2 struct {
		CacheHit bool   `json:"cache_hit"`
		CacheKey string `json:"cache_key"`
	}
	decodeBody(t, resp2, &env2)
	if !env2.CacheHit {
		t.Error("identical upload must hit the content-addressed cache")
	}
}

func TestHTTPProfileBadInputs(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"empty body", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(""))
			return resp
		}, http.StatusBadRequest},
		{"unknown field", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/v1/profile", "application/json", strings.NewReader(`{"wrkload":"MT"}`))
			return resp
		}, http.StatusBadRequest},
		{"unknown workload", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "NOPE"})
		}, http.StatusNotFound},
		{"bad scheme", func() *http.Response {
			return postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "MT", Scheme: "HUH"})
		}, http.StatusBadRequest},
		{"garbage csv", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/v1/profile", "text/csv", strings.NewReader("not,a,trace"))
			return resp
		}, http.StatusBadRequest},
		{"bad query", func() *http.Response {
			resp, _ := http.Post(ts.URL+"/v1/profile?window=banana", "text/csv", strings.NewReader("K,k,1,0\n"))
			return resp
		}, http.StatusBadRequest},
		{"wrong method", func() *http.Response {
			resp, _ := http.Get(ts.URL + "/v1/profile")
			return resp
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp == nil {
			t.Fatalf("%s: no response", tc.name)
		}
		if resp.StatusCode != tc.want {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, b)
		}
		resp.Body.Close()
	}
}

func TestHTTPProfileCSVTooLarge(t *testing.T) {
	svc := New(Config{Workers: 1, MaxTraceBytes: 64})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	body := "K,k,1,0\n" + strings.Repeat("R,0,0,R,100\n", 50)
	resp, err := http.Post(ts.URL+"/v1/profile", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 413 (truncated traces must never be profiled): %s", resp.StatusCode, b)
	}
}

func TestHTTPProfileCSVExactlyOneByteOver(t *testing.T) {
	body := "K,k,1,0\nR,0,0,R,100\n"
	svc := New(Config{Workers: 1, MaxTraceBytes: int64(len(body)) - 1})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	// The body parses cleanly but is one byte over the cap: the
	// diagnostic one-byte reader allowance must not leak into accepting
	// oversize uploads.
	resp, err := http.Post(ts.URL+"/v1/profile", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 for a body one byte over the cap", resp.StatusCode)
	}
}

func TestHTTPOversizeJSONBody(t *testing.T) {
	_, ts := newTestServer(t)
	big := `{"workloads":["` + strings.Repeat("x", 2<<20) + `"]}`
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 for a 2 MiB control request", resp.StatusCode)
	}
}

func TestHTTPAdviseRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/advise", AdviseRequest{
		ProfileRequest: ProfileRequest{Workload: "MT", Scale: "tiny"},
		Schemes:        []string{"PAE", "FAE"},
		Seeds:          []int64{1},
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	var res AdviseResult
	decodeBody(t, resp, &res)
	if len(res.Candidates) != 2 {
		t.Fatalf("got %d candidates, want 2", len(res.Candidates))
	}
	if res.Recommended.Gain <= 0 {
		t.Errorf("recommended gain = %g, want > 0", res.Recommended.Gain)
	}
	if res.Recommended.BIM.N() != 30 {
		t.Errorf("BIM did not survive the JSON round trip: n=%d", res.Recommended.BIM.N())
	}
}

func TestHTTPSimulateJobRoundTrip(t *testing.T) {
	svc, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workloads: []string{"SP"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	})
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 202: %s", resp.StatusCode, b)
	}
	loc := resp.Header.Get("Location")
	var queued Job
	decodeBody(t, resp, &queued)
	if queued.ID == "" || loc != "/v1/jobs/"+queued.ID {
		t.Fatalf("bad job handle: id=%q location=%q", queued.ID, loc)
	}

	waitJob(t, svc, queued.ID)
	jr, err := http.Get(ts.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("job poll status = %d", jr.StatusCode)
	}
	var done Job
	decodeBody(t, jr, &done)
	if done.Status != JobDone {
		t.Fatalf("job status = %s (error %q)", done.Status, done.Error)
	}
	if done.Result == nil || len(done.Result.Cells) != 2 {
		t.Fatalf("job result missing cells: %+v", done.Result)
	}

	// Unknown job IDs are 404.
	nf, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", nf.StatusCode)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", hr.StatusCode)
	}
	var health map[string]any
	decodeBody(t, hr, &health)
	if health["status"] != "ok" {
		t.Errorf("healthz status field = %v", health["status"])
	}

	// Generate one hit and one miss, then check the exposition.
	postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "SP", Scale: "tiny"}).Body.Close()
	postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "SP", Scale: "tiny"}).Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, _ := io.ReadAll(mr.Body)
	text := string(body)
	for _, want := range []string{
		"valleyd_requests_total{path=\"/v1/profile\",code=\"200\"} 2",
		"valleyd_profile_cache_hits_total 1",
		"valleyd_profile_cache_misses_total 1",
		"valleyd_profile_cache_hit_rate 0.5",
		"valleyd_workers ",
		"valleyd_queue_depth ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}

func TestHTTPMetricsWorkerGauges(t *testing.T) {
	svc, _ := newTestServer(t)
	var buf bytes.Buffer
	if _, err := svc.Metrics().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("valleyd_workers %d", 4)) {
		t.Errorf("metrics must report the configured pool size:\n%s", buf.String())
	}
}
