package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"valleymap/internal/obs"
)

// Metrics aggregates service-level counters and gauges and renders them
// in the plain-text Prometheus exposition format on /metrics. Counters
// are lock-free; the per-path request table takes a small mutex because
// the label set is bounded but still keyed by status code. Latency
// distributions live in obs histograms (lock-free, zero-alloc Observe)
// registered on reg and rendered after the hand-written families.
type Metrics struct {
	mu       sync.Mutex
	requests map[requestKey]*int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	simCacheHits   atomic.Int64
	simCacheMisses atomic.Int64

	jobsEnqueued atomic.Int64
	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	// jobsCanceled counts jobs terminated by explicit cancellation,
	// client disconnect or an expired deadline; jobsShed counts sweeps
	// rejected up front by the cost-aware admission gate; degradedSweeps
	// counts fully-cached sweeps served inline past a saturated pool.
	jobsCanceled   atomic.Int64
	jobsShed       atomic.Int64
	degradedSweeps atomic.Int64

	cellsSimulated atomic.Int64
	// sweepMicros accumulates total sweep wall time in microseconds
	// (atomically; rendered as float seconds).
	sweepMicros atomic.Int64

	// streamEventsDropped counts slow-consumer wakeup drops on job
	// event streams (the bounded-buffer lag accounting; no event is
	// lost, the consumer just fell behind the live tail).
	streamEventsDropped atomic.Int64

	// workerPanics counts panics recovered in sweep cells and the
	// worker-pool backstop — work that would have killed a worker
	// goroutine before the recovery wrappers existed.
	workerPanics atomic.Int64

	// Cluster dispatch accounting (coordinator side). clusterDispatched
	// counts cells sent to each peer (keyed by the configured peer URL,
	// a closed set, so the label space is bounded); clusterSteals counts
	// cells re-dispatched after a failed attempt on another peer;
	// clusterLocalCells counts cells a coordinator fell back to
	// executing locally. peerUp, when wired, samples the cluster
	// client's health table at render time.
	clusterMu         sync.Mutex
	clusterDispatched map[string]*int64
	clusterSteals     atomic.Int64
	clusterLocalCells atomic.Int64
	peerUp            func() map[string]bool

	// Tiered sim-cache accounting: hits split by serving tier, and the
	// spill tier's write-behind/janitor activity. spillErrors counts
	// damage events (failed writes, corrupt or unreadable entries) that
	// degraded to a miss; legacyMigrated counts VSIMCSH1 snapshot
	// entries migrated into the spill dir at startup.
	tierHitsMem     atomic.Int64
	tierHitsDisk    atomic.Int64
	spillWrites     atomic.Int64
	spillWriteDrops atomic.Int64
	spillEvictions  atomic.Int64
	spillErrors     atomic.Int64
	legacyMigrated  atomic.Int64

	// Gauges are sampled at render time from the owning structures.
	queueDepth   func() int
	workersBusy  func() int
	workers      int
	cacheLen     func() int
	simCacheLen  func() int
	spillEntries func() int
	spillBytes   func() int64

	// Latency histograms. stageCSV/Binary/Native are the pre-resolved
	// per-format children of stageDur, held so the per-batch streaming
	// hot path never touches the vec's mutex.
	reg         *obs.Registry
	httpDur     *obs.HistogramVec
	queueWait   *obs.Histogram
	cellSeconds *obs.Histogram
	stageDur    *obs.HistogramVec

	stageCSV    stageSet
	stageBinary stageSet
	stageNative stageSet
}

// stageSet holds one ingest format's pre-resolved streaming-stage
// histograms (format label values: csv, binary — VTRC decode or mmap —
// and native for in-process trace generators/materialized apps).
type stageSet struct {
	decode, coalesce, accumulate *obs.Histogram
}

// NewMetrics returns an empty metrics registry. The service wires the
// gauge sampling funcs when it constructs its pool and cache.
func NewMetrics() *Metrics {
	m := &Metrics{requests: map[requestKey]*int64{}}
	m.httpDur = obs.NewHistogramVec("valleyd_http_request_duration_seconds",
		"HTTP request wall time by path and status code.", []string{"path", "code"}, nil)
	m.queueWait = obs.NewHistogram("valleyd_queue_wait_seconds",
		"Time sweep cells spend queued before a pool worker picks them up.", nil)
	m.cellSeconds = obs.NewHistogram("valleyd_cell_simulation_seconds",
		"Per-cell wall time inside a sweep (cached cells land in the lowest buckets).", nil)
	m.stageDur = obs.NewHistogramVec("valleyd_stream_stage_seconds",
		"Exclusive per-batch wall time of each streaming-pipeline stage, by trace container format.", []string{"stage", "format"}, nil)
	stages := func(format string) stageSet {
		return stageSet{
			decode:     m.stageDur.With("decode", format),
			coalesce:   m.stageDur.With("coalesce", format),
			accumulate: m.stageDur.With("accumulate", format),
		}
	}
	m.stageCSV = stages("csv")
	m.stageBinary = stages("binary")
	m.stageNative = stages("native")
	m.reg = obs.NewRegistry()
	m.reg.Register(m.httpDur)
	m.reg.Register(m.queueWait)
	m.reg.Register(m.cellSeconds)
	m.reg.Register(m.stageDur)
	m.reg.Register(obs.RuntimeCollector{Prefix: "valleyd"})
	return m
}

type requestKey struct {
	path string
	code int
}

// knownPaths is the closed set of per-path label values: the routes
// Handler registers. Anything else — embedders calling ObserveRequest
// with raw URLs, future unrouted paths — collapses to "other", so the
// request table and the latency vec stay bounded however hostile the
// traffic.
var knownPaths = map[string]struct{}{
	"/v1/profile":     {},
	"/v1/advise":      {},
	"/v1/simulate":    {},
	"/v1/cells":       {},
	"/v1/jobs":        {},
	"/v1/jobs/events": {},
	"/v1/jobs/trace":  {},
	"/healthz":        {},
	"/metrics":        {},
}

func capPath(path string) string {
	if _, ok := knownPaths[path]; ok {
		return path
	}
	return "other"
}

// ObserveRequest counts one completed HTTP request.
func (m *Metrics) ObserveRequest(path string, code int) {
	path = capPath(path)
	m.mu.Lock()
	c, ok := m.requests[requestKey{path, code}]
	if !ok {
		c = new(int64)
		m.requests[requestKey{path, code}] = c
	}
	m.mu.Unlock()
	atomic.AddInt64(c, 1)
}

// ObserveRequestLatency records one request's wall time in the
// per-path/status latency histogram, with the same path cap as
// ObserveRequest.
func (m *Metrics) ObserveRequestLatency(path string, code int, d time.Duration) {
	m.httpDur.With(capPath(path), strconv.Itoa(code)).ObserveDuration(d)
}

// WorkerPanic counts one recovered worker panic (a sweep cell or pool
// task that panicked instead of returning).
func (m *Metrics) WorkerPanic() { m.workerPanics.Add(1) }

// ClusterDispatched counts n cells dispatched to peer.
func (m *Metrics) ClusterDispatched(peer string, n int) {
	m.clusterMu.Lock()
	if m.clusterDispatched == nil {
		m.clusterDispatched = map[string]*int64{}
	}
	c, ok := m.clusterDispatched[peer]
	if !ok {
		c = new(int64)
		m.clusterDispatched[peer] = c
	}
	m.clusterMu.Unlock()
	atomic.AddInt64(c, int64(n))
}

// ClusterSteal counts one cell re-dispatched after a failed attempt on
// another peer (stolen from a slow or dead worker).
func (m *Metrics) ClusterSteal() { m.clusterSteals.Add(1) }

// ClusterLocalCell counts one cell a coordinator executed locally
// because no healthy peer could take it.
func (m *Metrics) ClusterLocalCell() { m.clusterLocalCells.Add(1) }

// ClusterDispatches returns a copy of the per-peer dispatched-cell
// counts.
func (m *Metrics) ClusterDispatches() map[string]int64 {
	m.clusterMu.Lock()
	defer m.clusterMu.Unlock()
	out := make(map[string]int64, len(m.clusterDispatched))
	for p, c := range m.clusterDispatched {
		out[p] = atomic.LoadInt64(c)
	}
	return out
}

// ClusterSteals returns total cells stolen from slow or dead peers.
func (m *Metrics) ClusterSteals() int64 { return m.clusterSteals.Load() }

// ClusterLocalCells returns total cells a coordinator ran locally as a
// cluster fallback.
func (m *Metrics) ClusterLocalCells() int64 { return m.clusterLocalCells.Load() }

// WorkerPanics returns the total recovered worker panics.
func (m *Metrics) WorkerPanics() int64 { return m.workerPanics.Load() }

// CacheHit / CacheMiss count profile-cache outcomes.
func (m *Metrics) CacheHit()  { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// SimCacheHit / SimCacheMiss count simulation-result-cache outcomes.
func (m *Metrics) SimCacheHit()  { m.simCacheHits.Add(1) }
func (m *Metrics) SimCacheMiss() { m.simCacheMisses.Add(1) }

// SimCacheCounts returns the raw (hits, misses) pair for the
// simulation-result cache.
func (m *Metrics) SimCacheCounts() (hits, misses int64) {
	return m.simCacheHits.Load(), m.simCacheMisses.Load()
}

// StreamEventDropped counts one slow-consumer wakeup drop on a job
// event stream.
func (m *Metrics) StreamEventDropped() { m.streamEventsDropped.Add(1) }

// StreamEventsDropped returns total slow-consumer wakeup drops.
func (m *Metrics) StreamEventsDropped() int64 { return m.streamEventsDropped.Load() }

// TierHits returns sim-cache hits split by serving tier.
func (m *Metrics) TierHits() (mem, disk int64) {
	return m.tierHitsMem.Load(), m.tierHitsDisk.Load()
}

// SpillCounts returns the spill tier's (writes landed, writes dropped
// on queue overflow, janitor evictions) counters.
func (m *Metrics) SpillCounts() (writes, drops, evictions int64) {
	return m.spillWrites.Load(), m.spillWriteDrops.Load(), m.spillEvictions.Load()
}

// SpillErrors returns spill damage events degraded to cache misses.
func (m *Metrics) SpillErrors() int64 { return m.spillErrors.Load() }

// LegacyMigrated returns VSIMCSH1 snapshot entries migrated into the
// spill directory at startup.
func (m *Metrics) LegacyMigrated() int64 { return m.legacyMigrated.Load() }

// JobsCanceled returns jobs terminated by cancellation or deadline.
func (m *Metrics) JobsCanceled() int64 { return m.jobsCanceled.Load() }

// JobsShed returns sweeps rejected by the admission gate.
func (m *Metrics) JobsShed() int64 { return m.jobsShed.Load() }

// DegradedSweeps returns fully-cached sweeps served inline past a
// saturated pool.
func (m *Metrics) DegradedSweeps() int64 { return m.degradedSweeps.Load() }

// AddSweepSeconds accumulates one sweep's wall time.
func (m *Metrics) AddSweepSeconds(d time.Duration) {
	m.sweepMicros.Add(d.Microseconds())
}

// SweepSeconds returns total wall time spent in sweeps.
func (m *Metrics) SweepSeconds() float64 {
	return float64(m.sweepMicros.Load()) / 1e6
}

// CacheHitRate returns hits/(hits+misses), 0 when no lookups happened.
func (m *Metrics) CacheHitRate() float64 {
	h, s := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+s == 0 {
		return 0
	}
	return float64(h) / float64(h+s)
}

// CacheCounts returns the raw (hits, misses) pair.
func (m *Metrics) CacheCounts() (hits, misses int64) {
	return m.cacheHits.Load(), m.cacheMisses.Load()
}

// WriteTo renders every metric in Prometheus text format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	add("# HELP valleyd_requests_total Completed HTTP requests by path and status code.\n")
	add("# TYPE valleyd_requests_total counter\n")
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		add("valleyd_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, atomic.LoadInt64(m.requests[k]))
	}
	m.mu.Unlock()

	add("# HELP valleyd_profile_cache_hits_total Profile-cache hits (including joins on in-flight computations).\n")
	add("# TYPE valleyd_profile_cache_hits_total counter\n")
	add("valleyd_profile_cache_hits_total %d\n", m.cacheHits.Load())
	add("# HELP valleyd_profile_cache_misses_total Profile-cache misses.\n")
	add("# TYPE valleyd_profile_cache_misses_total counter\n")
	add("valleyd_profile_cache_misses_total %d\n", m.cacheMisses.Load())
	add("# HELP valleyd_profile_cache_hit_rate Hit fraction over all cache lookups.\n")
	add("# TYPE valleyd_profile_cache_hit_rate gauge\n")
	add("valleyd_profile_cache_hit_rate %g\n", m.CacheHitRate())
	if m.cacheLen != nil {
		add("# HELP valleyd_profile_cache_entries Resident profile-cache entries.\n")
		add("# TYPE valleyd_profile_cache_entries gauge\n")
		add("valleyd_profile_cache_entries %d\n", m.cacheLen())
	}

	add("# HELP valleyd_jobs_enqueued_total Simulation jobs accepted.\n")
	add("# TYPE valleyd_jobs_enqueued_total counter\n")
	add("valleyd_jobs_enqueued_total %d\n", m.jobsEnqueued.Load())
	add("# HELP valleyd_jobs_done_total Simulation jobs completed successfully.\n")
	add("# TYPE valleyd_jobs_done_total counter\n")
	add("valleyd_jobs_done_total %d\n", m.jobsDone.Load())
	add("# HELP valleyd_jobs_failed_total Simulation jobs that ended in error.\n")
	add("# TYPE valleyd_jobs_failed_total counter\n")
	add("valleyd_jobs_failed_total %d\n", m.jobsFailed.Load())
	add("# HELP valleyd_jobs_canceled_total Simulation jobs terminated by cancellation, client disconnect or deadline expiry.\n")
	add("# TYPE valleyd_jobs_canceled_total counter\n")
	add("valleyd_jobs_canceled_total %d\n", m.jobsCanceled.Load())
	add("# HELP valleyd_jobs_shed_total Sweeps rejected up front by cost-aware admission control.\n")
	add("# TYPE valleyd_jobs_shed_total counter\n")
	add("valleyd_jobs_shed_total %d\n", m.jobsShed.Load())
	add("# HELP valleyd_sweeps_degraded_total Fully-cached sweeps served inline because the worker pool was saturated.\n")
	add("# TYPE valleyd_sweeps_degraded_total counter\n")
	add("valleyd_sweeps_degraded_total %d\n", m.degradedSweeps.Load())
	add("# HELP valleyd_sim_cells_total Individual workload x scheme simulations executed (cache hits excluded).\n")
	add("# TYPE valleyd_sim_cells_total counter\n")
	add("valleyd_sim_cells_total %d\n", m.cellsSimulated.Load())
	add("# HELP valleyd_sim_cells_cache_hits_total Sweep cells served from the simulation-result cache (including joins on in-flight cells).\n")
	add("# TYPE valleyd_sim_cells_cache_hits_total counter\n")
	add("valleyd_sim_cells_cache_hits_total %d\n", m.simCacheHits.Load())
	add("# HELP valleyd_sim_cells_cache_misses_total Sweep cells that had to simulate.\n")
	add("# TYPE valleyd_sim_cells_cache_misses_total counter\n")
	add("valleyd_sim_cells_cache_misses_total %d\n", m.simCacheMisses.Load())
	if m.simCacheLen != nil {
		add("# HELP valleyd_sim_cache_entries Resident simulation-result cache entries.\n")
		add("# TYPE valleyd_sim_cache_entries gauge\n")
		add("valleyd_sim_cache_entries %d\n", m.simCacheLen())
	}
	add("# HELP valleyd_sweep_seconds_total Wall time spent executing simulation sweeps.\n")
	add("# TYPE valleyd_sweep_seconds_total counter\n")
	add("valleyd_sweep_seconds_total %g\n", m.SweepSeconds())
	add("# HELP valleyd_stream_events_dropped_total Slow-consumer wakeup drops on job event streams (lag accounting; no events are lost).\n")
	add("# TYPE valleyd_stream_events_dropped_total counter\n")
	add("valleyd_stream_events_dropped_total %d\n", m.streamEventsDropped.Load())
	add("# HELP valleyd_worker_panics_total Panics recovered in sweep cells and pool workers.\n")
	add("# TYPE valleyd_worker_panics_total counter\n")
	add("valleyd_worker_panics_total %d\n", m.workerPanics.Load())

	add("# HELP valleyd_cluster_cells_dispatched_total Sweep cells dispatched to each peer worker.\n")
	add("# TYPE valleyd_cluster_cells_dispatched_total counter\n")
	m.clusterMu.Lock()
	peers := make([]string, 0, len(m.clusterDispatched))
	for p := range m.clusterDispatched {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		add("valleyd_cluster_cells_dispatched_total{peer=%q} %d\n", p, atomic.LoadInt64(m.clusterDispatched[p]))
	}
	m.clusterMu.Unlock()
	add("# HELP valleyd_cluster_steals_total Cells re-dispatched after a failed attempt on a slow or dead peer.\n")
	add("# TYPE valleyd_cluster_steals_total counter\n")
	add("valleyd_cluster_steals_total %d\n", m.clusterSteals.Load())
	add("# HELP valleyd_cluster_local_cells_total Cells a coordinator executed locally because no healthy peer could take them.\n")
	add("# TYPE valleyd_cluster_local_cells_total counter\n")
	add("valleyd_cluster_local_cells_total %d\n", m.clusterLocalCells.Load())
	if m.peerUp != nil {
		add("# HELP valleyd_cluster_peer_up Peer health by configured worker (1 = reachable, 0 = in its down cooldown).\n")
		add("# TYPE valleyd_cluster_peer_up gauge\n")
		states := m.peerUp()
		ps := make([]string, 0, len(states))
		for p := range states {
			ps = append(ps, p)
		}
		sort.Strings(ps)
		for _, p := range ps {
			v := 0
			if states[p] {
				v = 1
			}
			add("valleyd_cluster_peer_up{peer=%q} %d\n", p, v)
		}
	}
	add("# HELP valleyd_cache_tier_hits_total Simulation-cache hits by serving tier (mem: resident or in-flight join; disk: promoted from the spill store).\n")
	add("# TYPE valleyd_cache_tier_hits_total counter\n")
	add("valleyd_cache_tier_hits_total{tier=\"mem\"} %d\n", m.tierHitsMem.Load())
	add("valleyd_cache_tier_hits_total{tier=\"disk\"} %d\n", m.tierHitsDisk.Load())
	add("# HELP valleyd_cache_spill_writes_total Spill entry files landed by the write-behind goroutine.\n")
	add("# TYPE valleyd_cache_spill_writes_total counter\n")
	add("valleyd_cache_spill_writes_total %d\n", m.spillWrites.Load())
	add("# HELP valleyd_cache_spill_write_drops_total Pending spill writes discarded on write-behind queue overflow (lost warmth, never correctness).\n")
	add("# TYPE valleyd_cache_spill_write_drops_total counter\n")
	add("valleyd_cache_spill_write_drops_total %d\n", m.spillWriteDrops.Load())
	add("# HELP valleyd_cache_spill_evictions_total Spill entries evicted by the byte-budget janitor (lowest cost-per-byte first).\n")
	add("# TYPE valleyd_cache_spill_evictions_total counter\n")
	add("valleyd_cache_spill_evictions_total %d\n", m.spillEvictions.Load())
	add("# HELP valleyd_cache_spill_errors_total Spill damage events (failed writes, corrupt or unreadable entries) degraded to cache misses.\n")
	add("# TYPE valleyd_cache_spill_errors_total counter\n")
	add("valleyd_cache_spill_errors_total %d\n", m.spillErrors.Load())
	add("# HELP valleyd_sim_cache_legacy_migrated_entries Legacy VSIMCSH1 snapshot entries migrated into the spill directory at startup.\n")
	add("# TYPE valleyd_sim_cache_legacy_migrated_entries gauge\n")
	add("valleyd_sim_cache_legacy_migrated_entries %d\n", m.legacyMigrated.Load())
	if m.spillEntries != nil {
		add("# HELP valleyd_cache_spill_entries Entry files resident in the spill directory.\n")
		add("# TYPE valleyd_cache_spill_entries gauge\n")
		add("valleyd_cache_spill_entries %d\n", m.spillEntries())
	}
	if m.spillBytes != nil {
		add("# HELP valleyd_cache_spill_bytes Bytes resident in the spill directory.\n")
		add("# TYPE valleyd_cache_spill_bytes gauge\n")
		add("valleyd_cache_spill_bytes %d\n", m.spillBytes())
	}

	if m.queueDepth != nil {
		add("# HELP valleyd_queue_depth Tasks waiting in the worker-pool queue.\n")
		add("# TYPE valleyd_queue_depth gauge\n")
		add("valleyd_queue_depth %d\n", m.queueDepth())
	}
	if m.workersBusy != nil {
		add("# HELP valleyd_workers Configured worker-pool size.\n")
		add("# TYPE valleyd_workers gauge\n")
		add("valleyd_workers %d\n", m.workers)
		add("# HELP valleyd_workers_busy Workers currently executing a task.\n")
		add("# TYPE valleyd_workers_busy gauge\n")
		add("valleyd_workers_busy %d\n", m.workersBusy())
		add("# HELP valleyd_worker_utilization Busy workers over pool size.\n")
		add("# TYPE valleyd_worker_utilization gauge\n")
		util := 0.0
		if m.workers > 0 {
			util = float64(m.workersBusy()) / float64(m.workers)
		}
		add("valleyd_worker_utilization %g\n", util)
	}

	// Histograms and runtime gauges render through the obs registry, so
	// new instruments only need a Register call, not a WriteTo edit.
	b = m.reg.Collect(b)

	n, err := w.Write(b)
	return int64(n), err
}
