package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// collectEvents drains an NDJSON event stream into a slice.
func collectEvents(t *testing.T, r io.Reader) []JobEvent {
	t.Helper()
	var evs []JobEvent
	dec := json.NewDecoder(r)
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return evs
		} else if err != nil {
			t.Fatalf("decoding event stream: %v", err)
		}
		evs = append(evs, ev)
	}
}

// checkTranscript asserts the stream contract: dense ascending seq
// starting at from, start/cell/done shape, monotonic done_cells, and
// every cell strictly before the terminal event.
func checkTranscript(t *testing.T, evs []JobEvent, from, totalCells int) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty transcript")
	}
	lastDone := -1
	cells := 0
	for i, ev := range evs {
		if ev.Seq != from+i {
			t.Fatalf("event %d has seq %d, want dense ascending from %d", i, ev.Seq, from)
		}
		switch ev.Type {
		case EventStart:
			if ev.Seq != 0 {
				t.Errorf("start event at seq %d, want 0", ev.Seq)
			}
		case EventCell:
			cells++
			if ev.Cell == nil {
				t.Fatalf("cell event %d has no cell", i)
			}
			if ev.Done <= lastDone {
				t.Errorf("done_cells went %d -> %d at seq %d", lastDone, ev.Done, ev.Seq)
			}
			lastDone = ev.Done
			if i == len(evs)-1 {
				t.Error("stream ended on a cell event; terminal event missing")
			}
		case EventDone, EventFailed, EventCanceled, EventDeadlineExceeded:
			if i != len(evs)-1 {
				t.Fatalf("terminal event at index %d of %d — cells after done", i, len(evs))
			}
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if from == 0 && cells != totalCells {
		t.Errorf("saw %d cell events, want %d", cells, totalCells)
	}
}

// TestStreamingSimulate covers the acceptance criterion: a streaming
// client observes the first cell result strictly before the job reaches
// done.
func TestStreamingSimulate(t *testing.T) {
	svc, ts := newTestServer(t)

	resp := postJSON(t, ts.URL+"/v1/simulate?stream=1", SimulateRequest{
		Workloads: []string{"SP", "NW"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	// Read incrementally: at the moment the first cell record arrives,
	// the job must not yet report done — the strictly-before guarantee.
	br := bufio.NewReader(resp.Body)
	var evs []JobEvent
	sawCellBeforeDone := false
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		evs = append(evs, ev)
		if ev.Type == EventCell && !sawCellBeforeDone {
			sawCellBeforeDone = true
			if j, ok := svc.Job(ev.JobID); ok && j.Status == JobDone {
				// The stream delivered the cell only after the job
				// finished end to end — the ordering guarantee held on
				// the wire regardless, but flag sequencing bugs where
				// cells are published late.
				t.Log("job already done when first cell arrived (slow reader; wire order still verified below)")
			}
		}
	}
	if !sawCellBeforeDone {
		t.Fatal("no cell event before end of stream")
	}
	checkTranscript(t, evs, 0, 4)
	if last := evs[len(evs)-1]; last.Type != EventDone || last.Result == nil || len(last.Result.Cells) != 4 {
		t.Fatalf("terminal event %+v, want done with 4 cells", last)
	}
}

// TestJobEventsEndpoint: late subscribers replay the full retained log,
// and ?from=seq resumes mid-stream without duplicates.
func TestJobEventsEndpoint(t *testing.T) {
	svc, ts := newTestServer(t)

	job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, svc, job.ID)

	// Full replay after completion.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(t, resp.Body)
	resp.Body.Close()
	checkTranscript(t, evs, 0, 2)

	// Resume from the second half: no duplicates of what came before.
	from := len(evs) - 2
	resp2, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, job.ID, from))
	if err != nil {
		t.Fatal(err)
	}
	tail := collectEvents(t, resp2.Body)
	resp2.Body.Close()
	checkTranscript(t, tail, from, 2)
	if len(tail) != 2 {
		t.Fatalf("resumed tail has %d events, want 2", len(tail))
	}

	// Unknown job and bad from are client errors.
	nf, _ := http.Get(ts.URL + "/v1/jobs/job-424242/events")
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status = %d, want 404", nf.StatusCode)
	}
	nf.Body.Close()
	bad, _ := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events?from=minus")
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from status = %d, want 400", bad.StatusCode)
	}
	bad.Body.Close()
}

// TestJobEventsFromPastTerminal pins the over-the-wire contract for a
// resume cursor beyond a completed job's terminal event: the stream
// must end immediately with an empty 200 body — no events, no error,
// no blocking on a log that will never grow.
func TestJobEventsFromPastTerminal(t *testing.T) {
	svc, ts := newTestServer(t)

	job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j := waitJob(t, svc, job.ID); j.Status != JobDone {
		t.Fatalf("sweep ended %s: %s", j.Status, j.Error)
	}

	// Establish the log length (start + cell + done) from a full replay.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(t, resp.Body)
	resp.Body.Close()
	checkTranscript(t, evs, 0, 1)

	// One past the terminal seq, and far past it: both are valid cursors
	// that simply have nothing left to deliver. A bounded client turns a
	// blocking regression into a fast failure instead of a test hang.
	client := &http.Client{Timeout: 15 * time.Second}
	for _, from := range []int{len(evs), len(evs) + 100} {
		resp, err := client.Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, job.ID, from))
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("from=%d: status = %d, want 200", from, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("from=%d: reading body: %v", from, err)
		}
		if len(body) != 0 {
			t.Errorf("from=%d: past-the-end cursor delivered %d bytes, want an immediately-ended empty stream: %q", from, len(body), body)
		}
	}
}

// TestJobEventsInProcess drives the Service.JobEvents embedder API and
// the slow-consumer drop accounting.
func TestJobEventsInProcess(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	job, err := s.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := s.JobEvents(job.ID, 0)
	if !ok {
		t.Fatal("subscription refused")
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var evs []JobEvent
	for {
		ev, eos, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if eos {
			break
		}
		evs = append(evs, ev)
	}
	checkTranscript(t, evs, 0, 1)

	// On a finished job, subscribing past the log reports a clean
	// end-of-stream rather than blocking forever.
	sub2, _ := s.JobEvents(job.ID, len(evs)+100)
	defer sub2.Close()
	if _, eos, err := sub2.Next(ctx); !eos || err != nil {
		t.Errorf("past-the-log read on finished job: eos=%v err=%v, want clean EOS", eos, err)
	}

	// On a live job, a canceled context unblocks a waiting Next.
	js := newJobStore(4)
	live, err := js.create("simulate", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub3, _ := js.subscribe(live.ID, 1) // start event is seq 0; wait for more
	defer sub3.Close()
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, _, err := sub3.Next(cctx); err == nil {
		t.Error("Next with canceled context must return its error")
	}
}

// TestStreamingDeliveryIsLive proves events reach the client the
// moment they are published, not when the job finishes: with the job
// held open, each published event must arrive over HTTP within the
// read deadline while the job is still unfinished. This is the
// wire-level form of the "first cell strictly before done" guarantee,
// and it fails if response flushing ever breaks (e.g. a middleware
// wrapper hiding the Flusher).
func TestStreamingDeliveryIsLive(t *testing.T) {
	svc, ts := newTestServer(t)
	job, err := svc.jobs.create("simulate", 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// A bounded client: if response headers never arrive (a broken
	// flush buffers them until the handler returns, which on an open
	// job is never), the test fails in seconds instead of hanging.
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type line struct {
		ev  JobEvent
		err error
	}
	lines := make(chan line)
	go func() {
		defer close(lines)
		br := bufio.NewReader(resp.Body)
		for {
			raw, err := br.ReadBytes('\n')
			if err != nil {
				if err != io.EOF {
					lines <- line{err: err}
				}
				return
			}
			var ev JobEvent
			if err := json.Unmarshal(raw, &ev); err != nil {
				lines <- line{err: err}
				return
			}
			lines <- line{ev: ev}
		}
	}()
	readLive := func(wantType string) JobEvent {
		t.Helper()
		select {
		case l, ok := <-lines:
			if !ok || l.err != nil {
				t.Fatalf("stream ended early (err=%v) waiting for %q", l.err, wantType)
			}
			if l.ev.Type != wantType {
				t.Fatalf("got %q event, want %q", l.ev.Type, wantType)
			}
			return l.ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no %q event arrived while the job was still open — events are not flushed live", wantType)
		}
		panic("unreachable")
	}

	readLive(EventStart)
	svc.jobs.cellDone(job.ID, CellResult{Workload: "SP", Scheme: "BASE"})
	ev := readLive(EventCell)
	if j, _ := svc.Job(job.ID); j.Status == JobDone {
		t.Error("job reported done before its terminal event")
	}
	if ev.Cell == nil || ev.Cell.Workload != "SP" {
		t.Errorf("cell event payload %+v", ev.Cell)
	}
	svc.jobs.finish(job.ID, &SimulateResult{}, nil)
	readLive(EventDone)
	if _, ok := <-lines; ok {
		t.Error("stream did not end after the terminal event")
	}
}

// TestEventBusSlowConsumerAccounting: a subscriber that never drains
// its wakeup channel forces publish-side drops, which are counted but
// lose nothing — the laggard still reads the full log afterwards.
func TestEventBusSlowConsumerAccounting(t *testing.T) {
	m := NewMetrics()
	js := newJobStore(8)
	js.onDrop = m.StreamEventDropped
	j, err := js.create("simulate", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := js.subscribe(j.ID, 0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()

	// Publish far more events than the wakeup buffer holds while the
	// subscriber sleeps.
	const n = subBuffer * 4
	for i := 0; i < n; i++ {
		js.cellDone(j.ID, CellResult{Workload: "SP", Scheme: "BASE"})
	}
	js.finish(j.ID, &SimulateResult{}, nil)

	if got := m.StreamEventsDropped(); got == 0 {
		t.Error("slow consumer produced no drop accounting")
	}
	bus, _ := js.busFor(j.ID)
	if bus.dropped.Load() != m.StreamEventsDropped() {
		t.Errorf("bus counted %d drops, metric %d", bus.dropped.Load(), m.StreamEventsDropped())
	}

	// Despite the drops, the subscriber reads every event exactly once.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var evs []JobEvent
	for {
		ev, eos, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if eos {
			break
		}
		evs = append(evs, ev)
	}
	if len(evs) != n+2 { // start + n cells + done
		t.Fatalf("laggard read %d events, want %d", len(evs), n+2)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d — lost or duplicated under lag", i, ev.Seq)
		}
	}
}
