package service

import (
	"container/list"
	"fmt"
	"sync"
)

// lruCache is a content-addressed LRU cache with in-flight request
// coalescing: concurrent lookups for the same key share one computation
// (the first caller computes, the rest block on it and count as hits),
// so a burst of identical requests costs one computation. It backs both
// the profile cache and the simulation-result cache; keys encode the
// input identity plus every option that affects the result.
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight[V]
	// onHit / onMiss observe lookup outcomes (may be nil).
	onHit, onMiss func()
}

type cacheEntry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newLRUCache[V any](capacity int, onHit, onMiss func()) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight[V]{},
		onHit:    onHit,
		onMiss:   onMiss,
	}
}

// Len returns the number of resident entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompute returns the cached value for key, or runs fn once to
// produce it. hit is true when the value came from the cache or from
// joining another caller's in-flight computation. Errors are not cached.
func (c *lruCache[V]) GetOrCompute(key string, fn func() (V, error)) (val V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry[V]).val
		c.mu.Unlock()
		if c.onHit != nil {
			c.onHit()
		}
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			var zero V
			return zero, false, f.err
		}
		if c.onHit != nil {
			c.onHit()
		}
		return f.val, true, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// A panicking computation must still unregister the flight and close
	// done, or every later lookup of this key would block forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("service: cached computation panicked: %v", r)
			}
		}()
		f.val, f.err = fn()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)

	// A failed computation was never cacheable; counting it as a miss
	// would make client errors read as cache-sizing trouble in /metrics.
	if f.err == nil && c.onMiss != nil {
		c.onMiss()
	}
	return f.val, false, f.err
}

func (c *lruCache[V]) insertLocked(key string, val V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*cacheEntry[V]).key)
	}
}

// profileCache is the entropy-profile LRU (content-addressed by trace
// identity + analysis options).
type profileCache = lruCache[*ProfileResult]

func newProfileCache(capacity int, m *Metrics) *profileCache {
	c := newLRUCache[*ProfileResult](capacity, m.CacheHit, m.CacheMiss)
	m.cacheLen = c.Len
	return c
}

// simCache holds finished simulation cells keyed by the full cell
// coordinates (workload, scale, scheme, config, seed). Entries are the
// flattened metric set; sweep-relative fields (speedup, wall time) are
// recomputed per sweep.
type simCache = lruCache[*simCell]

func newSimCache(capacity int, m *Metrics) *simCache {
	c := newLRUCache[*simCell](capacity, m.SimCacheHit, m.SimCacheMiss)
	m.simCacheLen = c.Len
	return c
}
