package service

import (
	"container/list"
	"fmt"
	"sync"
)

// profileCache is a content-addressed LRU cache with in-flight request
// coalescing: concurrent lookups for the same key share one computation
// (the first caller computes, the rest block on it and count as hits),
// so a burst of identical requests costs one profile run. Keys encode
// the trace identity (workload+scale, or the SHA-256 of an uploaded
// trace) plus every analysis option that affects the result.
type profileCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	metrics  *Metrics
}

type cacheEntry struct {
	key string
	val *ProfileResult
}

type flight struct {
	done chan struct{}
	val  *ProfileResult
	err  error
}

func newProfileCache(capacity int, m *Metrics) *profileCache {
	if capacity < 1 {
		capacity = 1
	}
	c := &profileCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight{},
		metrics:  m,
	}
	m.cacheLen = c.Len
	return c
}

// Len returns the number of resident entries.
func (c *profileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompute returns the cached value for key, or runs fn once to
// produce it. hit is true when the value came from the cache or from
// joining another caller's in-flight computation. Errors are not cached.
func (c *profileCache) GetOrCompute(key string, fn func() (*ProfileResult, error)) (val *ProfileResult, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.metrics.CacheHit()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.metrics.CacheHit()
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// A panicking computation must still unregister the flight and close
	// done, or every later lookup of this key would block forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("service: profile computation panicked: %v", r)
			}
		}()
		f.val, f.err = fn()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)

	// A failed computation was never cacheable; counting it as a miss
	// would make client errors read as cache-sizing trouble in /metrics.
	if f.err == nil {
		c.metrics.CacheMiss()
	}
	return f.val, false, f.err
}

func (c *profileCache) insertLocked(key string, val *ProfileResult) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.items, old.Value.(*cacheEntry).key)
	}
}
