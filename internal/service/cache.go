package service

import (
	"valleymap/internal/cache"
)

// Both service caches are instances of the generic content-addressed
// LRU with in-flight request coalescing (internal/cache.LRU); keys
// encode the input identity plus every option that affects the result.

// profileCache is the entropy-profile LRU (content-addressed by trace
// identity + analysis options). Profiles all cost roughly the same to
// recompute per byte held, so it keeps exact LRU eviction (no weigher).
type profileCache = cache.LRU[*ProfileResult]

func newProfileCache(capacity int, m *Metrics) *profileCache {
	c := cache.NewLRU(cache.LRUOptions[*ProfileResult]{
		Capacity: capacity,
		OnHit:    m.CacheHit,
		OnMiss:   m.CacheMiss,
	})
	m.cacheLen = c.Len
	return c
}

// simCache holds finished simulation cells keyed by the full cell
// coordinates (workload, scale, scheme, config, seed). Entries are the
// flattened metric set; sweep-relative fields (speedup, wall time) are
// recomputed per sweep.
//
// Unlike profiles, sweep cells differ in recompute cost by orders of
// magnitude (a full-scale 3D sweep cell vs a tiny BASE cell), so the
// cache evicts cost-aware: each cell carries its measured simulation
// seconds as weight, and among the least-recently-used entries the
// cheapest-per-byte is dropped first.
type simCache = cache.LRU[*simCell]

// simCellBytes approximates a resident cell's footprint: the flattened
// metric struct plus key and bookkeeping. Cells are near-constant size,
// so Cost/Bytes ordering is dominated by the measured seconds.
const simCellBytes = 512

func newSimCache(capacity int, m *Metrics) *simCache {
	c := cache.NewLRU(cache.LRUOptions[*simCell]{
		Capacity: capacity,
		OnHit:    m.SimCacheHit,
		OnMiss:   m.SimCacheMiss,
		Weigh: func(c *simCell) cache.Weight {
			return cache.Weight{Cost: c.Seconds, Bytes: simCellBytes}
		},
	})
	m.simCacheLen = c.Len
	return c
}
