package service

import (
	"encoding/json"

	"valleymap/internal/cache"
)

// Both service caches are instances of the generic content-addressed
// sharded LRU with in-flight request coalescing (internal/cache); keys
// encode the input identity plus every option that affects the result.

// profileCache is the entropy-profile cache (content-addressed by trace
// identity + analysis options). Profiles all cost roughly the same to
// recompute per byte held, so it keeps exact LRU eviction (no weigher)
// and no spill tier — a profile is one streaming pass, not minutes of
// simulation.
type profileCache = cache.Sharded[*ProfileResult]

func newProfileCache(capacity int, m *Metrics) *profileCache {
	c := cache.NewSharded(cache.ShardedOptions[*ProfileResult]{
		Capacity: capacity,
		OnHit:    m.CacheHit,
		OnMiss:   m.CacheMiss,
	})
	m.cacheLen = c.Len
	return c
}

// simCache holds finished simulation cells keyed by the full cell
// coordinates (workload, scale, scheme, config, seed). Entries are the
// flattened metric set; sweep-relative fields (speedup, wall time) are
// recomputed per sweep.
//
// Unlike profiles, sweep cells differ in recompute cost by orders of
// magnitude (a full-scale 3D sweep cell vs a tiny BASE cell), so the
// cache evicts cost-aware — each cell carries its measured simulation
// seconds as weight — and, when a spill directory is configured,
// eviction spills to disk instead of discarding: seconds-to-minutes of
// simulation survive both memory pressure and restarts.
type simCache = cache.Tiered[*simCell]

// simCellBytes approximates a resident cell's footprint: the flattened
// metric struct plus key and bookkeeping. Cells are near-constant size,
// so Cost/Bytes ordering is dominated by the measured seconds.
const simCellBytes = 512

// newSimCache builds the tiered simulation-result cache over disk
// (which may be nil for a memory-only cache). Spill payloads are the
// same JSON shape the legacy snapshot stored per entry, so migrated
// entries and fresh spills are indistinguishable on disk.
func newSimCache(capacity int, disk *cache.DiskStore, m *Metrics) *simCache {
	c, err := cache.NewTiered(cache.TieredOptions[*simCell]{
		Capacity: capacity,
		Disk:     disk,
		Encode:   func(c *simCell) ([]byte, error) { return json.Marshal(c) },
		Decode: func(p []byte) (*simCell, error) {
			var c simCell
			if err := json.Unmarshal(p, &c); err != nil {
				return nil, err
			}
			return &c, nil
		},
		Weigh: func(c *simCell) cache.Weight {
			return cache.Weight{Cost: c.Seconds, Bytes: simCellBytes}
		},
		OnHit: func(t cache.Tier) {
			m.SimCacheHit()
			if t == cache.TierDisk {
				m.tierHitsDisk.Add(1)
			} else {
				m.tierHitsMem.Add(1)
			}
		},
		OnMiss: m.SimCacheMiss,
	})
	if err != nil {
		// Encode/Decode are set above; the only error is a programming
		// mistake, not a runtime condition.
		panic(err)
	}
	m.simCacheLen = c.MemLen
	if disk != nil {
		m.spillEntries = disk.Len
		m.spillBytes = disk.Bytes
	}
	return c
}

// newSpillStore opens the spill directory with the service's metrics
// wired to the store's observers.
func newSpillStore(dir string, maxBytes int64, m *Metrics) (*cache.DiskStore, error) {
	return cache.OpenDisk(cache.DiskOptions{
		Dir:         dir,
		MaxBytes:    maxBytes,
		OnWrite:     func() { m.spillWrites.Add(1) },
		OnWriteDrop: func() { m.spillWriteDrops.Add(1) },
		OnEvict:     func() { m.spillEvictions.Add(1) },
		OnError:     func() { m.spillErrors.Add(1) },
	})
}
