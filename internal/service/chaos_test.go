//go:build faultinject

package service

// Chaos suite (runs only with -tags faultinject, which CI drives under
// -race): seeded fault injection over concurrent sweeps, asserting the
// daemon's core robustness contracts — every accepted job reaches a
// terminal state, event streams keep their per-subscriber ordering,
// goroutine counts return to baseline, the cache and its spill tier
// never serve corrupt results, and a restarted daemon recovers cleanly.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"valleymap/internal/fault"
	"valleymap/internal/testutil"
)

// checkChaosTranscript asserts the stream contract without assuming
// which terminal the job reached: dense ascending seq from 0, start
// first, monotone done_cells, exactly one terminal as the last record.
func checkChaosTranscript(t *testing.T, evs []JobEvent) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("empty transcript")
	}
	if evs[0].Type != EventStart {
		t.Errorf("first event %q, want start", evs[0].Type)
	}
	lastDone := -1
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d, want dense ascending from 0", i, ev.Seq)
		}
		isLast := i == len(evs)-1
		if terminalEvent(ev.Type) != isLast {
			t.Fatalf("event %d (%s) of %d: the terminal must be exactly the last record", i, ev.Type, len(evs))
		}
		if ev.Type == EventCell {
			if ev.Done <= lastDone {
				t.Errorf("done_cells went %d -> %d at seq %d", lastDone, ev.Done, ev.Seq)
			}
			lastDone = ev.Done
		}
	}
}

// TestChaosCellPanicDeterministic arms the cell-panic point at
// probability 1: the sweep's only cell panics, the job must land on
// failed with the injected message, and the pool survives.
func TestChaosCellPanicDeterministic(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1})
	defer svc.Close()

	fault.InjectFail(fault.CellPanic, 1.0)
	job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, svc, job.ID)
	if j.Status != JobFailed {
		t.Fatalf("job status = %s, want failed (error %q)", j.Status, j.Error)
	}
	if !strings.Contains(j.Error, "injected cell panic") {
		t.Errorf("job error %q does not carry the injected panic", j.Error)
	}
	if fault.Fired(fault.CellPanic) == 0 {
		t.Fatal("CellPanic fault point never fired — the seam is dead")
	}

	// Disarm and prove the worker survived the panic.
	fault.Reset()
	job2, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitJob(t, svc, job2.ID); j2.Status != JobDone {
		t.Errorf("post-panic job ended %s: %s", j2.Status, j2.Error)
	}
}

// TestChaosStorm is the main chaos run: seeded slow-worker and
// cell-panic faults over a storm of concurrent sweeps whose clients
// poll, stream, disconnect, cancel and impose deadlines — all at once.
func TestChaosStorm(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 4, QueueDepth: 64})
	base := newServerFor(t, svc)

	fault.Seed(42)
	fault.InjectDelay(fault.WorkerDelay, 0.3, 2*time.Millisecond)
	fault.InjectFail(fault.CellPanic, 0.05)

	req := SimulateRequest{
		Workloads: []string{"MT", "LU", "SC", "SP"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	}
	const flavors = 4
	const jobsPerFlavor = 3
	var (
		mu       sync.Mutex
		accepted []string
		errs     []error
	)
	addJob := func(id string) {
		mu.Lock()
		accepted = append(accepted, id)
		mu.Unlock()
	}
	addErr := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for i := 0; i < flavors*jobsPerFlavor; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch i % flavors {
			case 0: // plain 202 client, polls to terminal
				resp := postJSON(t, base+"/v1/simulate", req)
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					addErr(fmt.Errorf("plain client %d: status %d", i, resp.StatusCode))
					return
				}
				var job Job
				if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
					addErr(err)
					return
				}
				addJob(job.ID)
			case 1: // deadline client: 429 (shed) and 202 both legal
				resp := postJSON(t, base+"/v1/simulate?deadline_ms=25", req)
				defer resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var job Job
					if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
						addErr(err)
						return
					}
					addJob(job.ID)
				case http.StatusTooManyRequests:
					// Shed before acceptance: nothing to track.
				default:
					addErr(fmt.Errorf("deadline client %d: status %d", i, resp.StatusCode))
				}
			case 2: // streaming client that disconnects after the start event
				resp := postJSON(t, base+"/v1/simulate?stream=1", req)
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					addErr(fmt.Errorf("stream client %d: status %d", i, resp.StatusCode))
					return
				}
				line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
				resp.Body.Close()
				if err != nil {
					addErr(fmt.Errorf("stream client %d: %w", i, err))
					return
				}
				var start JobEvent
				if err := json.Unmarshal(line, &start); err != nil {
					addErr(fmt.Errorf("stream client %d: %w", i, err))
					return
				}
				addJob(start.JobID)
			case 3: // cancel client: 202 then DELETE shortly after
				resp := postJSON(t, base+"/v1/simulate", req)
				if resp.StatusCode != http.StatusAccepted {
					resp.Body.Close()
					addErr(fmt.Errorf("cancel client %d: status %d", i, resp.StatusCode))
					return
				}
				var job Job
				err := json.NewDecoder(resp.Body).Decode(&job)
				resp.Body.Close()
				if err != nil {
					addErr(err)
					return
				}
				addJob(job.ID)
				time.Sleep(5 * time.Millisecond)
				dreq, _ := http.NewRequest("DELETE", base+"/v1/jobs/"+job.ID, nil)
				dresp, err := http.DefaultClient.Do(dreq)
				if err != nil {
					addErr(err)
					return
				}
				dresp.Body.Close()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		t.Error(err)
	}
	if len(accepted) == 0 {
		t.Fatal("chaos storm accepted no jobs at all")
	}

	// Every accepted job reaches a terminal state, and its event stream
	// honors the per-subscriber ordering contract.
	for _, id := range accepted {
		j := waitJob(t, svc, id)
		if !terminalStatus(j.Status) {
			t.Fatalf("job %s stuck in %s", id, j.Status)
		}
		if j.Status == JobFailed && !strings.Contains(j.Error, "injected cell panic") {
			t.Errorf("job %s failed for a non-injected reason: %s", id, j.Error)
		}
		checkChaosTranscript(t, drainJobEvents(t, svc, id))
	}

	// Non-vacuity: the armed slow-worker point actually fired (hundreds
	// of draws at p=0.3 — a zero count means the seam is disconnected).
	if fault.Fired(fault.WorkerDelay) == 0 {
		t.Error("WorkerDelay fault point never fired — the seam is dead")
	}

	// The storm must leave the pool fully usable.
	fault.Reset()
	job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if j := waitJob(t, svc, job.ID); j.Status != JobDone {
		t.Errorf("post-storm job ended %s: %s", j.Status, j.Error)
	}
}

// TestChaosClusterWorkerDeath is the cluster leg of the chaos suite: a
// worker dies mid-sweep — listener and service torn down with cells
// still outstanding in its batch — and the coordinator must steal the
// dead worker's cells, land the job on done with every cell accounted
// for exactly once, keep the transcript dense, and bit-match
// single-node execution.
func TestChaosClusterWorkerDeath(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	testutil.CheckGoroutineLeaks(t)

	truth := singleNodeTruth(t, clusterSweep)

	w1, s1, u1 := startWorker(t, "", "")
	w2, s2, u2 := startWorker(t, "", "")
	defer stopWorker(t, w2, s2)
	coord := newCoordinator(t, []string{u1, u2})

	// Pace the cells so the kill below lands mid-sweep, not after it:
	// each of the 16 cells stalls 20ms, so at the first delivered cell
	// both workers still hold most of their batches.
	fault.InjectDelay(fault.WorkerDelay, 1.0, 20*time.Millisecond)

	job, err := coord.SimulateCtx(context.Background(), clusterSweep)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := coord.JobEvents(job.ID, 0)
	if !ok {
		t.Fatal("no event subscription for the cluster job")
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var evs []JobEvent
	killed := false
	for {
		ev, eos, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("event stream did not terminate: %v", err)
		}
		if eos {
			break
		}
		evs = append(evs, ev)
		if !killed && ev.Type == EventCell {
			// First finished cell: the sweep is demonstrably mid-flight.
			stopWorker(t, w1, s1)
			killed = true
		}
	}
	if !killed {
		t.Fatal("no cell event before end of stream — the kill never landed mid-sweep")
	}
	checkChaosTranscript(t, evs)
	if last := evs[len(evs)-1]; last.Type != EventDone {
		t.Fatalf("terminal event %q (error %q), want done — a dead worker must not fail the sweep", last.Type, last.Error)
	}
	cells := map[string]bool{}
	for _, ev := range evs {
		if ev.Type == EventCell {
			k := ev.Cell.Workload + "/" + ev.Cell.Scheme
			if cells[k] {
				t.Fatalf("cell %s delivered twice across the steal", k)
			}
			cells[k] = true
		}
	}
	if want := len(clusterSweep.Workloads) * len(clusterSweep.Schemes); len(cells) != want {
		t.Fatalf("transcript carries %d distinct cells, want %d — the dead worker's cells were lost", len(cells), want)
	}

	j := waitJob(t, coord, job.ID)
	if j.Status != JobDone {
		t.Fatalf("job ended %s: %s", j.Status, j.Error)
	}
	checkAgainstTruth(t, j, truth)

	// Non-vacuity: the dead worker's outstanding cells went somewhere —
	// stolen onto the surviving peer or run in the local fallback.
	if coord.Metrics().ClusterSteals() == 0 && coord.Metrics().ClusterLocalCells() == 0 {
		t.Error("worker death produced neither steals nor local fallback — the kill landed after its batch finished")
	}
	if fault.Fired(fault.WorkerDelay) == 0 {
		t.Error("WorkerDelay fault point never fired — the seam is dead")
	}
}

// TestChaosClusterPeerFaultSeams arms all three peer fault points —
// unreachable peers, slow peers, streams torn after a delivered cell —
// over live workers, and asserts repeated sweeps still land done and
// bit-exact with every seam proven live. This is the injected-fault
// counterpart of TestChaosClusterWorkerDeath's real kill.
func TestChaosClusterPeerFaultSeams(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	testutil.CheckGoroutineLeaks(t)

	truth := singleNodeTruth(t, clusterSweep)

	w1, s1, u1 := startWorker(t, "", "")
	defer stopWorker(t, w1, s1)
	w2, s2, u2 := startWorker(t, "", "")
	defer stopWorker(t, w2, s2)
	coord := newCoordinator(t, []string{u1, u2})

	// One seam per sweep, each at probability 1 — deterministic firing
	// instead of seeded coincidences. PeerDown fails every batch before
	// any bytes move, so the sweep completes in the local fallback;
	// PeerSlow delays every batch but lets it finish remotely; PeerTorn
	// tears every stream after its first delivered cell, so completion
	// is one delivered cell per peer plus steals. The sleep lets the
	// previous seam's down cooldowns lapse so each sweep starts with
	// both peers eligible again.
	seams := []struct {
		point string
		arm   func()
	}{
		{fault.PeerDown, func() { fault.InjectFail(fault.PeerDown, 1.0) }},
		{fault.PeerSlow, func() { fault.InjectDelay(fault.PeerSlow, 1.0, 2*time.Millisecond) }},
		{fault.PeerTorn, func() { fault.InjectFail(fault.PeerTorn, 1.0) }},
	}
	for _, s := range seams {
		fault.Reset()
		s.arm()
		time.Sleep(300 * time.Millisecond) // outlive the 200ms down cooldown
		j := runClusterSweep(t, coord, clusterSweep)
		checkAgainstTruth(t, j, truth)
		checkChaosTranscript(t, drainJobEvents(t, coord, j.ID))
		if fault.Fired(s.point) == 0 {
			t.Errorf("%s fault point never fired — the seam is dead", s.point)
		}
	}
}

// TestChaosSpillResilience drives the spill tier through its failure
// modes: write errors are counted and cost only warmth (Close still
// returns); a torn (truncated) entry that still gets renamed into
// place is caught by the checksum at the next startup's scan, so a
// restarted daemon starts cold rather than serving corrupt cells; and
// the recomputed results are identical to the pre-fault originals.
func TestChaosSpillResilience(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	testutil.CheckGoroutineLeaks(t)
	dir := filepath.Join(t.TempDir(), "spill")
	req := SimulateRequest{Workloads: []string{"SP", "NW"}, Schemes: []string{"BASE"}, Scale: "tiny"}

	// Phase 1: clean run, remember the true cell values.
	s1 := New(Config{Workers: 2, SpillDir: dir})
	job, err := s1.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	j := waitJob(t, s1, job.ID)
	if j.Status != JobDone {
		t.Fatalf("clean sweep ended %s: %s", j.Status, j.Error)
	}
	truth := map[string]int64{}
	for _, c := range j.Result.Cells {
		truth[c.Workload+"/"+c.Scheme] = c.ExecTimePS
	}

	// Phase 2: every spill write fails. Close's shutdown spill must
	// count each failure and return without hanging — lost warmth,
	// never a lost shutdown.
	fault.InjectError(fault.SpillWrite, 1.0, nil)
	s1.Close()
	if got := s1.Metrics().SpillErrors(); got < 2 {
		t.Errorf("SpillErrors = %d after an all-writes-fail shutdown, want >= 2", got)
	}
	if fault.Fired(fault.SpillWrite) == 0 {
		t.Fatal("SpillWrite fault point never fired — the seam is dead")
	}

	// Phase 3: torn writes get renamed into place. The entry files
	// exist but are truncated; the next daemon must detect and discard
	// them at scan time.
	fault.Reset()
	s2 := New(Config{Workers: 2, SpillDir: dir})
	job2, err := s2.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 := waitJob(t, s2, job2.ID); j2.Status != JobDone {
		t.Fatalf("phase-3 sweep ended %s: %s", j2.Status, j2.Error)
	}
	fault.InjectFail(fault.SpillTorn, 1.0)
	s2.Close()
	if fault.Fired(fault.SpillTorn) == 0 {
		t.Fatal("SpillTorn fault point never fired — the seam is dead")
	}
	fault.Reset()

	// Phase 4: restart over the torn spill dir. The scan must remove
	// the damaged entries (cold start, not a crash), the sweep must
	// recompute rather than claim cached, and the recomputed values
	// must bit-match the phase-1 truth.
	s3 := New(Config{Workers: 2, SpillDir: dir})
	defer s3.Close()
	if n := s3.simCache.DiskLen(); n != 0 {
		t.Errorf("torn spill dir loaded %d entries, want a cold start", n)
	}
	if got := s3.Metrics().SpillErrors(); got < 2 {
		t.Errorf("SpillErrors = %d after scanning torn entries, want >= 2", got)
	}
	job3, err := s3.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	j3 := waitJob(t, s3, job3.ID)
	if j3.Status != JobDone {
		t.Fatalf("post-torn sweep ended %s: %s", j3.Status, j3.Error)
	}
	for _, c := range j3.Result.Cells {
		if c.Cached {
			t.Errorf("cell %s/%s claims cached after a torn spill", c.Workload, c.Scheme)
		}
		if got, want := c.ExecTimePS, truth[c.Workload+"/"+c.Scheme]; got != want {
			t.Errorf("cell %s/%s exec time = %d ps after recovery, want %d", c.Workload, c.Scheme, got, want)
		}
	}
}
