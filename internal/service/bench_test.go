package service

import (
	"testing"
	"time"
)

// sweepOnce submits a 4-workload × 4-scheme sweep and waits for it.
func sweepOnce(b *testing.B, s *Service) SimulateResult {
	b.Helper()
	job, err := s.Simulate(SimulateRequest{
		Workloads: []string{"MT", "LU", "SC", "SP"},
		Schemes:   []string{"BASE", "PM", "PAE", "FAE"},
		Scale:     "tiny",
	})
	if err != nil {
		b.Fatal(err)
	}
	for {
		j, ok := s.Job(job.ID)
		if !ok {
			b.Fatalf("job %s vanished", job.ID)
		}
		switch j.Status {
		case JobDone:
			return *j.Result
		case JobFailed:
			b.Fatalf("sweep failed: %s", j.Error)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// BenchmarkSweep measures the full service sweep path end to end:
// dispatch, worker-pool fan-out, one shared trace build per workload,
// runner reuse, aggregation.
//
// "cold" rebuilds the service each iteration, so every cell simulates
// (16 cells, 4 trace builds). "warm" reuses one service, so after the
// first iteration every cell is a simulation-result cache hit — the
// repeated-sweep case the cache exists for.
func BenchmarkSweep(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(Config{})
			res := sweepOnce(b, s)
			s.Close()
			if len(res.Cells) != 16 {
				b.Fatalf("cells = %d", len(res.Cells))
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := New(Config{})
		defer s.Close()
		sweepOnce(b, s) // populate the simulation-result cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sweepOnce(b, s)
			if res.HMeanSpeedup["PAE"] <= 0 {
				b.Fatal("missing speedups")
			}
		}
	})
}
