package service

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"valleymap/internal/experiments"
)

func snapPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "simcache.snap")
}

func runSweepToDone(t *testing.T, s *Service, req SimulateRequest) *SimulateResult {
	t.Helper()
	job, err := s.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, s, job.ID)
	if final.Status != JobDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	return final.Result
}

// TestSnapshotRestartWarm is the acceptance criterion: a valleyd
// restart followed by the same sweep request reports cached: true for
// every previously computed cell.
func TestSnapshotRestartWarm(t *testing.T) {
	path := snapPath(t)
	req := SimulateRequest{Workloads: []string{"SP", "NW"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny"}

	s1 := New(Config{Workers: 2, SimCacheSnapshot: path})
	cold := runSweepToDone(t, s1, req)
	for _, c := range cold.Cells {
		if c.Cached {
			t.Errorf("cold cell %s/%s reported cached", c.Workload, c.Scheme)
		}
	}
	s1.Close() // writes the snapshot
	if saves, _ := s1.Metrics().SnapshotCounts(); saves == 0 {
		t.Fatal("Close wrote no snapshot")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after Close: %v", err)
	}

	// "Restart": a brand-new service over the same snapshot path.
	s2 := New(Config{Workers: 2, SimCacheSnapshot: path})
	defer s2.Close()
	if _, loaded := s2.Metrics().SnapshotCounts(); loaded != 4 {
		t.Fatalf("restarted service loaded %d entries, want 4", loaded)
	}
	warm := runSweepToDone(t, s2, req)
	for i, c := range warm.Cells {
		if !c.Cached {
			t.Errorf("cell %s/%s not served from the restored cache", c.Workload, c.Scheme)
		}
		if c.ResultJSON != cold.Cells[i].ResultJSON {
			t.Errorf("cell %s/%s metrics drifted across the restart", c.Workload, c.Scheme)
		}
	}
	if hits, misses := s2.Metrics().SimCacheCounts(); hits != 4 || misses != 0 {
		t.Errorf("restarted sweep hits=%d misses=%d, want 4/0", hits, misses)
	}
}

// TestSnapshotRoundTripPreservesSecondsAndRecency: the persisted cost
// weight survives, so eviction stays cost-aware after a restart.
func TestSnapshotRoundTrip(t *testing.T) {
	entries := []snapshotEntry{
		{Key: "sim|SP|tiny|BASE|baseline|1", Cell: simCell{Res: experiments.ResultJSON{ExecTimePS: 123, IPS: 4.5}, Seconds: 0.25}},
		{Key: "sim|MT|full|ALL|3d|2", Cell: simCell{Res: experiments.ResultJSON{ExecTimePS: 999}, Seconds: 120.5}},
	}
	data, err := encodeSnapshot(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip kept %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Errorf("entry %d drifted: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

// TestSnapshotRejectsDamage: truncated, corrupt, wrong-version and
// garbage snapshot files all load as a clean empty cache — a cold
// start, never a crash or partial state.
func TestSnapshotRejectsDamage(t *testing.T) {
	valid, err := encodeSnapshot([]snapshotEntry{
		{Key: "sim|SP|tiny|BASE|baseline|1", Cell: simCell{Seconds: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"garbage", []byte("not a snapshot at all")},
		{"truncated header", valid[:10]},
		{"truncated payload", valid[:len(valid)-40]},
		{"truncated checksum", valid[:len(valid)-1]},
		{"flipped payload byte", corrupt(func(b []byte) []byte { b[20] ^= 0xff; return b })},
		{"flipped checksum byte", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })},
		{"wrong version magic", corrupt(func(b []byte) []byte { b[7] = '9'; return b })},
		{"length field lies", corrupt(func(b []byte) []byte { b[8]++; return b })},
		{"non-json payload with fixed checksum", func() []byte {
			// Structurally valid wrapper, invalid payload: exercises the
			// JSON layer of validation separately from the checksum.
			bad := []byte("{{{{")
			data, _ := encodeSnapshotRaw(bad)
			return data
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if entries, err := decodeSnapshot(tc.data); err == nil {
				t.Fatalf("damaged snapshot accepted with %d entries", len(entries))
			}
			// The service-level load must quietly start cold.
			path := snapPath(t)
			if len(tc.data) > 0 {
				if err := os.WriteFile(path, tc.data, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			s := New(Config{Workers: 1, SimCacheSnapshot: path})
			defer s.Close()
			if n := s.simCache.Len(); n != 0 {
				t.Errorf("cache has %d entries after loading damaged snapshot, want 0", n)
			}
			if _, loaded := s.Metrics().SnapshotCounts(); loaded != 0 {
				t.Errorf("metrics report %d loaded entries", loaded)
			}
		})
	}
}

// TestSnapshotMissingFileStartsCold: no file at the path is the normal
// first boot, not an error.
func TestSnapshotMissingFileStartsCold(t *testing.T) {
	s := New(Config{Workers: 1, SimCacheSnapshot: filepath.Join(t.TempDir(), "nope.snap")})
	defer s.Close()
	if n := s.simCache.Len(); n != 0 {
		t.Fatalf("cache has %d entries, want 0", n)
	}
}

// TestSnapshotWriterRendersCurrentCache: writeSnapshotTo emits a valid
// snapshot of the live cache.
func TestSnapshotWriterRendersCurrentCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	runSweepToDone(t, s, SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})

	var buf bytes.Buffer
	if err := s.writeSnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	entries, err := decodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(entries))
	}
	if entries[0].Key != simCellKey("SP", "tiny", "BASE", "baseline", 1) {
		t.Errorf("snapshot key %q", entries[0].Key)
	}
	if entries[0].Cell.Seconds <= 0 {
		t.Error("persisted cell lost its cost weight")
	}
}
