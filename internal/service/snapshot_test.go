package service

import (
	"os"
	"path/filepath"
	"testing"

	"valleymap/internal/experiments"
)

func snapPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "simcache.snap")
}

func runSweepToDone(t *testing.T, s *Service, req SimulateRequest) *SimulateResult {
	t.Helper()
	job, err := s.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, s, job.ID)
	if final.Status != JobDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	return final.Result
}

// TestSpillRestartWarm is the acceptance criterion: a valleyd restart
// over a warm spill directory followed by the same sweep request
// reports cached: true for every previously computed cell — including
// cells that were evicted from the memory tier, which the old one-file
// snapshot would have lost.
func TestSpillRestartWarm(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	req := SimulateRequest{Workloads: []string{"SP", "NW"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny"}

	// Memory capacity 1 forces three of the four cells to be evicted
	// (and spilled) while the sweep is still running.
	s1 := New(Config{Workers: 2, SimCacheEntries: 1, SpillDir: dir})
	cold := runSweepToDone(t, s1, req)
	for _, c := range cold.Cells {
		if c.Cached {
			t.Errorf("cold cell %s/%s reported cached", c.Workload, c.Scheme)
		}
	}
	s1.Close() // spills the resident tail and drains the write-behind queue
	if writes, _, _ := s1.Metrics().SpillCounts(); writes < 4 {
		t.Fatalf("spilled %d entries across eviction + Close, want >= 4", writes)
	}

	// "Restart": a brand-new service over the same spill directory,
	// still with memory capacity 1, so at most one cell can possibly be
	// served from memory — the rest must promote from disk.
	s2 := New(Config{Workers: 2, SimCacheEntries: 1, SpillDir: dir})
	defer s2.Close()
	if n := s2.simCache.DiskLen(); n < 4 {
		t.Fatalf("restarted service found %d spill entries, want >= 4", n)
	}
	warm := runSweepToDone(t, s2, req)
	for i, c := range warm.Cells {
		if !c.Cached {
			t.Errorf("cell %s/%s not served from the spill tier", c.Workload, c.Scheme)
		}
		if c.ResultJSON != cold.Cells[i].ResultJSON {
			t.Errorf("cell %s/%s metrics drifted across the restart", c.Workload, c.Scheme)
		}
	}
	if hits, misses := s2.Metrics().SimCacheCounts(); hits != 4 || misses != 0 {
		t.Errorf("restarted sweep hits=%d misses=%d, want 4/0", hits, misses)
	}
	if _, disk := s2.Metrics().TierHits(); disk == 0 {
		t.Error("no tier=disk hits recorded — the warm sweep never touched the spill store")
	}
}

// TestLegacySnapshotMigration: a VSIMCSH1 file from an older daemon is
// absorbed into the spill directory exactly once — entries serve as
// cache hits, the file is renamed aside, and a second boot does not
// re-migrate.
func TestLegacySnapshotMigration(t *testing.T) {
	path := snapPath(t)
	dir := filepath.Join(t.TempDir(), "spill")
	key := simCellKey("SP", "tiny", "BASE", "baseline", 1)
	data, err := encodeSnapshot([]snapshotEntry{
		{Key: key, Cell: simCell{Res: experiments.ResultJSON{ExecTimePS: 123, IPS: 4.5}, Seconds: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s1 := New(Config{Workers: 1, SimCacheSnapshot: path, SpillDir: dir})
	if !s1.simCache.Contains(key) {
		t.Fatal("migrated entry not resident")
	}
	if got := s1.Metrics().LegacyMigrated(); got != 1 {
		t.Errorf("LegacyMigrated = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("legacy file still at %s after migration", path)
	}
	if _, err := os.Stat(path + migratedSuffix); err != nil {
		t.Errorf("legacy file not renamed aside: %v", err)
	}
	// The migrated cell must serve a sweep as a cache hit with the
	// persisted metrics, not re-simulate.
	res := runSweepToDone(t, s1, SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if !res.Cells[0].Cached {
		t.Error("migrated cell not served from cache")
	}
	if res.Cells[0].ExecTimePS != 123 {
		t.Errorf("migrated cell ExecTimePS = %d, want the snapshot's 123", res.Cells[0].ExecTimePS)
	}
	s1.Close()

	// Second boot with the same config: the file is gone (renamed), so
	// nothing migrates, but the entry survives in the spill dir.
	s2 := New(Config{Workers: 1, SimCacheSnapshot: path, SpillDir: dir})
	defer s2.Close()
	if got := s2.Metrics().LegacyMigrated(); got != 0 {
		t.Errorf("second boot re-migrated %d entries", got)
	}
	if !s2.simCache.Contains(key) {
		t.Error("entry lost after second boot")
	}
}

// TestLegacySnapshotLoadOnlyWithoutSpill: with no spill dir the legacy
// file hydrates the memory tier but is never renamed or rewritten, so
// no data is destroyed before the operator opts into the spill tier.
func TestLegacySnapshotLoadOnlyWithoutSpill(t *testing.T) {
	path := snapPath(t)
	key := simCellKey("SP", "tiny", "BASE", "baseline", 1)
	data, err := encodeSnapshot([]snapshotEntry{{Key: key, Cell: simCell{Seconds: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, SimCacheSnapshot: path})
	defer s.Close()
	if !s.simCache.Contains(key) {
		t.Fatal("legacy entry not loaded")
	}
	if got := s.Metrics().LegacyMigrated(); got != 0 {
		t.Errorf("LegacyMigrated = %d without a spill dir", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("legacy file touched by a load-only boot: %v", err)
	}
}

// TestSnapshotRoundTripPreservesSecondsAndRecency: the persisted cost
// weight survives, so eviction stays cost-aware after migration.
func TestSnapshotRoundTrip(t *testing.T) {
	entries := []snapshotEntry{
		{Key: "sim|SP|tiny|BASE|baseline|1", Cell: simCell{Res: experiments.ResultJSON{ExecTimePS: 123, IPS: 4.5}, Seconds: 0.25}},
		{Key: "sim|MT|full|ALL|3d|2", Cell: simCell{Res: experiments.ResultJSON{ExecTimePS: 999}, Seconds: 120.5}},
	}
	data, err := encodeSnapshot(entries)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip kept %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Errorf("entry %d drifted: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

// TestSnapshotRejectsDamage: truncated, corrupt, wrong-version and
// garbage legacy snapshot files all load as a clean empty cache — a
// cold start, never a crash, partial state or a destructive rename.
func TestSnapshotRejectsDamage(t *testing.T) {
	valid, err := encodeSnapshot([]snapshotEntry{
		{Key: "sim|SP|tiny|BASE|baseline|1", Cell: simCell{Seconds: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte) []byte) []byte {
		return mutate(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"garbage", []byte("not a snapshot at all")},
		{"truncated header", valid[:10]},
		{"truncated payload", valid[:len(valid)-40]},
		{"truncated checksum", valid[:len(valid)-1]},
		{"flipped payload byte", corrupt(func(b []byte) []byte { b[20] ^= 0xff; return b })},
		{"flipped checksum byte", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })},
		{"wrong version magic", corrupt(func(b []byte) []byte { b[7] = '9'; return b })},
		{"length field lies", corrupt(func(b []byte) []byte { b[8]++; return b })},
		{"non-json payload with fixed checksum", func() []byte {
			// Structurally valid wrapper, invalid payload: exercises the
			// JSON layer of validation separately from the checksum.
			bad := []byte("{{{{")
			data, _ := encodeSnapshotRaw(bad)
			return data
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if entries, err := decodeSnapshot(tc.data); err == nil {
				t.Fatalf("damaged snapshot accepted with %d entries", len(entries))
			}
			// The service-level load must quietly start cold and leave
			// the damaged file in place for inspection.
			path := snapPath(t)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			s := New(Config{Workers: 1, SimCacheSnapshot: path, SpillDir: filepath.Join(t.TempDir(), "spill")})
			defer s.Close()
			if n := s.simCache.MemLen(); n != 0 {
				t.Errorf("cache has %d entries after loading damaged snapshot, want 0", n)
			}
			if got := s.Metrics().LegacyMigrated(); got != 0 {
				t.Errorf("metrics report %d migrated entries", got)
			}
			if _, err := os.Stat(path); err != nil {
				t.Errorf("damaged legacy file was moved or deleted: %v", err)
			}
		})
	}
}

// TestSnapshotMissingFileStartsCold: no file at the path is the normal
// first boot, not an error.
func TestSnapshotMissingFileStartsCold(t *testing.T) {
	s := New(Config{Workers: 1, SimCacheSnapshot: filepath.Join(t.TempDir(), "nope.snap")})
	defer s.Close()
	if n := s.simCache.MemLen(); n != 0 {
		t.Fatalf("cache has %d entries, want 0", n)
	}
}
