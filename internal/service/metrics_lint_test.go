package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsExpositionLint holds the full /metrics document to the
// Prometheus text-format contract, promlint-style: every family carries
// exactly one # HELP and one # TYPE line before its first sample,
// histogram bucket series are cumulative and end at le="+Inf" matching
// _count, and no series (name + label set) appears twice. Traffic is
// generated first so every histogram family has live samples.
func TestMetricsExpositionLint(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Exercise the instruments: an HTTP request, a profile (streaming
	// pipeline stages) and a sweep (queue wait + cell seconds).
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	// Unknown paths must be observed too, all folded into path="other"
	// so scanning traffic can't grow the label table.
	if _, err := http.Get(ts.URL + "/no/such/endpoint"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(ts.URL + "/also/not/real"); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{Workload: "SP", Scale: "tiny"})
	resp.Body.Close()
	job, err := svc.Simulate(SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, svc, job.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the version 0.0.4 text exposition type", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lintExposition(t, string(body))

	for _, fam := range []string{
		"valleyd_http_request_duration_seconds",
		"valleyd_queue_wait_seconds",
		"valleyd_cell_simulation_seconds",
		"valleyd_stream_stage_seconds",
	} {
		if !strings.Contains(string(body), "# TYPE "+fam+" histogram") {
			t.Errorf("histogram family %s missing from /metrics", fam)
		}
		if !strings.Contains(string(body), fam+"_count") {
			t.Errorf("histogram family %s has no samples", fam)
		}
	}

	if got := strings.Count(string(body), `valleyd_http_request_duration_seconds_count{path="other",code="404"}`); got != 1 {
		t.Errorf("unknown paths produced %d path=\"other\" 404 series, want exactly 1 (cap broken?)", got)
	}
}

// lintExposition applies the format rules to one exposition document.
func lintExposition(t *testing.T, body string) {
	t.Helper()
	type family struct {
		help, typ int
		typName   string
	}
	families := map[string]*family{}
	fam := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{}
			families[name] = f
		}
		return f
	}
	// sampleFamily maps a sample's metric name to its declaring family:
	// histogram samples use the _bucket/_sum/_count suffixes of the
	// family that declared TYPE histogram.
	sampleFamily := func(name string) (string, *family) {
		if f, ok := families[name]; ok && f.typ > 0 {
			return name, f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base == name {
				continue
			}
			if f, ok := families[base]; ok && f.typName == "histogram" {
				return base, f
			}
		}
		return name, nil
	}

	seenSeries := map[string]bool{}
	type bucket struct {
		le string
		v  float64
	}
	buckets := map[string][]bucket{} // family+labels (minus le) → cumulative counts
	counts := map[string]float64{}   // family+labels → _count value
	var bucketOrder []string

	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("line %d: HELP without text: %q", lineNo, line)
			}
			fam(name).help++
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("line %d: TYPE without a type: %q", lineNo, line)
				continue
			}
			f := fam(name)
			f.typ++
			f.typName = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment form: %q", lineNo, line)
			continue
		}

		// Sample line: name{labels} value — split at the last space.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Errorf("line %d: sample without a value: %q", lineNo, line)
			continue
		}
		series, valStr := line[:cut], line[cut+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: bad sample value %q", lineNo, valStr)
			continue
		}
		if seenSeries[series] {
			t.Errorf("line %d: duplicate series %q", lineNo, series)
		}
		seenSeries[series] = true

		name := series
		labels := ""
		if j := strings.IndexByte(series, '{'); j >= 0 {
			name, labels = series[:j], series[j:]
		}
		famName, f := sampleFamily(name)
		if f == nil {
			t.Errorf("line %d: sample %q has no # TYPE declaration above it", lineNo, name)
			continue
		}
		if f.help != 1 || f.typ != 1 {
			t.Errorf("line %d: family %s has %d HELP / %d TYPE lines before this sample, want exactly 1/1",
				lineNo, famName, f.help, f.typ)
		}

		if f.typName == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le := ""
				rest := labels
				for _, pair := range strings.Split(strings.Trim(rest, "{}"), ",") {
					if v, ok := strings.CutPrefix(pair, `le="`); ok {
						le = strings.TrimSuffix(v, `"`)
					}
				}
				if le == "" {
					t.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
					continue
				}
				rest = strings.ReplaceAll(labels, `le="`+le+`",`, "")
				rest = strings.ReplaceAll(rest, `,le="`+le+`"`, "")
				rest = strings.ReplaceAll(rest, `le="`+le+`"`, "")
				if rest == "{}" {
					rest = "" // unlabeled family: match the bare _count series
				}
				key := famName + "|" + rest
				if _, ok := buckets[key]; !ok {
					bucketOrder = append(bucketOrder, key)
				}
				buckets[key] = append(buckets[key], bucket{le: le, v: val})
			case strings.HasSuffix(name, "_count"):
				counts[famName+"|"+labels] = val
			}
		}
	}

	for _, key := range bucketOrder {
		bs := buckets[key]
		last := -1.0
		for _, b := range bs {
			if b.v < last {
				t.Errorf("histogram %s: bucket le=%q count %g below previous %g (not cumulative)", key, b.le, b.v, last)
			}
			last = b.v
		}
		if bs[len(bs)-1].le != "+Inf" {
			t.Errorf("histogram %s: last bucket le=%q, want +Inf", key, bs[len(bs)-1].le)
		}
		if c, ok := counts[key]; !ok {
			t.Errorf("histogram %s: no _count series", key)
		} else if c != bs[len(bs)-1].v {
			t.Errorf("histogram %s: _count %g != +Inf bucket %g", key, c, bs[len(bs)-1].v)
		}
	}
}
