package service

// Admission-control tests: the EWMA cost model, deadline-infeasible
// shedding (429 + Retry-After), Retry-After on capacity 503s, and the
// degraded mode that serves fully-cached sweeps inline past a
// saturated pool.

import (
	"math"
	"net/http"
	"testing"
	"time"

	"valleymap/internal/testutil"
)

func TestCostModelEWMA(t *testing.T) {
	c := newCostModel()
	if _, ok := c.estimate("baseline", "tiny"); ok {
		t.Error("empty model must report no estimate")
	}
	if _, ok := c.mean(); ok {
		t.Error("empty model must report no mean")
	}

	c.observe("baseline", "tiny", 2.0)
	if got, ok := c.estimate("baseline", "tiny"); !ok || got != 2.0 {
		t.Errorf("first observation: estimate = %v, %v; want 2.0, true", got, ok)
	}
	// EWMA folding: 2.0 + 0.3*(4.0-2.0) = 2.6.
	c.observe("baseline", "tiny", 4.0)
	if got, _ := c.estimate("baseline", "tiny"); math.Abs(got-2.6) > 1e-9 {
		t.Errorf("EWMA estimate = %v, want 2.6", got)
	}
	// Unknown class falls back to the global mean, not to zero.
	if got, ok := c.estimate("3d", "full"); !ok || got <= 0 {
		t.Errorf("unknown class estimate = %v, %v; want the positive global mean", got, ok)
	}
	// Garbage observations are ignored.
	before, _ := c.estimate("baseline", "tiny")
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		c.observe("baseline", "tiny", bad)
	}
	if after, _ := c.estimate("baseline", "tiny"); after != before {
		t.Errorf("garbage observations moved the estimate %v -> %v", before, after)
	}
}

func TestClampRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		secs float64
		want int
	}{{-3, 1}, {0, 1}, {0.2, 1}, {1.5, 2}, {59, 59}, {1e9, 600}} {
		if got := clampRetryAfter(tc.secs); got != tc.want {
			t.Errorf("clampRetryAfter(%v) = %d, want %d", tc.secs, got, tc.want)
		}
	}
}

// TestAdmissionShedsInfeasibleSweep seeds the cost model with a cell
// cost far beyond the request's deadline budget: admission must shed
// the sweep up front as a 429 with a Retry-After hint, count it, and
// create no job.
func TestAdmissionShedsInfeasibleSweep(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1})
	base := newServerFor(t, svc)

	// Pretend history: tiny baseline cells take 5 s each. Eight of them
	// on one worker can never meet a 100 ms deadline.
	svc.costs.observe("baseline", "tiny", 5.0)

	resp := postJSON(t, base+"/v1/simulate?deadline_ms=100", slowSweep)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive seconds hint", ra)
	}
	if got := svc.Metrics().JobsShed(); got != 1 {
		t.Errorf("JobsShed = %d, want 1", got)
	}
	// Shedding happens before job creation, so no job handle exists.
	if _, ok := svc.Job("job-1"); ok {
		t.Error("shed sweep still created a job")
	}

	// The same sweep with a generous budget is admitted: shedding is a
	// deadline decision, not a blanket rejection.
	resp2 := postJSON(t, base+"/v1/simulate?deadline_ms=600000", slowSweep)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("feasible sweep: status = %d, want 202", resp2.StatusCode)
	}
}

// TestColdBootAdmitsDeadlineSweep pins boot-time admission: a freshly
// started daemon has an empty cost model, and "no history" must read
// as "feasibility unknown — admit", never as a shed. A cold EWMA that
// sheds (or stamps a Retry-After onto an accepted response) would turn
// every post-restart deadline-bearing sweep into a spurious 429.
func TestColdBootAdmitsDeadlineSweep(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 2})
	base := newServerFor(t, svc)

	resp := postJSON(t, base+"/v1/simulate?deadline_ms=60000", SimulateRequest{
		Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny",
	})
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("cold-boot deadline sweep: status = %d, want 202", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("accepted sweep carries Retry-After %q, want none", ra)
	}
	var job struct {
		ID string `json:"id"`
	}
	decodeBody(t, resp, &job)
	if got := svc.Metrics().JobsShed(); got != 0 {
		t.Errorf("JobsShed = %d after a cold-boot admit, want 0", got)
	}
	// The admitted sweep also finishes inside its budget, so the cold
	// path is admit-and-run, not admit-and-strand.
	if j := waitJob(t, svc, job.ID); j.Status != JobDone {
		t.Fatalf("cold-boot sweep ended %s: %s", j.Status, j.Error)
	}
}

// TestOverload503CarriesRetryAfter: capacity rejections (job cap full)
// surface as 503 with a Retry-After header so clients back off instead
// of tight-looping.
func TestOverload503CarriesRetryAfter(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1, MaxJobs: 1})
	base := newServerFor(t, svc)

	// Park the only worker so the first job stays in flight and pins
	// the job cap.
	gate := make(chan struct{})
	svc.pool.submit(func() { <-gate })
	defer close(gate)

	resp := postJSON(t, base+"/v1/simulate", SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first sweep: status = %d, want 202", resp.StatusCode)
	}
	resp2 := postJSON(t, base+"/v1/simulate", SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE"}, Scale: "tiny"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap sweep: status = %d, want 503", resp2.StatusCode)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without a Retry-After header")
	}
}

// TestDegradedServesCachedSweepInline: with every worker busy and the
// queue half full, a sweep that is already fully resident in the sim
// cache must not queue behind the backlog — it runs inline on the
// dispatcher (degraded mode), completes, and reports every cell cached.
func TestDegradedServesCachedSweepInline(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	svc := New(Config{Workers: 1, QueueDepth: 2})
	defer svc.Close()

	req := SimulateRequest{Workloads: []string{"SP"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny"}
	job, err := svc.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	if j := waitJob(t, svc, job.ID); j.Status != JobDone {
		t.Fatalf("warm-up sweep ended %s: %s", j.Status, j.Error)
	}

	// Saturate: the only worker parks on the gate and one more wedged
	// task fills half the queue.
	gate := make(chan struct{})
	svc.pool.submit(func() { <-gate })
	svc.pool.submit(func() { <-gate })
	defer close(gate)
	waitFor(t, 5*time.Second, func() bool { return svc.poolSaturated() })

	job2, err := svc.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	j2 := waitJob(t, svc, job2.ID)
	if j2.Status != JobDone {
		t.Fatalf("degraded sweep ended %s: %s", j2.Status, j2.Error)
	}
	for _, cell := range j2.Result.Cells {
		if !cell.Cached {
			t.Errorf("degraded cell %s/%s was recomputed, want cache hit", cell.Workload, cell.Scheme)
		}
	}
	if got := svc.Metrics().DegradedSweeps(); got != 1 {
		t.Errorf("DegradedSweeps = %d, want 1", got)
	}
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
