package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"valleymap/internal/testutil"
)

// TestStressStreamingClients hammers the event bus with -race on: many
// concurrent streaming clients, half disconnecting mid-stream, over one
// running sweep. Asserts: no event is delivered twice to any client
// (dense ascending seq per connection), full-stream clients see every
// cell before the terminal event, and the goroutine count returns to
// baseline once clients and service are gone.
func TestStressStreamingClients(t *testing.T) {
	baseline := runtime.NumGoroutine()

	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())

	job, err := svc.Simulate(SimulateRequest{
		Workloads: []string{"MT", "LU", "SC", "SP"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			disconnect := i%2 == 1
			if err := streamClient(ts, job.ID, disconnect); err != nil {
				errs <- fmt.Errorf("client %d: %w", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if j := waitJob(t, svc, job.ID); j.Status != JobDone {
		t.Fatalf("sweep ended %s: %s", j.Status, j.Error)
	}

	ts.Close()
	svc.Close()
	testutil.WaitGoroutines(t, baseline)
}

// streamClient reads one event stream, checking per-connection delivery
// invariants. With disconnect set, it drops the connection after the
// first few events (the mid-stream disconnect case).
func streamClient(ts *httptest.Server, jobID string, disconnect bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}

	br := bufio.NewReader(resp.Body)
	next := 0
	sawTerminal := false
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF || (err != nil && disconnect && ctx.Err() == nil) {
			break
		}
		if err != nil {
			if sawTerminal {
				break
			}
			return err
		}
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("bad event line %q: %w", line, err)
		}
		// The delivery invariant: dense ascending seq — a duplicate or
		// out-of-order delivery breaks this immediately.
		if ev.Seq != next {
			return fmt.Errorf("got seq %d, want %d (duplicate or gap)", ev.Seq, next)
		}
		next++
		switch ev.Type {
		case EventDone, EventFailed:
			sawTerminal = true
		case EventCell:
			if sawTerminal {
				return fmt.Errorf("cell event after terminal")
			}
		}
		if disconnect && next >= 3 {
			cancel() // hard mid-stream disconnect
			return nil
		}
		if sawTerminal {
			return nil
		}
	}
	if !disconnect && !sawTerminal {
		return fmt.Errorf("stream ended without terminal event")
	}
	return nil
}

// TestStressRestartMidSweep: a service shut down while a sweep is
// running drains cleanly (Close waits for in-flight cells), spills
// what it computed, and a restarted service over the same spill dir
// serves the repeat sweep entirely from cache while its own streaming
// clients see a well-formed event stream.
func TestStressRestartMidSweep(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := filepath.Join(t.TempDir(), "spill")
	req := SimulateRequest{
		Workloads: []string{"MT", "LU", "SP"},
		Schemes:   []string{"BASE", "PAE"},
		Scale:     "tiny",
	}

	s1 := New(Config{Workers: 2, SpillDir: dir})
	job, err := s1.Simulate(req)
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe a client, observe at least one cell land, then
	// "restart" the daemon under it: Close drains the sweep, spills the
	// cache, and terminates the stream cleanly for the subscriber.
	sub, ok := s1.JobEvents(job.ID, 0)
	if !ok {
		t.Fatal("subscribe failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	seenCell := false
	for !seenCell {
		ev, eos, err := sub.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if eos {
			break
		}
		seenCell = ev.Type == EventCell
	}
	sub.Close()
	if !seenCell {
		t.Fatal("no cell observed before restart")
	}
	s1.Close()
	if j, ok := s1.Job(job.ID); !ok || j.Status != JobDone {
		t.Fatalf("drained job status: %+v", j)
	}

	// Restart: the same sweep must be all cache hits, delivered over a
	// fresh streaming connection with the full event contract intact.
	s2 := New(Config{Workers: 2, SpillDir: dir})
	ts := httptest.NewServer(s2.Handler())
	resp := postJSON(t, ts.URL+"/v1/simulate?stream=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	evs := collectEvents(t, resp.Body)
	resp.Body.Close()
	checkTranscript(t, evs, 0, 6)
	for _, ev := range evs {
		if ev.Type == EventCell && !ev.Cell.Cached {
			t.Errorf("post-restart cell %s/%s not served from the restored cache", ev.Cell.Workload, ev.Cell.Scheme)
		}
	}

	ts.Close()
	s2.Close()
	testutil.WaitGoroutines(t, baseline)
}
