package service

// Coordinator/worker integration tests: real worker daemons behind real
// HTTP listeners, a coordinator sharding sweeps across them by
// cache-affinity rendezvous hashing, and the failure modes the cluster
// must absorb — dead peers, full-cluster restarts, empty peer sets.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"valleymap/internal/cluster"
	"valleymap/internal/testutil"
)

// clusterSweep is a 4×4 grid — 16 cells, enough that rendezvous
// hashing splitting them all onto one of two peers is a ~2·2⁻¹⁶
// coincidence, so "both peers used" is a stable assertion.
var clusterSweep = SimulateRequest{
	Workloads: []string{"MT", "LU", "SC", "SP"},
	Schemes:   []string{"BASE", "RMP", "PAE", "FAE"},
	Scale:     "tiny",
}

// serveOn starts an http.Server for h on addr ("" = a fresh loopback
// port) and returns the server and its base URL. Unlike httptest, the
// listen address can be re-bound after a close, which is what the
// restart tests need: rendezvous ownership keys on the peer URL, so a
// "restarted" worker must come back at the same address.
func serveOn(t *testing.T, addr string, h http.Handler) (*http.Server, string) {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // closed by the test
	return srv, "http://" + ln.Addr().String()
}

// startWorker runs a worker service behind a real listener. spillDir
// may be empty (memory-only cache). The caller owns shutdown.
func startWorker(t *testing.T, addr, spillDir string) (*Service, *http.Server, string) {
	t.Helper()
	svc := New(Config{Workers: 2, SpillDir: spillDir})
	srv, url := serveOn(t, addr, svc.Handler())
	return svc, srv, url
}

func stopWorker(t *testing.T, svc *Service, srv *http.Server) {
	t.Helper()
	if err := srv.Close(); err != nil {
		t.Fatalf("closing worker server: %v", err)
	}
	svc.Close()
}

// newCoordinator builds a coordinator service over the given peer URLs
// with fast failure detection, cleaned up by the test.
func newCoordinator(t *testing.T, peers []string) *Service {
	t.Helper()
	cl := cluster.New(cluster.Options{
		Peers:        peers,
		StallTimeout: 30 * time.Second,
		DownCooldown: 200 * time.Millisecond,
	})
	svc := New(Config{Workers: 2, Cluster: cl})
	t.Cleanup(svc.Close)
	return svc
}

// runClusterSweep runs req through the coordinator to a terminal state
// and returns the finished job (failing the test on a non-done end).
func runClusterSweep(t *testing.T, coord *Service, req SimulateRequest) Job {
	t.Helper()
	job, err := coord.SimulateCtx(context.Background(), req)
	if err != nil {
		t.Fatalf("SimulateCtx: %v", err)
	}
	j := waitJob(t, coord, job.ID)
	if j.Status != JobDone {
		t.Fatalf("job ended %q (error %q), want done", j.Status, j.Error)
	}
	if j.Result == nil || len(j.Result.Cells) != len(req.Workloads)*len(req.Schemes) {
		t.Fatalf("job result has %d cells, want %d", len(j.Result.Cells), len(req.Workloads)*len(req.Schemes))
	}
	for i, c := range j.Result.Cells {
		if c.Workload == "" {
			t.Fatalf("cell %d never landed: %+v", i, c)
		}
	}
	return j
}

// singleNodeTruth runs req on a plain single-node service and returns
// exec time by "workload/scheme" — the bit-exact reference the cluster
// results must match (engine determinism is the contract that makes
// this comparison legal).
func singleNodeTruth(t *testing.T, req SimulateRequest) map[string]int64 {
	t.Helper()
	svc := New(Config{Workers: 4})
	defer svc.Close()
	job, err := svc.Simulate(req)
	if err != nil {
		t.Fatalf("single-node Simulate: %v", err)
	}
	j := waitJob(t, svc, job.ID)
	if j.Status != JobDone {
		t.Fatalf("single-node job ended %q: %s", j.Status, j.Error)
	}
	truth := map[string]int64{}
	for _, c := range j.Result.Cells {
		truth[c.Workload+"/"+c.Scheme] = c.ExecTimePS
	}
	return truth
}

func checkAgainstTruth(t *testing.T, j Job, truth map[string]int64) {
	t.Helper()
	for _, c := range j.Result.Cells {
		want, ok := truth[c.Workload+"/"+c.Scheme]
		if !ok {
			t.Errorf("cell %s/%s has no single-node reference", c.Workload, c.Scheme)
			continue
		}
		if c.ExecTimePS != want {
			t.Errorf("cell %s/%s exec time %d differs from single-node truth %d", c.Workload, c.Scheme, c.ExecTimePS, want)
		}
	}
}

// TestClusterShardedSweep: a 4×4 sweep over two live workers completes,
// bit-matches single-node execution, uses both peers, and on repeat is
// served entirely from the owning workers' caches — the coordinator
// itself never caches remote results, so cached:true proves affinity
// routed each repeat cell back to the worker that computed it.
func TestClusterShardedSweep(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	w1, s1, u1 := startWorker(t, "", "")
	defer stopWorker(t, w1, s1)
	w2, s2, u2 := startWorker(t, "", "")
	defer stopWorker(t, w2, s2)
	coord := newCoordinator(t, []string{u1, u2})

	j := runClusterSweep(t, coord, clusterSweep)
	checkAgainstTruth(t, j, singleNodeTruth(t, clusterSweep))

	disp := coord.Metrics().ClusterDispatches()
	if len(disp) < 2 || disp[u1] == 0 || disp[u2] == 0 {
		t.Errorf("dispatches did not use both peers: %v", disp)
	}
	if n := coord.Metrics().ClusterLocalCells(); n != 0 {
		t.Errorf("%d cells fell back to local execution with both peers healthy", n)
	}

	// Repeat: every cell must come back cached from its owning worker.
	j2 := runClusterSweep(t, coord, clusterSweep)
	for _, c := range j2.Result.Cells {
		if !c.Cached {
			t.Errorf("repeat cell %s/%s not served from its owner's cache", c.Workload, c.Scheme)
		}
	}
	checkAgainstTruth(t, j2, singleNodeTruth(t, clusterSweep))
}

// TestClusterRestartWarmAffinity is the acceptance pin for the sharding
// design: after a FULL cluster restart (coordinator and both workers,
// spill dirs retained, same addresses), a repeat sweep is served
// entirely cached:true — each cell from the worker whose spill tier
// holds it — with at least two peers in the dispatch accounting.
func TestClusterRestartWarmAffinity(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	spill1, spill2 := t.TempDir(), t.TempDir()

	w1, s1, u1 := startWorker(t, "", spill1)
	w2, s2, u2 := startWorker(t, "", spill2)
	coordA := newCoordinator(t, []string{u1, u2})
	runClusterSweep(t, coordA, clusterSweep)

	// Full restart: workers close (spilling their resident cells),
	// coordinator discarded, then everything comes back on the same
	// addresses over the same spill dirs.
	stopWorker(t, w1, s1)
	stopWorker(t, w2, s2)
	coordA.Close()
	addr1, addr2 := strings.TrimPrefix(u1, "http://"), strings.TrimPrefix(u2, "http://")
	w1, s1, u1b := startWorker(t, addr1, spill1)
	defer stopWorker(t, w1, s1)
	w2, s2, u2b := startWorker(t, addr2, spill2)
	defer stopWorker(t, w2, s2)
	if u1b != u1 || u2b != u2 {
		t.Fatalf("restarted workers moved: %s/%s -> %s/%s", u1, u2, u1b, u2b)
	}
	coordB := newCoordinator(t, []string{u1, u2})

	j := runClusterSweep(t, coordB, clusterSweep)
	for _, c := range j.Result.Cells {
		if !c.Cached {
			t.Errorf("post-restart cell %s/%s re-simulated instead of loading from its owner's spill tier", c.Workload, c.Scheme)
		}
	}
	disp := coordB.Metrics().ClusterDispatches()
	if len(disp) < 2 || disp[u1] == 0 || disp[u2] == 0 {
		t.Errorf("post-restart dispatches did not use both peers: %v", disp)
	}
	checkAgainstTruth(t, j, singleNodeTruth(t, clusterSweep))
}

// TestClusterDeadPeerSteal: one configured worker is dead from the
// start. Its cells must be stolen onto the live worker (or the local
// fallback) without losing a single cell, and the dead peer must show
// up as down in the health table.
func TestClusterDeadPeerSteal(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	w1, s1, u1 := startWorker(t, "", "")
	defer stopWorker(t, w1, s1)
	// A listener that opens and immediately closes: a dead address no
	// other test is using.
	deadSrv, deadURL := serveOn(t, "", http.NotFoundHandler())
	deadSrv.Close() //nolint:errcheck // dying is its job

	cl := cluster.New(cluster.Options{Peers: []string{u1, deadURL}, DownCooldown: time.Minute})
	coord := New(Config{Workers: 2, Cluster: cl})
	t.Cleanup(coord.Close)

	j := runClusterSweep(t, coord, clusterSweep)
	checkAgainstTruth(t, j, singleNodeTruth(t, clusterSweep))
	if n := coord.Metrics().ClusterSteals(); n == 0 {
		t.Error("no steals recorded though one peer was dead")
	}
	if states := cl.PeerStates(); states[deadURL] {
		t.Errorf("dead peer still reported up: %v", states)
	}
	if states := cl.PeerStates(); !states[u1] {
		t.Errorf("live peer reported down: %v", states)
	}
}

// TestClusterAllPeersDownLocalFallback: with every peer dead the
// coordinator must still answer sweeps — first by exhausting remote
// rounds into the local fallback, then (peers in cooldown) by skipping
// cluster dispatch entirely.
func TestClusterAllPeersDownLocalFallback(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	deadSrv, deadURL := serveOn(t, "", http.NotFoundHandler())
	deadSrv.Close() //nolint:errcheck

	cl := cluster.New(cluster.Options{Peers: []string{deadURL}, DownCooldown: time.Minute})
	coord := New(Config{Workers: 2, Cluster: cl})
	t.Cleanup(coord.Close)

	req := SimulateRequest{Workloads: []string{"MT", "LU"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny"}
	j := runClusterSweep(t, coord, req)
	checkAgainstTruth(t, j, singleNodeTruth(t, req))
	if n := coord.Metrics().ClusterLocalCells(); n != int64(len(req.Workloads)*len(req.Schemes)) {
		t.Errorf("local fallback ran %d cells, want all %d", n, len(req.Workloads)*len(req.Schemes))
	}

	// Second sweep: the peer is now in cooldown, so dispatchCluster
	// declines up front and the plain local path serves from cache.
	j2 := runClusterSweep(t, coord, req)
	for _, c := range j2.Result.Cells {
		if !c.Cached {
			t.Errorf("repeat cell %s/%s not served from the local cache", c.Workload, c.Scheme)
		}
	}
}

// TestWorkerCellsEndpoint exercises the wire protocol directly: a
// well-formed batch streams one update per cell plus a done terminal;
// vocabulary and shape errors are plain HTTP errors before any stream
// starts.
func TestWorkerCellsEndpoint(t *testing.T) {
	svc, ts := newTestServer(t)
	_ = svc

	post := func(body any) *http.Response {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/cells", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post(cluster.Batch{
		Cells: []cluster.Cell{{Workload: "MT", Scheme: "BASE"}, {Workload: "MT", Scheme: "PAE"}},
		Scale: "tiny",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var cells int
	var sawDone bool
	dec := json.NewDecoder(resp.Body)
	for {
		var u cluster.Update
		if err := dec.Decode(&u); err != nil {
			break
		}
		switch u.Type {
		case cluster.UpdateCell:
			cells++
			var cr CellResult
			if err := json.Unmarshal(u.Payload, &cr); err != nil {
				t.Fatalf("cell payload does not decode as a CellResult: %v", err)
			}
			if cr.ExecTimePS <= 0 {
				t.Errorf("cell %s/%s has no exec time: %+v", u.Cell.Workload, u.Cell.Scheme, cr)
			}
		case cluster.UpdateDone:
			sawDone = true
		case cluster.UpdateFailed:
			t.Fatalf("batch failed: %s", u.Error)
		}
	}
	if cells != 2 || !sawDone {
		t.Fatalf("stream delivered %d cells (want 2), done=%v", cells, sawDone)
	}

	for _, tc := range []struct {
		name string
		body any
		want int
	}{
		{"unknown workload", cluster.Batch{Cells: []cluster.Cell{{Workload: "NOPE", Scheme: "BASE"}}}, http.StatusNotFound},
		{"unknown scheme", cluster.Batch{Cells: []cluster.Cell{{Workload: "MT", Scheme: "NOPE"}}}, http.StatusBadRequest},
		{"empty batch", cluster.Batch{}, http.StatusBadRequest},
	} {
		resp := post(tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestClusterEventStreamContract: remote cell results must merge into
// the job's event log under the same dense-seq contract as local ones —
// start first, one event per cell, the terminal record strictly last.
func TestClusterEventStreamContract(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	w1, s1, u1 := startWorker(t, "", "")
	defer stopWorker(t, w1, s1)
	w2, s2, u2 := startWorker(t, "", "")
	defer stopWorker(t, w2, s2)
	coord := newCoordinator(t, []string{u1, u2})

	job, err := coord.SimulateCtx(context.Background(), clusterSweep)
	if err != nil {
		t.Fatalf("SimulateCtx: %v", err)
	}
	evs := drainJobEvents(t, coord, job.ID)
	want := len(clusterSweep.Workloads)*len(clusterSweep.Schemes) + 2
	if len(evs) != want {
		t.Fatalf("transcript has %d events, want %d (start + cells + done)", len(evs), want)
	}
	if evs[0].Type != EventStart {
		t.Errorf("first event %q, want start", evs[0].Type)
	}
	seen := map[string]bool{}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d, want dense ascending", i, ev.Seq)
		}
		isLast := i == len(evs)-1
		if (ev.Type == EventDone || ev.Type == EventFailed) != isLast {
			t.Fatalf("terminal event misplaced at %d of %d", i, len(evs))
		}
		if ev.Type == EventCell {
			k := ev.Cell.Workload + "/" + ev.Cell.Scheme
			if seen[k] {
				t.Fatalf("cell %s delivered twice", k)
			}
			seen[k] = true
			if ev.Done != len(seen) {
				t.Errorf("cell event %d reports done=%d, want %d", i, ev.Done, len(seen))
			}
		}
	}
	if evs[len(evs)-1].Type != EventDone {
		t.Fatalf("terminal %q, want done", evs[len(evs)-1].Type)
	}
	if len(seen) != want-2 {
		t.Fatalf("saw %d distinct cells, want %d", len(seen), want-2)
	}
}

// TestRendezvousSpreadOverGrid guards the hash/key pairing end to end:
// the actual sim-cache keys of the 4×4 sweep must not all land on one
// of two peers (the distribution property TestRankSpreads checks in
// the cluster package, re-checked here over the real key format).
func TestRendezvousSpreadOverGrid(t *testing.T) {
	peers := []string{"http://worker1:8080", "http://worker2:8080"}
	owned := map[string]int{}
	for _, w := range clusterSweep.Workloads {
		for _, sc := range clusterSweep.Schemes {
			key := fmt.Sprintf("sim|%s|%s|%s|%s|%d", w, "tiny", sc, "baseline", int64(1))
			owned[cluster.Owner(key, peers)]++
		}
	}
	if len(owned) < 2 {
		t.Fatalf("all 16 grid cells hash to one peer: %v", owned)
	}
}
