package service

import (
	"net/http"

	"valleymap/internal/obs"
)

// JobTrace is the JSON shape of GET /v1/jobs/{id}/trace: the job's span
// forest from HTTP accept through enqueue, per-cell queue wait, trace
// build, engine run and cache put. Durations are microseconds; spans
// still open at render time report in_progress with their duration so
// far. DroppedSpans counts ring overwrites on runaway jobs — the tree
// re-roots orphans rather than losing them silently.
type JobTrace struct {
	JobID        string          `json:"job_id"`
	TraceID      string          `json:"trace_id"`
	DroppedSpans int             `json:"dropped_spans,omitempty"`
	Spans        []*obs.SpanNode `json:"spans"`
}

// JobTrace renders the named job's span tree. It reports false for
// unknown or evicted jobs; a known job always renders (an in-flight
// sweep shows its open spans as in_progress).
func (s *Service) JobTrace(id string) (JobTrace, bool) {
	tr, ok := s.jobs.trace(id)
	if !ok {
		return JobTrace{}, false
	}
	spans := tr.Tree()
	if spans == nil {
		spans = []*obs.SpanNode{}
	}
	return JobTrace{
		JobID:        id,
		TraceID:      tr.ID(),
		DroppedSpans: tr.Dropped(),
		Spans:        spans,
	}, true
}

func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jt, ok := s.JobTrace(id)
	if !ok {
		writeError(w, notFoundf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, jt)
}
