package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"valleymap/internal/gpusim"
	"valleymap/internal/mapping"
	"valleymap/internal/obs"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

// findSpan walks a span forest depth-first for the first span with the
// given name.
func findSpan(nodes []*spanNodeJSON, name string) *spanNodeJSON {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// spanNodeJSON mirrors obs.SpanNode for decoding the endpoint response
// without importing internal response details into assertions.
type spanNodeJSON struct {
	ID         int               `json:"id"`
	Name       string            `json:"name"`
	DurationUS int64             `json:"duration_us"`
	InProgress bool              `json:"in_progress"`
	Attrs      map[string]string `json:"attrs"`
	Children   []*spanNodeJSON   `json:"children"`
}

// TestJobTraceEndpoint runs a sweep end to end and asserts the span
// tree on GET /v1/jobs/{id}/trace covers the full path the issue
// promises: accept → enqueue → per-cell queue wait → trace build →
// engine run → cache put, with the same trace_id stamped on the job,
// the span tree and every NDJSON event.
func TestJobTraceEndpoint(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workloads: []string{"SP"}, Schemes: []string{"BASE", "PAE"}, Scale: "tiny",
	})
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hexTraceID.MatchString(job.TraceID) {
		t.Fatalf("job trace_id %q is not a 32-hex trace identifier", job.TraceID)
	}
	waitJob(t, svc, job.ID)

	tr, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status = %d", tr.StatusCode)
	}
	var jt struct {
		JobID        string          `json:"job_id"`
		TraceID      string          `json:"trace_id"`
		DroppedSpans int             `json:"dropped_spans"`
		Spans        []*spanNodeJSON `json:"spans"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&jt); err != nil {
		t.Fatal(err)
	}
	if jt.JobID != job.ID || jt.TraceID != job.TraceID {
		t.Errorf("trace identifies %s/%s, want %s/%s", jt.JobID, jt.TraceID, job.ID, job.TraceID)
	}
	if jt.DroppedSpans != 0 {
		t.Errorf("a 2-cell sweep dropped %d spans", jt.DroppedSpans)
	}

	root := findSpan(jt.Spans, "job")
	if root == nil {
		t.Fatalf("no root job span in %d top-level spans", len(jt.Spans))
	}
	if root.InProgress {
		t.Error("root span still in_progress after the job finished")
	}
	if findSpan([]*spanNodeJSON{root}, "enqueue") == nil {
		t.Error("no enqueue span under the root")
	}
	cell := findSpan([]*spanNodeJSON{root}, "cell")
	if cell == nil {
		t.Fatal("no cell span under the root")
	}
	if cell.Attrs["workload"] != "SP" {
		t.Errorf("cell span attrs = %v, want workload SP", cell.Attrs)
	}
	for _, name := range []string{"queue_wait", "trace_build", "engine_run", "cache_put"} {
		if findSpan([]*spanNodeJSON{root}, name) == nil {
			t.Errorf("no %s span anywhere under the root", name)
		}
	}
	eng := findSpan([]*spanNodeJSON{root}, "engine_run")
	if eng != nil && eng.Attrs["kernels_us"] == "" {
		t.Errorf("engine_run span lacks stage timings: %v", eng.Attrs)
	}

	// Every NDJSON event carries the job's trace_id.
	ev, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Body.Close()
	dec := json.NewDecoder(ev.Body)
	n := 0
	for dec.More() {
		var e JobEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.TraceID != job.TraceID {
			t.Errorf("event seq %d trace_id = %q, want %q", e.Seq, e.TraceID, job.TraceID)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}

	// The client's X-Trace-Id propagates into the job when provided.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"workloads":["SP"],"schemes":["BASE"],"scale":"tiny"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "cafe0000cafe0000cafe0000cafe0000")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job2 Job
	if err := json.NewDecoder(resp2.Body).Decode(&job2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if job2.TraceID != "cafe0000cafe0000cafe0000cafe0000" {
		t.Errorf("job trace_id = %q, want the client-supplied X-Trace-Id", job2.TraceID)
	}
	waitJob(t, svc, job2.ID)
}

func TestJobTraceUnknownJob(t *testing.T) {
	svc, ts := newTestServer(t)
	_ = svc
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestPoolPanicBackstop: a task that panics without its own recovery
// must not kill the shared worker — the pool recovers, counts the panic
// and keeps serving later tasks.
func TestPoolPanicBackstop(t *testing.T) {
	m := NewMetrics()
	p := newPool(1, 4, m, nil)
	defer p.close()

	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(func() {
		defer wg.Done()
		panic("boom")
	})
	wg.Wait()

	// The single worker must survive to run this.
	done := make(chan struct{})
	p.submit(func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker died after a panicking task")
	}
	if got := m.WorkerPanics(); got != 1 {
		t.Errorf("WorkerPanics = %d, want 1", got)
	}
}

// TestSweepCellPanicFailsJob drives runSweep with a workload whose
// trace build panics: the cell's recovery must mark the job failed with
// the panic message, count it in valleyd_worker_panics_total, and leave
// the dispatcher (and its span trace) cleanly finished rather than
// hanging the WaitGroup.
func TestSweepCellPanicFailsJob(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()

	boom := workload.Spec{
		Abbr: "BOOM", Name: "panicking workload",
		Build: func(workload.Scale) *trace.App { panic("trace build exploded") },
	}
	tr := obs.NewTrace("panictrace", 64)
	root := tr.Start(0, "job")
	job, err := svc.jobs.create("simulate", 1, tr)
	if err != nil {
		t.Fatal(err)
	}
	result := &SimulateResult{Config: "baseline", Scale: "tiny", Seed: 1, Cells: make([]CellResult, 1)}
	svc.sweepWG.Add(1)
	svc.runSweep(context.Background(), func() {}, job.ID, []workload.Spec{boom}, []mapping.Scheme{mapping.BASE},
		gpusim.Baseline(), workload.Tiny, 1, result, tr, root, false)

	j, ok := svc.Job(job.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if j.Status != JobFailed {
		t.Fatalf("job status = %s, want failed", j.Status)
	}
	if !strings.Contains(j.Error, "trace build exploded") {
		t.Errorf("job error %q does not carry the panic message", j.Error)
	}
	if got := svc.Metrics().WorkerPanics(); got != 1 {
		t.Errorf("WorkerPanics = %d, want 1", got)
	}
	jt, ok := svc.JobTrace(job.ID)
	if !ok {
		t.Fatal("no trace for the failed job")
	}
	cell := findSpan(toSpanJSON(jt.Spans), "cell")
	if cell == nil || cell.Attrs["panic"] == "" {
		t.Error("cell span is missing the panic annotation")
	}
}

// toSpanJSON round-trips obs span nodes through JSON into the test's
// decoding shape, so tree assertions are shared with the HTTP tests.
func toSpanJSON(v any) []*spanNodeJSON {
	b, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	var nodes []*spanNodeJSON
	if err := json.Unmarshal(b, &nodes); err != nil {
		return nil
	}
	return nodes
}
