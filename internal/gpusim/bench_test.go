package gpusim

import (
	"testing"

	"valleymap/internal/mapping"
	"valleymap/internal/workload"
)

// benchRun measures one full-system simulation of a workload × scheme
// cell. The trace is built once outside the timed loop, so the numbers
// are the simulator's own: event scheduling, the SM/NoC/LLC/DRAM models
// and the per-request bookkeeping.
func benchRun(b *testing.B, abbr string, s mapping.Scheme) {
	b.Helper()
	spec, ok := workload.ByAbbr(abbr)
	if !ok {
		b.Fatalf("unknown workload %s", abbr)
	}
	cfg := Baseline()
	app := spec.Build(workload.Tiny)
	m := mapping.MustNew(s, cfg.Layout, mapping.Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	var res Result
	for i := 0; i < b.N; i++ {
		res = Run(app, m, cfg)
	}
	b.ReportMetric(float64(res.Transactions), "transactions")
}

func BenchmarkRunMTBase(b *testing.B) { benchRun(b, "MT", mapping.BASE) }
func BenchmarkRunMTPAE(b *testing.B)  { benchRun(b, "MT", mapping.PAE) }
func BenchmarkRunSCPAE(b *testing.B)  { benchRun(b, "SC", mapping.PAE) }

// BenchmarkRunnerReuseMTPAE is the sweep steady state: one Runner reused
// across sequential runs, so the engine slab, request pools and program
// buffers all carry over. This is how the service's sweep workers run.
func BenchmarkRunnerReuseMTPAE(b *testing.B) {
	spec, _ := workload.ByAbbr("MT")
	cfg := Baseline()
	app := spec.Build(workload.Tiny)
	m := mapping.MustNew(mapping.PAE, cfg.Layout, mapping.Options{Seed: 1})
	r := NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(app, m, cfg)
	}
}
