package gpusim

import (
	"context"
	"errors"
	"testing"
	"time"

	"valleymap/internal/mapping"
	"valleymap/internal/workload"
)

// TestRunCtxCanceledBeforeStart pins that a pre-canceled context stops
// the run at the first kernel checkpoint with the context's error.
func TestRunCtxCanceledBeforeStart(t *testing.T) {
	spec, ok := workload.ByAbbr("MT")
	if !ok {
		t.Fatal("unknown workload MT")
	}
	app := spec.Build(workload.Tiny)
	cfg := Baseline()
	m := mapping.MustNew(mapping.BASE, cfg.Layout, mapping.Options{Seed: 1})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRunner().RunCtx(ctx, app, m, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on canceled ctx = %v, want context.Canceled", err)
	}
}

// TestRunCtxMidRunCancellation cancels from a checkpoint mid-simulation
// (via a stage-free hook: a context that trips after N engine events is
// approximated by canceling from another goroutine once the run starts)
// and pins that the error surfaces and the Runner stays reusable with
// bit-identical results afterwards.
func TestRunCtxMidRunCancellation(t *testing.T) {
	spec, ok := workload.ByAbbr("MT")
	if !ok {
		t.Fatal("unknown workload MT")
	}
	app := spec.Build(workload.Tiny)
	cfg := Baseline()
	m := mapping.MustNew(mapping.BASE, cfg.Layout, mapping.Options{Seed: 1})

	run := NewRunner()

	// Use the stage observer as the in-run cancellation trigger: cancel
	// when setup completes, so the kernel drain loop's first checkpoint
	// observes a dead context deterministically.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run.SetStageObserver(func(stage string, _ time.Duration) {
		if stage == StageSetup {
			cancel()
		}
	})
	res, err := run.RunCtx(ctx, app, m, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run RunCtx = %v, want context.Canceled", err)
	}
	if res != (Result{}) {
		t.Fatal("canceled RunCtx returned a non-zero Result")
	}

	// The Runner must stay reusable after an abandoned run, reproducing a
	// fresh Runner bit for bit (engine Reset drops pending events).
	run.SetStageObserver(nil)
	reused, err := run.RunCtx(context.Background(), app, m, cfg)
	if err != nil {
		t.Fatalf("reused Runner RunCtx error: %v", err)
	}
	fresh := NewRunner().Run(app, m, cfg)
	if reused != fresh {
		t.Fatalf("reused-after-cancel Runner diverged:\n reused %+v\n fresh  %+v", reused, fresh)
	}
}

// TestRunCtxDeadlineExceeded pins that an already-expired deadline
// surfaces as context.DeadlineExceeded.
func TestRunCtxDeadlineExceeded(t *testing.T) {
	spec, ok := workload.ByAbbr("GS")
	if !ok {
		t.Fatal("unknown workload GS")
	}
	app := spec.Build(workload.Tiny)
	cfg := Baseline()
	m := mapping.MustNew(mapping.BASE, cfg.Layout, mapping.Options{Seed: 1})

	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, err := NewRunner().RunCtx(ctx, app, m, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx past deadline = %v, want context.DeadlineExceeded", err)
	}
}
