// Package gpusim wires the substrate models into the full simulated GPU
// of Table I — SMs with L1s, the 12×8 crossbar NoC, eight LLC slices,
// and the 4-channel GDDR5 (or 3D-stacked) DRAM system — and runs
// application traces through a chosen address mapping scheme, producing
// every metric the paper's evaluation reports.
package gpusim

import (
	"fmt"

	"valleymap/internal/cache"
	"valleymap/internal/dram"
	"valleymap/internal/gpu"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/metrics"
	"valleymap/internal/noc"
	"valleymap/internal/power"
	"valleymap/internal/sim"
	"valleymap/internal/trace"
)

// Config describes one simulated system.
type Config struct {
	Name string
	// SMs is the streaming-multiprocessor count (12 baseline; 24/48/64
	// in the Figure 18 sensitivity study).
	SMs int
	SM  gpu.Config
	NoC noc.Config
	// LLCSlices × LLCSlice must total 512 KB in the baseline.
	LLCSlices int
	LLCSlice  cache.Config
	// LLCLatencyCycles is the slice access latency in core cycles and
	// LLCOccupancyCycles its per-access port occupancy.
	LLCLatencyCycles   int
	LLCOccupancyCycles int
	// Layout + DRAMTiming select conventional GDDR5 or 3D-stacked memory.
	Layout     layout.Layout
	DRAMTiming dram.Timing
	// MaxWarpsPerSM bounds TB occupancy together with gpu.Config.MaxTBs
	// (48 warps of 32 threads in Table I).
	MaxWarpsPerSM int
	// Power is the calibrated power model.
	Power power.System
}

// Conventional returns the Table I system with the given SM count and
// GDDR5 memory.
func Conventional(sms int) Config {
	return Config{
		Name:               fmt.Sprintf("conv-%dsm", sms),
		SMs:                sms,
		SM:                 gpu.DefaultConfig(),
		NoC:                noc.DefaultConfig(sms),
		LLCSlices:          8,
		LLCSlice:           cache.LLCSliceConfig(),
		LLCLatencyCycles:   80,
		LLCOccupancyCycles: 2,
		Layout:             layout.HynixGDDR5(),
		DRAMTiming:         dram.HynixGDDR5Timing(),
		MaxWarpsPerSM:      48,
		Power:              power.DefaultSystem(),
	}
}

// Baseline is the paper's 12-SM configuration.
func Baseline() Config { return Conventional(12) }

// Stacked3D returns the Section VI-D 3D-stacked system: 64 SMs, 640 GB/s
// stacked memory, and a proportionally wider NoC (960 GB/s).
func Stacked3D() Config {
	cfg := Conventional(64)
	cfg.Name = "3d-64sm"
	cfg.Layout = layout.Stacked3D()
	cfg.DRAMTiming = dram.Stacked3DTiming()
	cfg.NoC.ChannelBytes = 64 // ~2x the conventional NoC bandwidth
	return cfg
}

// Result carries every metric of the Section VI figures for one run.
type Result struct {
	App    string
	Scheme mapping.Scheme
	Config string

	ExecTime     sim.Time
	Instructions int64
	Requests     int   // pre-coalescing accesses
	Transactions int64 // post-coalescing transactions

	L1  cache.Stats
	LLC cache.Stats

	NoCAvgLatencyCycles float64 // Figure 13a
	LLCParallelism      float64 // Figure 14a
	ChannelParallelism  float64 // Figure 14b
	BankParallelism     float64 // Figure 14c

	DRAM      dram.Stats      // Figure 15 (row-buffer hit rate)
	DRAMPower power.Breakdown // Figure 16
	GPUPowerW float64
	SystemW   float64
	PerfPerW  float64 // Figure 17

	APKI, MPKI float64 // Table II
}

// IPS returns instructions per second (performance; speedups are ratios
// of this across schemes).
func (r Result) IPS() float64 {
	s := r.ExecTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Instructions) / s
}

// llcSlice is one LLC slice with its port.
type llcSlice struct {
	c    *cache.Cache
	port sim.Server
}

// system is the fabric implementation handed to SMs.
type system struct {
	eng    *sim.Engine
	cfg    Config
	xbar   *noc.Crossbar
	slices []*llcSlice
	dram   *dram.System
	par    *metrics.MemParallelism

	sliceShift uint
	sliceMask  uint64

	llcStats cache.Stats
}

func (sys *system) sliceOf(addr uint64) int {
	return int((addr >> sys.sliceShift) & sys.sliceMask)
}

// llcLookup performs the slice access at the current time and returns
// (hit, time at which the slice lookup resolves). Misses and dirty
// writebacks generate DRAM traffic.
func (sys *system) llcLookup(slice int, addr uint64, write bool) (bool, sim.Time) {
	now := sys.eng.Now()
	cc := sys.cfg.SM.CoreClock
	_, grant := sys.slices[slice].port.Acquire(now, cc.Cycles(int64(sys.cfg.LLCOccupancyCycles)))
	resolve := grant + cc.Cycles(int64(sys.cfg.LLCLatencyCycles))
	res := sys.slices[slice].c.Access(addr, write)
	if res.Eviction && res.VictimDirty {
		// Write the victim back to DRAM; fire-and-forget.
		sys.dram.Enqueue(&dram.Request{Addr: res.Victim, Write: true})
	}
	return res.Hit, resolve
}

// IssueRead implements gpu.Fabric.
func (sys *system) IssueRead(now sim.Time, sm int, addr uint64, done func(sim.Time)) {
	slice := sys.sliceOf(addr)
	arrive := sys.xbar.SendToSlice(now, slice, 8)
	sys.eng.At(arrive, func() {
		sys.par.LLCDelta(sys.eng.Now(), slice, +1)
		hit, resolve := sys.llcLookup(slice, addr, false)
		if hit {
			sys.eng.At(resolve, func() { sys.respond(sm, slice, addr, done) })
			return
		}
		// Fetch the line from DRAM, then respond.
		sys.eng.At(resolve, func() {
			sys.dram.Enqueue(&dram.Request{Addr: addr, Write: false, Done: func(d sim.Time) {
				sys.respond(sm, slice, addr, done)
			}})
		})
	})
}

// respond returns a 128 B data packet to the SM and retires the slice's
// outstanding count.
func (sys *system) respond(sm, slice int, addr uint64, done func(sim.Time)) {
	now := sys.eng.Now()
	respAt := sys.xbar.SendToSM(now, sm, 128)
	sys.eng.At(respAt, func() {
		sys.par.LLCDelta(sys.eng.Now(), slice, -1)
		done(sys.eng.Now())
	})
}

// IssueWrite implements gpu.Fabric: stores carry a line to the LLC
// (write-allocate, write-back) and complete there.
func (sys *system) IssueWrite(now sim.Time, sm int, addr uint64) {
	slice := sys.sliceOf(addr)
	arrive := sys.xbar.SendToSlice(now, slice, 8+128)
	sys.eng.At(arrive, func() {
		sys.par.LLCDelta(sys.eng.Now(), slice, +1)
		_, resolve := sys.llcLookup(slice, addr, true)
		sys.eng.At(resolve, func() {
			sys.par.LLCDelta(sys.eng.Now(), slice, -1)
		})
	})
}

// Run simulates one application under one mapping scheme.
func Run(app *trace.App, mapper mapping.Mapper, cfg Config) Result {
	eng := &sim.Engine{}
	par := metrics.NewMemParallelism(cfg.LLCSlices, cfg.Layout.Channels(), cfg.Layout.BanksPerChannel())
	xbar, err := noc.New(eng, cfg.NoC)
	if err != nil {
		panic(err)
	}
	sys := &system{
		eng:  eng,
		cfg:  cfg,
		xbar: xbar,
		dram: dram.NewSystem(eng, dram.Config{Layout: cfg.Layout, Timing: cfg.DRAMTiming}, par),
		par:  par,
	}
	// LLC slice selection uses the address bits starting at the channel
	// field, so slices align with channels (two slices per memory
	// controller in Table I).
	sys.sliceShift = uint(cfg.Layout.FieldBits(layout.Channel)[0])
	sys.sliceMask = uint64(cfg.LLCSlices - 1)
	for i := 0; i < cfg.LLCSlices; i++ {
		sys.slices = append(sys.slices, &llcSlice{c: cache.MustNew(cfg.LLCSlice)})
	}
	sms := make([]*gpu.SM, cfg.SMs)
	for i := range sms {
		sms[i] = gpu.New(eng, i, cfg.SM, sys)
	}

	mapAddr := mapper.Map
	for ki := range app.Kernels {
		runKernel(eng, sms, &app.Kernels[ki], cfg, mapAddr)
	}
	end := eng.Now()
	par.Finish(end)

	res := Result{
		App:          app.Abbr,
		Scheme:       mapper.Scheme(),
		Config:       cfg.Name,
		ExecTime:     end,
		Instructions: app.Instructions(),
		Requests:     app.Requests(),
	}
	for _, s := range sms {
		st := s.Stats()
		res.Transactions += st.Transactions
		res.L1.Accesses += st.L1.Accesses
		res.L1.Hits += st.L1.Hits
		res.L1.Misses += st.L1.Misses
		res.L1.Evictions += st.L1.Evictions
	}
	for _, sl := range sys.slices {
		st := sl.c.Stats()
		res.LLC.Accesses += st.Accesses
		res.LLC.Hits += st.Hits
		res.LLC.Misses += st.Misses
		res.LLC.Evictions += st.Evictions
		res.LLC.Writebacks += st.Writebacks
	}
	res.NoCAvgLatencyCycles = xbar.AvgPacketLatency()
	res.LLCParallelism = par.LLCLevel()
	res.ChannelParallelism = par.ChannelLevel()
	res.BankParallelism = par.BankLevel()
	res.DRAM = sys.dram.Stats()

	act := power.Activity{
		Activations: res.DRAM.Activations,
		Reads:       res.DRAM.Reads,
		Writes:      res.DRAM.Writes,
		Elapsed:     end,
	}
	res.DRAMPower = cfg.Power.DRAM.Power(act)
	res.GPUPowerW = cfg.Power.GPU.Power(res.Instructions, end)
	res.SystemW = res.DRAMPower.Total() + res.GPUPowerW
	res.PerfPerW = cfg.Power.PerfPerWatt(act, res.Instructions)

	if res.Instructions > 0 {
		kilo := float64(res.Instructions) / 1000
		res.APKI = float64(res.LLC.Accesses) / kilo
		res.MPKI = float64(res.LLC.Misses) / kilo
	}
	return res
}

// runKernel dispatches the kernel's TBs over the SMs (round-robin as
// slots free) and drains the engine — kernels serialize, so the drained
// engine is the kernel barrier.
func runKernel(eng *sim.Engine, sms []*gpu.SM, k *trace.Kernel, cfg Config, mapAddr func(uint64) uint64) {
	maxTBs := cfg.SM.MaxTBs
	if byWarps := cfg.MaxWarpsPerSM / k.WarpsPerTB; byWarps < maxTBs {
		maxTBs = byWarps
	}
	if maxTBs < 1 {
		maxTBs = 1
	}
	next := 0
	lineBytes := cfg.SM.L1.LineBytes
	var assign func(smIdx int)
	assign = func(smIdx int) {
		if next >= len(k.TBs) {
			return
		}
		tb := &k.TBs[next]
		next++
		progs := gpu.BuildPrograms(tb, k.WarpsPerTB, lineBytes, mapAddr)
		sms[smIdx].LaunchTB(progs, k.ComputeGapCycles, func(sim.Time) { assign(smIdx) })
	}
	// Initial dispatch is round-robin, one TB per SM per pass, exactly
	// like the hardware TB scheduler: consecutive TB IDs land on
	// different SMs, which is what makes the entropy window w ≈ #SMs
	// (Section III-A). Each completion then refills its own SM's slot.
	eng.At(eng.Now(), func() {
		for pass := 0; pass < maxTBs && next < len(k.TBs); pass++ {
			for i := range sms {
				if sms[i].ActiveTBs() < maxTBs && next < len(k.TBs) {
					assign(i)
				}
			}
		}
	})
	eng.Run()
}
