// Package gpusim wires the substrate models into the full simulated GPU
// of Table I — SMs with L1s, the 12×8 crossbar NoC, eight LLC slices,
// and the 4-channel GDDR5 (or 3D-stacked) DRAM system — and runs
// application traces through a chosen address mapping scheme, producing
// every metric the paper's evaluation reports.
//
// The hot path is allocation-disciplined: every event schedules through
// the engine's handler API with pooled per-request records, DRAM
// requests recycle through a dram.Pool, and TB program buffers recycle
// across launches. A Runner carries all of that state across sequential
// runs, so sweeps reuse one engine and one set of pools per worker.
package gpusim

import (
	"context"
	"fmt"
	"time"

	"valleymap/internal/cache"
	"valleymap/internal/dram"
	"valleymap/internal/gpu"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/metrics"
	"valleymap/internal/noc"
	"valleymap/internal/power"
	"valleymap/internal/sim"
	"valleymap/internal/trace"
)

// Config describes one simulated system.
type Config struct {
	Name string
	// SMs is the streaming-multiprocessor count (12 baseline; 24/48/64
	// in the Figure 18 sensitivity study).
	SMs int
	SM  gpu.Config
	NoC noc.Config
	// LLCSlices × LLCSlice must total 512 KB in the baseline.
	LLCSlices int
	LLCSlice  cache.Config
	// LLCLatencyCycles is the slice access latency in core cycles and
	// LLCOccupancyCycles its per-access port occupancy.
	LLCLatencyCycles   int
	LLCOccupancyCycles int
	// Layout + DRAMTiming select conventional GDDR5 or 3D-stacked memory.
	Layout     layout.Layout
	DRAMTiming dram.Timing
	// MaxWarpsPerSM bounds TB occupancy together with gpu.Config.MaxTBs
	// (48 warps of 32 threads in Table I).
	MaxWarpsPerSM int
	// Power is the calibrated power model.
	Power power.System
}

// Conventional returns the Table I system with the given SM count and
// GDDR5 memory.
func Conventional(sms int) Config {
	return Config{
		Name:               fmt.Sprintf("conv-%dsm", sms),
		SMs:                sms,
		SM:                 gpu.DefaultConfig(),
		NoC:                noc.DefaultConfig(sms),
		LLCSlices:          8,
		LLCSlice:           cache.LLCSliceConfig(),
		LLCLatencyCycles:   80,
		LLCOccupancyCycles: 2,
		Layout:             layout.HynixGDDR5(),
		DRAMTiming:         dram.HynixGDDR5Timing(),
		MaxWarpsPerSM:      48,
		Power:              power.DefaultSystem(),
	}
}

// Baseline is the paper's 12-SM configuration.
func Baseline() Config { return Conventional(12) }

// Stacked3D returns the Section VI-D 3D-stacked system: 64 SMs, 640 GB/s
// stacked memory, and a proportionally wider NoC (960 GB/s).
func Stacked3D() Config {
	cfg := Conventional(64)
	cfg.Name = "3d-64sm"
	cfg.Layout = layout.Stacked3D()
	cfg.DRAMTiming = dram.Stacked3DTiming()
	cfg.NoC.ChannelBytes = 64 // ~2x the conventional NoC bandwidth
	return cfg
}

// Result carries every metric of the Section VI figures for one run.
type Result struct {
	App    string
	Scheme mapping.Scheme
	Config string

	ExecTime     sim.Time
	Instructions int64
	Requests     int   // pre-coalescing accesses
	Transactions int64 // post-coalescing transactions

	L1  cache.Stats
	LLC cache.Stats

	NoCAvgLatencyCycles float64 // Figure 13a
	LLCParallelism      float64 // Figure 14a
	ChannelParallelism  float64 // Figure 14b
	BankParallelism     float64 // Figure 14c

	DRAM      dram.Stats      // Figure 15 (row-buffer hit rate)
	DRAMPower power.Breakdown // Figure 16
	GPUPowerW float64
	SystemW   float64
	PerfPerW  float64 // Figure 17

	APKI, MPKI float64 // Table II
}

// IPS returns instructions per second (performance; speedups are ratios
// of this across schemes).
func (r Result) IPS() float64 {
	s := r.ExecTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Instructions) / s
}

// llcSlice is one LLC slice with its port.
type llcSlice struct {
	c    *cache.Cache
	port sim.Server
}

// memReq is one in-flight memory transaction between an SM and the
// memory system; pooled on the Runner and recycled when the response
// lands (reads) or the LLC retires the store (writes).
type memReq struct {
	sys   *system
	sm    int32
	slice int32
	addr  uint64
	sink  gpu.ReadSink
	// dramDone is bound once at construction (to this record's
	// onDRAMDone), so handing it to dram.Request.Done never allocates.
	dramDone func(sim.Time)
}

func (r *memReq) onDRAMDone(sim.Time) { r.sys.respond(r) }

// system is the fabric implementation handed to SMs.
type system struct {
	eng    *sim.Engine
	run    *Runner
	cfg    Config
	xbar   *noc.Crossbar
	slices []*llcSlice
	dram   *dram.System
	par    *metrics.MemParallelism

	sliceShift uint
	sliceMask  uint64
}

func (sys *system) sliceOf(addr uint64) int {
	return int((addr >> sys.sliceShift) & sys.sliceMask)
}

func (sys *system) getReq() *memReq {
	rn := sys.run
	if n := len(rn.reqFree); n > 0 {
		r := rn.reqFree[n-1]
		rn.reqFree = rn.reqFree[:n-1]
		r.sys = sys
		return r
	}
	r := &memReq{sys: sys}
	r.dramDone = r.onDRAMDone
	return r
}

func (sys *system) putReq(r *memReq) {
	// Drop the sink and system references: an idle Runner must not pin
	// the finished run's SMs, caches and controllers through its free
	// list (getReq rebinds sys on reuse; dramDone stays valid because it
	// is bound to the memReq itself).
	r.sink = nil
	r.sys = nil
	sys.run.reqFree = append(sys.run.reqFree, r)
}

// llcLookup performs the slice access at the current time and returns
// (hit, time at which the slice lookup resolves). Misses and dirty
// writebacks generate DRAM traffic.
func (sys *system) llcLookup(slice int, addr uint64, write bool) (bool, sim.Time) {
	now := sys.eng.Now()
	cc := sys.cfg.SM.CoreClock
	_, grant := sys.slices[slice].port.Acquire(now, cc.Cycles(int64(sys.cfg.LLCOccupancyCycles)))
	resolve := grant + cc.Cycles(int64(sys.cfg.LLCLatencyCycles))
	res := sys.slices[slice].c.Access(addr, write)
	if res.Eviction && res.VictimDirty {
		// Write the victim back to DRAM; fire-and-forget.
		wb := sys.dram.Get()
		wb.Addr = res.Victim
		wb.Write = true
		sys.dram.Enqueue(wb)
	}
	return res.Hit, resolve
}

// Event handlers: package-level functions over pooled memReqs, so the
// whole read/write flow schedules without allocating.

// readArriveH fires when a read request packet reaches its LLC slice.
func readArriveH(arg any) {
	r := arg.(*memReq)
	sys := r.sys
	sys.par.LLCDelta(sys.eng.Now(), int(r.slice), +1)
	hit, resolve := sys.llcLookup(int(r.slice), r.addr, false)
	if hit {
		sys.eng.AtCall(resolve, respondH, r)
		return
	}
	// Fetch the line from DRAM, then respond.
	sys.eng.AtCall(resolve, readMissH, r)
}

// readMissH fires when a missing slice lookup resolves: the line is
// fetched from DRAM and the response continues in onDRAMDone.
func readMissH(arg any) {
	r := arg.(*memReq)
	d := r.sys.dram.Get()
	d.Addr = r.addr
	d.Write = false
	d.Done = r.dramDone
	r.sys.dram.Enqueue(d)
}

// respondH fires when a hitting slice lookup resolves.
func respondH(arg any) {
	r := arg.(*memReq)
	r.sys.respond(r)
}

// respDoneH fires when the 128 B response packet reaches the SM.
func respDoneH(arg any) {
	r := arg.(*memReq)
	sys := r.sys
	now := sys.eng.Now()
	sys.par.LLCDelta(now, int(r.slice), -1)
	sink, addr := r.sink, r.addr
	sys.putReq(r)
	sink.FillLine(addr, now)
}

// writeArriveH fires when a store packet (header + line) reaches its
// LLC slice.
func writeArriveH(arg any) {
	r := arg.(*memReq)
	sys := r.sys
	sys.par.LLCDelta(sys.eng.Now(), int(r.slice), +1)
	_, resolve := sys.llcLookup(int(r.slice), r.addr, true)
	sys.eng.AtCall(resolve, writeRetireH, r)
}

// writeRetireH retires a store at the LLC.
func writeRetireH(arg any) {
	r := arg.(*memReq)
	sys := r.sys
	sys.par.LLCDelta(sys.eng.Now(), int(r.slice), -1)
	sys.putReq(r)
}

// IssueRead implements gpu.Fabric.
func (sys *system) IssueRead(now sim.Time, sm int, addr uint64, sink gpu.ReadSink) {
	r := sys.getReq()
	r.sm, r.slice, r.addr, r.sink = int32(sm), int32(sys.sliceOf(addr)), addr, sink
	arrive := sys.xbar.SendToSlice(now, int(r.slice), 8)
	sys.eng.AtCall(arrive, readArriveH, r)
}

// respond returns a 128 B data packet to the SM and retires the slice's
// outstanding count.
func (sys *system) respond(r *memReq) {
	respAt := sys.xbar.SendToSM(sys.eng.Now(), int(r.sm), 128)
	sys.eng.AtCall(respAt, respDoneH, r)
}

// IssueWrite implements gpu.Fabric: stores carry a line to the LLC
// (write-allocate, write-back) and complete there.
func (sys *system) IssueWrite(now sim.Time, sm int, addr uint64) {
	r := sys.getReq()
	r.sm, r.slice, r.addr = int32(sm), int32(sys.sliceOf(addr)), addr
	arrive := sys.xbar.SendToSlice(now, int(r.slice), 8+128)
	sys.eng.AtCall(arrive, writeArriveH, r)
}

// Runner owns the reusable simulation state: the event engine, the
// memReq free list, the DRAM request pool and the TB program buffers.
// Run resets the engine and reuses every pool, so sequential runs on
// one Runner allocate a fraction of what independent runs would — with
// bit-identical results (see internal/sim's determinism contract). A
// Runner is single-goroutine; use one per worker.
type Runner struct {
	eng      sim.Engine
	reqFree  []*memReq
	dramPool *dram.Pool
	progFree [][]gpu.WarpProgram
	scratch  trace.TB
	// onStage, when set, receives coarse per-run stage durations (see
	// SetStageObserver). Deliberately per-run, not per-event: the event
	// engine's zero-allocation steady state must stay untouched.
	onStage func(stage string, d time.Duration)
}

// Run stage names reported to the observer installed by
// SetStageObserver, in emission order.
const (
	StageSetup   = "setup"   // engine reset, NoC/DRAM/SM construction
	StageKernels = "kernels" // trace-driven kernel execution (the simulation)
	StageCollect = "collect" // metric collection and power model
)

// SetStageObserver installs f to receive each Run's coarse stage
// timings: setup, kernels, collect. f runs on the Run goroutine after
// the stage completes; nil removes the observer. The taps cost three
// time.Now pairs per Run — noise next to any real simulation — and feed
// valleyd's per-cell span attributes and stage histograms.
func (r *Runner) SetStageObserver(f func(stage string, d time.Duration)) { r.onStage = f }

// NewRunner returns an empty Runner.
func NewRunner() *Runner {
	return &Runner{dramPool: dram.NewPool()}
}

func (r *Runner) getProgs() []gpu.WarpProgram {
	if n := len(r.progFree); n > 0 {
		p := r.progFree[n-1]
		r.progFree = r.progFree[:n-1]
		return p
	}
	return nil
}

func (r *Runner) putProgs(p []gpu.WarpProgram) {
	r.progFree = append(r.progFree, p)
}

// checkpointEvents is the cancellation-poll interval of RunCtx: the
// engine drains in bounded batches of this many events, checking
// ctx.Err() between batches. At the simulator's typical multi-million
// events/sec throughput this bounds cancellation latency to well under
// 100 ms of wall clock while keeping the per-event hot path untouched
// (the poll is one nil-check per batch).
const checkpointEvents = 100_000

// Run simulates one application under one mapping scheme.
//
// app is treated as strictly read-only: many Runners may simulate the
// same *trace.App concurrently (the service's sweep cells share one
// build per workload), so nothing in the simulator may mutate it.
func (run *Runner) Run(app *trace.App, mapper mapping.Mapper, cfg Config) Result {
	res, err := run.RunCtx(context.Background(), app, mapper, cfg)
	if err != nil {
		// Background contexts never cancel; unreachable.
		panic(err)
	}
	return res
}

// RunCtx simulates one application under one mapping scheme, honoring
// ctx cancellation. The engine drains in checkpointEvents-sized batches
// with a cancellation poll between batches, so an expired or abandoned
// run frees its goroutine within a bounded interval instead of running
// to completion. On cancellation it returns the zero Result and
// ctx.Err(); the Runner itself stays reusable (the next Run resets the
// engine and drops the abandoned run's pending events).
func (run *Runner) RunCtx(ctx context.Context, app *trace.App, mapper mapping.Mapper, cfg Config) (Result, error) {
	var stageStart time.Time
	if run.onStage != nil {
		stageStart = time.Now()
	}
	eng := &run.eng
	eng.Reset()
	par := metrics.NewMemParallelism(cfg.LLCSlices, cfg.Layout.Channels(), cfg.Layout.BanksPerChannel())
	xbar, err := noc.New(eng, cfg.NoC)
	if err != nil {
		panic(err)
	}
	sys := &system{
		eng:  eng,
		run:  run,
		cfg:  cfg,
		xbar: xbar,
		dram: dram.NewSystemWithPool(eng, dram.Config{Layout: cfg.Layout, Timing: cfg.DRAMTiming}, par, run.dramPool),
		par:  par,
	}
	// LLC slice selection uses the address bits starting at the channel
	// field, so slices align with channels (two slices per memory
	// controller in Table I).
	sys.sliceShift = uint(cfg.Layout.FieldBits(layout.Channel)[0])
	sys.sliceMask = uint64(cfg.LLCSlices - 1)
	for i := 0; i < cfg.LLCSlices; i++ {
		sys.slices = append(sys.slices, &llcSlice{c: cache.MustNew(cfg.LLCSlice)})
	}
	sms := make([]*gpu.SM, cfg.SMs)
	for i := range sms {
		sms[i] = gpu.New(eng, i, cfg.SM, sys)
	}

	if run.onStage != nil {
		now := time.Now()
		run.onStage(StageSetup, now.Sub(stageStart))
		stageStart = now
	}
	mapAddr := mapper.Map
	for ki := range app.Kernels {
		if err := run.runKernel(ctx, sms, &app.Kernels[ki], cfg, mapAddr); err != nil {
			return Result{}, err
		}
	}
	end := eng.Now()
	par.Finish(end)
	if run.onStage != nil {
		now := time.Now()
		run.onStage(StageKernels, now.Sub(stageStart))
		stageStart = now
	}

	res := Result{
		App:          app.Abbr,
		Scheme:       mapper.Scheme(),
		Config:       cfg.Name,
		ExecTime:     end,
		Instructions: app.Instructions(),
		Requests:     app.Requests(),
	}
	for _, s := range sms {
		st := s.Stats()
		res.Transactions += st.Transactions
		res.L1.Accesses += st.L1.Accesses
		res.L1.Hits += st.L1.Hits
		res.L1.Misses += st.L1.Misses
		res.L1.Evictions += st.L1.Evictions
	}
	for _, sl := range sys.slices {
		st := sl.c.Stats()
		res.LLC.Accesses += st.Accesses
		res.LLC.Hits += st.Hits
		res.LLC.Misses += st.Misses
		res.LLC.Evictions += st.Evictions
		res.LLC.Writebacks += st.Writebacks
	}
	res.NoCAvgLatencyCycles = xbar.AvgPacketLatency()
	res.LLCParallelism = par.LLCLevel()
	res.ChannelParallelism = par.ChannelLevel()
	res.BankParallelism = par.BankLevel()
	res.DRAM = sys.dram.Stats()

	act := power.Activity{
		Activations: res.DRAM.Activations,
		Reads:       res.DRAM.Reads,
		Writes:      res.DRAM.Writes,
		Elapsed:     end,
	}
	res.DRAMPower = cfg.Power.DRAM.Power(act)
	res.GPUPowerW = cfg.Power.GPU.Power(res.Instructions, end)
	res.SystemW = res.DRAMPower.Total() + res.GPUPowerW
	res.PerfPerW = cfg.Power.PerfPerWatt(act, res.Instructions)

	if res.Instructions > 0 {
		kilo := float64(res.Instructions) / 1000
		res.APKI = float64(res.LLC.Accesses) / kilo
		res.MPKI = float64(res.LLC.Misses) / kilo
	}
	if run.onStage != nil {
		run.onStage(StageCollect, time.Since(stageStart))
	}
	return res, nil
}

// Run simulates one application under one mapping scheme with a fresh
// Runner. Callers running many simulations should reuse a Runner.
func Run(app *trace.App, mapper mapping.Mapper, cfg Config) Result {
	return NewRunner().Run(app, mapper, cfg)
}

// runKernel dispatches the kernel's TBs over the SMs (round-robin as
// slots free) and drains the engine — kernels serialize, so the drained
// engine is the kernel barrier. The drain runs in bounded batches with
// a cancellation poll between them; on cancellation the kernel's
// remaining events are abandoned (the next Run's engine Reset discards
// them) and ctx's error is returned.
func (run *Runner) runKernel(ctx context.Context, sms []*gpu.SM, k *trace.Kernel, cfg Config, mapAddr func(uint64) uint64) error {
	// Kernel boundaries are checkpoints too, so cancellation is caught
	// even when a whole kernel drains inside one event batch.
	if err := ctx.Err(); err != nil {
		return err
	}
	eng := &run.eng
	maxTBs := cfg.SM.MaxTBs
	if byWarps := cfg.MaxWarpsPerSM / k.WarpsPerTB; byWarps < maxTBs {
		maxTBs = byWarps
	}
	if maxTBs < 1 {
		maxTBs = 1
	}
	next := 0
	lineBytes := cfg.SM.L1.LineBytes
	var assign func(smIdx int)
	assign = func(smIdx int) {
		if next >= len(k.TBs) {
			return
		}
		tb := &k.TBs[next]
		next++
		progs := gpu.BuildProgramsInto(run.getProgs(), &run.scratch, tb, k.WarpsPerTB, lineBytes, mapAddr)
		// The one closure per TB launch below recycles the program
		// buffer and refills the SM's slot; per-TB allocations are noise
		// next to the TB's own request traffic.
		sms[smIdx].LaunchTB(progs, k.ComputeGapCycles, func(sim.Time) {
			run.putProgs(progs)
			assign(smIdx)
		})
	}
	// Initial dispatch is round-robin, one TB per SM per pass, exactly
	// like the hardware TB scheduler: consecutive TB IDs land on
	// different SMs, which is what makes the entropy window w ≈ #SMs
	// (Section III-A). Each completion then refills its own SM's slot.
	eng.At(eng.Now(), func() {
		for pass := 0; pass < maxTBs && next < len(k.TBs); pass++ {
			for i := range sms {
				if sms[i].ActiveTBs() < maxTBs && next < len(k.TBs) {
					assign(i)
				}
			}
		}
	})
	for !eng.RunBounded(checkpointEvents) {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}
