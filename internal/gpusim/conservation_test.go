package gpusim

import (
	"testing"

	"valleymap/internal/mapping"
	"valleymap/internal/workload"
)

// TestTrafficConservation checks flow invariants end to end for every
// benchmark under two schemes: transactions split into reads and writes,
// L1 read hits+misses cover L1 accesses, every LLC read miss produces at
// most one DRAM read (MSHR-less LLC refetches are impossible because
// lines install on access), and DRAM writes are bounded by LLC
// write-allocations plus writebacks.
func TestTrafficConservation(t *testing.T) {
	cfg := Baseline()
	for _, spec := range workload.Catalog() {
		app := spec.Build(workload.Tiny)
		for _, s := range []mapping.Scheme{mapping.BASE, mapping.FAE} {
			m := mapping.MustNew(s, cfg.Layout, mapping.Options{Seed: 1})
			r := Run(app, m, cfg)
			name := spec.Abbr + "/" + string(s)

			if r.L1.Hits+r.L1.Misses != r.L1.Accesses {
				t.Errorf("%s: L1 hits+misses != accesses", name)
			}
			if r.LLC.Hits+r.LLC.Misses != r.LLC.Accesses {
				t.Errorf("%s: LLC hits+misses != accesses", name)
			}
			// L1 only sees read transactions (writes bypass), and every
			// L1 access is a read transaction (merged reads skip the
			// tag array, so accesses <= read transactions).
			if r.L1.Accesses > r.Transactions {
				t.Errorf("%s: L1 accesses %d > transactions %d", name, r.L1.Accesses, r.Transactions)
			}
			// LLC accesses = L1 miss fills + write transactions; merged
			// L1 misses don't reach the LLC.
			if r.LLC.Accesses > r.L1.Misses+r.Transactions {
				t.Errorf("%s: LLC accesses %d exceed possible traffic", name, r.LLC.Accesses)
			}
			// DRAM reads are exactly LLC read-miss fetches, so they are
			// bounded by LLC misses.
			if r.DRAM.Reads > r.LLC.Misses {
				t.Errorf("%s: DRAM reads %d > LLC misses %d", name, r.DRAM.Reads, r.LLC.Misses)
			}
			// DRAM writes are LLC dirty writebacks only.
			if r.DRAM.Writes != int64(r.LLC.Writebacks) {
				t.Errorf("%s: DRAM writes %d != LLC writebacks %d", name, r.DRAM.Writes, r.LLC.Writebacks)
			}
			// Parallelism metrics live within their unit counts.
			if r.LLCParallelism < 0 || r.LLCParallelism > float64(cfg.LLCSlices) {
				t.Errorf("%s: LLC parallelism %v out of range", name, r.LLCParallelism)
			}
			if r.ChannelParallelism < 0 || r.ChannelParallelism > float64(cfg.Layout.Channels()) {
				t.Errorf("%s: channel parallelism %v out of range", name, r.ChannelParallelism)
			}
			if r.BankParallelism < 0 || r.BankParallelism > float64(cfg.Layout.BanksPerChannel()) {
				t.Errorf("%s: bank parallelism %v out of range", name, r.BankParallelism)
			}
			// Row-buffer accounting.
			if r.DRAM.RowMisses != r.DRAM.Activations {
				t.Errorf("%s: activations %d != row misses %d", name, r.DRAM.Activations, r.DRAM.RowMisses)
			}
		}
	}
}

// TestMappedVsUnmappedTrafficEqual verifies that address mapping is
// traffic-neutral at the SM boundary: a bijection cannot change the
// number of coalesced transactions, only their placement.
func TestMappedVsUnmappedTrafficEqual(t *testing.T) {
	cfg := Baseline()
	for _, abbr := range []string{"MT", "SC", "BFS"} {
		spec, _ := workload.ByAbbr(abbr)
		app := spec.Build(workload.Tiny)
		base := Run(app, mapping.NewBASE(cfg.Layout), cfg)
		pae := Run(app, mapping.MustNew(mapping.PAE, cfg.Layout, mapping.Options{Seed: 1}), cfg)
		if base.Transactions != pae.Transactions {
			t.Errorf("%s: transactions changed under mapping: %d vs %d",
				abbr, base.Transactions, pae.Transactions)
		}
		if base.Instructions != pae.Instructions {
			t.Errorf("%s: instruction count changed under mapping", abbr)
		}
	}
}
