package gpusim

import (
	"reflect"
	"testing"

	"valleymap/internal/mapping"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// TestRunDeterminism pins the engine's same-instant event-ordering
// guarantee through the pooled-event refactor: identical inputs must
// produce byte-identical Results whether the simulation runs on a fresh
// engine, on a Runner whose engine and pools are warm from a previous
// run, or interleaved with other work on the same Runner.
func TestRunDeterminism(t *testing.T) {
	spec, _ := workload.ByAbbr("MT")
	other, _ := workload.ByAbbr("SC")
	cfg := Baseline()
	app := spec.Build(workload.Tiny)
	otherApp := other.Build(workload.Tiny)
	m := mapping.MustNew(mapping.PAE, cfg.Layout, mapping.Options{Seed: 2})
	mBase := mapping.MustNew(mapping.BASE, cfg.Layout, mapping.Options{Seed: 1})

	fresh := Run(app, m, cfg)
	again := Run(app, m, cfg)
	if !reflect.DeepEqual(fresh, again) {
		t.Fatalf("two fresh runs differ:\n%+v\nvs\n%+v", fresh, again)
	}

	// A reused Runner arrives with a warm engine slab, recycled request
	// records and recycled program buffers — results must not change.
	r := NewRunner()
	if warm := r.Run(otherApp, mBase, cfg); warm.ExecTime <= 0 {
		t.Fatal("warm-up run produced no time")
	}
	reused := r.Run(app, m, cfg)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("pool-reused run differs from fresh run:\n%+v\nvs\n%+v", fresh, reused)
	}
	reusedAgain := r.Run(app, m, cfg)
	if !reflect.DeepEqual(fresh, reusedAgain) {
		t.Fatalf("second pool-reused run differs:\n%+v\nvs\n%+v", fresh, reusedAgain)
	}
}

// TestRunLeavesTraceUntouched pins the read-only contract that lets the
// service share one trace build across concurrent scheme cells: Run
// must not mutate the App it simulates.
func TestRunLeavesTraceUntouched(t *testing.T) {
	spec, _ := workload.ByAbbr("MT")
	cfg := Baseline()
	app := spec.Build(workload.Tiny)
	snapshot := cloneApp(app)
	m := mapping.MustNew(mapping.PAE, cfg.Layout, mapping.Options{Seed: 1})
	Run(app, m, cfg)
	if !reflect.DeepEqual(snapshot, app) {
		t.Fatal("Run mutated the input trace; the sweep's shared builds depend on it staying read-only")
	}
}

func cloneApp(a *trace.App) *trace.App {
	out := &trace.App{Name: a.Name, Abbr: a.Abbr, Valley: a.Valley, InsnPerAccess: a.InsnPerAccess}
	out.Kernels = make([]trace.Kernel, len(a.Kernels))
	for ki := range a.Kernels {
		k := &a.Kernels[ki]
		ck := trace.Kernel{Name: k.Name, WarpsPerTB: k.WarpsPerTB, ComputeGapCycles: k.ComputeGapCycles}
		ck.TBs = make([]trace.TB, len(k.TBs))
		for ti := range k.TBs {
			ck.TBs[ti] = trace.TB{ID: k.TBs[ti].ID, Requests: append([]trace.Request(nil), k.TBs[ti].Requests...)}
		}
		out.Kernels[ki] = ck
	}
	return out
}
