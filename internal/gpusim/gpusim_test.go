package gpusim

import (
	"testing"

	"valleymap/internal/mapping"

	"valleymap/internal/workload"
)

func runScheme(t *testing.T, abbr string, s mapping.Scheme, cfg Config) Result {
	t.Helper()
	spec, ok := workload.ByAbbr(abbr)
	if !ok {
		t.Fatalf("unknown workload %s", abbr)
	}
	app := spec.Build(workload.Tiny)
	m := mapping.MustNew(s, cfg.Layout, mapping.Options{Seed: 1})
	return Run(app, m, cfg)
}

func TestBaselineConfig(t *testing.T) {
	cfg := Baseline()
	if cfg.SMs != 12 || cfg.LLCSlices != 8 {
		t.Errorf("baseline = %d SMs, %d slices", cfg.SMs, cfg.LLCSlices)
	}
	if cfg.LLCSlices*cfg.LLCSlice.SizeBytes != 512<<10 {
		t.Errorf("LLC total = %d, want 512KB", cfg.LLCSlices*cfg.LLCSlice.SizeBytes)
	}
	if cfg.Layout.Channels() != 4 {
		t.Errorf("channels = %d", cfg.Layout.Channels())
	}
}

func TestRunCompletesAndCountsConsistent(t *testing.T) {
	res := runScheme(t, "MT", mapping.BASE, Baseline())
	if res.ExecTime <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.Transactions <= 0 || res.Requests <= 0 {
		t.Fatal("no traffic")
	}
	if res.Transactions > int64(res.Requests) {
		t.Errorf("coalescing increased traffic: %d > %d", res.Transactions, res.Requests)
	}
	if res.L1.Accesses == 0 {
		t.Error("L1 never accessed")
	}
	// Reads that miss L1 reach the LLC; writes always do.
	if res.LLC.Accesses == 0 {
		t.Error("LLC never accessed")
	}
	if res.DRAM.Reads+res.DRAM.Writes == 0 {
		t.Error("DRAM never accessed")
	}
	if res.DRAM.RowHits+res.DRAM.RowMisses != res.DRAM.Reads+res.DRAM.Writes {
		t.Errorf("DRAM accounting: hits+misses=%d reads+writes=%d",
			res.DRAM.RowHits+res.DRAM.RowMisses, res.DRAM.Reads+res.DRAM.Writes)
	}
	if res.APKI <= 0 || res.MPKI < 0 || res.MPKI > res.APKI {
		t.Errorf("APKI=%v MPKI=%v", res.APKI, res.MPKI)
	}
	if res.SystemW <= res.DRAMPower.Total() {
		t.Error("system power must include GPU power")
	}
	if res.PerfPerW <= 0 {
		t.Error("perf/W not computed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runScheme(t, "NW", mapping.PAE, Baseline())
	b := runScheme(t, "NW", mapping.PAE, Baseline())
	if a.ExecTime != b.ExecTime || a.DRAM.Activations != b.DRAM.Activations {
		t.Errorf("nondeterministic simulation: %v/%v vs %v/%v",
			a.ExecTime, a.DRAM.Activations, b.ExecTime, b.DRAM.Activations)
	}
}

// TestPAEBeatsBASEOnValleyWorkload is the headline reproduction check at
// unit-test scale: MT under BASE serializes on one channel/bank; PAE must
// recover large speedup and parallelism (paper: up to 7.5x on MT, 1.52x
// mean across valley benchmarks).
func TestPAEBeatsBASEOnValleyWorkload(t *testing.T) {
	cfg := Baseline()
	base := runScheme(t, "MT", mapping.BASE, cfg)
	pae := runScheme(t, "MT", mapping.PAE, cfg)
	speedup := float64(base.ExecTime) / float64(pae.ExecTime)
	if speedup < 1.5 {
		t.Errorf("PAE speedup on MT = %.2f, want >= 1.5", speedup)
	}
	if pae.ChannelParallelism <= base.ChannelParallelism {
		t.Errorf("channel parallelism: PAE %.2f <= BASE %.2f",
			pae.ChannelParallelism, base.ChannelParallelism)
	}
	if pae.BankParallelism <= base.BankParallelism {
		t.Errorf("bank parallelism: PAE %.2f <= BASE %.2f",
			pae.BankParallelism, base.BankParallelism)
	}
	if pae.NoCAvgLatencyCycles >= base.NoCAvgLatencyCycles {
		t.Errorf("NoC latency should drop: PAE %.1f >= BASE %.1f",
			pae.NoCAvgLatencyCycles, base.NoCAvgLatencyCycles)
	}
}

// TestNonValleyUnaffected reproduces Figure 20's claim at test scale: the
// proposed schemes do not hurt benchmarks without entropy valleys.
func TestNonValleyUnaffected(t *testing.T) {
	cfg := Baseline()
	for _, abbr := range []string{"MUM", "BFS"} {
		base := runScheme(t, abbr, mapping.BASE, cfg)
		pae := runScheme(t, abbr, mapping.PAE, cfg)
		speedup := float64(base.ExecTime) / float64(pae.ExecTime)
		if speedup < 0.85 || speedup > 1.3 {
			t.Errorf("%s: PAE speedup = %.2f, want ~1.0 (non-valley)", abbr, speedup)
		}
	}
}

// TestFAEPaysActivationPower reproduces the PAE-vs-FAE power trade-off
// (Figures 15/16): FAE harvests column entropy, spilling row-local
// requests across banks, so it activates more rows than PAE.
func TestFAEPaysActivationPower(t *testing.T) {
	cfg := Baseline()
	pae := runScheme(t, "MT", mapping.PAE, cfg)
	fae := runScheme(t, "MT", mapping.FAE, cfg)
	if fae.DRAM.RowBufferHitRate() > pae.DRAM.RowBufferHitRate() {
		t.Errorf("row-buffer hit rate: FAE %.2f > PAE %.2f (want PAE >= FAE)",
			fae.DRAM.RowBufferHitRate(), pae.DRAM.RowBufferHitRate())
	}
	// Activation *rate* is what power tracks.
	paeRate := float64(pae.DRAM.Activations) / pae.ExecTime.Seconds()
	faeRate := float64(fae.DRAM.Activations) / fae.ExecTime.Seconds()
	if faeRate < paeRate {
		t.Errorf("activation rate: FAE %.3g < PAE %.3g (want FAE >= PAE)", faeRate, paeRate)
	}
}

func TestStacked3DRuns(t *testing.T) {
	cfg := Stacked3D()
	base := runScheme(t, "SC", mapping.BASE, cfg)
	pae := runScheme(t, "SC", mapping.PAE, cfg)
	if base.ExecTime <= 0 || pae.ExecTime <= 0 {
		t.Fatal("3D runs did not complete")
	}
	if pae.ExecTime > base.ExecTime {
		t.Errorf("PAE slower than BASE on 3D SC: %v vs %v", pae.ExecTime, base.ExecTime)
	}
}

func TestMoreSMsMorePressure(t *testing.T) {
	// With PAE, 24 SMs should not be slower than 12 SMs end-to-end on a
	// parallel workload (same total work, more compute).
	spec, _ := workload.ByAbbr("LU")
	app := spec.Build(workload.Tiny)
	m12 := mapping.MustNew(mapping.PAE, Baseline().Layout, mapping.Options{Seed: 1})
	r12 := Run(app, m12, Conventional(12))
	r24 := Run(app, m12, Conventional(24))
	if r24.ExecTime > r12.ExecTime {
		t.Errorf("24 SMs slower than 12: %v vs %v", r24.ExecTime, r12.ExecTime)
	}
}

func TestGSStaysLLCResident(t *testing.T) {
	// Table II: GS has APKI 9.09 but MPKI 0.01 — its footprint fits the
	// LLC. Our GS must show a much lower LLC miss rate than MT.
	gs := runScheme(t, "GS", mapping.BASE, Baseline())
	mt := runScheme(t, "MT", mapping.BASE, Baseline())
	if gs.LLC.MissRate() >= mt.LLC.MissRate() {
		t.Errorf("GS LLC miss rate %.2f should be below MT's %.2f",
			gs.LLC.MissRate(), mt.LLC.MissRate())
	}
}

func TestResultIPS(t *testing.T) {
	r := Result{Instructions: 1000}
	if r.IPS() != 0 {
		t.Error("zero-time IPS should be 0")
	}
	r.ExecTime = 1e12 // one second
	if r.IPS() != 1000 {
		t.Errorf("IPS = %v", r.IPS())
	}
}
