package experiments

import (
	"fmt"

	"valleymap/internal/entropy"
	"valleymap/internal/gpusim"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
)

// JSON export of every experiment, for the cmd/experiments -format json
// flag and for services/scripts that consume sweep results
// machine-readably instead of scraping the text renderers.

// Envelope wraps one experiment's structured result with the experiment
// name and the options that produced it, so mixed result streams stay
// self-describing.
type Envelope struct {
	Experiment string      `json:"experiment"`
	Options    OptionsJSON `json:"options"`
	Data       any         `json:"data"`
}

// OptionsJSON is the normalized, human-readable form of Options.
type OptionsJSON struct {
	Scale     string `json:"scale"`
	Seed      int64  `json:"seed"`
	Window    int    `json:"window"`
	Bits      int    `json:"bits"`
	LineBytes int    `json:"line_bytes"`
}

func optionsJSON(o Options) OptionsJSON {
	o = o.withDefaults()
	return OptionsJSON{
		Scale:     o.Scale.String(),
		Seed:      o.Seed,
		Window:    o.Window,
		Bits:      o.Bits,
		LineBytes: o.LineBytes,
	}
}

// SuiteJSON is SuiteResult plus the derived series the text renderers
// print (speedups, harmonic means, normalized power and time).
type SuiteJSON struct {
	Workloads           []string                                 `json:"workloads"`
	Schemes             []mapping.Scheme                         `json:"schemes"`
	Results             map[string]map[mapping.Scheme]ResultJSON `json:"results"`
	Speedups            map[mapping.Scheme][]float64             `json:"speedups"`
	HMeanSpeedup        map[mapping.Scheme]float64               `json:"hmean_speedup"`
	NormalizedDRAMPower map[mapping.Scheme]float64               `json:"normalized_dram_power"`
	NormalizedExecTime  map[mapping.Scheme]float64               `json:"normalized_exec_time"`
	NormalizedPerfPerW  map[mapping.Scheme][]float64             `json:"normalized_perf_per_watt"`
}

// ResultJSON flattens one simulation run to scalar metrics.
type ResultJSON struct {
	ExecTimePS          int64   `json:"exec_time_ps"`
	Instructions        int64   `json:"instructions"`
	Transactions        int64   `json:"transactions"`
	IPS                 float64 `json:"ips"`
	L1HitRate           float64 `json:"l1_hit_rate"`
	LLCHitRate          float64 `json:"llc_hit_rate"`
	NoCAvgLatencyCycles float64 `json:"noc_avg_latency_cycles"`
	LLCParallelism      float64 `json:"llc_parallelism"`
	ChannelParallelism  float64 `json:"channel_parallelism"`
	BankParallelism     float64 `json:"bank_parallelism"`
	RowBufferHitRate    float64 `json:"row_buffer_hit_rate"`
	DRAMPowerW          float64 `json:"dram_power_w"`
	GPUPowerW           float64 `json:"gpu_power_w"`
	SystemPowerW        float64 `json:"system_power_w"`
	PerfPerWatt         float64 `json:"perf_per_watt"`
	APKI                float64 `json:"apki"`
	MPKI                float64 `json:"mpki"`
}

// FlattenResult reduces one simulation run to scalar metrics — the
// single flattening shared by the experiments JSON export and the
// service's sweep cells, so the two vocabularies cannot drift.
func FlattenResult(r gpusim.Result) ResultJSON {
	l1, llc := 0.0, 0.0
	if r.L1.Accesses > 0 {
		l1 = float64(r.L1.Hits) / float64(r.L1.Accesses)
	}
	if r.LLC.Accesses > 0 {
		llc = float64(r.LLC.Hits) / float64(r.LLC.Accesses)
	}
	return ResultJSON{
		ExecTimePS:          int64(r.ExecTime),
		Instructions:        r.Instructions,
		Transactions:        r.Transactions,
		IPS:                 r.IPS(),
		L1HitRate:           l1,
		LLCHitRate:          llc,
		NoCAvgLatencyCycles: r.NoCAvgLatencyCycles,
		LLCParallelism:      r.LLCParallelism,
		ChannelParallelism:  r.ChannelParallelism,
		BankParallelism:     r.BankParallelism,
		RowBufferHitRate:    r.DRAM.RowBufferHitRate(),
		DRAMPowerW:          r.DRAMPower.Total(),
		GPUPowerW:           r.GPUPowerW,
		SystemPowerW:        r.SystemW,
		PerfPerWatt:         r.PerfPerW,
		APKI:                r.APKI,
		MPKI:                r.MPKI,
	}
}

// SuitePayload converts a finished sweep to its JSON form.
func SuitePayload(s SuiteResult) SuiteJSON {
	out := SuiteJSON{
		Workloads:           s.Workloads,
		Schemes:             s.Schemes,
		Results:             map[string]map[mapping.Scheme]ResultJSON{},
		Speedups:            map[mapping.Scheme][]float64{},
		HMeanSpeedup:        map[mapping.Scheme]float64{},
		NormalizedDRAMPower: map[mapping.Scheme]float64{},
		NormalizedExecTime:  map[mapping.Scheme]float64{},
		NormalizedPerfPerW:  map[mapping.Scheme][]float64{},
	}
	for abbr, row := range s.Results {
		jr := map[mapping.Scheme]ResultJSON{}
		for sc, r := range row {
			jr[sc] = FlattenResult(r)
		}
		out.Results[abbr] = jr
	}
	for _, sc := range s.Schemes {
		out.Speedups[sc] = s.SpeedupSeries(sc)
		out.HMeanSpeedup[sc] = s.HMeanSpeedup(sc)
		out.NormalizedDRAMPower[sc] = s.NormalizedDRAMPower(sc)
		out.NormalizedExecTime[sc] = s.NormalizedExecTime(sc)
		out.NormalizedPerfPerW[sc] = s.NormalizedPerfPerWatt(sc)
	}
	return out
}

// Names lists every experiment in presentation order — the single
// registry the CLI's -exp validation, "all" sequencing, and JSONPayload
// all share.
func Names() []string {
	return []string{"fig3", "fig5", "fig10", "table2", "suite", "fig18", "fig19", "fig20", "ablation"}
}

// JSONPayload runs the named experiment and returns its envelope. Names
// match the cmd/experiments -exp values (see Names).
func JSONPayload(name string, opt Options) (Envelope, error) {
	env := Envelope{Experiment: name, Options: optionsJSON(opt)}
	switch name {
	case "fig3":
		w2, w4 := Figure3()
		env.Data = map[string]float64{"hstar_w2": w2, "hstar_w4": w4}
	case "fig5":
		profs := Figure5(opt)
		l := layout.HynixGDDR5()
		ch, bank := l.FieldBits(layout.Channel), l.FieldBits(layout.Bank)
		data := map[string]any{}
		for abbr, p := range profs {
			data[abbr] = map[string]any{
				"per_bit":  p.PerBit,
				"requests": p.Requests,
				"valley":   p.ChannelBankValley(ch, bank, entropy.DefaultLow, entropy.DefaultHigh),
			}
		}
		env.Data = data
	case "fig10":
		profs := Figure10(opt)
		data := map[string]any{}
		for sc, p := range profs {
			data[string(sc)] = map[string]any{"per_bit": p.PerBit, "requests": p.Requests}
		}
		env.Data = data
	case "table2":
		env.Data = Table2(opt)
	case "suite":
		env.Data = SuitePayload(ValleySuite(opt))
	case "fig18":
		env.Data = Figure18(opt)
	case "fig19":
		data := map[string][3]float64{}
		for sc, trio := range Figure19(opt) {
			data[string(sc)] = trio
		}
		env.Data = data
	case "fig20":
		env.Data = SuitePayload(NonValleySuite(opt))
	case "ablation":
		env.Data = map[string]any{
			"input_breadth": AblationInputBreadth(opt),
			"window_size":   AblationWindowSize(opt, []int{1, 2, 4, 8, 12, 16, 24, 48}),
		}
	default:
		return Envelope{}, fmt.Errorf("experiments: unknown experiment %q", name)
	}
	return env, nil
}
