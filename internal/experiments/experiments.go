// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI) plus the analysis figures of Sections II–IV.
// Each experiment has a structured form (for tests, benchmarks and JSON
// export) and a text renderer (for the cmd/experiments tool).
package experiments

import (
	"fmt"
	"runtime"

	"valleymap/internal/entropy"
	"valleymap/internal/gpusim"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// Options controls experiment scale and randomness.
type Options struct {
	// Scale selects trace size (workload.Small is the bench default).
	Scale workload.Scale
	// Seed selects the random BIM instance for PAE/FAE/ALL (1..3 map to
	// BIM-1..BIM-3 of Figure 19).
	Seed int64
	// Window is the entropy window size w; 0 means the SM count of the
	// baseline configuration (12), the paper's heuristic.
	Window int
	// Bits is the physical address width (30 for the 1 GB Hynix part).
	Bits int
	// LineBytes is the coalescing granularity.
	LineBytes int
}

// Defaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Window == 0 {
		o.Window = 12
	}
	if o.Bits == 0 {
		o.Bits = 30
	}
	if o.LineBytes == 0 {
		o.LineBytes = 128
	}
	return o
}

// streamProfile drains a stream through the online profiler with per-TB
// fan-out across the machine — the experiments' profiling hot path.
// In-memory and generator streams cannot fail, so an error here is a
// programming bug, not an input condition.
func streamProfile(st trace.Stream, window, bits int, f entropy.Transform, bf func([]uint64)) entropy.Profile {
	p, err := entropy.ProfileStream(st, entropy.StreamOptions{
		Window: window, Bits: bits, Transform: f, BatchTransform: bf,
		Workers: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: profiling stream: %v", err))
	}
	return p
}

// profileApp computes a workload's entropy profile on coalesced
// transactions, optionally through a mapper, streaming the trace
// instead of copying it (bit-identical to the old CoalesceApp +
// AppProfile pipeline).
func profileApp(app *trace.App, opt Options, f entropy.Transform) entropy.Profile {
	st := trace.CoalesceStream(trace.AppSource(app).Stream(), opt.LineBytes)
	return streamProfile(st, opt.Window, opt.Bits, f, nil)
}

// profileSource profiles straight from a workload generator: generate →
// coalesce → profile at O(TB) memory, never materializing the trace.
func profileSource(src trace.Source, opt Options) entropy.Profile {
	st := trace.CoalesceStream(src.Stream(), opt.LineBytes)
	return streamProfile(st, opt.Window, opt.Bits, nil, nil)
}

// Figure3 reproduces the worked window-entropy example: 8 TBs with BVR
// pattern 0,0,1,1,0,0,1,1 under window sizes 2 and 4. It returns
// (H* at w=2, H* at w=4) = (3/7, 1).
func Figure3() (w2, w4 float64) {
	pattern := []int{0, 0, 1, 1, 0, 0, 1, 1}
	tbs := make([]entropy.TBProfile, len(pattern))
	for i, b := range pattern {
		tbs[i] = entropy.TBProfile{
			ID:       i + 1,
			BVR:      []entropy.Ratio{{Ones: int64(b), Total: 1}},
			Requests: 1,
		}
	}
	return entropy.WindowEntropy(tbs, 2, 1).PerBit[0],
		entropy.WindowEntropy(tbs, 4, 1).PerBit[0]
}

// Figure5 computes the entropy distribution of all 18 workloads
// (16 benchmarks + SRAD2K1 + DWT2DK1), keyed by abbreviation.
func Figure5(opt Options) map[string]entropy.Profile {
	opt = opt.withDefaults()
	out := make(map[string]entropy.Profile, 18)
	for _, spec := range workload.All() {
		out[spec.Abbr] = profileSource(spec.Source(opt.Scale), opt)
	}
	return out
}

// Figure10 computes MT's entropy distribution under all six mapping
// schemes. PAE/FAE must fill the channel/bank valley; ALL fills all
// valleys.
func Figure10(opt Options) map[mapping.Scheme]entropy.Profile {
	opt = opt.withDefaults()
	spec, _ := workload.ByAbbr("MT")
	app := spec.Build(opt.Scale)
	l := layout.HynixGDDR5()
	out := make(map[mapping.Scheme]entropy.Profile, 6)
	for _, s := range mapping.Schemes() {
		m := mapping.MustNew(s, l, mapping.Options{Seed: opt.Seed})
		// Build once, stream each candidate's profile with the batched
		// BIM transform hook (coalescing precedes the mapper).
		st := trace.CoalesceStream(trace.AppSource(app).Stream(), opt.LineBytes)
		out[s] = streamProfile(st, opt.Window, opt.Bits, nil, m.MapBatch)
	}
	return out
}

// SuiteResult holds simulation results for a set of workloads × schemes.
type SuiteResult struct {
	Workloads []string
	Schemes   []mapping.Scheme
	// Results[abbr][scheme] is the full simulation result.
	Results map[string]map[mapping.Scheme]gpusim.Result
}

// RunSuite simulates every workload under every scheme on one system
// configuration.
func RunSuite(specs []workload.Spec, schemes []mapping.Scheme, cfg gpusim.Config, opt Options) SuiteResult {
	opt = opt.withDefaults()
	out := SuiteResult{Schemes: schemes, Results: map[string]map[mapping.Scheme]gpusim.Result{}}
	// One Runner for the whole suite: cells run sequentially, so the
	// engine slab and request pools stay warm across every cell.
	runner := gpusim.NewRunner()
	for _, spec := range specs {
		app := spec.Build(opt.Scale)
		row := map[mapping.Scheme]gpusim.Result{}
		for _, s := range schemes {
			m := mapping.MustNew(s, cfg.Layout, mapping.Options{Seed: opt.Seed})
			row[s] = runner.Run(app, m, cfg)
		}
		out.Workloads = append(out.Workloads, spec.Abbr)
		out.Results[spec.Abbr] = row
	}
	return out
}

// ValleySuite runs the ten valley benchmarks on the baseline system —
// the data behind Figures 11–17.
func ValleySuite(opt Options) SuiteResult {
	return RunSuite(workload.ValleySet(), mapping.Schemes(), gpusim.Baseline(), opt)
}

// NonValleySuite runs the six non-valley benchmarks (Figure 20).
func NonValleySuite(opt Options) SuiteResult {
	return RunSuite(workload.NonValleySet(), mapping.Schemes(), gpusim.Baseline(), opt)
}

// Speedup returns exec-time(BASE)/exec-time(scheme) for one workload.
func (r SuiteResult) Speedup(abbr string, s mapping.Scheme) float64 {
	base := r.Results[abbr][mapping.BASE].ExecTime
	cur := r.Results[abbr][s].ExecTime
	if cur <= 0 {
		return 0
	}
	return float64(base) / float64(cur)
}

// SpeedupSeries returns per-workload speedups for one scheme, in suite
// order.
func (r SuiteResult) SpeedupSeries(s mapping.Scheme) []float64 {
	out := make([]float64, len(r.Workloads))
	for i, w := range r.Workloads {
		out[i] = r.Speedup(w, s)
	}
	return out
}

// HMeanSpeedup is the paper's HMEAN bar of Figures 12/17/20.
func (r SuiteResult) HMeanSpeedup(s mapping.Scheme) float64 {
	return HarmonicMean(r.SpeedupSeries(s))
}

// NormalizedDRAMPower returns mean DRAM power of a scheme normalized to
// BASE (Figure 11's x-axis).
func (r SuiteResult) NormalizedDRAMPower(s mapping.Scheme) float64 {
	var ratios []float64
	for _, w := range r.Workloads {
		b := r.Results[w][mapping.BASE].DRAMPower.Total()
		c := r.Results[w][s].DRAMPower.Total()
		if b > 0 {
			ratios = append(ratios, c/b)
		}
	}
	return ArithMean(ratios)
}

// NormalizedExecTime returns mean execution time normalized to BASE
// (Figure 11's y-axis).
func (r SuiteResult) NormalizedExecTime(s mapping.Scheme) float64 {
	var ratios []float64
	for _, w := range r.Workloads {
		b := r.Results[w][mapping.BASE].ExecTime
		c := r.Results[w][s].ExecTime
		if b > 0 {
			ratios = append(ratios, float64(c)/float64(b))
		}
	}
	return ArithMean(ratios)
}

// NormalizedPerfPerWatt returns per-workload perf/W normalized to BASE
// (Figure 17) for one scheme.
func (r SuiteResult) NormalizedPerfPerWatt(s mapping.Scheme) []float64 {
	out := make([]float64, len(r.Workloads))
	for i, w := range r.Workloads {
		b := r.Results[w][mapping.BASE].PerfPerW
		c := r.Results[w][s].PerfPerW
		if b > 0 {
			out[i] = c / b
		}
	}
	return out
}

// NormalizedSystemPower returns mean system (GPU+DRAM) power normalized
// to BASE (quoted in Section VI-C).
func (r SuiteResult) NormalizedSystemPower(s mapping.Scheme) float64 {
	var ratios []float64
	for _, w := range r.Workloads {
		b := r.Results[w][mapping.BASE].SystemW
		c := r.Results[w][s].SystemW
		if b > 0 {
			ratios = append(ratios, c/b)
		}
	}
	return ArithMean(ratios)
}

// Figure18Point is one bar group of the SM-count/3D sensitivity study.
type Figure18Point struct {
	Config   string                     `json:"config"`
	Speedups map[mapping.Scheme]float64 `json:"speedups"` // arithmetic mean over valley set
}

// Figure18 runs the valley suite on 12/24/48-SM conventional systems and
// the 64-SM 3D-stacked system.
func Figure18(opt Options) []Figure18Point {
	opt = opt.withDefaults()
	configs := []gpusim.Config{
		gpusim.Conventional(12),
		gpusim.Conventional(24),
		gpusim.Conventional(48),
		gpusim.Stacked3D(),
	}
	var out []Figure18Point
	for _, cfg := range configs {
		suite := RunSuite(workload.ValleySet(), mapping.Schemes(), cfg, opt)
		pt := Figure18Point{Config: cfg.Name, Speedups: map[mapping.Scheme]float64{}}
		for _, s := range mapping.Schemes() {
			pt.Speedups[s] = ArithMean(suite.SpeedupSeries(s))
		}
		out = append(out, pt)
	}
	return out
}

// Figure19 evaluates BIM-instance sensitivity: three random BIMs per
// proposed scheme, mean speedup over the valley set for each.
func Figure19(opt Options) map[mapping.Scheme][3]float64 {
	opt = opt.withDefaults()
	out := map[mapping.Scheme][3]float64{}
	for _, s := range mapping.Proposed() {
		var trio [3]float64
		for i := 0; i < 3; i++ {
			o := opt
			o.Seed = int64(i + 1)
			suite := RunSuite(workload.ValleySet(), []mapping.Scheme{mapping.BASE, s}, gpusim.Baseline(), o)
			trio[i] = ArithMean(suite.SpeedupSeries(s))
		}
		out[s] = trio
	}
	return out
}

// Table2Row is one measured row of Table II.
type Table2Row struct {
	Abbr         string  `json:"abbr"`
	APKI         float64 `json:"apki"` // measured under BASE
	MPKI         float64 `json:"mpki"`
	Kernels      int     `json:"kernels"`      // kernels in the (scaled) trace
	Instructions int64   `json:"instructions"` // dynamic instructions in the (scaled) trace
	PaperAPKI    float64 `json:"paper_apki"`
	PaperMPKI    float64 `json:"paper_mpki"`
	PaperKernels int     `json:"paper_kernels"`
}

// Table2 measures benchmark characteristics under the BASE mapping.
func Table2(opt Options) []Table2Row {
	opt = opt.withDefaults()
	cfg := gpusim.Baseline()
	base := mapping.NewBASE(cfg.Layout)
	var out []Table2Row
	runner := gpusim.NewRunner()
	for _, spec := range workload.Catalog() {
		app := spec.Build(opt.Scale)
		res := runner.Run(app, base, cfg)
		out = append(out, Table2Row{
			Abbr:         spec.Abbr,
			APKI:         res.APKI,
			MPKI:         res.MPKI,
			Kernels:      len(app.Kernels),
			Instructions: app.Instructions(),
			PaperAPKI:    spec.PaperAPKI,
			PaperMPKI:    spec.PaperMPKI,
			PaperKernels: spec.PaperKernels,
		})
	}
	return out
}

// HarmonicMean of positive values (0 if empty or any non-positive).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// ArithMean of values (0 if empty).
func ArithMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
