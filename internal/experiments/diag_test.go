package experiments

import (
	"fmt"
	"os"
	"testing"

	"valleymap/internal/gpusim"
	"valleymap/internal/mapping"
	"valleymap/internal/workload"
)

// TestDiagDump prints per-scheme diagnostics for tuning; enable with
// VALLEYMAP_DIAG=1.
func TestDiagDump(t *testing.T) {
	if os.Getenv("VALLEYMAP_DIAG") == "" {
		t.Skip("set VALLEYMAP_DIAG=1 to dump diagnostics")
	}
	cfg := gpusim.Baseline()
	for _, abbr := range []string{"MT", "LU", "GS", "NW", "SC", "SP"} {
		spec, _ := workload.ByAbbr(abbr)
		app := spec.Build(workload.Tiny)
		fmt.Printf("%s:\n", abbr)
		var baseT float64
		for _, s := range mapping.Schemes() {
			m := mapping.MustNew(s, cfg.Layout, mapping.Options{Seed: 1})
			r := gpusim.Run(app, m, cfg)
			if s == mapping.BASE {
				baseT = float64(r.ExecTime)
			}
			fmt.Printf("  %-4s speedup=%5.2f acts=%6d rbhit=%.2f dramR=%6d dramW=%6d P=%6.2fW chPar=%.2f bkPar=%.2f nocLat=%6.1f llcMiss=%.2f\n",
				s, baseT/float64(r.ExecTime), r.DRAM.Activations, r.DRAM.RowBufferHitRate(),
				r.DRAM.Reads, r.DRAM.Writes, r.DRAMPower.Total(), r.ChannelParallelism, r.BankParallelism,
				r.NoCAvgLatencyCycles, r.LLC.MissRate())
		}
	}
}
