package experiments

import "valleymap/internal/gpusim"

func baselineCfg() gpusim.Config { return gpusim.Baseline() }
