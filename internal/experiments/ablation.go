package experiments

import (
	"fmt"
	"io"

	"valleymap/internal/gpusim"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// The ablations quantify two central design choices:
// how wide the BIM's input-bit range must be (the paper's Broad-vs-PM
// argument, Section IV-A) and how the entropy metric responds to the
// window-size parameter w (Section III-A).

// BreadthPoint is one input-mask configuration of the breadth ablation.
type BreadthPoint struct {
	Name    string  `json:"name"`
	InMask  uint64  `json:"in_mask"`
	Speedup float64 `json:"speedup"`                  // arithmetic mean over the sampled valley benchmarks
	MinCB   float64 `json:"min_channel_bank_entropy"` // post-mapping min channel/bank entropy, averaged
}

// AblationInputBreadth sweeps the input-bit mask of a Broad-strategy BIM
// from PM-narrow (two low row bits) to FAE-wide (the full non-block
// address) and measures both the entropy delivered to the channel/bank
// bits and the resulting speedup. This isolates the paper's core claim:
// breadth, not XOR-ing per se, is what makes a mapping robust.
func AblationInputBreadth(opt Options) []BreadthPoint {
	opt = opt.withDefaults()
	l := layout.HynixGDDR5()
	cfg := gpusim.Baseline()
	rowBits := l.FieldBits(layout.Row)
	targetMask := l.MaskOf(layout.Channel, layout.Bank)
	narrow := targetMask | 1<<uint(rowBits[0]) | 1<<uint(rowBits[1])
	half := targetMask
	for _, b := range rowBits[:len(rowBits)/2] {
		half |= 1 << uint(b)
	}
	points := []BreadthPoint{
		{Name: "narrow-2row", InMask: narrow},
		{Name: "half-page", InMask: half},
		{Name: "page (PAE)", InMask: l.PageMask()},
		{Name: "full (FAE)", InMask: l.NonBlockMask()},
	}
	// A representative slice of the valley set keeps the sweep fast while
	// covering valleys at different bit positions.
	specs := []string{"MT", "LU", "SC", "SP"}
	chBank := layout.Bits0(targetMask)
	runner := gpusim.NewRunner()
	for i := range points {
		m := mapping.NewBroadCustom(mapping.Scheme(points[i].Name), l, points[i].InMask, opt.Seed)
		var spSum, cbSum float64
		for _, abbr := range specs {
			spec, _ := workload.ByAbbr(abbr)
			app := spec.Build(opt.Scale)
			base := runner.Run(app, mapping.NewBASE(l), cfg)
			res := runner.Run(app, m, cfg)
			spSum += float64(base.ExecTime) / float64(res.ExecTime)
			st := trace.CoalesceStream(trace.AppSource(app).Stream(), opt.LineBytes)
			prof := streamProfile(st, opt.Window, opt.Bits, nil, m.MapBatch)
			cbSum += prof.Min(chBank)
		}
		points[i].Speedup = spSum / float64(len(specs))
		points[i].MinCB = cbSum / float64(len(specs))
	}
	return points
}

// RenderAblationBreadth prints the input-breadth sweep.
func RenderAblationBreadth(w io.Writer, opt Options) {
	fmt.Fprintf(w, "Ablation — BIM input-bit breadth (MT/LU/SC/SP mean)\n")
	fmt.Fprintf(w, "  %-12s %14s %10s %14s\n", "inputs", "input bits", "speedup", "min ch+bank H")
	for _, pt := range AblationInputBreadth(opt) {
		fmt.Fprintf(w, "  %-12s %14d %9.2fx %14.2f\n",
			pt.Name, popcount(pt.InMask), pt.Speedup, pt.MinCB)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// WindowPoint is one entry of the window-size sensitivity sweep.
type WindowPoint struct {
	Window int `json:"window"`
	// MeanChBank is MT's mean channel/bank entropy at this window size.
	MeanChBank float64 `json:"mean_channel_bank_entropy"`
	// MeanAll is the mean entropy over all non-block bits.
	MeanAll float64 `json:"mean_entropy"`
}

// AblationWindowSize sweeps the window parameter w for MT, reproducing
// the Section III-A observation that available entropy grows with the
// number of concurrently executing TBs (Figure 3's lesson at full scale).
func AblationWindowSize(opt Options, windows []int) []WindowPoint {
	opt = opt.withDefaults()
	spec, _ := workload.ByAbbr("MT")
	// Coalesce once into memory, then stream one profiling pass per
	// window size.
	app := trace.CoalesceApp(spec.Build(opt.Scale), opt.LineBytes)
	src := trace.AppSource(app)
	chBank := []int{8, 9, 10, 11, 12, 13}
	var nonBlock []int
	for b := 6; b < opt.Bits; b++ {
		nonBlock = append(nonBlock, b)
	}
	out := make([]WindowPoint, 0, len(windows))
	for _, w := range windows {
		p := streamProfile(src.Stream(), w, opt.Bits, nil, nil)
		out = append(out, WindowPoint{
			Window:     w,
			MeanChBank: p.Mean(chBank),
			MeanAll:    p.Mean(nonBlock),
		})
	}
	return out
}

// RenderAblationWindow prints the window sweep.
func RenderAblationWindow(w io.Writer, opt Options) {
	fmt.Fprintf(w, "Ablation — window size sensitivity (MT)\n")
	fmt.Fprintf(w, "  %-8s %14s %12s\n", "window", "mean ch+bank H", "mean H")
	for _, pt := range AblationWindowSize(opt, []int{1, 2, 4, 8, 12, 16, 24, 48}) {
		fmt.Fprintf(w, "  %-8d %14.3f %12.3f\n", pt.Window, pt.MeanChBank, pt.MeanAll)
	}
}
