package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"valleymap/internal/entropy"
	"valleymap/internal/layout"
	"valleymap/internal/mapping"
)

// sparkline renders a per-bit entropy profile MSB-first (bit 29 left,
// bit 6 right, like Figure 5), using eight levels.
func sparkline(p entropy.Profile, hi, lo int) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for b := hi; b >= lo; b-- {
		v := p.PerBit[b]
		idx := int(v * float64(len(levels)))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// RenderFigure3 prints the worked example.
func RenderFigure3(w io.Writer) {
	h2, h4 := Figure3()
	fmt.Fprintf(w, "Figure 3 — window-based entropy worked example\n")
	fmt.Fprintf(w, "  window=2: H* = %.4f (paper: 3/7 = 0.4286)\n", h2)
	fmt.Fprintf(w, "  window=4: H* = %.4f (paper: 1.0)\n", h4)
}

// RenderFigure5 prints all 18 entropy distributions as sparklines over
// bits 29..6 with the channel/bank window marked.
func RenderFigure5(w io.Writer, opt Options) {
	profs := Figure5(opt)
	fmt.Fprintf(w, "Figure 5 — entropy distributions (bit 29 ... bit 6), window=%d\n", opt.withDefaults().Window)
	fmt.Fprintf(w, "  channel bits 8-9, bank bits 10-13 (positions marked by ^)\n")
	var abbrs []string
	for a := range profs {
		abbrs = append(abbrs, a)
	}
	sort.Strings(abbrs)
	l := layout.HynixGDDR5()
	ch, bank := l.FieldBits(layout.Channel), l.FieldBits(layout.Bank)
	for _, a := range abbrs {
		p := profs[a]
		valley := ""
		if p.ChannelBankValley(ch, bank, entropy.DefaultLow, entropy.DefaultHigh) {
			valley = "  <- entropy valley"
		}
		fmt.Fprintf(w, "  %-8s %s%s\n", a, sparkline(p, 29, 6), valley)
	}
	fmt.Fprintf(w, "  %-8s %s\n", "", strings.Repeat(" ", 29-13)+"^^^^^^")
}

// RenderFigure10 prints MT's entropy under each scheme.
func RenderFigure10(w io.Writer, opt Options) {
	profs := Figure10(opt)
	fmt.Fprintf(w, "Figure 10 — MT entropy by mapping scheme (bit 29 ... bit 6)\n")
	for _, s := range mapping.Schemes() {
		p := profs[s]
		fmt.Fprintf(w, "  %-5s %s  min(ch+bank)=%.2f\n", s, sparkline(p, 29, 6),
			p.Min([]int{8, 9, 10, 11, 12, 13}))
	}
}

// RenderTable2 prints measured vs paper benchmark characteristics.
func RenderTable2(w io.Writer, opt Options) {
	rows := Table2(opt)
	fmt.Fprintf(w, "Table II — benchmark characteristics (measured @ %s scale vs paper)\n", opt.withDefaults().Scale)
	fmt.Fprintf(w, "  %-6s %9s %9s %6s %12s   %9s %9s %7s\n",
		"Bench", "APKI", "MPKI", "#Knls", "#Insns", "pAPKI", "pMPKI", "p#Knls")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s %9.2f %9.2f %6d %12d   %9.2f %9.2f %7d\n",
			r.Abbr, r.APKI, r.MPKI, r.Kernels, r.Instructions,
			r.PaperAPKI, r.PaperMPKI, r.PaperKernels)
	}
}

// RenderSuiteFigures prints Figures 11–17 from one valley-suite run.
func RenderSuiteFigures(w io.Writer, suite SuiteResult) {
	schemes := suite.Schemes

	fmt.Fprintf(w, "Figure 11 — normalized execution time vs normalized DRAM power (valley mean)\n")
	fmt.Fprintf(w, "  %-5s %10s %10s %10s\n", "Map", "ExecTime", "DRAMPower", "Speedup")
	for _, s := range schemes {
		fmt.Fprintf(w, "  %-5s %10.3f %10.3f %10.2fx\n", s,
			suite.NormalizedExecTime(s), suite.NormalizedDRAMPower(s),
			ArithMean(suite.SpeedupSeries(s)))
	}

	fmt.Fprintf(w, "\nFigure 12 — per-benchmark speedup over BASE\n")
	fmt.Fprintf(w, "  %-8s", "Bench")
	for _, s := range schemes {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	for _, wl := range suite.Workloads {
		fmt.Fprintf(w, "  %-8s", wl)
		for _, s := range schemes {
			fmt.Fprintf(w, " %7.2fx", suite.Speedup(wl, s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-8s", "HMEAN")
	for _, s := range schemes {
		fmt.Fprintf(w, " %7.2fx", suite.HMeanSpeedup(s))
	}
	fmt.Fprintln(w)

	renderMetric := func(title, unit string, get func(r mapping.Scheme, wl string) float64, avg bool) {
		fmt.Fprintf(w, "\n%s\n", title)
		fmt.Fprintf(w, "  %-8s", "Bench")
		for _, s := range schemes {
			fmt.Fprintf(w, " %8s", s)
		}
		fmt.Fprintln(w)
		sums := make(map[mapping.Scheme]float64)
		for _, wl := range suite.Workloads {
			fmt.Fprintf(w, "  %-8s", wl)
			for _, s := range schemes {
				v := get(s, wl)
				sums[s] += v
				fmt.Fprintf(w, " %8.2f", v)
			}
			fmt.Fprintln(w)
		}
		if avg {
			fmt.Fprintf(w, "  %-8s", "AVG")
			for _, s := range schemes {
				fmt.Fprintf(w, " %8.2f", sums[s]/float64(len(suite.Workloads)))
			}
			fmt.Fprintf(w, "  (%s)\n", unit)
		}
	}

	renderMetric("Figure 13a — average NoC packet latency", "NoC cycles",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].NoCAvgLatencyCycles }, true)
	renderMetric("Figure 13b — LLC miss rate", "fraction",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].LLC.MissRate() }, true)
	renderMetric("Figure 14a — LLC-level parallelism", "busy slices",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].LLCParallelism }, true)
	renderMetric("Figure 14b — channel-level parallelism", "busy channels",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].ChannelParallelism }, true)
	renderMetric("Figure 14c — bank-level parallelism (per channel)", "busy banks",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].BankParallelism }, true)
	renderMetric("Figure 15 — DRAM row-buffer hit rate", "fraction",
		func(s mapping.Scheme, wl string) float64 { return suite.Results[wl][s].DRAM.RowBufferHitRate() }, true)

	fmt.Fprintf(w, "\nFigure 16 — DRAM power breakdown (W), averaged over valley benchmarks\n")
	fmt.Fprintf(w, "  %-5s %10s %10s %10s %10s %10s\n", "Map", "background", "activate", "read", "write", "total")
	for _, s := range schemes {
		var bg, act, rd, wr float64
		for _, wl := range suite.Workloads {
			p := suite.Results[wl][s].DRAMPower
			bg += p.Background
			act += p.Activate
			rd += p.Read
			wr += p.Write
		}
		n := float64(len(suite.Workloads))
		fmt.Fprintf(w, "  %-5s %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			s, bg/n, act/n, rd/n, wr/n, (bg+act+rd+wr)/n)
	}

	fmt.Fprintf(w, "\nFigure 17 — normalized performance per watt (GPU+DRAM)\n")
	fmt.Fprintf(w, "  %-8s", "Bench")
	for _, s := range schemes {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	for i, wl := range suite.Workloads {
		fmt.Fprintf(w, "  %-8s", wl)
		for _, s := range schemes {
			fmt.Fprintf(w, " %8.2f", suite.NormalizedPerfPerWatt(s)[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-8s", "HMEAN")
	for _, s := range schemes {
		fmt.Fprintf(w, " %8.2f", HarmonicMean(suite.NormalizedPerfPerWatt(s)))
	}
	fmt.Fprintln(w)
}

// RenderFigure18 prints the SM-count / 3D sensitivity study.
func RenderFigure18(w io.Writer, opt Options) {
	pts := Figure18(opt)
	fmt.Fprintf(w, "Figure 18 — sensitivity to SM count and memory organization (mean speedup)\n")
	fmt.Fprintf(w, "  %-12s", "Config")
	for _, s := range mapping.Schemes() {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	for _, pt := range pts {
		fmt.Fprintf(w, "  %-12s", pt.Config)
		for _, s := range mapping.Schemes() {
			fmt.Fprintf(w, " %7.2fx", pt.Speedups[s])
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure19 prints BIM-instance sensitivity.
func RenderFigure19(w io.Writer, opt Options) {
	res := Figure19(opt)
	fmt.Fprintf(w, "Figure 19 — speedup for three random BIMs per scheme\n")
	fmt.Fprintf(w, "  %-5s %8s %8s %8s\n", "Map", "BIM-1", "BIM-2", "BIM-3")
	for _, s := range mapping.Proposed() {
		trio := res[s]
		fmt.Fprintf(w, "  %-5s %7.2fx %7.2fx %7.2fx\n", s, trio[0], trio[1], trio[2])
	}
}

// RenderFigure20 prints the non-valley benchmark results.
func RenderFigure20(w io.Writer, suite SuiteResult) {
	fmt.Fprintf(w, "Figure 20 — non-valley benchmarks, speedup over BASE\n")
	fmt.Fprintf(w, "  %-8s", "Bench")
	for _, s := range suite.Schemes {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	for _, wl := range suite.Workloads {
		fmt.Fprintf(w, "  %-8s", wl)
		for _, s := range suite.Schemes {
			fmt.Fprintf(w, " %7.2fx", suite.Speedup(wl, s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-8s", "HMEAN")
	for _, s := range suite.Schemes {
		fmt.Fprintf(w, " %7.2fx", suite.HMeanSpeedup(s))
	}
	fmt.Fprintln(w)
}
