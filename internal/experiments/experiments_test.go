package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"valleymap/internal/mapping"
	"valleymap/internal/workload"
)

func tinyOpt() Options { return Options{Scale: workload.Tiny} }

func TestFigure3MatchesPaper(t *testing.T) {
	w2, w4 := Figure3()
	if math.Abs(w2-3.0/7.0) > 1e-12 {
		t.Errorf("w=2: %v, want 3/7", w2)
	}
	if math.Abs(w4-1.0) > 1e-12 {
		t.Errorf("w=4: %v, want 1", w4)
	}
}

func TestFigure5CoversAllWorkloads(t *testing.T) {
	profs := Figure5(tinyOpt())
	if len(profs) != 18 {
		t.Fatalf("profiles = %d, want 18", len(profs))
	}
	for abbr, p := range profs {
		if len(p.PerBit) != 30 {
			t.Errorf("%s: %d bits", abbr, len(p.PerBit))
		}
		for b, h := range p.PerBit {
			if h < 0 || h > 1+1e-9 {
				t.Errorf("%s bit %d entropy %v out of range", abbr, b, h)
			}
		}
	}
}

func TestFigure10ValleyRemoval(t *testing.T) {
	profs := Figure10(tinyOpt())
	chBank := []int{8, 9, 10, 11, 12, 13}
	base := profs[mapping.BASE].Min(chBank)
	pae := profs[mapping.PAE].Min(chBank)
	fae := profs[mapping.FAE].Min(chBank)
	if base > 0.3 {
		t.Errorf("BASE min ch/bank entropy = %.2f, expected a valley", base)
	}
	if pae < 0.6 {
		t.Errorf("PAE min ch/bank entropy = %.2f, valley not removed", pae)
	}
	if fae < 0.6 {
		t.Errorf("FAE min ch/bank entropy = %.2f, valley not removed", fae)
	}
	// PM narrows but does not remove the valley robustly; it must not
	// exceed PAE.
	if pm := profs[mapping.PM].Min(chBank); pm > pae {
		t.Errorf("PM min entropy %.2f > PAE %.2f", pm, pae)
	}
}

func TestValleySuiteOrdering(t *testing.T) {
	// The core result at tiny scale: PAE/FAE/ALL >> PM/RMP >= BASE on
	// valley benchmarks; FAE burns more DRAM power than PAE. The full
	// valley set is used because the PAE-vs-FAE perf/W margin is a
	// suite-level effect (paper: 1.39x vs 1.36x).
	suite := RunSuite(workload.ValleySet(), mapping.Schemes(), baselineCfg(), tinyOpt())
	paeMean := ArithMean(suite.SpeedupSeries(mapping.PAE))
	faeMean := ArithMean(suite.SpeedupSeries(mapping.FAE))
	baseMean := ArithMean(suite.SpeedupSeries(mapping.BASE))
	if baseMean != 1.0 {
		t.Errorf("BASE mean speedup = %v, want exactly 1", baseMean)
	}
	if paeMean < 1.3 {
		t.Errorf("PAE mean speedup = %.2f, want > 1.3 on valley subset", paeMean)
	}
	if faeMean < 1.3 {
		t.Errorf("FAE mean speedup = %.2f", faeMean)
	}
	// Power ordering (Figure 11): FAE and ALL cost more DRAM power than
	// PAE.
	paePow := suite.NormalizedDRAMPower(mapping.PAE)
	faePow := suite.NormalizedDRAMPower(mapping.FAE)
	allPow := suite.NormalizedDRAMPower(mapping.ALL)
	if faePow < paePow {
		t.Errorf("FAE power %.2f < PAE power %.2f", faePow, paePow)
	}
	if allPow < paePow {
		t.Errorf("ALL power %.2f < PAE power %.2f", allPow, paePow)
	}
	// Perf/W (Figure 17): PAE at least matches FAE.
	paePPW := HarmonicMean(suite.NormalizedPerfPerWatt(mapping.PAE))
	faePPW := HarmonicMean(suite.NormalizedPerfPerWatt(mapping.FAE))
	if paePPW < faePPW-0.05 {
		t.Errorf("perf/W: PAE %.2f well below FAE %.2f", paePPW, faePPW)
	}
}

func TestNonValleySuiteFlat(t *testing.T) {
	suite := RunSuite(workload.NonValleySet()[:3], []mapping.Scheme{mapping.BASE, mapping.PAE},
		baselineCfg(), tinyOpt())
	for _, wl := range suite.Workloads {
		sp := suite.Speedup(wl, mapping.PAE)
		if sp < 0.85 || sp > 1.35 {
			t.Errorf("%s: PAE speedup %.2f not ~flat", wl, sp)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(tinyOpt())
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	byAbbr := map[string]Table2Row{}
	for _, r := range rows {
		byAbbr[r.Abbr] = r
		if r.APKI <= 0 || r.Instructions <= 0 {
			t.Errorf("%s: empty measurements %+v", r.Abbr, r)
		}
		if r.MPKI > r.APKI+1e-9 {
			t.Errorf("%s: MPKI %v > APKI %v", r.Abbr, r.MPKI, r.APKI)
		}
	}
	// Qualitative Table II relations: GS and LM are LLC-resident (low
	// miss ratio); MUM/BFS are miss-heavy.
	if g := byAbbr["GS"]; g.MPKI/g.APKI > 0.3 {
		t.Errorf("GS miss ratio %.2f too high", g.MPKI/g.APKI)
	}
	if m := byAbbr["MUM"]; m.MPKI/m.APKI < 0.5 {
		t.Errorf("MUM miss ratio %.2f too low", m.MPKI/m.APKI)
	}
}

func TestMeans(t *testing.T) {
	if h := HarmonicMean([]float64{1, 1, 1}); h != 1 {
		t.Errorf("hmean = %v", h)
	}
	if h := HarmonicMean([]float64{2, 2}); h != 2 {
		t.Errorf("hmean = %v", h)
	}
	// HMEAN <= AMEAN.
	xs := []float64{1, 2, 4}
	if HarmonicMean(xs) >= ArithMean(xs) {
		t.Error("hmean should be below amean")
	}
	if HarmonicMean(nil) != 0 || ArithMean(nil) != 0 {
		t.Error("empty means")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("non-positive value should yield 0")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var b bytes.Buffer
	RenderFigure3(&b)
	RenderFigure5(&b, tinyOpt())
	RenderFigure10(&b, tinyOpt())
	RenderTable2(&b, tinyOpt())
	suite := RunSuite(workload.ValleySet()[:2], mapping.Schemes(), baselineCfg(), tinyOpt())
	RenderSuiteFigures(&b, suite)
	nv := RunSuite(workload.NonValleySet()[:2], mapping.Schemes(), baselineCfg(), tinyOpt())
	RenderFigure20(&b, nv)
	out := b.String()
	for _, want := range []string{
		"Figure 3", "Figure 5", "Figure 10", "Table II",
		"Figure 11", "Figure 12", "Figure 13a", "Figure 13b",
		"Figure 14a", "Figure 14b", "Figure 14c", "Figure 15",
		"Figure 16", "Figure 17", "Figure 20", "HMEAN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "%!") {
		t.Error("rendering produced NaN or bad verbs")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed != 1 || o.Window != 12 || o.Bits != 30 || o.LineBytes != 128 {
		t.Errorf("defaults = %+v", o)
	}
}

// baselineCfg is a test helper (kept at file end to avoid import cycles
// in editors; it simply forwards to gpusim).
