package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationInputBreadth(t *testing.T) {
	pts := AblationInputBreadth(tinyOpt())
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Entropy delivered to the channel/bank bits must grow with input
	// breadth (the Section IV Broad-vs-PM argument).
	for i := 1; i < len(pts); i++ {
		if pts[i].MinCB+1e-9 < pts[i-1].MinCB-0.15 {
			t.Errorf("entropy regressed sharply with breadth: %s %.2f -> %s %.2f",
				pts[i-1].Name, pts[i-1].MinCB, pts[i].Name, pts[i].MinCB)
		}
	}
	narrow, full := pts[0], pts[len(pts)-1]
	if full.MinCB <= narrow.MinCB {
		t.Errorf("full-address inputs (%.2f) should deliver more entropy than 2 row bits (%.2f)",
			full.MinCB, narrow.MinCB)
	}
	if full.Speedup <= narrow.Speedup {
		t.Errorf("full-address inputs (%.2fx) should outperform narrow (%.2fx)",
			full.Speedup, narrow.Speedup)
	}
	if narrow.Speedup < 1.0 {
		t.Errorf("even narrow inputs should not slow down: %.2fx", narrow.Speedup)
	}
}

func TestAblationWindowSize(t *testing.T) {
	pts := AblationWindowSize(tinyOpt(), []int{1, 4, 12, 48})
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Section III-A: larger windows expose at least as much entropy;
	// w=1 sees only intra-TB BVR diversity (none, by definition of a
	// single-value window).
	if pts[0].MeanAll > pts[2].MeanAll {
		t.Errorf("w=1 entropy %.3f should not exceed w=12 entropy %.3f",
			pts[0].MeanAll, pts[2].MeanAll)
	}
	if pts[0].MeanAll != 0 {
		t.Errorf("w=1 windows hold a single BVR; entropy must be 0, got %.3f", pts[0].MeanAll)
	}
	for _, pt := range pts {
		if pt.MeanChBank < 0 || pt.MeanChBank > 1 || pt.MeanAll < 0 || pt.MeanAll > 1 {
			t.Errorf("w=%d: entropy out of range: %+v", pt.Window, pt)
		}
	}
}

func TestAblationRenderers(t *testing.T) {
	var b bytes.Buffer
	RenderAblationBreadth(&b, tinyOpt())
	RenderAblationWindow(&b, tinyOpt())
	out := b.String()
	if !strings.Contains(out, "input-bit breadth") || !strings.Contains(out, "window size") {
		t.Error("ablation renderers missing headers")
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN in ablation output")
	}
}
