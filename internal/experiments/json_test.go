package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONPayloadFig3(t *testing.T) {
	env, err := JSONPayload("fig3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"experiment":"fig3"`, `"hstar_w2"`, `"scale":"tiny"`} {
		if !strings.Contains(s, want) {
			t.Errorf("payload missing %s:\n%s", want, s)
		}
	}
}

func TestJSONPayloadSuiteDerivedSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a tiny suite sweep")
	}
	env, err := JSONPayload("table2", tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"abbr":"MT"`) {
		t.Errorf("table2 payload missing MT row:\n%.400s", b)
	}
}

func TestJSONPayloadUnknown(t *testing.T) {
	if _, err := JSONPayload("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
