// Package mapping constructs the six DRAM address mapping schemes
// evaluated in "Get Out of the Valley" (ISCA 2018): BASE, PM, RMP, PAE,
// FAE and ALL. Every scheme is represented as a Binary Invertible Matrix
// (internal/bim) applied to the physical address right after memory
// coalescing, so the whole design space shares one hardware realization —
// a tree of XOR gates (Figure 7).
package mapping

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"valleymap/internal/bim"
	"valleymap/internal/layout"
)

// Scheme names an address mapping strategy.
type Scheme string

// The schemes of Section VI.
const (
	BASE Scheme = "BASE" // Hynix address map, identity BIM
	PM   Scheme = "PM"   // permutation-based mapping (Zhang/Chatterjee)
	RMP  Scheme = "RMP"  // remap highest-average-entropy bits to bank+channel
	PAE  Scheme = "PAE"  // page-address entropy (row|bank|channel inputs)
	FAE  Scheme = "FAE"  // full-address entropy (adds column inputs)
	ALL  Scheme = "ALL"  // regenerate all non-block bits from full address
)

// Schemes lists all schemes in the paper's presentation order.
func Schemes() []Scheme { return []Scheme{BASE, PM, RMP, PAE, FAE, ALL} }

// ParseScheme resolves a case-insensitive scheme name (as it appears in
// CLI flags and service request bodies) to a Scheme.
func ParseScheme(name string) (Scheme, error) {
	up := Scheme(strings.ToUpper(strings.TrimSpace(name)))
	for _, s := range Schemes() {
		if s == up {
			return s, nil
		}
	}
	return "", fmt.Errorf("mapping: unknown scheme %q", name)
}

// Proposed lists the paper's three Broad-strategy contributions.
func Proposed() []Scheme { return []Scheme{PAE, FAE, ALL} }

// Mapper transforms physical addresses before they reach the memory
// subsystem. Implementations must be bijections.
type Mapper struct {
	scheme Scheme
	layout layout.Layout
	matrix bim.Matrix
}

// Scheme returns the scheme this mapper implements.
func (m Mapper) Scheme() Scheme { return m.scheme }

// Layout returns the address layout the mapper targets.
func (m Mapper) Layout() layout.Layout { return m.layout }

// Matrix returns the underlying BIM.
func (m Mapper) Matrix() bim.Matrix { return m.matrix }

// Map transforms one address. Block-offset bits are never altered by any
// scheme in this package.
func (m Mapper) Map(addr uint64) uint64 { return m.matrix.Apply(addr) }

// MapBatch transforms a batch of addresses in place (bim.ApplyBatch):
// the streaming profiler's batch transform hook, equivalent to calling
// Map on each element but without the per-address call overhead.
func (m Mapper) MapBatch(addrs []uint64) { m.matrix.ApplyBatch(addrs) }

// GateCost reports the XOR-tree cost of the mapper's hardware (Figure 7).
func (m Mapper) GateCost() (gates, depth int) { return m.matrix.GateCost() }

func (m Mapper) String() string {
	g, d := m.GateCost()
	return fmt.Sprintf("%s on %s (xor gates=%d, depth=%d)", m.scheme, m.layout.Name, g, d)
}

// targetBits returns the output bits each scheme regenerates: the channel
// and bank selection bits, plus vault bits on 3D-stacked layouts (the
// paper randomizes 2 channel + 4 vault + 4 bank bits there).
func targetBits(l layout.Layout) []int {
	mask := l.MaskOf(layout.Channel, layout.Bank, layout.Vault)
	return layout.Bits0(mask)
}

// NewBASE returns the baseline mapper: the layout's own address map,
// i.e. the identity BIM.
func NewBASE(l layout.Layout) Mapper {
	return Mapper{scheme: BASE, layout: l, matrix: bim.Identity(l.Bits)}
}

// NewPM builds the permutation-based mapping of Figure 8 (Zhang et al.
// MICRO'00 as extended to channels by Chatterjee et al. SC'14): each
// channel/bank/vault bit is XORed with one of the least-significant row
// bits. Rows of the BIM therefore have exactly two ones (Figure 6c).
func NewPM(l layout.Layout) Mapper {
	m := bim.Identity(l.Bits)
	rowBits := l.FieldBits(layout.Row)
	for i, tb := range targetBits(l) {
		r := rowBits[i%len(rowBits)]
		m = m.SetRow(tb, 1<<uint(tb)|1<<uint(r))
	}
	if !m.Invertible() {
		panic("mapping: PM matrix must be invertible")
	}
	return Mapper{scheme: PM, layout: l, matrix: m}
}

// NewRMP builds the Remap scheme: the bits with the highest average
// entropy across the benchmark suite are permuted into the channel/bank
// (and vault) positions, displacing the bits that lived there (Figure 6b).
// avgEntropy[i] is the suite-average entropy of physical address bit i;
// block bits are never candidates. If avgEntropy is nil, DefaultRMPBits
// is used (the paper's selection: bits 8–11, 15 and 16).
func NewRMP(l layout.Layout, avgEntropy []float64) Mapper {
	targets := targetBits(l)
	var chosen []int
	if avgEntropy == nil {
		chosen = DefaultRMPBits(l)
	} else {
		if len(avgEntropy) < l.Bits {
			panic("mapping: entropy profile shorter than address width")
		}
		cands := layout.Bits0(l.NonBlockMask())
		sort.SliceStable(cands, func(i, j int) bool {
			return avgEntropy[cands[i]] > avgEntropy[cands[j]]
		})
		chosen = append(chosen, cands[:len(targets)]...)
		sort.Ints(chosen)
	}
	if len(chosen) != len(targets) {
		panic(fmt.Sprintf("mapping: RMP needs %d source bits, got %d", len(targets), len(chosen)))
	}
	return Mapper{scheme: RMP, layout: l, matrix: permutationSwapping(l.Bits, targets, chosen)}
}

// DefaultRMPBits returns the paper's RMP source-bit choice for the Hynix
// layout — the six highest suite-average-entropy bits: 8, 9, 10, 11, 15
// and 16 (Section IV-B). For other layouts it falls back to the lowest
// non-block bits.
func DefaultRMPBits(l layout.Layout) []int {
	if l.Name == "hynix-gddr5" {
		return []int{8, 9, 10, 11, 15, 16}
	}
	nb := layout.Bits0(l.NonBlockMask())
	n := len(targetBits(l))
	return append([]int(nil), nb[:n]...)
}

// permutationSwapping builds a bit permutation that routes each source bit
// to the corresponding target position, and sends displaced target bits to
// the vacated source positions, leaving everything else untouched.
func permutationSwapping(n int, targets, sources []int) bim.Matrix {
	perm := make([]int, n) // perm[out] = in
	for i := range perm {
		perm[i] = i
	}
	for i, tb := range targets {
		sb := sources[i]
		// Find where tb's original content currently routes from, and swap.
		perm[tb], perm[sb] = perm[sb], perm[tb]
	}
	rows := make([]uint64, n)
	for out, in := range perm {
		rows[out] = 1 << uint(in)
	}
	m := bim.New(n, rows)
	if !m.Invertible() {
		panic("mapping: permutation must be invertible")
	}
	return m
}

// NewPAE builds the Page Address Entropy scheme: each channel/bank (and
// vault) output bit is a random XOR combination of the DRAM page-address
// bits — row, bank, channel (and vault) — of the input (Figure 9). Column
// and block bits pass through untouched, preserving row-buffer locality.
func NewPAE(l layout.Layout, seed int64) Mapper {
	rng := rand.New(rand.NewSource(seed))
	m := bim.RandomConstrained(rng, l.Bits, targetBits(l), l.PageMask())
	return Mapper{scheme: PAE, layout: l, matrix: m}
}

// NewFAE builds the Full Address Entropy scheme: like PAE but the input
// set additionally includes the column bits, i.e. the whole non-block
// address. Only channel/bank (and vault) outputs change.
func NewFAE(l layout.Layout, seed int64) Mapper {
	rng := rand.New(rand.NewSource(seed))
	m := bim.RandomConstrained(rng, l.Bits, targetBits(l), l.NonBlockMask())
	return Mapper{scheme: FAE, layout: l, matrix: m}
}

// NewALL builds the ALL scheme: every non-block output bit (row, column,
// channel, bank, vault) is regenerated from the full non-block input
// address.
func NewALL(l layout.Layout, seed int64) Mapper {
	rng := rand.New(rand.NewSource(seed))
	outs := layout.Bits0(l.NonBlockMask())
	m := bim.RandomConstrained(rng, l.Bits, outs, l.NonBlockMask())
	return Mapper{scheme: ALL, layout: l, matrix: m}
}

// NewCustom wraps a user-supplied BIM as a mapper, for design-space
// exploration outside the six packaged schemes. The matrix must be
// invertible and must leave the layout's block bits untouched, since
// block offsets have no effect on the DRAM system (Section III-B) and
// remapping them would break transaction alignment.
func NewCustom(name Scheme, l layout.Layout, m bim.Matrix) (Mapper, error) {
	if m.N() != l.Bits {
		return Mapper{}, fmt.Errorf("mapping: matrix is %d bits, layout %s is %d", m.N(), l.Name, l.Bits)
	}
	if !m.Invertible() {
		return Mapper{}, fmt.Errorf("mapping: custom matrix for %q is singular", name)
	}
	for _, b := range l.FieldBits(layout.Block) {
		if m.Row(b) != 1<<uint(b) {
			return Mapper{}, fmt.Errorf("mapping: custom matrix for %q remaps block bit %d", name, b)
		}
	}
	return Mapper{scheme: name, layout: l, matrix: m}, nil
}

// NewBroadCustom generates a Broad-strategy mapper whose regenerated
// channel/bank (and vault) bits draw from an arbitrary input-bit mask —
// the knob behind the input-breadth ablation: narrow masks degenerate
// toward PM, the page mask gives PAE, the full non-block mask gives FAE.
func NewBroadCustom(name Scheme, l layout.Layout, inMask uint64, seed int64) Mapper {
	rng := rand.New(rand.NewSource(seed))
	m := bim.RandomConstrained(rng, l.Bits, targetBits(l), inMask)
	return Mapper{scheme: name, layout: l, matrix: m}
}

// Options configures New for schemes that need extra inputs.
type Options struct {
	// Seed selects the random BIM instance for PAE/FAE/ALL. The paper
	// generates three random BIMs per scheme and reports the best; seeds
	// 1, 2, 3 correspond to BIM-1..BIM-3 in Figure 19.
	Seed int64
	// AvgEntropy optionally drives RMP bit selection; nil uses the
	// paper's default bits.
	AvgEntropy []float64
}

// New constructs a mapper for the named scheme.
func New(s Scheme, l layout.Layout, opt Options) (Mapper, error) {
	switch s {
	case BASE:
		return NewBASE(l), nil
	case PM:
		return NewPM(l), nil
	case RMP:
		return NewRMP(l, opt.AvgEntropy), nil
	case PAE:
		return NewPAE(l, opt.Seed), nil
	case FAE:
		return NewFAE(l, opt.Seed), nil
	case ALL:
		return NewALL(l, opt.Seed), nil
	default:
		return Mapper{}, fmt.Errorf("mapping: unknown scheme %q", s)
	}
}

// MustNew is New but panics on error.
func MustNew(s Scheme, l layout.Layout, opt Options) Mapper {
	m, err := New(s, l, opt)
	if err != nil {
		panic(err)
	}
	return m
}
