package mapping

import (
	"math/bits"
	"testing"
	"testing/quick"

	"valleymap/internal/layout"
)

func hynix() layout.Layout { return layout.HynixGDDR5() }

func TestBASEIsIdentity(t *testing.T) {
	m := NewBASE(hynix())
	if !m.Matrix().IsIdentity() {
		t.Fatal("BASE must be the identity BIM")
	}
	for _, a := range []uint64{0, 0x12345678 & 0x3FFFFFFF, 1 << 29} {
		if m.Map(a) != a {
			t.Errorf("BASE changed %#x", a)
		}
	}
	if g, _ := m.GateCost(); g != 0 {
		t.Errorf("BASE gate cost = %d, want 0", g)
	}
}

func TestPMShape(t *testing.T) {
	l := hynix()
	m := NewPM(l)
	if !m.Matrix().Invertible() {
		t.Fatal("PM not invertible")
	}
	targets := map[int]bool{}
	for _, b := range layout.Bits0(l.MaskOf(layout.Channel, layout.Bank)) {
		targets[b] = true
	}
	rowMask := l.Mask(layout.Row)
	for i := 0; i < l.Bits; i++ {
		r := m.Matrix().Row(i)
		if targets[i] {
			// Figure 6c: exactly two ones — itself and one row bit.
			if bits.OnesCount64(r) != 2 {
				t.Errorf("PM row %d has %d ones, want 2", i, bits.OnesCount64(r))
			}
			if r&(1<<uint(i)) == 0 {
				t.Errorf("PM row %d missing its own bit", i)
			}
			if r&^(1<<uint(i))&rowMask == 0 {
				t.Errorf("PM row %d second input not a row bit: %#x", i, r)
			}
		} else if r != 1<<uint(i) {
			t.Errorf("PM row %d should be identity", i)
		}
	}
	// Block and column bits unchanged on arbitrary addresses.
	keep := l.Mask(layout.Block) | l.Mask(layout.Column) | l.Mask(layout.Row)
	for _, a := range []uint64{0x3FFFFFFF, 0x2A2A2A2A & 0x3FFFFFFF} {
		if m.Map(a)&keep != a&keep {
			t.Errorf("PM altered non-target bits of %#x", a)
		}
	}
}

func TestRMPDefault(t *testing.T) {
	l := hynix()
	m := NewRMP(l, nil)
	if !m.Matrix().IsPermutation() {
		t.Fatal("RMP must be a pure bit permutation")
	}
	// Bits 8-11 are already bank/channel targets, so they stay; bits 15
	// and 16 swap with the remaining bank bits 12 and 13.
	got := map[int]uint64{}
	for i := 0; i < l.Bits; i++ {
		got[i] = m.Matrix().Row(i)
	}
	if got[12] != 1<<15 || got[15] != 1<<12 {
		t.Errorf("expected bits 12<->15 swapped: row12=%#x row15=%#x", got[12], got[15])
	}
	if got[13] != 1<<16 || got[16] != 1<<13 {
		t.Errorf("expected bits 13<->16 swapped: row13=%#x row16=%#x", got[13], got[16])
	}
	for _, b := range []int{8, 9, 10, 11} {
		if got[b] != 1<<uint(b) {
			t.Errorf("bit %d should be unchanged, row=%#x", b, got[b])
		}
	}
}

func TestRMPFromProfile(t *testing.T) {
	l := hynix()
	prof := make([]float64, l.Bits)
	// Give highest entropy to bits 20..25 (row bits).
	for i := 20; i <= 25; i++ {
		prof[i] = 1.0
	}
	m := NewRMP(l, prof)
	if !m.Matrix().IsPermutation() {
		t.Fatal("RMP must be a permutation")
	}
	// Each target position must now source one of bits 20..25.
	targets := layout.Bits0(l.MaskOf(layout.Channel, layout.Bank))
	var srcMask uint64
	for _, tb := range targets {
		srcMask |= m.Matrix().Row(tb)
	}
	if srcMask != 0x3F00000 {
		t.Errorf("RMP sources = %#x, want bits 20..25", srcMask)
	}
}

func TestBroadSchemesShape(t *testing.T) {
	l := hynix()
	pae := NewPAE(l, 1)
	fae := NewFAE(l, 1)
	all := NewALL(l, 1)

	pageMask := l.PageMask()
	nonBlock := l.NonBlockMask()
	targets := layout.Bits0(l.MaskOf(layout.Channel, layout.Bank))
	isTarget := map[int]bool{}
	for _, b := range targets {
		isTarget[b] = true
	}

	for i := 0; i < l.Bits; i++ {
		pr, fr, ar := pae.Matrix().Row(i), fae.Matrix().Row(i), all.Matrix().Row(i)
		if isTarget[i] {
			if pr&^pageMask != 0 {
				t.Errorf("PAE row %d uses non-page inputs: %#x", i, pr)
			}
			if fr&^nonBlock != 0 {
				t.Errorf("FAE row %d uses block inputs: %#x", i, fr)
			}
		} else {
			if pr != 1<<uint(i) {
				t.Errorf("PAE row %d must be identity", i)
			}
			if fr != 1<<uint(i) {
				t.Errorf("FAE row %d must be identity", i)
			}
		}
		if ar&^nonBlock != 0 && i >= 6 {
			t.Errorf("ALL row %d uses block inputs: %#x", i, ar)
		}
		if i < 6 { // block rows identity everywhere
			for name, r := range map[string]uint64{"PAE": pr, "FAE": fr, "ALL": ar} {
				if r != 1<<uint(i) {
					t.Errorf("%s block row %d not identity", name, i)
				}
			}
		}
	}
}

func TestSchemesNeverTouchBlockBits(t *testing.T) {
	l := hynix()
	mappers := []Mapper{
		NewBASE(l), NewPM(l), NewRMP(l, nil), NewPAE(l, 3), NewFAE(l, 3), NewALL(l, 3),
	}
	f := func(a uint32) bool {
		addr := uint64(a) & ((1 << 30) - 1)
		for _, m := range mappers {
			if m.Map(addr)&0x3F != addr&0x3F {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: all schemes are bijections (mapped through the inverse BIM
// round-trips).
func TestAllSchemesBijective(t *testing.T) {
	l := hynix()
	for _, s := range Schemes() {
		m := MustNew(s, l, Options{Seed: 2})
		inv, err := m.Matrix().Inverse()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for a := uint64(0); a < 1<<14; a += 131 {
			addr := (a*2654435761 + a) & ((1 << 30) - 1)
			if inv.Apply(m.Map(addr)) != addr {
				t.Fatalf("%s not bijective at %#x", s, addr)
			}
		}
	}
}

func TestNewUnknownScheme(t *testing.T) {
	if _, err := New("BOGUS", hynix(), Options{}); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestStacked3DTargets(t *testing.T) {
	l := layout.Stacked3D()
	// 2 channel + 4 vault + 4 bank = 10 randomized bits (Section VI-D).
	if got := len(targetBits(l)); got != 10 {
		t.Fatalf("3D target bits = %d, want 10", got)
	}
	pae := NewPAE(l, 1)
	if !pae.Matrix().Invertible() {
		t.Fatal("3D PAE not invertible")
	}
	pm := NewPM(l)
	if !pm.Matrix().Invertible() {
		t.Fatal("3D PM not invertible")
	}
}

func TestSeedsDiffer(t *testing.T) {
	l := hynix()
	if NewPAE(l, 1).Matrix().Equal(NewPAE(l, 2).Matrix()) {
		t.Error("different PAE seeds should give different BIMs")
	}
	if !NewFAE(l, 7).Matrix().Equal(NewFAE(l, 7).Matrix()) {
		t.Error("same FAE seed must reproduce the BIM")
	}
}

func TestGateCostSingleCycle(t *testing.T) {
	// The paper argues one-cycle latency is feasible; sanity-check the
	// XOR tree stays shallow for every scheme on the Hynix layout.
	l := hynix()
	for _, s := range Schemes() {
		m := MustNew(s, l, Options{Seed: 1})
		_, depth := m.GateCost()
		if depth > 5 { // <= ceil(log2(24 inputs)) = 5 levels
			t.Errorf("%s XOR depth = %d, too deep for one cycle", s, depth)
		}
	}
}

func TestString(t *testing.T) {
	s := NewPAE(hynix(), 1).String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}

func TestMapBatchMatchesMap(t *testing.T) {
	for _, sc := range Schemes() {
		m := MustNew(sc, hynix(), Options{Seed: 2})
		addrs := make([]uint64, 513)
		want := make([]uint64, len(addrs))
		for i := range addrs {
			addrs[i] = uint64(i*2654435761) & (1<<30 - 1)
			want[i] = m.Map(addrs[i])
		}
		m.MapBatch(addrs)
		for i := range addrs {
			if addrs[i] != want[i] {
				t.Fatalf("%s: MapBatch[%d] = %#x, Map = %#x", sc, i, addrs[i], want[i])
			}
		}
	}
}
