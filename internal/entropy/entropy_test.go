package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"valleymap/internal/trace"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestRatioEq(t *testing.T) {
	if !(Ratio{1, 2}).Eq(Ratio{2, 4}) {
		t.Error("1/2 should equal 2/4")
	}
	if (Ratio{1, 3}).Eq(Ratio{1, 2}) {
		t.Error("1/3 should not equal 1/2")
	}
	if !(Ratio{0, 0}).Eq(Ratio{0, 0}) {
		t.Error("empty equals empty")
	}
	if (Ratio{0, 0}).Eq(Ratio{0, 5}) {
		t.Error("empty should not equal 0/5")
	}
	if v := (Ratio{3, 4}).Value(); v != 0.75 {
		t.Errorf("Value = %v", v)
	}
	if v := (Ratio{0, 0}).Value(); v != 0 {
		t.Errorf("empty Value = %v", v)
	}
}

func TestShannonFootnoteExample(t *testing.T) {
	// Paper footnote 1: BVRs {0,0,1} in a window of 3: p = {2/3, 1/3},
	// v = 2 unique values, H = 0.92.
	h := ShannonNormalized([]float64{2.0 / 3, 1.0 / 3})
	approx(t, h, 0.918, 0.001, "footnote example")
}

func TestShannonEdgeCases(t *testing.T) {
	if h := ShannonNormalized(nil); h != 0 {
		t.Errorf("empty = %v", h)
	}
	if h := ShannonNormalized([]float64{1}); h != 0 {
		t.Errorf("single value = %v", h)
	}
	approx(t, ShannonNormalized([]float64{0.5, 0.5}), 1, 1e-12, "uniform v=2")
	approx(t, ShannonNormalized([]float64{0.25, 0.25, 0.25, 0.25}), 1, 1e-12, "uniform v=4")
	// Entropy is normalized to [0,1] even for v>2.
	h := ShannonNormalized([]float64{0.9, 0.05, 0.05})
	if h <= 0 || h >= 1 {
		t.Errorf("skewed v=3 entropy = %v, want in (0,1)", h)
	}
}

// tbWithBVR builds a TB whose single address bit 0 has the given BVR.
func tbWithBVR(id int, bvr int) TBProfile {
	return TBProfile{ID: id, BVR: []Ratio{{Ones: int64(bvr), Total: 1}}, Requests: 1}
}

// TestFigure3 reproduces the worked example of Figure 3: 8 TBs with BVR
// pattern 0,0,1,1,0,0,1,1. Window size 2 gives H* = 3/7; window size 4
// gives H* = 1.
func TestFigure3(t *testing.T) {
	pattern := []int{0, 0, 1, 1, 0, 0, 1, 1}
	tbs := make([]TBProfile, len(pattern))
	for i, b := range pattern {
		tbs[i] = tbWithBVR(i+1, b)
	}
	p2 := WindowEntropy(tbs, 2, 1)
	approx(t, p2.PerBit[0], 3.0/7.0, 1e-12, "window=2")
	p4 := WindowEntropy(tbs, 4, 1)
	approx(t, p4.PerBit[0], 1.0, 1e-12, "window=4")
}

func TestInterTBCompensatesIntraTB(t *testing.T) {
	// Section III-A: TBs A (BVR 0) and B (BVR 1) each have zero intra-TB
	// entropy, but co-executing them yields entropy 1.
	tbs := []TBProfile{tbWithBVR(1, 0), tbWithBVR(2, 1)}
	p := WindowEntropy(tbs, 2, 1)
	approx(t, p.PerBit[0], 1.0, 1e-12, "A+B window")
}

func TestProfileTB(t *testing.T) {
	tb := trace.TB{ID: 0, Requests: []trace.Request{
		{Addr: 0b0001}, {Addr: 0b0011}, {Addr: 0b0111}, {Addr: 0b1111},
	}}
	p := ProfileTB(&tb, 4)
	wants := []Ratio{{4, 4}, {3, 4}, {2, 4}, {1, 4}}
	for i, w := range wants {
		if !p.BVR[i].Eq(w) {
			t.Errorf("bit %d BVR = %+v, want %+v", i, p.BVR[i], w)
		}
	}
	if p.Requests != 4 {
		t.Errorf("requests = %d", p.Requests)
	}
}

func TestProfileTBEmpty(t *testing.T) {
	tb := trace.TB{ID: 0}
	p := ProfileTB(&tb, 4)
	for i, r := range p.BVR {
		if r.Total != 0 {
			t.Errorf("bit %d total = %d, want 0", i, r.Total)
		}
	}
}

func TestWindowClamping(t *testing.T) {
	tbs := []TBProfile{tbWithBVR(1, 0), tbWithBVR(2, 1)}
	// Window larger than TB count clamps to n (one window).
	p := WindowEntropy(tbs, 100, 1)
	approx(t, p.PerBit[0], 1.0, 1e-12, "clamped window")
	// Window <= 0 behaves as 1 (all single-TB windows, entropy 0).
	p0 := WindowEntropy(tbs, 0, 1)
	approx(t, p0.PerBit[0], 0.0, 1e-12, "w=0")
	// No TBs at all.
	if got := WindowEntropy(nil, 4, 3); len(got.PerBit) != 3 || got.Requests != 0 {
		t.Errorf("empty WindowEntropy = %+v", got)
	}
}

// Property: entropy is always in [0,1] for arbitrary BVR patterns and
// window sizes.
func TestEntropyBoundedProperty(t *testing.T) {
	f := func(pattern []uint8, wRaw uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		w := int(wRaw)%len(pattern) + 1
		tbs := make([]TBProfile, len(pattern))
		for i, b := range pattern {
			// BVRs drawn from {0, 1/4, 1/2, 3/4, 1}.
			tbs[i] = TBProfile{ID: i, BVR: []Ratio{{Ones: int64(b % 5), Total: 4}}, Requests: 1}
		}
		h := WindowEntropy(tbs, w, 1).PerBit[0]
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a constant bit has zero entropy; a bit alternating every TB
// with window >= 2 has positive entropy.
func TestConstantVsAlternating(t *testing.T) {
	n := 16
	constant := make([]TBProfile, n)
	alternating := make([]TBProfile, n)
	for i := 0; i < n; i++ {
		constant[i] = tbWithBVR(i, 1)
		alternating[i] = tbWithBVR(i, i%2)
	}
	if h := WindowEntropy(constant, 12, 1).PerBit[0]; h != 0 {
		t.Errorf("constant bit entropy = %v, want 0", h)
	}
	if h := WindowEntropy(alternating, 12, 1).PerBit[0]; h <= 0.9 {
		t.Errorf("alternating bit entropy = %v, want ~1", h)
	}
}

func makeApp() *trace.App {
	// Kernel 1: 2 TBs, addresses vary in bit 0 only (within-TB entropy).
	k1 := trace.Kernel{Name: "k1", WarpsPerTB: 1, TBs: []trace.TB{
		{ID: 0, Requests: []trace.Request{{Addr: 0}, {Addr: 1}}},
		{ID: 1, Requests: []trace.Request{{Addr: 0}, {Addr: 1}}},
	}}
	// Kernel 2: 4 TBs, bit 1 alternates across TBs; 4x the requests.
	k2 := trace.Kernel{Name: "k2", WarpsPerTB: 1}
	for i := 0; i < 4; i++ {
		reqs := make([]trace.Request, 4)
		for j := range reqs {
			reqs[j] = trace.Request{Addr: uint64(i%2) << 1}
		}
		k2.TBs = append(k2.TBs, trace.TB{ID: i, Requests: reqs})
	}
	return &trace.App{Name: "toy", Abbr: "TOY", Kernels: []trace.Kernel{k1, k2}, InsnPerAccess: 10}
}

func TestAppProfileWeighting(t *testing.T) {
	app := makeApp()
	p := AppProfile(app, 2, 4, nil)
	if p.Requests != 20 {
		t.Fatalf("requests = %d, want 20", p.Requests)
	}
	// Bit 0: entropy comes only from kernel 1 (intra-TB BVR 1/2 is the
	// same for both TBs => v=1 => window entropy 0!). Actually both TBs
	// have BVR 1/2, so the window sees a single unique value: H=0.
	approx(t, p.PerBit[0], 0, 1e-12, "bit0 same-BVR windows")
	// Bit 1: kernel 2 alternates 0,1,0,1 over 4 TBs, w=2 -> all windows
	// have two unique values => H=1; kernel1 contributes 0 with weight
	// 4/20.
	approx(t, p.PerBit[1], 16.0/20.0, 1e-12, "bit1 weighted")
}

func TestKernelProfileTransform(t *testing.T) {
	app := makeApp()
	// Transform that swaps bits 0 and 1.
	swap := func(a uint64) uint64 {
		return (a &^ 3) | ((a & 1) << 1) | ((a >> 1) & 1)
	}
	p := AppProfile(app, 2, 4, swap)
	approx(t, p.PerBit[1], 0, 1e-12, "swapped bit1")
	approx(t, p.PerBit[0], 16.0/20.0, 1e-12, "swapped bit0")
}

func TestHasValley(t *testing.T) {
	p := Profile{PerBit: []float64{0, 0, 0.9, 0.05, 0.02, 0.9, 0.9, 0.9}}
	// Candidate (channel/bank) bits 3-4 are low while bits 5+ are high.
	if !p.HasValley([]int{3, 4}, 0.1, 0.5) {
		t.Error("valley not detected")
	}
	// No valley when candidates are high.
	if p.HasValley([]int{2, 5}, 0.1, 0.5) {
		t.Error("false valley on high bits")
	}
	// Low candidates but no high bits above them: not a valley, just a
	// low-entropy address.
	flat := Profile{PerBit: []float64{0.9, 0.9, 0.02, 0.01, 0.0, 0.0}}
	if flat.HasValley([]int{2, 3}, 0.1, 0.5) {
		t.Error("false valley with no high-order entropy")
	}
}

func TestMeanMin(t *testing.T) {
	p := Profile{PerBit: []float64{0.2, 0.4, 0.6, 0.8}}
	approx(t, p.Mean([]int{0, 1, 2, 3}), 0.5, 1e-12, "mean")
	approx(t, p.Min([]int{1, 3}), 0.4, 1e-12, "min")
	// Empty selections return the documented 0 sentinel, never NaN.
	if got := p.Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := p.Min(nil); got != 0 {
		t.Errorf("Min(nil) = %v, want the 0 sentinel", got)
	}
	if got := p.Mean([]int{}); got != 0 {
		t.Errorf("Mean(empty) = %v", got)
	}
	// Out-of-range positions are ignored instead of panicking; a
	// selection with no in-range positions behaves like an empty one.
	if got := p.Mean([]int{-1, 99}); got != 0 {
		t.Errorf("Mean(out of range) = %v", got)
	}
	if got := p.Min([]int{-1, 99}); got != 0 {
		t.Errorf("Min(out of range) = %v", got)
	}
	approx(t, p.Mean([]int{1, 99}), 0.4, 1e-12, "mean skips out-of-range")
	approx(t, p.Min([]int{2, -5}), 0.6, 1e-12, "min skips out-of-range")
	// Empty profiles never index out of bounds.
	var empty Profile
	if empty.Mean([]int{0, 1}) != 0 || empty.Min([]int{0, 1}) != 0 {
		t.Error("empty profile must yield 0 sentinels")
	}
}

// Property: profile is invariant to request order within a TB (the whole
// point of BVR vs bit-flip-rate estimators).
func TestOrderInvarianceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reqs := make([]trace.Request, 32)
		for i := range reqs {
			reqs[i] = trace.Request{Addr: uint64(r.Intn(1 << 12))}
		}
		tb1 := trace.TB{ID: 0, Requests: append([]trace.Request(nil), reqs...)}
		shuffled := append([]trace.Request(nil), reqs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		tb2 := trace.TB{ID: 0, Requests: shuffled}
		p1 := ProfileTB(&tb1, 12)
		p2 := ProfileTB(&tb2, 12)
		for b := 0; b < 12; b++ {
			if !p1.BVR[b].Eq(p2.BVR[b]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTraceValidate(t *testing.T) {
	app := makeApp()
	if err := app.Validate(30); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}
	bad := *app
	bad.Kernels = append([]trace.Kernel(nil), app.Kernels...)
	bad.Kernels[0].TBs = []trace.TB{{ID: 1}, {ID: 1}}
	if err := bad.Validate(30); err == nil {
		t.Error("duplicate TB IDs not caught")
	}
	bad2 := *app
	bad2.Kernels = []trace.Kernel{{Name: "k", WarpsPerTB: 1, TBs: []trace.TB{
		{ID: 0, Requests: []trace.Request{{Addr: 1 << 35}}},
	}}}
	if err := bad2.Validate(30); err == nil {
		t.Error("oversized address not caught")
	}
}

func BenchmarkAppProfile(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	k := trace.Kernel{Name: "bench", WarpsPerTB: 4}
	for i := 0; i < 256; i++ {
		reqs := make([]trace.Request, 64)
		for j := range reqs {
			reqs[j] = trace.Request{Addr: rng.Uint64() & ((1 << 30) - 1)}
		}
		k.TBs = append(k.TBs, trace.TB{ID: i, Requests: reqs})
	}
	app := &trace.App{Name: "bench", Abbr: "BN", Kernels: []trace.Kernel{k}, InsnPerAccess: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AppProfile(app, 12, 30, nil)
	}
}
