package entropy

import (
	"io"
	"testing"

	"valleymap/internal/trace"
	"valleymap/internal/workload"
)

// materializedProfile is the golden reference: the original
// materialize-everything pipeline (CoalesceApp → AppProfile).
func materializedProfile(app *trace.App, lineBytes, window, bits int, f Transform) Profile {
	a := app
	if lineBytes > 0 {
		a = trace.CoalesceApp(app, lineBytes)
	}
	return AppProfile(a, window, bits, f)
}

// streamedProfile runs the same analysis through the streaming pipeline
// (AppSource → CoalesceStream → ProfileStream).
func streamedProfile(t *testing.T, app *trace.App, lineBytes, window, bits, workers int, f Transform, bf func([]uint64)) Profile {
	t.Helper()
	var st trace.Stream = trace.AppSource(app).Stream()
	if lineBytes > 0 {
		st = trace.CoalesceStream(st, lineBytes)
	}
	p, err := ProfileStream(st, StreamOptions{
		Window: window, Bits: bits, Transform: f, BatchTransform: bf, Workers: workers,
	})
	if err != nil {
		t.Fatalf("ProfileStream: %v", err)
	}
	return p
}

// requireIdentical asserts bit-identical profiles (exact float equality,
// not approximate: the streaming path must perform the same arithmetic).
func requireIdentical(t *testing.T, name string, want, got Profile) {
	t.Helper()
	if want.Requests != got.Requests {
		t.Fatalf("%s: requests %d != %d", name, got.Requests, want.Requests)
	}
	if len(want.PerBit) != len(got.PerBit) {
		t.Fatalf("%s: bits %d != %d", name, len(got.PerBit), len(want.PerBit))
	}
	for b := range want.PerBit {
		if want.PerBit[b] != got.PerBit[b] {
			t.Fatalf("%s: bit %d: streamed %.17g != materialized %.17g",
				name, b, got.PerBit[b], want.PerBit[b])
		}
	}
}

// TestStreamProfileGoldenAllWorkloads is the golden-equivalence test of
// the tentpole: for every built-in workload, the streaming profile must
// be bit-identical to the materialized one, sequentially and with the
// per-TB fan-out across workers.
func TestStreamProfileGoldenAllWorkloads(t *testing.T) {
	const window, bits, lineBytes = 12, 30, 128
	for _, spec := range workload.All() {
		app := spec.Build(workload.Tiny)
		want := materializedProfile(app, lineBytes, window, bits, nil)
		requireIdentical(t, spec.Abbr+"/seq",
			want, streamedProfile(t, app, lineBytes, window, bits, 0, nil, nil))
		requireIdentical(t, spec.Abbr+"/par4",
			want, streamedProfile(t, app, lineBytes, window, bits, 4, nil, nil))
	}
}

// TestStreamProfileGoldenTransform checks equivalence through the
// address-transform hook, both per-address and batched.
func TestStreamProfileGoldenTransform(t *testing.T) {
	spec, _ := workload.ByAbbr("MT")
	app := spec.Build(workload.Tiny)
	xform := func(a uint64) uint64 { return a ^ (a >> 7 & 0x3f << 8) }
	batch := func(addrs []uint64) {
		for i, a := range addrs {
			addrs[i] = xform(a)
		}
	}
	want := materializedProfile(app, 128, 12, 30, xform)
	requireIdentical(t, "MT/transform/seq",
		want, streamedProfile(t, app, 128, 12, 30, 0, xform, nil))
	requireIdentical(t, "MT/transform/par",
		want, streamedProfile(t, app, 128, 12, 30, 3, xform, nil))
	requireIdentical(t, "MT/batch-transform/seq",
		want, streamedProfile(t, app, 128, 12, 30, 0, nil, batch))
	requireIdentical(t, "MT/batch-transform/par",
		want, streamedProfile(t, app, 128, 12, 30, 3, nil, batch))
}

// TestStreamProfileGoldenParameterSweep varies window, bits, line size
// and coalescing off, including windows larger than the TB count (the
// clamped single-window path).
func TestStreamProfileGoldenParameterSweep(t *testing.T) {
	spec, _ := workload.ByAbbr("SP")
	app := spec.Build(workload.Tiny)
	cases := []struct {
		name                    string
		lineBytes, window, bits int
	}{
		{"w1", 128, 1, 30},
		{"w4-b16", 128, 4, 16},
		{"line512", 512, 12, 30},
		{"uncoalesced", 0, 12, 30},
		{"window-larger-than-kernel", 128, 100000, 30},
	}
	for _, tc := range cases {
		want := materializedProfile(app, tc.lineBytes, tc.window, tc.bits, nil)
		requireIdentical(t, "SP/"+tc.name,
			want, streamedProfile(t, app, tc.lineBytes, tc.window, tc.bits, 0, nil, nil))
		requireIdentical(t, "SP/"+tc.name+"/par",
			want, streamedProfile(t, app, tc.lineBytes, tc.window, tc.bits, 2, nil, nil))
	}
}

// TestProfileRequestsMatchesProfileTB: the worker-side TB profiler must
// emit exactly ProfileTB's TBProfile.
func TestProfileRequestsMatchesProfileTB(t *testing.T) {
	reqs := []trace.Request{
		{Addr: 0x1234}, {Addr: 0x1234}, {Addr: 0xff00}, {Addr: 0}, {Addr: 1<<29 | 5},
	}
	tb := trace.TB{ID: 7, Requests: reqs}
	want := ProfileTB(&tb, 30)
	got := profileRequests(7, reqs, 30, nil, nil)
	if want.ID != got.ID || want.Requests != got.Requests {
		t.Fatalf("meta differs: %+v vs %+v", got, want)
	}
	for i := range want.BVR {
		if want.BVR[i] != got.BVR[i] {
			t.Fatalf("BVR[%d] = %+v, want %+v", i, got.BVR[i], want.BVR[i])
		}
	}
}

// TestAccumulatorBatchSplitInvariance: splitting a TB across many small
// batches must not change the profile.
func TestAccumulatorBatchSplitInvariance(t *testing.T) {
	app := &trace.App{Kernels: []trace.Kernel{{
		Name: "k", WarpsPerTB: 2,
		TBs: []trace.TB{
			{ID: 0, Requests: manyRequests(0, 300)},
			{ID: 1, Requests: manyRequests(1, 7)},
			{ID: 5, Requests: manyRequests(2, 123)},
		},
	}}}
	want := materializedProfile(app, 0, 2, 20, nil)

	acc := NewAccumulator(StreamOptions{Window: 2, Bits: 20})
	st := trace.AppSource(app).Stream()
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Kernel != nil || len(b.Requests) < 2 {
			acc.Fold(b)
			continue
		}
		// Re-deliver the batch one request at a time.
		for i := range b.Requests {
			sub := trace.Batch{
				KernelIndex: b.KernelIndex,
				TBID:        b.TBID,
				TBStart:     b.TBStart && i == 0,
				Requests:    b.Requests[i : i+1],
			}
			acc.Fold(&sub)
		}
	}
	requireIdentical(t, "split", want, acc.Profile())
}

func manyRequests(seed, n int) []trace.Request {
	out := make([]trace.Request, n)
	for i := range out {
		out[i] = trace.Request{Addr: uint64(seed*2654435761+i*97) & (1<<20 - 1)}
	}
	return out
}

// TestAccumulatorEdgeCases: empty streams, empty kernels, headerless
// batches.
func TestAccumulatorEdgeCases(t *testing.T) {
	// Empty stream → zero profile.
	empty := NewAccumulator(StreamOptions{Window: 12, Bits: 8})
	p := empty.Profile()
	if p.Requests != 0 || len(p.PerBit) != 8 {
		t.Errorf("empty profile = %+v", p)
	}
	for _, v := range p.PerBit {
		if v != 0 {
			t.Error("empty profile must be all zeros")
		}
	}

	// Kernels with no TBs contribute nothing, like the materialized path.
	app := &trace.App{Kernels: []trace.Kernel{
		{Name: "empty", WarpsPerTB: 1},
		{Name: "real", WarpsPerTB: 1, TBs: []trace.TB{{ID: 0, Requests: manyRequests(0, 9)}}},
	}}
	want := materializedProfile(app, 0, 3, 16, nil)
	requireIdentical(t, "empty-kernel", want, streamedProfile(t, app, 0, 3, 16, 0, nil, nil))

	// Headerless streams open an implicit kernel instead of dropping
	// requests on the floor.
	acc := NewAccumulator(StreamOptions{Window: 2, Bits: 16})
	acc.Fold(&trace.Batch{TBID: 0, TBStart: true, Requests: manyRequests(0, 4)})
	acc.Fold(&trace.Batch{TBID: 1, TBStart: true, Requests: manyRequests(1, 4)})
	if got := acc.Profile(); got.Requests != 8 {
		t.Errorf("headerless stream folded %d requests, want 8", got.Requests)
	}

	// Folding after Profile is a programming error.
	defer func() {
		if recover() == nil {
			t.Error("Fold after Profile must panic")
		}
	}()
	acc.Fold(&trace.Batch{TBID: 2, TBStart: true})
}

// TestProfileStreamPropagatesError: a failing stream surfaces its error.
func TestProfileStreamPropagatesError(t *testing.T) {
	for _, workers := range []int{0, 3} {
		_, err := ProfileStream(&failingStream{failAfter: 3}, StreamOptions{Window: 2, Bits: 8, Workers: workers})
		if err == nil || err.Error() != "boom" {
			t.Errorf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

type failingStream struct {
	n, failAfter int
	batch        trace.Batch
	hdr          trace.KernelInfo
}

func (s *failingStream) Next() (*trace.Batch, error) {
	s.n++
	if s.n > s.failAfter {
		return nil, errBoom{}
	}
	if s.n == 1 {
		s.hdr = trace.KernelInfo{Name: "k", WarpsPerTB: 1}
		s.batch = trace.Batch{Kernel: &s.hdr, TBID: -1}
		return &s.batch, nil
	}
	s.batch = trace.Batch{TBID: s.n, TBStart: true, Requests: manyRequests(s.n, 5)}
	return &s.batch, nil
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }
