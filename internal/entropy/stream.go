package entropy

// Online windowed profiling: the streaming counterpart of AppProfile.
// The window-based metric (Section III) is a one-pass computation — each
// TB contributes one BVR vector, each window of w consecutive TBs
// contributes one entropy sample per bit — so a trace can be profiled as
// it is generated or decoded, holding only
//
//   - the current TB's per-bit one-counts           O(bits)
//   - the last min(w, TBs) TB profiles (the window) O(window × bits)
//   - the running per-bit window-entropy sums       O(bits)
//
// independent of trace length. The Accumulator reproduces the
// materialized AppProfile arithmetic operation for operation (same
// summation order, same Ratio dedup, same divisions), so the streamed
// Profile is bit-identical to the materialized one; the golden
// equivalence tests in stream_test.go pin that down for every built-in
// workload.

import (
	"io"
	"sync"
	"time"

	"valleymap/internal/trace"
)

// StreamOptions parameterizes streaming profiling.
type StreamOptions struct {
	// Window is the window size w in TBs (< 1 is clamped to 1, like the
	// materialized path).
	Window int
	// Bits is the number of address bits profiled.
	Bits int
	// Transform optionally maps each address before profiling (e.g. a
	// Mapper's Map), mirroring AppProfile's transform argument. With
	// Workers > 1 it is called from that many goroutines concurrently
	// and must be safe for concurrent use.
	Transform Transform
	// BatchTransform optionally maps addresses a batch at a time, in
	// place (e.g. bim.Matrix.ApplyBatch via mapping.Mapper.MapBatch); it
	// takes precedence over Transform and amortizes per-call overhead.
	// The accumulator copies addresses into a scratch buffer first, so
	// the stream's batches are never mutated.
	BatchTransform func([]uint64)
	// Workers > 1 fans per-TB profiling out across that many goroutines
	// in ProfileStream (typically GOMAXPROCS); folding stays in TB
	// dispatch order, so the result is identical to the sequential one.
	Workers int
	// OnFold, when set, observes the wall time of each accumulate step —
	// one batch fold in the sequential driver, one committed TB profile
	// (or kernel boundary) in the parallel driver. It feeds the
	// accumulate-stage latency histogram in valleyd without the
	// accumulator importing any metrics machinery; it must be cheap and
	// must not panic.
	OnFold func(time.Duration)
}

// Accumulator folds a request stream into a Profile online. Feed it
// batches in stream order with Fold, then call Profile once at end of
// stream. The zero value is unusable; construct with NewAccumulator.
// An Accumulator is not safe for concurrent use.
type Accumulator struct {
	window, bits int
	f            Transform
	bf           func([]uint64)
	scratch      []uint64

	// Application-level aggregation (AppProfile's weighted sum).
	appPerBit   []float64
	appRequests int

	// Current kernel: ring of the last ≤ window TB profiles plus the
	// running per-bit window-entropy sums (WindowEntropy, online).
	kOpen     bool
	ring      []TBProfile // grown on demand to min(TBs, window) slots
	count     int         // TBs completed in the current kernel
	sums      []float64
	windows   int
	kRequests int

	// Scratch for per-window entropy (windowEntropyBit's locals).
	vals   []Ratio
	counts []int
	probs  []float64

	// Current TB.
	tbOpen bool
	tbID   int
	tbReqs int
	ones   []int64

	done bool
}

// NewAccumulator builds a streaming profiler. Memory is
// O(window × bits), allocated lazily as TBs arrive (a kernel with fewer
// TBs than the window never grows the ring past its TB count).
func NewAccumulator(opt StreamOptions) *Accumulator {
	w := opt.Window
	if w < 1 {
		w = 1
	}
	bits := opt.Bits
	if bits < 0 {
		bits = 0
	}
	return &Accumulator{
		window:    w,
		bits:      bits,
		f:         opt.Transform,
		bf:        opt.BatchTransform,
		appPerBit: make([]float64, bits),
		sums:      make([]float64, bits),
		ones:      make([]int64, bits),
	}
}

// Fold consumes one batch. Batches must arrive in stream order
// (header, then the kernel's TBs in dispatch order); headerless streams
// are tolerated by opening an implicit kernel.
func (a *Accumulator) Fold(b *trace.Batch) {
	if a.done {
		panic("entropy: Fold after Profile")
	}
	if b.Kernel != nil {
		a.closeKernel()
		a.openKernel()
		return
	}
	if b.TBStart {
		a.closeTB()
		if !a.kOpen {
			a.openKernel()
		}
		a.tbOpen = true
		a.tbID = b.TBID
	}
	if len(b.Requests) == 0 {
		return
	}
	if !a.kOpen {
		a.openKernel()
	}
	if !a.tbOpen {
		a.tbOpen = true
		a.tbID = b.TBID
	}
	switch {
	case a.bf != nil:
		a.scratch = a.scratch[:0]
		for _, r := range b.Requests {
			a.scratch = append(a.scratch, r.Addr)
		}
		a.bf(a.scratch)
		for _, addr := range a.scratch {
			countAddrBits(a.ones, addr, a.bits)
		}
	case a.f != nil:
		for _, r := range b.Requests {
			countAddrBits(a.ones, a.f(r.Addr), a.bits)
		}
	default:
		for _, r := range b.Requests {
			countAddrBits(a.ones, r.Addr, a.bits)
		}
	}
	a.tbReqs += len(b.Requests)
}

// FoldTBProfile feeds one completed TB profile directly (the parallel
// driver computes TBProfiles off-thread and commits them here, in
// dispatch order). The accumulator takes ownership of p.BVR.
func (a *Accumulator) FoldTBProfile(p TBProfile) {
	if a.done {
		panic("entropy: Fold after Profile")
	}
	if !a.kOpen {
		a.openKernel()
	}
	a.commitTB(p)
}

// OpenKernel marks a kernel boundary for drivers that feed TB profiles
// via FoldTBProfile instead of batches.
func (a *Accumulator) OpenKernel() {
	if a.done {
		panic("entropy: Fold after Profile")
	}
	a.closeKernel()
	a.openKernel()
}

func (a *Accumulator) openKernel() {
	a.kOpen = true
	a.count = 0
	a.windows = 0
	a.kRequests = 0
	a.ring = a.ring[:0]
	for i := range a.sums {
		a.sums[i] = 0
	}
}

// closeTB turns the in-progress TB counts into a TBProfile and commits
// it to the window machinery.
func (a *Accumulator) closeTB() {
	if !a.tbOpen {
		return
	}
	slot := a.count % a.window
	var p TBProfile
	if slot < len(a.ring) {
		p = a.ring[slot] // reuse the slot's BVR storage
		a.ring[slot] = TBProfile{}
	}
	if len(p.BVR) != a.bits {
		p.BVR = make([]Ratio, a.bits)
	}
	p.ID = a.tbID
	p.Requests = a.tbReqs
	total := int64(a.tbReqs)
	for i := 0; i < a.bits; i++ {
		p.BVR[i] = Ratio{Ones: a.ones[i], Total: total}
		a.ones[i] = 0
	}
	a.tbOpen = false
	a.tbReqs = 0
	a.commitTB(p)
}

// commitTB stores one TB profile in its ring slot and folds the window
// it completes, if any.
func (a *Accumulator) commitTB(p TBProfile) {
	slot := a.count % a.window
	if slot == len(a.ring) {
		a.ring = append(a.ring, p)
	} else {
		a.ring[slot] = p
	}
	a.count++
	a.kRequests += p.Requests
	if a.count >= a.window {
		a.foldWindow(a.count-a.window, a.window)
	}
}

// foldWindow adds the entropy of the window starting at TB sequence
// index start with effective width w to the per-bit sums — the exact
// inner computation of windowEntropyBit, per bit in the same order.
func (a *Accumulator) foldWindow(start, w int) {
	for b := 0; b < a.bits; b++ {
		a.vals = a.vals[:0]
		a.counts = a.counts[:0]
		a.probs = a.probs[:0]
	next:
		for k := 0; k < w; k++ {
			r := a.ring[(start+k)%a.window].BVR[b]
			for j, v := range a.vals {
				if v.Eq(r) {
					a.counts[j]++
					continue next
				}
			}
			a.vals = append(a.vals, r)
			a.counts = append(a.counts, 1)
		}
		for _, c := range a.counts {
			a.probs = append(a.probs, float64(c)/float64(w))
		}
		a.sums[b] += ShannonNormalized(a.probs)
	}
	a.windows++
}

// closeKernel finalizes the current kernel and folds its weighted
// profile into the application aggregate.
func (a *Accumulator) closeKernel() {
	a.closeTB()
	if !a.kOpen {
		return
	}
	a.kOpen = false
	if a.count > 0 && a.windows == 0 {
		// Fewer TBs than the window: one window over all of them, with
		// the effective width the materialized path clamps to.
		a.foldWindow(0, a.count)
	}
	if a.windows > 0 {
		for b := 0; b < a.bits; b++ {
			a.appPerBit[b] += a.sums[b] / float64(a.windows) * float64(a.kRequests)
		}
	}
	a.appRequests += a.kRequests
}

// Profile finalizes the accumulator and returns the application-level
// profile, identical to AppProfile over the same (coalesced,
// transformed) trace. The accumulator cannot be folded into afterwards.
func (a *Accumulator) Profile() Profile {
	if !a.done {
		a.closeKernel()
		a.done = true
	}
	out := Profile{PerBit: make([]float64, a.bits), Requests: a.appRequests}
	copy(out.PerBit, a.appPerBit)
	if out.Requests > 0 {
		for b := range out.PerBit {
			out.PerBit[b] /= float64(out.Requests)
		}
	}
	return out
}

// ProfileStream drains a trace stream into a Profile. With
// opt.Workers > 1 the per-TB bit counting fans out across that many
// goroutines while window folding stays in dispatch order, so the
// result is identical either way.
func ProfileStream(st trace.Stream, opt StreamOptions) (Profile, error) {
	if opt.Workers > 1 {
		return profileParallel(st, opt)
	}
	acc := NewAccumulator(opt)
	for {
		b, err := st.Next()
		if err == io.EOF {
			return acc.Profile(), nil
		}
		if err != nil {
			return Profile{}, err
		}
		if opt.OnFold != nil {
			start := time.Now()
			acc.Fold(b)
			opt.OnFold(time.Since(start))
		} else {
			acc.Fold(b)
		}
	}
}

// ---------------------------------------------------------------------
// Parallel per-TB fan-out
// ---------------------------------------------------------------------

// pEvent is one ordered folding event: a kernel boundary or a future
// holding a TB profile being computed by a worker.
type pEvent struct {
	kernel bool
	fut    chan TBProfile
	err    error
}

var reqBufPool = sync.Pool{
	New: func() any { return make([]trace.Request, 0, 4096) },
}

// profileParallel reads the stream on one goroutine, hands each
// completed TB to a bounded worker pool for bit counting, and folds the
// resulting TB profiles in dispatch order on the calling goroutine.
// Memory is O(workers × TB size + window × bits).
func profileParallel(st trace.Stream, opt StreamOptions) (Profile, error) {
	workers := opt.Workers
	acc := NewAccumulator(StreamOptions{Window: opt.Window, Bits: opt.Bits})
	bits := acc.bits

	sem := make(chan struct{}, workers)
	events := make(chan pEvent, workers*2)

	go func() {
		defer close(events)
		buf := reqBufPool.Get().([]trace.Request)[:0]
		var tbID int
		tbOpen := false
		flushTB := func() {
			if !tbOpen {
				return
			}
			tbOpen = false
			sem <- struct{}{}
			fut := make(chan TBProfile, 1)
			job, id := buf, tbID
			go func() {
				fut <- profileRequests(id, job, bits, opt.Transform, opt.BatchTransform)
				reqBufPool.Put(job[:0])
				<-sem
			}()
			events <- pEvent{fut: fut}
			buf = reqBufPool.Get().([]trace.Request)[:0]
		}
		for {
			b, err := st.Next()
			if err == io.EOF {
				flushTB()
				return
			}
			if err != nil {
				events <- pEvent{err: err}
				return
			}
			if b.Kernel != nil {
				flushTB()
				events <- pEvent{kernel: true}
				continue
			}
			if b.TBStart {
				flushTB()
				tbOpen = true
				tbID = b.TBID
			}
			if len(b.Requests) > 0 {
				if !tbOpen {
					tbOpen = true
					tbID = b.TBID
				}
				buf = append(buf, b.Requests...)
			}
		}
	}()

	var streamErr error
	for ev := range events {
		var start time.Time
		if opt.OnFold != nil {
			start = time.Now()
		}
		switch {
		case ev.err != nil:
			streamErr = ev.err
			continue
		case ev.kernel:
			acc.OpenKernel()
		default:
			acc.FoldTBProfile(<-ev.fut)
		}
		if opt.OnFold != nil {
			opt.OnFold(time.Since(start))
		}
	}
	if streamErr != nil {
		return Profile{}, streamErr
	}
	return acc.Profile(), nil
}

// profileRequests computes one TB's profile, applying the optional
// address transform — the worker-side half of profileParallel.
func profileRequests(id int, reqs []trace.Request, bits int, f Transform, bf func([]uint64)) TBProfile {
	ones := make([]int64, bits)
	switch {
	case bf != nil:
		addrs := make([]uint64, len(reqs))
		for i, r := range reqs {
			addrs[i] = r.Addr
		}
		bf(addrs)
		for _, addr := range addrs {
			countAddrBits(ones, addr, bits)
		}
	case f != nil:
		for _, r := range reqs {
			countAddrBits(ones, f(r.Addr), bits)
		}
	default:
		for _, r := range reqs {
			countAddrBits(ones, r.Addr, bits)
		}
	}
	p := TBProfile{ID: id, BVR: make([]Ratio, bits), Requests: len(reqs)}
	total := int64(len(reqs))
	for i := 0; i < bits; i++ {
		p.BVR[i] = Ratio{Ones: ones[i], Total: total}
	}
	return p
}
