// Package entropy implements the window-based address-bit entropy metric
// of "Get Out of the Valley" (ISCA 2018), Section III.
//
// GPU memory requests from concurrent Thread Blocks interleave
// nondeterministically, so bit-flip-rate entropy estimators are
// unreliable. The window-based metric instead:
//
//  1. computes, per TB and per address bit, the Bit Value Ratio (BVR) —
//     the fraction of requests in which the bit is 1 (intra-TB entropy
//     without ordering assumptions);
//  2. slides a window of w TBs (w ≈ TBs executing concurrently ≈ number
//     of SMs under GTO scheduling) across the TB sequence in dispatch
//     order, and computes the Shannon entropy of the BVR-value
//     distribution inside each window with log base v = the number of
//     distinct BVR values (Equation 1);
//  3. averages the n−w+1 window entropies into H* (Equation 2);
//  4. averages per-kernel profiles weighted by request counts.
package entropy

import (
	"math"

	"valleymap/internal/trace"
)

// DefaultLow and DefaultHigh are the repo-wide valley-classification
// thresholds (the qualitative Figure 5 split): a bit at or below
// DefaultLow is "dead", and a valley only counts when some higher bit
// reaches DefaultHigh (harvestable entropy, Section III-B).
const (
	DefaultLow  = 0.35
	DefaultHigh = 0.6
)

// Ratio is an exact BVR: Ones one-bits observed out of Total requests.
// Exact rationals avoid floating-point fuzz when counting distinct BVR
// values inside a window.
type Ratio struct {
	Ones, Total int64
}

// Eq reports whether two ratios denote the same value (cross-multiplied,
// so 1/2 equals 2/4). Ratios with Total == 0 are only equal to each other.
func (r Ratio) Eq(o Ratio) bool {
	if r.Total == 0 || o.Total == 0 {
		return r.Total == o.Total
	}
	return r.Ones*o.Total == o.Ones*r.Total
}

// Value returns the BVR as a float in [0,1]; 0 when empty.
func (r Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Ones) / float64(r.Total)
}

// TBProfile is the per-TB summary the window metric consumes: one BVR per
// address bit plus the TB's request count.
type TBProfile struct {
	ID       int
	BVR      []Ratio
	Requests int
}

// ProfileTB computes the BVR of every address bit across a TB's requests.
func ProfileTB(tb *trace.TB, bits int) TBProfile {
	p := TBProfile{ID: tb.ID, BVR: make([]Ratio, bits), Requests: len(tb.Requests)}
	total := int64(len(tb.Requests))
	ones := make([]int64, bits)
	for _, req := range tb.Requests {
		countAddrBits(ones, req.Addr, bits)
	}
	for i := 0; i < bits; i++ {
		p.BVR[i] = Ratio{Ones: ones[i], Total: total}
	}
	return p
}

// countAddrBits adds addr's one-bits below bits into ones — the single
// counting kernel shared by the materialized and streaming profilers, so
// both paths perform bit-for-bit identical arithmetic.
func countAddrBits(ones []int64, addr uint64, bits int) {
	for a := addr; a != 0; a &= a - 1 {
		if b := trailingZeros(a); b < bits {
			ones[b]++
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// ShannonNormalized computes Equation 1: −Σ pᵢ log_v pᵢ with v = number of
// probabilities. With v < 2 the entropy is 0 (a constant value carries no
// information); with v == 2 this is the familiar base-2 entropy, so the
// paper's footnote example {2/3, 1/3} yields 0.918.
func ShannonNormalized(probs []float64) float64 {
	v := len(probs)
	if v < 2 {
		return 0
	}
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(v))
}

// windowEntropyBit computes the mean window entropy of a single bit given
// the per-TB BVRs in dispatch order (Equation 2).
func windowEntropyBit(bvrs []Ratio, w int) float64 {
	n := len(bvrs)
	if w <= 0 {
		w = 1
	}
	if w > n {
		w = n
	}
	windows := n - w + 1
	if windows <= 0 {
		return 0
	}
	sum := 0.0
	// counts holds occurrences of each distinct BVR value in the window.
	vals := make([]Ratio, 0, w)
	counts := make([]int, 0, w)
	probs := make([]float64, 0, w)
	for start := 0; start < windows; start++ {
		vals = vals[:0]
		counts = counts[:0]
		probs = probs[:0]
	next:
		for i := start; i < start+w; i++ {
			for j, v := range vals {
				if v.Eq(bvrs[i]) {
					counts[j]++
					continue next
				}
			}
			vals = append(vals, bvrs[i])
			counts = append(counts, 1)
		}
		for _, c := range counts {
			probs = append(probs, float64(c)/float64(w))
		}
		sum += ShannonNormalized(probs)
	}
	return sum / float64(windows)
}

// Profile is a per-bit entropy distribution with the request weight that
// produced it.
type Profile struct {
	// PerBit[i] is H* of address bit i, in [0,1].
	PerBit []float64
	// Requests is the number of memory requests the profile covers; it
	// is the kernel weight in application-level aggregation.
	Requests int
}

// WindowEntropy computes the per-bit window-based entropy H* over a
// sequence of TB profiles sorted by TB ID (Equation 2).
func WindowEntropy(tbs []TBProfile, window, bits int) Profile {
	out := Profile{PerBit: make([]float64, bits)}
	for _, tb := range tbs {
		out.Requests += tb.Requests
	}
	if len(tbs) == 0 {
		return out
	}
	col := make([]Ratio, len(tbs))
	for b := 0; b < bits; b++ {
		for i, tb := range tbs {
			col[i] = tb.BVR[b]
		}
		out.PerBit[b] = windowEntropyBit(col, window)
	}
	return out
}

// Transform maps request addresses before profiling; nil means identity.
// It lets one compute post-mapping entropy distributions (Figure 10).
type Transform func(uint64) uint64

// KernelProfile computes the window entropy of one kernel, optionally
// after an address transform.
func KernelProfile(k *trace.Kernel, window, bits int, f Transform) Profile {
	tbs := make([]TBProfile, 0, len(k.TBs))
	for i := range k.TBs {
		tb := &k.TBs[i]
		if f == nil {
			tbs = append(tbs, ProfileTB(tb, bits))
		} else {
			mapped := trace.TB{ID: tb.ID, Requests: make([]trace.Request, len(tb.Requests))}
			for j, r := range tb.Requests {
				r.Addr = f(r.Addr)
				mapped.Requests[j] = r
			}
			tbs = append(tbs, ProfileTB(&mapped, bits))
		}
	}
	return WindowEntropy(tbs, window, bits)
}

// AppProfile computes the application-level entropy distribution: the
// per-kernel profiles weighted by each kernel's request count
// (Section III-A). TBs of different kernels never share a window because
// kernels do not co-execute.
func AppProfile(a *trace.App, window, bits int, f Transform) Profile {
	out := Profile{PerBit: make([]float64, bits)}
	for ki := range a.Kernels {
		kp := KernelProfile(&a.Kernels[ki], window, bits, f)
		for b := range out.PerBit {
			out.PerBit[b] += kp.PerBit[b] * float64(kp.Requests)
		}
		out.Requests += kp.Requests
	}
	if out.Requests > 0 {
		for b := range out.PerBit {
			out.PerBit[b] /= float64(out.Requests)
		}
	}
	return out
}

// Mean returns the average entropy over the given bit positions.
// Positions outside the profile are ignored; an empty selection (or one
// with no in-range positions) yields the documented sentinel 0 — "no
// bits selected" carries no entropy, and callers never see NaN or an
// index panic.
func (p Profile) Mean(positions []int) float64 {
	s, n := 0.0, 0
	for _, b := range positions {
		if b >= 0 && b < len(p.PerBit) {
			s += p.PerBit[b]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Min returns the minimum entropy over the given bit positions.
// Positions outside the profile are ignored; an empty selection (or one
// with no in-range positions) yields the documented sentinel 0 — with no
// bits to measure, no entropy is guaranteed, mirroring Mean's false-style
// empty value rather than vacuously claiming full entropy.
func (p Profile) Min(positions []int) float64 {
	min, n := 1.0, 0
	for _, b := range positions {
		if b < 0 || b >= len(p.PerBit) {
			continue
		}
		n++
		if p.PerBit[b] < min {
			min = p.PerBit[b]
		}
	}
	if n == 0 {
		return 0
	}
	return min
}

// ChannelBankValley applies the paper's qualitative Figure 5
// classification: the workload has an entropy valley when the channel
// bits are (near-)dead, or at least two bank bits are, while high-entropy
// bits exist above the candidate range. Single dead bank bits are common
// even in the paper's non-valley group and do not count.
func (p Profile) ChannelBankValley(chBits, bankBits []int, low, high float64) bool {
	deadCh := false
	for _, b := range chBits {
		if p.PerBit[b] <= low {
			deadCh = true
			break
		}
	}
	deadBanks := 0
	for _, b := range bankBits {
		if p.PerBit[b] <= low {
			deadBanks++
		}
	}
	if !deadCh && deadBanks < 2 {
		return false
	}
	// A valley needs harvestable entropy above it (Section III-B).
	maxBit := 0
	for _, b := range append(append([]int(nil), chBits...), bankBits...) {
		if b > maxBit {
			maxBit = b
		}
	}
	for b := maxBit + 1; b < len(p.PerBit); b++ {
		if p.PerBit[b] >= high {
			return true
		}
	}
	return false
}

// Range is a maximal run of contiguous address bits [Lo, Hi] whose
// entropy falls at or below a threshold — one "valley" of the profile.
type Range struct {
	Lo, Hi int
}

// ValleyRanges returns the maximal runs of dead bits (entropy ≤ low)
// that sit *below* harvestable entropy: a run only counts as a valley
// when some higher-order bit reaches the high threshold, mirroring
// HasValley's Section III-B rule that a valley needs entropy above it
// to harvest. Runs are reported in ascending bit order.
func (p Profile) ValleyRanges(low, high float64) []Range {
	n := len(p.PerBit)
	var out []Range
	seenHigh := false
	// Scan MSB→LSB so "entropy above" is known when a run closes.
	runHi := -1
	for b := n - 1; b >= 0; b-- {
		dead := p.PerBit[b] <= low
		if dead && seenHigh {
			if runHi < 0 {
				runHi = b
			}
		} else {
			if runHi >= 0 {
				out = append(out, Range{Lo: b + 1, Hi: runHi})
				runHi = -1
			}
			if p.PerBit[b] >= high {
				seenHigh = true
			}
		}
	}
	if runHi >= 0 {
		out = append(out, Range{Lo: 0, Hi: runHi})
	}
	// Reverse into ascending order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// HasValley reports whether the profile exhibits an entropy valley over
// the candidate bits: some candidate bit falls below the low threshold
// while higher-order bits reach the high threshold — i.e. entropy exists
// in the address but not where channel/bank selection needs it.
func (p Profile) HasValley(candidateBits []int, low, high float64) bool {
	valley := false
	for _, b := range candidateBits {
		if p.PerBit[b] <= low {
			valley = true
			break
		}
	}
	if !valley {
		return false
	}
	maxBit := 0
	for _, b := range candidateBits {
		if b > maxBit {
			maxBit = b
		}
	}
	for b := maxBit + 1; b < len(p.PerBit); b++ {
		if p.PerBit[b] >= high {
			return true
		}
	}
	return false
}
