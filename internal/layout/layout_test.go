package layout

import (
	"testing"
	"testing/quick"
)

func TestHynixGeometry(t *testing.T) {
	l := HynixGDDR5()
	if l.Bits != 30 {
		t.Fatalf("bits = %d", l.Bits)
	}
	if l.Capacity() != 1<<30 {
		t.Errorf("capacity = %d, want 1GB", l.Capacity())
	}
	if l.Channels() != 4 {
		t.Errorf("channels = %d, want 4", l.Channels())
	}
	if l.BanksPerChannel() != 16 {
		t.Errorf("banks/channel = %d, want 16", l.BanksPerChannel())
	}
	if l.RowsPerBank() != 4096 {
		t.Errorf("rows/bank = %d, want 4096", l.RowsPerBank())
	}
	if l.ColumnsPerRow() != 64 {
		t.Errorf("cols/row = %d, want 64", l.ColumnsPerRow())
	}
	if l.BlockBytes() != 64 {
		t.Errorf("block = %d, want 64", l.BlockBytes())
	}
}

func TestHynixMasks(t *testing.T) {
	l := HynixGDDR5()
	if m := l.Mask(Channel); m != 0x300 {
		t.Errorf("channel mask = %#x, want 0x300 (bits 8-9)", m)
	}
	if m := l.Mask(Bank); m != 0x3C00 {
		t.Errorf("bank mask = %#x, want 0x3C00 (bits 10-13)", m)
	}
	if m := l.Mask(Row); m != 0x3FFC0000 {
		t.Errorf("row mask = %#x", m)
	}
	if m := l.Mask(Column); m != 0x3C0C0 {
		t.Errorf("column mask = %#x, want split 7:6 + 17:14", m)
	}
	if m := l.PageMask(); m != 0x3FFC3F00 {
		t.Errorf("page mask = %#x, want row|bank|channel", m)
	}
	if m := l.NonBlockMask(); m != 0x3FFFFFC0 {
		t.Errorf("non-block mask = %#x", m)
	}
	// Masks partition the address space.
	all := l.Mask(Block) | l.Mask(Column) | l.Mask(Channel) | l.Mask(Bank) | l.Mask(Row)
	if all != (1<<30)-1 {
		t.Errorf("fields do not tile the address: %#x", all)
	}
}

func TestExtractCompose(t *testing.T) {
	l := HynixGDDR5()
	addr := uint64(0)
	addr |= 0xABC << 18 // row
	addr |= 0x5 << 10   // bank
	addr |= 0x2 << 8    // channel
	addr |= 0x3 << 6    // col low
	addr |= 0x9 << 14   // col high
	addr |= 0x2A        // block
	if got := l.RowOf(addr); got != 0xABC {
		t.Errorf("row = %#x", got)
	}
	if got := l.BankOf(addr); got != 5 {
		t.Errorf("bank = %d", got)
	}
	if got := l.ChannelOf(addr); got != 2 {
		t.Errorf("channel = %d", got)
	}
	// Column is dense: low 2 bits from 7:6, next 4 from 17:14.
	if got := l.ColumnOf(addr); got != 0x9<<2|0x3 {
		t.Errorf("column = %#x, want %#x", got, 0x9<<2|0x3)
	}
	if got := l.Extract(Block, addr); got != 0x2A {
		t.Errorf("block = %#x", got)
	}
}

// Property: Compose is a right inverse of Extract for every field, and
// recomposing all fields reconstructs the address exactly.
func TestExtractComposeRoundTrip(t *testing.T) {
	l := HynixGDDR5()
	fields := []Field{Block, Column, Channel, Bank, Row}
	f := func(a uint32) bool {
		addr := uint64(a) & ((1 << 30) - 1)
		var rebuilt uint64
		for _, fd := range fields {
			v := l.Extract(fd, addr)
			c := l.Compose(fd, v)
			if c&^l.Mask(fd) != 0 {
				return false
			}
			if l.Extract(fd, c) != v {
				return false
			}
			rebuilt |= c
		}
		return rebuilt == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStacked3D(t *testing.T) {
	l := Stacked3D()
	if l.Channels() != 4 {
		t.Errorf("stacks = %d, want 4", l.Channels())
	}
	if l.Width(Vault) != 4 || l.Width(Bank) != 4 {
		t.Errorf("vault/bank widths = %d/%d, want 4/4", l.Width(Vault), l.Width(Bank))
	}
	// Vault folds into the per-channel bank index.
	if l.BanksPerChannel() != 256 {
		t.Errorf("banks/channel = %d, want 256 (16 vaults x 16 banks)", l.BanksPerChannel())
	}
	addr := uint64(0x7)<<8 | uint64(0x3)<<12
	if got := l.BankGlobal(addr); got != 7<<4|3 {
		t.Errorf("bank global = %d, want %d", got, 7<<4|3)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("gap", 10, []Segment{{Block, 0, 3}, {Row, 5, 9}}); err == nil {
		t.Error("gap not detected")
	}
	if _, err := New("overlap", 10, []Segment{{Block, 0, 4}, {Row, 4, 9}}); err == nil {
		t.Error("overlap not detected")
	}
	if _, err := New("short", 10, []Segment{{Block, 0, 7}}); err == nil {
		t.Error("short coverage not detected")
	}
	if _, err := New("inverted", 10, []Segment{{Block, 0, 4}, {Row, 9, 5}}); err == nil {
		t.Error("inverted segment not detected")
	}
	if _, err := New("ok", 10, []Segment{{Row, 5, 9}, {Block, 0, 4}}); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
}

func TestFieldBits(t *testing.T) {
	l := HynixGDDR5()
	got := l.FieldBits(Column)
	want := []int{6, 7, 14, 15, 16, 17}
	if len(got) != len(want) {
		t.Fatalf("column bits = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("column bits = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	got := HynixGDDR5().String()
	want := "Row[29:18] Column[17:14] Bank[13:10] Channel[9:8] Column[7:6] Block[5:0]"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if Field(99).String() != "Field(99)" {
		t.Error("unknown field string")
	}
}

// Property: Extract/Compose round-trips on the 3D-stacked layout too,
// including the vault field.
func TestStacked3DRoundTrip(t *testing.T) {
	l := Stacked3D()
	fields := []Field{Block, Channel, Vault, Bank, Column, Row}
	f := func(a uint32) bool {
		addr := uint64(a) & ((1 << 30) - 1)
		var rebuilt uint64
		for _, fd := range fields {
			rebuilt |= l.Compose(fd, l.Extract(fd, addr))
		}
		return rebuilt == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBankGlobalDense(t *testing.T) {
	// Every (vault, bank) pair maps to a distinct dense index below
	// BanksPerChannel.
	l := Stacked3D()
	seen := map[int]bool{}
	for v := uint64(0); v < 16; v++ {
		for b := uint64(0); b < 16; b++ {
			addr := l.Compose(Vault, v) | l.Compose(Bank, b)
			g := l.BankGlobal(addr)
			if g < 0 || g >= l.BanksPerChannel() {
				t.Fatalf("BankGlobal(%d,%d) = %d out of range", v, b, g)
			}
			if seen[g] {
				t.Fatalf("BankGlobal collision at %d", g)
			}
			seen[g] = true
		}
	}
}
