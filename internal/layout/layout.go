// Package layout describes how a flat physical address decomposes into
// DRAM coordinates (channel, bank, row, column, and for 3D-stacked parts,
// stack and vault). It encodes the baseline Hynix GDDR5 address map of the
// paper's Figure 4 and the HMC-style 3D-stacked map of Section VI-D.
package layout

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Field identifies one dimension of the DRAM coordinate space.
type Field int

// Address fields. Block is the offset within a DRAM burst/LLC line and is
// never remapped (it has no effect on DRAM behavior, Section III-B).
const (
	Block Field = iota
	Column
	Channel
	Bank
	Row
	Vault // 3D-stacked only
	fieldCount
)

var fieldNames = [...]string{"Block", "Column", "Channel", "Bank", "Row", "Vault"}

func (f Field) String() string {
	if f < 0 || int(f) >= len(fieldNames) {
		return fmt.Sprintf("Field(%d)", int(f))
	}
	return fieldNames[f]
}

// Segment is a contiguous run of address bits [Lo, Hi] (inclusive)
// belonging to one field. A field may be split into multiple segments, as
// the column is in the Hynix map.
type Segment struct {
	Field  Field
	Lo, Hi int
}

// Width returns the number of bits in the segment.
func (s Segment) Width() int { return s.Hi - s.Lo + 1 }

// Mask returns the address-bit mask covered by the segment.
func (s Segment) Mask() uint64 {
	return ((uint64(1) << uint(s.Width())) - 1) << uint(s.Lo)
}

// Layout is a complete address map over Bits address bits. Segments must
// tile [0, Bits) exactly, with no gaps or overlaps.
type Layout struct {
	Name     string
	Bits     int
	Segments []Segment
}

// New validates and returns a layout. Segments may be given in any order.
func New(name string, bits int, segs []Segment) (Layout, error) {
	l := Layout{Name: name, Bits: bits, Segments: append([]Segment(nil), segs...)}
	sort.Slice(l.Segments, func(i, j int) bool { return l.Segments[i].Lo < l.Segments[j].Lo })
	next := 0
	for _, s := range l.Segments {
		if s.Lo != next {
			return Layout{}, fmt.Errorf("layout %s: gap or overlap at bit %d (segment %v starts at %d)", name, next, s.Field, s.Lo)
		}
		if s.Hi < s.Lo {
			return Layout{}, fmt.Errorf("layout %s: segment %v has Hi < Lo", name, s.Field)
		}
		next = s.Hi + 1
	}
	if next != bits {
		return Layout{}, fmt.Errorf("layout %s: segments cover %d bits, want %d", name, next, bits)
	}
	return l, nil
}

// MustNew is New but panics on error; for the package presets.
func MustNew(name string, bits int, segs []Segment) Layout {
	l, err := New(name, bits, segs)
	if err != nil {
		panic(err)
	}
	return l
}

// HynixGDDR5 returns the baseline 30-bit (1 GB) Hynix GDDR5 address map of
// Figure 4: 4 channels × 16 banks × 4K rows × 64 columns × 64 B blocks.
//
//	bit: 29....18 17...14 13...10 9..8 7..6 5....0
//	      Row     ColHi   Bank    Ch   ColLo Block
//
// Channel bits are 8–9 and the first bank bit is 10, matching the paper's
// Figure 10 discussion ("entropy valley for channel bits 8–9 and bank bit
// 10").
func HynixGDDR5() Layout {
	return MustNew("hynix-gddr5", 30, []Segment{
		{Block, 0, 5},
		{Column, 6, 7},
		{Channel, 8, 9},
		{Bank, 10, 13},
		{Column, 14, 17},
		{Row, 18, 29},
	})
}

// Stacked3D returns a 30-bit HMC-style 3D-stacked map (Section VI-D):
// 4 stacks (modeled as channels) × 16 vaults × 16 banks, with the paper's
// requirement to randomize 2 channel, 4 vault and 4 bank bits.
//
//	bit: 29....20 19..16 15...12 11...8 7..6 5....0
//	      Row     Column Bank    Vault  Ch   Block
func Stacked3D() Layout {
	return MustNew("3d-stacked", 30, []Segment{
		{Block, 0, 5},
		{Channel, 6, 7},
		{Vault, 8, 11},
		{Bank, 12, 15},
		{Column, 16, 19},
		{Row, 20, 29},
	})
}

// Mask returns the OR of all bit masks belonging to field f.
func (l Layout) Mask(f Field) uint64 {
	var m uint64
	for _, s := range l.Segments {
		if s.Field == f {
			m |= s.Mask()
		}
	}
	return m
}

// MaskOf returns the union mask of several fields.
func (l Layout) MaskOf(fs ...Field) uint64 {
	var m uint64
	for _, f := range fs {
		m |= l.Mask(f)
	}
	return m
}

// PageMask returns the mask of the DRAM page address: every field that
// selects which DRAM page is touched (row, bank, channel, and vault on
// stacked parts). This is the PAE input-bit set.
func (l Layout) PageMask() uint64 {
	return l.MaskOf(Row, Bank, Channel, Vault)
}

// NonBlockMask returns all bits except the block offset — the FAE/ALL
// input-bit set.
func (l Layout) NonBlockMask() uint64 {
	return ((uint64(1) << uint(l.Bits)) - 1) &^ l.Mask(Block)
}

// Bits0 returns the positions of the 1 bits in mask, ascending.
func Bits0(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		out = append(out, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	return out
}

// FieldBits returns the positions of field f's bits, ascending.
func (l Layout) FieldBits(f Field) []int { return Bits0(l.Mask(f)) }

// Width returns the total bit width of field f.
func (l Layout) Width(f Field) int { return bits.OnesCount64(l.Mask(f)) }

// Extract gathers the bits of field f from addr into a dense integer
// (lowest segment bit becomes bit 0).
func (l Layout) Extract(f Field, addr uint64) uint64 {
	var out uint64
	shift := 0
	for _, s := range l.Segments {
		if s.Field != f {
			continue
		}
		out |= ((addr >> uint(s.Lo)) & ((1 << uint(s.Width())) - 1)) << uint(shift)
		shift += s.Width()
	}
	return out
}

// Compose is the inverse of Extract: it scatters a dense field value into
// its address-bit positions (other bits zero).
func (l Layout) Compose(f Field, val uint64) uint64 {
	var out uint64
	shift := 0
	for _, s := range l.Segments {
		if s.Field != f {
			continue
		}
		out |= ((val >> uint(shift)) & ((1 << uint(s.Width())) - 1)) << uint(s.Lo)
		shift += s.Width()
	}
	return out
}

// Convenience extractors.
func (l Layout) ChannelOf(addr uint64) int { return int(l.Extract(Channel, addr)) }
func (l Layout) BankOf(addr uint64) int    { return int(l.Extract(Bank, addr)) }
func (l Layout) RowOf(addr uint64) int     { return int(l.Extract(Row, addr)) }
func (l Layout) ColumnOf(addr uint64) int  { return int(l.Extract(Column, addr)) }
func (l Layout) VaultOf(addr uint64) int   { return int(l.Extract(Vault, addr)) }

// Channels, BanksPerChannel, RowsPerBank, ColumnsPerRow report the
// geometry implied by field widths. On stacked layouts, BanksPerChannel
// folds the vault dimension in (vaults × banks), since each vault has an
// independent bank array.
func (l Layout) Channels() int { return 1 << uint(l.Width(Channel)) }
func (l Layout) BanksPerChannel() int {
	return 1 << uint(l.Width(Bank)+l.Width(Vault))
}
func (l Layout) RowsPerBank() int   { return 1 << uint(l.Width(Row)) }
func (l Layout) ColumnsPerRow() int { return 1 << uint(l.Width(Column)) }
func (l Layout) BlockBytes() int    { return 1 << uint(l.Width(Block)) }

// BankGlobal returns a dense per-channel bank index folding vault and bank
// together (vault-major), used by the DRAM model to index bank state.
func (l Layout) BankGlobal(addr uint64) int {
	return int(l.Extract(Vault, addr))<<uint(l.Width(Bank)) | int(l.Extract(Bank, addr))
}

// Capacity returns the total bytes addressed by the layout.
func (l Layout) Capacity() uint64 { return uint64(1) << uint(l.Bits) }

// String renders the layout MSB-first, e.g.
// "Row[29:18] Column[17:14] Bank[13:10] Channel[9:8] Column[7:6] Block[5:0]".
func (l Layout) String() string {
	var parts []string
	for i := len(l.Segments) - 1; i >= 0; i-- {
		s := l.Segments[i]
		parts = append(parts, fmt.Sprintf("%s[%d:%d]", s.Field, s.Hi, s.Lo))
	}
	return strings.Join(parts, " ")
}
