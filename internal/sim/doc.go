// Package sim provides a small deterministic discrete-event simulation
// kernel: a picosecond-resolution clock, a pooled-event queue,
// single-server resources, and time-weighted statistics integrators.
// The whole GPU memory-subsystem model is built on this engine.
//
// # Pooled events
//
// The engine stores events in a slab of recycled records behind an
// indexed 4-ary min-heap: scheduling pops a slot off a free list,
// firing pushes it back, so steady-state event churn performs zero
// allocations. There are two scheduling APIs:
//
//   - At(t, func()) / Schedule(d, func()) — the closure API. Convenient,
//     but every call site that captures state allocates a closure.
//   - AtCall(t, h, arg) / ScheduleCall(d, h, arg) — the handler API.
//     h is a long-lived Handler (typically a package-level function)
//     and arg a pointer to per-request state, usually itself pooled by
//     the caller. Nothing on this path allocates.
//
// The substrate models (gpu, noc, dram, gpusim) schedule exclusively
// through the handler API, pooling their per-request records; the
// closure API remains for tests and cold paths. BenchmarkEngineChurn
// pins allocs/op at zero for the handler path, and CI fails if it ever
// regresses.
//
// # Determinism contract
//
// Every scheduled event carries a monotone sequence number, and the
// heap orders by (time, sequence): events scheduled for the same
// instant fire in scheduling order. Pooling does not affect this —
// record recycling changes which slab slot an event occupies, never its
// position in the order, and no model behavior depends on object
// identity. Consequently a simulation is a pure function of its inputs:
// identical (trace, mapping, config) produce byte-identical results,
// whether the engine is freshly zero-valued, Reset() for reuse, or
// handed recycled pool objects. The gpusim determinism regression tests
// pin all three cases.
package sim
