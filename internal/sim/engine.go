// Package sim provides a small deterministic discrete-event simulation
// kernel: a picosecond-resolution clock, an event queue, single-server
// resources, and time-weighted statistics integrators.
//
// The whole GPU memory-subsystem model is built on this engine. Events
// scheduled for the same instant fire in scheduling order, which makes
// simulations reproducible run to run.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
//
// Picosecond resolution lets the three clock domains of the modeled GPU
// (1.4 GHz core, 924 MHz DRAM command clock, 700 MHz NoC) coexist on one
// integer clock without rounding drift.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock describes a periodic clock domain and converts cycle counts to
// simulation time.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// ClockFromMHz builds a Clock for the given frequency in MHz.
// The period is rounded to the nearest picosecond.
func ClockFromMHz(mhz float64) Clock {
	return Clock{Period: Time(1e6/mhz + 0.5)}
}

// Cycles converts a cycle count in this domain to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// ToCycles converts a duration to (possibly fractional) cycles.
func (c Clock) ToCycles(t Time) float64 { return float64(t) / float64(c.Period) }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay. A negative delay panics: the engine cannot
// rewrite history.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if the deadline was hit first. Time advances to
// min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			e.now = deadline
			return false
		}
		e.step()
	}
	return true
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
}

// Server models a single resource that serves one request at a time in
// arrival order (a next-free-time server). It captures serialization and
// queueing delay at pipelined units such as cache ports, NoC links and
// DRAM data buses without per-cycle simulation.
type Server struct {
	freeAt Time
	busy   Time // cumulative busy time, for utilization
}

// Acquire reserves the server at or after now for the given service time
// and returns the start and completion instants.
func (s *Server) Acquire(now, service Time) (start, done Time) {
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + service
	s.freeAt = done
	s.busy += service
	return start, done
}

// FreeAt reports when the server next becomes idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// BusyTime reports cumulative service time delivered.
func (s *Server) BusyTime() Time { return s.busy }

// Utilization returns busy time as a fraction of the elapsed horizon.
func (s *Server) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / float64(horizon)
}
