package sim

import (
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
//
// Picosecond resolution lets the three clock domains of the modeled GPU
// (1.4 GHz core, 924 MHz DRAM command clock, 700 MHz NoC) coexist on one
// integer clock without rounding drift.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts t to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock describes a periodic clock domain and converts cycle counts to
// simulation time.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// ClockFromMHz builds a Clock for the given frequency in MHz.
// The period is rounded to the nearest picosecond.
func ClockFromMHz(mhz float64) Clock {
	return Clock{Period: Time(1e6/mhz + 0.5)}
}

// Cycles converts a cycle count in this domain to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// ToCycles converts a duration to (possibly fractional) cycles.
func (c Clock) ToCycles(t Time) float64 { return float64(t) / float64(c.Period) }

// Handler is a pooled-event callback. Pairing a package-level function
// (or any long-lived func value) with a pointer-shaped arg schedules
// with zero allocation: both slot directly into the engine's recycled
// event records. Closures still work — they just allocate at the
// caller, which is exactly what the handler API exists to avoid on hot
// paths.
type Handler func(arg any)

// eventRec is one slot in the engine's event slab. Records are recycled
// through a free list, so steady-state scheduling never allocates.
type eventRec struct {
	at  Time
	seq uint64
	h   Handler
	arg any
}

// Engine is a discrete-event simulator. The zero value is ready to use.
//
// Events live in a slab of recycled records indexed by a 4-ary min-heap
// of slot numbers, ordered by (time, schedule sequence): events
// scheduled for the same instant fire in scheduling order, which makes
// simulations reproducible run to run — see doc.go for the full
// determinism contract.
type Engine struct {
	now   Time
	seq   uint64
	fired uint64
	slab  []eventRec
	free  []int32 // recycled slab slots (LIFO)
	heap  []int32 // slab indices ordered by (at, seq)
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay. A negative delay panics: the engine cannot
// rewrite history.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (>= Now). The closure fn allocates at
// the caller; hot paths should use AtCall with a pooled arg instead.
func (e *Engine) At(t Time, fn func()) {
	e.AtCall(t, callFunc, fn)
}

// callFunc adapts the closure API onto the handler path. Func values
// are pointer-shaped, so boxing fn into arg does not allocate.
func callFunc(arg any) { arg.(func())() }

// ScheduleCall runs h(arg) after delay; the handler-style twin of
// Schedule.
func (e *Engine) ScheduleCall(delay Time, h Handler, arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtCall(e.now+delay, h, arg)
}

// AtCall runs h(arg) at absolute time t (>= Now). With a long-lived h
// and a pooled arg this is the zero-allocation scheduling path: the
// event record comes from the engine's free list and returns to it when
// the event fires.
func (e *Engine) AtCall(t Time, h Handler, arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		idx = int32(len(e.slab))
		e.slab = append(e.slab, eventRec{})
	}
	r := &e.slab[idx]
	r.at, r.seq, r.h, r.arg = t, e.seq, h, arg
	e.push(idx)
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() Time {
	for len(e.heap) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if the deadline was hit first. Time advances to
// min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.heap) > 0 {
		if e.slab[e.heap[0]].at > deadline {
			e.now = deadline
			return false
		}
		e.step()
	}
	return true
}

// RunBounded executes at most maxEvents events. It returns true if the
// queue drained, false if the budget ran out first. Callers use it as a
// cancellation checkpoint: run a bounded batch, poll for cancellation,
// repeat. A non-positive budget executes nothing and reports whether the
// queue is already empty.
func (e *Engine) RunBounded(maxEvents int) bool {
	for ; maxEvents > 0 && len(e.heap) > 0; maxEvents-- {
		e.step()
	}
	return len(e.heap) == 0
}

// Reset returns the engine to time zero with an empty queue, keeping
// the slab, free-list and heap capacity for reuse. Any still-pending
// events are dropped. A Reset engine behaves exactly like a zero-value
// Engine, so a reused engine reproduces a fresh engine's run bit for
// bit (the determinism regression tests pin this).
func (e *Engine) Reset() {
	for i := range e.slab {
		e.slab[i].h, e.slab[i].arg = nil, nil
	}
	e.slab = e.slab[:0]
	e.free = e.free[:0]
	e.heap = e.heap[:0]
	e.now, e.seq, e.fired = 0, 0, 0
}

// step fires the earliest event. The slot is recycled before the
// handler runs so the handler's own scheduling can reuse it.
func (e *Engine) step() {
	idx := e.pop()
	r := &e.slab[idx]
	e.now = r.at
	h, arg := r.h, r.arg
	r.h, r.arg = nil, nil // drop references so pooled args can be collected
	e.free = append(e.free, idx)
	e.fired++
	h(arg)
}

// less orders slab records by (time, schedule sequence).
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.slab[a], &e.slab[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// push inserts a slab index into the 4-ary heap. A 4-ary layout halves
// tree depth versus binary, and sift costs stay cheap because the
// comparator only touches two slab records per level.
func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// pop removes and returns the minimum slab index.
func (e *Engine) pop() int32 {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	h = e.heap
	n := last
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// Server models a single resource that serves one request at a time in
// arrival order (a next-free-time server). It captures serialization and
// queueing delay at pipelined units such as cache ports, NoC links and
// DRAM data buses without per-cycle simulation.
type Server struct {
	freeAt Time
	busy   Time // cumulative busy time, for utilization
}

// Acquire reserves the server at or after now for the given service time
// and returns the start and completion instants.
func (s *Server) Acquire(now, service Time) (start, done Time) {
	start = now
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + service
	s.freeAt = done
	s.busy += service
	return start, done
}

// FreeAt reports when the server next becomes idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// BusyTime reports cumulative service time delivered.
func (s *Server) BusyTime() Time { return s.busy }

// Utilization returns busy time as a fraction of the elapsed horizon.
func (s *Server) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / float64(horizon)
}
