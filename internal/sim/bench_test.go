package sim

import "testing"

// BenchmarkEngineChurn is the steady-state scheduling microbenchmark:
// one event in flight at a time, each firing schedules the next. This is
// the pattern every substrate model (SM advance, DRAM kick, NoC hop)
// drives the engine with, so its allocs/op is the engine's steady-state
// allocation rate — the CI smoke job asserts it stays at zero.
func BenchmarkEngineChurn(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var step Handler
	step = func(arg any) {
		n++
		if n < b.N {
			e.ScheduleCall(1, step, nil)
		}
	}
	e.ScheduleCall(1, step, nil)
	e.Run()
	if n != b.N {
		b.Fatalf("fired %d, want %d", n, b.N)
	}
}

// BenchmarkEngineFanout keeps a deep pending queue (1024 events) to
// exercise heap sift costs under realistic occupancy.
func BenchmarkEngineFanout(b *testing.B) {
	const width = 1024
	var e Engine
	b.ReportAllocs()
	n := 0
	var step Handler
	step = func(arg any) {
		n++
		if n <= b.N {
			// Pseudo-random-ish delays spread events across the heap.
			e.ScheduleCall(Time(1+(n*2654435761)%97), step, nil)
		}
	}
	b.ResetTimer()
	for i := 0; i < width; i++ {
		e.ScheduleCall(Time(1+i%97), step, nil)
	}
	e.Run()
}

// BenchmarkEngineClosure measures the legacy closure pattern — a fresh
// capturing closure per event, which is what every pre-refactor call
// site did — for comparison with the handler path (it allocates per
// event by construction).
func BenchmarkEngineClosure(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var step func(v int)
	step = func(v int) {
		n++
		if n < b.N {
			next := v + 1
			e.Schedule(1, func() { step(next) })
		}
	}
	e.Schedule(1, func() { step(0) })
	e.Run()
}
