package sim

import "testing"

// TestHandlerScheduleZeroAlloc is the in-repo guard for the pooled
// engine's core guarantee: once the slab has grown to the peak pending
// count, handler-style scheduling and firing allocate nothing. The CI
// benchmark smoke job additionally asserts 0 allocs/op on
// BenchmarkEngineChurn, but this test catches regressions in every
// plain `go test` run.
func TestHandlerScheduleZeroAlloc(t *testing.T) {
	var e Engine
	ping := func(any) {}
	// Warm the slab to steady-state capacity.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(Time(i), ping, nil)
	}
	e.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleCall(Time(i%7), ping, nil)
		}
		e.Run()
	})
	if avg != 0 {
		t.Errorf("steady-state scheduling allocates %v allocs per 64-event burst, want 0", avg)
	}
}

// TestResetReproducesFreshEngine pins Reset's contract: a reused engine
// must behave exactly like a zero-value one, including event ordering
// and sequence-number ties.
func TestResetReproducesFreshEngine(t *testing.T) {
	runOnce := func(e *Engine) []int {
		var order []int
		e.Schedule(30, func() { order = append(order, 3) })
		e.Schedule(10, func() { order = append(order, 1) })
		e.Schedule(20, func() { order = append(order, 2) })
		e.Schedule(20, func() { order = append(order, 4) })
		e.Run()
		return order
	}
	var fresh Engine
	want := runOnce(&fresh)

	var reused Engine
	runOnce(&reused)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Events() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d events=%d", reused.Now(), reused.Pending(), reused.Events())
	}
	got := runOnce(&reused)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused order = %v, want %v", got, want)
		}
	}
}

// TestResetDropsPendingEvents: events still queued at Reset must not
// fire afterwards.
func TestResetDropsPendingEvents(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(10, func() { fired = true })
	e.Reset()
	e.Run()
	if fired {
		t.Error("event scheduled before Reset fired after it")
	}
}
