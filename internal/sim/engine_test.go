package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000 || Microsecond != 1e6 || Millisecond != 1e9 || Second != 1e12 {
		t.Fatalf("unit constants wrong: %d %d %d %d", Nanosecond, Microsecond, Millisecond, Second)
	}
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Errorf("Seconds() = %v, want 0.002", got)
	}
	if got := (3 * Nanosecond).Nanoseconds(); got != 3 {
		t.Errorf("Nanoseconds() = %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2500 * Nanosecond, "2.500us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockFromMHz(t *testing.T) {
	core := ClockFromMHz(1400)
	if core.Period != 714 {
		t.Errorf("1.4GHz period = %v, want 714ps", core.Period)
	}
	dram := ClockFromMHz(924)
	if dram.Period != 1082 {
		t.Errorf("924MHz period = %v, want 1082ps", dram.Period)
	}
	if got := core.Cycles(10); got != 7140 {
		t.Errorf("Cycles(10) = %v", got)
	}
	if got := core.ToCycles(7140); got != 10 {
		t.Errorf("ToCycles = %v, want 10", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	// Same-time events fire in scheduling order.
	e.Schedule(20, func() { order = append(order, 4) })
	end := e.Run()
	if end != 30 {
		t.Errorf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Events() != 4 {
		t.Errorf("Events() = %d, want 4", e.Events())
	}
}

func TestEngineCascade(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	end := e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if end != 100 {
		t.Errorf("end = %v, want 100", end)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*10, func() { fired++ })
	}
	if drained := e.RunUntil(45); drained {
		t.Fatal("RunUntil(45) reported drained")
	}
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
	if e.Now() != 45 {
		t.Errorf("now = %v, want 45", e.Now())
	}
	if !e.RunUntil(1000) {
		t.Fatal("RunUntil(1000) should drain")
	}
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
}

func TestEngineRunBounded(t *testing.T) {
	var e Engine
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*10, func() { fired++ })
	}
	if drained := e.RunBounded(4); drained {
		t.Fatal("RunBounded(4) reported drained")
	}
	if fired != 4 {
		t.Errorf("fired = %d, want 4", fired)
	}
	if e.Now() != 40 {
		t.Errorf("now = %v, want 40", e.Now())
	}
	// A zero budget executes nothing and reports the non-empty queue.
	if e.RunBounded(0) {
		t.Fatal("RunBounded(0) reported drained with events pending")
	}
	if fired != 4 {
		t.Errorf("fired after zero budget = %d, want 4", fired)
	}
	// An oversized budget drains and reports it.
	if !e.RunBounded(1000) {
		t.Fatal("RunBounded(1000) should drain")
	}
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
	// Drained engine: any budget reports drained immediately.
	if !e.RunBounded(0) || !e.RunBounded(5) {
		t.Fatal("RunBounded on drained engine should report drained")
	}
}

// TestEngineRunBoundedMatchesRun pins that draining in bounded batches
// is observationally identical to a single Run: same firing order, same
// final time.
func TestEngineRunBoundedMatchesRun(t *testing.T) {
	build := func(e *Engine, order *[]int) {
		for i := 0; i < 50; i++ {
			id := i
			e.Schedule(Time(i%7)*3, func() {
				*order = append(*order, id)
				if id%5 == 0 {
					e.Schedule(2, func() { *order = append(*order, 1000+id) })
				}
			})
		}
	}
	var a, b Engine
	var orderA, orderB []int
	build(&a, &orderA)
	build(&b, &orderB)
	a.Run()
	for !b.RunBounded(3) {
	}
	if a.Now() != b.Now() {
		t.Fatalf("final time: Run=%v RunBounded=%v", a.Now(), b.Now())
	}
	if len(orderA) != len(orderB) {
		t.Fatalf("event counts: Run=%d RunBounded=%d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("firing order diverges at %d: %d vs %d", i, orderA[i], orderB[i])
		}
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	var e Engine
	e.Schedule(-1, func() {})
}

func TestEnginePastSchedulePanics(t *testing.T) {
	var e Engine
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestServerSerializes(t *testing.T) {
	var s Server
	start, done := s.Acquire(0, 10)
	if start != 0 || done != 10 {
		t.Fatalf("first acquire = (%v,%v)", start, done)
	}
	// Arriving while busy queues behind.
	start, done = s.Acquire(5, 10)
	if start != 10 || done != 20 {
		t.Fatalf("second acquire = (%v,%v), want (10,20)", start, done)
	}
	// Arriving after idle starts immediately.
	start, done = s.Acquire(50, 5)
	if start != 50 || done != 55 {
		t.Fatalf("third acquire = (%v,%v), want (50,55)", start, done)
	}
	if s.BusyTime() != 25 {
		t.Errorf("busy = %v, want 25", s.BusyTime())
	}
	if u := s.Utilization(100); u != 0.25 {
		t.Errorf("utilization = %v, want 0.25", u)
	}
}

// Property: a server never starts a request before the later of its arrival
// and the previous completion, and completions are monotone.
func TestServerMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		var s Server
		now := Time(0)
		prevDone := Time(0)
		for i, a := range arrivals {
			now += Time(a)
			svc := Time(10)
			if i < len(services) {
				svc = Time(services[i]) + 1
			}
			start, done := s.Acquire(now, svc)
			if start < now || start < prevDone || done != start+svc {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntegratorMeanWhileBusy(t *testing.T) {
	var g Integrator
	g.Set(0, 0)
	g.Set(10, 2) // level 2 over [10,30)
	g.Set(30, 0) // idle [30,50)
	g.Set(50, 4) // level 4 over [50,60)
	g.Set(60, 0)
	g.Finish(100)
	// busy time = 30, integral = 2*20 + 4*10 = 80 -> mean 80/30
	want := 80.0 / 30.0
	if got := g.MeanWhileBusy(); got != want {
		t.Errorf("MeanWhileBusy = %v, want %v", got, want)
	}
	if g.BusyTime() != 30 {
		t.Errorf("BusyTime = %v, want 30", g.BusyTime())
	}
	if g.Peak() != 4 {
		t.Errorf("Peak = %d, want 4", g.Peak())
	}
	if got := g.Mean(100); got != 0.8 {
		t.Errorf("Mean(100) = %v, want 0.8", got)
	}
}

func TestIntegratorIncDec(t *testing.T) {
	var g Integrator
	g.Inc(0)
	g.Inc(5)
	g.Dec(10)
	g.Dec(20)
	g.Finish(20)
	// [0,5): 1, [5,10): 2, [10,20): 1 => integral 5+10+10 = 25, busy 20
	if got := g.MeanWhileBusy(); got != 1.25 {
		t.Errorf("MeanWhileBusy = %v, want 1.25", got)
	}
	if g.Level() != 0 {
		t.Errorf("Level = %d, want 0", g.Level())
	}
}

func TestIntegratorNeverBusy(t *testing.T) {
	var g Integrator
	g.Set(0, 0)
	g.Finish(100)
	if got := g.MeanWhileBusy(); got != 0 {
		t.Errorf("MeanWhileBusy = %v, want 0", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Observe(x)
	}
	if w.Count() != 4 || w.Mean() != 2.5 {
		t.Errorf("count=%d mean=%v", w.Count(), w.Mean())
	}
	if w.Min() != 1 || w.Max() != 4 {
		t.Errorf("min=%v max=%v", w.Min(), w.Max())
	}
	if v := w.Variance(); v < 1.249 || v > 1.251 {
		t.Errorf("variance = %v, want 1.25", v)
	}
}

// Property: Welford mean equals arithmetic mean.
func TestWelfordMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		sum := 0.0
		n := 0
		for _, x := range xs {
			if x != x || x > 1e12 || x < -1e12 { // skip NaN/huge to avoid fp noise
				continue
			}
			w.Observe(x)
			sum += x
			n++
		}
		if n == 0 {
			return w.Count() == 0
		}
		want := sum / float64(n)
		diff := w.Mean() - want
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if want > 1 || want < -1 {
			if want < 0 {
				scale = -want
			} else {
				scale = want
			}
		}
		return diff <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
