package sim

// Integrator accumulates the time-weighted integral of a piecewise-constant
// integer level, tracking separately the portion of time during which the
// level is at least one. It implements the paper's memory-level-parallelism
// metric: "the number of outstanding requests if at least one is
// outstanding" (Section VI-B).
type Integrator struct {
	level    int64
	lastT    Time
	weighted float64 // integral of level dt
	busy     Time    // total time with level >= 1
	peak     int64
	started  bool
}

// Set moves the level to v at time now.
func (g *Integrator) Set(now Time, v int64) {
	g.advance(now)
	g.level = v
	if v > g.peak {
		g.peak = v
	}
}

// Add changes the level by delta at time now.
func (g *Integrator) Add(now Time, delta int64) { g.Set(now, g.level+delta) }

// Inc and Dec are the common unit adjustments.
func (g *Integrator) Inc(now Time) { g.Add(now, 1) }
func (g *Integrator) Dec(now Time) { g.Add(now, -1) }

func (g *Integrator) advance(now Time) {
	if !g.started {
		g.lastT = now
		g.started = true
		return
	}
	if now < g.lastT {
		panic("sim: integrator time went backwards")
	}
	dt := now - g.lastT
	if dt > 0 && g.level > 0 {
		g.weighted += float64(g.level) * float64(dt)
		g.busy += dt
	}
	g.lastT = now
}

// Level returns the current level.
func (g *Integrator) Level() int64 { return g.level }

// Peak returns the maximum level observed.
func (g *Integrator) Peak() int64 { return g.peak }

// BusyTime returns the total time spent with level >= 1, up to the last
// Set/Add/Finish call.
func (g *Integrator) BusyTime() Time { return g.busy }

// Finish advances the integral to the end time without changing the level.
func (g *Integrator) Finish(now Time) { g.advance(now) }

// MeanWhileBusy returns the time-weighted mean level over the intervals in
// which the level was >= 1 — the paper's parallelism metric. It returns 0
// if the level was never positive.
func (g *Integrator) MeanWhileBusy() float64 {
	if g.busy == 0 {
		return 0
	}
	return g.weighted / float64(g.busy)
}

// Mean returns the time-weighted mean level over [start of observation,
// last advance], counting idle time as level 0.
func (g *Integrator) Mean(total Time) float64 {
	if total <= 0 {
		return 0
	}
	return g.weighted / float64(total)
}

// Welford accumulates a running mean over scalar samples. It is used for
// event-weighted statistics such as per-packet NoC latency.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples observed.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Min and Max return sample extrema (0 with no samples).
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Variance returns the population variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}
