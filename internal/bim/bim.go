// Package bim implements Binary Invertible Matrices (BIMs) over GF(2),
// the unified representation of AND/XOR address mapping schemes from
// "Get Out of the Valley" (ISCA 2018), Section IV-A.
//
// A mapping is the matrix-vector product out = M × in where multiplication
// is bitwise AND and addition is XOR. Requiring M to be invertible
// guarantees a one-to-one mapping between input and output addresses. In
// hardware, output bit i is the XOR tree over the input bits selected by
// row i, so a BIM costs one cycle on contemporary GPUs (Figure 7).
//
// Matrices are limited to 64 bits per side, which comfortably covers
// physical address spaces; rows are stored as uint64 bit masks with input
// bit j at mask bit j.
package bim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// MaxBits is the largest supported matrix dimension.
const MaxBits = 64

// Matrix is an n×n binary matrix. Row i holds the mask of input bits that
// are XORed together to produce output bit i. The zero value is unusable;
// construct with Identity, New, or a generator.
type Matrix struct {
	n    int
	rows []uint64
}

// New builds a matrix from explicit rows; rows[i] is the input-bit mask of
// output bit i. It panics if n is out of range or len(rows) != n.
func New(n int, rows []uint64) Matrix {
	checkDim(n)
	if len(rows) != n {
		panic(fmt.Sprintf("bim: got %d rows for dimension %d", len(rows), n))
	}
	m := Matrix{n: n, rows: make([]uint64, n)}
	copy(m.rows, rows)
	mask := dimMask(n)
	for i, r := range m.rows {
		if r&^mask != 0 {
			panic(fmt.Sprintf("bim: row %d has bits above dimension %d", i, n))
		}
	}
	return m
}

func checkDim(n int) {
	if n <= 0 || n > MaxBits {
		panic(fmt.Sprintf("bim: dimension %d out of range (1..%d)", n, MaxBits))
	}
}

func dimMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Identity returns the n×n identity matrix (the BASE mapping).
func Identity(n int) Matrix {
	checkDim(n)
	rows := make([]uint64, n)
	for i := range rows {
		rows[i] = 1 << uint(i)
	}
	return Matrix{n: n, rows: rows}
}

// N returns the matrix dimension.
func (m Matrix) N() int { return m.n }

// Row returns the input-bit mask of output bit i.
func (m Matrix) Row(i int) uint64 { return m.rows[i] }

// SetRow returns a copy of m with row i replaced. The original is not
// modified; Matrix values are treated as immutable once built.
func (m Matrix) SetRow(i int, mask uint64) Matrix {
	if mask&^dimMask(m.n) != 0 {
		panic("bim: SetRow mask exceeds dimension")
	}
	rows := make([]uint64, m.n)
	copy(rows, m.rows)
	rows[i] = mask
	return Matrix{n: m.n, rows: rows}
}

// Apply computes the mapped address M × addr over GF(2). Address bits at or
// above the dimension are preserved unchanged, so a 30-bit matrix can be
// applied to addresses carried in wider integers.
func (m Matrix) Apply(addr uint64) uint64 {
	in := addr & dimMask(m.n)
	var out uint64
	for i, row := range m.rows {
		out |= uint64(bits.OnesCount64(row&in)&1) << uint(i)
	}
	return out | (addr &^ dimMask(m.n))
}

// ApplyBatch maps every address in addrs in place, producing exactly
// Apply's result for each element. The row masks are hoisted into a
// stack-local array and the dimension mask is derived once per batch,
// so the per-address loop carries none of Apply's per-call overhead and
// — because a local array provably cannot alias the addrs being written
// — none of the reloads the in-place stores would otherwise force. This
// is the transform hook the streaming coalescer/profiler feeds a batch
// at a time; BenchmarkApplyVsApplyBatch measures the win over looping
// Apply (~1.5× on a 30-bit matrix).
func (m Matrix) ApplyBatch(addrs []uint64) {
	var rowbuf [MaxBits]uint64
	rows := rowbuf[:copy(rowbuf[:], m.rows)]
	dm := dimMask(m.n)
	for k, addr := range addrs {
		in := addr & dm
		var out uint64
		for i, row := range rows {
			out |= uint64(bits.OnesCount64(row&in)&1) << uint(i)
		}
		addrs[k] = out | (addr &^ dm)
	}
}

// IsIdentity reports whether m maps every address to itself.
func (m Matrix) IsIdentity() bool {
	for i, r := range m.rows {
		if r != 1<<uint(i) {
			return false
		}
	}
	return true
}

// IsPermutation reports whether m merely rearranges bits: exactly one 1 in
// every row and every column.
func (m Matrix) IsPermutation() bool {
	var colSeen uint64
	for _, r := range m.rows {
		if bits.OnesCount64(r) != 1 || colSeen&r != 0 {
			return false
		}
		colSeen |= r
	}
	return true
}

// Rank computes the GF(2) rank via Gaussian elimination.
func (m Matrix) Rank() int {
	work := make([]uint64, m.n)
	copy(work, m.rows)
	rank := 0
	for col := 0; col < m.n; col++ {
		pivot := -1
		for r := rank; r < m.n; r++ {
			if work[r]&(1<<uint(col)) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work[rank], work[pivot] = work[pivot], work[rank]
		for r := 0; r < m.n; r++ {
			if r != rank && work[r]&(1<<uint(col)) != 0 {
				work[r] ^= work[rank]
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether m has full rank over GF(2), i.e. whether the
// mapping is one-to-one.
func (m Matrix) Invertible() bool { return m.Rank() == m.n }

// ErrSingular is returned by Inverse for rank-deficient matrices.
var ErrSingular = errors.New("bim: matrix is singular over GF(2)")

// Inverse returns M⁻¹ such that M⁻¹ × (M × a) = a for every address a.
func (m Matrix) Inverse() (Matrix, error) {
	work := make([]uint64, m.n)
	copy(work, m.rows)
	inv := Identity(m.n).rows
	for col := 0; col < m.n; col++ {
		pivot := -1
		for r := col; r < m.n; r++ {
			if work[r]&(1<<uint(col)) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, ErrSingular
		}
		work[col], work[pivot] = work[pivot], work[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := 0; r < m.n; r++ {
			if r != col && work[r]&(1<<uint(col)) != 0 {
				work[r] ^= work[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return Matrix{n: m.n, rows: inv}, nil
}

// Mul returns the composition m∘b, the matrix that applies b first and
// then m: (m.Mul(b)).Apply(a) == m.Apply(b.Apply(a)).
func (m Matrix) Mul(b Matrix) Matrix {
	if m.n != b.n {
		panic("bim: dimension mismatch in Mul")
	}
	rows := make([]uint64, m.n)
	for i, r := range m.rows {
		var acc uint64
		for r != 0 {
			j := bits.TrailingZeros64(r)
			acc ^= b.rows[j]
			r &= r - 1
		}
		rows[i] = acc
	}
	return Matrix{n: m.n, rows: rows}
}

// Equal reports element-wise equality.
func (m Matrix) Equal(b Matrix) bool {
	if m.n != b.n {
		return false
	}
	for i := range m.rows {
		if m.rows[i] != b.rows[i] {
			return false
		}
	}
	return true
}

// GateCost reports the hardware cost of the XOR-gate tree realizing m
// (Figure 7): the total number of 2-input XOR gates and the critical-path
// depth in gate levels. Identity rows cost nothing (plain wires).
func (m Matrix) GateCost() (xorGates, depth int) {
	for _, r := range m.rows {
		k := bits.OnesCount64(r)
		if k <= 1 {
			continue
		}
		xorGates += k - 1
		d := bits.Len(uint(k - 1)) // ceil(log2(k))
		if 1<<uint(d) < k {
			d++
		}
		if d > depth {
			depth = d
		}
	}
	return xorGates, depth
}

// String renders the matrix as rows of 0/1 with the most significant input
// bit on the left, matching the paper's figures.
func (m Matrix) String() string {
	var sb strings.Builder
	for i := m.n - 1; i >= 0; i-- {
		for j := m.n - 1; j >= 0; j-- {
			if m.rows[i]&(1<<uint(j)) != 0 {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
			if j > 0 {
				sb.WriteByte(' ')
			}
		}
		if i > 0 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// RandomConstrained generates an invertible matrix that regenerates only
// the output bits listed in outBits, each as a random XOR combination of
// the input bits in inMask; every other row stays identity. This is the
// generator behind the PAE, FAE and ALL schemes (Section IV-B).
//
// Each regenerated row always includes at least one input bit. Candidates
// are redrawn until the full matrix is invertible; random square GF(2)
// matrices are invertible with probability ≈ 0.29, so only a handful of
// retries are ever needed.
func RandomConstrained(rng *rand.Rand, n int, outBits []int, inMask uint64) Matrix {
	checkDim(n)
	if inMask == 0 {
		panic("bim: empty input mask")
	}
	if inMask&^dimMask(n) != 0 {
		panic("bim: input mask exceeds dimension")
	}
	for _, b := range outBits {
		if b < 0 || b >= n {
			panic(fmt.Sprintf("bim: output bit %d out of range", b))
		}
	}
	inBits := bitPositions(inMask)
	const maxAttempts = 10000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		m := Identity(n)
		rows := make([]uint64, n)
		copy(rows, m.rows)
		for _, ob := range outBits {
			var mask uint64
			for mask == 0 {
				for _, ib := range inBits {
					if rng.Intn(2) == 1 {
						mask |= 1 << uint(ib)
					}
				}
			}
			rows[ob] = mask
		}
		cand := Matrix{n: n, rows: rows}
		if cand.Invertible() {
			return cand
		}
	}
	panic("bim: failed to generate an invertible matrix (constraints too tight)")
}

func bitPositions(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		out = append(out, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	return out
}
