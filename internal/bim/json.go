package bim

import (
	"encoding/json"
	"fmt"
)

// wire is the serialized form of a Matrix: the dimension plus one
// hex-encoded input mask per output bit. This is the format handed to
// hardware generators (each row is the select mask of one XOR tree).
type wire struct {
	N    int      `json:"n"`
	Rows []string `json:"rows"`
}

// MarshalJSON encodes the matrix as {"n":30,"rows":["0x...", ...]}.
func (m Matrix) MarshalJSON() ([]byte, error) {
	w := wire{N: m.n, Rows: make([]string, m.n)}
	for i, r := range m.rows {
		w.Rows[i] = fmt.Sprintf("%#x", r)
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a matrix and validates dimensions and row masks;
// it does not require invertibility (callers may want to inspect a
// rejected candidate), so check Invertible separately.
func (m *Matrix) UnmarshalJSON(data []byte) error {
	var w wire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.N <= 0 || w.N > MaxBits {
		return fmt.Errorf("bim: dimension %d out of range", w.N)
	}
	if len(w.Rows) != w.N {
		return fmt.Errorf("bim: %d rows for dimension %d", len(w.Rows), w.N)
	}
	rows := make([]uint64, w.N)
	for i, s := range w.Rows {
		var v uint64
		if _, err := fmt.Sscanf(s, "%v", &v); err != nil {
			return fmt.Errorf("bim: row %d: %v", i, err)
		}
		if v&^dimMask(w.N) != 0 {
			return fmt.Errorf("bim: row %d mask %#x exceeds dimension %d", i, v, w.N)
		}
		rows[i] = v
	}
	m.n = w.N
	m.rows = rows
	return nil
}
