package bim

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	m := Identity(30)
	if !m.IsIdentity() || !m.IsPermutation() || !m.Invertible() {
		t.Fatal("identity properties violated")
	}
	for _, a := range []uint64{0, 1, 0x2AAAAAAA, 0x3FFFFFFF} {
		if got := m.Apply(a); got != a {
			t.Errorf("Apply(%#x) = %#x", a, got)
		}
	}
	if g, d := m.GateCost(); g != 0 || d != 0 {
		t.Errorf("identity gate cost = (%d,%d), want (0,0)", g, d)
	}
}

func TestHighBitsPreserved(t *testing.T) {
	m := Identity(8).SetRow(0, 0b11) // out0 = in0^in1
	addr := uint64(0xFF00) | 0b10
	got := m.Apply(addr)
	if got>>8 != 0xFF {
		t.Errorf("high bits clobbered: %#x", got)
	}
	if got&1 != 1 {
		t.Errorf("out bit0 = %d, want 1", got&1)
	}
}

// The Broad-strategy example of Figure 6d/6e: 5-bit address
// [r2 r1 r0 c b] with c_out = r2^r1^r0^c and b_out = r1^r0^b.
// Bit order: b=0, c=1, r0=2, r1=3, r2=4.
func broadExample() Matrix {
	m := Identity(5)
	m = m.SetRow(1, 1<<4|1<<3|1<<2|1<<1) // c' = r2^r1^r0^c
	m = m.SetRow(0, 1<<3|1<<2|1<<0)      // b' = r1^r0^b
	return m
}

func TestBroadExampleFigure6(t *testing.T) {
	m := broadExample()
	if !m.Invertible() {
		t.Fatal("Figure 6d matrix must be invertible")
	}
	// Paper Figure 2c-style check: input 111000 truncated to 5 bits.
	// in = r2=1 r1=1 r0=1 c=0 b=0 -> c' = 1^1^1^0 = 1, b' = 1^1^0 = 0.
	in := uint64(0b11100)
	out := m.Apply(in)
	if out != 0b11110 {
		t.Errorf("Apply(%05b) = %05b, want 11110", in, out)
	}
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		if inv.Apply(m.Apply(a)) != a {
			t.Errorf("round trip failed for %05b", a)
		}
	}
	gates, depth := m.GateCost()
	if gates != 5 { // 3 XORs for c', 2 for b'
		t.Errorf("gates = %d, want 5", gates)
	}
	if depth != 2 {
		t.Errorf("depth = %d, want 2", depth)
	}
}

func TestFigure2BIM(t *testing.T) {
	// The 6×6 BIM of Figure 2 (MSB-first rows):
	//   1 0 0 0 0 0 / 0 1 0 0 0 0 / 0 0 1 0 0 0 /
	//   0 0 0 1 0 0 / 1 0 1 0 1 0 / 1 1 1 0 0 1
	// With bit 5 = MSB. Row for out bit1 = in5^in3^in1; out bit0 = in5^in4^in3^in0.
	rows := []uint64{
		1<<5 | 1<<4 | 1<<3 | 1<<0,
		1<<5 | 1<<3 | 1<<1,
		1 << 2,
		1 << 3,
		1 << 4,
		1 << 5,
	}
	m := New(6, rows)
	if !m.Invertible() {
		t.Fatal("Figure 2 BIM must be invertible")
	}
	// Paper: address 111000 maps to 111001.
	if got := m.Apply(0b111000); got != 0b111001 {
		t.Errorf("Apply(111000) = %06b, want 111001", got)
	}
	// TB-CM0 addresses are k<<3 for k=0..7; their mapped channel bits
	// (bits 1:0) must be perfectly balanced: each channel exactly twice.
	var count [4]int
	for k := uint64(0); k < 8; k++ {
		count[m.Apply(k<<3)&3]++
	}
	for ch, c := range count {
		if c != 2 {
			t.Errorf("channel %d got %d requests, want 2 (perfect balance)", ch, c)
		}
	}
}

func TestRankAndSingular(t *testing.T) {
	m := Identity(4).SetRow(3, 1<<2) // rows 2 and 3 identical
	if m.Invertible() {
		t.Fatal("duplicate rows should be singular")
	}
	if r := m.Rank(); r != 3 {
		t.Errorf("rank = %d, want 3", r)
	}
	if _, err := m.Inverse(); err != ErrSingular {
		t.Errorf("Inverse err = %v, want ErrSingular", err)
	}
	zero := New(3, []uint64{0, 0, 0})
	if zero.Rank() != 0 {
		t.Errorf("zero matrix rank = %d", zero.Rank())
	}
}

func TestMulComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandomConstrained(rng, 12, []int{0, 1, 2, 3}, dimMask(12))
	b := RandomConstrained(rng, 12, []int{4, 5, 6}, dimMask(12))
	ab := a.Mul(b)
	for i := 0; i < 200; i++ {
		x := rng.Uint64() & dimMask(12)
		if ab.Apply(x) != a.Apply(b.Apply(x)) {
			t.Fatalf("composition mismatch at %#x", x)
		}
	}
	if !ab.Invertible() {
		t.Error("product of invertible matrices must be invertible")
	}
}

func TestIsPermutation(t *testing.T) {
	p := Identity(4)
	p = p.SetRow(0, 1<<2).SetRow(2, 1<<0)
	if !p.IsPermutation() || !p.Invertible() {
		t.Error("bit swap should be a permutation and invertible")
	}
	np := Identity(4).SetRow(0, 0b11)
	if np.IsPermutation() {
		t.Error("two-input row is not a permutation")
	}
	dup := New(2, []uint64{1, 1})
	if dup.IsPermutation() {
		t.Error("duplicated column is not a permutation")
	}
}

func TestRandomConstrainedRespectsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 30
	outBits := []int{8, 9, 10, 11, 12, 13}
	inMask := uint64(0x3FFC3F00) // row 29..18 | bank 13..10 | ch 9..8
	for trial := 0; trial < 25; trial++ {
		m := RandomConstrained(rng, n, outBits, inMask)
		if !m.Invertible() {
			t.Fatal("generated matrix not invertible")
		}
		out := map[int]bool{}
		for _, b := range outBits {
			out[b] = true
		}
		for i := 0; i < n; i++ {
			if out[i] {
				if m.Row(i) == 0 {
					t.Errorf("row %d empty", i)
				}
				if m.Row(i)&^inMask != 0 {
					t.Errorf("row %d draws from outside input mask: %#x", i, m.Row(i))
				}
			} else if m.Row(i) != 1<<uint(i) {
				t.Errorf("row %d should stay identity, got %#x", i, m.Row(i))
			}
		}
	}
}

func TestRandomConstrainedDeterministic(t *testing.T) {
	a := RandomConstrained(rand.New(rand.NewSource(5)), 30, []int{8, 9}, dimMask(30)&^0x3F)
	b := RandomConstrained(rand.New(rand.NewSource(5)), 30, []int{8, 9}, dimMask(30)&^0x3F)
	if !a.Equal(b) {
		t.Error("same seed must give same matrix")
	}
	c := RandomConstrained(rand.New(rand.NewSource(6)), 30, []int{8, 9}, dimMask(30)&^0x3F)
	if a.Equal(c) {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

// Property: every generated constrained matrix is a bijection on sampled
// addresses (inverse round-trips), for arbitrary seeds.
func TestInverseRoundTripProperty(t *testing.T) {
	f := func(seed int64, samples []uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RandomConstrained(rng, 30, []int{8, 9, 10, 11, 12, 13}, dimMask(30)&^uint64(0x3F))
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		for _, s := range samples {
			a := uint64(s) & dimMask(30)
			if inv.Apply(m.Apply(a)) != a || m.Apply(inv.Apply(a)) != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Apply is linear over GF(2): M(a^b) = M(a)^M(b) within dimension.
func TestApplyLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := RandomConstrained(rng, 30, []int{8, 9, 10, 11}, dimMask(30))
	f := func(a, b uint32) bool {
		x := uint64(a) & dimMask(30)
		y := uint64(b) & dimMask(30)
		return m.Apply(x^y) == m.Apply(x)^m.Apply(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: invertible mapping applied to all 2^10 addresses of a small
// matrix is a permutation (no collisions).
func TestBijectionExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := RandomConstrained(rng, 10, []int{2, 3, 4, 5}, dimMask(10))
	seen := make(map[uint64]bool, 1024)
	for a := uint64(0); a < 1024; a++ {
		o := m.Apply(a)
		if seen[o] {
			t.Fatalf("collision at output %#x", o)
		}
		seen[o] = true
	}
	if len(seen) != 1024 {
		t.Fatalf("only %d distinct outputs", len(seen))
	}
}

func TestString(t *testing.T) {
	m := Identity(3)
	want := "1 0 0\n0 1 0\n0 0 1"
	if got := m.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, nil) },
		func() { New(65, make([]uint64, 65)) },
		func() { New(3, []uint64{1, 2}) },
		func() { New(3, []uint64{1, 2, 8}) }, // bit 3 out of a 3-bit matrix
		func() { Identity(4).SetRow(0, 1<<4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGateCostDepth(t *testing.T) {
	// 4-input XOR: 3 gates, depth 2. 5-input: 4 gates, depth 3.
	m4 := Identity(8).SetRow(0, 0b1111)
	if g, d := m4.GateCost(); g != 3 || d != 2 {
		t.Errorf("4-input cost = (%d,%d), want (3,2)", g, d)
	}
	m5 := Identity(8).SetRow(0, 0b11111)
	if g, d := m5.GateCost(); g != 4 || d != 3 {
		t.Errorf("5-input cost = (%d,%d), want (4,3)", g, d)
	}
}

func BenchmarkApply30(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := RandomConstrained(rng, 30, []int{8, 9, 10, 11, 12, 13}, dimMask(30)&^uint64(0x3F))
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= m.Apply(uint64(i) & dimMask(30))
	}
	_ = sink
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := RandomConstrained(rng, 30, []int{8, 9, 10, 11, 12, 13}, dimMask(30)&^uint64(0x3F))
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("JSON round trip changed the matrix")
	}
	if !back.Invertible() {
		t.Error("decoded matrix lost invertibility")
	}
}

func TestJSONValidation(t *testing.T) {
	bad := []string{
		`{"n":0,"rows":[]}`,
		`{"n":3,"rows":["0x1","0x2"]}`,
		`{"n":3,"rows":["0x1","0x2","0x8"]}`, // bit 3 out of range
		`{"n":70,"rows":[]}`,
		`{"n":2,"rows":["zz","0x1"]}`,
	}
	for _, s := range bad {
		var m Matrix
		if err := json.Unmarshal([]byte(s), &m); err == nil {
			t.Errorf("accepted %s", s)
		}
	}
	var m Matrix
	if err := json.Unmarshal([]byte(`{"n":2,"rows":["0x2","0x1"]}`), &m); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if m.Apply(0b01) != 0b10 {
		t.Error("decoded swap matrix misbehaves")
	}
}
