package bim

import (
	"math/rand"
	"testing"
)

// TestApplyBatchMatchesApply: ApplyBatch must be element-wise identical
// to Apply for random invertible matrices, including bits above the
// matrix dimension.
func TestApplyBatchMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 8, 30, 64} {
		outBits := make([]int, n/2)
		for i := range outBits {
			outBits[i] = i * 2 % n
		}
		m := RandomConstrained(rng, n, outBits, dimMask(n))
		addrs := make([]uint64, 257)
		want := make([]uint64, len(addrs))
		for i := range addrs {
			addrs[i] = rng.Uint64()
			want[i] = m.Apply(addrs[i])
		}
		m.ApplyBatch(addrs)
		for i := range addrs {
			if addrs[i] != want[i] {
				t.Fatalf("n=%d: ApplyBatch[%d] = %#x, Apply = %#x", n, i, addrs[i], want[i])
			}
		}
	}
	// Empty batches are a no-op.
	Identity(8).ApplyBatch(nil)
}

// BenchmarkApplyVsApplyBatch is the satellite microbenchmark: the
// per-call overhead removed by hoisting the row masks out of the
// per-address loop, measured on the 30-bit Hynix-sized matrix the
// profiling hot path uses. Both variants do the transform hook's real
// job — map a batch and keep the results — so the baseline loops Apply
// with the same store-back ApplyBatch performs.
func BenchmarkApplyVsApplyBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := RandomConstrained(rng, 30, []int{8, 9, 10, 11, 12, 13}, dimMask(30))
	const batch = 4096
	addrs := make([]uint64, batch)
	for i := range addrs {
		addrs[i] = rng.Uint64() & dimMask(30)
	}

	b.Run("looped-Apply", func(b *testing.B) {
		b.SetBytes(batch * 8)
		for i := 0; i < b.N; i++ {
			for k, a := range addrs {
				addrs[k] = m.Apply(a)
			}
		}
	})
	b.Run("ApplyBatch", func(b *testing.B) {
		b.SetBytes(batch * 8)
		for i := 0; i < b.N; i++ {
			m.ApplyBatch(addrs)
		}
	})
}
