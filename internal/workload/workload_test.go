package workload

import (
	"testing"

	"valleymap/internal/entropy"
	"valleymap/internal/layout"
	"valleymap/internal/trace"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog has %d benchmarks, want 16", len(cat))
	}
	wantOrder := []string{"MT", "LU", "GS", "NW", "LPS", "SC", "SRAD2", "DWT2D", "HS", "SP",
		"FWT", "NN", "SPMV", "LM", "MUM", "BFS"}
	for i, s := range cat {
		if s.Abbr != wantOrder[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, s.Abbr, wantOrder[i])
		}
	}
	if len(StandaloneKernels()) != 2 {
		t.Fatalf("standalone kernels = %d, want 2", len(StandaloneKernels()))
	}
	if len(All()) != 18 {
		t.Fatalf("All() = %d, want 18 (Figure 5)", len(All()))
	}
	if len(ValleySet()) != 10 {
		t.Errorf("valley set = %d, want 10", len(ValleySet()))
	}
	if len(NonValleySet()) != 6 {
		t.Errorf("non-valley set = %d, want 6", len(NonValleySet()))
	}
}

func TestByAbbr(t *testing.T) {
	if s, ok := ByAbbr("MT"); !ok || s.Name != "Transpose" {
		t.Errorf("ByAbbr(MT) = %+v, %v", s, ok)
	}
	if s, ok := ByAbbr("DWT2DK1"); !ok || !s.Valley {
		t.Errorf("ByAbbr(DWT2DK1) = %+v, %v", s, ok)
	}
	if _, ok := ByAbbr("NOPE"); ok {
		t.Error("unknown abbr should fail")
	}
}

func TestAllTracesValid(t *testing.T) {
	for _, spec := range All() {
		for _, sc := range []Scale{Tiny, Small, Full} {
			app := spec.Build(sc)
			if err := app.Validate(30); err != nil {
				t.Errorf("%s@%v: %v", spec.Abbr, sc, err)
			}
			if app.Abbr != spec.Abbr {
				t.Errorf("abbr mismatch: %s vs %s", app.Abbr, spec.Abbr)
			}
			if app.Requests() == 0 {
				t.Errorf("%s@%v: empty trace", spec.Abbr, sc)
			}
			if app.InsnPerAccess <= 1 {
				t.Errorf("%s: InsnPerAccess = %v", spec.Abbr, app.InsnPerAccess)
			}
		}
	}
}

func TestScaleMonotone(t *testing.T) {
	for _, spec := range Catalog() {
		tiny := spec.Build(Tiny).Requests()
		small := spec.Build(Small).Requests()
		full := spec.Build(Full).Requests()
		if !(tiny <= small && small <= full) {
			t.Errorf("%s: requests not monotone across scales: %d, %d, %d", spec.Abbr, tiny, small, full)
		}
	}
}

func TestTracesDeterministic(t *testing.T) {
	for _, abbr := range []string{"MT", "SPMV", "MUM", "BFS"} {
		spec, _ := ByAbbr(abbr)
		a := spec.Build(Tiny)
		b := spec.Build(Tiny)
		if a.Requests() != b.Requests() {
			t.Fatalf("%s: nondeterministic request count", abbr)
		}
		for ki := range a.Kernels {
			for ti := range a.Kernels[ki].TBs {
				ra, rb := a.Kernels[ki].TBs[ti].Requests, b.Kernels[ki].TBs[ti].Requests
				for i := range ra {
					if ra[i] != rb[i] {
						t.Fatalf("%s: request %d of kernel %d TB %d differs", abbr, i, ki, ti)
					}
				}
			}
		}
	}
}

func TestEnoughTBsForWindow(t *testing.T) {
	// Every kernel must have at least window-size TBs so Equation 2 has
	// at least one full window at w = 12 SMs.
	for _, spec := range All() {
		app := spec.Build(Tiny)
		for _, k := range app.Kernels {
			if len(k.TBs) < 12 {
				t.Errorf("%s kernel %s has %d TBs (< 12)", spec.Abbr, k.Name, len(k.TBs))
			}
		}
	}
}

// profile computes the entropy distribution of a workload the way the
// paper does: on coalesced 128 B transactions with window = 12 SMs.
func profile(app *trace.App) entropy.Profile {
	return entropy.AppProfile(trace.CoalesceApp(app, 128), 12, 30, nil)
}

// TestValleyClassification is the central fidelity check for Figure 5:
// with the Hynix layout and window 12, the paper's valley benchmarks must
// show an entropy valley over the channel/bank bits, and the non-valley
// benchmarks must not have dead channel bits.
func TestValleyClassification(t *testing.T) {
	l := layout.HynixGDDR5()
	chBank := layout.Bits0(l.MaskOf(layout.Channel, layout.Bank))
	for _, spec := range Catalog() {
		app := spec.Build(Small)
		prof := profile(app)
		minCB := prof.Min(chBank)
		meanCB := prof.Mean(chBank)
		chBits := l.FieldBits(layout.Channel)
		bankBits := l.FieldBits(layout.Bank)
		got := prof.ChannelBankValley(chBits, bankBits, 0.35, 0.6)
		if got != spec.Valley {
			t.Errorf("%s: valley classification = %v, want %v (min=%.2f mean=%.2f profile=%.2v)",
				spec.Abbr, got, spec.Valley, minCB, meanCB, prof.PerBit[6:20])
		}
		if !spec.Valley {
			// Non-valley: channel bits must also carry real entropy.
			if prof.Mean(chBits) < 0.5 {
				t.Errorf("%s (non-valley) has weak channel-bit entropy %.2f", spec.Abbr, prof.Mean(chBits))
			}
		}
	}
}

// TestHighOrderEntropyExists verifies the other half of the paper's claim:
// valley benchmarks do have high-entropy bits elsewhere in the address
// (that is what PAE/FAE harvest).
func TestHighOrderEntropyExists(t *testing.T) {
	for _, spec := range ValleySet() {
		prof := profile(spec.Build(Small))
		max := 0.0
		for b := 6; b < 30; b++ {
			if prof.PerBit[b] > max {
				max = prof.PerBit[b]
			}
		}
		if max < 0.7 {
			t.Errorf("%s: no high-entropy bits anywhere (max=%.2f); nothing to harvest", spec.Abbr, max)
		}
	}
}

// TestKernelVsAppProfiles reproduces the DWT2D observation (Figures 5i/5j):
// the standalone kernel has a narrower valley than the whole application.
func TestKernelVsAppProfiles(t *testing.T) {
	appSpec, _ := ByAbbr("DWT2D")
	kSpec, _ := ByAbbr("DWT2DK1")
	app := profile(appSpec.Build(Small))
	k1 := profile(kSpec.Build(Small))
	countLow := func(p entropy.Profile) int {
		n := 0
		for b := 6; b < 18; b++ {
			if p.PerBit[b] < 0.35 {
				n++
			}
		}
		return n
	}
	if countLow(k1) == 0 {
		t.Error("DWT2DK1 should have a (narrow) valley")
	}
	if countLow(app) < countLow(k1) {
		t.Errorf("DWT2D app valley (%d low bits) should be at least as broad as kernel 1's (%d)",
			countLow(app), countLow(k1))
	}
}

func TestWriteMix(t *testing.T) {
	// Every benchmark needs some writes for the write-power component,
	// except pure-read pointer chasers.
	for _, spec := range Catalog() {
		if spec.Abbr == "MUM" {
			continue
		}
		app := spec.Build(Tiny)
		writes := 0
		for _, k := range app.Kernels {
			for _, tb := range k.TBs {
				for _, r := range tb.Requests {
					if r.Kind == trace.Write {
						writes++
					}
				}
			}
		}
		if writes == 0 {
			t.Errorf("%s has no writes", spec.Abbr)
		}
	}
}

func TestPaperMetadata(t *testing.T) {
	for _, s := range Catalog() {
		if s.PaperAPKI <= 0 || s.PaperMPKI < 0 || s.PaperKernels <= 0 {
			t.Errorf("%s missing Table II metadata: %+v", s.Abbr, s)
		}
		if s.PaperMPKI > s.PaperAPKI {
			t.Errorf("%s: MPKI %v > APKI %v", s.Abbr, s.PaperMPKI, s.PaperAPKI)
		}
	}
}

func TestRequestBudget(t *testing.T) {
	// Keep simulation tractable: full-scale traces stay under 300k
	// requests, tiny under 40k.
	for _, spec := range All() {
		if n := spec.Build(Full).Requests(); n > 300000 {
			t.Errorf("%s@full: %d requests (too many)", spec.Abbr, n)
		}
		if n := spec.Build(Tiny).Requests(); n > 40000 {
			t.Errorf("%s@tiny: %d requests (too many)", spec.Abbr, n)
		}
	}
}
