// Package workload synthesizes the memory-request traces of the 16
// GPU-compute benchmarks and 2 standalone kernels of Table II.
//
// The paper runs CUDA binaries (CUDA SDK, Rodinia, Parboil) under
// GPGPU-sim; we cannot. What the paper's results depend on is each
// benchmark's *address structure* — where the entropy valleys sit
// (Figure 5) — and its memory intensity. Each generator below therefore
// reproduces the documented access pattern of its benchmark (row-major
// streams, column-major strides, wavefronts, stencils, butterflies,
// irregular gathers) at a scaled-down footprint, with the paper's grouping
// preserved: the ten valley benchmarks (MT LU GS NW LPS SC SRAD2 DWT2D HS
// SP) exhibit entropy valleys overlapping the channel/bank bits of the
// Hynix map, and the six non-valley benchmarks (FWT NN SPMV LM MUM BFS)
// concentrate entropy in the low-order bits or spread it everywhere.
//
// Generators emit per-thread requests into a trace.Source, one TB at a
// time (Spec.Source); Spec.Build drains that stream into a materialized
// *trace.App for consumers that need random access. Analysis and
// simulation coalesce requests into 128 B transactions
// (trace.CoalesceStream / trace.CoalesceApp). Thread counts are
// deliberately "ragged" per TB — real kernels have boundary tiles and
// predicated-off threads — which is what gives intra-TB-varying bits
// distinct BVR values across TBs (Section III's intra-TB entropy).
package workload

import (
	"fmt"
	"io"
	"math/rand"

	"valleymap/internal/trace"
)

// Scale selects the trace size. Entropy structure is scale-invariant;
// only TB counts and request totals change.
type Scale int

const (
	// Tiny is for unit tests: a few thousand requests per app.
	Tiny Scale = iota
	// Small is for benchmarks and quick experiments.
	Small
	// Full is the default for the experiment harness.
	Full
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "full"
	}
}

// tbs scales a full-scale TB count down for smaller scales, keeping at
// least minTBs so that 12-TB entropy windows stay meaningful.
func (s Scale) tbs(full int) int {
	const minTBs = 14
	n := full
	switch s {
	case Tiny:
		n = full / 6
	case Small:
		n = full / 2
	}
	if n < minTBs {
		n = minTBs
	}
	return n
}

// kernels scales a kernel count down (at least 1).
func (s Scale) kernels(full int) int {
	n := full
	switch s {
	case Tiny:
		n = full / 4
	case Small:
		n = full / 2
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Spec describes one workload of the study.
type Spec struct {
	Abbr   string
	Name   string
	Suite  string
	Valley bool // top group of Table II (entropy-valley behavior)
	// PaperAPKI/PaperMPKI are Table II's reported LLC accesses/misses
	// per kilo-instruction, kept for reporting alongside measured values.
	PaperAPKI, PaperMPKI float64
	// PaperKernels is Table II's kernel-launch count at full app size.
	PaperKernels int
	// Source streams the trace TB by TB: the generator's native form.
	// Every Stream call re-runs the (deterministic) emitters, so a
	// Source pass holds one TB in memory at a time, not the trace.
	Source func(Scale) trace.Source
	// Build materializes the whole trace — a thin adapter draining
	// Source, kept for consumers that need random access (the
	// simulator); one-pass consumers (profiling) should stream.
	Build func(Scale) *trace.App
}

// appGen is the lazy form of a workload trace: kernel descriptors whose
// per-TB emitters run on demand. Builders construct appGens; Spec.Source
// streams them and Spec.Build drains that stream into an *App.
type appGen struct {
	Name          string
	Abbr          string
	Valley        bool
	InsnPerAccess float64
	Kernels       []kernelGen
}

// kernelGen describes one kernel launch without running its emitters.
type kernelGen struct {
	name         string
	numTBs       int
	threadsPerTB int
	gapCycles    int
	emit         func(e *reqEmitter, tb int)
}

func (k *kernelGen) info() trace.KernelInfo {
	return trace.KernelInfo{
		Name:             k.name,
		WarpsPerTB:       (k.threadsPerTB + 31) / 32,
		ComputeGapCycles: k.gapCycles,
	}
}

func (g *appGen) source() trace.Source { return genSource{g: g} }

type genSource struct{ g *appGen }

func (s genSource) Info() trace.SourceInfo {
	return trace.SourceInfo{Name: s.g.Name, Abbr: s.g.Abbr, Valley: s.g.Valley, InsnPerAccess: s.g.InsnPerAccess}
}

func (s genSource) Stream() trace.Stream { return &genStream{g: s.g} }

// genStream emits one kernel header batch per kernel and one batch per
// TB, regenerating requests into a reused buffer — O(TB) memory per
// pass regardless of trace size.
type genStream struct {
	g       *appGen
	ki, tb  int
	started bool
	hdr     trace.KernelInfo
	batch   trace.Batch
	em      reqEmitter
}

func (s *genStream) Next() (*trace.Batch, error) {
	for s.ki < len(s.g.Kernels) {
		kg := &s.g.Kernels[s.ki]
		if !s.started {
			s.started = true
			s.hdr = kg.info()
			s.batch = trace.Batch{Kernel: &s.hdr, KernelIndex: s.ki, TBID: -1}
			return &s.batch, nil
		}
		if s.tb >= kg.numTBs {
			s.ki++
			s.tb = 0
			s.started = false
			continue
		}
		s.em.reqs = s.em.reqs[:0]
		kg.emit(&s.em, s.tb)
		s.batch = trace.Batch{KernelIndex: s.ki, TBID: s.tb, TBStart: true, Requests: s.em.reqs}
		s.tb++
		return &s.batch, nil
	}
	return nil, io.EOF
}

// reqEmitter collects requests for one TB.
type reqEmitter struct {
	reqs []trace.Request
}

func (e *reqEmitter) add(addr uint64, kind trace.Kind, warp int32) {
	e.reqs = append(e.reqs, trace.Request{Addr: addr & ((1 << 30) - 1), Kind: kind, Warp: warp})
}

// ragged returns the effective thread count of a TB: nominal threads minus
// a TB-dependent shortfall modeling boundary tiles and predication. The
// shortfall both changes the number of coalesced lines (so line-offset
// bits get distinct BVRs across TBs) and makes intra-TB bit ratios differ
// slightly between TBs.
func ragged(threads, tb int) int {
	n := threads - (tb%3)*threads/4 - tb%5
	if n < 1 {
		n = 1
	}
	return n
}

// stridedTB emits one request per (effective) thread per iteration:
//
//	addr = base + tb*tbStride + thread*thrStride + iter*iterStride
//
// This is the workhorse for regular dense kernels.
func stridedTB(e *reqEmitter, base uint64, tb int, tbStride, thrStride, iterStride int64, threads, iters int, kind trace.Kind) {
	n := ragged(threads, tb)
	for it := 0; it < iters; it++ {
		for t := 0; t < n; t++ {
			a := int64(base) + int64(tb)*tbStride + int64(t)*thrStride + int64(it)*iterStride
			e.add(uint64(a), kind, int32(t/32))
		}
	}
}

// panelTB emits the column-major panel pattern of transpose-style kernels:
// the TB covers `threads` matrix rows of one 128 B line-column (stride
// rowStride between rows), iterating over cols consecutive 4 B elements.
// The grid advances through rbCount row-blocks quickly and line-columns
// slowly, so within a scheduling window the line-column bits (7 and up,
// through the channel/bank field) are pinned — the entropy valley — while
// row bits vary both intra-TB (thread index) and inter-TB (row block).
// Concurrent TBs in adjacent line-columns touch the same DRAM rows, which
// is where the row-buffer locality that FAE destroys comes from.
func panelTB(e *reqEmitter, base uint64, tb int, rowStride int64, threads, cols, rbCount int, kind trace.Kind) {
	lineCol := int64(tb / rbCount)
	rowBlock := int64(tb % rbCount)
	b := int64(base) + lineCol*128 + rowBlock*int64(threads)*rowStride
	n := ragged(threads, tb)
	for c := 0; c < cols; c++ {
		for t := 0; t < n; t++ {
			e.add(uint64(b+int64(c)*4+int64(t)*rowStride), kind, int32(t/32))
		}
	}
}

// gatherTB emits irregular accesses: each thread performs iters gathers at
// uniformly random block-aligned offsets inside a region.
func gatherTB(e *reqEmitter, rng *rand.Rand, base uint64, region int64, threads, iters int, kind trace.Kind) {
	for it := 0; it < iters; it++ {
		for t := 0; t < threads; t++ {
			off := rng.Int63n(region) &^ 63
			e.add(base+uint64(off), kind, int32(t/32))
		}
	}
}

// kernel wraps a per-TB emitter function as a lazy kernel descriptor;
// its requests are only generated when a Source pass (or a Build drain)
// reaches the kernel.
func kernel(name string, numTBs, threadsPerTB, gapCycles int, emit func(e *reqEmitter, tb int)) kernelGen {
	return kernelGen{name: name, numTBs: numTBs, threadsPerTB: threadsPerTB, gapCycles: gapCycles, emit: emit}
}

// Base addresses place each array in a distinct 16 MB arena so that row
// bits differ across arrays; the 30-bit space holds 64 arenas.
func arena(i int) uint64 { return uint64(i) << 24 }

// ---------------------------------------------------------------------
// Valley benchmarks (Table II, top group)
// ---------------------------------------------------------------------

// buildMT models CUDA SDK Transpose on a 4096×4096 float matrix (16 KB
// rows): row-major passes stream lines, column-major passes stride one
// row per thread. Column walks advance 4 B per TB, so bits 8–13 are
// controlled only by the slowly-drifting column index — the classic
// entropy valley over the channel (8–9) and bank (10–13) bits
// (Figures 5a, 10).
func buildMT(s Scale) *appGen {
	const rowBytes = 16384 // 4096 floats per matrix row
	app := &appGen{Name: "Transpose", Abbr: "MT", Valley: true, InsnPerAccess: 26}
	app.Kernels = append(app.Kernels,
		kernel("read_rowmajor", s.tbs(48), 128, 220, func(e *reqEmitter, tb int) {
			stridedTB(e, arena(1), tb, 128*4, 4, 0, 128, 1, trace.Read)
		}),
		kernel("write_colmajor", s.tbs(96), 128, 220, func(e *reqEmitter, tb int) {
			panelTB(e, arena(2), tb, rowBytes, 128, 4, 12, trace.Write)
		}),
		kernel("read_colmajor", s.tbs(96), 128, 220, func(e *reqEmitter, tb int) {
			panelTB(e, arena(3), tb, rowBytes, 128, 4, 12, trace.Read)
		}),
		kernel("write_rowmajor", s.tbs(48), 128, 220, func(e *reqEmitter, tb int) {
			stridedTB(e, arena(4), tb, 128*4, 4, 0, 128, 1, trace.Write)
		}),
	)
	return app
}

// buildLU models Rodinia LU Decomposition: per-step kernels sweep the
// columns of a shrinking trailing submatrix of a 2048×2048 matrix (8 KB
// rows). Thread-level stride is one row (bits 13+), the column index
// drifts 4 B per TB, so bits 8–12 form a deep valley that moves with the
// diagonal as the factorization proceeds.
func buildLU(s Scale) *appGen {
	const rowBytes = 8192
	threads := 128
	app := &appGen{Name: "LU Decomposition", Abbr: "LU", Valley: true, InsnPerAccess: 22}
	nk := s.kernels(16)
	for j := 0; j < nk; j++ {
		j := j
		cols := s.tbs(56 - 2*j)
		diag := uint64(j) * (rowBytes + 4) * 2
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("step%d_col", j), cols, threads, 200, func(e *reqEmitter, tb int) {
				panelTB(e, arena(5)+diag, tb, rowBytes, threads, 2, 12, trace.Read)
				panelTB(e, arena(6)+diag, tb, rowBytes, threads/2, 2, 12, trace.Write)
			}),
		)
	}
	return app
}

// buildGS models Rodinia Gaussian elimination on a small 256 KB matrix
// (256 rows of 1 KB) that fits the 512 KB LLC: column-strided sweeps with
// heavy reuse across the many Fan1/Fan2 kernel launches, which is why
// Table II reports APKI 9.09 but MPKI 0.01. Thread stride is one 1 KB row
// (bits 10+), so the valley covers only channel bits 8–9.
func buildGS(s Scale) *appGen {
	const rowBytes = 1024
	threads := 64
	app := &appGen{Name: "Gaussian", Abbr: "GS", Valley: true, InsnPerAccess: 30}
	nk := s.kernels(12)
	for j := 0; j < nk; j++ {
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("fan%d", j), s.tbs(36), threads, 150, func(e *reqEmitter, tb int) {
				stridedTB(e, arena(7), tb, 4, rowBytes, 0, threads, 2, trace.Read)
				stridedTB(e, arena(7), tb, 4, rowBytes, 0, threads/2, 1, trace.Write)
			}),
		)
	}
	return app
}

// buildNW models Rodinia Needleman-Wunsch: anti-diagonal wavefronts over a
// 1024×1024 score matrix. Threads step one row plus one element
// (stride 4100 B), putting entropy at bits 2–7 and 12+, while the TB base
// drifts 16 B per TB — bits 8–11 stay pinned (Figure 5d's deep valley).
func buildNW(s Scale) *appGen {
	const diagStride = 4096 + 4
	threads := 64
	app := &appGen{Name: "Needle", Abbr: "NW", Valley: true, InsnPerAccess: 40}
	nk := s.kernels(12)
	for j := 0; j < nk; j++ {
		j := j
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("diag%d", j), s.tbs(28), threads, 260, func(e *reqEmitter, tb int) {
				base := arena(9) + uint64(j)*1<<18
				stridedTB(e, base, tb, 16, diagStride, 0, threads, 1, trace.Read)
				stridedTB(e, base+4, tb, 16, diagStride, 0, threads, 1, trace.Write)
			}),
		)
	}
	return app
}

// buildLPS models the Laplace 3D solver: x-lines of 64 threads (256 B,
// bits 2–7) with y/z neighbor offsets at 1 KB and 256 KB; TBs advance four
// rows (4 KB). Channel bits 8–9 never vary — the deep valley of
// Figure 5e.
func buildLPS(s Scale) *appGen {
	const yStride = 1024      // 256 floats per x-row
	const zStride = 256 << 10 // one plane
	threads := 64
	app := &appGen{Name: "Laplace", Abbr: "LPS", Valley: true, InsnPerAccess: 55}
	emit := func(e *reqEmitter, tb int) {
		base := arena(11) + 1<<21 + uint64(tb)*yStride*4
		n := ragged(threads, tb)
		// Center read, four neighbors, one write.
		for _, off := range []int64{0, yStride, -yStride, zStride, -zStride} {
			for t := 0; t < n; t++ {
				e.add(uint64(int64(base)+off+int64(t)*4), trace.Read, int32(t/32))
			}
		}
		for t := 0; t < n; t++ {
			e.add(base+1<<22+uint64(t)*4, trace.Write, int32(t/32))
		}
	}
	app.Kernels = append(app.Kernels,
		kernel("jacobi_even", s.tbs(60), threads, 320, emit),
		kernel("jacobi_odd", s.tbs(60), threads, 320, emit),
	)
	return app
}

// buildSC models Rodinia StreamCluster: structure-of-arrays point data.
// Each TB owns an 8 KB chunk of points (bits 13+) and walks 6 dimension
// planes 2 MB apart; threads cover 256 B. Bits 8–12 never vary.
func buildSC(s Scale) *appGen {
	threads := 64
	app := &appGen{Name: "StreamCluster", Abbr: "SC", Valley: true, InsnPerAccess: 34}
	nk := s.kernels(8)
	for j := 0; j < nk; j++ {
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("pgain%d", j), s.tbs(32), threads, 240, func(e *reqEmitter, tb int) {
				stridedTB(e, arena(13), tb, 8192, 4, 2<<20, threads, 6, trace.Read)
				stridedTB(e, arena(14), tb, 8192, 4, 0, threads/2, 1, trace.Write)
			}),
		)
	}
	return app
}

// buildSRAD2 models Rodinia SRAD v2: a column-strided gradient kernel over
// a 2048×2048 image (8 KB rows) followed by a row-per-TB update kernel,
// twice. The standalone SRAD2K1 kernel (Figure 5h) is the gradient kernel
// alone; its profile resembles the application's, as the paper notes.
func buildSRAD2(s Scale) *appGen {
	app := &appGen{Name: "Srad v2", Abbr: "SRAD2", Valley: true, InsnPerAccess: 48}
	for iter := 0; iter < 2; iter++ {
		app.Kernels = append(app.Kernels, srad2GradientKernel(s, iter), srad2UpdateKernel(s, iter))
	}
	return app
}

func srad2GradientKernel(s Scale, iter int) kernelGen {
	const rowBytes = 8192
	threads := 128
	return kernel(fmt.Sprintf("srad_grad%d", iter), s.tbs(64), threads, 280, func(e *reqEmitter, tb int) {
		panelTB(e, arena(16), tb, rowBytes, threads, 2, 12, trace.Read)
		panelTB(e, arena(17), tb, rowBytes, threads/2, 2, 12, trace.Write)
	})
}

func srad2UpdateKernel(s Scale, iter int) kernelGen {
	const rowBytes = 16384
	threads := 128
	return kernel(fmt.Sprintf("srad_update%d", iter), s.tbs(48), threads, 280, func(e *reqEmitter, tb int) {
		stridedTB(e, arena(18), tb, rowBytes, 4, 0, threads, 1, trace.Read)
		stridedTB(e, arena(19), tb, rowBytes, 4, 0, threads, 1, trace.Write)
	})
}

// SRAD2K1 is the standalone gradient kernel of Figure 5h.
func buildSRAD2K1(s Scale) *appGen {
	return &appGen{
		Name: "Srad v2 kernel 1", Abbr: "SRAD2K1", Valley: true, InsnPerAccess: 48,
		Kernels: []kernelGen{srad2GradientKernel(s, 0)},
	}
}

// buildDWT2D models Rodinia DWT2D: alternating vertical (row-strided) and
// horizontal (row-per-TB contiguous) wavelet passes. Each level works on
// rows subsampled 2:1, so the vertical stride doubles per level — 4 KB,
// 8 KB, 16 KB, 32 KB — placing a different narrow valley per kernel and a
// broader valley in the aggregate (Figures 5i/5j).
func buildDWT2D(s Scale) *appGen {
	app := &appGen{Name: "DWT2D", Abbr: "DWT2D", Valley: true, InsnPerAccess: 38}
	nk := s.kernels(10)
	for j := 0; j < nk; j++ {
		level := j / 2 % 4
		if j%2 == 0 {
			app.Kernels = append(app.Kernels, dwt2dVerticalKernel(s, j, level))
		} else {
			threads := 64
			app.Kernels = append(app.Kernels,
				kernel(fmt.Sprintf("dwt_h%d", j), s.tbs(32), threads, 240, func(e *reqEmitter, tb int) {
					stridedTB(e, arena(21), tb, 16384, 4, 0, threads, 1, trace.Read)
					stridedTB(e, arena(22), tb, 16384, 4, 0, threads, 1, trace.Write)
				}),
			)
		}
	}
	return app
}

func dwt2dVerticalKernel(s Scale, j, level int) kernelGen {
	// Each wavelet level works on rows subsampled 2:1, doubling the
	// effective row stride and widening the aggregate valley.
	stride := int64(4096 << uint(level))
	threads := 128
	return kernel(fmt.Sprintf("dwt_v%d", j), s.tbs(32), threads, 240, func(e *reqEmitter, tb int) {
		panelTB(e, arena(20), tb, stride, threads, 2, 12, trace.Read)
		panelTB(e, arena(20)+uint64(stride)/2, tb, stride, threads, 2, 12, trace.Write)
	})
}

// DWT2DK1 is the standalone level-0 vertical pass of Figure 5j.
func buildDWT2DK1(s Scale) *appGen {
	return &appGen{
		Name: "DWT2D kernel 1", Abbr: "DWT2DK1", Valley: true, InsnPerAccess: 38,
		Kernels: []kernelGen{dwt2dVerticalKernel(s, 0, 0)},
	}
}

// buildHS models Rodinia Hotspot: a tiled 2D stencil over a 512×512 grid
// (2 KB rows). Tiles advance down columns (32 KB per TB), so bits 8–10
// and 12–14 are pinned by the slow tile-column index; the tiny 0.08 MPKI
// comes from high L1/LLC reuse of the stencil neighbors.
func buildHS(s Scale) *appGen {
	const rowBytes = 2048
	threads := 64
	app := &appGen{Name: "Hotspot", Abbr: "HS", Valley: true, InsnPerAccess: 120}
	app.Kernels = append(app.Kernels,
		kernel("hotspot", s.tbs(96), threads, 520, func(e *reqEmitter, tb int) {
			// The 4096+256 margin keeps the -rowBytes/-4 neighbors from
			// borrowing through the channel/bank bits.
			base := arena(24) + 1<<20 + 4096 + 256 + uint64(tb)*16*rowBytes
			n := ragged(threads, tb)
			for _, off := range []int64{0, rowBytes, -rowBytes, 4, -4} {
				for t := 0; t < n; t++ {
					e.add(uint64(int64(base)+off+int64(t)*4), trace.Read, int32(t/32))
				}
			}
			for t := 0; t < n; t++ {
				e.add(base+1<<21+uint64(t)*4, trace.Write, int32(t/32))
			}
		}),
	)
	return app
}

// buildSP models CUDA SDK Scalar Product: each TB reduces a 64 KB-aligned
// slice of two vectors with a 32 KB grid-stride loop; thread bits cover
// 2–6 and slice bits 16+, leaving bits 7–14 dead — a wide valley with
// almost no locality (APKI ≈ MPKI in Table II).
func buildSP(s Scale) *appGen {
	threads := 32
	app := &appGen{Name: "Scalar Product", Abbr: "SP", Valley: true, InsnPerAccess: 28}
	app.Kernels = append(app.Kernels,
		kernel("dotprod", s.tbs(112), threads, 180, func(e *reqEmitter, tb int) {
			stridedTB(e, arena(26), tb, 64<<10, 4, 32<<10, threads, 2, trace.Read)
			stridedTB(e, arena(27), tb, 64<<10, 4, 32<<10, threads, 2, trace.Read)
			stridedTB(e, arena(28), tb, 64, 4, 0, 16, 1, trace.Write)
		}),
	)
	return app
}

// ---------------------------------------------------------------------
// Non-valley benchmarks (Table II, bottom group)
// ---------------------------------------------------------------------

// buildFWT models CUDA SDK Fast Walsh Transform: butterfly kernels whose
// partner offset doubles per stage, on top of contiguous thread indexing.
// Low address bits always carry the entropy: no valley.
func buildFWT(s Scale) *appGen {
	threads := 128
	app := &appGen{Name: "Fast Walsh Transform", Abbr: "FWT", Valley: false, InsnPerAccess: 44}
	nk := s.kernels(8)
	for j := 0; j < nk; j++ {
		stage := uint(j % 6)
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("fwt%d", j), s.tbs(40), threads, 260, func(e *reqEmitter, tb int) {
				n := ragged(threads, tb)
				for t := 0; t < n; t++ {
					idx := uint64(tb*threads + t)
					a := arena(30) + idx*4
					b := arena(30) + (idx^(1<<(stage+2)))*4
					e.add(a, trace.Read, int32(t/32))
					e.add(b, trace.Read, int32(t/32))
					e.add(a, trace.Write, int32(t/32))
				}
			}),
		)
	}
	return app
}

// buildNN models the nearest-neighbor microbenchmark: short contiguous
// streams over a few MB with modest reuse.
func buildNN(s Scale) *appGen {
	threads := 128
	app := &appGen{Name: "NN", Abbr: "NN", Valley: false, InsnPerAccess: 90}
	nk := s.kernels(4)
	for j := 0; j < nk; j++ {
		j := j
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("nn%d", j), s.tbs(40), threads, 420, func(e *reqEmitter, tb int) {
				base := arena(32) + uint64(j%2)<<20
				stridedTB(e, base, tb, int64(threads)*4, 4, 0, threads, 2, trace.Read)
				stridedTB(e, arena(33), tb, int64(threads)*4, 4, 0, threads/4, 1, trace.Write)
			}),
		)
	}
	return app
}

// buildSPMV models Parboil SpMV: contiguous row-pointer reads plus
// uniformly random column gathers over a 16 MB vector — entropy in every
// bit.
func buildSPMV(s Scale) *appGen {
	threads := 64
	app := &appGen{Name: "SPMV", Abbr: "SPMV", Valley: false, InsnPerAccess: 36}
	nk := s.kernels(4)
	for j := 0; j < nk; j++ {
		j := j
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("spmv%d", j), s.tbs(48), threads, 200, func(e *reqEmitter, tb int) {
				rng := rand.New(rand.NewSource(int64(j)<<32 | int64(tb)))
				stridedTB(e, arena(34), tb, int64(threads)*4, 4, 0, threads, 1, trace.Read)
				gatherTB(e, rng, arena(35), 16<<20, threads, 2, trace.Read)
				stridedTB(e, arena(36), tb, int64(threads)*4, 4, 0, threads/2, 1, trace.Write)
			}),
		)
	}
	return app
}

// buildLM models Rodinia LavaMD: each TB streams its own 1 KB particle box
// plus neighbor boxes inside a 256 KB LLC-resident region — very high
// APKI, almost no LLC misses.
func buildLM(s Scale) *appGen {
	threads := 256
	app := &appGen{Name: "LavaMD", Abbr: "LM", Valley: false, InsnPerAccess: 18}
	app.Kernels = append(app.Kernels,
		kernel("lavamd", s.tbs(64), threads, 160, func(e *reqEmitter, tb int) {
			const region = 256 << 10
			own := arena(38) + uint64(tb*4096)%region
			// Walk 1 KB quarters of the 4 KB box, with the quarter mix
			// rotating per TB, so bits 10-11 carry entropy (a box holds
			// 128 particles of 32 B and TBs start at their own particle).
			for rep := 0; rep < 3; rep++ {
				stridedTB(e, own+uint64((rep+tb)&3)<<10, tb, 0, 4, 0, threads, 1, trace.Read)
			}
			for nb := 1; nb <= 3; nb++ {
				nbase := arena(38) + uint64((tb+nb*7)*4096)%region
				stridedTB(e, nbase+uint64((nb+tb*3)&3)<<10, tb, 0, 4, 0, threads, 1, trace.Read)
			}
			stridedTB(e, own+uint64(tb&3)<<10, tb, 0, 4, 0, threads/2, 1, trace.Write)
		}),
	)
	return app
}

// buildMUM models MUMmerGPU: suffix-tree pointer chasing — uniformly
// random reads over 64 MB with no locality whatsoever.
func buildMUM(s Scale) *appGen {
	threads := 64
	app := &appGen{Name: "MUMmerGPU", Abbr: "MUM", Valley: false, InsnPerAccess: 14}
	for j := 0; j < 2; j++ {
		j := j
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("mummer%d", j), s.tbs(64), threads, 90, func(e *reqEmitter, tb int) {
				rng := rand.New(rand.NewSource(int64(j)<<40 | int64(tb)*977))
				gatherTB(e, rng, arena(40), 64<<20, threads, 4, trace.Read)
			}),
		)
	}
	return app
}

// buildBFS models Rodinia BFS: frontier reads (contiguous) and random
// neighbor/visited gathers over 32 MB across the level kernels.
func buildBFS(s Scale) *appGen {
	threads := 64
	app := &appGen{Name: "BFS", Abbr: "BFS", Valley: false, InsnPerAccess: 16}
	nk := s.kernels(8)
	for j := 0; j < nk; j++ {
		j := j
		app.Kernels = append(app.Kernels,
			kernel(fmt.Sprintf("bfs_level%d", j), s.tbs(48), threads, 80, func(e *reqEmitter, tb int) {
				rng := rand.New(rand.NewSource(int64(j)<<36 | int64(tb)*131))
				stridedTB(e, arena(44), tb, int64(threads)*4, 4, 0, threads, 1, trace.Read)
				gatherTB(e, rng, arena(45), 32<<20, threads, 2, trace.Read)
				gatherTB(e, rng, arena(46), 32<<20, threads/2, 1, trace.Write)
			}),
		)
	}
	return app
}

// ---------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------

// spec wires a lazy generator into a Spec: Source streams it, Build is
// the thin adapter that drains the stream into a materialized trace.
func spec(abbr, name, suite string, valley bool, apki, mpki float64, kernels int, gen func(Scale) *appGen) Spec {
	return Spec{
		Abbr: abbr, Name: name, Suite: suite, Valley: valley,
		PaperAPKI: apki, PaperMPKI: mpki, PaperKernels: kernels,
		Source: func(s Scale) trace.Source { return gen(s).source() },
		Build: func(s Scale) *trace.App {
			app, err := trace.Collect(gen(s).source())
			if err != nil {
				panic(fmt.Sprintf("workload %s: %v", abbr, err)) // generator streams cannot fail
			}
			return app
		},
	}
}

var catalog = []Spec{
	spec("MT", "Transpose", "CUDA SDK", true, 7.44, 5.69, 4, buildMT),
	spec("LU", "LU Decomposition", "CUDA SDK", true, 12.32, 1.97, 1022, buildLU),
	spec("GS", "Gaussian", "Rodinia", true, 9.09, 0.01, 510, buildGS),
	spec("NW", "Needle", "Rodinia", true, 5.25, 5.12, 255, buildNW),
	spec("LPS", "Laplace", "Wong et al.", true, 2.27, 1.66, 2, buildLPS),
	spec("SC", "StreamCluster", "Rodinia", true, 4.24, 3.58, 50, buildSC),
	spec("SRAD2", "Srad v2", "Rodinia", true, 3.29, 1.85, 4, buildSRAD2),
	spec("DWT2D", "DWT2D", "Rodinia", true, 1.56, 1.21, 10, buildDWT2D),
	spec("HS", "Hotspot", "Rodinia", true, 0.71, 0.08, 1, buildHS),
	spec("SP", "Scalar Product", "CUDA SDK", true, 2.17, 2.16, 1, buildSP),
	spec("FWT", "Fast Walsh Transform", "CUDA SDK", false, 2.69, 1.38, 22, buildFWT),
	spec("NN", "NN", "Wong et al.", false, 2.33, 0.2, 4, buildNN),
	spec("SPMV", "SPMV", "Parboil", false, 5.95, 2.75, 50, buildSPMV),
	spec("LM", "LavaMD", "Rodinia", false, 18.23, 0.01, 1, buildLM),
	spec("MUM", "MUMmerGPU", "Rodinia", false, 25.63, 22.53, 2, buildMUM),
	spec("BFS", "BFS", "Rodinia", false, 26.92, 18.14, 24, buildBFS),
}

var kernelSpecs = []Spec{
	spec("SRAD2K1", "Srad v2 kernel 1", "Rodinia", true, 3.29, 1.85, 1, buildSRAD2K1),
	spec("DWT2DK1", "DWT2D kernel 1", "Rodinia", true, 1.56, 1.21, 1, buildDWT2DK1),
}

// Catalog returns the 16 benchmarks of Table II in paper order.
func Catalog() []Spec { return append([]Spec(nil), catalog...) }

// StandaloneKernels returns the two per-kernel profiles of Figure 5
// (SRAD2K1, DWT2DK1).
func StandaloneKernels() []Spec { return append([]Spec(nil), kernelSpecs...) }

// All returns benchmarks plus standalone kernels (the 18 plots of Fig. 5).
func All() []Spec { return append(Catalog(), StandaloneKernels()...) }

// ValleySet returns the ten entropy-valley benchmarks (Figures 11–17).
func ValleySet() []Spec {
	var out []Spec
	for _, s := range catalog {
		if s.Valley {
			out = append(out, s)
		}
	}
	return out
}

// NonValleySet returns the six non-valley benchmarks (Figure 20).
func NonValleySet() []Spec {
	var out []Spec
	for _, s := range catalog {
		if !s.Valley {
			out = append(out, s)
		}
	}
	return out
}

// Abbrs returns the abbreviations of every workload (benchmarks plus
// standalone kernels) in catalog order — the valid values services and
// CLIs accept, and the list they print in "unknown workload" errors.
func Abbrs() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Abbr
	}
	return out
}

// ByAbbr looks up a workload (benchmark or standalone kernel) by its
// Table II abbreviation.
func ByAbbr(abbr string) (Spec, bool) {
	for _, s := range All() {
		if s.Abbr == abbr {
			return s, true
		}
	}
	return Spec{}, false
}
