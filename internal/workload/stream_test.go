package workload

import (
	"reflect"
	"testing"

	"valleymap/internal/entropy"
	"valleymap/internal/trace"
)

// TestSourceMatchesBuild: draining a Source must reproduce Build's trace
// exactly, and repeated passes must be deterministic (the emitters —
// including the seeded RNG gathers — regenerate identical requests).
func TestSourceMatchesBuild(t *testing.T) {
	for _, spec := range All() {
		built := spec.Build(Tiny)
		src := spec.Source(Tiny)
		info := src.Info()
		if info.Name != built.Name || info.Abbr != built.Abbr ||
			info.Valley != built.Valley || info.InsnPerAccess != built.InsnPerAccess {
			t.Errorf("%s: source info %+v does not match app metadata", spec.Abbr, info)
		}
		pass1, err := trace.Collect(src)
		if err != nil {
			t.Fatalf("%s: collect: %v", spec.Abbr, err)
		}
		if !reflect.DeepEqual(built, pass1) {
			t.Errorf("%s: collected stream differs from Build", spec.Abbr)
		}
		pass2, err := trace.Collect(src)
		if err != nil {
			t.Fatalf("%s: second collect: %v", spec.Abbr, err)
		}
		if !reflect.DeepEqual(pass1, pass2) {
			t.Errorf("%s: source is not deterministic across passes", spec.Abbr)
		}
	}
}

// TestStreamedProfileMatchesMaterialized is the end-to-end golden test
// of the streaming pipeline at the generator level: profiling straight
// from the Source (generate → coalesce → profile, never materializing
// an App) must be bit-identical to the materialized path for every
// built-in workload.
func TestStreamedProfileMatchesMaterialized(t *testing.T) {
	const window, bits, lineBytes = 12, 30, 128
	for _, spec := range All() {
		want := entropy.AppProfile(trace.CoalesceApp(spec.Build(Tiny), lineBytes), window, bits, nil)
		for _, workers := range []int{0, 4} {
			got, err := entropy.ProfileStream(
				trace.CoalesceStream(spec.Source(Tiny).Stream(), lineBytes),
				entropy.StreamOptions{Window: window, Bits: bits, Workers: workers},
			)
			if err != nil {
				t.Fatalf("%s: %v", spec.Abbr, err)
			}
			if want.Requests != got.Requests {
				t.Fatalf("%s workers=%d: requests %d != %d", spec.Abbr, workers, got.Requests, want.Requests)
			}
			for b := range want.PerBit {
				if want.PerBit[b] != got.PerBit[b] {
					t.Fatalf("%s workers=%d bit %d: %.17g != %.17g",
						spec.Abbr, workers, b, got.PerBit[b], want.PerBit[b])
				}
			}
		}
	}
}
