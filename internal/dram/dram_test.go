package dram

import (
	"math/rand"
	"testing"

	"valleymap/internal/layout"
	"valleymap/internal/sim"
)

func testCfg() Config {
	return Config{Layout: layout.HynixGDDR5(), Timing: HynixGDDR5Timing()}
}

// run enqueues requests at the given times and returns completion times.
func run(t *testing.T, cfg Config, reqs []struct {
	at    sim.Time
	addr  uint64
	write bool
}) (map[int]sim.Time, *Controller) {
	t.Helper()
	var eng sim.Engine
	c := NewController(&eng, cfg, 0, nil)
	done := make(map[int]sim.Time)
	for i, r := range reqs {
		i, r := i, r
		eng.At(r.at, func() {
			c.Enqueue(&Request{Addr: r.addr, Write: r.write, Done: func(d sim.Time) { done[i] = d }})
		})
	}
	eng.Run()
	if len(done) != len(reqs) {
		t.Fatalf("only %d of %d requests completed", len(done), len(reqs))
	}
	return done, c
}

// addrFor builds a Hynix address with the given row/bank/channel=0.
func addrFor(l layout.Layout, row, bank int) uint64 {
	return l.Compose(layout.Row, uint64(row)) | l.Compose(layout.Bank, uint64(bank))
}

func TestRowMissThenHitTiming(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	tm := cfg.Timing
	cyc := func(n int) sim.Time { return tm.Clock.Cycles(int64(n)) }
	done, c := run(t, cfg, []struct {
		at    sim.Time
		addr  uint64
		write bool
	}{
		{0, addrFor(l, 5, 0), false},
		{0, addrFor(l, 5, 0) + 64, false}, // same row: hit
	})
	// First: closed bank -> ACT(tRCD)+CL+burst on bus.
	wantFirst := cyc(tm.TRCD + tm.CL + tm.BurstCycles)
	if done[0] != wantFirst {
		t.Errorf("miss completion = %v, want %v", done[0], wantFirst)
	}
	// Second is a row hit issued after the first CAS (bank ready at
	// tRCD+burst): CAS at that point + CL + burst, serialized behind the
	// first burst on the bus.
	if done[1] <= done[0] {
		t.Errorf("hit completed at %v, not after first %v", done[1], done[0])
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.Activations != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Reads != 2 || st.Writes != 0 {
		t.Errorf("reads/writes = %d/%d", st.Reads, st.Writes)
	}
	if hr := st.RowBufferHitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v", hr)
	}
}

// chain issues n dependent requests (each enqueued when the previous
// completes) and returns the final completion time and controller.
func chain(t *testing.T, cfg Config, n int, addrOf func(i int) uint64) (sim.Time, *Controller) {
	t.Helper()
	var eng sim.Engine
	c := NewController(&eng, cfg, 0, nil)
	var last sim.Time
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		c.Enqueue(&Request{Addr: addrOf(i), Done: func(d sim.Time) {
			last = d
			eng.At(d, func() { issue(i + 1) })
		}})
	}
	eng.At(0, func() { issue(0) })
	eng.Run()
	return last, c
}

func TestRowConflictCostsMore(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	// Dependent chain alternating two rows on one bank: every access
	// after the first reopens a row (hit rate 0), and tRC gates ACTs.
	lastC, cc := chain(t, cfg, 8, func(i int) uint64 { return addrFor(l, i%2+1, 3) })
	// Dependent chain within one row: all hits after the first.
	lastS, cs := chain(t, cfg, 8, func(i int) uint64 { return addrFor(l, 1, 3) + uint64(i*64) })
	if lastC <= 2*lastS {
		t.Errorf("row conflicts (%v) should be much slower than streaming (%v)", lastC, lastS)
	}
	if cc.Stats().RowBufferHitRate() != 0 {
		t.Errorf("conflict hit rate = %v, want 0", cc.Stats().RowBufferHitRate())
	}
	if hr := cs.Stats().RowBufferHitRate(); hr != 7.0/8.0 {
		t.Errorf("streaming hit rate = %v, want 7/8", hr)
	}
}

// TestFRFCFSBatchesQueuedHits checks the complementary behavior: when
// conflicting requests are all queued at once, FR-FCFS reorders them into
// per-row batches and recovers most of the row locality.
func TestFRFCFSBatchesQueuedHits(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	var reqs []struct {
		at    sim.Time
		addr  uint64
		write bool
	}
	for i := 0; i < 8; i++ {
		reqs = append(reqs, struct {
			at    sim.Time
			addr  uint64
			write bool
		}{0, addrFor(l, i%2+1, 3), false})
	}
	_, c := run(t, cfg, reqs)
	// Two batches of 4: 2 misses, 6 hits.
	if hr := c.Stats().RowBufferHitRate(); hr != 0.75 {
		t.Errorf("batched hit rate = %v, want 0.75", hr)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	// Open row 1 via request A; then enqueue B (row 2, older) and C
	// (row 1, younger) while the bank is busy. FR-FCFS must serve C
	// before B.
	var eng sim.Engine
	c := NewController(&eng, cfg, 0, nil)
	var order []string
	mk := func(name string, row int) *Request {
		return &Request{Addr: addrFor(l, row, 0), Done: func(sim.Time) { order = append(order, name) }}
	}
	eng.At(0, func() { c.Enqueue(mk("A", 1)) })
	eng.At(1, func() { c.Enqueue(mk("B", 2)) })
	eng.At(2, func() { c.Enqueue(mk("C", 1)) })
	eng.Run()
	if len(order) != 3 || order[0] != "A" || order[1] != "C" || order[2] != "B" {
		t.Errorf("service order = %v, want [A C B]", order)
	}
}

func TestBankParallelismBeatsSerialization(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	mkReqs := func(banked bool) []struct {
		at    sim.Time
		addr  uint64
		write bool
	} {
		var reqs []struct {
			at    sim.Time
			addr  uint64
			write bool
		}
		for i := 0; i < 16; i++ {
			bank := 0
			row := i + 1
			if banked {
				bank = i % 16
				row = 1
			}
			reqs = append(reqs, struct {
				at    sim.Time
				addr  uint64
				write bool
			}{0, addrFor(l, row, bank), false})
		}
		return reqs
	}
	doneB, _ := run(t, cfg, mkReqs(true))
	doneS, _ := run(t, cfg, mkReqs(false))
	last := func(m map[int]sim.Time) sim.Time {
		var mx sim.Time
		for _, d := range m {
			if d > mx {
				mx = d
			}
		}
		return mx
	}
	if last(doneB) >= last(doneS) {
		t.Errorf("16 banks in parallel (%v) should beat 16 conflicting rows on one bank (%v)",
			last(doneB), last(doneS))
	}
}

func TestDataBusSerializesAcrossBanks(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	tm := cfg.Timing
	// Two hits on different open banks complete at least one burst apart.
	var eng sim.Engine
	c := NewController(&eng, cfg, 0, nil)
	var times []sim.Time
	open := func(bank int) {
		c.Enqueue(&Request{Addr: addrFor(l, 1, bank), Done: func(d sim.Time) { times = append(times, d) }})
	}
	eng.At(0, func() { open(0); open(1) })
	eng.Run()
	if len(times) != 2 {
		t.Fatal("requests lost")
	}
	gap := times[1] - times[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < tm.Clock.Cycles(int64(tm.BurstCycles)) {
		t.Errorf("bus gap %v < one burst %v", gap, tm.Clock.Cycles(int64(tm.BurstCycles)))
	}
}

func TestSystemRoutesChannels(t *testing.T) {
	var eng sim.Engine
	cfg := testCfg()
	sys := NewSystem(&eng, cfg, nil)
	if len(sys.Controllers) != 4 {
		t.Fatalf("channels = %d, want 4", len(sys.Controllers))
	}
	l := cfg.Layout
	nDone := 0
	for ch := 0; ch < 4; ch++ {
		addr := l.Compose(layout.Channel, uint64(ch)) | l.Compose(layout.Row, 7)
		sys.Enqueue(&Request{Addr: addr, Done: func(sim.Time) { nDone++ }})
	}
	eng.Run()
	if nDone != 4 {
		t.Fatalf("done = %d", nDone)
	}
	for ch, c := range sys.Controllers {
		if st := c.Stats(); st.Reads != 1 {
			t.Errorf("channel %d reads = %d, want 1", ch, st.Reads)
		}
	}
	sum := sys.Stats()
	if sum.Reads != 4 || sum.Activations != 4 {
		t.Errorf("system stats = %+v", sum)
	}
}

func TestStacked3DGeometry(t *testing.T) {
	var eng sim.Engine
	cfg := Config{Layout: layout.Stacked3D(), Timing: Stacked3DTiming()}
	sys := NewSystem(&eng, cfg, nil)
	if len(sys.Controllers) != 4 {
		t.Fatalf("stacks = %d", len(sys.Controllers))
	}
	if n := len(sys.Controllers[0].banks); n != 256 {
		t.Fatalf("banks per stack = %d, want 256 (16 vaults x 16 banks)", n)
	}
	done := 0
	for v := 0; v < 16; v++ {
		addr := cfg.Layout.Compose(layout.Vault, uint64(v)) | cfg.Layout.Compose(layout.Row, 3)
		sys.Enqueue(&Request{Addr: addr, Done: func(sim.Time) { done++ }})
	}
	eng.Run()
	if done != 16 {
		t.Fatalf("done = %d", done)
	}
}

type probeRec struct {
	chLevel   map[int]int
	bankLevel map[[2]int]int
	neg       bool
}

func (p *probeRec) ChannelDelta(now sim.Time, ch, d int) {
	p.chLevel[ch] += d
	if p.chLevel[ch] < 0 {
		p.neg = true
	}
}
func (p *probeRec) BankDelta(now sim.Time, ch, b, d int) {
	p.bankLevel[[2]int{ch, b}] += d
	if p.bankLevel[[2]int{ch, b}] < 0 {
		p.neg = true
	}
}

// Property: probe deltas balance to zero and never go negative; every
// enqueued request completes exactly once.
func TestProbeBalancedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		var eng sim.Engine
		cfg := testCfg()
		probe := &probeRec{chLevel: map[int]int{}, bankLevel: map[[2]int]int{}}
		sys := NewSystem(&eng, cfg, probe)
		n := 200
		completed := 0
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(1<<30)) &^ 63
			at := sim.Time(rng.Intn(100000))
			eng.At(at, func() {
				sys.Enqueue(&Request{Addr: addr, Write: rng.Intn(3) == 0, Done: func(sim.Time) { completed++ }})
			})
		}
		eng.Run()
		if completed != n {
			t.Fatalf("completed %d of %d", completed, n)
		}
		if probe.neg {
			t.Fatal("probe went negative")
		}
		for ch, v := range probe.chLevel {
			if v != 0 {
				t.Errorf("channel %d level = %d at end", ch, v)
			}
		}
		st := sys.Stats()
		if st.Reads+st.Writes != int64(n) {
			t.Errorf("reads+writes = %d, want %d", st.Reads+st.Writes, n)
		}
		if st.RowHits+st.RowMisses != int64(n) {
			t.Errorf("hits+misses = %d, want %d", st.RowHits+st.RowMisses, n)
		}
	}
}

func TestTRCEnforced(t *testing.T) {
	cfg := testCfg()
	l := cfg.Layout
	tm := cfg.Timing
	// Two row misses back to back on one bank: second ACT must wait tRC
	// after the first.
	done, _ := run(t, cfg, []struct {
		at    sim.Time
		addr  uint64
		write bool
	}{
		{0, addrFor(l, 1, 0), false},
		{0, addrFor(l, 2, 0), false},
	})
	// Second request: ACT at >= tRC, + tRCD + CL + burst.
	minDone := tm.Clock.Cycles(int64(tm.TRC + tm.TRCD + tm.CL + tm.BurstCycles))
	if done[1] < minDone {
		t.Errorf("second conflicting request done at %v, want >= %v (tRC enforced)", done[1], minDone)
	}
}
