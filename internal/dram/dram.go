// Package dram models the GDDR5 memory system of Table I: per-channel
// memory controllers with FR-FCFS scheduling [Rixner et al.], open-page
// row-buffer policy, banked DRAM timing (CL-tRCD-tRP = 12-12-12 at
// 924 MHz), a shared per-channel data bus, and the 3D-stacked variant of
// Section VI-D (stacks × vaults × banks behind TSVs).
//
// The model is event-driven: each bank serves one command sequence at a
// time, row hits cost a CAS, row misses cost PRE+ACT+CAS bounded by tRC,
// and completed bursts serialize on the channel data bus. This captures
// everything the paper measures at the DRAM level — row-buffer hit rate
// (Figure 15), bank-/channel-level parallelism (Figure 14) and the
// activate-dominated power differences (Figure 16).
//
// Requests recycle through a Pool and controllers schedule through the
// engine's handler API with per-bank kick records, so steady-state
// traffic does not allocate.
package dram

import (
	"fmt"

	"valleymap/internal/layout"
	"valleymap/internal/sim"
)

// Timing holds DRAM timing in DRAM command-clock cycles.
type Timing struct {
	Clock sim.Clock
	// CL is the CAS (read/write) latency; TRCD row-to-column delay;
	// TRP precharge time; TRC minimum ACT-to-ACT interval to one bank.
	CL, TRCD, TRP, TRC int
	// BurstCycles is the data-bus occupancy of one 128 B transaction.
	BurstCycles int
}

// HynixGDDR5Timing returns Table I's 924 MHz 12-12-12 timing. One 128 B
// transaction occupies the 32 B/cycle channel for 4 cycles
// (118.3 GB/s ÷ 4 channels ≈ 29.6 GB/s ≈ 32 B per 924 MHz cycle).
func HynixGDDR5Timing() Timing {
	return Timing{
		Clock:       sim.ClockFromMHz(924),
		CL:          12,
		TRCD:        12,
		TRP:         12,
		TRC:         40,
		BurstCycles: 4,
	}
}

// Stacked3DTiming returns the 3D-stacked configuration of Section VI-D:
// the same array timings but a much wider TSV data path (640 GB/s over 4
// stacks ≈ 173 B per cycle), modeled as single-cycle bursts.
func Stacked3DTiming() Timing {
	t := HynixGDDR5Timing()
	t.BurstCycles = 1
	return t
}

// Config describes one memory system.
type Config struct {
	// Layout decodes mapped addresses into channel/bank/row coordinates.
	Layout layout.Layout
	Timing Timing
}

// Request is one line-granular DRAM transaction on a *mapped* address.
type Request struct {
	Addr  uint64
	Write bool
	// Done is invoked exactly once when the data burst completes.
	Done func(done sim.Time)

	arrive sim.Time
	row    int
	bank   int
	ctl    *Controller
	pooled bool
}

// Pool recycles Requests. It is single-goroutine like the engine: one
// pool belongs to one simulation at a time, though it may be reused
// across sequential runs (gpusim's Runner does exactly that).
type Pool struct {
	free []*Request
}

// NewPool returns an empty request pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed Request. The owning controller returns it to the
// pool automatically after its data burst completes (and Done, if any,
// has fired). Requests constructed directly — not from a pool — are
// never recycled, so external callers may still pass their own.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return &Request{pooled: true}
}

func (p *Pool) put(r *Request) {
	r.Addr, r.Write, r.Done = 0, false, nil
	r.arrive, r.row, r.bank, r.ctl = 0, 0, 0, nil
	p.free = append(p.free, r)
}

// Stats aggregates controller counters.
type Stats struct {
	Reads, Writes         int64
	RowHits, RowMisses    int64
	Activations           int64
	AvgQueueLatencyCycles float64 // arrival to burst completion, DRAM cycles
}

// RowBufferHitRate is Figure 15's metric.
func (s Stats) RowBufferHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// bankKick is the pooled arg for a bank's deferred service event. Each
// bank owns exactly one (the scheduled flag guarantees at most one kick
// is in flight per bank), allocated once at controller construction.
type bankKick struct {
	c  *Controller
	bi int
}

type bank struct {
	openRow   int64 // -1 = closed
	readyAt   sim.Time
	lastAct   sim.Time
	queue     []*Request
	scheduled bool
	kick      *bankKick
}

// ParallelismProbe receives outstanding-count transitions for the
// Figure 14 metrics; see the metrics package.
type ParallelismProbe interface {
	ChannelDelta(now sim.Time, channel int, delta int)
	BankDelta(now sim.Time, channel, bank int, delta int)
}

// Controller is one memory channel: a bank array, an FR-FCFS picker per
// bank queue, and a shared data bus.
type Controller struct {
	eng     *sim.Engine
	cfg     Config
	channel int
	banks   []bank
	bus     sim.Server
	probe   ParallelismProbe
	pool    *Pool // recycles pooled requests after completion; may be nil

	stats   Stats
	latency sim.Welford
}

// NewController builds the controller for one channel.
func NewController(eng *sim.Engine, cfg Config, channel int, probe ParallelismProbe) *Controller {
	n := cfg.Layout.BanksPerChannel()
	c := &Controller{eng: eng, cfg: cfg, channel: channel, probe: probe, banks: make([]bank, n)}
	for i := range c.banks {
		c.banks[i].openRow = -1
		// Far enough in the past that the first ACT is never tRC-gated.
		c.banks[i].lastAct = -(sim.Second << 8)
		c.banks[i].kick = &bankKick{c: c, bi: i}
	}
	return c
}

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.AvgQueueLatencyCycles = c.latency.Mean()
	return s
}

// QueuedRequests returns the number of requests currently queued or in
// flight across all banks (diagnostic).
func (c *Controller) QueuedRequests() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].queue)
	}
	return n
}

// Enqueue admits a transaction. The layout decodes bank and row from the
// (already mapped) address.
func (c *Controller) Enqueue(r *Request) {
	now := c.eng.Now()
	r.arrive = now
	r.row = c.cfg.Layout.RowOf(r.Addr)
	r.bank = c.cfg.Layout.BankGlobal(r.Addr)
	r.ctl = c
	if r.bank >= len(c.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range (%d banks)", r.bank, len(c.banks)))
	}
	b := &c.banks[r.bank]
	b.queue = append(b.queue, r)
	if c.probe != nil {
		c.probe.ChannelDelta(now, c.channel, +1)
		c.probe.BankDelta(now, c.channel, r.bank, +1)
	}
	c.kick(r.bank, now)
}

// kick schedules or performs service on a bank.
func (c *Controller) kick(bi int, now sim.Time) {
	b := &c.banks[bi]
	if b.scheduled || len(b.queue) == 0 {
		return
	}
	if b.readyAt > now {
		c.scheduleKick(bi, b.readyAt)
		return
	}
	c.service(bi, now)
}

func bankKickH(arg any) {
	k := arg.(*bankKick)
	k.c.banks[k.bi].scheduled = false
	k.c.kick(k.bi, k.c.eng.Now())
}

func (c *Controller) scheduleKick(bi int, at sim.Time) {
	b := &c.banks[bi]
	b.scheduled = true
	c.eng.AtCall(at, bankKickH, b.kick)
}

// burstDoneH fires when a request's data burst completes: it retires
// the parallelism counts, invokes Done, and recycles pooled requests.
func burstDoneH(arg any) {
	r := arg.(*Request)
	c := r.ctl
	done := c.eng.Now()
	if c.probe != nil {
		c.probe.ChannelDelta(done, c.channel, -1)
		c.probe.BankDelta(done, c.channel, r.bank, -1)
	}
	if r.Done != nil {
		r.Done(done)
	}
	if r.pooled && c.pool != nil {
		c.pool.put(r)
	}
}

// service performs FR-FCFS selection and issues one request on bank bi.
func (c *Controller) service(bi int, now sim.Time) {
	b := &c.banks[bi]
	t := c.cfg.Timing
	cyc := func(n int) sim.Time { return t.Clock.Cycles(int64(n)) }

	// FR-FCFS: oldest row hit first, else oldest request.
	sel := -1
	if b.openRow >= 0 {
		for i, r := range b.queue {
			if int64(r.row) == b.openRow {
				sel = i
				break
			}
		}
	}
	rowHit := sel >= 0
	if sel < 0 {
		sel = 0
	}
	r := b.queue[sel]

	var dataReady sim.Time
	if rowHit {
		c.stats.RowHits++
		dataReady = now + cyc(t.CL)
		b.readyAt = now + cyc(t.BurstCycles)
	} else {
		// ACT-to-ACT distance to the same bank is bounded by tRC.
		actAt := now
		if b.openRow >= 0 {
			actAt += cyc(t.TRP) // precharge the open row first
		}
		if min := b.lastAct + cyc(t.TRC); actAt < min {
			// tRC not yet satisfied: retry when it is (sel is the queue
			// head here, so nothing is reordered).
			c.scheduleKick(bi, min)
			return
		}
		c.stats.RowMisses++
		c.stats.Activations++
		b.lastAct = actAt
		b.openRow = int64(r.row)
		casAt := actAt + cyc(t.TRCD)
		dataReady = casAt + cyc(t.CL)
		b.readyAt = casAt + cyc(t.BurstCycles)
	}

	// Remove the selected request.
	copy(b.queue[sel:], b.queue[sel+1:])
	b.queue[len(b.queue)-1] = nil
	b.queue = b.queue[:len(b.queue)-1]

	// The burst serializes on the channel data bus.
	_, busDone := c.bus.Acquire(dataReady, cyc(t.BurstCycles))
	if r.Write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
	c.latency.Observe(t.Clock.ToCycles(busDone - r.arrive))
	c.eng.AtCall(busDone, burstDoneH, r)

	// Keep draining the queue.
	if len(b.queue) > 0 {
		c.scheduleKick(bi, b.readyAt)
	}
}

// BusUtilization reports the data-bus busy fraction over the horizon.
func (c *Controller) BusUtilization(horizon sim.Time) float64 {
	return c.bus.Utilization(horizon)
}

// System is the set of per-channel controllers.
type System struct {
	cfg         Config
	Controllers []*Controller
	pool        *Pool
}

// NewSystem builds controllers for every channel in the layout with a
// fresh request pool.
func NewSystem(eng *sim.Engine, cfg Config, probe ParallelismProbe) *System {
	return NewSystemWithPool(eng, cfg, probe, NewPool())
}

// NewSystemWithPool builds controllers sharing the given request pool,
// so a caller running many simulations back to back (gpusim.Runner)
// reuses request records across runs.
func NewSystemWithPool(eng *sim.Engine, cfg Config, probe ParallelismProbe, pool *Pool) *System {
	s := &System{cfg: cfg, pool: pool}
	for ch := 0; ch < cfg.Layout.Channels(); ch++ {
		c := NewController(eng, cfg, ch, probe)
		c.pool = pool
		s.Controllers = append(s.Controllers, c)
	}
	return s
}

// Get returns a pooled Request ready to fill in and Enqueue. It is
// recycled automatically after its burst completes and Done fires.
func (s *System) Get() *Request { return s.pool.Get() }

// Enqueue routes a transaction to its channel controller.
func (s *System) Enqueue(r *Request) {
	ch := s.cfg.Layout.ChannelOf(r.Addr)
	s.Controllers[ch].Enqueue(r)
}

// Stats sums controller counters.
func (s *System) Stats() Stats {
	var out Stats
	var latSum float64
	var latN int64
	for _, c := range s.Controllers {
		st := c.Stats()
		out.Reads += st.Reads
		out.Writes += st.Writes
		out.RowHits += st.RowHits
		out.RowMisses += st.RowMisses
		out.Activations += st.Activations
		n := st.Reads + st.Writes
		latSum += st.AvgQueueLatencyCycles * float64(n)
		latN += n
	}
	if latN > 0 {
		out.AvgQueueLatencyCycles = latSum / float64(latN)
	}
	return out
}
