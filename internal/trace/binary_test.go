package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeBinary is the test shorthand for WriteBinary into memory.
func encodeBinary(t testing.TB, app *App) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, app); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// writeTempTrace materializes data as a file for the mmap path.
func writeTempTrace(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.vtrc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBinaryRoundTrip(t *testing.T) {
	app := sampleApp()
	data := encodeBinary(t, app)
	back, sum, err := ReadBinaryHashed(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Kernels) != len(app.Kernels) {
		t.Fatalf("kernels = %d, want %d", len(back.Kernels), len(app.Kernels))
	}
	for ki := range app.Kernels {
		a, b := &app.Kernels[ki], &back.Kernels[ki]
		if a.Name != b.Name || a.WarpsPerTB != b.WarpsPerTB || a.ComputeGapCycles != b.ComputeGapCycles {
			t.Errorf("kernel %d header differs: %+v vs %+v", ki, a, b)
		}
		if !reflect.DeepEqual(a.TBs, b.TBs) {
			t.Errorf("kernel %d TBs differ", ki)
		}
	}
	// The end-section checksum IS the canonical identity: re-encoding the
	// decoded app is bit-identical, and the digest matches CSV's for the
	// same records.
	if again := encodeBinary(t, back); !bytes.Equal(data, again) {
		t.Error("re-encode is not bit-identical")
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, app); err != nil {
		t.Fatal(err)
	}
	_, csvSum, err := ReadCSVHashed(bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum != csvSum {
		t.Errorf("binary hash %s != csv hash %s for the same trace", sum, csvSum)
	}
}

// TestBinaryStreamBatchShape: the binary decoder emits the same batch
// sequence as AppSource over the same trace, including TBStart flags and
// large-TB chunking.
func TestBinaryStreamBatchShape(t *testing.T) {
	app := sampleApp()
	big := TB{ID: 9}
	for i := 0; i < maxBatchRequests+10; i++ {
		big.Requests = append(big.Requests, Request{Addr: uint64(i) * 64})
	}
	app.Kernels[1].TBs = append(app.Kernels[1].TBs, big)

	want := describeBatches(t, AppSource(app).Stream())
	got := describeBatches(t, NewBinaryStream(bytes.NewReader(encodeBinary(t, app))))
	if !reflect.DeepEqual(want, got) {
		t.Errorf("batch shape:\n got %+v\nwant %+v", got, want)
	}
}

type batchShape struct {
	Kernel int
	TB     int
	Start  bool
	Header bool
	Reqs   int
}

func describeBatches(t *testing.T, s Stream) []batchShape {
	t.Helper()
	var got []batchShape
	for {
		b, err := s.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batchShape{b.KernelIndex, b.TBID, b.TBStart, b.Kernel != nil, len(b.Requests)})
	}
}

// TestBinaryEmptyTB: empty TBs are representable in binary (unlike CSV)
// and survive decode → re-encode.
func TestBinaryEmptyTB(t *testing.T) {
	app := &App{Kernels: []Kernel{{Name: "k", WarpsPerTB: 1, TBs: []TB{
		{ID: 0},
		{ID: 3, Requests: []Request{{Addr: 0x40}}},
		{ID: 5},
	}}}}
	data := encodeBinary(t, app)
	back, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(app.Kernels, back.Kernels) {
		t.Errorf("empty TBs did not roundtrip:\n%+v\nvs\n%+v", app.Kernels, back.Kernels)
	}
	if again := encodeBinary(t, back); !bytes.Equal(data, again) {
		t.Error("re-encode is not bit-identical")
	}
}

// TestWriteBinaryStreamMatchesWriteBinary: the streaming encoder and the
// materialized encoder produce the same bytes, whatever the batch
// chunking of the input stream.
func TestWriteBinaryStreamMatchesWriteBinary(t *testing.T) {
	app := sampleApp()
	big := TB{ID: 7}
	for i := 0; i < maxBatchRequests*2+3; i++ {
		big.Requests = append(big.Requests, Request{Addr: uint64(i), Kind: Kind(i % 2), Warp: int32(i % 5)})
	}
	app.Kernels[0].TBs = append(app.Kernels[0].TBs, big)

	want := encodeBinary(t, app)
	var buf bytes.Buffer
	if err := WriteBinaryStream(&buf, AppSource(app).Stream()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Error("WriteBinaryStream differs from WriteBinary")
	}
}

// corruptBinaryCases is the malformed binary corpus: structural damage
// the decoders must reject cleanly (never panic, never yield a partial
// trace as valid). Built by mutating a valid encoding of sampleApp.
// Shared with the fuzz seeds (FuzzTraceFormatParity).
func corruptBinaryCases(t testing.TB) map[string][]byte {
	base := encodeBinary(t, sampleApp())
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), base...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":                 {},
		"short header":          base[:10],
		"bad magic":             mut(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":           mut(func(b []byte) []byte { b[4] = 99; return b }),
		"nonzero header pad":    mut(func(b []byte) []byte { b[9] = 1; return b }),
		"header only":           base[:16],
		"truncated mid-section": base[:len(base)-sha256.Size-20],
		"truncated checksum":    base[:len(base)-10],
		"flipped record byte":   mut(func(b []byte) []byte { b[len(b)-sha256.Size-24] ^= 0xff; return b }),
		"flipped checksum":      mut(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }),
		"trailing garbage":      append(append([]byte(nil), base...), 0xde, 0xad),
	}
	// Hand-built structural violations (header + crafted sections).
	sec := func(parts ...[]byte) []byte {
		out := append([]byte(nil), binaryHeader[:]...)
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	u64 := func(v uint64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return b[:]
	}
	cases["no kernels"] = sec(u64(secEnd), make([]byte, sha256.Size))
	cases["tb before kernel"] = sec(u64(secTB), u64(0), u64(0))
	cases["unknown section tag"] = sec(u64(77))
	cases["zero warps"] = sec(u64(secKernel), u64(0), u64(0), u64(0))
	cases["negative gap"] = sec(u64(secKernel), u64(1), u64(1<<63), u64(0))
	cases["huge name length"] = sec(u64(secKernel), u64(1), u64(0), u64(maxKernelName+1))
	cases["nonzero name pad"] = sec(u64(secKernel), u64(1), u64(0), u64(1), []byte{'k', 0, 0, 0, 0, 0, 0, 1})
	kernel := sec(u64(secKernel), u64(1), u64(0), u64(0))
	tb := func(id, count uint64, recs ...byte) []byte {
		return append(append(append(u64(secTB), u64(id)...), u64(count)...), recs...)
	}
	rec := func(addr uint64, kind byte, pad [3]byte, warp uint32) []byte {
		var b [recordBytes]byte
		binary.LittleEndian.PutUint64(b[0:8], addr)
		b[8] = kind
		copy(b[9:12], pad[:])
		binary.LittleEndian.PutUint32(b[12:16], warp)
		return b[:]
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases["descending tb ids"] = cat(kernel, tb(5, 0), tb(2, 0))
	cases["repeated tb id"] = cat(kernel, tb(1, 0), tb(1, 0))
	cases["bad kind byte"] = cat(kernel, tb(0, 1, rec(0x40, 2, [3]byte{}, 0)...))
	cases["nonzero record pad"] = cat(kernel, tb(0, 1, rec(0x40, 0, [3]byte{0, 1, 0}, 0)...))
	cases["negative warp"] = cat(kernel, tb(0, 1, rec(0x40, 0, [3]byte{}, 1<<31)...))
	cases["count overflows file"] = cat(kernel, tb(0, 1<<61))
	return cases
}

// TestBinaryDecodersRejectCorruption feeds the corrupt corpus to all
// three binary decode paths — streaming, materialized, mmap — and
// requires each to reject.
func TestBinaryDecodersRejectCorruption(t *testing.T) {
	for name, data := range corruptBinaryCases(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Error("materialized decoder accepted corrupt input")
			}
			bs := NewBinaryStream(bytes.NewReader(data))
			var streamErr error
			for {
				_, err := bs.Next()
				if err != nil {
					if err != io.EOF {
						streamErr = err
					}
					break
				}
			}
			if streamErr == nil {
				t.Error("streaming decoder accepted corrupt input")
			} else if !strings.HasPrefix(streamErr.Error(), "trace binary: ") {
				t.Errorf("unprefixed error: %v", streamErr)
			}
			// Errors are sticky.
			if _, err := bs.Next(); err != streamErr {
				t.Errorf("error not sticky: %v then %v", streamErr, err)
			}
			if _, _, err := parseBinary(data); err == nil {
				t.Error("mmap parser accepted corrupt input")
			}
			if src, err := OpenMmap(writeTempTrace(t, data)); err == nil {
				src.Close()
				t.Error("OpenMmap accepted corrupt input")
			}
		})
	}
}

func TestBinaryUnsupportedVersionError(t *testing.T) {
	// The version error text is part of the format-stability contract
	// (doc.go): future readers must keep telling old tools apart.
	data := encodeBinary(t, sampleApp())
	data[4] = 2
	_, err := ReadBinary(bytes.NewReader(data))
	want := "trace binary: unsupported version 2 (want 1)"
	if err == nil || err.Error() != want {
		t.Errorf("err = %v, want %q", err, want)
	}
	if _, _, err := parseBinary(data); err == nil || err.Error() != want {
		t.Errorf("parseBinary err = %v, want %q", err, want)
	}
}

func TestMmapSourceMatchesBinaryStream(t *testing.T) {
	app := sampleApp()
	// Exercise chunking and empty TBs through the mmap path too.
	app.Kernels[0].TBs = append(app.Kernels[0].TBs, TB{ID: 100})
	big := TB{ID: 101}
	for i := 0; i < maxBatchRequests+5; i++ {
		big.Requests = append(big.Requests, Request{Addr: uint64(i) * 32, Warp: int32(i % 3)})
	}
	app.Kernels[0].TBs = append(app.Kernels[0].TBs, big)
	data := encodeBinary(t, app)

	src, err := OpenMmap(writeTempTrace(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	bs := NewBinaryStream(bytes.NewReader(data))
	want := drainApp(t, bs, bs.Info())
	if src.SHA256() != bs.SHA256() {
		t.Errorf("mmap hash %s != stream hash %s", src.SHA256(), bs.SHA256())
	}
	if src.Requests() != want.Requests() {
		t.Errorf("Requests() = %d, want %d", src.Requests(), want.Requests())
	}
	if src.Bytes() != len(data) {
		t.Errorf("Bytes() = %d, want %d", src.Bytes(), len(data))
	}
	// Restartable: two passes, plus batch-shape equality with the
	// streaming decoder.
	for pass := 0; pass < 2; pass++ {
		got := drainApp(t, src.Stream(), src.Info())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("pass %d: mmap decode differs from streaming decode", pass)
		}
	}
	wantShape := describeBatches(t, NewBinaryStream(bytes.NewReader(data)))
	gotShape := describeBatches(t, src.Stream())
	if !reflect.DeepEqual(wantShape, gotShape) {
		t.Errorf("batch shape:\n got %+v\nwant %+v", gotShape, wantShape)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenFileSniffsFormat(t *testing.T) {
	app := sampleApp()
	dir := t.TempDir()

	binPath := filepath.Join(dir, "t.vtrc")
	var bin bytes.Buffer
	if err := WriteBinary(&bin, app); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "t.csv")
	var csv bytes.Buffer
	if err := WriteCSV(&csv, app); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	src, release, err := OpenFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*MmapSource); !ok {
		t.Errorf("binary file opened as %T, want *MmapSource", src)
	}
	binApp := drainApp(t, src.Stream(), src.Info())
	release()

	src, release, err = OpenFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := src.(*CSVStream)
	if !ok {
		t.Fatalf("csv file opened as %T, want *CSVStream", src)
	}
	csvApp := drainApp(t, cs, cs.Info())
	release()

	if !reflect.DeepEqual(binApp, csvApp) {
		t.Error("binary and CSV decodes of the same trace differ")
	}
	if _, _, err := OpenFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("OpenFile accepted a missing file")
	}
}

// TestCanonicalHashBoundaryInvariant: the canonical digest depends only
// on the record stream, not on how batches chunk it or which container
// carried it.
func TestCanonicalHashBoundaryInvariant(t *testing.T) {
	app := sampleApp()
	fromApp, err := CanonicalHash(AppSource(app))
	if err != nil {
		t.Fatal(err)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, app); err != nil {
		t.Fatal(err)
	}
	cs := NewCSVStream(bytes.NewReader(csv.Bytes()))
	drainApp(t, cs, cs.Info())

	data := encodeBinary(t, app)
	bs := NewBinaryStream(bytes.NewReader(data))
	drainApp(t, bs, bs.Info())

	if cs.SHA256() != fromApp || bs.SHA256() != fromApp {
		t.Errorf("hashes diverge: app %s, csv %s, binary %s", fromApp, cs.SHA256(), bs.SHA256())
	}
	// ... and the end-section checksum is that same digest.
	stored := data[len(data)-sha256.Size:]
	if got := string(stored); got == "" {
		t.Fatal("unreachable")
	}
	var want [sha256.Size]byte
	c := newCanonFold()
	for ki := range app.Kernels {
		k := &app.Kernels[ki]
		c.kernel(&KernelInfo{Name: k.Name, WarpsPerTB: k.WarpsPerTB, ComputeGapCycles: k.ComputeGapCycles})
		for ti := range k.TBs {
			c.tbStart(k.TBs[ti].ID)
			c.requests(k.TBs[ti].Requests)
		}
	}
	want = c.sum()
	if !bytes.Equal(stored, want[:]) {
		t.Error("end-section checksum is not the canonical digest")
	}
}
