package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// MmapSource serves a VTRC binary trace straight out of a memory-mapped
// file: a restartable Source whose streams hand out batches that are
// zero-copy views of the mapping (when the platform layout allows — see
// alias.go — and a per-stream decode buffer otherwise). The whole file
// is validated once at open, structure, records and checksum, so
// streaming afterwards does no validation work at all; multiple
// concurrent streams over one source are safe because everything they
// touch is read-only. The mapping is PROT_READ where mmap is real, so
// a consumer violating the read-only batch contract faults instead of
// corrupting the trace.
type MmapSource struct {
	data    []byte
	unmap   func() error
	kernels []mmapKernel
	sum     string
	reqs    int
}

type mmapKernel struct {
	info KernelInfo
	tbs  []mmapTB
}

type mmapTB struct {
	id  int
	off int // byte offset of the TB's request records in data
	n   int // request record count
}

// OpenMmap maps the VTRC file at path read-only and validates it fully.
// On platforms without mmap support (or filesystems that refuse it) the
// file is read into memory instead; semantics are identical, only the
// resident-set behavior differs. Callers must Close the source when
// done and must not use batches obtained from it afterwards.
func OpenMmap(path string) (*MmapSource, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	src, err := newMmapSource(data, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return src, nil
}

func newMmapSource(data []byte, unmap func() error) (*MmapSource, error) {
	kernels, sum, err := parseBinary(data)
	if err != nil {
		return nil, err
	}
	reqs := 0
	for ki := range kernels {
		for ti := range kernels[ki].tbs {
			reqs += kernels[ki].tbs[ti].n
		}
	}
	return &MmapSource{data: data, unmap: unmap, kernels: kernels, sum: sum, reqs: reqs}, nil
}

// Info returns the metadata of an imported trace, like the other
// container decoders.
func (m *MmapSource) Info() SourceInfo {
	return SourceInfo{Name: "imported", Abbr: "IMP", InsnPerAccess: 1}
}

// SHA256 returns the canonical record-stream digest, verified against
// the file checksum at open.
func (m *MmapSource) SHA256() string { return m.sum }

// Requests reports the total request count, known since open.
func (m *MmapSource) Requests() int { return m.reqs }

// Bytes reports the mapped file size.
func (m *MmapSource) Bytes() int { return len(m.data) }

// Close releases the mapping. It is idempotent.
func (m *MmapSource) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	m.data = nil
	m.kernels = nil
	return u()
}

// Stream starts a fresh pass over the trace. Streams allocate nothing
// per batch in steady state: batches alias the mapping directly, or
// reuse one decode buffer on non-aliasing platforms.
func (m *MmapSource) Stream() Stream { return &mmapStream{src: m} }

type mmapStream struct {
	src     *MmapSource
	ki, ti  int
	off     int // records already emitted from the current TB
	started bool

	batch Batch
	hdr   KernelInfo
	reqs  []Request // fallback decode buffer, lazily allocated
}

func (s *mmapStream) Next() (*Batch, error) {
	for s.ki < len(s.src.kernels) {
		k := &s.src.kernels[s.ki]
		if !s.started {
			s.started = true
			s.hdr = k.info
			s.batch = Batch{Kernel: &s.hdr, KernelIndex: s.ki, TBID: -1}
			return &s.batch, nil
		}
		if s.ti >= len(k.tbs) {
			s.ki++
			s.ti, s.off, s.started = 0, 0, false
			continue
		}
		tb := &k.tbs[s.ti]
		n := tb.n - s.off
		if n > maxBatchRequests {
			n = maxBatchRequests
		}
		var reqs []Request
		if n > 0 {
			raw := s.src.data[tb.off+s.off*recordBytes : tb.off+(s.off+n)*recordBytes]
			var ok bool
			if reqs, ok = aliasRequests(raw); !ok {
				reqs = copyRecords(raw, &s.reqs)
			}
		}
		s.batch = Batch{KernelIndex: s.ki, TBID: tb.id, TBStart: s.off == 0, Requests: reqs}
		s.off += n
		if s.off >= tb.n {
			s.ti++
			s.off = 0
		}
		return &s.batch, nil
	}
	return nil, io.EOF
}

// parseBinary validates a complete in-memory VTRC image — structure,
// every record field, canonical checksum — and indexes it for random
// access. It enforces exactly the rules BinaryStream enforces (the
// three-way parity fuzz pins the two against each other); only the
// truncation error texts name the index walk.
func parseBinary(data []byte) ([]mmapKernel, string, error) {
	fail := func(format string, args ...any) ([]mmapKernel, string, error) {
		return nil, "", fmt.Errorf("trace binary: "+format, args...)
	}
	le := binary.LittleEndian
	if len(data) < 16 {
		return fail("truncated header")
	}
	if string(data[:4]) != binaryMagic {
		return fail("bad magic %q (want %q)", data[:4], binaryMagic)
	}
	if data[4] != binaryVersion {
		return fail("unsupported version %d (want %d)", data[4], binaryVersion)
	}
	for _, b := range data[5:16] {
		if b != 0 {
			return fail("nonzero header padding")
		}
	}
	h := sha256.New()
	h.Write(data[:16])

	var kernels []mmapKernel
	off := 16
	for {
		if len(data)-off < 8 {
			return fail("truncated section tag")
		}
		tag := le.Uint64(data[off:])
		switch tag {
		case secKernel:
			secStart := off
			off += 8
			if len(data)-off < 24 {
				return fail("truncated kernel section")
			}
			warps := int64(le.Uint64(data[off:]))
			gap := int64(le.Uint64(data[off+8:]))
			nameLen := le.Uint64(data[off+16:])
			off += 24
			if warps <= 0 || int64(int(warps)) != warps {
				return fail("kernel %d: bad warp count %d", len(kernels), warps)
			}
			if gap < 0 || int64(int(gap)) != gap {
				return fail("kernel %d: bad gap %d", len(kernels), gap)
			}
			if nameLen > maxKernelName {
				return fail("kernel %d: name length %d exceeds %d", len(kernels), nameLen, maxKernelName)
			}
			pad := namePad(int(nameLen))
			if uint64(len(data)-off) < nameLen+uint64(pad) {
				return fail("truncated kernel name")
			}
			name := string(data[off : off+int(nameLen)])
			off += int(nameLen)
			for i := 0; i < pad; i++ {
				if data[off+i] != 0 {
					return fail("kernel %d: nonzero name padding", len(kernels))
				}
			}
			off += pad
			h.Write(data[secStart:off])
			kernels = append(kernels, mmapKernel{info: KernelInfo{
				Name: name, WarpsPerTB: int(warps), ComputeGapCycles: int(gap),
			}})
		case secTB:
			if len(kernels) == 0 {
				return fail("tb section before any kernel section")
			}
			if len(data)-off < 24 {
				return fail("truncated tb section")
			}
			id := int64(le.Uint64(data[off+8:]))
			count := le.Uint64(data[off+16:])
			if int64(int(id)) != id {
				return fail("tb id %d out of range", id)
			}
			k := &kernels[len(kernels)-1]
			if n := len(k.tbs); n > 0 && int(id) <= k.tbs[n-1].id {
				return fail("TB ids must ascend within a kernel (tb %d after %d)", id, k.tbs[n-1].id)
			}
			h.Write(data[off : off+16]) // tag + id; count is not canonical
			off += 24
			if count > uint64(len(data)-off)/recordBytes {
				return fail("truncated tb requests")
			}
			nbytes := int(count) * recordBytes
			recs := data[off : off+nbytes]
			if err := validateRecords(recs); err != nil {
				return fail("tb %d: %v", id, err)
			}
			h.Write(recs)
			k.tbs = append(k.tbs, mmapTB{id: int(id), off: off, n: int(count)})
			off += nbytes
		case secEnd:
			if len(kernels) == 0 {
				return fail("no kernels")
			}
			off += 8
			if len(data)-off < sha256.Size {
				return fail("truncated checksum")
			}
			stored := data[off : off+sha256.Size]
			off += sha256.Size
			if off != len(data) {
				return fail("data after end section")
			}
			sum := h.Sum(nil)
			if !bytes.Equal(sum, stored) {
				return fail("checksum mismatch: content corrupted")
			}
			return kernels, hex.EncodeToString(sum), nil
		default:
			return fail("unknown section tag %d", tag)
		}
	}
}

// readFileFallback loads the whole file when mapping is unavailable.
func readFileFallback(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
