package trace

// Streaming CSV trace decoder. CSVStream parses the package CSV format
// (see io.go) one line at a time and yields request batches without ever
// holding more than one batch in memory, folding the canonical
// record-stream SHA-256 (doc.go) as it goes so network services get a
// content-addressed cache key for free at end of stream — one that a
// binary (VTRC) encoding of the same trace hashes equal to, comments
// and whitespace notwithstanding. ReadCSV and ReadCSVHashed are thin
// adapters that drain a CSVStream into an *App, so the materialized and
// streaming decoders accept and reject inputs identically by
// construction.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
)

// CSVStream is a single-shot streaming decoder of the package CSV trace
// format. It implements both Stream and Source (Stream returns the
// decoder itself; a CSVStream cannot be rewound).
type CSVStream struct {
	sc   *bufio.Scanner
	c    *canonFold
	line int
	err  error // sticky terminal state: io.EOF or a decode error

	kernelIndex int // current kernel ordinal, -1 before the first K record
	kernels     int
	haveTB      bool
	curTB       int

	pendingHdr  *KernelInfo // K record waiting behind a flushed batch
	pendingReq  Request     // first request of the next TB, ditto
	pendingTB   int
	havePending bool

	hdr   KernelInfo
	batch Batch
	reqs  []Request
}

// NewCSVStream starts decoding the CSV trace on r. Decoding is lazy:
// bytes are consumed as batches are pulled.
func NewCSVStream(r io.Reader) *CSVStream {
	cs := newCSVStream(r)
	cs.c = newCanonFold()
	return cs
}

// NewCSVStreamUnhashed decodes without the canonical hash fold, for
// callers that already know the content's identity (SHA256 returns the
// empty hash's digest in that case).
func NewCSVStreamUnhashed(r io.Reader) *CSVStream { return newCSVStream(r) }

func newCSVStream(r io.Reader) *CSVStream {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &CSVStream{sc: sc, kernelIndex: -1, reqs: make([]Request, 0, maxBatchRequests)}
}

// Info returns the metadata of an imported trace, mirroring the
// defaults ReadCSV applies (name/weight are not part of the format).
func (s *CSVStream) Info() SourceInfo {
	return SourceInfo{Name: "imported", Abbr: "IMP", InsnPerAccess: 1}
}

// Stream returns the decoder itself; a CSVStream is single-shot.
func (s *CSVStream) Stream() Stream { return s }

// SHA256 returns the canonical record-stream digest (doc.go) — the
// format-independent identity every container decoder reports for the
// same records. It is the content-addressed identity of the trace once
// Next has returned io.EOF; calling it earlier hashes only the prefix
// decoded so far, and on an unhashed stream it is the digest of no
// bytes.
func (s *CSVStream) SHA256() string {
	if s.c == nil {
		return hex.EncodeToString(sha256.New().Sum(nil))
	}
	return s.c.sumHex()
}

func (s *CSVStream) failf(format string, args ...any) (*Batch, error) {
	s.err = fmt.Errorf(format, args...)
	return nil, s.err
}

// flush emits the buffered requests as one batch, folding them into the
// canonical hash (every emitted batch passes through exactly one of
// flush/emitHeader, so the fold sees each record once, in order).
func (s *CSVStream) flush(tbStart bool) *Batch {
	if s.c != nil {
		if tbStart {
			s.c.tbStart(s.curTB)
		}
		s.c.requests(s.reqs)
	}
	s.batch = Batch{KernelIndex: s.kernelIndex, TBID: s.curTB, TBStart: tbStart, Requests: s.reqs}
	return &s.batch
}

// emitHeader opens a new kernel and returns its header batch.
func (s *CSVStream) emitHeader(hdr KernelInfo) *Batch {
	if s.c != nil {
		s.c.kernel(&hdr)
	}
	s.kernelIndex++
	s.kernels++
	s.haveTB = false
	s.hdr = hdr
	s.batch = Batch{Kernel: &s.hdr, KernelIndex: s.kernelIndex, TBID: -1}
	return &s.batch
}

// Next decodes up to one batch of requests (or one kernel header).
func (s *CSVStream) Next() (*Batch, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.pendingHdr != nil {
		hdr := *s.pendingHdr
		s.pendingHdr = nil
		return s.emitHeader(hdr), nil
	}
	s.reqs = s.reqs[:0]
	tbStart := false
	if s.havePending {
		s.havePending = false
		s.curTB = s.pendingTB
		s.haveTB = true
		tbStart = true
		s.reqs = append(s.reqs, s.pendingReq)
	}
	var fields [8][]byte
	for {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = err
				return nil, err
			}
			if s.kernels == 0 {
				return s.failf("trace csv: no kernels")
			}
			s.err = io.EOF
			if len(s.reqs) > 0 {
				return s.flush(tbStart), nil
			}
			return nil, io.EOF
		}
		s.line++
		text := bytes.TrimSpace(s.sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		nf := splitComma(text, fields[:])
		switch {
		case nf >= 1 && len(fields[0]) == 1 && fields[0][0] == 'K':
			if nf != 4 {
				return s.failf("trace csv line %d: K record needs 4 fields", s.line)
			}
			warps, ok := atoiBytes(fields[2])
			if !ok || warps <= 0 {
				return s.failf("trace csv line %d: bad warp count %q", s.line, fields[2])
			}
			gap, ok := atoiBytes(fields[3])
			if !ok || gap < 0 {
				return s.failf("trace csv line %d: bad gap %q", s.line, fields[3])
			}
			hdr := KernelInfo{Name: string(fields[1]), WarpsPerTB: warps, ComputeGapCycles: gap}
			if len(s.reqs) > 0 {
				s.pendingHdr = &hdr
				return s.flush(tbStart), nil
			}
			return s.emitHeader(hdr), nil
		case nf >= 1 && len(fields[0]) == 1 && fields[0][0] == 'R':
			if s.kernelIndex < 0 {
				return s.failf("trace csv line %d: R record before any K record", s.line)
			}
			if nf != 5 {
				return s.failf("trace csv line %d: R record needs 5 fields", s.line)
			}
			tbID, ok := atoiBytes(fields[1])
			if !ok {
				return s.failf("trace csv line %d: bad tb id %q", s.line, fields[1])
			}
			warp, ok := atoiBytes(fields[2])
			if !ok || warp < 0 || warp > math.MaxInt32 {
				// Warp is an int32 in Request; accepting a wider value here
				// would wrap it negative — unrepresentable in either
				// container and a silent corruption of the trace.
				return s.failf("trace csv line %d: bad warp %q", s.line, fields[2])
			}
			var kind Kind
			switch {
			case len(fields[3]) == 1 && fields[3][0] == 'R':
				kind = Read
			case len(fields[3]) == 1 && fields[3][0] == 'W':
				kind = Write
			default:
				return s.failf("trace csv line %d: bad kind %q", s.line, fields[3])
			}
			addr, ok := hexBytes(fields[4])
			if !ok {
				return s.failf("trace csv line %d: bad address %q", s.line, fields[4])
			}
			req := Request{Addr: addr, Kind: kind, Warp: int32(warp)}
			if !s.haveTB || tbID != s.curTB {
				if s.haveTB && tbID <= s.curTB {
					return s.failf("trace csv line %d: TB ids must ascend within a kernel", s.line)
				}
				if len(s.reqs) > 0 {
					s.havePending = true
					s.pendingReq = req
					s.pendingTB = tbID
					return s.flush(tbStart), nil
				}
				s.curTB = tbID
				s.haveTB = true
				tbStart = true
			}
			s.reqs = append(s.reqs, req)
			if len(s.reqs) >= maxBatchRequests {
				return s.flush(tbStart), nil
			}
		default:
			return s.failf("trace csv line %d: unknown record type %q", s.line, fields[0])
		}
	}
}

// splitComma splits text on commas into dst without allocating; it
// returns the field count, capping at len(dst) (beyond-cap fields only
// matter for "needs N fields" errors, which trip on nf != N anyway).
func splitComma(text []byte, dst [][]byte) int {
	n := 0
	for n < len(dst) {
		i := bytes.IndexByte(text, ',')
		if i < 0 {
			dst[n] = text
			n++
			return n
		}
		dst[n] = text[:i]
		n++
		text = text[i+1:]
	}
	return n
}

// atoiBytes parses a signed decimal integer (optional +/- sign) with
// strconv.Atoi's 64-bit accept set: magnitudes above MaxInt64 are
// rejected like Atoi's range errors, never silently wrapped. (The lone
// divergence is MinInt64 itself, which is rejected; no real trace
// carries it.)
func atoiBytes(b []byte) (int, bool) {
	i := 0
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	// n stays in [0, MaxInt64]: refuse the multiply when it could
	// exceed MaxInt64, and catch the +d wrap via the sign bit.
	const cutoff = math.MaxInt64/10 + 1
	var n int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n >= cutoff {
			return 0, false
		}
		n = n*10 + int64(d)
		if n < 0 {
			return 0, false
		}
	}
	if neg {
		n = -n
	}
	// Reject values that do not survive the int conversion (32-bit
	// platforms), mirroring Atoi's platform-width range errors.
	if int64(int(n)) != n {
		return 0, false
	}
	return int(n), true
}

// hexBytes parses an unsigned hexadecimal integer with exactly
// strconv.ParseUint(s, 16, 64)'s accept set (no sign, no 0x prefix).
func hexBytes(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case '0' <= c && c <= '9':
			d = uint64(c - '0')
		case 'a' <= c && c <= 'f':
			d = uint64(c-'a') + 10
		case 'A' <= c && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		if v>>60 != 0 {
			return 0, false // next shift would overflow 64 bits
		}
		v = v<<4 | d
	}
	return v, true
}
