package trace

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// benchApp is a profiling-shaped trace: a few kernels, many TBs, runs
// of strided addresses — big enough that per-row decode cost dominates
// fixed overhead.
func benchApp() *App {
	app := &App{Name: "bench", Abbr: "BN", InsnPerAccess: 1}
	for k := 0; k < 3; k++ {
		kernel := Kernel{Name: "kernel", WarpsPerTB: 8, ComputeGapCycles: 10}
		for tb := 0; tb < 40; tb++ {
			t := TB{ID: tb}
			for i := 0; i < 512; i++ {
				t.Requests = append(t.Requests, Request{
					Addr: uint64(tb)<<20 | uint64(i)*64,
					Kind: Kind(i & 1),
					Warp: int32(i & 7),
				})
			}
			kernel.TBs = append(kernel.TBs, t)
		}
		app.Kernels = append(app.Kernels, kernel)
	}
	return app
}

// drainStream pulls a stream dry, returning the request count so the
// decode work cannot be optimized away.
func drainStream(b *testing.B, s Stream) int {
	b.Helper()
	n := 0
	for {
		batch, err := s.Next()
		if err == io.EOF {
			return n
		}
		if err != nil {
			b.Fatal(err)
		}
		n += len(batch.Requests)
	}
}

// BenchmarkCSVStream is the baseline the binary container is measured
// against: tokenize + strconv per field, per row.
func BenchmarkCSVStream(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, benchApp()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	rows := benchApp().Requests()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := drainStream(b, NewCSVStream(bytes.NewReader(data))); got != rows {
			b.Fatalf("decoded %d rows, want %d", got, rows)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

// BenchmarkBinaryStream decodes the same trace from the VTRC container:
// fixed-width records, no tokenizing, hash folded over raw bytes.
func BenchmarkBinaryStream(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, benchApp()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	rows := benchApp().Requests()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := drainStream(b, NewBinaryStream(bytes.NewReader(data))); got != rows {
			b.Fatalf("decoded %d rows, want %d", got, rows)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}

// BenchmarkMmapSource streams batches out of an open mapping: the
// steady-state per-batch cost after the one-time open/validate. This is
// the zero-allocation path CI pins (batches alias the mapping).
func BenchmarkMmapSource(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, benchApp()); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.vtrc")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	src, err := OpenMmap(path)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	rows := src.Requests()
	b.SetBytes(int64(src.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := drainStream(b, src.Stream()); got != rows {
			b.Fatalf("decoded %d rows, want %d", got, rows)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rows), "ns/row")
}
