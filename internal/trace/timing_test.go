package trace

import (
	"io"
	"strings"
	"testing"
	"time"
)

// slowStream yields batches after a fixed busy-wait, so stage times are
// measurable and deterministic in ordering.
type slowStream struct {
	inner Stream
	delay time.Duration
}

func (s *slowStream) Next() (*Batch, error) {
	start := time.Now()
	for time.Since(start) < s.delay {
	}
	return s.inner.Next()
}

func TestTimedStreamPassesBatchesThrough(t *testing.T) {
	const csv = "K,k0,2,0\nR,0,0,R,100\nR,0,1,W,200\n"
	want, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimedStream(NewCSVStream(strings.NewReader(csv)), nil, nil)
	got, err := Collect(sourceFunc(func() Stream { return ts }))
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests() != want.Requests() || len(got.Kernels) != len(want.Kernels) {
		t.Fatalf("timed stream changed the trace: %d reqs/%d kernels, want %d/%d",
			got.Requests(), len(got.Kernels), want.Requests(), len(want.Kernels))
	}
	if ts.Elapsed() <= 0 {
		t.Error("Elapsed() = 0 after draining")
	}
}

type sourceFunc func() Stream

func (f sourceFunc) Stream() Stream   { return f() }
func (f sourceFunc) Info() SourceInfo { return SourceInfo{Name: "test", Abbr: "T", InsnPerAccess: 1} }

func TestTimedStreamExclusiveAccounting(t *testing.T) {
	const csv = "K,k0,2,0\nR,0,0,R,100\nR,1,0,R,200\nR,2,0,R,300\n"
	var innerTotal, outerTotal time.Duration
	inner := NewTimedStream(
		&slowStream{inner: NewCSVStream(strings.NewReader(csv)), delay: 2 * time.Millisecond},
		nil,
		func(d time.Duration) { innerTotal += d },
	)
	outer := NewTimedStream(
		&slowStream{inner: inner, delay: 2 * time.Millisecond},
		inner,
		func(d time.Duration) { outerTotal += d },
	)
	for {
		_, err := outer.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if innerTotal <= 0 || outerTotal <= 0 {
		t.Fatalf("stage totals = %v / %v, want both > 0", innerTotal, outerTotal)
	}
	// The outer stage's exclusive time must not swallow the inner
	// stage's busy-wait: each stage waits ~2ms per pull, so exclusive
	// totals should be commensurate, not 2:1 nested double counting.
	if outerTotal > innerTotal*3 || innerTotal > outerTotal*3 {
		t.Errorf("exclusive stage times look nested, not exclusive: inner=%v outer=%v", innerTotal, outerTotal)
	}
	if got := outer.Elapsed(); got < innerTotal {
		t.Errorf("outer inclusive %v < inner exclusive %v", got, innerTotal)
	}
}
