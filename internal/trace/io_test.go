package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleApp() *App {
	return &App{Name: "s", Abbr: "S", InsnPerAccess: 3, Kernels: []Kernel{
		{Name: "k0", WarpsPerTB: 2, ComputeGapCycles: 11, TBs: []TB{
			{ID: 0, Requests: []Request{
				{Addr: 0x1000, Kind: Read, Warp: 0},
				{Addr: 0x2040, Kind: Write, Warp: 1},
			}},
			{ID: 2, Requests: []Request{{Addr: 0xFFFF40, Kind: Read, Warp: 0}}},
		}},
		{Name: "k1", WarpsPerTB: 1, ComputeGapCycles: 5, TBs: []TB{
			{ID: 0, Requests: []Request{{Addr: 0x40, Kind: Read, Warp: 0}}},
		}},
	}}
}

func TestCSVRoundTrip(t *testing.T) {
	app := sampleApp()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, app); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(back.Kernels))
	}
	for ki := range app.Kernels {
		a, b := &app.Kernels[ki], &back.Kernels[ki]
		if a.Name != b.Name || a.WarpsPerTB != b.WarpsPerTB || a.ComputeGapCycles != b.ComputeGapCycles {
			t.Errorf("kernel %d metadata differs: %+v vs %+v", ki, a, b)
		}
		if len(a.TBs) != len(b.TBs) {
			t.Fatalf("kernel %d TB count differs", ki)
		}
		for ti := range a.TBs {
			if a.TBs[ti].ID != b.TBs[ti].ID {
				t.Errorf("TB id differs: %d vs %d", a.TBs[ti].ID, b.TBs[ti].ID)
			}
			for ri := range a.TBs[ti].Requests {
				if a.TBs[ti].Requests[ri] != b.TBs[ti].Requests[ri] {
					t.Errorf("request differs: %+v vs %+v",
						a.TBs[ti].Requests[ri], b.TBs[ti].Requests[ri])
				}
			}
		}
	}
	if err := back.Validate(30); err != nil {
		t.Errorf("round-tripped app invalid: %v", err)
	}
}

func TestReadCSVHandWritten(t *testing.T) {
	in := `# comment and blank lines are fine

K,mykernel,4,100
R,0,0,R,1000
R,0,1,W,2040
R,3,0,R,ff80
`
	app, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if app.Requests() != 3 {
		t.Errorf("requests = %d", app.Requests())
	}
	k := app.Kernels[0]
	if k.WarpsPerTB != 4 || k.ComputeGapCycles != 100 {
		t.Errorf("kernel meta = %+v", k)
	}
	if k.TBs[1].ID != 3 || k.TBs[1].Requests[0].Addr != 0xff80 {
		t.Errorf("TB 3 wrong: %+v", k.TBs[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",                                // no kernels
		"R,0,0,R,1000\n",                  // request before kernel
		"K,k,0,10\nR,0,0,R,10\n",          // zero warps
		"K,k,1,-5\n",                      // negative gap
		"K,k,1\n",                         // short K record
		"K,k,1,1\nR,0,0,X,10\n",           // bad kind
		"K,k,1,1\nR,0,0,R,zz\n",           // bad address
		"K,k,1,1\nR,5,0,R,0\nR,2,0,R,0\n", // descending TB ids
		"K,k,1,1\nQ,1,2\n",                // unknown record
		"K,k,1,1\nR,0,0,R\n",              // short R record
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("accepted bad input %q", s)
		}
	}
}
