package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// drainApp fully coalesces/streams src into an App, failing the test on
// stream errors.
func drainApp(t *testing.T, s Stream, info SourceInfo) *App {
	t.Helper()
	app, err := CollectStream(s, info)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return app
}

func TestAppSourceRoundTrip(t *testing.T) {
	app := sampleApp()
	src := AppSource(app)
	if src.Info().Name != "s" || src.Info().Abbr != "S" || src.Info().InsnPerAccess != 3 {
		t.Errorf("info = %+v", src.Info())
	}
	back := drainApp(t, src.Stream(), src.Info())
	if !reflect.DeepEqual(app, back) {
		t.Errorf("round trip differs:\n%+v\nvs\n%+v", app, back)
	}
	// Sources restart: a second pass yields the same trace.
	again := drainApp(t, src.Stream(), src.Info())
	if !reflect.DeepEqual(app, again) {
		t.Error("second pass differs from first")
	}
}

func TestAppStreamBatchShape(t *testing.T) {
	app := sampleApp()
	st := AppSource(app).Stream()
	var headers, tbStarts int
	lastKernel := -1
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Kernel != nil {
			headers++
			if b.TBID != -1 || len(b.Requests) != 0 {
				t.Errorf("header batch carries requests: %+v", b)
			}
			if b.KernelIndex != lastKernel+1 {
				t.Errorf("kernel index %d after %d", b.KernelIndex, lastKernel)
			}
			lastKernel = b.KernelIndex
			continue
		}
		if b.TBStart {
			tbStarts++
		}
		if b.KernelIndex != lastKernel {
			t.Errorf("request batch kernel %d, header said %d", b.KernelIndex, lastKernel)
		}
	}
	if headers != 2 || tbStarts != 3 {
		t.Errorf("headers=%d tbStarts=%d, want 2 and 3", headers, tbStarts)
	}
}

// TestAppStreamSplitsLargeTBs checks that TBs above the batch cap are
// chunked with TBStart only on the first chunk.
func TestAppStreamSplitsLargeTBs(t *testing.T) {
	reqs := make([]Request, maxBatchRequests+10)
	for i := range reqs {
		reqs[i] = Request{Addr: uint64(i) * 64}
	}
	app := &App{Kernels: []Kernel{{Name: "k", WarpsPerTB: 1, TBs: []TB{{ID: 0, Requests: reqs}}}}}
	st := AppSource(app).Stream()
	var starts, chunks, total int
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Kernel != nil {
			continue
		}
		chunks++
		total += len(b.Requests)
		if b.TBStart {
			starts++
		}
	}
	if chunks != 2 || starts != 1 || total != len(reqs) {
		t.Errorf("chunks=%d starts=%d total=%d", chunks, starts, total)
	}
	back := drainApp(t, AppSource(app).Stream(), SourceInfo{})
	if !reflect.DeepEqual(app.Kernels, back.Kernels) {
		t.Error("chunked TB did not reassemble")
	}
}

// TestCoalesceStreamMatchesCoalesceApp is the streaming-coalescer golden
// test: the streamed transactions must equal CoalesceApp's exactly, even
// when TBs are split across batches.
func TestCoalesceStreamMatchesCoalesceApp(t *testing.T) {
	app := sampleApp()
	// Add a TB with warp runs, duplicate lines and a run that would span
	// chunk boundaries.
	big := TB{ID: 9}
	for w := int32(0); w < 3; w++ {
		for i := 0; i < 200; i++ {
			big.Requests = append(big.Requests, Request{Addr: uint64(i%5) * 32, Kind: Read, Warp: w})
		}
		big.Requests = append(big.Requests, Request{Addr: 1 << 20, Kind: Write, Warp: w})
	}
	app.Kernels[0].TBs = append(app.Kernels[0].TBs, big)

	for _, lineBytes := range []int{0, 64, 128, 512} {
		want := CoalesceApp(app, lineBytes)
		got := drainApp(t, CoalesceStream(AppSource(app).Stream(), lineBytes), AppSource(app).Info())
		if !reflect.DeepEqual(want.Kernels, got.Kernels) {
			t.Errorf("lineBytes=%d: streamed coalesce differs from CoalesceApp", lineBytes)
		}
	}
}

func TestCSVStreamMatchesReadCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleApp()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	want, wantSum, err := func() (*App, string, error) { return ReadCSVHashed(bytes.NewReader(data)) }()
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCSVStream(bytes.NewReader(data))
	got := drainApp(t, cs, cs.Info())
	if !reflect.DeepEqual(want, got) {
		t.Errorf("streamed decode differs:\n%+v\nvs\n%+v", want, got)
	}
	if cs.SHA256() != wantSum {
		t.Errorf("incremental hash %s != teed hash %s", cs.SHA256(), wantSum)
	}
	// The unhashed variant decodes identically, minus the digest.
	cu := NewCSVStreamUnhashed(bytes.NewReader(data))
	unhashed := drainApp(t, cu, cu.Info())
	if !reflect.DeepEqual(want, unhashed) {
		t.Error("unhashed decode differs from hashed decode")
	}
	if cu.SHA256() == wantSum {
		t.Error("unhashed stream must not claim the content digest")
	}
}

// malformedCSVCases is the malformed-input parity corpus — truncated
// rows, non-numeric addresses, bad kind tokens, structural violations.
// Shared between TestCSVDecodersRejectIdentically and the fuzz seeds
// (FuzzCSVStreamParity).
var malformedCSVCases = []struct {
	name, in string
}{
	{"empty", ""},
	{"comments only", "# nothing\n\n"},
	{"request before kernel", "R,0,0,R,1000\n"},
	{"truncated K", "K,k,1\n"},
	{"overlong K", "K,k,1,1,9\n"},
	{"zero warps", "K,k,0,10\nR,0,0,R,10\n"},
	{"non-numeric warps", "K,k,two,10\n"},
	{"negative gap", "K,k,1,-5\n"},
	{"non-numeric gap", "K,k,1,x\n"},
	{"truncated R", "K,k,1,1\nR,0,0,R\n"},
	{"overlong R", "K,k,1,1\nR,0,0,R,10,extra\n"},
	{"non-numeric tb id", "K,k,1,1\nR,abc,0,R,10\n"},
	{"overflowing tb id", "K,k,1,1\nR,18446744073709551616,0,R,10\n"},
	{"overflowing warp", "K,k,1,1\nR,0,99999999999999999999,R,10\n"},
	{"int32-wrapping warp", "K,k,1,1\nR,0,3000000000,R,10\n"}, // would wrap negative in Request.Warp
	{"non-numeric warp", "K,k,1,1\nR,0,w,R,10\n"},
	{"negative warp", "K,k,1,1\nR,0,-1,R,10\n"},
	{"bad kind token", "K,k,1,1\nR,0,0,X,10\n"},
	{"lowercase kind", "K,k,1,1\nR,0,0,r,10\n"},
	{"non-hex address", "K,k,1,1\nR,0,0,R,zz\n"},
	{"empty address", "K,k,1,1\nR,0,0,R,\n"},
	{"0x-prefixed address", "K,k,1,1\nR,0,0,R,0x10\n"},
	{"overflow address", "K,k,1,1\nR,0,0,R,1ffffffffffffffff\n"},
	{"descending TB ids", "K,k,1,1\nR,5,0,R,0\nR,2,0,R,0\n"},
	{"repeated TB id", "K,k,1,1\nR,1,0,R,0\nR,2,0,R,0\nR,1,0,R,4\n"},
	{"unknown record", "K,k,1,1\nQ,1,2\n"},
	{"empty record type", "K,k,1,1\n,1,2\n"},
}

// acceptCSVCases are valid-but-unusual inputs both decoders must accept
// identically; also fuzz seeds.
var acceptCSVCases = []string{
	"K,k,1,1\nR,0,0,R,10\n",
	"K, k with spaces ,4,0\nR,0,3,W,FFff\n",
	"K,k,1,1\nK,k2,2,2\nR,7,1,R,0\n",          // empty first kernel
	"K,k,+2,+3\nR,+1,+0,R,abc\n",              // explicit plus signs (Atoi accepts)
	"K,k,1,1\nR,9223372036854775807,0,R,10\n", // max-int64 TB id parses, no wrap
	"  K,k,1,1  \n\n# c\n R,0,0,R,40 \n",
}

// TestCSVDecodersRejectIdentically feeds the malformed corpus to both
// the materialized and the streaming decoder and requires the exact
// same rejection (same error text) from both.
func TestCSVDecodersRejectIdentically(t *testing.T) {
	for _, tc := range malformedCSVCases {
		t.Run(tc.name, func(t *testing.T) {
			_, matErr := ReadCSV(strings.NewReader(tc.in))
			if matErr == nil {
				t.Fatalf("materialized decoder accepted %q", tc.in)
			}
			cs := NewCSVStream(strings.NewReader(tc.in))
			var streamErr error
			for {
				_, err := cs.Next()
				if err != nil {
					if err != io.EOF {
						streamErr = err
					}
					break
				}
			}
			if streamErr == nil {
				t.Fatalf("streaming decoder accepted %q", tc.in)
			}
			if matErr.Error() != streamErr.Error() {
				t.Errorf("decoders disagree:\n  materialized: %v\n  streaming:    %v", matErr, streamErr)
			}
		})
	}
}

// TestCSVDecodersAcceptIdentically checks that valid-but-unusual inputs
// decode to the same trace through both decoders.
func TestCSVDecodersAcceptIdentically(t *testing.T) {
	for _, in := range acceptCSVCases {
		want, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			t.Fatalf("materialized decoder rejected %q: %v", in, err)
		}
		cs := NewCSVStream(strings.NewReader(in))
		got, err := CollectStream(cs, cs.Info())
		if err != nil {
			t.Fatalf("streaming decoder rejected %q: %v", in, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("decoders disagree on %q:\n%+v\nvs\n%+v", in, want, got)
		}
	}
}

// TestCSVStreamErrorSticky: after a decode error, Next keeps returning
// the same error instead of resuming mid-trace.
func TestCSVStreamErrorSticky(t *testing.T) {
	cs := NewCSVStream(strings.NewReader("K,k,1,1\nR,0,0,X,10\nR,1,0,R,10\n"))
	var first error
	for {
		_, err := cs.Next()
		if err != nil {
			first = err
			break
		}
	}
	if first == nil || first == io.EOF {
		t.Fatalf("expected decode error, got %v", first)
	}
	if _, err := cs.Next(); err != first {
		t.Errorf("error not sticky: %v then %v", first, err)
	}
}

// TestCSVStreamBatchTBBoundaries: batches never mix TBs and flag starts.
func TestCSVStreamBatchTBBoundaries(t *testing.T) {
	in := "K,k,2,0\n" +
		"R,0,0,R,10\nR,0,1,R,20\n" +
		"R,3,0,W,30\n" +
		"K,k2,1,0\n" +
		"R,0,0,R,40\n"
	cs := NewCSVStream(strings.NewReader(in))
	type rec struct {
		kernel int
		tb     int
		start  bool
		header bool
		reqs   int
	}
	var got []rec
	for {
		b, err := cs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec{b.KernelIndex, b.TBID, b.TBStart, b.Kernel != nil, len(b.Requests)})
	}
	want := []rec{
		{0, -1, false, true, 0},
		{0, 0, true, false, 2},
		{0, 3, true, false, 1},
		{1, -1, false, true, 0},
		{1, 0, true, false, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batch shape:\n got %+v\nwant %+v", got, want)
	}
}

// TestCollectStreamHeaderless: streams that violate the header-first
// convention get an implicit kernel, matching the streaming profiler's
// tolerance, instead of silently dropping requests.
func TestCollectStreamHeaderless(t *testing.T) {
	st := &sliceStream{batches: []Batch{
		{TBID: 0, TBStart: true, Requests: []Request{{Addr: 0x40}}},
		{TBID: 1, TBStart: true, Requests: []Request{{Addr: 0x80}, {Addr: 0xc0}}},
	}}
	app, err := CollectStream(st, SourceInfo{Name: "headerless"})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Kernels) != 1 || len(app.Kernels[0].TBs) != 2 || app.Requests() != 3 {
		t.Errorf("headerless collect = %d kernels, %d requests", len(app.Kernels), app.Requests())
	}
}

type sliceStream struct {
	batches []Batch
	i       int
}

func (s *sliceStream) Next() (*Batch, error) {
	if s.i >= len(s.batches) {
		return nil, io.EOF
	}
	b := &s.batches[s.i]
	s.i++
	return b, nil
}
