//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

// mapFile on platforms without syscall.Mmap reads the file into memory;
// MmapSource semantics are unchanged, only residency differs.
func mapFile(path string) ([]byte, func() error, error) {
	return readFileFallback(path)
}
