// Core trace representation: Request, TB, Kernel, App. The package
// documentation lives in doc.go.
package trace

import "fmt"

// Kind distinguishes loads from stores.
type Kind uint8

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Request is one per-thread memory access before coalescing.
type Request struct {
	// Addr is the physical byte address (within the layout's bit width).
	Addr uint64
	// Kind is Read or Write.
	Kind Kind
	// Warp is the warp index within the TB that issues the access.
	Warp int32
}

// TB holds the memory requests of one Thread Block in issue order.
type TB struct {
	// ID is the TB's linear identifier within its kernel; the TB
	// scheduler dispatches TBs in ascending ID order.
	ID int
	// Requests lists every per-thread access of the TB.
	Requests []Request
}

// Kernel is one kernel launch.
type Kernel struct {
	// Name identifies the kernel within the application.
	Name string
	// TBs lists the kernel's thread blocks in dispatch order.
	TBs []TB
	// WarpsPerTB is the number of warps each TB occupies on an SM.
	WarpsPerTB int
	// ComputeGapCycles is the mean number of SM cycles a warp computes
	// between two consecutive memory instructions; it paces request
	// issue and encodes the benchmark's arithmetic intensity.
	ComputeGapCycles int
}

// Requests counts the kernel's memory requests.
func (k *Kernel) Requests() int {
	n := 0
	for i := range k.TBs {
		n += len(k.TBs[i].Requests)
	}
	return n
}

// App is a complete application trace.
//
// An App is immutable once built: every consumer — the entropy
// analyzer, gpusim.Runner.Run, the service's sweep cells — treats it as
// strictly read-only, which is what lets one build be shared across
// concurrent simulations (the service builds each workload trace once
// per sweep and hands the same pointer to every scheme cell; gpusim's
// TestRunLeavesTraceUntouched pins the contract).
type App struct {
	// Name is the full benchmark name, Abbr the paper's abbreviation.
	Name string
	Abbr string
	// Kernels run back to back; TBs of different kernels never coexist.
	Kernels []Kernel
	// Valley records whether the paper classifies the workload as an
	// entropy-valley benchmark (Table II top group).
	Valley bool
	// InsnPerAccess approximates dynamic instructions per memory access
	// and drives APKI accounting (Table II).
	InsnPerAccess float64
}

// Requests counts all memory requests in the application.
func (a *App) Requests() int {
	n := 0
	for i := range a.Kernels {
		n += a.Kernels[i].Requests()
	}
	return n
}

// Instructions estimates the dynamic instruction count.
func (a *App) Instructions() int64 {
	return int64(float64(a.Requests()) * a.InsnPerAccess)
}

// Validate checks structural invariants: non-empty kernels, positive warp
// counts, ascending TB IDs, and addresses inside the given bit width.
func (a *App) Validate(addrBits int) error {
	if len(a.Kernels) == 0 {
		return fmt.Errorf("trace %s: no kernels", a.Abbr)
	}
	limit := uint64(1) << uint(addrBits)
	for ki := range a.Kernels {
		k := &a.Kernels[ki]
		if len(k.TBs) == 0 {
			return fmt.Errorf("trace %s kernel %s: no TBs", a.Abbr, k.Name)
		}
		if k.WarpsPerTB <= 0 {
			return fmt.Errorf("trace %s kernel %s: WarpsPerTB=%d", a.Abbr, k.Name, k.WarpsPerTB)
		}
		prev := -1
		for ti := range k.TBs {
			tb := &k.TBs[ti]
			if tb.ID <= prev {
				return fmt.Errorf("trace %s kernel %s: TB IDs not ascending at %d", a.Abbr, k.Name, tb.ID)
			}
			prev = tb.ID
			for _, r := range tb.Requests {
				if r.Addr >= limit {
					return fmt.Errorf("trace %s kernel %s TB %d: address %#x exceeds %d bits", a.Abbr, k.Name, tb.ID, r.Addr, addrBits)
				}
				if int(r.Warp) >= k.WarpsPerTB || r.Warp < 0 {
					return fmt.Errorf("trace %s kernel %s TB %d: warp %d out of range", a.Abbr, k.Name, tb.ID, r.Warp)
				}
			}
		}
	}
	return nil
}
