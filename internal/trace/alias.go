package trace

import "unsafe"

// canAliasRequests reports whether Request's in-memory layout matches
// the on-disk VTRC record bit for bit on this platform: 16 bytes, Addr
// at offset 0, Kind at 8, Warp at 12, little-endian integers. When it
// does, validated record bytes can be served as []Request without any
// decode or copy at all.
var canAliasRequests = func() bool {
	var r Request
	if unsafe.Sizeof(r) != recordBytes {
		return false
	}
	if unsafe.Offsetof(r.Addr) != 0 || unsafe.Offsetof(r.Kind) != 8 || unsafe.Offsetof(r.Warp) != 12 {
		return false
	}
	x := uint32(0x01020304)
	return *(*byte)(unsafe.Pointer(&x)) == 0x04 // little-endian
}()

// aliasRequests reinterprets raw — whole, already-validated VTRC
// request records — as a []Request without copying. ok is false when
// the platform layout does not match or raw is not aligned for Request;
// callers then fall back to copyRecords, so big-endian or
// exotically-padded platforms stay correct, just not zero-copy. The
// result aliases raw: it is read-only (the package-wide batch contract
// already forbids mutation) and lives only as long as raw does.
func aliasRequests(raw []byte) ([]Request, bool) {
	if !canAliasRequests {
		return nil, false
	}
	n := len(raw) / recordBytes
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(raw))
	if uintptr(p)%unsafe.Alignof(Request{}) != 0 {
		return nil, false
	}
	return unsafe.Slice((*Request)(p), n), true
}
