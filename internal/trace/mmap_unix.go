//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package trace

import (
	"fmt"
	"os"
	"syscall"

	"valleymap/internal/fault"
)

// mapFile maps path read-only and returns the mapping plus its release
// func. The file descriptor is closed immediately — the mapping
// outlives it. Filesystems that refuse mmap fall back to reading the
// file into memory; the MmapOpen fault point forces that same fallback
// so chaos tests can exercise it on filesystems where mmap works.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; an empty file is simply an
		// invalid trace, let the parser say so.
		return []byte{}, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("trace binary: %s: size %d exceeds the address space", path, size)
	}
	if fault.Fail(fault.MmapOpen) {
		return readFileFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return readFileFallback(path)
	}
	// Trace parsing is one front-to-back pass over the mapping, so tell
	// the kernel to read ahead aggressively (SEQUENTIAL) and start
	// faulting pages in now (WILLNEED) instead of one page-fault stall
	// at a time. Purely advisory: a kernel that refuses changes nothing
	// about correctness, so the errors are deliberately ignored.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	_ = syscall.Madvise(data, syscall.MADV_WILLNEED)
	return data, func() error { return syscall.Munmap(data) }, nil
}
