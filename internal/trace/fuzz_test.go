package trace

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

// FuzzCSVStreamParity holds the materialized and streaming CSV decoders
// to identical accept/reject behavior on arbitrary inputs, and to never
// panicking. ReadCSV is today a draining adapter over CSVStream — the
// fuzz target pins that equivalence as a contract, so a future
// reimplementation of either path (a faster materialized parser, a
// stricter streaming one) cannot silently diverge on inputs no table
// test thought of. It also cross-checks the hashed and unhashed stream
// variants, the incremental digest, and error stickiness.
//
// Seeded from the malformed-input parity corpus plus the
// valid-but-unusual accept corpus (stream_test.go).
func FuzzCSVStreamParity(f *testing.F) {
	for _, tc := range malformedCSVCases {
		f.Add(tc.in)
	}
	for _, in := range acceptCSVCases {
		f.Add(in)
	}
	// A few shapes the corpora do not cover: huge fields, NUL bytes,
	// carriage returns, a comment between records of one TB.
	f.Add("K,k,1,1\nR,0,0,R," + strings.Repeat("f", 64) + "\n")
	f.Add("K,k\x00,1,1\nR,0,0,R,10\n")
	f.Add("K,k,1,1\r\nR,0,0,R,10\r\n")
	f.Add("K,k,1,1\nR,0,0,R,10\n# mid\nR,0,1,W,20\n")

	f.Fuzz(func(t *testing.T, in string) {
		// Materialized decode (drains a fresh hashed stream internally).
		matApp, matErr := ReadCSV(strings.NewReader(in))

		// Streaming decode, batch by batch, hashed variant.
		cs := NewCSVStream(strings.NewReader(in))
		var streamErr error
		for {
			_, err := cs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
		}

		// Accept/reject parity, with identical error text.
		if (matErr == nil) != (streamErr == nil) {
			t.Fatalf("decoders disagree on %q:\n  materialized: %v\n  streaming:    %v", in, matErr, streamErr)
		}
		if matErr != nil {
			if matErr.Error() != streamErr.Error() {
				t.Fatalf("error text diverged on %q:\n  materialized: %v\n  streaming:    %v", in, matErr, streamErr)
			}
			// Errors are sticky: the stream must not resume mid-trace.
			if _, err := cs.Next(); err == nil || err == io.EOF || err.Error() != streamErr.Error() {
				t.Fatalf("stream error not sticky on %q: %v then %v", in, streamErr, err)
			}
			return
		}

		// On accept: the hashed digest equals ReadCSVHashed's, and the
		// unhashed variant decodes the same trace.
		_, wantSum, err := ReadCSVHashed(strings.NewReader(in))
		if err != nil {
			t.Fatalf("ReadCSVHashed rejected input ReadCSV accepted: %q: %v", in, err)
		}
		if got := cs.SHA256(); got != wantSum {
			t.Fatalf("incremental hash %s != ReadCSVHashed %s on %q", got, wantSum, in)
		}
		cu := NewCSVStreamUnhashed(strings.NewReader(in))
		unhashed, err := CollectStream(cu, cu.Info())
		if err != nil {
			t.Fatalf("unhashed stream rejected accepted input %q: %v", in, err)
		}
		if !reflect.DeepEqual(matApp, unhashed) {
			t.Fatalf("hashed and unhashed decodes differ on %q", in)
		}
	})
}
