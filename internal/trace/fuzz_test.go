package trace

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// FuzzCSVStreamParity holds the materialized and streaming CSV decoders
// to identical accept/reject behavior on arbitrary inputs, and to never
// panicking. ReadCSV is today a draining adapter over CSVStream — the
// fuzz target pins that equivalence as a contract, so a future
// reimplementation of either path (a faster materialized parser, a
// stricter streaming one) cannot silently diverge on inputs no table
// test thought of. It also cross-checks the hashed and unhashed stream
// variants, the incremental digest, and error stickiness.
//
// Seeded from the malformed-input parity corpus plus the
// valid-but-unusual accept corpus (stream_test.go).
func FuzzCSVStreamParity(f *testing.F) {
	for _, tc := range malformedCSVCases {
		f.Add(tc.in)
	}
	for _, in := range acceptCSVCases {
		f.Add(in)
	}
	// A few shapes the corpora do not cover: huge fields, NUL bytes,
	// carriage returns, a comment between records of one TB.
	f.Add("K,k,1,1\nR,0,0,R," + strings.Repeat("f", 64) + "\n")
	f.Add("K,k\x00,1,1\nR,0,0,R,10\n")
	f.Add("K,k,1,1\r\nR,0,0,R,10\r\n")
	f.Add("K,k,1,1\nR,0,0,R,10\n# mid\nR,0,1,W,20\n")

	f.Fuzz(func(t *testing.T, in string) {
		// Materialized decode (drains a fresh hashed stream internally).
		matApp, matErr := ReadCSV(strings.NewReader(in))

		// Streaming decode, batch by batch, hashed variant.
		cs := NewCSVStream(strings.NewReader(in))
		var streamErr error
		for {
			_, err := cs.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
		}

		// Accept/reject parity, with identical error text.
		if (matErr == nil) != (streamErr == nil) {
			t.Fatalf("decoders disagree on %q:\n  materialized: %v\n  streaming:    %v", in, matErr, streamErr)
		}
		if matErr != nil {
			if matErr.Error() != streamErr.Error() {
				t.Fatalf("error text diverged on %q:\n  materialized: %v\n  streaming:    %v", in, matErr, streamErr)
			}
			// Errors are sticky: the stream must not resume mid-trace.
			if _, err := cs.Next(); err == nil || err == io.EOF || err.Error() != streamErr.Error() {
				t.Fatalf("stream error not sticky on %q: %v then %v", in, streamErr, err)
			}
			return
		}

		// On accept: the hashed digest equals ReadCSVHashed's, and the
		// unhashed variant decodes the same trace.
		_, wantSum, err := ReadCSVHashed(strings.NewReader(in))
		if err != nil {
			t.Fatalf("ReadCSVHashed rejected input ReadCSV accepted: %q: %v", in, err)
		}
		if got := cs.SHA256(); got != wantSum {
			t.Fatalf("incremental hash %s != ReadCSVHashed %s on %q", got, wantSum, in)
		}
		cu := NewCSVStreamUnhashed(strings.NewReader(in))
		unhashed, err := CollectStream(cu, cu.Info())
		if err != nil {
			t.Fatalf("unhashed stream rejected accepted input %q: %v", in, err)
		}
		if !reflect.DeepEqual(matApp, unhashed) {
			t.Fatalf("hashed and unhashed decodes differ on %q", in)
		}
	})
}

// FuzzTraceFormatParity is the three-way container parity fuzz: the
// same bytes are fed to every decode path of both trace formats, and
// all views of a trace must agree.
//
// Binary side (data as a VTRC image): the streaming decoder
// (BinaryStream), the materialized adapter (ReadBinary) and the mmap
// index walker (parseBinary/MmapSource) must agree on accept/reject;
// on accept they must yield identical records, the canonical hash must
// equal the end-section checksum, a materialized re-encode must be
// bit-identical, and CanonicalHash over the decoded App must agree —
// so a trace's identity survives any decode → materialize → re-encode
// cycle. Damaged input fails cleanly (prefixed error, sticky, no
// panic).
//
// CSV side (data as CSV text): any CSV-accepted trace must encode to
// binary, decode back to the same App, and hash identically through
// both containers — the invariant valleyd's cache relies on when a CSV
// upload and its tracepack conversion share a cache entry.
//
// Seeded from the malformed/accept CSV corpora, a valid binary
// encoding, its truncations, and the corrupt binary corpus
// (binary_test.go).
func FuzzTraceFormatParity(f *testing.F) {
	for _, tc := range malformedCSVCases {
		f.Add([]byte(tc.in))
	}
	for _, in := range acceptCSVCases {
		f.Add([]byte(in))
	}
	base := encodeBinary(f, sampleApp())
	f.Add(base)
	for _, n := range []int{0, 4, 15, 16, 17, 24, 40, len(base) - 1} {
		if n >= 0 && n <= len(base) {
			f.Add(base[:n])
		}
	}
	for _, data := range corruptBinaryCases(f) {
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		binaryParity(t, data)
		csvToBinaryParity(t, data)
	})
}

// binaryParity holds the three binary decode paths to identical
// behavior on one input.
func binaryParity(t *testing.T, data []byte) {
	bs := NewBinaryStream(bytes.NewReader(data))
	matApp, streamErr := CollectStream(bs, bs.Info())
	_, _, mmapErr := parseBinary(data)

	if (streamErr == nil) != (mmapErr == nil) {
		t.Fatalf("binary decoders disagree on accept/reject:\n  streaming: %v\n  mmap:      %v", streamErr, mmapErr)
	}
	if streamErr != nil {
		if !strings.HasPrefix(streamErr.Error(), "trace binary: ") {
			t.Fatalf("unprefixed streaming error: %v", streamErr)
		}
		if !strings.HasPrefix(mmapErr.Error(), "trace binary: ") {
			t.Fatalf("unprefixed mmap error: %v", mmapErr)
		}
		// Errors are sticky: the stream must not resume mid-trace.
		if _, err := bs.Next(); err == nil || err == io.EOF || err.Error() != streamErr.Error() {
			t.Fatalf("stream error not sticky: %v then %v", streamErr, err)
		}
		return
	}

	sum := bs.SHA256()
	src, err := newMmapSource(data, nil)
	if err != nil {
		t.Fatalf("newMmapSource rejected input parseBinary accepted: %v", err)
	}
	if src.SHA256() != sum {
		t.Fatalf("mmap hash %s != stream hash %s", src.SHA256(), sum)
	}
	mmApp, err := CollectStream(src.Stream(), src.Info())
	if err != nil {
		t.Fatalf("mmap stream errored on accepted input: %v", err)
	}
	if !reflect.DeepEqual(matApp, mmApp) {
		t.Fatal("streaming and mmap decodes differ")
	}

	// Third way: the materialized App hashes and re-encodes identically.
	appSum, err := CanonicalHash(AppSource(matApp))
	if err != nil {
		t.Fatal(err)
	}
	if appSum != sum {
		t.Fatalf("materialized hash %s != decode hash %s", appSum, sum)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, matApp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("re-encode of accepted input is not bit-identical")
	}
}

// csvToBinaryParity checks that any CSV-accepted trace crosses the
// container boundary losslessly: same App, same canonical hash.
func csvToBinaryParity(t *testing.T, data []byte) {
	in := string(data)
	matApp, _, err := ReadCSVHashed(strings.NewReader(in))
	if err != nil {
		return // CSV rejection parity is FuzzCSVStreamParity's job
	}
	cs := NewCSVStream(strings.NewReader(in))
	if _, err := CollectStream(cs, cs.Info()); err != nil {
		t.Fatalf("streaming CSV decoder rejected accepted input %q: %v", in, err)
	}
	csvSum := cs.SHA256()

	var buf bytes.Buffer
	if err := WriteBinary(&buf, matApp); err != nil {
		t.Fatal(err)
	}
	binApp, binSum, err := ReadBinaryHashed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("binary decoder rejected the encoding of CSV-accepted %q: %v", in, err)
	}
	if binSum != csvSum {
		t.Fatalf("binary hash %s != csv hash %s for %q", binSum, csvSum, in)
	}
	if !reflect.DeepEqual(matApp, binApp) {
		t.Fatalf("trace changed crossing containers on %q", in)
	}
}
