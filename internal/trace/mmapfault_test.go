//go:build faultinject

package trace

// Chaos coverage for the mmap seam: forcing the MmapOpen fault point
// must route OpenMmap through its copy-read fallback with identical
// results, on a filesystem where mmap itself works fine.

import (
	"testing"

	"valleymap/internal/fault"
)

func TestMmapOpenFaultFallsBack(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)

	data := encodeBinary(t, sampleApp())
	path := writeTempTrace(t, data)

	ref, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	refHash := ref.SHA256()
	refReqs := ref.Requests()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	fault.InjectFail(fault.MmapOpen, 1.0)
	src, err := OpenMmap(path)
	if err != nil {
		t.Fatalf("OpenMmap with forced fallback: %v", err)
	}
	defer src.Close()
	if got := fault.Fired(fault.MmapOpen); got == 0 {
		t.Fatal("MmapOpen fault point never fired — the seam is dead")
	}
	if src.SHA256() != refHash {
		t.Errorf("fallback hash %s != mmap hash %s", src.SHA256(), refHash)
	}
	if src.Requests() != refReqs {
		t.Errorf("fallback Requests() = %d, want %d", src.Requests(), refReqs)
	}
}
