package trace

// Streaming trace representation: instead of materializing an *App
// (O(trace) memory), a trace can be produced and consumed as a Stream of
// small request batches with explicit kernel and TB boundaries. The
// entropy analysis is a one-pass computation over TBs in dispatch order
// (Section III), so the whole profiling pipeline — generate/decode →
// coalesce → profile — runs at memory bounded by the batch size and the
// entropy window, independent of trace length.
//
// Conventions shared by every Stream in this package:
//
//   - The first batch of each kernel is a header-only batch: Kernel is
//     non-nil, Requests is empty and TBID is -1.
//   - Request batches follow with Kernel == nil; all requests of one
//     batch belong to a single TB, TBs arrive in dispatch order, and the
//     first batch of a TB has TBStart set. A TB may span several batches.
//   - A batch (and its Requests slice) is only valid until the next call
//     to Next; consumers must copy what they retain and must not mutate
//     the slice (sources may alias long-lived memory).

import "io"

// KernelInfo is the per-kernel metadata carried by a kernel header batch
// (the streaming counterpart of Kernel minus its TBs).
type KernelInfo struct {
	Name             string
	WarpsPerTB       int
	ComputeGapCycles int
}

// SourceInfo is the application-level metadata of a streamed trace (the
// streaming counterpart of App minus its kernels).
type SourceInfo struct {
	Name          string
	Abbr          string
	Valley        bool
	InsnPerAccess float64
}

// Batch is one chunk of a streamed trace. See the package conventions
// above for the header/request batch split and aliasing rules.
type Batch struct {
	// Kernel is non-nil on a kernel header batch (exactly one per
	// kernel, before any of its requests).
	Kernel *KernelInfo
	// KernelIndex is the 0-based ordinal of the kernel this batch
	// belongs to.
	KernelIndex int
	// TBID is the TB the requests belong to (-1 on header batches).
	TBID int
	// TBStart marks the first batch of a TB.
	TBStart bool
	// Requests holds the batch's requests; valid until the next Next.
	Requests []Request
}

// Stream is a pull iterator over a trace. Next returns io.EOF after the
// final batch; any other error aborts the stream. Streams are single-use
// and not safe for concurrent use.
type Stream interface {
	Next() (*Batch, error)
}

// Source is a restartable trace producer: every Stream call starts a
// fresh pass over the same trace. Implementations that can only be read
// once (e.g. network bodies) document that Stream is single-shot.
type Source interface {
	Info() SourceInfo
	Stream() Stream
}

// maxBatchRequests caps the requests per batch so that consumers see
// bounded chunks even for pathologically large TBs.
const maxBatchRequests = 4096

// ---------------------------------------------------------------------
// Materialized adapters: App → Source and Stream → App
// ---------------------------------------------------------------------

// appSource streams a materialized application trace.
type appSource struct{ app *App }

// AppSource wraps a materialized trace as a restartable Source. Batches
// alias the App's request slices (no copying), so consumers must not
// mutate them.
func AppSource(a *App) Source { return appSource{app: a} }

func (s appSource) Info() SourceInfo {
	return SourceInfo{Name: s.app.Name, Abbr: s.app.Abbr, Valley: s.app.Valley, InsnPerAccess: s.app.InsnPerAccess}
}

func (s appSource) Stream() Stream { return &appStream{app: s.app} }

type appStream struct {
	app     *App
	ki, ti  int  // next kernel / TB
	off     int  // offset into the current TB's requests
	started bool // header batch of kernel ki emitted
	batch   Batch
	hdr     KernelInfo
}

func (s *appStream) Next() (*Batch, error) {
	for s.ki < len(s.app.Kernels) {
		k := &s.app.Kernels[s.ki]
		if !s.started {
			s.started = true
			s.hdr = KernelInfo{Name: k.Name, WarpsPerTB: k.WarpsPerTB, ComputeGapCycles: k.ComputeGapCycles}
			s.batch = Batch{Kernel: &s.hdr, KernelIndex: s.ki, TBID: -1}
			return &s.batch, nil
		}
		if s.ti >= len(k.TBs) {
			s.ki++
			s.ti, s.off, s.started = 0, 0, false
			continue
		}
		tb := &k.TBs[s.ti]
		end := s.off + maxBatchRequests
		if end > len(tb.Requests) {
			end = len(tb.Requests)
		}
		s.batch = Batch{
			KernelIndex: s.ki,
			TBID:        tb.ID,
			TBStart:     s.off == 0,
			Requests:    tb.Requests[s.off:end],
		}
		if end == len(tb.Requests) {
			s.ti++
			s.off = 0
		} else {
			s.off = end
		}
		return &s.batch, nil
	}
	return nil, io.EOF
}

// Collect drains a Source into a materialized *App — the adapter that
// keeps every materialized caller working on top of a streaming
// producer.
func Collect(src Source) (*App, error) {
	return CollectStream(src.Stream(), src.Info())
}

// CollectStream drains a Stream into a materialized *App with the given
// application metadata.
func CollectStream(s Stream, info SourceInfo) (*App, error) {
	app := &App{Name: info.Name, Abbr: info.Abbr, Valley: info.Valley, InsnPerAccess: info.InsnPerAccess}
	for {
		b, err := s.Next()
		if err == io.EOF {
			return app, nil
		}
		if err != nil {
			return nil, err
		}
		if b.Kernel != nil {
			app.Kernels = append(app.Kernels, Kernel{
				Name:             b.Kernel.Name,
				WarpsPerTB:       b.Kernel.WarpsPerTB,
				ComputeGapCycles: b.Kernel.ComputeGapCycles,
			})
			continue
		}
		if len(app.Kernels) == 0 {
			if !b.TBStart && len(b.Requests) == 0 {
				continue
			}
			// Tolerate headerless streams the same way the streaming
			// profiler does: open an implicit metadata-less kernel
			// instead of dropping requests, so collecting then
			// profiling equals profiling the stream directly.
			app.Kernels = append(app.Kernels, Kernel{})
		}
		k := &app.Kernels[len(app.Kernels)-1]
		if b.TBStart || len(k.TBs) == 0 {
			k.TBs = append(k.TBs, TB{ID: b.TBID})
		}
		tb := &k.TBs[len(k.TBs)-1]
		tb.Requests = append(tb.Requests, b.Requests...)
	}
}

// ---------------------------------------------------------------------
// Streaming coalescer
// ---------------------------------------------------------------------

// coalesceStream merges per-thread requests into line transactions on
// the fly, keeping only the current warp-instruction window: the
// distinct lines of the in-progress same-warp same-kind run, i.e.
// O(warp width × accesses per thread in the run) state instead of a
// full trace copy. It produces exactly the transactions of CoalesceApp
// in the same order, batch splits aside.
type coalesceStream struct {
	in   Stream
	mask uint64

	runActive bool
	runWarp   int32
	runKind   Kind
	lines     []uint64 // line addresses seen in the current run

	out  Batch
	reqs []Request
}

// CoalesceStream wraps a stream with GPU-style memory coalescing at the
// given line size (≤ 0 defaults to 128, like CoalesceTB). Header
// batches pass through; request batches are rewritten to line-aligned
// transactions. Output batches may be empty when every access of an
// input batch folded into already-emitted lines.
func CoalesceStream(in Stream, lineBytes int) Stream {
	if lineBytes <= 0 {
		lineBytes = 128
	}
	return &coalesceStream{in: in, mask: ^uint64(lineBytes - 1)}
}

func (c *coalesceStream) Next() (*Batch, error) {
	b, err := c.in.Next()
	if err != nil {
		return nil, err
	}
	if b.Kernel != nil {
		c.runActive = false
		return b, nil
	}
	if b.TBStart {
		// Warp runs never span TBs: each TB restarts the coalescer.
		c.runActive = false
	}
	c.reqs = c.reqs[:0]
	for _, r := range b.Requests {
		if !c.runActive || r.Warp != c.runWarp || r.Kind != c.runKind {
			c.runActive = true
			c.runWarp, c.runKind = r.Warp, r.Kind
			c.lines = c.lines[:0]
		}
		la := r.Addr & c.mask
		seen := false
		for _, l := range c.lines {
			if l == la {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		c.lines = append(c.lines, la)
		c.reqs = append(c.reqs, Request{Addr: la, Kind: c.runKind, Warp: c.runWarp})
	}
	c.out = Batch{KernelIndex: b.KernelIndex, TBID: b.TBID, TBStart: b.TBStart, Requests: c.reqs}
	return &c.out, nil
}
