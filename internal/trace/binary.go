package trace

// VTRC binary trace container: the zero-parse counterpart of the CSV
// format. Fixed-width little-endian records mean ingest is a
// bounds-check plus (at most) a 16-byte copy per request instead of
// tokenize + strconv per field, and the canonical record-stream hash
// doubles as both the file checksum and the content-addressed cache
// identity shared with CSV uploads. See doc.go for the full layout and
// the format-stability contract.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
)

const (
	binaryMagic   = "VTRC"
	binaryVersion = 1

	secKernel = 1
	secTB     = 2
	secEnd    = 3

	// recordBytes is the fixed width of one request record:
	// addr u64, kind u8, 3 zero bytes, warp i32.
	recordBytes = 16

	// maxKernelName bounds kernel-name lengths, mirroring the CSV
	// scanner's 1 MB line cap, so a corrupt length field cannot force a
	// huge allocation.
	maxKernelName = 1 << 20
)

// binaryHeader is the fixed 16-byte file header: magic, version, zero
// padding to the first 8-byte boundary of the section area.
var binaryHeader = func() [16]byte {
	var h [16]byte
	copy(h[:], binaryMagic)
	h[4] = binaryVersion
	return h
}()

// ---------------------------------------------------------------------
// Canonical record-stream hash
// ---------------------------------------------------------------------

// canonFold accumulates the canonical record-stream digest (doc.go):
// the VTRC byte stream minus tb request counts and minus the end
// section. It needs only O(batch) scratch, so every decoder — CSV,
// binary, materialized — folds it incrementally while streaming.
type canonFold struct {
	h   hash.Hash
	buf []byte
}

func newCanonFold() *canonFold {
	c := &canonFold{h: sha256.New()}
	c.h.Write(binaryHeader[:])
	return c
}

// raw folds already-encoded canonical bytes (the binary reader/writer
// path, which has section bytes in hand).
func (c *canonFold) raw(b []byte) { c.h.Write(b) }

// kernel folds one kernel section.
func (c *canonFold) kernel(k *KernelInfo) {
	c.buf = appendKernelSection(c.buf[:0], k)
	c.h.Write(c.buf)
}

// tbStart folds a tb section header (tag + id; counts are not part of
// the canonical stream). It goes through the reusable buffer rather
// than a stack array: the interface write would force a stack array to
// escape, costing one allocation per TB.
func (c *canonFold) tbStart(id int) {
	c.buf = append(c.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(c.buf[0:8], secTB)
	binary.LittleEndian.PutUint64(c.buf[8:16], uint64(int64(id)))
	c.h.Write(c.buf)
}

// requests folds a run of request records.
func (c *canonFold) requests(rs []Request) {
	c.buf = appendRequests(c.buf[:0], rs)
	c.h.Write(c.buf)
}

// batch folds one stream batch, dispatching on its shape.
func (c *canonFold) batch(b *Batch) {
	if b.Kernel != nil {
		c.kernel(b.Kernel)
		return
	}
	if b.TBStart {
		c.tbStart(b.TBID)
	}
	c.requests(b.Requests)
}

func (c *canonFold) sum() [sha256.Size]byte {
	var s [sha256.Size]byte
	c.h.Sum(s[:0])
	return s
}

func (c *canonFold) sumHex() string {
	s := c.sum()
	return hex.EncodeToString(s[:])
}

// CanonicalHash drains one pass of src and returns its canonical
// record-stream digest — the identity CSVStream.SHA256,
// BinaryStream.SHA256, MmapSource.SHA256 and a VTRC end section all
// report for the same records, regardless of container format or batch
// boundaries.
func CanonicalHash(src Source) (string, error) {
	c := newCanonFold()
	st := src.Stream()
	for {
		b, err := st.Next()
		if err == io.EOF {
			return c.sumHex(), nil
		}
		if err != nil {
			return "", err
		}
		c.batch(b)
	}
}

// ---------------------------------------------------------------------
// Encoding helpers (shared by the writer and the canonical hasher)
// ---------------------------------------------------------------------

// appendKernelSection appends one complete kernel section (tag, warps,
// gap, name length, name, zero padding to 8 bytes).
func appendKernelSection(dst []byte, k *KernelInfo) []byte {
	var b [8]byte
	le := binary.LittleEndian
	le.PutUint64(b[:], secKernel)
	dst = append(dst, b[:]...)
	le.PutUint64(b[:], uint64(int64(k.WarpsPerTB)))
	dst = append(dst, b[:]...)
	le.PutUint64(b[:], uint64(int64(k.ComputeGapCycles)))
	dst = append(dst, b[:]...)
	le.PutUint64(b[:], uint64(len(k.Name)))
	dst = append(dst, b[:]...)
	dst = append(dst, k.Name...)
	for pad := namePad(len(k.Name)); pad > 0; pad-- {
		dst = append(dst, 0)
	}
	return dst
}

func namePad(nameLen int) int { return (8 - nameLen%8) % 8 }

// appendRequests appends fixed-width request records.
func appendRequests(dst []byte, rs []Request) []byte {
	for i := range rs {
		var b [recordBytes]byte
		binary.LittleEndian.PutUint64(b[0:8], rs[i].Addr)
		b[8] = byte(rs[i].Kind)
		binary.LittleEndian.PutUint32(b[12:16], uint32(rs[i].Warp))
		dst = append(dst, b[:]...)
	}
	return dst
}

// validateRecords checks every fixed-width record in raw (whose length
// must be a multiple of recordBytes): known kind, zero padding,
// non-negative warp. It is the binary counterpart of the CSV field
// parsers; addresses, like in CSV, are unrestricted here (App.Validate
// owns bit-width checks).
func validateRecords(raw []byte) error {
	for i := 0; i+recordBytes <= len(raw); i += recordBytes {
		if raw[i+8] > 1 {
			return fmt.Errorf("bad request kind %d", raw[i+8])
		}
		if raw[i+9]|raw[i+10]|raw[i+11] != 0 {
			return fmt.Errorf("nonzero request padding")
		}
		if raw[i+15]&0x80 != 0 {
			return fmt.Errorf("negative warp %d", int32(binary.LittleEndian.Uint32(raw[i+12:i+16])))
		}
	}
	return nil
}

// copyRecords decodes validated records into *dst (grown as needed),
// the portable fallback when aliasing is unavailable.
func copyRecords(raw []byte, dst *[]Request) []Request {
	n := len(raw) / recordBytes
	if cap(*dst) < n {
		*dst = make([]Request, n)
	}
	rs := (*dst)[:n]
	for i := 0; i < n; i++ {
		rec := raw[i*recordBytes:]
		rs[i] = Request{
			Addr: binary.LittleEndian.Uint64(rec[0:8]),
			Kind: Kind(rec[8]),
			Warp: int32(binary.LittleEndian.Uint32(rec[12:16])),
		}
	}
	return rs
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

// binaryWriter emits VTRC sections while folding the canonical hash for
// the end-section checksum. Write errors are sticky in the bufio layer
// and surface at end().
type binaryWriter struct {
	bw  *bufio.Writer
	c   *canonFold
	buf []byte
}

func newBinaryWriter(w io.Writer) *binaryWriter {
	b := &binaryWriter{bw: bufio.NewWriterSize(w, 1<<16), c: newCanonFold()}
	b.bw.Write(binaryHeader[:]) // the hasher folds the header at construction
	return b
}

func (w *binaryWriter) kernel(k *KernelInfo) {
	w.buf = appendKernelSection(w.buf[:0], k)
	w.bw.Write(w.buf)
	w.c.raw(w.buf)
}

func (w *binaryWriter) tb(id int, reqs []Request) {
	var b [24]byte
	le := binary.LittleEndian
	le.PutUint64(b[0:8], secTB)
	le.PutUint64(b[8:16], uint64(int64(id)))
	le.PutUint64(b[16:24], uint64(len(reqs)))
	w.bw.Write(b[:])
	w.c.raw(b[:16]) // the count is not part of the canonical stream
	for len(reqs) > 0 {
		n := len(reqs)
		if n > maxBatchRequests {
			n = maxBatchRequests
		}
		w.buf = appendRequests(w.buf[:0], reqs[:n])
		w.bw.Write(w.buf)
		w.c.raw(w.buf)
		reqs = reqs[n:]
	}
}

func (w *binaryWriter) end() error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], secEnd)
	w.bw.Write(b[:])
	sum := w.c.sum()
	w.bw.Write(sum[:])
	return w.bw.Flush()
}

// WriteBinary streams the application trace in the VTRC binary format.
// Like WriteCSV it encodes what it is given — decoded or Validate()d
// traces roundtrip; structurally invalid ones (non-positive warp
// counts, descending TB ids) produce files the decoder rejects.
func WriteBinary(w io.Writer, a *App) error {
	bw := newBinaryWriter(w)
	for ki := range a.Kernels {
		k := &a.Kernels[ki]
		hdr := KernelInfo{Name: k.Name, WarpsPerTB: k.WarpsPerTB, ComputeGapCycles: k.ComputeGapCycles}
		bw.kernel(&hdr)
		for ti := range k.TBs {
			bw.tb(k.TBs[ti].ID, k.TBs[ti].Requests)
		}
	}
	return bw.end()
}

// WriteBinaryStream drains a Stream into the VTRC binary format without
// materializing the trace: a tb section carries its request count up
// front, so the writer holds one TB's requests at a time (O(largest TB)
// memory) and everything else passes through. The stream must follow
// the package header-first convention; headerless streams encode to a
// file the decoder rejects.
func WriteBinaryStream(w io.Writer, s Stream) error {
	bw := newBinaryWriter(w)
	var (
		reqs []Request
		tbID int
		inTB bool
	)
	flushTB := func() {
		if inTB {
			bw.tb(tbID, reqs)
			reqs = reqs[:0]
			inTB = false
		}
	}
	for {
		b, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if b.Kernel != nil {
			flushTB()
			bw.kernel(b.Kernel)
			continue
		}
		if b.TBStart {
			flushTB()
		}
		if !inTB {
			inTB = true
			tbID = b.TBID
		}
		reqs = append(reqs, b.Requests...)
	}
	flushTB()
	return bw.end()
}

// ---------------------------------------------------------------------
// Streaming decoder
// ---------------------------------------------------------------------

// BinaryStream is a single-shot streaming decoder of the VTRC binary
// trace format, the counterpart of CSVStream: it implements both Stream
// and Source (Stream returns the decoder itself; it cannot be rewound),
// enforces the same structural rules as the CSV decoder, folds the
// canonical content digest incrementally, and verifies it against the
// end-section checksum before reporting io.EOF — damaged input fails
// cleanly, it never yields a silently truncated trace.
type BinaryStream struct {
	br  *bufio.Reader
	c   *canonFold
	err error // sticky terminal state: io.EOF or a decode error

	started     bool
	kernelIndex int
	kernels     int
	haveTB      bool
	curTB       int

	remaining uint64 // request records left in the current tb section
	tbFirst   bool   // the next chunk is its TB's first batch

	raw     []byte
	reqs    []Request
	batch   Batch
	hdr     KernelInfo
	scratch [8]byte // fixed-width field buffer; a field so it never escapes
}

// NewBinaryStream starts decoding the VTRC trace on r. Decoding is
// lazy: bytes are consumed as batches are pulled. (The read buffer is
// deliberately smaller than the 64 KiB record chunk buffer: bulk record
// reads bypass it via ReadFull's large-read path, so it only ever holds
// section headers.)
func NewBinaryStream(r io.Reader) *BinaryStream {
	return &BinaryStream{br: bufio.NewReaderSize(r, 1<<14), c: newCanonFold(), kernelIndex: -1}
}

// Info returns the metadata of an imported trace, mirroring CSVStream
// (application metadata is not part of either container format).
func (s *BinaryStream) Info() SourceInfo {
	return SourceInfo{Name: "imported", Abbr: "IMP", InsnPerAccess: 1}
}

// Stream returns the decoder itself; a BinaryStream is single-shot.
func (s *BinaryStream) Stream() Stream { return s }

// SHA256 returns the canonical record-stream digest. It is the
// content-addressed identity of the trace once Next has returned io.EOF
// (at which point it has also been verified against the file checksum);
// calling it earlier hashes only the prefix decoded so far.
func (s *BinaryStream) SHA256() string { return s.c.sumHex() }

func (s *BinaryStream) failf(format string, args ...any) (*Batch, error) {
	s.err = fmt.Errorf("trace binary: "+format, args...)
	return nil, s.err
}

// readFull fills b or records a sticky truncation error naming what was
// being read. It loops over the concrete bufio.Reader rather than
// calling io.ReadFull: the interface parameter there would force
// callers' stack buffers to escape, one allocation per section field.
func (s *BinaryStream) readFull(b []byte, what string) bool {
	n := 0
	for n < len(b) {
		m, err := s.br.Read(b[n:])
		n += m
		if err != nil {
			if err == io.EOF {
				s.err = fmt.Errorf("trace binary: truncated %s", what)
			} else {
				s.err = err
			}
			return false
		}
		if m == 0 {
			s.err = io.ErrNoProgress
			return false
		}
	}
	return true
}

func (s *BinaryStream) readU64(what string) (uint64, bool) {
	if !s.readFull(s.scratch[:], what) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(s.scratch[:]), true
}

// Next decodes up to one batch of requests (or one kernel header).
func (s *BinaryStream) Next() (*Batch, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.started {
		s.started = true
		var hdr [16]byte
		if !s.readFull(hdr[:], "header") {
			return nil, s.err
		}
		if string(hdr[:4]) != binaryMagic {
			return s.failf("bad magic %q (want %q)", hdr[:4], binaryMagic)
		}
		if hdr[4] != binaryVersion {
			return s.failf("unsupported version %d (want %d)", hdr[4], binaryVersion)
		}
		for _, b := range hdr[5:] {
			if b != 0 {
				return s.failf("nonzero header padding")
			}
		}
		// The hasher folded the (fixed) header at construction.
	}
	if s.remaining > 0 {
		return s.emitChunk()
	}
	tag, ok := s.readU64("section tag")
	if !ok {
		return nil, s.err
	}
	switch tag {
	case secKernel:
		warpsU, ok := s.readU64("kernel section")
		if !ok {
			return nil, s.err
		}
		gapU, ok := s.readU64("kernel section")
		if !ok {
			return nil, s.err
		}
		nameLen, ok := s.readU64("kernel section")
		if !ok {
			return nil, s.err
		}
		warps, gap := int64(warpsU), int64(gapU)
		if warps <= 0 || int64(int(warps)) != warps {
			return s.failf("kernel %d: bad warp count %d", s.kernels, warps)
		}
		if gap < 0 || int64(int(gap)) != gap {
			return s.failf("kernel %d: bad gap %d", s.kernels, gap)
		}
		if nameLen > maxKernelName {
			return s.failf("kernel %d: name length %d exceeds %d", s.kernels, nameLen, maxKernelName)
		}
		name := make([]byte, int(nameLen)+namePad(int(nameLen)))
		if !s.readFull(name, "kernel name") {
			return nil, s.err
		}
		for _, b := range name[nameLen:] {
			if b != 0 {
				return s.failf("kernel %d: nonzero name padding", s.kernels)
			}
		}
		hdr := KernelInfo{Name: string(name[:nameLen]), WarpsPerTB: int(warps), ComputeGapCycles: int(gap)}
		s.c.kernel(&hdr)
		s.kernelIndex++
		s.kernels++
		s.haveTB = false
		s.hdr = hdr
		s.batch = Batch{Kernel: &s.hdr, KernelIndex: s.kernelIndex, TBID: -1}
		return &s.batch, nil
	case secTB:
		if s.kernelIndex < 0 {
			return s.failf("tb section before any kernel section")
		}
		idU, ok := s.readU64("tb section")
		if !ok {
			return nil, s.err
		}
		count, ok := s.readU64("tb section")
		if !ok {
			return nil, s.err
		}
		id := int64(idU)
		if int64(int(id)) != id {
			return s.failf("tb id %d out of range", id)
		}
		if s.haveTB && int(id) <= s.curTB {
			return s.failf("TB ids must ascend within a kernel (tb %d after %d)", id, s.curTB)
		}
		s.curTB = int(id)
		s.haveTB = true
		s.c.tbStart(s.curTB)
		s.remaining = count
		s.tbFirst = true
		if count == 0 {
			// Empty TBs are representable (AppSource emits them too);
			// the TB exists, it just has no requests.
			s.tbFirst = false
			s.batch = Batch{KernelIndex: s.kernelIndex, TBID: s.curTB, TBStart: true}
			return &s.batch, nil
		}
		return s.emitChunk()
	case secEnd:
		if s.kernels == 0 {
			return s.failf("no kernels")
		}
		want := s.c.sum() // fold order: compute before reading the stored sum
		var stored [sha256.Size]byte
		if !s.readFull(stored[:], "checksum") {
			return nil, s.err
		}
		if want != stored {
			return s.failf("checksum mismatch: content corrupted")
		}
		if _, err := s.br.ReadByte(); err == nil {
			return s.failf("data after end section")
		} else if err != io.EOF {
			s.err = err
			return nil, err
		}
		s.err = io.EOF
		return nil, io.EOF
	default:
		return s.failf("unknown section tag %d", tag)
	}
}

// emitChunk reads and validates up to one batch of the current tb
// section's records, serving them zero-copy out of the read buffer when
// the platform allows (see alias.go) and via a reusable decode buffer
// otherwise. Steady-state decoding allocates nothing either way.
func (s *BinaryStream) emitChunk() (*Batch, error) {
	n := s.remaining
	if n > maxBatchRequests {
		n = maxBatchRequests
	}
	if s.raw == nil {
		s.raw = make([]byte, maxBatchRequests*recordBytes)
	}
	raw := s.raw[:int(n)*recordBytes]
	if !s.readFull(raw, "tb requests") {
		return nil, s.err
	}
	s.c.raw(raw)
	if err := validateRecords(raw); err != nil {
		return s.failf("tb %d: %v", s.curTB, err)
	}
	reqs, ok := aliasRequests(raw)
	if !ok {
		reqs = copyRecords(raw, &s.reqs)
	}
	s.remaining -= n
	s.batch = Batch{KernelIndex: s.kernelIndex, TBID: s.curTB, TBStart: s.tbFirst, Requests: reqs}
	s.tbFirst = false
	return &s.batch, nil
}

// ReadBinary parses a trace written by WriteBinary. Like ReadCSV it is
// a draining adapter over the streaming decoder (BinaryStream), so the
// materialized and streaming binary paths accept and reject inputs
// identically by construction.
func ReadBinary(r io.Reader) (*App, error) {
	bs := NewBinaryStream(r)
	return CollectStream(bs, bs.Info())
}

// ReadBinaryHashed is ReadBinary plus the canonical content digest —
// which, for a valid VTRC file, equals its end-section checksum.
func ReadBinaryHashed(r io.Reader) (*App, string, error) {
	bs := NewBinaryStream(r)
	app, err := CollectStream(bs, bs.Info())
	if err != nil {
		return nil, "", err
	}
	return app, bs.SHA256(), nil
}
