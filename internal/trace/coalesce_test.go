package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func warpReqs(warp int32, kind Kind, addrs ...uint64) []Request {
	out := make([]Request, len(addrs))
	for i, a := range addrs {
		out[i] = Request{Addr: a, Kind: kind, Warp: warp}
	}
	return out
}

func TestCoalesceContiguous(t *testing.T) {
	// 32 threads × 4 B = 128 B: one transaction.
	var addrs []uint64
	for i := 0; i < 32; i++ {
		addrs = append(addrs, 0x1000+uint64(i)*4)
	}
	tb := TB{ID: 3, Requests: warpReqs(0, Read, addrs...)}
	c := CoalesceTB(&tb, 128)
	if len(c.Requests) != 1 {
		t.Fatalf("coalesced to %d transactions, want 1", len(c.Requests))
	}
	if c.Requests[0].Addr != 0x1000 {
		t.Errorf("addr = %#x, want line-aligned 0x1000", c.Requests[0].Addr)
	}
	if c.ID != 3 {
		t.Errorf("ID = %d", c.ID)
	}
}

func TestCoalesceStrided(t *testing.T) {
	// 32 threads at 4 KB stride: 32 transactions (no merging).
	var addrs []uint64
	for i := 0; i < 32; i++ {
		addrs = append(addrs, uint64(i)*4096)
	}
	tb := TB{Requests: warpReqs(0, Write, addrs...)}
	c := CoalesceTB(&tb, 128)
	if len(c.Requests) != 32 {
		t.Fatalf("coalesced to %d transactions, want 32", len(c.Requests))
	}
}

func TestCoalesceSeparatesWarpsAndKinds(t *testing.T) {
	reqs := append(warpReqs(0, Read, 0, 4, 8), warpReqs(1, Read, 0, 4)...)
	reqs = append(reqs, warpReqs(1, Write, 0)...)
	tb := TB{Requests: reqs}
	c := CoalesceTB(&tb, 128)
	// Warp 0 read line 0; warp 1 read line 0; warp 1 write line 0.
	if len(c.Requests) != 3 {
		t.Fatalf("got %d transactions, want 3: %v", len(c.Requests), c.Requests)
	}
	if c.Requests[2].Kind != Write {
		t.Errorf("third transaction kind = %v, want W", c.Requests[2].Kind)
	}
}

func TestCoalesceMixedLines(t *testing.T) {
	// Threads straddle two lines.
	tb := TB{Requests: warpReqs(0, Read, 96, 100, 128, 132, 60)}
	c := CoalesceTB(&tb, 128)
	if len(c.Requests) != 2 {
		t.Fatalf("got %d transactions, want 2", len(c.Requests))
	}
	if c.Requests[0].Addr != 0 || c.Requests[1].Addr != 128 {
		t.Errorf("lines = %#x,%#x", c.Requests[0].Addr, c.Requests[1].Addr)
	}
}

func TestCoalesceDefaultLineSize(t *testing.T) {
	tb := TB{Requests: warpReqs(0, Read, 0, 127)}
	c := CoalesceTB(&tb, 0)
	if len(c.Requests) != 1 {
		t.Fatalf("default line size should be 128, got %d transactions", len(c.Requests))
	}
}

func TestCoalesceApp(t *testing.T) {
	app := &App{Name: "x", Abbr: "X", InsnPerAccess: 5, Valley: true, Kernels: []Kernel{
		{Name: "k", WarpsPerTB: 1, ComputeGapCycles: 7, TBs: []TB{
			{ID: 0, Requests: warpReqs(0, Read, 0, 4, 8, 12)},
			{ID: 1, Requests: warpReqs(0, Read, 4096, 8192)},
		}},
	}}
	c := CoalesceApp(app, 128)
	if c.Requests() != 3 {
		t.Fatalf("coalesced requests = %d, want 3", c.Requests())
	}
	if c.Kernels[0].ComputeGapCycles != 7 || c.Kernels[0].WarpsPerTB != 1 {
		t.Error("kernel metadata not preserved")
	}
	if c.Abbr != "X" || !c.Valley || c.InsnPerAccess != 5 {
		t.Error("app metadata not preserved")
	}
	// Original untouched.
	if app.Requests() != 6 {
		t.Error("original trace modified")
	}
}

// Properties: coalescing never increases request count, every output is
// line-aligned, and every input line appears in the output.
func TestCoalesceProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := TB{}
		for i := 0; i < int(n%64)+1; i++ {
			tb.Requests = append(tb.Requests, Request{
				Addr: uint64(rng.Intn(1 << 16)),
				Kind: Kind(rng.Intn(2)),
				Warp: int32(rng.Intn(4)),
			})
		}
		c := CoalesceTB(&tb, 128)
		if len(c.Requests) > len(tb.Requests) {
			return false
		}
		outLines := map[uint64]bool{}
		for _, r := range c.Requests {
			if r.Addr%128 != 0 {
				return false
			}
			outLines[r.Addr] = true
		}
		for _, r := range tb.Requests {
			if !outLines[r.Addr&^uint64(127)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
