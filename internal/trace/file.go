package trace

import (
	"io"
	"os"
)

// OpenFile opens an on-disk trace in either container format, sniffing
// the VTRC magic. Binary files come back as a restartable zero-copy
// MmapSource; CSV files come back as a single-shot streaming CSVStream.
// The returned release func frees the mapping or file handle and must
// be called once the trace (and any batches obtained from it) is no
// longer in use.
func OpenFile(path string) (Source, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [4]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		f.Close()
		return nil, nil, err
	}
	if n == len(magic) && string(magic[:]) == binaryMagic {
		f.Close()
		src, err := OpenMmap(path)
		if err != nil {
			return nil, nil, err
		}
		return src, src.Close, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return NewCSVStream(f), f.Close, nil
}
