package trace

import "time"

// TimedStream wraps a Stream and reports the exclusive wall time of
// each Next call — the time spent in this stage itself, minus the time
// the stage spent pulling from a nested TimedStream below it. Stacking
// one TimedStream per pipeline stage therefore yields per-stage
// latencies that add up to the pipeline total instead of multiply
// counting nested work:
//
//	decode := trace.NewTimedStream(csvStream, nil, observeDecode)
//	coal := trace.NewTimedStream(trace.CoalesceStream(decode, 128), decode, observeCoalesce)
//
// A TimedStream is single-goroutine, like every Stream.
type TimedStream struct {
	inner   Stream
	nested  *TimedStream // innermost timed stage this one pulls from
	observe func(time.Duration)
	elapsed time.Duration // cumulative inclusive time (this stage + below)
}

// NewTimedStream wraps inner, calling observe with the exclusive
// duration of each Next. nested, when non-nil, must be the TimedStream
// that inner (transitively) pulls from: its inclusive time is
// subtracted so only this stage's own work is reported. observe may be
// nil to make the stage a pure accounting point for an outer stage.
func NewTimedStream(inner Stream, nested *TimedStream, observe func(time.Duration)) *TimedStream {
	return &TimedStream{inner: inner, nested: nested, observe: observe}
}

// Elapsed returns the cumulative inclusive time spent in this stage and
// everything below it.
func (t *TimedStream) Elapsed() time.Duration { return t.elapsed }

// Next pulls one batch from the wrapped stream, timing it.
func (t *TimedStream) Next() (*Batch, error) {
	var nestedBefore time.Duration
	if t.nested != nil {
		nestedBefore = t.nested.elapsed
	}
	start := time.Now()
	b, err := t.inner.Next()
	d := time.Since(start)
	t.elapsed += d
	if t.observe != nil {
		excl := d
		if t.nested != nil {
			excl -= t.nested.elapsed - nestedBefore
			if excl < 0 {
				excl = 0
			}
		}
		t.observe(excl)
	}
	return b, err
}
