// Package trace defines the memory-request trace representation shared by
// the entropy analyzer and the GPU simulator: requests grouped by Thread
// Block (TB), TBs grouped by kernel, kernels grouped by application. The
// grouping mirrors the GPU execution model of Section II — TBs are the
// scheduling unit, kernels serialize, and request order inside a TB is
// deliberately not relied upon by the analysis (Section III-A).
//
// # Trace containers
//
// Traces move between tools in two on-disk/wire formats that carry
// exactly the same information (kernels, TBs, requests — application
// metadata such as name and instruction weight is in neither):
//
//   - CSV (io.go, csvstream.go): human-readable, one record per line.
//     Decoding pays per-byte tokenization and integer parsing.
//   - VTRC binary (binary.go, mmap.go): fixed-width little-endian
//     records behind a magic + version header, checksummed. Decoding is
//     a bounds-checked copy (or, on the mmap path, no copy at all).
//
// # VTRC container layout
//
// All integers are little-endian. Every section starts 8-byte aligned,
// so request records can be served as zero-copy views of a mapped file.
//
//	header   magic "VTRC", version byte (1), 11 zero bytes   (16 bytes)
//	kernel   tag u64 = 1, warps i64, gap i64, nameLen u64,
//	         name bytes, zero padding to the next 8-byte boundary
//	tb       tag u64 = 2, tb id i64, request count u64,
//	         then count request records
//	request  addr u64, kind u8 (0 read / 1 write), 3 zero bytes,
//	         warp i32                                        (16 bytes)
//	end      tag u64 = 3, 32-byte SHA-256 (see below); nothing may
//	         follow it
//
// Sections obey the package streaming conventions: requests belong to
// the most recent kernel section, TB ids ascend strictly within a
// kernel, warp counts are positive, compute gaps and warps are
// non-negative, and padding bytes are zero. A valid trace therefore has
// exactly one VTRC encoding, which is what makes the format canonical.
//
// # Canonical hash
//
// The content identity of a trace — the digest cache keys and converters
// agree on — is the SHA-256 of its canonical record stream: the VTRC
// byte stream minus each tb section's request-count field and minus the
// end section. Omitting the counts is what lets every decoder (CSV,
// binary, materialized) fold the hash incrementally in O(1) state
// without buffering a TB. The checksum stored in a VTRC end section is
// exactly this hash, so verifying a binary file and identifying its
// content are one pass, and a CSV upload hashes equal to its tracepack
// binary conversion by construction.
//
// # Format stability contract
//
// The version byte after the magic is the compatibility gate. Readers
// accept version 1 only; any other value fails with the error text
// "trace binary: unsupported version N (want 1)" so callers and tests
// can pin the behavior. Changes that alter the meaning of version-1
// bytes require a version bump; additive changes (new section tags) do
// too, because version-1 readers reject unknown tags. Damaged input —
// truncation, flipped bits, trailing garbage — must surface as a clean
// error, never a panic and never a silently truncated trace: structure
// is validated section by section and content is pinned by the end
// checksum.
package trace
