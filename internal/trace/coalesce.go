package trace

// Coalescing merges the per-thread accesses of one warp-instruction into
// line-granular memory transactions, exactly like a GPU's memory
// coalescing unit. Both the entropy analysis and the simulator operate on
// coalesced transactions: those are the requests that exist in the memory
// system (Section III talks about "memory requests ... likely to co-exist
// in the memory system", and the paper's address mapper sits right after
// the coalescer).
//
// A warp-instruction is approximated as a maximal run of consecutive
// requests from the same warp with the same kind, which matches how the
// workload generators emit traces (thread-major within a warp).

// CoalesceTB returns a new TB whose requests are the coalesced
// transactions of tb at the given line size. Transaction addresses are
// line-aligned. Order of first touch is preserved.
func CoalesceTB(tb *TB, lineBytes int) TB {
	var out TB
	CoalesceTBInto(&out, tb, lineBytes)
	return out
}

// CoalesceTBInto coalesces tb into dst, reusing dst's request slice.
// The simulator calls this once per TB launch with a per-runner scratch
// TB, so the hot path does not allocate once the scratch has grown to
// the largest TB seen.
func CoalesceTBInto(dst *TB, tb *TB, lineBytes int) {
	dst.ID = tb.ID
	dst.Requests = dst.Requests[:0]
	if lineBytes <= 0 {
		lineBytes = 128
	}
	mask := ^uint64(lineBytes - 1)
	i := 0
	reqs := tb.Requests
	for i < len(reqs) {
		j := i
		for j < len(reqs) && reqs[j].Warp == reqs[i].Warp && reqs[j].Kind == reqs[i].Kind {
			j++
		}
		// Dedup within the warp-instruction by scanning the group's own
		// output tail — group sizes are warp-bounded (≤32), so the scan
		// beats allocating a set.
		groupStart := len(dst.Requests)
	dedup:
		for _, r := range reqs[i:j] {
			la := r.Addr & mask
			for _, seen := range dst.Requests[groupStart:] {
				if seen.Addr == la {
					continue dedup
				}
			}
			dst.Requests = append(dst.Requests, Request{Addr: la, Kind: reqs[i].Kind, Warp: reqs[i].Warp})
		}
		i = j
	}
}

// CoalesceKernel coalesces every TB of a kernel.
func CoalesceKernel(k *Kernel, lineBytes int) Kernel {
	out := Kernel{Name: k.Name, WarpsPerTB: k.WarpsPerTB, ComputeGapCycles: k.ComputeGapCycles}
	out.TBs = make([]TB, len(k.TBs))
	for i := range k.TBs {
		out.TBs[i] = CoalesceTB(&k.TBs[i], lineBytes)
	}
	return out
}

// CoalesceApp coalesces a whole application trace.
func CoalesceApp(a *App, lineBytes int) *App {
	out := &App{Name: a.Name, Abbr: a.Abbr, Valley: a.Valley, InsnPerAccess: a.InsnPerAccess}
	out.Kernels = make([]Kernel, len(a.Kernels))
	for i := range a.Kernels {
		out.Kernels[i] = CoalesceKernel(&a.Kernels[i], lineBytes)
	}
	return out
}
