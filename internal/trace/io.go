package trace

// CSV import/export of application traces, so real traces (e.g. dumped
// from an instrumented GPGPU-sim or a binary-instrumentation tool) can be
// fed to the entropy analyzer and simulator, and synthetic traces can be
// inspected with ordinary tools.
//
// Format: one record per request, preceded by kernel header records.
//
//	K,<kernel name>,<warps per TB>,<compute gap cycles>
//	R,<tb id>,<warp>,<R|W>,<hex address>
//
// Requests belong to the most recent K record; TB records must appear
// grouped by ascending TB id within each kernel.

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCSV streams the application trace in the package CSV format.
func WriteCSV(w io.Writer, a *App) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# valleymap trace: %s (%s) insn_per_access=%g valley=%v\n",
		a.Name, a.Abbr, a.InsnPerAccess, a.Valley)
	for ki := range a.Kernels {
		k := &a.Kernels[ki]
		fmt.Fprintf(bw, "K,%s,%d,%d\n", k.Name, k.WarpsPerTB, k.ComputeGapCycles)
		for ti := range k.TBs {
			tb := &k.TBs[ti]
			for _, r := range tb.Requests {
				fmt.Fprintf(bw, "R,%d,%d,%s,%x\n", tb.ID, r.Warp, r.Kind, r.Addr)
			}
		}
	}
	return bw.Flush()
}

// ReadCSVHashed is ReadCSV plus a content hash: it streams the input
// once, decoding the trace while folding the canonical record-stream
// SHA-256 (doc.go), and returns the hex digest alongside the app.
// Network services use the digest as a content-addressed cache key for
// uploaded traces without buffering the body a second time; a binary
// (VTRC) encoding of the same records yields the same digest.
func ReadCSVHashed(r io.Reader) (*App, string, error) {
	cs := NewCSVStream(r)
	app, err := CollectStream(cs, cs.Info())
	if err != nil {
		return nil, "", err
	}
	return app, cs.SHA256(), nil
}

// ReadCSV parses a trace written by WriteCSV (or hand-assembled in the
// same format). Metadata lost by the format (name, instruction weight)
// can be set on the returned App afterwards; InsnPerAccess defaults to 1.
//
// ReadCSV is a draining adapter over the streaming decoder (CSVStream),
// so the materialized and streaming paths accept and reject inputs
// identically; it exists for callers that need random access to the
// trace. One-pass consumers (profiling, coalescing) should keep the
// stream instead and stay at O(batch) memory.
func ReadCSV(r io.Reader) (*App, error) {
	cs := NewCSVStream(r)
	return CollectStream(cs, cs.Info())
}
