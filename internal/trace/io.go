package trace

// CSV import/export of application traces, so real traces (e.g. dumped
// from an instrumented GPGPU-sim or a binary-instrumentation tool) can be
// fed to the entropy analyzer and simulator, and synthetic traces can be
// inspected with ordinary tools.
//
// Format: one record per request, preceded by kernel header records.
//
//	K,<kernel name>,<warps per TB>,<compute gap cycles>
//	R,<tb id>,<warp>,<R|W>,<hex address>
//
// Requests belong to the most recent K record; TB records must appear
// grouped by ascending TB id within each kernel.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV streams the application trace in the package CSV format.
func WriteCSV(w io.Writer, a *App) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# valleymap trace: %s (%s) insn_per_access=%g valley=%v\n",
		a.Name, a.Abbr, a.InsnPerAccess, a.Valley)
	for ki := range a.Kernels {
		k := &a.Kernels[ki]
		fmt.Fprintf(bw, "K,%s,%d,%d\n", k.Name, k.WarpsPerTB, k.ComputeGapCycles)
		for ti := range k.TBs {
			tb := &k.TBs[ti]
			for _, r := range tb.Requests {
				fmt.Fprintf(bw, "R,%d,%d,%s,%x\n", tb.ID, r.Warp, r.Kind, r.Addr)
			}
		}
	}
	return bw.Flush()
}

// ReadCSVHashed is ReadCSV plus a content hash: it streams the input
// once, decoding the trace while feeding the raw bytes through SHA-256,
// and returns the hex digest alongside the app. Network services use the
// digest as a content-addressed cache key for uploaded traces without
// buffering the body a second time.
func ReadCSVHashed(r io.Reader) (*App, string, error) {
	h := sha256.New()
	app, err := ReadCSV(io.TeeReader(r, h))
	if err != nil {
		return nil, "", err
	}
	return app, hex.EncodeToString(h.Sum(nil)), nil
}

// ReadCSV parses a trace written by WriteCSV (or hand-assembled in the
// same format). Metadata lost by the format (name, instruction weight)
// can be set on the returned App afterwards; InsnPerAccess defaults to 1.
func ReadCSV(r io.Reader) (*App, error) {
	app := &App{Name: "imported", Abbr: "IMP", InsnPerAccess: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Kernel
	var curTB *TB
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		switch fields[0] {
		case "K":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace csv line %d: K record needs 4 fields", line)
			}
			warps, err := strconv.Atoi(fields[2])
			if err != nil || warps <= 0 {
				return nil, fmt.Errorf("trace csv line %d: bad warp count %q", line, fields[2])
			}
			gap, err := strconv.Atoi(fields[3])
			if err != nil || gap < 0 {
				return nil, fmt.Errorf("trace csv line %d: bad gap %q", line, fields[3])
			}
			app.Kernels = append(app.Kernels, Kernel{
				Name: fields[1], WarpsPerTB: warps, ComputeGapCycles: gap,
			})
			cur = &app.Kernels[len(app.Kernels)-1]
			curTB = nil
		case "R":
			if cur == nil {
				return nil, fmt.Errorf("trace csv line %d: R record before any K record", line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace csv line %d: R record needs 5 fields", line)
			}
			tbID, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace csv line %d: bad tb id %q", line, fields[1])
			}
			warp, err := strconv.Atoi(fields[2])
			if err != nil || warp < 0 {
				return nil, fmt.Errorf("trace csv line %d: bad warp %q", line, fields[2])
			}
			var kind Kind
			switch fields[3] {
			case "R":
				kind = Read
			case "W":
				kind = Write
			default:
				return nil, fmt.Errorf("trace csv line %d: bad kind %q", line, fields[3])
			}
			addr, err := strconv.ParseUint(fields[4], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("trace csv line %d: bad address %q", line, fields[4])
			}
			if curTB == nil || curTB.ID != tbID {
				if curTB != nil && tbID <= curTB.ID {
					return nil, fmt.Errorf("trace csv line %d: TB ids must ascend within a kernel", line)
				}
				cur.TBs = append(cur.TBs, TB{ID: tbID})
				curTB = &cur.TBs[len(cur.TBs)-1]
			}
			curTB.Requests = append(curTB.Requests, Request{Addr: addr, Kind: kind, Warp: int32(warp)})
		default:
			return nil, fmt.Errorf("trace csv line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(app.Kernels) == 0 {
		return nil, fmt.Errorf("trace csv: no kernels")
	}
	return app, nil
}
