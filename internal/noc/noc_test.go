package noc

import (
	"testing"

	"valleymap/internal/sim"
)

func newXbar(t *testing.T, sms int) (*sim.Engine, *Crossbar) {
	t.Helper()
	var eng sim.Engine
	x, err := New(&eng, DefaultConfig(sms))
	if err != nil {
		t.Fatal(err)
	}
	return &eng, x
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(12)
	if cfg.SMPorts != 12 || cfg.SlicePorts != 8 {
		t.Errorf("ports = %dx%d, want 12x8 (Table I)", cfg.SMPorts, cfg.SlicePorts)
	}
	if cfg.ChannelBytes != 32 {
		t.Errorf("channel width = %d, want 32B", cfg.ChannelBytes)
	}
	if cfg.Clock.Period != sim.ClockFromMHz(700).Period {
		t.Errorf("clock = %v", cfg.Clock.Period)
	}
}

func TestNewValidation(t *testing.T) {
	var eng sim.Engine
	if _, err := New(&eng, Config{SMPorts: 0, SlicePorts: 8, Clock: sim.ClockFromMHz(700), ChannelBytes: 32}); err == nil {
		t.Error("zero SM ports accepted")
	}
	if _, err := New(&eng, Config{SMPorts: 12, SlicePorts: 8, ChannelBytes: 0, Clock: sim.ClockFromMHz(700)}); err == nil {
		t.Error("zero channel width accepted")
	}
}

func TestUncontendedLatency(t *testing.T) {
	_, x := newXbar(t, 12)
	cfg := x.Config()
	// 8B header packet: 1 flit + router latency.
	arrive := x.SendToSlice(0, 0, 8)
	want := cfg.Clock.Cycles(int64(1 + cfg.RouterCycles))
	if arrive != want {
		t.Errorf("arrive = %v, want %v", arrive, want)
	}
	// 128B data packet: 4 flits.
	arrive2 := x.SendToSM(1000000, 3, 128)
	want2 := sim.Time(1000000) + cfg.Clock.Cycles(int64(4+cfg.RouterCycles))
	if arrive2 != want2 {
		t.Errorf("data arrive = %v, want %v", arrive2, want2)
	}
	if x.Packets() != 2 {
		t.Errorf("packets = %d", x.Packets())
	}
}

func TestHotspotContention(t *testing.T) {
	// All packets to one slice serialize; spread packets do not.
	_, hot := newXbar(t, 12)
	var lastHot sim.Time
	for i := 0; i < 32; i++ {
		if a := hot.SendToSlice(0, 0, 128); a > lastHot {
			lastHot = a
		}
	}
	_, spread := newXbar(t, 12)
	var lastSpread sim.Time
	for i := 0; i < 32; i++ {
		if a := spread.SendToSlice(0, i%8, 128); a > lastSpread {
			lastSpread = a
		}
	}
	if lastHot < 7*lastSpread/2 {
		t.Errorf("hotspot (%v) should be ~8x slower than spread (%v)", lastHot, lastSpread)
	}
	if hot.AvgPacketLatency() <= spread.AvgPacketLatency() {
		t.Errorf("hotspot latency %.1f <= spread latency %.1f cycles",
			hot.AvgPacketLatency(), spread.AvgPacketLatency())
	}
}

func TestPortUtilization(t *testing.T) {
	_, x := newXbar(t, 12)
	for i := 0; i < 10; i++ {
		x.SendToSlice(0, 0, 128)
	}
	cfg := x.Config()
	horizon := cfg.Clock.Cycles(40) // exactly the busy span of 10x4 flits
	max, min := x.PortUtilization(horizon)
	if max < 0.99 || max > 1.01 {
		t.Errorf("max utilization = %v, want ~1", max)
	}
	if min != 0 {
		t.Errorf("min utilization = %v, want 0", min)
	}
	if mx, mn := x.PortUtilization(0); mx != 0 || mn != 0 {
		t.Error("zero horizon should give zero utilization")
	}
}

func TestMinimumOneFlit(t *testing.T) {
	_, x := newXbar(t, 12)
	a := x.SendToSlice(0, 0, 0)
	if a <= 0 {
		t.Error("zero-byte packet should still take one flit")
	}
}

func TestMaxLatencyTracked(t *testing.T) {
	_, x := newXbar(t, 12)
	for i := 0; i < 16; i++ {
		x.SendToSlice(0, 0, 128)
	}
	if x.MaxPacketLatency() <= x.AvgPacketLatency() {
		t.Errorf("max %.1f should exceed avg %.1f under queueing",
			x.MaxPacketLatency(), x.AvgPacketLatency())
	}
}

func TestDirectionsIndependent(t *testing.T) {
	_, x := newXbar(t, 12)
	// Saturate the request direction; responses must be unaffected.
	for i := 0; i < 100; i++ {
		x.SendToSlice(0, 0, 128)
	}
	cfg := x.Config()
	a := x.SendToSM(0, 0, 128)
	want := cfg.Clock.Cycles(int64(4 + cfg.RouterCycles))
	if a != want {
		t.Errorf("response arrive = %v, want %v (unaffected by request congestion)", a, want)
	}
}
