// Package noc models the SM↔LLC crossbar network of Table I: a 12×8
// crossbar at 700 MHz with 32-byte channels (179.3 GB/s aggregate).
//
// The model captures what the paper's Figure 13a measures: per-packet
// latency including queueing at contended destination ports. Each
// destination port in each direction is a single-server resource; a
// packet's service time is its flit count times the channel cycle. When
// address mapping concentrates traffic on one LLC slice, its input port
// serializes and packet latency explodes — the BASE behavior on MT/LU.
package noc

import (
	"fmt"

	"valleymap/internal/sim"
)

// Config describes the crossbar.
type Config struct {
	// SMPorts and SlicePorts are the two sides of the crossbar (12×8 in
	// Table I).
	SMPorts    int
	SlicePorts int
	// Clock is the NoC clock (700 MHz in Table I).
	Clock sim.Clock
	// ChannelBytes is the link width per cycle (32 B in Table I).
	ChannelBytes int
	// RouterCycles is the fixed traversal latency in NoC cycles.
	RouterCycles int
}

// DefaultConfig returns Table I's NoC for the given SM count.
func DefaultConfig(sms int) Config {
	return Config{
		SMPorts:      sms,
		SlicePorts:   8,
		Clock:        sim.ClockFromMHz(700),
		ChannelBytes: 32,
		RouterCycles: 4,
	}
}

// Crossbar is the contention and latency model.
type Crossbar struct {
	cfg     Config
	eng     *sim.Engine
	toSlice []sim.Server // request direction, per slice port
	toSM    []sim.Server // response direction, per SM port
	latency sim.Welford  // per-packet latency in NoC cycles
	packets int64
}

// New builds a crossbar attached to the engine.
func New(eng *sim.Engine, cfg Config) (*Crossbar, error) {
	if cfg.SMPorts <= 0 || cfg.SlicePorts <= 0 {
		return nil, fmt.Errorf("noc: ports %dx%d", cfg.SMPorts, cfg.SlicePorts)
	}
	if cfg.ChannelBytes <= 0 || cfg.Clock.Period <= 0 {
		return nil, fmt.Errorf("noc: bad channel/clock config")
	}
	return &Crossbar{
		cfg:     cfg,
		eng:     eng,
		toSlice: make([]sim.Server, cfg.SlicePorts),
		toSM:    make([]sim.Server, cfg.SMPorts),
	}, nil
}

// Config returns the crossbar configuration.
func (x *Crossbar) Config() Config { return x.cfg }

// flits returns the serialized occupancy of a payload.
func (x *Crossbar) flits(payloadBytes int) int64 {
	n := int64((payloadBytes + x.cfg.ChannelBytes - 1) / x.cfg.ChannelBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// send pushes a packet through one directional port server and returns
// the arrival time. Latency = router pipeline + queueing + serialization.
func (x *Crossbar) send(srv *sim.Server, now sim.Time, payloadBytes int) sim.Time {
	service := x.cfg.Clock.Cycles(x.flits(payloadBytes))
	_, done := srv.Acquire(now, service)
	arrive := done + x.cfg.Clock.Cycles(int64(x.cfg.RouterCycles))
	x.latency.Observe(x.cfg.Clock.ToCycles(arrive - now))
	x.packets++
	return arrive
}

// SendToSlice delivers a request packet from an SM to an LLC slice port
// and returns its arrival time. Read requests are header-only (8 B);
// write requests carry a 128 B line.
func (x *Crossbar) SendToSlice(now sim.Time, slice int, payloadBytes int) sim.Time {
	return x.send(&x.toSlice[slice], now, payloadBytes)
}

// SendToSM delivers a response packet back to an SM port.
func (x *Crossbar) SendToSM(now sim.Time, sm int, payloadBytes int) sim.Time {
	return x.send(&x.toSM[sm], now, payloadBytes)
}

// AvgPacketLatency returns the mean per-packet latency in NoC cycles —
// the Figure 13a metric.
func (x *Crossbar) AvgPacketLatency() float64 { return x.latency.Mean() }

// MaxPacketLatency returns the worst packet latency seen, in NoC cycles.
func (x *Crossbar) MaxPacketLatency() float64 { return x.latency.Max() }

// Packets returns the number of packets transferred.
func (x *Crossbar) Packets() int64 { return x.packets }

// PortUtilization returns the busy fraction of the most- and least-loaded
// slice ports over the horizon — a direct view of slice imbalance.
func (x *Crossbar) PortUtilization(horizon sim.Time) (max, min float64) {
	if len(x.toSlice) == 0 || horizon <= 0 {
		return 0, 0
	}
	min = 1
	for i := range x.toSlice {
		u := x.toSlice[i].Utilization(horizon)
		if u > max {
			max = u
		}
		if u < min {
			min = u
		}
	}
	return max, min
}
