package obs

import (
	"runtime"
	"strconv"
)

// RuntimeCollector samples Go runtime health at render time: live
// goroutines, heap bytes, cumulative GC pause time and GC cycles. One
// ReadMemStats per exposition (it stops the world briefly, so it runs
// only when /metrics is scraped, never on a hot path).
type RuntimeCollector struct {
	// Prefix namespaces the families (e.g. "valleyd").
	Prefix string
}

func (rc RuntimeCollector) family(b []byte, name, typ, help string, v float64) []byte {
	full := rc.Prefix + name
	b = append(b, "# HELP "...)
	b = append(b, full...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, full...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	b = append(b, full...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	b = append(b, '\n')
	return b
}

// Collect implements Collector.
func (rc RuntimeCollector) Collect(b []byte) []byte {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b = rc.family(b, "_goroutines", "gauge", "Live goroutines.", float64(runtime.NumGoroutine()))
	b = rc.family(b, "_heap_alloc_bytes", "gauge", "Heap bytes allocated and in use.", float64(ms.HeapAlloc))
	b = rc.family(b, "_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.", float64(ms.HeapSys))
	b = rc.family(b, "_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
	b = rc.family(b, "_gc_cycles_total", "counter", "Completed GC cycles.", float64(ms.NumGC))
	return b
}
