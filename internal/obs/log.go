package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a structured logger writing to w. format is "text"
// (the default) or "json"; level follows ParseLevel.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// loggerKey, traceIDKey and acceptKey carry request-scoped values
// through contexts.
type loggerKey struct{}
type traceIDKey struct{}
type acceptKey struct{}

// WithLogger returns a context carrying l as its request-scoped logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// Logger returns the context's request-scoped logger, or slog.Default()
// when none was attached — call sites never need a nil check.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}

// WithTraceID returns a context carrying the request's trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string {
	if id, ok := ctx.Value(traceIDKey{}).(string); ok {
		return id
	}
	return ""
}

// WithAcceptTime returns a context carrying the instant the request was
// accepted, so spans recorded deeper in the stack can start at the true
// accept time rather than wherever the context happened to surface.
func WithAcceptTime(ctx context.Context, t time.Time) context.Context {
	return context.WithValue(ctx, acceptKey{}, t)
}

// AcceptTime returns the context's accept instant, or the zero time
// when none was attached (span starts then default to now).
func AcceptTime(ctx context.Context) time.Time {
	if t, ok := ctx.Value(acceptKey{}).(time.Time); ok {
		return t
	}
	return time.Time{}
}

// idCounter disambiguates fallback IDs when crypto/rand fails.
var idCounter atomic.Int64

// NewTraceID returns a 16-byte random identifier in hex (the W3C
// trace-id width). It never fails: if the system's entropy source is
// unavailable it falls back to a timestamp + counter, which is unique
// within the process.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x%016x", time.Now().UnixNano(), idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}
