package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a Trace. IDs are assigned in start
// order from 1; Parent 0 means top level. A zero End means the span is
// still open.
type Span struct {
	ID     int
	Parent int
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Trace is a per-job span recorder: a mutex-guarded ring buffer of
// spans. When more than the configured capacity of spans start, the
// oldest are overwritten and counted as dropped — a runaway job can
// never grow its trace without bound. Safe for concurrent use; spans
// may start and end on different goroutines.
type Trace struct {
	id  string
	cap int

	mu      sync.Mutex
	spans   []Span // ring, insertion order once full
	next    int    // ring slot for the next span
	nextID  int
	dropped int
}

// defaultSpanCap bounds a trace that did not choose its own capacity.
const defaultSpanCap = 4096

// NewTrace builds a trace identified by id, retaining at most maxSpans
// spans (0 uses a 4096-span default).
func NewTrace(id string, maxSpans int) *Trace {
	if maxSpans <= 0 {
		maxSpans = defaultSpanCap
	}
	return &Trace{id: id, cap: maxSpans}
}

// ID returns the trace identifier (the job's trace_id).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanRef is a handle to a started span. The zero SpanRef is a no-op
// (Ends do nothing), so instrumentation can be written unconditionally
// against a nil trace.
type SpanRef struct {
	t  *Trace
	id int
}

// ID returns the span's ID (0 for the zero SpanRef), usable as a
// parent for child spans.
func (s SpanRef) ID() int { return s.id }

// Start opens a span now. parent is a SpanRef.ID (0 = top level). A nil
// trace returns the zero SpanRef.
func (t *Trace) Start(parent int, name string, attrs ...Attr) SpanRef {
	return t.StartAt(parent, name, time.Time{}, attrs...)
}

// StartAt opens a span with an explicit start time (zero = now), so
// queue waits and accept-to-enqueue gaps can be recorded after the
// fact.
func (t *Trace) StartAt(parent int, name string, at time.Time, attrs ...Attr) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	if at.IsZero() {
		at = time.Now()
	}
	t.mu.Lock()
	t.nextID++
	sp := Span{ID: t.nextID, Parent: parent, Name: name, Start: at, Attrs: attrs}
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, sp)
	} else {
		t.spans[t.next] = sp
		t.dropped++
	}
	t.next = (t.next + 1) % t.cap
	id := t.nextID
	t.mu.Unlock()
	return SpanRef{t: t, id: id}
}

// End closes the span now. Ending a span the ring has already
// overwritten is a no-op.
func (s SpanRef) End() { s.EndAt(time.Time{}) }

// EndAt closes the span at an explicit time (zero = now).
func (s SpanRef) EndAt(at time.Time) {
	if s.t == nil || s.id == 0 {
		return
	}
	if at.IsZero() {
		at = time.Now()
	}
	t := s.t
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].ID == s.id {
			t.spans[i].End = at
			break
		}
	}
	t.mu.Unlock()
}

// Annotate appends attributes to an open (or closed) span.
func (s SpanRef) Annotate(attrs ...Attr) {
	if s.t == nil || s.id == 0 {
		return
	}
	t := s.t
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].ID == s.id {
			t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
			break
		}
	}
	t.mu.Unlock()
}

// Dropped returns how many spans the ring has overwritten.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNode is one node of the rendered span tree (the JSON shape of
// GET /v1/jobs/{id}/trace). Durations are microseconds; an open span
// reports the duration up to render time and in_progress=true.
type SpanNode struct {
	ID         int               `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanNode       `json:"children,omitempty"`
}

// Tree renders the retained spans as a forest ordered by span ID (start
// order). Spans whose parent has been overwritten by the ring re-root
// at the top level.
func (t *Trace) Tree() []*SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	now := time.Now()
	nodes := make(map[int]*SpanNode, len(spans))
	var roots []*SpanNode
	for _, sp := range spans {
		n := &SpanNode{ID: sp.ID, Name: sp.Name, Start: sp.Start}
		if sp.End.IsZero() {
			n.DurationUS = now.Sub(sp.Start).Microseconds()
			n.InProgress = true
		} else {
			n.DurationUS = sp.End.Sub(sp.Start).Microseconds()
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[sp.ID] = n
	}
	for _, sp := range spans {
		n := nodes[sp.ID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != 0 && sp.Parent != sp.ID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}
