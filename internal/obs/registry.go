package obs

import (
	"io"
	"strconv"
)

// Collector renders one or more complete metric families (HELP/TYPE
// preamble plus sample lines) into a Prometheus text-format buffer.
type Collector interface {
	Collect(b []byte) []byte
}

// GaugeFunc is a gauge family sampled at render time.
type GaugeFunc struct {
	Name string
	Help string
	Fn   func() float64
}

// Collect implements Collector.
func (g GaugeFunc) Collect(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, g.Name...)
	b = append(b, ' ')
	b = append(b, g.Help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, g.Name...)
	b = append(b, " gauge\n"...)
	b = append(b, g.Name...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, g.Fn(), 'g', -1, 64)
	b = append(b, '\n')
	return b
}

// Registry is an ordered set of collectors rendered into one exposition
// document. Registration order is exposition order, which keeps
// /metrics output stable for tests and diffing.
type Registry struct {
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Registration is construction-time
// wiring, not hot path; it is not synchronized.
func (r *Registry) Register(c Collector) { r.collectors = append(r.collectors, c) }

// Collect renders every registered collector in order.
func (r *Registry) Collect(b []byte) []byte {
	for _, c := range r.collectors {
		b = c.Collect(b)
	}
	return b
}

// WriteTo renders the registry to w in Prometheus text format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(r.Collect(nil))
	return int64(n), err
}
