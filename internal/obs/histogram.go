package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ExpBuckets returns n exponentially growing upper bounds starting at
// start: start, start×factor, start×factor², … . The implicit final
// +Inf bucket is not included (the Histogram adds it).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets is the standard latency layout: 12 buckets
// growing ×4 from 1 µs (1 µs … ~4.2 s), covering per-batch pipeline
// steps through full sweep cells at half-decade resolution.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(1e-6, 4, 12) }

// Histogram is a fixed-bucket histogram with lock-free observation:
// counts are atomic per bucket, the sum is a CAS loop over float bits.
// Observe performs zero allocations. Construct with NewHistogram or
// through a HistogramVec.
type Histogram struct {
	name   string // family name (no suffix)
	help   string
	labels string // pre-rendered `k="v",` pairs, "" for no labels

	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// NewHistogram builds an unlabeled histogram family. bounds must ascend;
// nil uses DefaultLatencyBuckets.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend")
	}
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one value. It is safe for concurrent use and never
// allocates.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since t.
func (h *Histogram) ObserveSince(t time.Time) { h.ObserveDuration(time.Since(t)) }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Name returns the family name.
func (h *Histogram) Name() string { return h.name }

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeProm renders this histogram's series (without HELP/TYPE, which
// belong to the family and are written once by the owner).
func (h *Histogram) writeProm(b []byte) []byte {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatLe(h.bounds[i])
		}
		b = append(b, h.name...)
		b = append(b, "_bucket{"...)
		b = append(b, h.labels...)
		b = append(b, "le=\""...)
		b = append(b, le...)
		b = append(b, "\"} "...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	suffix := func(s string) []byte {
		b = append(b, h.name...)
		b = append(b, s...)
		if h.labels != "" {
			b = append(b, '{')
			// labels ends with a trailing comma for the le= join; trim it.
			b = append(b, strings.TrimSuffix(h.labels, ",")...)
			b = append(b, '}')
		}
		b = append(b, ' ')
		return b
	}
	b = suffix("_sum")
	b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
	b = append(b, '\n')
	b = suffix("_count")
	b = strconv.AppendInt(b, h.Count(), 10)
	b = append(b, '\n')
	return b
}

// header writes the family's HELP/TYPE preamble.
func histHeader(b []byte, name, help string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, " histogram\n"...)
	return b
}

// Collect implements Collector for a standalone histogram family.
func (h *Histogram) Collect(b []byte) []byte {
	b = histHeader(b, h.name, h.help)
	return h.writeProm(b)
}

// HistogramVec is a histogram family partitioned by a fixed set of
// label names. Children are created on first With and live for the
// process lifetime, so callers on hot paths should resolve their child
// once and hold the *Histogram.
type HistogramVec struct {
	name       string
	help       string
	labelNames []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*Histogram
	order    []string // creation order, for stable exposition
}

// NewHistogramVec builds a labeled histogram family. bounds nil uses
// DefaultLatencyBuckets.
func NewHistogramVec(name, help string, labelNames []string, bounds []float64) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs label names (use NewHistogram)")
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	return &HistogramVec{
		name: name, help: help, labelNames: labelNames, bounds: bounds,
		children: map[string]*Histogram{},
	}
}

// With returns the child histogram for the given label values (one per
// label name, in order), creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labelNames), len(values)))
	}
	var sb strings.Builder
	for i, val := range values {
		sb.WriteString(v.labelNames[i])
		sb.WriteString("=")
		sb.WriteString(strconv.Quote(val))
		sb.WriteString(",")
	}
	key := sb.String()
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.name, v.help, v.bounds)
		h.labels = key
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

// Collect renders the family: HELP/TYPE once, then every child's series
// in creation order.
func (v *HistogramVec) Collect(b []byte) []byte {
	b = histHeader(b, v.name, v.help)
	v.mu.Lock()
	children := make([]*Histogram, 0, len(v.order))
	for _, key := range v.order {
		children = append(children, v.children[key])
	}
	v.mu.Unlock()
	for _, h := range children {
		b = h.writeProm(b)
	}
	return b
}
