package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 1.6e-5, 6.4e-5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if diff := got[i]/want[i] - 1; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram("test_seconds", "help", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // bucket 0 (le is inclusive)
	h.Observe(0.05)   // bucket 2
	h.Observe(5)      // +Inf bucket
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got, want := h.Sum(), 0.0005+0.001+0.05+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	out := string(h.Collect(nil))
	for _, want := range []string{
		"# HELP test_seconds help\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.001"} 2`,
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram("alloc_test_seconds", "help", nil)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.0123) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want 0", allocs)
	}
	v := NewHistogramVec("alloc_vec_seconds", "help", []string{"stage"}, nil)
	child := v.With("decode")
	allocs = testing.AllocsPerRun(1000, func() { child.ObserveDuration(3 * time.Millisecond) })
	if allocs != 0 {
		t.Fatalf("child Observe allocates %v allocs/op, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("conc_seconds", "help", nil)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if got, want := h.Sum(), float64(goroutines*per)*0.001; got < want*0.999 || got > want*1.001 {
		t.Fatalf("sum = %g, want ~%g", got, want)
	}
}

func TestHistogramVecChildren(t *testing.T) {
	v := NewHistogramVec("vec_seconds", "help", []string{"path", "code"}, []float64{1})
	v.With("/a", "200").Observe(0.5)
	v.With("/a", "200").Observe(2)
	v.With("/b", "404").Observe(0.1)
	out := string(v.Collect(nil))
	for _, want := range []string{
		`vec_seconds_bucket{path="/a",code="200",le="1"} 1`,
		`vec_seconds_bucket{path="/a",code="200",le="+Inf"} 2`,
		`vec_seconds_count{path="/a",code="200"} 2`,
		`vec_seconds_bucket{path="/b",code="404",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE vec_seconds histogram"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTrace("abc", 0)
	root := tr.StartAt(0, "job", time.Now().Add(-time.Second))
	enq := tr.Start(root.ID(), "enqueue")
	enq.End()
	cell := tr.Start(root.ID(), "cell", Attr{"workload", "MT"}, Attr{"scheme", "BASE"})
	qw := tr.Start(cell.ID(), "queue_wait")
	qw.End()
	cell.Annotate(Attr{"cached", "false"})
	cell.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want single job root", roots)
	}
	job := roots[0]
	if job.DurationUS < 900_000 {
		t.Errorf("job duration = %dus, want >= ~1s", job.DurationUS)
	}
	if len(job.Children) != 2 {
		t.Fatalf("job children = %d, want 2", len(job.Children))
	}
	cellNode := job.Children[1]
	if cellNode.Name != "cell" || cellNode.Attrs["workload"] != "MT" || cellNode.Attrs["cached"] != "false" {
		t.Errorf("cell node = %+v", cellNode)
	}
	if len(cellNode.Children) != 1 || cellNode.Children[0].Name != "queue_wait" {
		t.Errorf("cell children = %+v", cellNode.Children)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestSpanRingDropsOldest(t *testing.T) {
	tr := NewTrace("ring", 4)
	var refs []SpanRef
	for i := 0; i < 10; i++ {
		refs = append(refs, tr.Start(0, "s"))
	}
	for _, r := range refs {
		r.End() // ending overwritten spans must be harmless
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	roots := tr.Tree()
	if len(roots) != 4 {
		t.Fatalf("retained roots = %d, want 4", len(roots))
	}
	// The newest spans survive.
	if roots[len(roots)-1].ID != 10 {
		t.Errorf("newest retained ID = %d, want 10", roots[len(roots)-1].ID)
	}
}

func TestSpanOrphanReroots(t *testing.T) {
	tr := NewTrace("orphan", 2)
	parent := tr.Start(0, "parent")
	tr.Start(parent.ID(), "a")
	tr.Start(parent.ID(), "b") // overwrites parent in the 2-slot ring
	roots := tr.Tree()
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (orphans re-root)", len(roots))
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	sp := tr.Start(0, "x")
	sp.End()
	sp.Annotate(Attr{"k", "v"})
	if tr.Tree() != nil || tr.Dropped() != 0 || tr.ID() != "" {
		t.Fatal("nil trace must be inert")
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}

	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Errorf("json log output = %q", buf.String())
	}
	l.Debug("hidden")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("debug line leaked at info level")
	}
	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Error("NewLogger(yaml) should fail")
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if Logger(ctx) != slog.Default() {
		t.Error("bare context should yield the default logger")
	}
	var buf bytes.Buffer
	l := slog.New(slog.NewTextHandler(&buf, nil))
	ctx = WithLogger(ctx, l)
	if Logger(ctx) != l {
		t.Error("WithLogger round trip failed")
	}
	if TraceID(ctx) != "" {
		t.Error("bare context should have no trace ID")
	}
	ctx = WithTraceID(ctx, "tid")
	if TraceID(ctx) != "tid" {
		t.Error("WithTraceID round trip failed")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || a == b {
		t.Fatalf("trace IDs = %q, %q: want 32 hex chars, distinct", a, b)
	}
}
