// Package obs is valleyd's stdlib-only observability core: structured
// logging helpers over log/slog, lightweight span tracing, fixed-bucket
// latency histograms with Prometheus text exposition, and runtime
// gauges. Every service layer — HTTP handlers, the worker pool, the
// sweep dispatcher, the streaming profile pipeline and the snapshot
// writer — instruments through this package, so the daemon has one
// consistent story for "what happened, when, and how long did it take".
//
// # Overhead budget
//
// Instruments are designed to be safe on hot paths:
//
//   - Histogram.Observe is lock-free (one atomic add per bucket walk
//     plus a CAS for the sum) and performs zero allocations; the bucket
//     walk is a linear scan over at most a few dozen boundaries.
//   - Span recording takes one short mutex hold per start/end and
//     amortizes storage through a ring buffer; a trace never grows past
//     its configured span capacity (older spans are overwritten and
//     counted as dropped).
//   - Loggers are plain *slog.Logger values; disabled levels cost one
//     atomic load per call site, the stdlib contract.
//
// The simulation engine itself (internal/sim) is deliberately not
// instrumented per event: its zero-allocation steady-state guarantee is
// CI-enforced, and per-event timestamps would swamp the simulated work.
// Engine-level visibility comes from coarse per-run stage taps on
// gpusim.Runner instead.
//
// # Bucket layout
//
// Histograms use fixed log-scale buckets chosen at construction
// (ExpBuckets); the default latency layout is DefaultLatencyBuckets:
// 12 buckets growing ×4 from 1 µs, spanning 1 µs – ~4.2 s, which covers
// everything from a per-batch decode step to a full-scale sweep cell
// with roughly half-decade resolution. Exposition follows the
// Prometheus text format: cumulative _bucket series ending in le="+Inf",
// plus _sum and _count.
//
// # Span lifecycle
//
// A Trace is created per job with NewTrace and carries a ring buffer of
// spans. Start opens a span (optionally under a parent and with a fixed
// start time, e.g. the HTTP accept instant); the returned SpanRef's End
// closes it. Spans may start and end on different goroutines from the
// trace's creator — the trace's mutex orders all mutations. Tree
// renders the completed (or in-progress) spans as a parent→child forest
// for the /v1/jobs/{id}/trace endpoint; spans whose parent was
// overwritten by the ring re-root at the top level rather than
// disappearing.
package obs
