package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"valleymap/internal/testutil"
)

// fakeWorker speaks the /v1/cells NDJSON protocol with a scriptable
// per-cell payload, recording the headers the coordinator sent.
type fakeWorker struct {
	gotTrace    string
	gotDeadline string
	// respond overrides the default happy-path stream when set.
	respond func(w http.ResponseWriter, b Batch)
}

func (f *fakeWorker) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/cells" {
			http.NotFound(w, r)
			return
		}
		f.gotTrace = r.Header.Get("X-Trace-Id")
		f.gotDeadline = r.Header.Get("X-Deadline-Ms")
		var b Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if f.respond != nil {
			f.respond(w, b)
			return
		}
		enc := json.NewEncoder(w)
		for i := range b.Cells {
			payload, _ := json.Marshal(map[string]any{"seconds": float64(i)})
			enc.Encode(Update{Type: UpdateCell, Cell: &b.Cells[i], Payload: payload}) //nolint:errcheck
		}
		enc.Encode(Update{Type: UpdateDone}) //nolint:errcheck
	})
}

func testBatch() Batch {
	return Batch{
		Cells:  []Cell{{Workload: "MT", Scheme: "BASE"}, {Workload: "MT", Scheme: "PAE"}},
		Scale:  "tiny",
		Config: "baseline",
		Seed:   1,
	}
}

func TestExecuteCellsDeliversAllAndPropagatesHeaders(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	fw := &fakeWorker{}
	ts := httptest.NewServer(fw.handler())
	defer ts.Close()
	c := New(Options{Peers: []string{ts.URL}})

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(30*time.Second))
	defer cancel()
	var got []Cell
	err := c.ExecuteCells(ctx, ts.URL, "trace-123", testBatch(), func(cell Cell, _ json.RawMessage) {
		got = append(got, cell)
	})
	if err != nil {
		t.Fatalf("ExecuteCells: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d cells, want 2: %v", len(got), got)
	}
	if fw.gotTrace != "trace-123" {
		t.Errorf("X-Trace-Id = %q, want trace-123", fw.gotTrace)
	}
	ms, err := strconv.ParseInt(fw.gotDeadline, 10, 64)
	if err != nil || ms <= 0 || ms > 30_000 {
		t.Errorf("X-Deadline-Ms = %q, want the remaining budget in (0, 30000]", fw.gotDeadline)
	}
	if states := c.PeerStates(); !states[ts.URL] {
		t.Errorf("peer marked down after a clean batch: %v", states)
	}
}

// TestExecuteCellsTornStream: the worker dies after one cell. The
// delivered cell must be reported exactly once, the error must be
// ErrTorn, and the peer must enter its down cooldown (then recover
// after it lapses).
func TestExecuteCellsTornStream(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	fw := &fakeWorker{}
	fw.respond = func(w http.ResponseWriter, b Batch) {
		enc := json.NewEncoder(w)
		payload, _ := json.Marshal(map[string]any{"seconds": 0.1})
		enc.Encode(Update{Type: UpdateCell, Cell: &b.Cells[0], Payload: payload}) //nolint:errcheck
		// No terminal update: the handler just returns, closing the body.
	}
	ts := httptest.NewServer(fw.handler())
	defer ts.Close()
	c := New(Options{Peers: []string{ts.URL}, DownCooldown: 50 * time.Millisecond})

	var got []Cell
	err := c.ExecuteCells(context.Background(), ts.URL, "", testBatch(), func(cell Cell, _ json.RawMessage) {
		got = append(got, cell)
	})
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("error = %v, want ErrTorn", err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d cells before the tear, want 1", len(got))
	}
	if len(c.Healthy()) != 0 {
		t.Errorf("torn peer still healthy: %v", c.Healthy())
	}
	time.Sleep(80 * time.Millisecond)
	if len(c.Healthy()) != 1 {
		t.Errorf("peer not lazily retried after its cooldown: %v", c.Healthy())
	}
}

// TestExecuteCellsStall: the worker wedges mid-batch. The watchdog must
// abort the read with ErrStalled within the stall timeout instead of
// hanging the sweep.
func TestExecuteCellsStall(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	fw := &fakeWorker{}
	fw.respond = func(w http.ResponseWriter, b Batch) {
		enc := json.NewEncoder(w)
		payload, _ := json.Marshal(map[string]any{"seconds": 0.1})
		enc.Encode(Update{Type: UpdateCell, Cell: &b.Cells[0], Payload: payload}) //nolint:errcheck
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release // wedge: no more updates, no terminal
	}
	ts := httptest.NewServer(fw.handler())
	defer ts.Close()
	// Unwedge the handler before ts.Close waits on it (defers are LIFO).
	defer close(release)
	c := New(Options{Peers: []string{ts.URL}, StallTimeout: 100 * time.Millisecond})

	start := time.Now()
	err := c.ExecuteCells(context.Background(), ts.URL, "", testBatch(), func(Cell, json.RawMessage) {})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("error = %v, want ErrStalled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("stall detection took %s, want ~the 100ms stall timeout", d)
	}
	if len(c.Healthy()) != 0 {
		t.Errorf("stalled peer still healthy: %v", c.Healthy())
	}
}

// TestExecuteCellsWorkerFailed: an explicit failed terminal is the
// worker answering coherently — it must surface as an error without
// marking the peer down.
func TestExecuteCellsWorkerFailed(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	fw := &fakeWorker{}
	fw.respond = func(w http.ResponseWriter, b Batch) {
		json.NewEncoder(w).Encode(Update{Type: UpdateFailed, Error: "engine exploded"}) //nolint:errcheck
	}
	ts := httptest.NewServer(fw.handler())
	defer ts.Close()
	c := New(Options{Peers: []string{ts.URL}})

	err := c.ExecuteCells(context.Background(), ts.URL, "", testBatch(), func(Cell, json.RawMessage) {})
	if err == nil {
		t.Fatal("want an error from a failed terminal")
	}
	if got := err.Error(); !strings.Contains(got, "engine exploded") {
		t.Errorf("error %q does not carry the worker's reason", got)
	}
	if len(c.Healthy()) != 1 {
		t.Errorf("peer marked down for an application-level failure: %v", c.Healthy())
	}
}

// TestExecuteCellsConnectionRefused: a dead peer fails fast at the
// transport and enters its cooldown.
func TestExecuteCellsConnectionRefused(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // the port is now dead
	c := New(Options{Peers: []string{url}})

	err := c.ExecuteCells(context.Background(), url, "", testBatch(), func(Cell, json.RawMessage) {})
	if err == nil {
		t.Fatal("want a transport error from a dead peer")
	}
	if len(c.Healthy()) != 0 {
		t.Errorf("dead peer still healthy: %v", c.Healthy())
	}
}

// TestExecuteCellsParentCancel: the sweep's own cancellation must not
// blame the peer.
func TestExecuteCellsParentCancel(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	release := make(chan struct{})
	fw := &fakeWorker{}
	fw.respond = func(w http.ResponseWriter, b Batch) {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-release
	}
	ts := httptest.NewServer(fw.handler())
	defer ts.Close()
	// Unwedge the handler before ts.Close waits on it (defers are LIFO).
	defer close(release)
	c := New(Options{Peers: []string{ts.URL}})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	err := c.ExecuteCells(ctx, ts.URL, "", testBatch(), func(Cell, json.RawMessage) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(c.Healthy()) != 1 {
		t.Errorf("peer marked down for the caller's own cancel: %v", c.Healthy())
	}
}
