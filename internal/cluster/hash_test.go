package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRankDeterministic(t *testing.T) {
	peers := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("sim|MT|tiny|PAE|baseline|%d", i)
		a := Rank(key, peers)
		b := Rank(key, peers)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Rank(%q) unstable: %v vs %v", key, a, b)
		}
		if len(a) != len(peers) {
			t.Fatalf("Rank(%q) = %v, want a permutation of %v", key, a, peers)
		}
		if got, want := Owner(key, peers), a[0]; got != want {
			t.Fatalf("Owner(%q) = %q, want Rank[0] = %q", key, got, want)
		}
	}
}

// TestRankStableUnderRemoval is the rendezvous property the affinity
// design rests on: deleting one peer must only move the keys that peer
// owned — every other key keeps its owner.
func TestRankStableUnderRemoval(t *testing.T) {
	peers := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080", "http://w4:8080"}
	removed := peers[2]
	survivors := append(append([]string(nil), peers[:2]...), peers[3])
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("sim|LU|small|RMP|conv-24|%d", i)
		before := Owner(key, peers)
		after := Owner(key, survivors)
		if before == removed {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though %s was removed", key, before, after, removed)
		}
	}
	if moved == 0 {
		t.Error("removed peer owned no keys out of 200 — the distribution test is vacuous")
	}
}

// TestRankSpreads sanity-checks the distribution: over many keys, every
// peer owns a non-trivial share (a broken hash that pins everything to
// one peer would defeat the whole sharding scheme).
func TestRankSpreads(t *testing.T) {
	peers := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	owned := map[string]int{}
	const n = 600
	for i := 0; i < n; i++ {
		owned[Owner(fmt.Sprintf("sim|SC|full|ALL|3d|%d", i), peers)]++
	}
	for _, p := range peers {
		if owned[p] < n/10 {
			t.Errorf("peer %s owns %d of %d keys — distribution badly skewed: %v", p, owned[p], n, owned)
		}
	}
}

func TestOwnerEmptyPeers(t *testing.T) {
	if got := Owner("k", nil); got != "" {
		t.Fatalf("Owner with no peers = %q, want empty", got)
	}
	if got := Rank("k", nil); len(got) != 0 {
		t.Fatalf("Rank with no peers = %v, want empty", got)
	}
}
