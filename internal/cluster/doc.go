// Package cluster is the peer-to-peer transport behind valleyd's
// coordinator/worker mode: a coordinator assigns simulation sweep cells
// to worker nodes by rendezvous hashing over the cells' sim-cache keys
// and streams per-cell results back over NDJSON, so repeat cells land
// on the worker whose cache (memory or spill tier) is already warm.
//
// The package deliberately knows nothing about internal/service: it
// moves opaque cells (workload × scheme coordinates plus a raw JSON
// payload) between nodes, and the service layer on each side owns
// resolving, executing and merging them. That keeps the dependency
// arrow service → cluster and the wire types free of engine details.
//
// # Ownership: rendezvous hashing
//
// Rank orders peers by highest-random-weight (rendezvous) score for a
// key: every node computes the same ranking independently, with no
// coordination state, and removing one peer only moves that peer's
// keys (the remaining ranking is undisturbed — the property that makes
// cache affinity survive membership churn). The coordinator hashes
// each cell's sim-cache key — the exact string the worker's two-tier
// cache is keyed by — so a cell re-dispatched tomorrow lands on the
// same worker that cached it today, and a full-cluster restart with
// warm spill directories serves the whole sweep from disk.
//
// # Batch protocol
//
// The coordinator POSTs a Batch (cells sharing one scale/config/seed)
// to a worker's /v1/cells endpoint and reads Updates back as NDJSON,
// one per line, flushed as produced:
//
//	{"type":"cell","cell":{...},"payload":{...}}   one finished cell
//	{"type":"done"}                                terminal success
//	{"type":"failed","error":"..."}                terminal failure
//
// Updates arrive in completion order, not batch order. A stream that
// ends without a terminal update is torn — the peer died or the
// connection broke — and only the undelivered cells are retried: the
// coordinator tracks outstanding cells per batch, so a torn stream
// never loses or duplicates a delivered cell.
//
// # Health, stalls and steals
//
// The client keeps a cooldown table instead of a background prober: a
// peer whose batch fails at the transport level (or whose stream tears
// or stalls) is marked down for Options.DownCooldown and excluded from
// Healthy rankings until the cooldown lapses, when it is lazily retried
// by the next batch routed to it. A per-batch watchdog bounds silence:
// if no update arrives for Options.StallTimeout the request is aborted
// and ErrStalled returned, so a wedged worker costs one timeout, not a
// hung sweep — the coordinator then re-dispatches ("steals") the
// batch's outstanding cells to the next-ranked healthy peer, and falls
// back to local execution when no peer remains.
//
// # Propagation
//
// Every hop carries the coordinator's observability and deadline
// context: X-Trace-Id propagates the sweep's trace id into the
// worker's request-scoped logs and metrics, and X-Deadline-Ms re-arms
// the remaining deadline budget on the worker so a deadline-bound
// sweep's cells are canceled remotely just as they would be locally.
//
// # Fault seams
//
// Chaos builds (-tags faultinject) arm three injection points in the
// client: fault.PeerDown fails a batch before the request is sent,
// fault.PeerSlow stalls it, and fault.PeerTorn abandons the stream
// after a delivered update. See internal/fault for the seam contract.
package cluster
