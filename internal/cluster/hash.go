package cluster

import (
	"hash/fnv"
	"sort"
)

// score is the rendezvous weight of (key, peer): FNV-1a over the peer
// name, a separator and the key, pushed through a 64-bit finalizer.
// Raw FNV avalanches poorly when keys differ only in a short suffix
// (exactly the shape of sim-cache keys, which share a long grid prefix
// and vary in the trailing coordinates), skewing ownership badly; the
// xor-shift/multiply finalizer restores the mixing. Any stable 64-bit
// mix works; FNV keeps it stdlib-only.
func score(key, peer string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer)) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})    //nolint:errcheck
	h.Write([]byte(key))  //nolint:errcheck
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Rank returns peers ordered by descending rendezvous score for key:
// Rank(k, p)[0] is k's owner, and each following entry is the next
// steal target. The ranking is deterministic across processes (pure
// function of the strings) and stable under membership change —
// removing a peer deletes its entry and moves nothing else.
func Rank(key string, peers []string) []string {
	ranked := append([]string(nil), peers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return score(key, ranked[i]) > score(key, ranked[j])
	})
	return ranked
}

// Owner returns the top-ranked peer for key, or "" with no peers.
func Owner(key string, peers []string) string {
	if len(peers) == 0 {
		return ""
	}
	best, bestScore := peers[0], score(key, peers[0])
	for _, p := range peers[1:] {
		if s := score(key, p); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}
