package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"valleymap/internal/fault"
)

// Cell names one sweep cell in transport form: the workload × scheme
// coordinates. Scale, config and seed ride on the enclosing Batch —
// a batch never mixes them.
type Cell struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
}

// Batch is one coordinator→worker dispatch: cells sharing a scale,
// config and seed, executed on the worker's own pool and streamed back
// as Updates in completion order.
type Batch struct {
	Cells  []Cell `json:"cells"`
	Scale  string `json:"scale,omitempty"`
	Config string `json:"config,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// Update is one NDJSON line of a worker's response stream. Type "cell"
// carries a finished cell and its opaque result payload; "done" and
// "failed" are terminal. Unknown types are skipped by the client for
// forward compatibility.
type Update struct {
	Type    string          `json:"type"`
	Cell    *Cell           `json:"cell,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// Update stream record types.
const (
	UpdateCell   = "cell"
	UpdateDone   = "done"
	UpdateFailed = "failed"
)

// Sentinel stream failures. Both mark the peer down; the caller retries
// only the cells its onCell callback never saw.
var (
	// ErrStalled: no update arrived within the stall timeout.
	ErrStalled = errors.New("peer stalled mid-batch")
	// ErrTorn: the stream ended before its terminal update.
	ErrTorn = errors.New("peer stream ended before its terminal update")
)

// Options configures a Client.
type Options struct {
	// Peers are the worker base URLs (e.g. http://worker1:8080), in a
	// fixed order shared by rankings' tiebreaks.
	Peers []string
	// HTTPClient overrides the transport (nil = a dedicated
	// http.Client). It must not set a global Timeout: a batch response
	// streams for the whole batch runtime, bounded instead by the
	// request context and the stall watchdog.
	HTTPClient *http.Client
	// StallTimeout bounds silence mid-batch: a batch whose next update
	// does not arrive in time is aborted with ErrStalled and its
	// outstanding cells are stolen (0 = 60s).
	StallTimeout time.Duration
	// DownCooldown is how long a failed peer is excluded from Healthy
	// before being lazily retried (0 = 5s).
	DownCooldown time.Duration
	// Logger receives peer-health transitions (nil = slog.Default()).
	Logger *slog.Logger
}

// Client executes cell batches on peer valleyd workers. It keeps no
// background goroutines: health is a lazily-expiring cooldown table,
// and every network interaction happens inside ExecuteCells under the
// caller's context.
type Client struct {
	peers    []string
	hc       *http.Client
	stall    time.Duration
	cooldown time.Duration
	log      *slog.Logger

	mu        sync.Mutex
	downUntil map[string]time.Time
}

// New builds a Client over the given peer set.
func New(o Options) *Client {
	hc := o.HTTPClient
	if hc == nil {
		// A dedicated transport, not http.DefaultTransport: the default's
		// shared pool would hand this client stale keep-alive connections
		// opened by unrelated code (or a previous coordinator) to the
		// same worker addresses.
		if tr, ok := http.DefaultTransport.(*http.Transport); ok {
			hc = &http.Client{Transport: tr.Clone()}
		} else {
			hc = &http.Client{}
		}
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 60 * time.Second
	}
	if o.DownCooldown <= 0 {
		o.DownCooldown = 5 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return &Client{
		peers:     append([]string(nil), o.Peers...),
		hc:        hc,
		stall:     o.StallTimeout,
		cooldown:  o.DownCooldown,
		log:       o.Logger,
		downUntil: map[string]time.Time{},
	}
}

// Peers returns the configured peer set, in configuration order.
func (c *Client) Peers() []string { return append([]string(nil), c.peers...) }

// Healthy returns the peers not currently in a down cooldown, in
// configuration order (the order seeds Rank's tiebreaks, so it must be
// identical on every call).
func (c *Client) Healthy() []string {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	up := make([]string, 0, len(c.peers))
	for _, p := range c.peers {
		if until, down := c.downUntil[p]; !down || now.After(until) {
			up = append(up, p)
		}
	}
	return up
}

// PeerStates reports each configured peer's current health (true = not
// in a down cooldown). The metrics layer renders it as
// valleyd_cluster_peer_up.
func (c *Client) PeerStates() map[string]bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	states := make(map[string]bool, len(c.peers))
	for _, p := range c.peers {
		until, down := c.downUntil[p]
		states[p] = !down || now.After(until)
	}
	return states
}

// MarkDown starts peer's down cooldown: it is excluded from Healthy
// until the cooldown lapses, then lazily retried.
func (c *Client) MarkDown(peer string) {
	c.mu.Lock()
	_, wasDown := c.downUntil[peer]
	c.downUntil[peer] = time.Now().Add(c.cooldown)
	c.mu.Unlock()
	if !wasDown {
		c.log.Warn("cluster peer marked down", "peer", peer, "cooldown", c.cooldown)
	}
}

// markUp clears peer's cooldown after a successful terminal update.
func (c *Client) markUp(peer string) {
	c.mu.Lock()
	_, wasDown := c.downUntil[peer]
	delete(c.downUntil, peer)
	c.mu.Unlock()
	if wasDown {
		c.log.Info("cluster peer back up", "peer", peer)
	}
}

// ExecuteCells POSTs the batch to peer's /v1/cells endpoint and invokes
// onCell for every finished cell as its update arrives (onCell runs on
// this goroutine, in stream order). It returns nil only after the
// worker's terminal "done" update; any other outcome is an error, and
// transport-level failures, torn streams and stalls additionally mark
// the peer down. The caller must treat cells onCell never delivered as
// not executed — they are safe to retry elsewhere, and delivered cells
// must not be (ExecuteCells never re-delivers a cell).
//
// The request propagates traceID as X-Trace-Id and the context's
// remaining deadline as X-Deadline-Ms, so the worker's logs correlate
// with the coordinator's and its cells observe the same budget.
func (c *Client) ExecuteCells(ctx context.Context, peer, traceID string, b Batch, onCell func(Cell, json.RawMessage)) error {
	// Chaos seams: an injected dead peer fails the batch before any
	// bytes move; an injected slow peer delays it (long enough delays
	// trip the caller-visible stall machinery end to end).
	if fault.Fail(fault.PeerDown) {
		c.MarkDown(peer)
		return fmt.Errorf("peer %s: injected peer-down", peer)
	}
	fault.Sleep(fault.PeerSlow)

	body, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("encoding batch for %s: %w", peer, err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, peer+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("building batch request for %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Mark the POST replayable so the transport transparently retries a
	// stale keep-alive connection (a worker that restarted under us) on
	// a fresh one. The retry only fires when no response bytes arrived,
	// so it can never double-deliver a cell — and batch execution is
	// idempotent regardless: cells are deterministic and cache-coalesced.
	req.Header.Set("Idempotency-Key", traceID+"-cells")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}

	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// A transport failure with the parent context alive is the
			// peer's fault, not the sweep's.
			c.MarkDown(peer)
		}
		return fmt.Errorf("peer %s: %w", peer, err)
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		c.MarkDown(peer)
		return fmt.Errorf("peer %s: /v1/cells returned %d: %s", peer, resp.StatusCode, bytes.TrimSpace(msg))
	}

	// The stall watchdog aborts the read when the peer goes silent
	// mid-batch; each delivered update re-arms it. stalled distinguishes
	// the watchdog's cancel from the parent context's.
	var stalled atomic.Bool
	watchdog := time.AfterFunc(c.stall, func() {
		stalled.Store(true)
		cancel()
	})
	defer watchdog.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		watchdog.Reset(c.stall)
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var u Update
		if err := json.Unmarshal(line, &u); err != nil {
			c.MarkDown(peer)
			return fmt.Errorf("peer %s: undecodable update: %w", peer, err)
		}
		switch u.Type {
		case UpdateCell:
			if u.Cell != nil {
				onCell(*u.Cell, u.Payload)
			}
			if fault.Fail(fault.PeerTorn) {
				c.MarkDown(peer)
				return fmt.Errorf("peer %s: injected torn stream: %w", peer, ErrTorn)
			}
		case UpdateDone:
			c.markUp(peer)
			return nil
		case UpdateFailed:
			// The worker is alive and answered; its execution failed.
			// Leave it healthy — the error may be batch-specific — and
			// let the caller decide where outstanding cells go next.
			return fmt.Errorf("peer %s: batch failed: %s", peer, u.Error)
		}
	}
	// The stream ended without a terminal update: classify why.
	switch {
	case stalled.Load():
		c.MarkDown(peer)
		return fmt.Errorf("peer %s: no update within %s: %w", peer, c.stall, ErrStalled)
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		c.MarkDown(peer)
		if err := sc.Err(); err != nil {
			return fmt.Errorf("peer %s: %w (%v)", peer, ErrTorn, err)
		}
		return fmt.Errorf("peer %s: %w", peer, ErrTorn)
	}
}
