//go:build !faultinject

package fault

import "time"

// Enabled reports whether fault injection is compiled in. In normal
// builds it is the constant false, so every hook below — and any branch
// guarded by it at a seam — folds away to nothing.
const Enabled = false

// Marker is the brand that identifies fault-injection builds in
// compiled binaries (CI greps for it). Release builds carry the empty
// string — and, because Enabled-guarded references fold away, no trace
// of the armed marker at all.
const Marker = ""

// Err reports the injected error for point. Disabled: always nil.
func Err(string) error { return nil }

// Fail reports whether point should fail. Disabled: never.
func Fail(string) bool { return false }

// Sleep stalls if point is armed with a delay. Disabled: returns
// immediately.
func Sleep(string) {}

// Torn returns data, possibly truncated, when point is armed.
// Disabled: data passes through untouched.
func Torn(_ string, data []byte) []byte { return data }

// The configuration surface exists in both builds so shared test
// helpers compile; without the tag, arming is a silent no-op and
// Armed/Fired report the registry as permanently empty.

// InjectError arms point to return err with probability prob. No-op.
func InjectError(string, float64, error) {}

// InjectDelay arms point to sleep d with probability prob. No-op.
func InjectDelay(string, float64, time.Duration) {}

// InjectFail arms point to fire with probability prob. No-op.
func InjectFail(string, float64) {}

// Seed reseeds the registry's RNG. No-op.
func Seed(int64) {}

// Reset disarms every point and zeroes fire counts. No-op.
func Reset() {}

// Armed reports whether any point has an active rule. Disabled: false.
func Armed() bool { return false }

// Fired returns how many times point has fired. Disabled: 0.
func Fired(string) int64 { return 0 }
