//go:build faultinject

package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

// armedMarker brands every injected error and lives only in tagged
// builds; CI greps compiled binaries for it to prove release builds
// carry no live fault-injection machinery.
const armedMarker = "valleymap-fault-injection-armed"

// Marker exposes the brand to linked code (valleyd logs it at startup
// in chaos builds) so the string survives dead-code elimination and
// the CI grep gate stays non-vacuous.
const Marker = armedMarker

// rule is one point's armed behavior. Exactly one payload field is
// meaningful per rule kind (error / delay / bare fail).
type rule struct {
	prob  float64
	err   error
	delay time.Duration
	kind  int // ruleErr | ruleDelay | ruleFail
}

const (
	ruleErr = iota
	ruleDelay
	ruleFail
)

var (
	mu     sync.Mutex
	rng    = rand.New(rand.NewSource(1))
	rules  = map[string]rule{}
	counts = map[string]int64{}
)

// fire decides (under mu) whether point triggers and returns its rule.
func fire(point string, kind int) (rule, bool) {
	mu.Lock()
	defer mu.Unlock()
	r, ok := rules[point]
	if !ok || r.kind != kind || rng.Float64() >= r.prob {
		return rule{}, false
	}
	counts[point]++
	return r, true
}

// Err reports the injected error for point, nil when the point is
// disarmed or the probability roll passes.
func Err(point string) error {
	if r, hit := fire(point, ruleErr); hit {
		return r.err
	}
	return nil
}

// Fail reports whether point should fail this call.
func Fail(point string) bool {
	_, hit := fire(point, ruleFail)
	return hit
}

// Sleep stalls for the armed delay when point fires.
func Sleep(point string) {
	if r, hit := fire(point, ruleDelay); hit {
		time.Sleep(r.delay)
	}
}

// Torn returns data truncated to a random proper prefix when point
// fires (never empty unless data is), modeling a torn write.
func Torn(point string, data []byte) []byte {
	if _, hit := fire(point, ruleFail); hit && len(data) > 1 {
		mu.Lock()
		n := 1 + rng.Intn(len(data)-1)
		mu.Unlock()
		return data[:n]
	}
	return data
}

// InjectError arms point to return err with probability prob per call.
// A nil err gets a branded default so callers can always log something.
func InjectError(point string, prob float64, err error) {
	if err == nil {
		err = fmt.Errorf("%s: injected error at %s", armedMarker, point)
	}
	mu.Lock()
	rules[point] = rule{prob: prob, err: err, kind: ruleErr}
	mu.Unlock()
}

// InjectDelay arms point to sleep d with probability prob per call.
func InjectDelay(point string, prob float64, d time.Duration) {
	mu.Lock()
	rules[point] = rule{prob: prob, delay: d, kind: ruleDelay}
	mu.Unlock()
}

// InjectFail arms point to fire (Fail/Torn hooks) with probability
// prob per call.
func InjectFail(point string, prob float64) {
	mu.Lock()
	rules[point] = rule{prob: prob, kind: ruleFail}
	mu.Unlock()
}

// Seed reseeds the registry's RNG for reproducible chaos runs.
func Seed(seed int64) {
	mu.Lock()
	rng = rand.New(rand.NewSource(seed))
	mu.Unlock()
}

// Reset disarms every point and zeroes fire counts.
func Reset() {
	mu.Lock()
	rules = map[string]rule{}
	counts = map[string]int64{}
	mu.Unlock()
}

// Armed reports whether any point has an active rule.
func Armed() bool {
	mu.Lock()
	defer mu.Unlock()
	return len(rules) > 0
}

// Fired returns how many times point has fired since the last Reset.
func Fired(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return counts[point]
}
