package fault

// Canonical injection points. Each is called through exactly one hook
// shape (noted per point); arming a point with a mismatched rule kind
// is a no-op.
const (
	// SpillWrite (Err): a spill-tier entry write fails with the
	// injected error before any bytes land (the entry is dropped).
	SpillWrite = "spill.write"
	// SpillRead (Err): a spill-tier entry read fails with the injected
	// error; the lookup reads as a miss.
	SpillRead = "spill.read"
	// SpillTorn (Torn): a spill entry's framed bytes are truncated to
	// a random prefix but the rename still publishes the file,
	// simulating a crash mid-write caught later by the read checksum.
	SpillTorn = "spill.torn"
	// MmapOpen (Fail): the mmap syscall path is skipped so OpenMmap
	// exercises its read-into-memory fallback.
	MmapOpen = "mmap.open"
	// WorkerDelay (Sleep): a sweep cell stalls for the injected
	// duration before computing (slow/wedged worker).
	WorkerDelay = "worker.delay"
	// CellPanic (Fail): a sweep cell panics mid-compute.
	CellPanic = "cell.panic"
	// PeerDown (Fail): a coordinator→worker cell batch fails before the
	// request is sent, as if the peer were unreachable; the peer is
	// marked down and its cells are re-dispatched.
	PeerDown = "peer.down"
	// PeerSlow (Sleep): a coordinator→worker cell batch stalls for the
	// injected duration before the request is sent (slow peer; long
	// enough delays trip the stall watchdog and trigger steals).
	PeerSlow = "peer.slow"
	// PeerTorn (Fail): a worker's NDJSON update stream is abandoned
	// mid-batch after a delivered cell, simulating a connection torn by
	// a dying peer; undelivered cells are stolen.
	PeerTorn = "peer.torn"
)
