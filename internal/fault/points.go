package fault

// Canonical injection points. Each is called through exactly one hook
// shape (noted per point); arming a point with a mismatched rule kind
// is a no-op.
const (
	// SnapshotWrite (Err): the sim-cache snapshot temp-file write
	// fails with the injected error before any bytes land.
	SnapshotWrite = "snapshot.write"
	// SnapshotTorn (Torn): the snapshot payload is truncated to a
	// random prefix, simulating a crash mid-write.
	SnapshotTorn = "snapshot.torn"
	// MmapOpen (Fail): the mmap syscall path is skipped so OpenMmap
	// exercises its read-into-memory fallback.
	MmapOpen = "mmap.open"
	// WorkerDelay (Sleep): a sweep cell stalls for the injected
	// duration before computing (slow/wedged worker).
	WorkerDelay = "worker.delay"
	// CellPanic (Fail): a sweep cell panics mid-compute.
	CellPanic = "cell.panic"
)
