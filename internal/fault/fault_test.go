package fault

import (
	"errors"
	"testing"
	"time"
)

// These tests run in both build variants. Without -tags faultinject they
// pin the no-op contract (arming does nothing, hooks return zero values);
// with the tag they exercise the live registry.

func TestDisarmedHooksAreZero(t *testing.T) {
	Reset()
	if err := Err(SpillWrite); err != nil {
		t.Fatalf("Err on disarmed point = %v, want nil", err)
	}
	if Fail(CellPanic) {
		t.Fatal("Fail on disarmed point = true, want false")
	}
	data := []byte("abcdef")
	if got := Torn(SpillTorn, data); string(got) != "abcdef" {
		t.Fatalf("Torn on disarmed point = %q, want passthrough", got)
	}
	start := time.Now()
	Sleep(WorkerDelay)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("Sleep on disarmed point took %v", d)
	}
	if Armed() {
		t.Fatal("Armed() = true after Reset")
	}
	if n := Fired(SpillWrite); n != 0 {
		t.Fatalf("Fired on disarmed point = %d, want 0", n)
	}
}

func TestArming(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Seed(42)

	boom := errors.New("boom")
	InjectError(SpillWrite, 1.0, boom)
	InjectFail(CellPanic, 1.0)
	InjectFail(SpillTorn, 1.0)

	if !Enabled {
		// Disabled build: arming must be a silent no-op.
		if Armed() {
			t.Fatal("Armed() = true in disabled build")
		}
		if err := Err(SpillWrite); err != nil {
			t.Fatalf("Err in disabled build = %v, want nil", err)
		}
		if Fail(CellPanic) {
			t.Fatal("Fail in disabled build = true")
		}
		return
	}

	if !Armed() {
		t.Fatal("Armed() = false after arming")
	}
	if err := Err(SpillWrite); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	if !Fail(CellPanic) {
		t.Fatal("Fail at prob 1.0 = false")
	}
	data := []byte("abcdef")
	got := Torn(SpillTorn, data)
	if len(got) == 0 || len(got) >= len(data) {
		t.Fatalf("Torn at prob 1.0 returned %d bytes of %d, want proper non-empty prefix", len(got), len(data))
	}
	if string(got) != string(data[:len(got)]) {
		t.Fatalf("Torn result %q is not a prefix of %q", got, data)
	}
	if n := Fired(SpillWrite); n != 1 {
		t.Fatalf("Fired(SpillWrite) = %d, want 1", n)
	}
	if n := Fired(CellPanic); n != 1 {
		t.Fatalf("Fired(CellPanic) = %d, want 1", n)
	}

	// Probability 0 never fires.
	InjectError(MmapOpen, 0, boom)
	for i := 0; i < 100; i++ {
		if err := Err(MmapOpen); err != nil {
			t.Fatal("Err at prob 0 fired")
		}
	}
	if n := Fired(MmapOpen); n != 0 {
		t.Fatalf("Fired(MmapOpen) = %d, want 0", n)
	}

	// Mismatched hook shape is a no-op: CellPanic is armed as Fail,
	// so Err must not fire it.
	if err := Err(CellPanic); err != nil {
		t.Fatalf("Err on Fail-armed point = %v, want nil", err)
	}

	// InjectError with nil error still yields a branded error.
	InjectError(MmapOpen, 1.0, nil)
	if err := Err(MmapOpen); err == nil {
		t.Fatal("Err with nil-armed error = nil, want branded default")
	}

	Reset()
	if Armed() {
		t.Fatal("Armed() = true after Reset")
	}
	if n := Fired(SpillWrite); n != 0 {
		t.Fatalf("Fired after Reset = %d, want 0", n)
	}
}

func TestSeedReproducible(t *testing.T) {
	if !Enabled {
		t.Skip("registry compiled out")
	}
	Reset()
	t.Cleanup(Reset)

	run := func() []bool {
		Seed(7)
		InjectFail(CellPanic, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fail(CellPanic)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded sequences diverge at %d", i)
		}
	}
}
