// Package fault is the valleymap fault-injection registry: named
// injection points compiled into the seams the chaos suite exercises —
// spill-tier disk reads/writes, mmap opens, worker execution, cell
// computation — that do nothing at all in a normal build.
//
// # Contract
//
// Injection is gated by the "faultinject" build tag:
//
//   - Without the tag (every release and default test build), the hook
//     functions (Err, Fail, Sleep, Torn) are constant no-ops returning
//     zero values. They compile to nothing: the disabled variants are
//     leaf functions small enough for the inliner, so a release valleyd
//     carries no live fault-injection machinery, no registry, and none
//     of the armed marker strings. CI verifies this by building valleyd
//     both ways and grepping the binaries for the armed marker.
//
//   - With -tags faultinject, each point can be armed with a firing
//     probability and a payload (an error, a delay, a truncation, or a
//     go/no-go used for panics and fallbacks) via InjectError,
//     InjectDelay and InjectFail. The registry is process-global,
//     seeded (Seed) for reproducible chaos runs, and counts every fire
//     (Fired) so tests can assert their faults actually triggered
//     instead of passing vacuously.
//
// Hooks are safe for concurrent use. A point with no armed rule costs
// one map lookup under a mutex in the tagged build and nothing in the
// normal build, so the seams stay hot-path clean either way.
//
// # Points
//
// Point names are dotted strings owned by the seam that calls them; the
// canonical set lives in points.go. A seam must call exactly one hook
// shape per point (Err, Fail, Sleep or Torn) so chaos tests can reason
// about what arming a point does:
//
//	SpillWrite     Err    spill entry write fails with the rule's error
//	SpillRead      Err    spill entry read fails; the lookup is a miss
//	SpillTorn      Torn   spill entry is truncated mid-write (torn write)
//	MmapOpen       Fail   mmap syscall is skipped; open falls back to copy reads
//	WorkerDelay    Sleep  a sweep cell stalls (slow/wedged worker)
//	CellPanic      Fail   a sweep cell panics mid-compute
//
// The chaos suite (internal/service chaos_test.go, internal/trace
// mmap fault tests; run by CI under -race -tags faultinject) drives
// concurrent sweeps with randomized combinations of these faults and
// asserts the standing invariants: every accepted job reaches a
// terminal state, no goroutine leaks, per-subscriber stream ordering
// holds, the cache and spill tier never serve corrupt results, and a
// restarted daemon recovers cleanly.
package fault
