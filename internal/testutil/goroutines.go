// Package testutil holds small helpers shared across the repo's test
// suites. It must only be imported from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// goroutineSlack absorbs the wobble of background runtime goroutines
// (GC workers, timer threads, netpoller) that come and go outside the
// test's control.
const goroutineSlack = 4

// WaitGoroutines polls until the goroutine count drops back to within
// slack of baseline, failing the test with a full stack dump if it
// never does. Use it after tearing down the system under test to prove
// that its workers, subscribers and timers all exited.
func WaitGoroutines(t testing.TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+goroutineSlack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines: %d, baseline %d — goroutines leaked:\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// CheckGoroutineLeaks snapshots the current goroutine count and
// registers a cleanup that asserts the count returns to that baseline
// once the test (and any cleanups registered after this call) finish.
// Call it BEFORE constructing the system under test: t.Cleanup runs
// LIFO, so the leak check then executes after the system's own cleanup
// has closed it.
func CheckGoroutineLeaks(t testing.TB) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() { WaitGoroutines(t, baseline) })
}
