package power

import (
	"math"
	"testing"

	"valleymap/internal/sim"
)

func TestDRAMPowerComponents(t *testing.T) {
	m := DefaultGDDR5()
	a := Activity{
		Activations: 1e6,
		Reads:       2e6,
		Writes:      5e5,
		Elapsed:     sim.Millisecond,
	}
	b := m.Power(a)
	if b.Background != m.BackgroundW {
		t.Errorf("background = %v", b.Background)
	}
	// 1e6 ACT x 90nJ / 1ms = 90 W.
	if math.Abs(b.Activate-90) > 1e-9 {
		t.Errorf("activate = %v, want 90", b.Activate)
	}
	if math.Abs(b.Read-56) > 1e-9 {
		t.Errorf("read = %v, want 56", b.Read)
	}
	if math.Abs(b.Write-16) > 1e-9 {
		t.Errorf("write = %v, want 16", b.Write)
	}
	if math.Abs(b.Total()-(m.BackgroundW+90+56+16)) > 1e-9 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestZeroElapsed(t *testing.T) {
	m := DefaultGDDR5()
	if b := m.Power(Activity{Activations: 100}); b.Total() != 0 {
		t.Errorf("zero elapsed power = %v", b.Total())
	}
	g := DefaultGPU()
	if p := g.Power(100, 0); p != 0 {
		t.Errorf("zero elapsed GPU power = %v", p)
	}
	if s := DefaultSystem().PerfPerWatt(Activity{}, 100); s != 0 {
		t.Errorf("zero elapsed PPW = %v", s)
	}
}

func TestActivateDominatesUnderThrashing(t *testing.T) {
	// The Figure 16 effect: same bandwidth, but one config activates a
	// row per burst (FAE-like) and the other reuses rows (PAE-like).
	m := DefaultGDDR5()
	base := Activity{Reads: 1e6, Writes: 0, Activations: 1e5, Elapsed: sim.Millisecond}
	thrash := base
	thrash.Activations = 1e6
	pBase := m.Power(base)
	pThrash := m.Power(thrash)
	if pThrash.Activate <= 2*pBase.Activate {
		t.Errorf("thrashing activate power %v should dwarf %v", pThrash.Activate, pBase.Activate)
	}
	if pThrash.Read != pBase.Read || pThrash.Background != pBase.Background {
		t.Error("non-activate components should be unchanged")
	}
}

func TestGPUPowerScalesWithIPC(t *testing.T) {
	g := DefaultGPU()
	slow := g.Power(1e6, sim.Millisecond)
	fast := g.Power(4e6, sim.Millisecond)
	if fast <= slow {
		t.Errorf("more instructions per time must cost more power: %v vs %v", fast, slow)
	}
	if slow <= g.StaticW {
		t.Errorf("power %v must exceed static %v", slow, g.StaticW)
	}
}

func TestPerfPerWattTradeoff(t *testing.T) {
	// Same work: config A finishes in 1 ms with few activations; config
	// B finishes in 0.9 ms but doubles DRAM activity (the FAE vs PAE
	// trade-off). PerfPerWatt should be able to favor A.
	s := DefaultSystem()
	const insns = 10e6
	a := Activity{Reads: 1e6, Activations: 2e5, Elapsed: sim.Millisecond}
	b := Activity{Reads: 1e6, Activations: 3e6, Elapsed: sim.Time(0.9 * float64(sim.Millisecond))}
	ppwA := s.PerfPerWatt(a, insns)
	ppwB := s.PerfPerWatt(b, insns)
	if ppwA <= ppwB {
		t.Errorf("power-efficient config should win perf/W: A=%v B=%v", ppwA, ppwB)
	}
	// But raw performance favors B.
	if b.Elapsed >= a.Elapsed {
		t.Error("test setup wrong")
	}
}

func TestPerfPerWattRatioIsSpeedupOverPowerRatio(t *testing.T) {
	// For a fixed instruction count, PPW_a/PPW_b == (t_b/t_a) * (P_b/P_a):
	// the paper's normalized performance-per-watt definition.
	s := DefaultSystem()
	const insns = 5e6
	a := Activity{Reads: 5e5, Activations: 1e5, Elapsed: 2 * sim.Millisecond}
	b := Activity{Reads: 5e5, Activations: 4e5, Elapsed: sim.Millisecond}
	lhs := s.PerfPerWatt(b, insns) / s.PerfPerWatt(a, insns)
	speedup := a.Elapsed.Seconds() / b.Elapsed.Seconds()
	powerRatio := s.SystemPower(b, insns) / s.SystemPower(a, insns)
	rhs := speedup / powerRatio
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("PPW ratio %v != speedup/power %v", lhs, rhs)
	}
}

func TestDRAMShareOfSystem(t *testing.T) {
	// Paper footnote: DRAM is up to ~40% of system power. Check the
	// calibration keeps DRAM share plausible (10%..50%) for a busy run.
	s := DefaultSystem()
	a := Activity{Reads: 3e6, Writes: 1e6, Activations: 1e6, Elapsed: 10 * sim.Millisecond}
	insns := int64(80e6)
	dram := s.DRAM.Power(a).Total()
	total := s.SystemPower(a, insns)
	share := dram / total
	if share < 0.10 || share > 0.50 {
		t.Errorf("DRAM share = %.2f, outside plausible range", share)
	}
}
