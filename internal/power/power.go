// Package power models DRAM and GPU power the way the paper's evaluation
// does: DRAM power follows the Micron power methodology (TN-41-01) with
// four components — background, activate/precharge, read and write —
// driven by measured command rates; GPU power follows a GPUWattch-style
// split into static power plus a dynamic component proportional to
// instruction throughput.
//
// Absolute constants are calibration parameters (the paper's testbed is a
// simulated GTX-480-class GPU with 1 GB GDDR5); what the simulator
// produces is the *rates*, so component ratios and scheme-to-scheme
// deltas — the Figure 16/17 shapes — come from simulation, not from the
// constants.
package power

import "valleymap/internal/sim"

// DRAMModel holds per-event energies and standing power for the DRAM
// devices of one board (all channels together).
type DRAMModel struct {
	// BackgroundW is standing power: clocking, DLL, refresh.
	BackgroundW float64
	// ActEnergyJ is the energy of one ACT+PRE pair (row activation),
	// the component address mapping perturbs most (Figure 16).
	ActEnergyJ float64
	// ReadEnergyJ / WriteEnergyJ are per-128B-burst I/O + array energies.
	ReadEnergyJ  float64
	WriteEnergyJ float64
}

// DefaultGDDR5 returns constants calibrated so that a fully-loaded
// 4-channel 118 GB/s GDDR5 system lands in the few-tens-of-watts range of
// Figure 16, with activation energy dominant under row-buffer thrashing.
func DefaultGDDR5() DRAMModel {
	return DRAMModel{
		BackgroundW:  11.0,
		ActEnergyJ:   90e-9,
		ReadEnergyJ:  28e-9,
		WriteEnergyJ: 32e-9,
	}
}

// Activity is the command tally of one simulation.
type Activity struct {
	Activations int64
	Reads       int64 // 128 B bursts
	Writes      int64 // 128 B bursts
	Elapsed     sim.Time
}

// Breakdown is DRAM power by component, in watts (Figure 16's bars).
type Breakdown struct {
	Background float64
	Activate   float64
	Read       float64
	Write      float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Background + b.Activate + b.Read + b.Write }

// Power converts command rates into the four-component breakdown.
func (m DRAMModel) Power(a Activity) Breakdown {
	sec := a.Elapsed.Seconds()
	if sec <= 0 {
		return Breakdown{}
	}
	return Breakdown{
		Background: m.BackgroundW,
		Activate:   float64(a.Activations) * m.ActEnergyJ / sec,
		Read:       float64(a.Reads) * m.ReadEnergyJ / sec,
		Write:      float64(a.Writes) * m.WriteEnergyJ / sec,
	}
}

// GPUModel is the GPUWattch-style core-side model.
type GPUModel struct {
	// StaticW covers leakage and constant clocking of SMs, caches, NoC.
	StaticW float64
	// InsnEnergyJ is dynamic energy per executed instruction.
	InsnEnergyJ float64
}

// DefaultGPU returns constants for the 12-SM GTX-480-class configuration:
// ~60 W static, ~8 nJ/instruction dynamic, so a busy GPU draws on the
// order of 100 W and DRAM is up to ~40% of system power, as the paper
// states (footnote in Section VI-C).
func DefaultGPU() GPUModel {
	return GPUModel{StaticW: 60.0, InsnEnergyJ: 8e-9}
}

// Power returns GPU power in watts given executed instructions over the
// elapsed time.
func (g GPUModel) Power(instructions int64, elapsed sim.Time) float64 {
	sec := elapsed.Seconds()
	if sec <= 0 {
		return 0
	}
	return g.StaticW + float64(instructions)*g.InsnEnergyJ/sec
}

// System bundles both models.
type System struct {
	DRAM DRAMModel
	GPU  GPUModel
}

// DefaultSystem returns the calibrated pair.
func DefaultSystem() System {
	return System{DRAM: DefaultGDDR5(), GPU: DefaultGPU()}
}

// SystemPower returns total (GPU + DRAM) watts.
func (s System) SystemPower(a Activity, instructions int64) float64 {
	return s.DRAM.Power(a).Total() + s.GPU.Power(instructions, a.Elapsed)
}

// PerfPerWatt returns the Figure 17 metric: work per second per watt of
// total system power, with work measured in instructions. Comparing the
// same application across mapping schemes, the instruction count is
// constant, so ratios of this metric are exactly the paper's normalized
// performance per watt.
func (s System) PerfPerWatt(a Activity, instructions int64) float64 {
	sec := a.Elapsed.Seconds()
	if sec <= 0 {
		return 0
	}
	p := s.SystemPower(a, instructions)
	if p <= 0 {
		return 0
	}
	return float64(instructions) / sec / p
}
