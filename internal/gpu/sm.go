// Package gpu models the Streaming Multiprocessors of Table I: per-SM
// warps paced by compute gaps, a greedy-then-oldest-flavored load/store
// unit, the memory coalescer, a 16 KB L1 data cache with 32 MSHRs, and
// TB-granular occupancy. SMs issue line-granular transactions into a
// Fabric (NoC → LLC → DRAM) supplied by the system model.
//
// The SM schedules exclusively through the engine's handler API with
// pooled warp, transaction and miss records, so its steady-state event
// churn does not allocate (see internal/sim's package docs).
package gpu

import (
	"valleymap/internal/cache"
	"valleymap/internal/sim"
	"valleymap/internal/trace"
)

// Transaction is one coalesced, mapped, line-aligned memory transaction.
type Transaction struct {
	Addr  uint64
	Write bool
}

// WarpProgram is the memory-side program of one warp: a sequence of
// memory instructions, each of which expands to one or more transactions
// (32 for fully diverged accesses, 1 for fully coalesced ones).
// Transactions are stored flat with instruction boundaries, so a
// program buffer recycled across TB launches reuses both backing
// arrays.
type WarpProgram struct {
	tx   []Transaction
	ends []int32 // cumulative transaction count at each instruction end
}

// NumInstrs returns the number of memory instructions in the program.
func (p *WarpProgram) NumInstrs() int { return len(p.ends) }

// Instr returns the transactions of instruction i.
func (p *WarpProgram) Instr(i int) []Transaction {
	start := int32(0)
	if i > 0 {
		start = p.ends[i-1]
	}
	return p.tx[start:p.ends[i]]
}

// Reset empties the program, keeping capacity for reuse.
func (p *WarpProgram) Reset() {
	p.tx = p.tx[:0]
	p.ends = p.ends[:0]
}

// BuildPrograms converts a (raw, per-thread) TB trace into per-warp
// programs: requests are coalesced into lineBytes transactions per
// warp-instruction and each transaction address is passed through
// mapAddr — the BIM address mapper sits directly after the coalescer
// (Section IV). mapAddr may be nil for the identity mapping.
func BuildPrograms(tb *trace.TB, warps, lineBytes int, mapAddr func(uint64) uint64) []WarpProgram {
	var scratch trace.TB
	return BuildProgramsInto(nil, &scratch, tb, warps, lineBytes, mapAddr)
}

// BuildProgramsInto is BuildPrograms with caller-owned buffers: dst is
// recycled for the program slice (grown as needed, every program
// Reset), and scratch holds the coalesced TB. The simulator pools both
// across TB launches, so steady-state program construction reuses the
// same backing arrays instead of allocating per TB.
func BuildProgramsInto(dst []WarpProgram, scratch *trace.TB, tb *trace.TB, warps, lineBytes int, mapAddr func(uint64) uint64) []WarpProgram {
	if cap(dst) >= warps {
		dst = dst[:warps]
	} else {
		dst = append(dst[:cap(dst)], make([]WarpProgram, warps-cap(dst))...)
	}
	for w := range dst {
		dst[w].Reset()
	}
	trace.CoalesceTBInto(scratch, tb, lineBytes)
	i := 0
	reqs := scratch.Requests
	for i < len(reqs) {
		j := i
		for j < len(reqs) && reqs[j].Warp == reqs[i].Warp && reqs[j].Kind == reqs[i].Kind {
			j++
		}
		w := int(reqs[i].Warp)
		if w >= 0 && w < warps {
			p := &dst[w]
			for _, r := range reqs[i:j] {
				addr := r.Addr
				if mapAddr != nil {
					addr = mapAddr(addr)
				}
				p.tx = append(p.tx, Transaction{Addr: addr, Write: r.Kind == trace.Write})
			}
			p.ends = append(p.ends, int32(len(p.tx)))
		}
		i = j
	}
	return dst
}

// ReadSink receives read completions from the Fabric. The SM itself
// implements it, so issuing a read carries no per-request callback
// allocation.
type ReadSink interface {
	// FillLine fires when the data for line (the address passed to
	// IssueRead) returns to the SM.
	FillLine(line uint64, at sim.Time)
}

// Fabric is the memory system below the SM, provided by gpusim.
type Fabric interface {
	// IssueRead injects a read transaction from an SM; sink.FillLine
	// fires when the data returns.
	IssueRead(now sim.Time, sm int, addr uint64, sink ReadSink)
	// IssueWrite injects a write transaction; stores do not block warps.
	IssueWrite(now sim.Time, sm int, addr uint64)
}

// Config parameterizes one SM.
type Config struct {
	CoreClock sim.Clock
	L1        cache.Config
	// L1HitCycles is the load-to-use latency of an L1 hit.
	L1HitCycles int
	// MSHRs bounds outstanding L1 misses (32 in Table I).
	MSHRs int
	// MaxTBs is the TB occupancy limit of the SM.
	MaxTBs int
	// IssueStaggerCycles separates the first issue of sibling warps.
	IssueStaggerCycles int
}

// DefaultConfig returns Table I's SM parameters.
func DefaultConfig() Config {
	return Config{
		CoreClock:          sim.ClockFromMHz(1400),
		L1:                 cache.L1Config(),
		L1HitCycles:        28,
		MSHRs:              32,
		MaxTBs:             8,
		IssueStaggerCycles: 4,
	}
}

// Stats aggregates per-SM counters.
type Stats struct {
	L1            cache.Stats
	Transactions  int64
	ReadTx        int64
	WriteTx       int64
	MSHRStallTime sim.Time
	TBsCompleted  int64
}

// warpState is the execution state of one running warp. States are
// pooled per SM and recycled when the warp retires.
type warpState struct {
	sm       *SM
	prog     *WarpProgram
	instrIdx int
	tb       *tbRun
	id       int
	gap      int // compute-gap cycles between memory instructions

	// Per-instruction completion tracking (reset by advance).
	outstanding int
	lastDone    sim.Time
}

// tbRun tracks one in-flight TB; pooled per SM.
type tbRun struct {
	sm         *SM
	warpsLeft  int
	onComplete func(now sim.Time)
}

// txEvent carries one transaction from LSU grant to issue; pooled per
// SM and released as soon as the issue event fires.
type txEvent struct {
	sm    *SM
	ws    *warpState // nil for writes
	addr  uint64
	write bool
}

// pendingLine tracks one in-flight L1 miss and the warps waiting on it;
// pooled per SM.
type pendingLine struct {
	waiters []*warpState
}

// SM is one streaming multiprocessor.
type SM struct {
	ID     int
	cfg    Config
	eng    *sim.Engine
	fabric Fabric

	l1      *cache.Cache
	mshr    *cache.MSHRFile
	pending map[uint64]*pendingLine
	lsu     sim.Server

	// stalled holds read transactions refused by a full MSHR file, in
	// arrival order (head-indexed ring so draining does not reallocate);
	// they retry as entries free.
	stalled     []stalledTx
	stalledHead int

	// Free lists for the pooled per-request records.
	warpFree []*warpState
	tbFree   []*tbRun
	txFree   []*txEvent
	lineFree []*pendingLine

	activeTBs int
	stats     Stats
}

type stalledTx struct {
	addr  uint64
	since sim.Time
	ws    *warpState
}

// New builds an SM.
func New(eng *sim.Engine, id int, cfg Config, fabric Fabric) *SM {
	return &SM{
		ID:      id,
		cfg:     cfg,
		eng:     eng,
		fabric:  fabric,
		l1:      cache.MustNew(cfg.L1),
		mshr:    cache.NewMSHRFile(cfg.MSHRs),
		pending: make(map[uint64]*pendingLine),
	}
}

// Stats returns a copy of the SM's counters.
func (s *SM) Stats() Stats {
	st := s.stats
	st.L1 = s.l1.Stats()
	return st
}

// ActiveTBs returns current TB occupancy.
func (s *SM) ActiveTBs() int { return s.activeTBs }

// CanAccept reports whether a new TB fits.
func (s *SM) CanAccept() bool { return s.activeTBs < s.cfg.MaxTBs }

// ---- pooled-record plumbing ----

func (s *SM) getWarp() *warpState {
	if n := len(s.warpFree); n > 0 {
		ws := s.warpFree[n-1]
		s.warpFree = s.warpFree[:n-1]
		return ws
	}
	return &warpState{sm: s}
}

func (s *SM) putWarp(ws *warpState) {
	ws.prog, ws.tb = nil, nil
	ws.instrIdx, ws.outstanding, ws.lastDone = 0, 0, 0
	s.warpFree = append(s.warpFree, ws)
}

func (s *SM) getTB() *tbRun {
	if n := len(s.tbFree); n > 0 {
		r := s.tbFree[n-1]
		s.tbFree = s.tbFree[:n-1]
		return r
	}
	return &tbRun{sm: s}
}

func (s *SM) putTB(r *tbRun) {
	r.warpsLeft, r.onComplete = 0, nil
	s.tbFree = append(s.tbFree, r)
}

func (s *SM) getTx() *txEvent {
	if n := len(s.txFree); n > 0 {
		t := s.txFree[n-1]
		s.txFree = s.txFree[:n-1]
		return t
	}
	return &txEvent{sm: s}
}

func (s *SM) getLine() *pendingLine {
	if n := len(s.lineFree); n > 0 {
		p := s.lineFree[n-1]
		s.lineFree = s.lineFree[:n-1]
		return p
	}
	return &pendingLine{}
}

func (s *SM) putLine(p *pendingLine) {
	for i := range p.waiters {
		p.waiters[i] = nil
	}
	p.waiters = p.waiters[:0]
	s.lineFree = append(s.lineFree, p)
}

// Engine event handlers: package-level functions paired with pooled
// args, so scheduling them never allocates.

func warpAdvanceH(arg any) {
	ws := arg.(*warpState)
	ws.sm.advance(ws)
}

func tbGapDoneH(arg any) {
	run := arg.(*tbRun)
	run.sm.finishTB(run)
}

func txIssueH(arg any) {
	t := arg.(*txEvent)
	s, ws, addr, write := t.sm, t.ws, t.addr, t.write
	t.ws = nil
	s.txFree = append(s.txFree, t)
	if write {
		s.fabric.IssueWrite(s.eng.Now(), s.ID, addr)
		return
	}
	s.read(addr, ws)
}

// LaunchTB starts a TB built from per-warp programs. gapCycles is the
// compute time between a warp's memory instructions; onComplete fires
// when every warp has issued its last instruction and all its reads have
// returned. The progs slice and its programs must stay untouched by the
// caller until onComplete fires.
func (s *SM) LaunchTB(progs []WarpProgram, gapCycles int, onComplete func(now sim.Time)) {
	s.activeTBs++
	run := s.getTB()
	run.onComplete = onComplete
	now := s.eng.Now()
	launched := 0
	for w := range progs {
		if progs[w].NumInstrs() == 0 {
			continue
		}
		launched++
	}
	if launched == 0 {
		// Degenerate TB with no memory instructions: completes after one
		// compute gap.
		run.warpsLeft = 1
		s.eng.ScheduleCall(s.cfg.CoreClock.Cycles(int64(gapCycles)), tbGapDoneH, run)
		return
	}
	run.warpsLeft = launched
	for w := range progs {
		if progs[w].NumInstrs() == 0 {
			continue
		}
		ws := s.getWarp()
		ws.prog, ws.tb, ws.id, ws.gap = &progs[w], run, w, gapCycles
		ws.instrIdx = 0
		stagger := s.cfg.CoreClock.Cycles(int64(w * s.cfg.IssueStaggerCycles))
		s.eng.AtCall(now+stagger, warpAdvanceH, ws)
	}
}

func (s *SM) finishTB(run *tbRun) {
	run.warpsLeft--
	if run.warpsLeft == 0 {
		s.activeTBs--
		s.stats.TBsCompleted++
		done := run.onComplete
		s.putTB(run)
		if done != nil {
			done(s.eng.Now())
		}
	}
}

// advance issues the warp's next memory instruction: every transaction
// acquires the LSU (one per core cycle, so a fully diverged instruction
// occupies the LSU for 32 cycles — the greedy half of GTO), reads then
// traverse L1/MSHR/fabric. When the last read returns, the warp computes
// for gapCycles and advances again.
func (s *SM) advance(ws *warpState) {
	if ws.instrIdx >= ws.prog.NumInstrs() {
		run := ws.tb
		s.putWarp(ws)
		s.finishTB(run)
		return
	}
	instr := ws.prog.Instr(ws.instrIdx)
	ws.instrIdx++
	now := s.eng.Now()

	ws.outstanding = 1 // sentinel so completions during issue don't advance early
	ws.lastDone = 0

	for _, tx := range instr {
		_, grant := s.lsu.Acquire(now, s.cfg.CoreClock.Cycles(1))
		s.stats.Transactions++
		t := s.getTx()
		t.addr, t.write = tx.Addr, tx.Write
		if tx.Write {
			s.stats.WriteTx++
			// Stores are fire-and-forget through the write buffer; they
			// bypass the L1 (write-through, no-allocate for global data)
			// and do not block the warp.
			t.ws = nil
		} else {
			s.stats.ReadTx++
			ws.outstanding++
			t.ws = ws
		}
		s.eng.AtCall(grant, txIssueH, t)
	}
	// Retire the sentinel. If everything hit or the instruction was all
	// stores, the warp proceeds after the issue cycles alone.
	s.readDone(ws, now)
}

// readDone retires one outstanding read (or the issue sentinel) of the
// warp's current instruction; when the last one lands, the warp computes
// for its gap and advances.
func (s *SM) readDone(ws *warpState, t sim.Time) {
	if t > ws.lastDone {
		ws.lastDone = t
	}
	ws.outstanding--
	if ws.outstanding == 0 {
		at := ws.lastDone + s.cfg.CoreClock.Cycles(int64(ws.gap))
		if at < s.eng.Now() {
			at = s.eng.Now()
		}
		s.eng.AtCall(at, warpAdvanceH, ws)
	}
}

// read performs the L1 lookup path for one read transaction.
func (s *SM) read(addr uint64, ws *warpState) {
	now := s.eng.Now()
	line := addr &^ uint64(s.cfg.L1.LineBytes-1)

	// A miss already in flight: merge regardless of tag-array state.
	if p, ok := s.pending[line]; ok {
		s.mshr.Add(line)
		p.waiters = append(p.waiters, ws)
		return
	}
	if s.l1.Probe(line) {
		s.l1.Access(line, false) // update LRU and stats
		s.readDone(ws, now+s.cfg.CoreClock.Cycles(int64(s.cfg.L1HitCycles)))
		return
	}
	// Primary miss. Check MSHR capacity before touching the tag array:
	// installing the line and then stalling would let the retry "hit"
	// without ever fetching the data.
	if s.mshr.Full() {
		s.stalled = append(s.stalled, stalledTx{addr: addr, since: now, ws: ws})
		return
	}
	s.l1.Access(line, false) // allocate; write-through L1 victims are clean
	s.mshr.Add(line)
	p := s.getLine()
	p.waiters = append(p.waiters, ws)
	s.pending[line] = p
	s.fabric.IssueRead(now, s.ID, line, s)
}

// FillLine implements ReadSink: it completes an outstanding miss, wakes
// waiters and retries stalled transactions now that an MSHR entry is
// free.
func (s *SM) FillLine(line uint64, at sim.Time) {
	p := s.pending[line]
	delete(s.pending, line)
	s.mshr.Complete(line)
	if p != nil {
		for _, ws := range p.waiters {
			s.readDone(ws, at)
		}
		s.putLine(p)
	}
	for s.stalledHead < len(s.stalled) && !s.mshr.Full() {
		tx := s.stalled[s.stalledHead]
		s.stalled[s.stalledHead] = stalledTx{}
		s.stalledHead++
		s.stats.MSHRStallTime += at - tx.since
		s.read(tx.addr, tx.ws)
	}
	if s.stalledHead == len(s.stalled) {
		s.stalled = s.stalled[:0]
		s.stalledHead = 0
	} else if s.stalledHead > len(s.stalled)/2 {
		// Compact once the dead prefix dominates, so sustained MSHR
		// pressure cannot grow the ring with total-stalls-ever-seen.
		n := copy(s.stalled, s.stalled[s.stalledHead:])
		for i := n; i < len(s.stalled); i++ {
			s.stalled[i] = stalledTx{}
		}
		s.stalled = s.stalled[:n]
		s.stalledHead = 0
	}
}
