// Package gpu models the Streaming Multiprocessors of Table I: per-SM
// warps paced by compute gaps, a greedy-then-oldest-flavored load/store
// unit, the memory coalescer, a 16 KB L1 data cache with 32 MSHRs, and
// TB-granular occupancy. SMs issue line-granular transactions into a
// Fabric (NoC → LLC → DRAM) supplied by the system model.
package gpu

import (
	"valleymap/internal/cache"
	"valleymap/internal/sim"
	"valleymap/internal/trace"
)

// Transaction is one coalesced, mapped, line-aligned memory transaction.
type Transaction struct {
	Addr  uint64
	Write bool
}

// WarpProgram is the memory-side program of one warp: a sequence of
// memory instructions, each of which expands to one or more transactions
// (32 for fully diverged accesses, 1 for fully coalesced ones).
type WarpProgram struct {
	Instrs [][]Transaction
}

// BuildPrograms converts a (raw, per-thread) TB trace into per-warp
// programs: requests are coalesced into lineBytes transactions per
// warp-instruction and each transaction address is passed through
// mapAddr — the BIM address mapper sits directly after the coalescer
// (Section IV). mapAddr may be nil for the identity mapping.
func BuildPrograms(tb *trace.TB, warps, lineBytes int, mapAddr func(uint64) uint64) []WarpProgram {
	progs := make([]WarpProgram, warps)
	co := trace.CoalesceTB(tb, lineBytes)
	i := 0
	reqs := co.Requests
	for i < len(reqs) {
		j := i
		for j < len(reqs) && reqs[j].Warp == reqs[i].Warp && reqs[j].Kind == reqs[i].Kind {
			j++
		}
		w := int(reqs[i].Warp)
		if w >= 0 && w < warps {
			instr := make([]Transaction, 0, j-i)
			for _, r := range reqs[i:j] {
				addr := r.Addr
				if mapAddr != nil {
					addr = mapAddr(addr)
				}
				instr = append(instr, Transaction{Addr: addr, Write: r.Kind == trace.Write})
			}
			progs[w].Instrs = append(progs[w].Instrs, instr)
		}
		i = j
	}
	return progs
}

// Fabric is the memory system below the SM, provided by gpusim.
type Fabric interface {
	// IssueRead injects a read transaction from an SM; done fires when
	// the data returns to the SM.
	IssueRead(now sim.Time, sm int, addr uint64, done func(sim.Time))
	// IssueWrite injects a write transaction; stores do not block warps.
	IssueWrite(now sim.Time, sm int, addr uint64)
}

// Config parameterizes one SM.
type Config struct {
	CoreClock sim.Clock
	L1        cache.Config
	// L1HitCycles is the load-to-use latency of an L1 hit.
	L1HitCycles int
	// MSHRs bounds outstanding L1 misses (32 in Table I).
	MSHRs int
	// MaxTBs is the TB occupancy limit of the SM.
	MaxTBs int
	// IssueStaggerCycles separates the first issue of sibling warps.
	IssueStaggerCycles int
}

// DefaultConfig returns Table I's SM parameters.
func DefaultConfig() Config {
	return Config{
		CoreClock:          sim.ClockFromMHz(1400),
		L1:                 cache.L1Config(),
		L1HitCycles:        28,
		MSHRs:              32,
		MaxTBs:             8,
		IssueStaggerCycles: 4,
	}
}

// Stats aggregates per-SM counters.
type Stats struct {
	L1            cache.Stats
	Transactions  int64
	ReadTx        int64
	WriteTx       int64
	MSHRStallTime sim.Time
	TBsCompleted  int64
}

type warpState struct {
	prog     *WarpProgram
	instrIdx int
	tb       *tbRun
	id       int
}

type tbRun struct {
	warpsLeft  int
	onComplete func(now sim.Time)
}

type pendingLine struct {
	waiters []func(sim.Time)
}

// SM is one streaming multiprocessor.
type SM struct {
	ID     int
	cfg    Config
	eng    *sim.Engine
	fabric Fabric

	l1      *cache.Cache
	mshr    *cache.MSHRFile
	pending map[uint64]*pendingLine
	lsu     sim.Server

	// stalled holds read transactions refused by a full MSHR file, in
	// arrival order; they retry as entries free.
	stalled []stalledTx

	activeTBs int
	stats     Stats
}

type stalledTx struct {
	addr  uint64
	since sim.Time
	done  func(sim.Time)
}

// New builds an SM.
func New(eng *sim.Engine, id int, cfg Config, fabric Fabric) *SM {
	return &SM{
		ID:      id,
		cfg:     cfg,
		eng:     eng,
		fabric:  fabric,
		l1:      cache.MustNew(cfg.L1),
		mshr:    cache.NewMSHRFile(cfg.MSHRs),
		pending: make(map[uint64]*pendingLine),
	}
}

// Stats returns a copy of the SM's counters.
func (s *SM) Stats() Stats {
	st := s.stats
	st.L1 = s.l1.Stats()
	return st
}

// ActiveTBs returns current TB occupancy.
func (s *SM) ActiveTBs() int { return s.activeTBs }

// CanAccept reports whether a new TB fits.
func (s *SM) CanAccept() bool { return s.activeTBs < s.cfg.MaxTBs }

// LaunchTB starts a TB built from per-warp programs. gapCycles is the
// compute time between a warp's memory instructions; onComplete fires
// when every warp has issued its last instruction and all its reads have
// returned.
func (s *SM) LaunchTB(progs []WarpProgram, gapCycles int, onComplete func(now sim.Time)) {
	s.activeTBs++
	run := &tbRun{onComplete: onComplete}
	now := s.eng.Now()
	launched := 0
	for w := range progs {
		if len(progs[w].Instrs) == 0 {
			continue
		}
		launched++
	}
	if launched == 0 {
		// Degenerate TB with no memory instructions: completes after one
		// compute gap.
		s.eng.Schedule(s.cfg.CoreClock.Cycles(int64(gapCycles)), func() {
			s.finishTB(run)
		})
		run.warpsLeft = 1
		return
	}
	run.warpsLeft = launched
	for w := range progs {
		if len(progs[w].Instrs) == 0 {
			continue
		}
		ws := &warpState{prog: &progs[w], tb: run, id: w}
		stagger := s.cfg.CoreClock.Cycles(int64(w * s.cfg.IssueStaggerCycles))
		s.eng.At(now+stagger, func() { s.advance(ws, gapCycles) })
	}
}

func (s *SM) finishTB(run *tbRun) {
	run.warpsLeft--
	if run.warpsLeft == 0 {
		s.activeTBs--
		s.stats.TBsCompleted++
		if run.onComplete != nil {
			run.onComplete(s.eng.Now())
		}
	}
}

// advance issues the warp's next memory instruction: every transaction
// acquires the LSU (one per core cycle, so a fully diverged instruction
// occupies the LSU for 32 cycles — the greedy half of GTO), reads then
// traverse L1/MSHR/fabric. When the last read returns, the warp computes
// for gapCycles and advances again.
func (s *SM) advance(ws *warpState, gapCycles int) {
	if ws.instrIdx >= len(ws.prog.Instrs) {
		s.finishTB(ws.tb)
		return
	}
	instr := ws.prog.Instrs[ws.instrIdx]
	ws.instrIdx++
	now := s.eng.Now()

	outstanding := 1 // sentinel so callbacks during issue don't complete early
	var lastDone sim.Time
	finishOne := func(t sim.Time) {
		if t > lastDone {
			lastDone = t
		}
		outstanding--
		if outstanding == 0 {
			gap := s.cfg.CoreClock.Cycles(int64(gapCycles))
			at := lastDone + gap
			if at < s.eng.Now() {
				at = s.eng.Now()
			}
			s.eng.At(at, func() { s.advance(ws, gapCycles) })
		}
	}

	for _, tx := range instr {
		tx := tx
		_, grant := s.lsu.Acquire(now, s.cfg.CoreClock.Cycles(1))
		s.stats.Transactions++
		if tx.Write {
			s.stats.WriteTx++
			// Stores are fire-and-forget through the write buffer; they
			// bypass the L1 (write-through, no-allocate for global data)
			// and do not block the warp.
			s.eng.At(grant, func() { s.fabric.IssueWrite(s.eng.Now(), s.ID, tx.Addr) })
			continue
		}
		s.stats.ReadTx++
		outstanding++
		s.eng.At(grant, func() { s.read(tx.Addr, finishOne) })
	}
	// Retire the sentinel. If everything hit or the instruction was all
	// stores, the warp proceeds after the issue cycles alone.
	finishOne(now)
}

// read performs the L1 lookup path for one read transaction.
func (s *SM) read(addr uint64, done func(sim.Time)) {
	now := s.eng.Now()
	line := addr &^ uint64(s.cfg.L1.LineBytes-1)

	// A miss already in flight: merge regardless of tag-array state.
	if p, ok := s.pending[line]; ok {
		s.mshr.Add(line)
		p.waiters = append(p.waiters, done)
		return
	}
	if s.l1.Probe(line) {
		s.l1.Access(line, false) // update LRU and stats
		done(now + s.cfg.CoreClock.Cycles(int64(s.cfg.L1HitCycles)))
		return
	}
	// Primary miss. Check MSHR capacity before touching the tag array:
	// installing the line and then stalling would let the retry "hit"
	// without ever fetching the data.
	if s.mshr.Full() {
		s.stalled = append(s.stalled, stalledTx{addr: addr, since: now, done: done})
		return
	}
	s.l1.Access(line, false) // allocate; write-through L1 victims are clean
	s.mshr.Add(line)
	p := &pendingLine{waiters: []func(sim.Time){done}}
	s.pending[line] = p
	s.fabric.IssueRead(now, s.ID, line, func(fill sim.Time) { s.fill(line, fill) })
}

// fill completes an outstanding miss: wake waiters and retry stalled
// transactions now that an MSHR entry is free.
func (s *SM) fill(line uint64, at sim.Time) {
	p := s.pending[line]
	delete(s.pending, line)
	s.mshr.Complete(line)
	if p != nil {
		for _, w := range p.waiters {
			w(at)
		}
	}
	for len(s.stalled) > 0 && !s.mshr.Full() {
		tx := s.stalled[0]
		s.stalled = s.stalled[1:]
		s.stats.MSHRStallTime += at - tx.since
		s.read(tx.addr, tx.done)
	}
}
