package gpu

import (
	"testing"

	"valleymap/internal/sim"
	"valleymap/internal/trace"
)

// fakeFabric services reads after a fixed delay and records traffic.
type fakeFabric struct {
	eng    *sim.Engine
	delay  sim.Time
	reads  []uint64
	writes []uint64
}

func (f *fakeFabric) IssueRead(now sim.Time, sm int, addr uint64, sink ReadSink) {
	f.reads = append(f.reads, addr)
	f.eng.At(now+f.delay, func() { sink.FillLine(addr, f.eng.Now()) })
}

func (f *fakeFabric) IssueWrite(now sim.Time, sm int, addr uint64) {
	f.writes = append(f.writes, addr)
}

func newSM(delay sim.Time) (*sim.Engine, *fakeFabric, *SM) {
	eng := &sim.Engine{}
	fab := &fakeFabric{eng: eng, delay: delay}
	sm := New(eng, 0, DefaultConfig(), fab)
	return eng, fab, sm
}

func contiguousTB(threads int) *trace.TB {
	tb := &trace.TB{ID: 0}
	for t := 0; t < threads; t++ {
		tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(t) * 4, Warp: int32(t / 32)})
	}
	return tb
}

func stridedTB(threads int, stride uint64, kind trace.Kind) *trace.TB {
	tb := &trace.TB{ID: 0}
	for t := 0; t < threads; t++ {
		tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(t) * stride, Kind: kind, Warp: int32(t / 32)})
	}
	return tb
}

func TestBuildProgramsCoalesced(t *testing.T) {
	progs := BuildPrograms(contiguousTB(64), 2, 128, nil)
	if len(progs) != 2 {
		t.Fatalf("programs = %d", len(progs))
	}
	for w := range progs {
		p := &progs[w]
		if p.NumInstrs() != 1 {
			t.Fatalf("warp %d instrs = %d, want 1", w, p.NumInstrs())
		}
		if len(p.Instr(0)) != 1 {
			t.Errorf("warp %d transactions = %d, want 1 (coalesced)", w, len(p.Instr(0)))
		}
	}
}

func TestBuildProgramsDiverged(t *testing.T) {
	progs := BuildPrograms(stridedTB(32, 4096, trace.Read), 1, 128, nil)
	if progs[0].NumInstrs() != 1 || len(progs[0].Instr(0)) != 32 {
		t.Fatalf("diverged instr shape = %v", len(progs[0].Instr(0)))
	}
}

func TestBuildProgramsAppliesMapping(t *testing.T) {
	flip := func(a uint64) uint64 { return a ^ (1 << 20) }
	progs := BuildPrograms(contiguousTB(32), 1, 128, flip)
	if got := progs[0].Instr(0)[0].Addr; got != 1<<20 {
		t.Errorf("mapped addr = %#x, want %#x", got, 1<<20)
	}
}

func TestBuildProgramsKindsAndOrder(t *testing.T) {
	tb := &trace.TB{ID: 0}
	tb.Requests = append(tb.Requests, trace.Request{Addr: 0, Kind: trace.Read, Warp: 0})
	tb.Requests = append(tb.Requests, trace.Request{Addr: 4096, Kind: trace.Write, Warp: 0})
	progs := BuildPrograms(tb, 1, 128, nil)
	if progs[0].NumInstrs() != 2 {
		t.Fatalf("instrs = %d, want 2 (kind change splits instructions)", progs[0].NumInstrs())
	}
	if progs[0].Instr(0)[0].Write || !progs[0].Instr(1)[0].Write {
		t.Error("kinds wrong")
	}
}

func TestTBCompletionAfterReadsReturn(t *testing.T) {
	eng, fab, sm := newSM(1000 * sim.Nanosecond)
	progs := BuildPrograms(stridedTB(32, 4096, trace.Read), 1, 128, nil)
	var doneAt sim.Time
	sm.LaunchTB(progs, 10, func(now sim.Time) { doneAt = now })
	eng.Run()
	if doneAt < 1000*sim.Nanosecond {
		t.Errorf("TB completed at %v, before fabric delay", doneAt)
	}
	if len(fab.reads) != 32 {
		t.Errorf("fabric reads = %d, want 32", len(fab.reads))
	}
	if sm.ActiveTBs() != 0 {
		t.Error("TB still counted active")
	}
	if sm.Stats().TBsCompleted != 1 {
		t.Error("completion not counted")
	}
}

func TestL1MergesDuplicateLines(t *testing.T) {
	eng, fab, sm := newSM(1000 * sim.Nanosecond)
	// Two warps read the same line: one fabric read, both complete.
	tb := &trace.TB{ID: 0}
	for w := int32(0); w < 2; w++ {
		for t := 0; t < 32; t++ {
			tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(t * 4), Warp: w})
		}
	}
	progs := BuildPrograms(tb, 2, 128, nil)
	completed := 0
	sm.LaunchTB(progs, 10, func(sim.Time) { completed++ })
	eng.Run()
	if len(fab.reads) != 1 {
		t.Errorf("fabric reads = %d, want 1 (MSHR merge)", len(fab.reads))
	}
	if completed != 1 {
		t.Errorf("completed = %d", completed)
	}
}

func TestL1HitsAvoidFabric(t *testing.T) {
	eng, fab, sm := newSM(100 * sim.Nanosecond)
	// Same warp reads the same line in two consecutive instructions.
	tb := &trace.TB{ID: 0}
	tb.Requests = append(tb.Requests, trace.Request{Addr: 0, Warp: 0})
	tb.Requests = append(tb.Requests, trace.Request{Addr: 64, Warp: 0, Kind: trace.Write}) // splits instr
	tb.Requests = append(tb.Requests, trace.Request{Addr: 4, Warp: 0})
	progs := BuildPrograms(tb, 1, 128, nil)
	sm.LaunchTB(progs, 1, nil)
	eng.Run()
	if len(fab.reads) != 1 {
		t.Errorf("fabric reads = %d, want 1 (second read hits L1)", len(fab.reads))
	}
	st := sm.Stats()
	if st.L1.Hits != 1 || st.L1.Misses != 1 {
		t.Errorf("L1 stats = %+v", st.L1)
	}
}

func TestWritesDoNotBlockWarp(t *testing.T) {
	// Enormous fabric delay; writes only — the TB must finish almost
	// immediately (bounded by LSU issue + gaps, not by the fabric).
	eng, fab, sm := newSM(sim.Second)
	progs := BuildPrograms(stridedTB(32, 4096, trace.Write), 1, 128, nil)
	var doneAt sim.Time
	sm.LaunchTB(progs, 10, func(now sim.Time) { doneAt = now })
	drained := eng.RunUntil(sim.Millisecond)
	_ = drained
	if doneAt == 0 || doneAt > sim.Millisecond {
		t.Errorf("write-only TB done at %v, want < 1ms", doneAt)
	}
	if len(fab.writes) != 32 {
		t.Errorf("writes = %d", len(fab.writes))
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	// 48 distinct lines from one warp instruction exceed the 32-entry
	// MSHR file; all must still complete via the stall/retry path.
	eng, fab, sm := newSM(10 * sim.Microsecond)
	tb := &trace.TB{ID: 0}
	for t := 0; t < 32; t++ {
		tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(t) * 4096, Warp: 0})
	}
	for t := 0; t < 16; t++ {
		tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(t+40) * 4096, Warp: 1})
	}
	progs := BuildPrograms(tb, 2, 128, nil)
	completed := 0
	sm.LaunchTB(progs, 10, func(sim.Time) { completed++ })
	eng.Run()
	if completed != 1 {
		t.Fatalf("TB did not complete (completed=%d)", completed)
	}
	if len(fab.reads) != 48 {
		t.Errorf("fabric reads = %d, want 48", len(fab.reads))
	}
	if sm.Stats().MSHRStallTime == 0 {
		t.Error("expected MSHR stall time with 48 outstanding lines")
	}
}

func TestEmptyTBCompletes(t *testing.T) {
	eng, _, sm := newSM(0)
	done := false
	sm.LaunchTB(make([]WarpProgram, 4), 10, func(sim.Time) { done = true })
	eng.Run()
	if !done {
		t.Error("empty TB never completed")
	}
	if sm.ActiveTBs() != 0 {
		t.Error("occupancy leak")
	}
}

func TestOccupancyLimit(t *testing.T) {
	eng, _, sm := newSM(100 * sim.Nanosecond)
	if !sm.CanAccept() {
		t.Fatal("fresh SM refuses TBs")
	}
	for i := 0; i < DefaultConfig().MaxTBs; i++ {
		sm.LaunchTB(BuildPrograms(contiguousTB(32), 1, 128, nil), 10, nil)
	}
	if sm.CanAccept() {
		t.Error("SM over-subscribed")
	}
	eng.Run()
	if !sm.CanAccept() {
		t.Error("slots not released")
	}
}

func TestComputeGapPacesIssue(t *testing.T) {
	// Larger gaps must stretch execution.
	run := func(gap int) sim.Time {
		eng, _, sm := newSM(10 * sim.Nanosecond)
		tb := &trace.TB{ID: 0}
		for i := 0; i < 8; i++ {
			tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(i) * 4096, Warp: 0, Kind: trace.Write})
			tb.Requests = append(tb.Requests, trace.Request{Addr: uint64(i) * 8192, Warp: 0, Kind: trace.Read})
		}
		progs := BuildPrograms(tb, 1, 128, nil)
		sm.LaunchTB(progs, gap, nil)
		return eng.Run()
	}
	if fast, slow := run(10), run(1000); slow <= fast {
		t.Errorf("gap=1000 (%v) should be slower than gap=10 (%v)", slow, fast)
	}
}
