//go:build faultinject

package cache

// Chaos tests for the spill tier's fault seams. Built only with
// -tags faultinject; CI runs them with -race. The invariant under every
// injected fault is the damage policy: the spill tier may forget (a
// failed or torn entry reads as a miss and is recomputed) but may never
// lie (serve corrupt bytes) or take the process down.

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"valleymap/internal/fault"
)

// TestChaosSpillWriteFailure: with every spill write failing, Put/Flush
// never error or hang, each failure is counted via OnError, and the
// entries simply never land — a miss on the next read, not corruption.
func TestChaosSpillWriteFailure(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var errs atomic.Int64
	d := openTestDisk(t, DiskOptions{OnError: func() { errs.Add(1) }})

	fault.InjectError(fault.SpillWrite, 1.0, nil)
	d.Put("k1", []byte("v1"), 1)
	d.Put("k2", []byte("v2"), 1)
	d.Flush()

	if got := errs.Load(); got != 2 {
		t.Errorf("OnError fired %d times for 2 failed writes", got)
	}
	if fault.Fired(fault.SpillWrite) == 0 {
		t.Fatal("SpillWrite fault point never fired — the seam is dead")
	}
	if d.Len() != 0 || d.Bytes() != 0 {
		t.Errorf("failed writes were indexed: Len=%d Bytes=%d", d.Len(), d.Bytes())
	}
	fault.Reset()
	if _, _, ok := d.Get("k1"); ok {
		t.Error("failed write still readable after the queue drained")
	}
	// The store must keep working once the fault clears.
	d.Put("k3", []byte("v3"), 1)
	d.Flush()
	if _, _, ok := d.Get("k3"); !ok {
		t.Error("store did not recover after write faults cleared")
	}
}

// TestChaosSpillTornWrite: a torn write publishes a truncated file; the
// next Get detects it via the checksum, deletes the file, and reports a
// miss — never partial bytes.
func TestChaosSpillTornWrite(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var errs atomic.Int64
	dir := filepath.Join(t.TempDir(), "spill")
	d := openTestDisk(t, DiskOptions{Dir: dir, OnError: func() { errs.Add(1) }})

	fault.InjectFail(fault.SpillTorn, 1.0)
	d.Put("k", []byte("a payload long enough to tear"), 1)
	d.Flush()
	if fault.Fired(fault.SpillTorn) == 0 {
		t.Fatal("SpillTorn never fired — the seam is dead")
	}
	fault.Reset()

	// The torn file landed (the write itself "succeeded") and was even
	// indexed — the damage is only discoverable by reading it.
	if _, err := os.Stat(d.entryPath("k")); err != nil {
		t.Fatalf("torn entry file did not land: %v", err)
	}
	if payload, _, ok := d.Get("k"); ok {
		t.Fatalf("Get served %q from a torn entry", payload)
	}
	if errs.Load() == 0 {
		t.Error("torn entry read did not count an OnError")
	}
	if d.Contains("k") {
		t.Error("torn entry still indexed after detection")
	}
	// Re-put must land clean now.
	d.Put("k", []byte("fresh"), 1)
	d.Flush()
	if payload, _, ok := d.Get("k"); !ok || string(payload) != "fresh" {
		t.Errorf("re-put after torn entry = (%q, %v)", payload, ok)
	}
}

// TestChaosSpillTornSurvivesRestart: torn entries left by a crashed
// writer are swept out by the next OpenDisk scan.
func TestChaosSpillTornSurvivesRestart(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := filepath.Join(t.TempDir(), "spill")
	d1 := openTestDisk(t, DiskOptions{Dir: dir})
	fault.InjectFail(fault.SpillTorn, 1.0)
	d1.Put("k1", []byte("a payload long enough to tear"), 1)
	d1.Put("k2", []byte("another payload long enough to tear"), 1)
	d1.Close()
	if fault.Fired(fault.SpillTorn) == 0 {
		t.Fatal("SpillTorn never fired — the seam is dead")
	}
	fault.Reset()

	var errs atomic.Int64
	d2 := openTestDisk(t, DiskOptions{Dir: dir, OnError: func() { errs.Add(1) }})
	if d2.Len() != 0 {
		t.Errorf("scan indexed %d torn entries, want 0", d2.Len())
	}
	if errs.Load() != 2 {
		t.Errorf("scan counted %d damaged entries, want 2", errs.Load())
	}
}

// TestChaosSpillReadFailure: a failing read degrades to a miss and an
// OnError count; the entry file and index survive for the next,
// healthy read.
func TestChaosSpillReadFailure(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var errs atomic.Int64
	d := openTestDisk(t, DiskOptions{OnError: func() { errs.Add(1) }})
	d.Put("k", []byte("v"), 1)
	d.Flush()

	fault.InjectError(fault.SpillRead, 1.0, nil)
	if _, _, ok := d.Get("k"); ok {
		t.Fatal("Get succeeded under an injected read fault")
	}
	if errs.Load() != 1 {
		t.Errorf("OnError fired %d times for 1 failed read", errs.Load())
	}
	if fault.Fired(fault.SpillRead) == 0 {
		t.Fatal("SpillRead fault point never fired — the seam is dead")
	}
	fault.Reset()
	// A transient read fault must not have destroyed the entry.
	if payload, _, ok := d.Get("k"); !ok || string(payload) != "v" {
		t.Errorf("entry gone after a transient read fault: (%q, %v)", payload, ok)
	}
}

// TestChaosTieredSpillFaultsDegradeToRecompute: the full two-tier path
// under write faults — evictions fail to spill, lookups recompute the
// right value, and GetOrCompute never surfaces a spill error.
func TestChaosTieredSpillFaultsDegradeToRecompute(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	disk := openTestDisk(t, DiskOptions{})
	tc := newTestTiered(t, 1, 1, disk)

	fault.InjectError(fault.SpillWrite, 1.0, nil)
	tc.Add("a", tierCell{N: 1})
	tc.Add("b", tierCell{N: 2}) // evicts a; its spill write fails
	tc.Flush()
	fault.Reset()

	v, tier, err := tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 1}, nil })
	if err != nil || v.N != 1 {
		t.Fatalf("lookup after failed spill = (%+v, %v, %v)", v, tier, err)
	}
	if tier != TierMiss {
		t.Errorf("tier = %v for an entry whose spill failed, want miss (recompute)", tier)
	}
}
