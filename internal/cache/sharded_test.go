package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedSingleShardParity pins the contract the service tests rely
// on: a Sharded with Shards: 1 makes exactly the same decisions as a
// bare LRU fed the identical operation sequence — same hits, same
// residency, same eviction order.
func TestShardedSingleShardParity(t *testing.T) {
	bare := NewLRU(LRUOptions[int]{Capacity: 4})
	sharded := NewSharded(ShardedOptions[int]{Capacity: 4, Shards: 1})

	// A mixed workload: inserts past capacity, refreshes, repeat gets.
	keys := []string{"a", "b", "c", "d", "e", "b", "f", "a", "g", "c", "b"}
	for i, k := range keys {
		v := i * 10
		bv, bhit, _ := bare.GetOrCompute(k, func() (int, error) { return v, nil })
		sv, shit, _ := sharded.GetOrCompute(k, func() (int, error) { return v, nil })
		if bhit != shit || bv != sv {
			t.Fatalf("op %d (%s): bare (v=%d hit=%v) vs sharded (v=%d hit=%v)", i, k, bv, bhit, sv, shit)
		}
	}
	if bare.Len() != sharded.Len() {
		t.Fatalf("Len: bare %d vs sharded %d", bare.Len(), sharded.Len())
	}
	be, se := bare.Entries(), sharded.Entries()
	for i := range be {
		if be[i] != se[i] {
			t.Fatalf("entry %d: bare %+v vs sharded %+v (eviction order diverged)", i, be[i], se[i])
		}
	}
}

// TestShardedParityUnderUniformWeights: with uniform weights the
// sharded cache and a per-shard set of bare LRUs make identical
// eviction decisions, because a key's shard is a pure function of its
// bytes. This is the "sharding moves entries, never changes policy"
// invariant.
func TestShardedParityUnderUniformWeights(t *testing.T) {
	const shards, capacity = 4, 8
	sharded := NewSharded(ShardedOptions[int]{Capacity: capacity, Shards: shards})
	// A reference model: one bare LRU per shard with the same per-shard
	// capacity split the constructor uses.
	per := (capacity + shards - 1) / shards
	ref := make([]*LRU[int], shards)
	for i := range ref {
		ref[i] = NewLRU(LRUOptions[int]{Capacity: per})
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i%12)
		v := i
		sharded.GetOrCompute(k, func() (int, error) { return v, nil })
		ref[shardIndex(k, uint64(shards-1))].GetOrCompute(k, func() (int, error) { return v, nil })
	}
	want := map[string]int{}
	for _, l := range ref {
		for _, e := range l.Entries() {
			want[e.Key] = e.Val
		}
	}
	got := map[string]int{}
	for _, e := range sharded.Entries() {
		got[e.Key] = e.Val
	}
	if len(got) != len(want) {
		t.Fatalf("residency diverged: sharded %d entries vs model %d", len(got), len(want))
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Errorf("key %s: sharded has (%d,%v), model has %d", k, gv, ok, v)
		}
	}
}

// TestShardedDefaultShardCount: zero Shards picks the next power of two
// >= 2 x GOMAXPROCS, and explicit counts round up to a power of two.
func TestShardedDefaultShardCount(t *testing.T) {
	s := NewSharded(ShardedOptions[int]{Capacity: 16})
	want := nextPow2(2 * runtime.GOMAXPROCS(0))
	if got := s.ShardCount(); got != want {
		t.Errorf("default ShardCount = %d, want %d (2 x GOMAXPROCS=%d rounded up)", got, want, runtime.GOMAXPROCS(0))
	}
	if got := NewSharded(ShardedOptions[int]{Capacity: 16, Shards: 5}).ShardCount(); got != 8 {
		t.Errorf("Shards: 5 gave %d shards, want 8 (next power of two)", got)
	}
	for _, n := range []int{1, 2, 8} {
		if got := NewSharded(ShardedOptions[int]{Capacity: 16, Shards: n}).ShardCount(); got != n {
			t.Errorf("Shards: %d gave %d shards, want exactly %d", n, got, n)
		}
	}
}

// TestShardIndexDeterministic: the shard hash must be a pure function
// of the key bytes (it decides which spill decisions a key sees across
// restarts), and must actually spread keys.
func TestShardIndexDeterministic(t *testing.T) {
	const mask = 15
	used := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("sim|W%d|tiny|BASE|baseline|1", i)
		a, b := shardIndex(k, mask), shardIndex(k, mask)
		if a != b {
			t.Fatalf("shardIndex(%q) unstable: %d vs %d", k, a, b)
		}
		if a > mask {
			t.Fatalf("shardIndex(%q) = %d escapes mask %d", k, a, mask)
		}
		used[a] = true
	}
	if len(used) < 12 {
		t.Errorf("256 keys landed on only %d of 16 shards — hash is not spreading", len(used))
	}
}

// TestShardedCoalescing: concurrent callers of one key coalesce on a
// single computation inside the key's shard, even with many shards.
func TestShardedCoalescing(t *testing.T) {
	s := NewSharded(ShardedOptions[int]{Capacity: 64, Shards: 8})
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := s.GetOrCompute("hot", func() (int, error) {
				computes.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("GetOrCompute = (%d, %v)", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("%d computations for one key, want 1 (coalescing broken)", n)
	}
}

// TestShardedPanicPropagation: a panicking computation surfaces as
// *PanicError from the key's shard and is not cached.
func TestShardedPanicPropagation(t *testing.T) {
	s := NewSharded(ShardedOptions[int]{Capacity: 8, Shards: 4})
	_, _, err := s.GetOrCompute("boom", func() (int, error) { panic("kapow") })
	var pe *PanicError
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "kapow" {
		t.Fatalf("err = %v, want *PanicError{kapow}", err)
	}
	v, _, err := s.GetOrCompute("boom", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("panicked entry was cached: got (%d, %v), want fresh 7", v, err)
	}
}

// TestShardedOnEvictDelivery: evictions from any shard reach the single
// OnEvict hook with the entry's key, value and sampled weight.
func TestShardedOnEvictDelivery(t *testing.T) {
	var mu sync.Mutex
	evicted := map[string]Weight{}
	s := NewSharded(ShardedOptions[int]{
		Capacity: 4, Shards: 4,
		Weigh: func(v int) Weight { return Weight{Cost: float64(v), Bytes: 8} },
		OnEvict: func(key string, val int, w Weight) {
			mu.Lock()
			evicted[key] = w
			mu.Unlock()
		},
	})
	// Capacity 4 over 4 shards = 1 per shard: any two keys on the same
	// shard force an eviction.
	for i := 0; i < 32; i++ {
		s.Add(fmt.Sprintf("k%d", i), i+1)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(evicted)+s.Len() != 32 {
		t.Fatalf("%d evicted + %d resident != 32 inserted", len(evicted), s.Len())
	}
	for k, w := range evicted {
		if w.Bytes != 8 || w.Cost < 1 {
			t.Errorf("evicted %s carried weight %+v, want the Weigh-sampled one", k, w)
		}
	}
}

// TestShardedConcurrentStorm is the -race workout: every operation the
// service performs, hammered across shards by goroutines. Run with
// -race; the assertions only pin that nothing is lost or duplicated.
func TestShardedConcurrentStorm(t *testing.T) {
	s := NewSharded(ShardedOptions[int]{
		Capacity: 128, Shards: 8,
		Weigh:   func(v int) Weight { return Weight{Cost: 1, Bytes: 1} },
		OnEvict: func(string, int, Weight) {},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint64(seed)*2654435761 + 1
			for i := 0; i < 2000; i++ {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				k := fmt.Sprintf("k%d", r%256)
				switch r % 4 {
				case 0:
					s.Add(k, int(r%1000))
				case 1:
					s.Peek(k)
				case 2:
					s.Len()
				default:
					v, _, err := s.GetOrCompute(k, func() (int, error) { return int(r % 1000), nil })
					if err != nil || v < 0 || v >= 1000 {
						t.Errorf("GetOrCompute(%s) = (%d, %v)", k, v, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.Len(); n > 128+7 {
		// Capacity splits rounding up: at most Shards-1 above the request.
		t.Errorf("storm left %d resident entries, capacity bound is %d", n, 128+7)
	}
	seen := map[string]bool{}
	for _, e := range s.Entries() {
		if seen[e.Key] {
			t.Errorf("key %s resident in two shards", e.Key)
		}
		seen[e.Key] = true
	}
}

// TestShardedEntriesShardOrder: Entries reports shards in index order
// and per-shard LRU order, which is what snapshot/migration code feeds
// back through Add.
func TestShardedEntriesShardOrder(t *testing.T) {
	s := NewSharded(ShardedOptions[int]{Capacity: 64, Shards: 4})
	var keys []string
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%d", i)
		keys = append(keys, k)
		s.Add(k, i)
	}
	var got []string
	lastShard := uint64(0)
	for _, e := range s.Entries() {
		sh := shardIndex(e.Key, s.mask)
		if sh < lastShard {
			t.Fatalf("entry %s from shard %d appeared after shard %d", e.Key, sh, lastShard)
		}
		lastShard = sh
		got = append(got, e.Key)
	}
	sort.Strings(got)
	sort.Strings(keys)
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Entries lost or invented keys: %v vs %v", got, keys)
		}
	}
}
