package cache

// Sharded front of the service cache: the single-lock LRU[V] split
// N ways by key hash, so concurrent warm GETs contend on N small locks
// instead of one global one. Each shard is a full LRU[V] — in-flight
// coalescing, PanicError recovery and cost-aware eviction all hold
// per shard — and a key's shard is a pure function of its bytes, so
// every lookup, insert and eviction decision for a key is handled by
// exactly one shard for the cache's whole lifetime.

import "runtime"

// ShardedOptions configures a Sharded cache.
type ShardedOptions[V any] struct {
	// Capacity bounds resident entries across all shards (values < 1
	// become 1). It is split evenly, rounding up, so the effective
	// total capacity is at most Shards-1 entries above the request.
	Capacity int
	// Shards fixes the shard count, rounded up to a power of two.
	// Zero picks the next power of two >= 2 x GOMAXPROCS: enough
	// shards that under full parallelism two hot keys rarely share a
	// lock, few enough that per-shard capacity stays meaningful.
	Shards int
	// OnHit / OnMiss / Weigh / OnEvict are the LRUOptions fields,
	// applied to every shard.
	OnHit, OnMiss func()
	Weigh         func(V) Weight
	OnEvict       func(key string, val V, w Weight)
}

// Sharded is a hash-sharded LRU[V]. It preserves the LRU semantics —
// content-addressed lookups, in-flight coalescing per key, cost-aware
// eviction — while letting concurrent lookups of different keys
// proceed in parallel. A single shard (Shards: 1) is behaviorally
// identical to a bare LRU[V]; the parity tests pin this.
type Sharded[V any] struct {
	shards []*LRU[V]
	mask   uint64
}

// defaultShards returns the next power of two >= 2 x GOMAXPROCS.
func defaultShards() int {
	return nextPow2(2 * runtime.GOMAXPROCS(0))
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex hashes key with FNV-1a 64 and folds the high bits in, so
// the low mask bits see the whole hash. The hash is deterministic
// across processes: a key spills to and reloads from the same shard's
// decisions over restarts.
func shardIndex(key string, mask uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return (h ^ h>>32) & mask
}

// NewSharded builds an empty sharded cache.
func NewSharded[V any](opt ShardedOptions[V]) *Sharded[V] {
	n := opt.Shards
	if n <= 0 {
		n = defaultShards()
	}
	n = nextPow2(n)
	if opt.Capacity < 1 {
		opt.Capacity = 1
	}
	per := (opt.Capacity + n - 1) / n
	s := &Sharded[V]{shards: make([]*LRU[V], n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewLRU(LRUOptions[V]{
			Capacity: per,
			OnHit:    opt.OnHit,
			OnMiss:   opt.OnMiss,
			Weigh:    opt.Weigh,
			OnEvict:  opt.OnEvict,
		})
	}
	return s
}

func (s *Sharded[V]) shard(key string) *LRU[V] {
	return s.shards[shardIndex(key, s.mask)]
}

// ShardCount reports the number of shards.
func (s *Sharded[V]) ShardCount() int { return len(s.shards) }

// GetOrCompute returns the cached value for key, or runs fn once to
// produce it; concurrent callers of the same key coalesce on one
// computation inside the key's shard. Semantics match LRU.GetOrCompute
// exactly (errors uncached, panics surface as *PanicError).
func (s *Sharded[V]) GetOrCompute(key string, fn func() (V, error)) (V, bool, error) {
	return s.shard(key).GetOrCompute(key, fn)
}

// Add inserts (or refreshes) an entry in its shard.
func (s *Sharded[V]) Add(key string, val V) { s.shard(key).Add(key, val) }

// Peek reports the resident value without touching recency or the
// observers.
func (s *Sharded[V]) Peek(key string) (V, bool) { return s.shard(key).Peek(key) }

// Len returns the resident entries summed across shards.
func (s *Sharded[V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Entries returns every shard's resident entries, eviction order
// (least recently used first) within each shard, shards in index
// order. There is no global recency order across shards — recency is
// a per-shard notion — but feeding the result back through Add
// reconstructs contents and per-shard recency, which is all eviction
// ever consults.
func (s *Sharded[V]) Entries() []Entry[V] {
	var out []Entry[V]
	for _, sh := range s.shards {
		out = append(out, sh.Entries()...)
	}
	return out
}
