// Package cache has two halves.
//
// The hardware half (cache.go) models the set-associative, write-back,
// write-allocate caches of the simulated GPU (Table I) — per-SM L1D,
// LLC slices, MSHR bookkeeping.
//
// The service half is the tiered content-addressed result store behind
// valleyd's profile and simulation caches:
//
//	LRU[V]      (lru.go)      single-lock cost-aware LRU with in-flight
//	                          coalescing and *PanicError recovery
//	Sharded[V]  (sharded.go)  the LRU split N-way by key hash (N = next
//	                          power of two >= 2 x GOMAXPROCS) so warm
//	                          lookups contend per shard, not globally
//	DiskStore   (disk.go)     content-addressed spill tier: one
//	                          checksummed file per entry, async
//	                          write-behind, byte-budget janitor
//	Tiered[V]   (tiered.go)   the two glued together
//
// # Two-tier contract
//
// Promotion: a memory miss reads through to disk inside the shard's
// singleflight, so one burst of lookups for a spilled key performs one
// disk read, and the decoded value is immediately resident in memory
// again (a TierDisk hit). Capacity evictions flow the other way:
// instead of discarding, the evicted entry is serialized and enqueued
// for spilling. Between the two, a key's value migrates but is never
// in neither tier while it is still wanted.
//
// Write-behind ordering: DiskStore.Put makes an entry readable the
// moment it is accepted — Get and Contains consult the pending queue
// before the on-disk index — so the asynchronous write is never a
// visibility gap. The queue is bounded; on overflow the oldest pending
// write is dropped and counted. A drop loses cache warmth (that key
// reverts to a miss and recomputes), never correctness.
//
// Crash semantics: every entry file is written to a temp file and
// atomically renamed into place, and carries a SHA-256 over its framed
// bytes. After a crash the directory holds only complete old files,
// complete new files, and possibly torn temp or torn renamed files;
// opening the store re-scans the fan-out directories, validates every
// entry, and deletes anything damaged. At read time a failed checksum,
// a wrong key (digest collision or foreign file), or a read error
// deletes the file and reads as a miss. A cache is always allowed to
// forget; it is never allowed to lie — no damage mode surfaces as an
// error to a sweep, and none can serve corrupt bytes as a result.
package cache
