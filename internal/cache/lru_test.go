package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fill inserts keys with per-key weights through the compute path.
func fill(t *testing.T, c *LRU[string], keys []string) {
	t.Helper()
	for _, k := range keys {
		k := k
		if _, hit, err := c.GetOrCompute(k, func() (string, error) { return "v:" + k, nil }); err != nil || hit {
			t.Fatalf("inserting %q: hit=%v err=%v", k, hit, err)
		}
	}
}

func resident(c *LRU[string]) map[string]bool {
	out := map[string]bool{}
	for _, e := range c.Entries() {
		out[e.Key] = true
	}
	return out
}

// TestLRUCostWeightedEviction is the table-driven contract of the
// cost-aware policy: among the least-recently-used entries, the lowest
// Cost/Bytes density goes first; without a weigher, eviction is exact
// LRU.
func TestLRUCostWeightedEviction(t *testing.T) {
	cases := []struct {
		name     string
		capacity int
		weights  map[string]Weight // nil entry = unweighted cache
		insert   []string
		touch    []string // Gets between inserts and the overflow insert
		overflow []string
		evicted  []string
		kept     []string
	}{
		{
			name:     "unweighted is exact LRU",
			capacity: 3,
			insert:   []string{"a", "b", "c"},
			overflow: []string{"d"},
			evicted:  []string{"a"},
			kept:     []string{"b", "c", "d"},
		},
		{
			name:     "expensive tail entry survives, cheap neighbor goes",
			capacity: 3,
			weights:  map[string]Weight{"slow": {Cost: 60, Bytes: 512}, "quick": {Cost: 0.001, Bytes: 512}, "mid": {Cost: 1, Bytes: 512}, "new": {Cost: 1, Bytes: 512}},
			insert:   []string{"slow", "quick", "mid"},
			overflow: []string{"new"},
			evicted:  []string{"quick"},
			kept:     []string{"slow", "mid", "new"},
		},
		{
			name:     "density not raw cost: big cheap bytes go first",
			capacity: 2,
			weights:  map[string]Weight{"bulky": {Cost: 2, Bytes: 4096}, "dense": {Cost: 1, Bytes: 64}, "new": {Cost: 1, Bytes: 64}},
			insert:   []string{"bulky", "dense"},
			overflow: []string{"new"},
			evicted:  []string{"bulky"}, // 2/4096 << 1/64
			kept:     []string{"dense", "new"},
		},
		{
			name:     "equal weights fall back to recency",
			capacity: 3,
			weights:  map[string]Weight{"a": {Cost: 1, Bytes: 1}, "b": {Cost: 1, Bytes: 1}, "c": {Cost: 1, Bytes: 1}, "d": {Cost: 1, Bytes: 1}},
			insert:   []string{"a", "b", "c"},
			touch:    []string{"a"},
			overflow: []string{"d"},
			evicted:  []string{"b"},
			kept:     []string{"a", "c", "d"},
		},
		{
			name:     "repeated overflow drains cheap entries in cost order",
			capacity: 3,
			weights: map[string]Weight{
				"gold": {Cost: 100, Bytes: 512}, "cheap1": {Cost: 0.01, Bytes: 512}, "cheap2": {Cost: 0.02, Bytes: 512},
				"n1": {Cost: 5, Bytes: 512}, "n2": {Cost: 5, Bytes: 512},
			},
			insert:   []string{"gold", "cheap1", "cheap2"},
			overflow: []string{"n1", "n2"},
			evicted:  []string{"cheap1", "cheap2"},
			kept:     []string{"gold", "n1", "n2"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := LRUOptions[string]{Capacity: tc.capacity}
			if tc.weights != nil {
				opt.Weigh = func(v string) Weight {
					// Values are "v:<key>"; weigh by key.
					return tc.weights[v[2:]]
				}
			}
			c := NewLRU(opt)
			fill(t, c, tc.insert)
			for _, k := range tc.touch {
				if _, ok := c.Peek(k); !ok {
					t.Fatalf("touch target %q not resident", k)
				}
				c.GetOrCompute(k, func() (string, error) { return "v:" + k, nil })
			}
			fill(t, c, tc.overflow)

			if got := c.Len(); got != tc.capacity {
				t.Fatalf("len = %d, want capacity %d", got, tc.capacity)
			}
			res := resident(c)
			for _, k := range tc.evicted {
				if res[k] {
					t.Errorf("%q should have been evicted; resident: %v", k, res)
				}
			}
			for _, k := range tc.kept {
				if !res[k] {
					t.Errorf("%q should have survived; resident: %v", k, res)
				}
			}
		})
	}
}

// TestLRUNewcomerIsNeverItsOwnVictim: on a small cache (capacity below
// the scan window) full of expensive entries, a newly inserted cheap
// entry must still become resident — the eviction scan may not pick
// the just-inserted front element, or a cheap-but-hot key would be
// recomputed on every single lookup forever.
func TestLRUNewcomerIsNeverItsOwnVictim(t *testing.T) {
	weights := map[string]Weight{
		"exp1":  {Cost: 100, Bytes: 1},
		"exp2":  {Cost: 50, Bytes: 1},
		"cheap": {Cost: 0.001, Bytes: 1},
	}
	c := NewLRU(LRUOptions[string]{Capacity: 2, Weigh: func(v string) Weight { return weights[v[2:]] }})
	fill(t, c, []string{"exp1", "exp2", "cheap"})
	if _, ok := c.Peek("cheap"); !ok {
		t.Fatalf("cheap newcomer evicted itself; resident: %v", resident(c))
	}
	// The victim was the lower-density old entry, not the newcomer.
	if _, ok := c.Peek("exp2"); ok {
		t.Errorf("exp2 (density 50) survived over exp1 (density 100); resident: %v", resident(c))
	}
	// And the now-resident cheap entry hits instead of recomputing.
	if _, hit, _ := c.GetOrCompute("cheap", func() (string, error) { return "v:cheap", nil }); !hit {
		t.Error("cheap entry not resident after insert")
	}
	// Capacity 1: the degenerate case must still admit every newcomer.
	c1 := NewLRU(LRUOptions[string]{Capacity: 1, Weigh: func(v string) Weight { return weights[v[2:]] }})
	fill(t, c1, []string{"exp1", "cheap"})
	if _, ok := c1.Peek("cheap"); !ok {
		t.Error("capacity-1 cache rejected its newest entry")
	}
}

// TestLRUWeightSanitized: non-positive bytes and negative cost from a
// weigher must not divide by zero or produce negative densities that
// shield entries forever.
func TestLRUWeightSanitized(t *testing.T) {
	c := NewLRU(LRUOptions[string]{Capacity: 2, Weigh: func(v string) Weight {
		return Weight{Cost: -5, Bytes: 0}
	}})
	fill(t, c, []string{"a", "b", "c"})
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestLRUEntriesRoundTrip: Entries (LRU-first) fed back through Add
// reconstructs contents and recency — the snapshot contract.
func TestLRUEntriesRoundTrip(t *testing.T) {
	src := NewLRU(LRUOptions[string]{Capacity: 4})
	fill(t, src, []string{"a", "b", "c", "d"})
	src.GetOrCompute("a", func() (string, error) { return "v:a", nil }) // a becomes MRU

	entries := src.Entries()
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	if entries[0].Key != "b" || entries[len(entries)-1].Key != "a" {
		t.Fatalf("entries order %v, want LRU-first (b … a)", entries)
	}

	dst := NewLRU(LRUOptions[string]{Capacity: 4})
	for _, e := range entries {
		dst.Add(e.Key, e.Val)
	}
	if got, ok := dst.Peek("a"); !ok || got != "v:a" {
		t.Fatalf("a after round trip: %q %v", got, ok)
	}
	// Overflowing the rebuilt cache must evict the original LRU order:
	// b first, not a.
	fill(t, dst, []string{"e"})
	res := resident(dst)
	if res["b"] || !res["a"] {
		t.Errorf("recency lost in round trip; resident: %v", res)
	}
}

// TestLRUCoalescingAndErrors re-pins the behavior the service relied on
// before the move to internal/cache: in-flight coalescing, uncached
// errors, panic recovery.
func TestLRUCoalescingAndErrors(t *testing.T) {
	var computes atomic.Int64
	var hits atomic.Int64
	c := NewLRU(LRUOptions[int]{Capacity: 8, OnHit: func() { hits.Add(1) }})
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.GetOrCompute("k", func() (int, error) {
				computes.Add(1)
				<-gate
				return 42, nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
	if hits.Load() != 9 {
		t.Errorf("hits = %d, want 9", hits.Load())
	}

	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute("err", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, hit, _ := c.GetOrCompute("err", func() (int, error) { return 1, nil }); hit {
		t.Error("errors must not be cached")
	}
	if _, _, err := c.GetOrCompute("panic", func() (int, error) { panic("ow") }); err == nil {
		t.Fatal("panic must surface as error")
	}
	if _, hit, err := c.GetOrCompute("panic", func() (int, error) { return 2, nil }); hit || err != nil {
		t.Errorf("retry after panic: hit=%v err=%v", hit, err)
	}
}

// TestLRUEvictScanWindow: an expensive entry deeper than the scan
// window is still protected once eviction pressure walks the tail to
// it — i.e. the window bounds work per eviction, not correctness.
func TestLRUEvictScanWindow(t *testing.T) {
	weights := map[string]Weight{}
	c := NewLRU(LRUOptions[string]{Capacity: evictScan + 4, Weigh: func(v string) Weight {
		return weights[v[2:]]
	}})
	// One precious entry buried at the very bottom of the LRU list,
	// then a tail of cheap entries longer than the scan window.
	weights["gold"] = Weight{Cost: 1000, Bytes: 1}
	fill(t, c, []string{"gold"})
	var cheap []string
	for i := 0; i < evictScan+3; i++ {
		k := fmt.Sprintf("cheap%d", i)
		weights[k] = Weight{Cost: 0.001, Bytes: 1}
		cheap = append(cheap, k)
	}
	fill(t, c, cheap)
	// Push enough new mid-cost entries to force many evictions.
	for i := 0; i < evictScan; i++ {
		k := fmt.Sprintf("new%d", i)
		weights[k] = Weight{Cost: 1, Bytes: 1}
		fill(t, c, []string{k})
	}
	if _, ok := c.Peek("gold"); !ok {
		t.Error("high-cost entry evicted while cheaper candidates were in the scan window")
	}
}
