package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func openTestDisk(t *testing.T, opt DiskOptions) *DiskStore {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = filepath.Join(t.TempDir(), "spill")
	}
	d, err := OpenDisk(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestDiskRoundTrip: Put → Flush → Get returns the exact payload and
// cost, and the entry file sits under the two-level fan-out layout.
func TestDiskRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	d := openTestDisk(t, DiskOptions{Dir: dir})
	d.Put("sim|SP|tiny|BASE", []byte(`{"exec_ps":123}`), 0.25)
	d.Flush()

	payload, cost, ok := d.Get("sim|SP|tiny|BASE")
	if !ok || string(payload) != `{"exec_ps":123}` || cost != 0.25 {
		t.Fatalf("Get = (%q, %v, %v)", payload, cost, ok)
	}
	if d.Len() != 1 || d.Bytes() <= 0 {
		t.Errorf("Len=%d Bytes=%d after one landed entry", d.Len(), d.Bytes())
	}

	sum := hex.EncodeToString(func() []byte { h := sha256.Sum256([]byte("sim|SP|tiny|BASE")); return h[:] }())
	want := filepath.Join(dir, sum[:2], sum[2:])
	if _, err := os.Stat(want); err != nil {
		t.Errorf("entry not at fan-out path %s: %v", want, err)
	}
}

// TestDiskPendingReadableBeforeFlush pins the write-behind ordering
// contract: an accepted Put is immediately visible to Get and Contains,
// before its file lands.
func TestDiskPendingReadableBeforeFlush(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	d.Put("k", []byte("v"), 1)
	// No Flush: the write may still be queued. Both reads must hit.
	if !d.Contains("k") {
		t.Error("Contains(k) false while the write is pending")
	}
	if payload, _, ok := d.Get("k"); !ok || string(payload) != "v" {
		t.Errorf("Get(k) = (%q, %v) while pending, want (v, true)", payload, ok)
	}
}

// TestDiskDropOldestOnOverflow: a full queue drops the oldest pending
// write (counted via OnWriteDrop) rather than blocking the caller, and
// the dropped entry reverts to a miss.
func TestDiskDropOldestOnOverflow(t *testing.T) {
	var drops atomic.Int64
	dir := filepath.Join(t.TempDir(), "spill")
	d, err := OpenDisk(DiskOptions{Dir: dir, QueueLen: 2, OnWriteDrop: func() { drops.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Hold the lock so the drain goroutine cannot dequeue between Puts;
	// this makes the overflow deterministic.
	d.mu.Lock()
	for i := 0; i < 4; i++ {
		req := &spillReq{key: fmt.Sprintf("k%d", i), payload: []byte("v"), cost: 1}
		if len(d.queue) >= d.opt.QueueLen {
			old := d.queue[0]
			d.queue = d.queue[1:]
			if d.pending[old.key] == old {
				delete(d.pending, old.key)
			}
			drops.Add(1)
		}
		d.queue = append(d.queue, req)
		d.pending[req.key] = req
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	d.Flush()
	if got := drops.Load(); got != 2 {
		t.Errorf("drops = %d, want 2 (k0 and k1 displaced)", got)
	}
	if d.Contains("k0") || d.Contains("k1") {
		t.Error("dropped writes still resident")
	}
	for _, k := range []string{"k2", "k3"} {
		if _, _, ok := d.Get(k); !ok {
			t.Errorf("surviving write %s lost", k)
		}
	}
}

// TestDiskPutOverflowCallsDropHook drives the real Put path over a tiny
// queue: with enough Puts racing one drain goroutine, drops eventually
// fire through the public API too (the deterministic displacement logic
// is covered above).
func TestDiskPutOverflowCallsDropHook(t *testing.T) {
	var drops, writes atomic.Int64
	d := openTestDisk(t, DiskOptions{
		QueueLen:    1,
		OnWrite:     func() { writes.Add(1) },
		OnWriteDrop: func() { drops.Add(1) },
	})
	const n = 200
	for i := 0; i < n; i++ {
		d.Put(fmt.Sprintf("k%d", i), []byte("v"), 1)
	}
	d.Close() // Flush can return before the last callback fires; Close cannot
	if writes.Load()+drops.Load() != n {
		t.Errorf("writes %d + drops %d != %d Puts: an accepted Put neither landed nor was counted dropped",
			writes.Load(), drops.Load(), n)
	}
}

// TestDiskJanitorEvictsLowestDensity: over the byte budget, the janitor
// removes the lowest cost-per-byte entries (and their files) until the
// landed bytes fit, counting each via OnEvict.
func TestDiskJanitorEvictsLowestDensity(t *testing.T) {
	var evictions atomic.Int64
	payload := make([]byte, 256)
	// Entry file size = header(28) + keyLen + 256 + sha(32); with 2-byte
	// keys each entry is 318 bytes. Budget for two entries.
	d := openTestDisk(t, DiskOptions{
		Dir:      filepath.Join(t.TempDir(), "spill"),
		MaxBytes: 700,
		OnEvict:  func() { evictions.Add(1) },
	})
	d.Put("aa", payload, 0.01) // cheapest per byte — the victim
	d.Flush()
	d.Put("bb", payload, 5.0)
	d.Flush()
	d.Put("cc", payload, 3.0) // pushes bytes over 700
	d.Flush()
	d.Close() // OnEvict fires after the drain's unlock; Close waits for it

	if got := evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if d.Contains("aa") {
		t.Error("janitor kept the cheapest entry aa")
	}
	for _, k := range []string{"bb", "cc"} {
		if _, _, ok := d.Get(k); !ok {
			t.Errorf("janitor evicted expensive entry %s", k)
		}
	}
	if d.Bytes() > 700 {
		t.Errorf("Bytes = %d, still over the 700 budget", d.Bytes())
	}
	// The victim's file must be gone, not just unindexed.
	sum := sha256.Sum256([]byte("aa"))
	hexsum := hex.EncodeToString(sum[:])
	if _, err := os.Stat(filepath.Join(d.opt.Dir, hexsum[:2], hexsum[2:])); !os.IsNotExist(err) {
		t.Errorf("evicted entry file still on disk: %v", err)
	}
}

// TestDiskDamagedEntryIsMissAndRemoved: flipping a byte in a landed
// entry file makes Get report a miss, delete the file, and count one
// OnError — never return corrupt bytes.
func TestDiskDamagedEntryIsMissAndRemoved(t *testing.T) {
	var errs atomic.Int64
	dir := filepath.Join(t.TempDir(), "spill")
	d := openTestDisk(t, DiskOptions{Dir: dir, OnError: func() { errs.Add(1) }})
	d.Put("k", []byte("precious"), 1)
	d.Flush()

	path := d.entryPath("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-40] ^= 0xff // a payload byte under the checksum
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if payload, _, ok := d.Get("k"); ok {
		t.Fatalf("Get returned %q from a corrupt entry", payload)
	}
	if errs.Load() != 1 {
		t.Errorf("OnError fired %d times, want 1", errs.Load())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file not deleted")
	}
	if d.Contains("k") {
		t.Error("corrupt entry still indexed")
	}
}

// TestDiskReopenScan: a fresh DiskStore over an existing directory
// rebuilds the index from the entry files, deleting any damaged ones on
// the spot; valid neighbours survive.
func TestDiskReopenScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	d1 := openTestDisk(t, DiskOptions{Dir: dir})
	d1.Put("good", []byte("payload-1"), 2.5)
	d1.Put("bad", []byte("payload-2"), 1.0)
	d1.Flush()
	badPath := d1.entryPath("bad")
	d1.Close()

	// Truncate one entry behind the store's back (a crash mid-rename on
	// a filesystem without atomic rename, a disk error, operator damage).
	if err := os.Truncate(badPath, 10); err != nil {
		t.Fatal(err)
	}
	// And drop a stray file the scanner must skip, not crash on.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	var errs atomic.Int64
	d2 := openTestDisk(t, DiskOptions{Dir: dir, OnError: func() { errs.Add(1) }})
	if d2.Len() != 1 {
		t.Fatalf("reopened store indexed %d entries, want 1", d2.Len())
	}
	if payload, cost, ok := d2.Get("good"); !ok || string(payload) != "payload-1" || cost != 2.5 {
		t.Errorf("surviving entry = (%q, %v, %v)", payload, cost, ok)
	}
	if d2.Contains("bad") {
		t.Error("truncated entry resurrected by the scan")
	}
	if errs.Load() != 1 {
		t.Errorf("scan counted %d damaged entries, want 1", errs.Load())
	}
	if _, err := os.Stat(badPath); !os.IsNotExist(err) {
		t.Error("scan left the damaged file on disk")
	}
}

// TestDiskSupersededWrite: a newer Put for a key that is mid-write wins
// — after both land, Get returns the newer payload.
func TestDiskSupersededWrite(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	for i := 0; i < 50; i++ {
		d.Put("k", []byte(fmt.Sprintf("v%d", i)), 1)
	}
	d.Flush()
	if payload, _, ok := d.Get("k"); !ok || string(payload) != "v49" {
		t.Errorf("Get after superseding writes = (%q, %v), want (v49, true)", payload, ok)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d after 50 writes of one key, want 1", d.Len())
	}
}

// TestDiskRemove removes landed and pending state and the entry file.
func TestDiskRemove(t *testing.T) {
	d := openTestDisk(t, DiskOptions{})
	d.Put("k", []byte("v"), 1)
	d.Flush()
	path := d.entryPath("k")
	d.Remove("k")
	if d.Contains("k") {
		t.Error("removed key still resident")
	}
	if _, _, ok := d.Get("k"); ok {
		t.Error("removed key still readable")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("removed key's file still on disk")
	}
}

// TestDiskCloseDrains: Close returns only after every accepted Put has
// landed, and a reopened store sees them all.
func TestDiskCloseDrains(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	d, err := OpenDisk(DiskOptions{Dir: dir, QueueLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		d.Put(fmt.Sprintf("k%d", i), []byte("v"), 1)
	}
	d.Close()
	d.Close() // idempotent

	d2 := openTestDisk(t, DiskOptions{Dir: dir})
	if d2.Len() != n {
		t.Fatalf("reopened store has %d entries, Close dropped %d", d2.Len(), n-d2.Len())
	}
}

// TestDiskConcurrentStorm is the -race workout for the spill store:
// writers, readers and removers hammering overlapping keys.
func TestDiskConcurrentStorm(t *testing.T) {
	d := openTestDisk(t, DiskOptions{QueueLen: 32, MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint64(seed)*0x9e3779b9 + 1
			for i := 0; i < 500; i++ {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				k := fmt.Sprintf("k%d", r%64)
				switch r % 5 {
				case 0, 1:
					d.Put(k, []byte(fmt.Sprintf("payload-%d", r%1000)), float64(r%10))
				case 2:
					d.Get(k)
				case 3:
					d.Contains(k)
				default:
					d.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	d.Flush()
	// Residual invariant: everything still indexed must read back clean.
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%d", i)
		if d.Contains(k) {
			if _, _, ok := d.Get(k); !ok {
				// A Contains→Get race with Remove is fine; what must never
				// happen is a Get returning corrupt bytes, which readEntryFile
				// guards by checksum. Nothing to assert here beyond no panic
				// and no -race report.
				continue
			}
		}
	}
}
