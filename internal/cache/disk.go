package cache

// Disk spill tier: a content-addressed store of serialized cache
// entries, one checksummed file per entry under two-level fan-out
// directories (ab/cdef...). Writes are asynchronous — Put enqueues on a
// bounded write-behind queue drained by one goroutine; when the queue
// overflows, the oldest pending write is dropped (and counted), never
// the caller blocked — and each file lands atomically via temp +
// rename. Reads verify the per-entry checksum and key; any damage —
// truncation, corruption, a key collision, a stray file — deletes the
// file and reads as a miss, because a cache is always allowed to
// forget. A byte-budget janitor evicts the lowest cost-per-byte
// entries after each landed write, mirroring the memory tier's
// cost-aware policy.
//
// Ordering contract: an entry is readable from the moment Put accepts
// it — Get and Contains consult the pending queue before the on-disk
// index — so spilling is never a visibility gap. Dropped writes lose
// only cache warmth (the entry reverts to a miss), never correctness.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"valleymap/internal/fault"
)

// spillMagic brands one spill entry file; the trailing digit is the
// format version.
var spillMagic = [8]byte{'V', 'S', 'P', 'I', 'L', 'L', '0', '1'}

// DiskOptions configures a DiskStore. All callbacks may be nil and are
// invoked outside the store's lock; they must not call back into the
// store.
type DiskOptions struct {
	// Dir is the spill directory, created if missing.
	Dir string
	// MaxBytes bounds the landed entry bytes; the janitor evicts the
	// lowest cost-per-byte entries to stay under it. <= 0 disables the
	// budget.
	MaxBytes int64
	// QueueLen bounds the write-behind queue (0 = 256 pending writes).
	QueueLen int
	// OnWrite observes each landed entry file.
	OnWrite func()
	// OnWriteDrop observes pending writes discarded on queue overflow.
	OnWriteDrop func()
	// OnEvict observes janitor evictions.
	OnEvict func()
	// OnError observes spill damage: failed writes and corrupt or
	// unreadable entry files (each treated as a miss, never an error).
	OnError func()
}

type diskMeta struct {
	bytes int64 // whole entry file size
	cost  float64
}

type spillReq struct {
	key     string
	payload []byte
	cost    float64
}

// DiskStore is the disk-backed tier. All methods are safe for
// concurrent use.
type DiskStore struct {
	opt DiskOptions

	mu      sync.Mutex
	cond    *sync.Cond
	index   map[string]diskMeta  // landed entries
	pending map[string]*spillReq // queued or in-flight writes
	queue   []*spillReq
	writing bool // drain goroutine holds an entry taken off the queue
	bytes   int64
	closed  bool

	done chan struct{}
}

// OpenDisk opens (creating if needed) a spill directory and rebuilds
// the in-memory index by scanning it: every entry file is read and
// fully validated, and damaged files are deleted on the spot. The
// write-behind drain goroutine starts immediately; callers must Close.
func OpenDisk(opt DiskOptions) (*DiskStore, error) {
	if opt.Dir == "" {
		return nil, errors.New("cache: spill dir must not be empty")
	}
	if opt.QueueLen <= 0 {
		opt.QueueLen = 256
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating spill dir: %w", err)
	}
	d := &DiskStore{
		opt:     opt,
		index:   map[string]diskMeta{},
		pending: map[string]*spillReq{},
		done:    make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	if err := d.scan(); err != nil {
		return nil, err
	}
	go d.drain()
	return d, nil
}

// entryPath fans the key's digest out over two directory levels so no
// single directory accumulates millions of entries.
func (d *DiskStore) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	hexsum := hex.EncodeToString(sum[:])
	return filepath.Join(d.opt.Dir, hexsum[:2], hexsum[2:])
}

// scan rebuilds the index from the fan-out directories. Anything that
// fails validation is removed; scan itself only fails on I/O errors
// listing the directories.
func (d *DiskStore) scan() error {
	subs, err := os.ReadDir(d.opt.Dir)
	if err != nil {
		return fmt.Errorf("cache: scanning spill dir: %w", err)
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.opt.Dir, sub.Name()))
		if err != nil {
			return fmt.Errorf("cache: scanning spill dir: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(d.opt.Dir, sub.Name(), f.Name())
			key, _, cost, err := readEntryFile(path)
			if err != nil {
				os.Remove(path)
				d.observe(d.opt.OnError)
				continue
			}
			st, err := os.Stat(path)
			if err != nil {
				continue
			}
			d.index[key] = diskMeta{bytes: st.Size(), cost: cost}
			d.bytes += st.Size()
		}
	}
	return nil
}

// Put enqueues one entry for asynchronous spilling. The payload is
// owned by the store from this point and must not be mutated by the
// caller. When the queue is full the oldest pending write is dropped
// (counted via OnWriteDrop) — the newest spill is the one most likely
// to be re-read. Put never blocks on I/O.
func (d *DiskStore) Put(key string, payload []byte, cost float64) {
	if cost < 0 || math.IsNaN(cost) {
		cost = 0
	}
	req := &spillReq{key: key, payload: payload, cost: cost}
	var dropped bool
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if len(d.queue) >= d.opt.QueueLen {
		old := d.queue[0]
		d.queue = d.queue[1:]
		if d.pending[old.key] == old {
			delete(d.pending, old.key)
		}
		dropped = true
	}
	d.queue = append(d.queue, req)
	d.pending[key] = req
	d.cond.Broadcast()
	d.mu.Unlock()
	if dropped {
		d.observe(d.opt.OnWriteDrop)
	}
}

// Get returns the stored payload and cost for key. Pending writes are
// served straight from the queue (write-behind ordering: an accepted
// Put is immediately readable); landed entries are read from disk and
// fully verified, with any damage deleting the file and reading as a
// miss.
func (d *DiskStore) Get(key string) ([]byte, float64, bool) {
	d.mu.Lock()
	if req, ok := d.pending[key]; ok {
		payload, cost := req.payload, req.cost
		d.mu.Unlock()
		return payload, cost, true
	}
	_, ok := d.index[key]
	d.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	if err := fault.Err(fault.SpillRead); err != nil {
		d.observe(d.opt.OnError)
		return nil, 0, false
	}
	path := d.entryPath(key)
	gotKey, payload, cost, err := readEntryFile(path)
	if err == nil && gotKey != key {
		// A digest collision or a foreign file at this path: neither is
		// our entry.
		err = fmt.Errorf("cache: spill entry holds key %q, want %q", gotKey, key)
	}
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			os.Remove(path)
			d.observe(d.opt.OnError)
		}
		d.mu.Lock()
		if meta, ok := d.index[key]; ok {
			d.bytes -= meta.bytes
			delete(d.index, key)
		}
		d.mu.Unlock()
		return nil, 0, false
	}
	return payload, cost, true
}

// Contains reports whether key is resident (pending or landed) without
// touching the disk.
func (d *DiskStore) Contains(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.pending[key]; ok {
		return true
	}
	_, ok := d.index[key]
	return ok
}

// Remove deletes key's entry (landed and/or pending), if any.
func (d *DiskStore) Remove(key string) {
	d.mu.Lock()
	if req, ok := d.pending[key]; ok {
		delete(d.pending, key)
		for i, q := range d.queue {
			if q == req {
				d.queue = append(d.queue[:i], d.queue[i+1:]...)
				break
			}
		}
	}
	meta, landed := d.index[key]
	if landed {
		d.bytes -= meta.bytes
		delete(d.index, key)
	}
	d.mu.Unlock()
	if landed {
		os.Remove(d.entryPath(key))
	}
}

// Len reports landed entries (pending writes excluded).
func (d *DiskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Bytes reports landed entry bytes (pending writes excluded).
func (d *DiskStore) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// QueueLen reports the configured write-behind queue bound.
func (d *DiskStore) QueueLen() int { return d.opt.QueueLen }

// Flush blocks until every currently pending write has landed (or been
// dropped). New Puts racing a Flush may or may not be waited for.
func (d *DiskStore) Flush() {
	d.mu.Lock()
	for len(d.queue) > 0 || d.writing {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Close drains the write-behind queue — every accepted Put lands or is
// already counted dropped — and stops the drain goroutine. Further
// Puts are ignored. Close is idempotent.
func (d *DiskStore) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
}

// drain is the write-behind goroutine: one pending entry at a time,
// then the byte-budget janitor. It exits only when closed AND empty,
// so Close always drains.
func (d *DiskStore) drain() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if len(d.queue) == 0 && d.closed {
			d.mu.Unlock()
			return
		}
		req := d.queue[0]
		d.queue = d.queue[1:]
		d.writing = true
		d.mu.Unlock()

		size, err := d.writeEntry(req)

		d.mu.Lock()
		d.writing = false
		// A newer Put for the same key may have superseded this one
		// while it was being written; only clear pending if it is still
		// ours, and never index a superseded write (its file will be
		// overwritten by the newer entry momentarily).
		current := d.pending[req.key] == req
		if current {
			delete(d.pending, req.key)
			if err == nil {
				if old, ok := d.index[req.key]; ok {
					d.bytes -= old.bytes
				}
				d.index[req.key] = diskMeta{bytes: size, cost: req.cost}
				d.bytes += size
			}
		}
		victims := d.janitorLocked()
		d.cond.Broadcast()
		d.mu.Unlock()

		if err != nil {
			d.observe(d.opt.OnError)
		} else if current {
			d.observe(d.opt.OnWrite)
		}
		for _, key := range victims {
			os.Remove(d.entryPath(key))
			d.observe(d.opt.OnEvict)
		}
	}
}

// janitorLocked picks eviction victims until landed bytes fit the
// budget, removing them from the index; the caller deletes the files
// outside the lock. Victim choice mirrors the memory tier: lowest
// Cost/Bytes density first.
func (d *DiskStore) janitorLocked() []string {
	if d.opt.MaxBytes <= 0 {
		return nil
	}
	var victims []string
	for d.bytes > d.opt.MaxBytes && len(d.index) > 0 {
		victimKey := ""
		best := math.Inf(1)
		for key, meta := range d.index {
			if density := meta.cost / float64(meta.bytes); density < best {
				victimKey, best = key, density
			}
		}
		meta := d.index[victimKey]
		d.bytes -= meta.bytes
		delete(d.index, victimKey)
		victims = append(victims, victimKey)
	}
	return victims
}

func (d *DiskStore) observe(fn func()) {
	if fn != nil {
		fn()
	}
}

// writeEntry lands one entry file atomically (temp + rename in the
// fan-out directory). The SpillWrite fault seam fails the write before
// any bytes land; SpillTorn truncates the framed bytes but lets the
// rename publish the torn file — caught later by Get's checksum.
func (d *DiskStore) writeEntry(req *spillReq) (int64, error) {
	if err := fault.Err(fault.SpillWrite); err != nil {
		return 0, err
	}
	framed := encodeEntry(req.key, req.payload, req.cost)
	out := fault.Torn(fault.SpillTorn, framed)
	path := d.entryPath(req.key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(dir, ".spill*")
	if err != nil {
		return 0, err
	}
	_, werr := tmp.Write(out)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return 0, errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return int64(len(out)), nil
}

// Entry file layout (integers little-endian):
//
//	magic   [8]byte  "VSPILL01"
//	keyLen  uint32
//	payLen  uint64
//	cost    float64 bits
//	key     []byte
//	payload []byte
//	sum     [32]byte SHA-256 of everything above
const spillHeaderLen = 8 + 4 + 8 + 8

func encodeEntry(key string, payload []byte, cost float64) []byte {
	buf := make([]byte, 0, spillHeaderLen+len(key)+len(payload)+sha256.Size)
	buf = append(buf, spillMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(cost))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// readEntryFile reads and fully validates one entry file. Every
// failure mode is an error; callers treat any error (other than
// fs.ErrNotExist) as damage.
func readEntryFile(path string) (key string, payload []byte, cost float64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, 0, err
	}
	if len(data) < spillHeaderLen+sha256.Size {
		return "", nil, 0, errors.New("cache: spill entry truncated")
	}
	if !bytes.Equal(data[:8], spillMagic[:]) {
		return "", nil, 0, fmt.Errorf("cache: spill entry magic %q is not %q", data[:8], spillMagic[:])
	}
	keyLen := binary.LittleEndian.Uint32(data[8:12])
	payLen := binary.LittleEndian.Uint64(data[12:20])
	cost = math.Float64frombits(binary.LittleEndian.Uint64(data[20:28]))
	body := uint64(len(data) - spillHeaderLen - sha256.Size)
	if uint64(keyLen)+payLen != body {
		return "", nil, 0, fmt.Errorf("cache: spill entry lengths %d+%d do not match %d body bytes", keyLen, payLen, body)
	}
	sumStart := spillHeaderLen + int(keyLen) + int(payLen)
	sum := sha256.Sum256(data[:sumStart])
	if !bytes.Equal(sum[:], data[sumStart:]) {
		return "", nil, 0, errors.New("cache: spill entry checksum mismatch")
	}
	key = string(data[spillHeaderLen : spillHeaderLen+int(keyLen)])
	payload = data[spillHeaderLen+int(keyLen) : sumStart]
	if math.IsNaN(cost) || cost < 0 {
		cost = 0
	}
	return key, payload, cost, nil
}
