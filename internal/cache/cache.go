// Hardware cache models. This file implements the set-associative,
// write-back, write-allocate caches of the simulated GPU (Table I):
// the 16 KB 4-way per-SM L1 data caches and the eight 64 KB 8-way LLC
// slices, plus the MSHR bookkeeping used to merge and bound
// outstanding misses. The package doc (and the service-level tiered
// result store) lives in doc.go.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
}

// L1Config returns the per-SM L1D of Table I: 16 KB, 4-way, 32 sets,
// 128 B lines.
func L1Config() Config {
	return Config{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 128, Ways: 4}
}

// LLCSliceConfig returns one LLC slice of Table I: 64 KB, 8-way, 64 sets,
// 128 B lines (8 slices = 512 KB total).
func LLCSliceConfig() Config {
	return Config{Name: "LLC-slice", SizeBytes: 64 << 10, LineBytes: 128, Ways: 8}
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Stats counts cache events.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64 // dirty evictions
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// It is a state container, not a timing model; the simulator supplies
// timing around it.
type Cache struct {
	cfg      Config
	sets     [][]way
	tick     uint64
	setShift uint
	setMask  uint64
	stats    Stats
}

// New builds a cache. Line size, way count and set count must be powers
// of two and consistent with the total size.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways %d", cfg.Name, cfg.Ways)
	}
	sets := cfg.Sets()
	if sets <= 0 || sets*cfg.LineBytes*cfg.Ways != cfg.SizeBytes {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.LineBytes)
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]way, sets),
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.setShift
	return int(line & c.setMask), line >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// Probe reports whether addr currently hits, without touching LRU state
// or statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Result describes the outcome of an Access.
type Result struct {
	Hit bool
	// Eviction reports whether a valid line was displaced, and Victim /
	// VictimDirty describe it. Dirty victims generate writeback traffic.
	Eviction    bool
	Victim      uint64 // line-aligned address of the victim
	VictimDirty bool
}

// Access performs a load (write=false) or store (write=true) with
// write-allocate semantics: on a miss the line is installed immediately.
// The caller models the fill latency; the state change is immediate so a
// subsequent access to the same line hits (the MSHR merge path is handled
// by MSHRFile).
func (c *Cache) Access(addr uint64, write bool) Result {
	c.tick++
	c.stats.Accesses++
	set, tag := c.index(addr)
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].used = c.tick
			if write {
				ws[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: invalid way first, else true LRU.
	victim := 0
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
		if ws[i].used < ws[victim].used {
			victim = i
		}
	}
	res := Result{}
	if ws[victim].valid {
		res.Eviction = true
		res.VictimDirty = ws[victim].dirty
		res.Victim = c.reconstruct(set, ws[victim].tag)
		c.stats.Evictions++
		if ws[victim].dirty {
			c.stats.Writebacks++
		}
	}
	ws[victim] = way{tag: tag, valid: true, dirty: write, used: c.tick}
	return res
}

func (c *Cache) reconstruct(set int, tag uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(len(c.sets))))
	return ((tag << setBits) | uint64(set)) << c.setShift
}

// Invalidate drops a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			return
		}
	}
	return
}

// MSHRFile tracks outstanding misses by line address. A secondary miss to
// a pending line merges instead of issuing a new downstream request; the
// file refuses new primary misses once limit entries are outstanding
// (a structural stall, as in the paper's 32-entry L1 MSHRs).
type MSHRFile struct {
	limit   int
	pending map[uint64]int
}

// NewMSHRFile builds a file with the given entry limit (<=0 = unlimited).
func NewMSHRFile(limit int) *MSHRFile {
	return &MSHRFile{limit: limit, pending: make(map[uint64]int)}
}

// CanAccept reports whether a miss to line can be tracked now: either the
// line is already pending (merge) or a free entry exists.
func (m *MSHRFile) CanAccept(line uint64) bool {
	if _, ok := m.pending[line]; ok {
		return true
	}
	return m.limit <= 0 || len(m.pending) < m.limit
}

// Add records a miss; it returns true if this is the primary miss for the
// line (the caller must then issue the downstream request). Add panics if
// CanAccept would have returned false — callers must check first.
func (m *MSHRFile) Add(line uint64) (primary bool) {
	if n, ok := m.pending[line]; ok {
		m.pending[line] = n + 1
		return false
	}
	if m.limit > 0 && len(m.pending) >= m.limit {
		panic("cache: MSHR overflow; call CanAccept first")
	}
	m.pending[line] = 1
	return true
}

// Complete retires the line's entry, returning how many requests (primary
// plus merged) were waiting on it.
func (m *MSHRFile) Complete(line uint64) int {
	n, ok := m.pending[line]
	if !ok {
		return 0
	}
	delete(m.pending, line)
	return n
}

// Pending reports whether the line has an outstanding miss.
func (m *MSHRFile) Pending(line uint64) bool {
	_, ok := m.pending[line]
	return ok
}

// Len returns the number of occupied entries.
func (m *MSHRFile) Len() int { return len(m.pending) }

// Full reports whether a new primary miss would be refused.
func (m *MSHRFile) Full() bool { return m.limit > 0 && len(m.pending) >= m.limit }
